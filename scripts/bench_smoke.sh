#!/usr/bin/env bash
# Smoke-runs one figure bench at reduced scale and emits the stable
# machine-readable bench artifact (BENCH_seed.json by default). CI uploads
# the artifact so perf regressions can be diffed across commits; the JSON
# schema is documented on ksp::bench::PrintStatsRow in
# bench/bench_common.h.
#
# Usage: scripts/bench_smoke.sh [out.json] [micro_out.json]
#        micro_out.json (default BENCH_micro.json) receives the flat-
#        frontier micro-component run of the A/B perf smoke below.
# Env:   BUILD_DIR (default: build), KSP_SCALE, KSP_QUERIES,
#        KSP_INTRA_THREADS, KSP_BENCH (default: bench_fig9_large_looseness)
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_seed.json}"
BENCH="${KSP_BENCH:-bench_fig9_large_looseness}"

if [[ ! -x "${BUILD_DIR}/bench/${BENCH}" ]]; then
  echo "error: ${BUILD_DIR}/bench/${BENCH} not built" >&2
  echo "build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

KSP_SCALE="${KSP_SCALE:-0.1}" KSP_QUERIES="${KSP_QUERIES:-5}" \
  "${BUILD_DIR}/bench/${BENCH}" \
  --warmup=1 --repeat=3 \
  --intra-threads="${KSP_INTRA_THREADS:-1}" \
  --json-out="${OUT}"

# The artifact must parse and carry at least one row.
python3 - "${OUT}" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, doc
assert doc["rows"], "bench emitted no rows"
print(f"bench smoke OK: {doc['bench']}, {len(doc['rows'])} rows")
EOF

# Disk-backend smoke: the same bench must also run out-of-core (DESIGN.md
# §10) under a small buffer pool, and its rows must show page traffic.
DISK_OUT="$(mktemp /tmp/ksp_bench_disk_smoke.XXXXXX.json)"
trap 'rm -f "${DISK_OUT}"' EXIT
KSP_SCALE="${KSP_SCALE:-0.1}" KSP_QUERIES="${KSP_QUERIES:-5}" \
  "${BUILD_DIR}/bench/${BENCH}" \
  --backend=disk --bufferpool-budget=1048576 \
  --json-out="${DISK_OUT}"

python3 - "${DISK_OUT}" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["env"]["backend"] == "disk", doc["env"]
rows = doc["rows"]
assert rows, "disk bench emitted no rows"
assert all(r["backend"] == "disk" for r in rows), rows
fetches = sum(r["bufferpool"]["hits"] + r["bufferpool"]["misses"]
              for r in rows)
assert fetches > 0, "disk backend reported no buffer-pool traffic"
print(f"disk-backend smoke OK: {len(rows)} rows, {fetches} page fetches")
EOF

# Sharded scatter-gather smoke (DESIGN.md §12): the fig5-style workload
# over K ∈ {1,2,4,8} STR shards. The K=4 rows must show shard-level
# pruning actually firing — the whole point of mindist-ordered dispatch
# under the shared θ.
SHARD_OUT="$(mktemp /tmp/ksp_bench_shard_smoke.XXXXXX.json)"
trap 'rm -f "${DISK_OUT}" "${SHARD_OUT}"' EXIT
KSP_SCALE="${KSP_SCALE:-0.1}" KSP_QUERIES="${KSP_QUERIES:-5}" \
  "${BUILD_DIR}/bench/bench_sharded_scatter_gather" \
  --json-out="${SHARD_OUT}"

python3 - "${SHARD_OUT}" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = doc["rows"]
assert rows, "sharded bench emitted no rows"
assert all("shard" in r for r in rows), rows
k4 = [r for r in rows if r["shard"]["count"] == 4]
assert k4, "no K=4 rows"
pruned = sum(r["shard"]["shards_pruned"] for r in k4)
assert pruned >= 1, f"K=4 pruned no shards: {k4}"
print(f"sharded smoke OK: {len(rows)} rows, K=4 pruned {pruned} shards")
EOF

# Frontier A/B perf smoke (DESIGN.md §13): run the micro-component bench
# with the legacy and the flat BFS frontier driver on the same workload
# and require the flat driver's tqsp_compute + bfs_expand phase-exclusive
# total to be no slower than legacy (within a noise margin — CI runners
# are too jittery for a hard ratio, so the gate is "not slower than
# legacy * 1.25" on the median-of-3 pass). The flat JSON doubles as the
# uploaded micro-component artifact (BENCH_micro.json).
MICRO_OUT="${2:-BENCH_micro.json}"
LEGACY_OUT="$(mktemp /tmp/ksp_bench_legacy_smoke.XXXXXX.json)"
trap 'rm -f "${DISK_OUT}" "${SHARD_OUT}" "${LEGACY_OUT}"' EXIT
for frontier in legacy flat; do
  out="${LEGACY_OUT}"
  [[ "${frontier}" == "flat" ]] && out="${MICRO_OUT}"
  KSP_SCALE="${KSP_SCALE:-0.1}" KSP_QUERIES="${KSP_QUERIES:-5}" \
    "${BUILD_DIR}/bench/bench_micro_components" \
    --bfs-frontier="${frontier}" \
    --warmup=1 --repeat=3 \
    --json-out="${out}"
done

python3 - "${LEGACY_OUT}" "${MICRO_OUT}" <<'EOF'
import json, sys

def hot_us(path):
    doc = json.load(open(path))
    assert doc["schema_version"] == 1, doc
    assert doc["rows"], f"{path}: no rows"
    return doc["env"]["bfs_frontier"], sum(
        r["phase_exclusive_us"]["tqsp_compute"] +
        r["phase_exclusive_us"]["bfs_expand"] for r in doc["rows"])

(legacy_name, legacy), (flat_name, flat) = map(hot_us, sys.argv[1:3])
assert legacy_name == "legacy" and flat_name == "flat", (legacy_name,
                                                         flat_name)
assert legacy > 0, "legacy run recorded no hot-phase time"
assert flat <= legacy * 1.25, (
    f"flat frontier slower than legacy: {flat:.0f} us vs {legacy:.0f} us")
print(f"frontier A/B smoke OK: tqsp+bfs {legacy:.0f} us (legacy) -> "
      f"{flat:.0f} us (flat), ratio {flat / legacy:.2f}")
EOF

# Serving-tier smoke (DESIGN.md §11): start a real server on loopback,
# drive it with the closed- and open-loop load generator, and require
# nonzero sustained QPS with zero protocol errors in both loops.
SERVE_OUT="$(mktemp /tmp/ksp_bench_serving_smoke.XXXXXX.json)"
trap 'rm -f "${DISK_OUT}" "${SHARD_OUT}" "${LEGACY_OUT}" "${SERVE_OUT}"' EXIT
KSP_SCALE="${KSP_SCALE:-0.1}" \
  "${BUILD_DIR}/bench/bench_serving_load" \
  --clients=4 --seconds=1 --rate=100 \
  --json-out="${SERVE_OUT}"

python3 - "${SERVE_OUT}" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "bench_serving_load", doc
for name in ("closed_loop", "open_loop"):
    loop = doc["serving"][name]
    assert loop["protocol_errors"] == 0, (name, loop)
    assert loop["qps"] > 0, (name, loop)
closed = doc["serving"]["closed_loop"]
print(f"serving smoke OK: closed-loop {closed['qps']:.0f} QPS, "
      f"p99 {closed['p99_ms']:.2f} ms, 0 protocol errors")
EOF
