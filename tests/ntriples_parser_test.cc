#include "rdf/ntriples_parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace ksp {
namespace {

TEST(NTriplesParserTest, IriTriple) {
  NTriplesParser parser;
  auto r = parser.ParseLine(
      "<http://a.org/s> <http://a.org/p> <http://a.org/o> .");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->subject, "http://a.org/s");
  EXPECT_EQ(r->predicate, "http://a.org/p");
  EXPECT_EQ(r->object, "http://a.org/o");
  EXPECT_EQ(r->object_kind, ObjectKind::kIri);
}

TEST(NTriplesParserTest, PlainLiteral) {
  NTriplesParser parser;
  auto r = parser.ParseLine("<http://a/s> <http://a/p> \"hello world\" .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, "hello world");
  EXPECT_EQ(r->object_kind, ObjectKind::kLiteral);
  EXPECT_TRUE(r->language.empty());
  EXPECT_TRUE(r->datatype.empty());
}

TEST(NTriplesParserTest, LanguageTaggedLiteral) {
  NTriplesParser parser;
  auto r = parser.ParseLine("<http://a/s> <http://a/p> \"bonjour\"@fr .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, "bonjour");
  EXPECT_EQ(r->language, "fr");
}

TEST(NTriplesParserTest, TypedLiteral) {
  NTriplesParser parser;
  auto r = parser.ParseLine(
      "<http://a/s> <http://a/p> "
      "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, "42");
  EXPECT_EQ(r->datatype, "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(NTriplesParserTest, EscapesDecoded) {
  NTriplesParser parser;
  auto r = parser.ParseLine(
      R"(<http://a/s> <http://a/p> "tab\there\nquote\"back\\slash" .)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, "tab\there\nquote\"back\\slash");
}

TEST(NTriplesParserTest, UnicodeEscapes) {
  NTriplesParser parser;
  auto r = parser.ParseLine(
      R"(<http://a/s> <http://a/p> "café \U0001F600" .)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, "caf\xC3\xA9 \xF0\x9F\x98\x80");
}

TEST(NTriplesParserTest, BlankNodes) {
  NTriplesParser parser;
  auto r = parser.ParseLine("_:b1 <http://a/p> _:b2 .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->subject, "_:b1");
  EXPECT_EQ(r->object, "_:b2");
  EXPECT_EQ(r->object_kind, ObjectKind::kIri);
}

TEST(NTriplesParserTest, ExtraWhitespaceTolerated) {
  NTriplesParser parser;
  auto r = parser.ParseLine("  <http://a/s>\t<http://a/p>   <http://a/o> . ");
  ASSERT_TRUE(r.ok());
}

TEST(NTriplesParserTest, MalformedLines) {
  NTriplesParser parser;
  const char* bad_lines[] = {
      "",                                          // empty
      "<s> <p>",                                   // missing object
      "<s> <p> <o>",                               // missing dot
      "<s <p> <o> .",                              // unterminated IRI
      "<s> <p> \"unterminated .",                  // unterminated literal
      "<s> <p> \"x\" . trailing",                  // garbage after dot
      "<s> <p> \"bad\\q\" .",                      // unknown escape
      "<s> <p> \"bad\\u00G9\" .",                  // bad hex
      "plain text",                                // no IRI
  };
  for (const char* line : bad_lines) {
    auto r = parser.ParseLine(line);
    EXPECT_FALSE(r.ok()) << "should reject: " << line;
  }
}

TEST(NTriplesParserTest, IsBlankOrComment) {
  EXPECT_TRUE(NTriplesParser::IsBlankOrComment(""));
  EXPECT_TRUE(NTriplesParser::IsBlankOrComment("   "));
  EXPECT_TRUE(NTriplesParser::IsBlankOrComment("# a comment"));
  EXPECT_FALSE(NTriplesParser::IsBlankOrComment("<s> <p> <o> ."));
}

TEST(NTriplesParserTest, ParseStringCountsAndSkipsComments) {
  NTriplesParser parser;
  std::string doc =
      "# header\n"
      "<http://a/s> <http://a/p> <http://a/o> .\n"
      "\n"
      "<http://a/s> <http://a/p> \"x\" .\n";
  int count = 0;
  auto r = parser.ParseString(doc, [&](const Triple&) { ++count; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
  EXPECT_EQ(count, 2);
}

TEST(NTriplesParserTest, StrictModeReportsLineNumber) {
  NTriplesParser parser;
  std::string doc = "<http://a/s> <http://a/p> <http://a/o> .\nbroken\n";
  auto r = parser.ParseString(doc, [](const Triple&) {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesParserTest, LenientModeSkipsMalformed) {
  NTriplesParser::Options options;
  options.strict = false;
  NTriplesParser parser(options);
  std::string doc =
      "<http://a/s> <http://a/p> <http://a/o> .\n"
      "broken line\n"
      "<http://a/s2> <http://a/p> <http://a/o> .\n";
  uint64_t malformed = 0;
  auto r = parser.ParseString(doc, [](const Triple&) {}, &malformed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
  EXPECT_EQ(malformed, 1u);
}

TEST(NTriplesParserTest, ParseFileRoundTrip) {
  namespace fs = std::filesystem;
  std::string path = (fs::temp_directory_path() / "ksp_parser_test.nt")
                         .string();
  Triple original;
  original.subject = "http://a/s";
  original.predicate = "http://a/p";
  original.object = "line1\nline2 with \"quotes\"";
  original.object_kind = ObjectKind::kLiteral;
  {
    std::ofstream out(path);
    out << "# comment\r\n";
    out << ToNTriplesLine(original) << "\n";
  }
  NTriplesParser parser;
  std::vector<Triple> parsed;
  auto r = parser.ParseFile(path, [&](const Triple& t) {
    parsed.push_back(t);
  });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], original);
  std::remove(path.c_str());
}

TEST(NTriplesParserTest, ParseMissingFileIsIOError) {
  NTriplesParser parser;
  auto r = parser.ParseFile("/nonexistent/path.nt", [](const Triple&) {});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(ToNTriplesLineTest, SerializesAllShapes) {
  Triple t;
  t.subject = "http://a/s";
  t.predicate = "http://a/p";
  t.object = "http://a/o";
  EXPECT_EQ(ToNTriplesLine(t), "<http://a/s> <http://a/p> <http://a/o> .");

  t.object = "hi";
  t.object_kind = ObjectKind::kLiteral;
  t.language = "en";
  EXPECT_EQ(ToNTriplesLine(t), "<http://a/s> <http://a/p> \"hi\"@en .");

  t.language.clear();
  t.datatype = "http://t";
  EXPECT_EQ(ToNTriplesLine(t),
            "<http://a/s> <http://a/p> \"hi\"^^<http://t> .");
}

}  // namespace
}  // namespace ksp
