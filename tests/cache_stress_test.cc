// Concurrency stress for the shared semantic cache, built to run under
// TSan (the sanitize CI job runs `ctest -L 'parallel|cache'`). Eight
// threads interleave cached queries with cache invalidations and full
// index reloads; every query result is checked against an uncached
// reference computed up front. Queries and Invalidate() run under a
// shared lock (both are safe against each other by design); LoadIndexes
// mutates the database and takes the lock exclusively, mirroring how a
// serving process would quiesce queries around an index swap.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <iterator>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/semantic_cache.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

using ExecuteFn = Result<KspResult> (QueryExecutor::*)(const KspQuery&,
                                                       QueryStats*);

constexpr ExecuteFn kAlgorithms[] = {&QueryExecutor::ExecuteBsp,
                                     &QueryExecutor::ExecuteSpp,
                                     &QueryExecutor::ExecuteSp};

TEST(CacheStressTest, QueriesInvalidationsAndReloadsRaceSafely) {
  auto kb_or = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(800));
  ASSERT_TRUE(kb_or.ok()) << kb_or.status().ToString();
  auto kb = std::move(*kb_or);

  KspOptions options;
  options.cache_budget_bytes = 256 * 1024;
  KspDatabase db(kb.get(), options);
  db.PrepareAll(3);
  ASSERT_NE(db.semantic_cache(), nullptr);

  const std::string dir = ::testing::TempDir() + "/cache_stress_indexes";
  ASSERT_TRUE(db.SaveIndexes(dir).ok());

  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 4;
  qopt.seed = 17;
  const std::vector<KspQuery> queries =
      GenerateQueries(*kb, QueryClass::kOriginal, qopt, 24);
  ASSERT_FALSE(queries.empty());

  // Uncached ground truth per (query, algorithm).
  KspDatabase reference_db(kb.get());
  reference_db.PrepareAll(3);
  std::vector<std::vector<KspResult>> expected(queries.size());
  {
    QueryExecutor reference(&reference_db);
    for (size_t i = 0; i < queries.size(); ++i) {
      for (ExecuteFn fn : kAlgorithms) {
        auto result = (reference.*fn)(queries[i], nullptr);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        expected[i].push_back(std::move(*result));
      }
    }
  }

  // Queries and cache Invalidate() take the lock shared; LoadIndexes
  // (which swaps the index generation out from under executors) takes
  // it exclusive.
  std::shared_mutex db_mu;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> reloads{0};

  constexpr int kThreads = 8;
  constexpr uint64_t kItersPerThread = 120;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      QueryExecutor executor(&db);
      for (uint64_t iter = 0; iter < kItersPerThread; ++iter) {
        const uint64_t roll = rng.NextBounded(100);
        if (roll < 85) {
          const size_t qi = rng.NextBounded(queries.size());
          const size_t ai = rng.NextBounded(std::size(kAlgorithms));
          std::shared_lock<std::shared_mutex> lock(db_mu);
          auto result = (executor.*kAlgorithms[ai])(queries[qi], nullptr);
          if (!result.ok()) {
            ++mismatches;
            continue;
          }
          const KspResult& want = expected[qi][ai];
          bool same = result->entries.size() == want.entries.size();
          for (size_t e = 0; same && e < want.entries.size(); ++e) {
            same = result->entries[e].place == want.entries[e].place &&
                   result->entries[e].score == want.entries[e].score &&
                   result->entries[e].looseness == want.entries[e].looseness;
          }
          if (!same) ++mismatches;
        } else if (roll < 95) {
          std::shared_lock<std::shared_mutex> lock(db_mu);
          db.semantic_cache()->Invalidate();
        } else {
          std::unique_lock<std::shared_mutex> lock(db_mu);
          Status status = db.LoadIndexes(dir);
          if (!status.ok()) {
            ++mismatches;
          } else {
            ++reloads;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(reloads.load(), 0u);
  // The budget held despite the churn.
  EXPECT_LE(db.semantic_cache()->TotalBytes(), options.cache_budget_bytes);
}

TEST(CacheStressTest, ManyExecutorsWarmOneCacheConcurrently) {
  // No invalidation churn: 8 executors hammer the same small query set
  // so nearly everything is served from the shared cache, under TSan.
  auto kb_or = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(600));
  ASSERT_TRUE(kb_or.ok());
  auto kb = std::move(*kb_or);
  KspOptions options;
  options.cache_budget_bytes = kCacheUnlimited;
  KspDatabase db(kb.get(), options);
  db.PrepareAll(3);

  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 3;
  qopt.seed = 5;
  const std::vector<KspQuery> queries =
      GenerateQueries(*kb, QueryClass::kOriginal, qopt, 8);
  ASSERT_FALSE(queries.empty());

  KspDatabase reference_db(kb.get());
  reference_db.PrepareAll(3);
  std::vector<KspResult> expected;
  {
    QueryExecutor reference(&reference_db);
    for (const KspQuery& query : queries) {
      auto result = reference.ExecuteSpp(query, nullptr);
      ASSERT_TRUE(result.ok());
      expected.push_back(std::move(*result));
    }
  }

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      QueryExecutor executor(&db);
      for (int round = 0; round < 40; ++round) {
        const size_t qi = (t + round) % queries.size();
        auto result = executor.ExecuteSpp(queries[qi], nullptr);
        if (!result.ok() ||
            result->entries.size() != expected[qi].entries.size()) {
          ++mismatches;
          continue;
        }
        for (size_t e = 0; e < expected[qi].entries.size(); ++e) {
          if (result->entries[e].place != expected[qi].entries[e].place ||
              result->entries[e].score != expected[qi].entries[e].score) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);

  const auto result_stats = db.semantic_cache()->result_stats();
  EXPECT_GT(result_stats.hits, 0u);
}

TEST(CacheStressTest, EpochGuardsInvalidationWindow) {
  // Raw-layer race check for the atomic-invalidation contract (DESIGN.md
  // §9/§11): an insert tagged with epoch e must never be visible to a
  // reader whose snapshot is e' != e, no matter how inserts interleave
  // with Invalidate(). Distances are a function of the epoch they were
  // inserted under, so a single stale entry crossing the boundary is
  // detected at the reader as a wrong value.
  SemanticQueryCache cache(kCacheUnlimited);
  const auto distance_for = [](uint64_t epoch) {
    return static_cast<HopDistance>(epoch % 1000);
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> stale_hits{0};
  std::atomic<uint64_t> hits{0};

  constexpr uint32_t kRoots = 64;
  constexpr uint32_t kTerms = 16;

  std::vector<std::thread> threads;
  // Writers: snapshot the epoch, insert f(epoch) — exactly the executor
  // protocol (snapshot once, tag every insert with it).
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(500 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t epoch = cache.epoch();
        const VertexId root = static_cast<VertexId>(rng.NextBounded(kRoots));
        const TermId term = static_cast<TermId>(rng.NextBounded(kTerms));
        cache.InsertDistance(root, term, epoch, distance_for(epoch));
      }
    });
  }
  // Readers: snapshot the epoch, and any hit under that snapshot must
  // carry that snapshot's value — never a neighbour epoch's.
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(900 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t epoch = cache.epoch();
        const VertexId root = static_cast<VertexId>(rng.NextBounded(kRoots));
        const TermId term = static_cast<TermId>(rng.NextBounded(kTerms));
        HopDistance distance = 0;
        if (cache.LookupDistance(root, term, epoch, &distance)) {
          ++hits;
          if (distance != distance_for(epoch)) ++stale_hits;
        }
      }
    });
  }
  // Invalidator: constant epoch churn.
  std::thread invalidator([&] {
    for (int i = 0; i < 2000; ++i) {
      cache.Invalidate();
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
  });

  invalidator.join();
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(stale_hits.load(), 0u)
      << "an entry from another epoch was served across Invalidate()";
  EXPECT_GT(hits.load(), 0u) << "the race never exercised a cache hit";
}

}  // namespace
}  // namespace ksp
