#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/fixtures.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "datagen/workload_io.h"
#include "rdf/kb_stats.h"

namespace ksp {
namespace {

TEST(KbStatsTest, Figure1Statistics) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KnowledgeBaseStats stats = ComputeKnowledgeBaseStats(**kb);
  EXPECT_EQ(stats.num_vertices, 10u);
  EXPECT_EQ(stats.num_edges, 8u);
  EXPECT_EQ(stats.num_places, 2u);
  EXPECT_DOUBLE_EQ(stats.place_fraction, 0.2);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 0.8);
  EXPECT_GT(stats.keyword_frequency, 0.0);
  // Figure 1 is weakly connected except the two separate stars:
  // {p1, v1..v5} and {p2, v6..v8}.
  EXPECT_EQ(stats.NumWccs(), 2u);
  EXPECT_EQ(stats.LargestWcc(), 6u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(KbStatsTest, EmptyKb) {
  KnowledgeBaseBuilder builder;
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  KnowledgeBaseStats stats = ComputeKnowledgeBaseStats(**kb);
  EXPECT_EQ(stats.num_vertices, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 0.0);
  EXPECT_EQ(stats.LargestWcc(), 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(WorkloadIoTest, RoundTripOnSameKb) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1200));
  ASSERT_TRUE(kb.ok());
  QueryGenOptions qopt;
  qopt.num_keywords = 4;
  qopt.k = 7;
  auto queries = GenerateQueries(**kb, QueryClass::kOriginal, qopt, 6);
  ASSERT_FALSE(queries.empty());

  std::string path = (std::filesystem::temp_directory_path() /
                      "ksp_workload_test.txt")
                         .string();
  ASSERT_TRUE(SaveWorkload(**kb, queries, path).ok());
  auto loaded = LoadWorkload(**kb, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*loaded)[i].location, queries[i].location);
    EXPECT_EQ((*loaded)[i].k, queries[i].k);
    EXPECT_EQ((*loaded)[i].keywords, queries[i].keywords);
  }
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, PortableAcrossKbsSharingVocabulary) {
  // Queries saved against one KB resolve on another KB with the same
  // keyword strings (different term ids).
  auto a = GenerateKnowledgeBase(SyntheticProfile::YagoLike(1000));
  auto b = GenerateKnowledgeBase(SyntheticProfile::YagoLike(2000));
  ASSERT_TRUE(a.ok() && b.ok());
  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  auto queries = GenerateQueries(**a, QueryClass::kOriginal, qopt, 4);
  ASSERT_FALSE(queries.empty());
  std::string path = (std::filesystem::temp_directory_path() /
                      "ksp_workload_portable.txt")
                         .string();
  ASSERT_TRUE(SaveWorkload(**a, queries, path).ok());
  auto loaded = LoadWorkload(**b, path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    // Keyword strings must match, term id by term id.
    ASSERT_EQ((*loaded)[i].keywords.size(), queries[i].keywords.size());
    for (size_t j = 0; j < queries[i].keywords.size(); ++j) {
      TermId original = queries[i].keywords[j];
      TermId mapped = (*loaded)[i].keywords[j];
      if (mapped != kInvalidTerm) {
        EXPECT_EQ((*b)->vocabulary().Term(mapped),
                  (*a)->vocabulary().Term(original));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, MalformedLinesRejected) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  std::string path = (std::filesystem::temp_directory_path() /
                      "ksp_workload_bad.txt")
                         .string();
  {
    std::ofstream out(path);
    out << "1.0 2.0\n";  // Missing k and keywords.
  }
  auto loaded = LoadWorkload(**kb, path);
  EXPECT_FALSE(loaded.ok());
  {
    std::ofstream out(path);
    out << "1.0 2.0 5\n";  // No keywords.
  }
  loaded = LoadWorkload(**kb, path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, MissingFileIsIOError) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  auto loaded = LoadWorkload(**kb, "/nonexistent/workload.txt");
  EXPECT_TRUE(loaded.status().IsIOError());
}

}  // namespace
}  // namespace ksp
