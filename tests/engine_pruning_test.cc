// Focused tests for the four pruning rules and the termination logic:
// monotone bound behaviour, pruning-counter plausibility, and the
// work-reduction guarantees across k/|q.ψ| sweeps.

#include <gtest/gtest.h>

#include <memory>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

class PruningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(2500));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(3);
    exec_ = std::make_unique<QueryExecutor>(db_.get());
    QueryGenOptions qopt;
    qopt.num_keywords = 5;
    qopt.k = 5;
    qopt.seed = 31;
    queries_ = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 8);
    ASSERT_FALSE(queries_.empty());
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::unique_ptr<QueryExecutor> exec_;
  std::vector<KspQuery> queries_;
};

TEST_F(PruningTest, SpDoesStrictlyLessWorkThanSpp) {
  uint64_t spp_tqsp = 0;
  uint64_t sp_tqsp = 0;
  uint64_t spp_nodes = 0;
  uint64_t sp_nodes = 0;
  for (const auto& q : queries_) {
    QueryStats spp_stats;
    QueryStats sp_stats;
    ASSERT_TRUE(exec_->ExecuteSpp(q, &spp_stats).ok());
    ASSERT_TRUE(exec_->ExecuteSp(q, &sp_stats).ok());
    spp_tqsp += spp_stats.tqsp_computations;
    sp_tqsp += sp_stats.tqsp_computations;
    spp_nodes += spp_stats.rtree_nodes_accessed;
    sp_nodes += sp_stats.rtree_nodes_accessed;
  }
  EXPECT_LT(sp_tqsp, spp_tqsp);
  EXPECT_LE(sp_nodes, spp_nodes);
}

TEST_F(PruningTest, DynamicBoundReducesVisitedVertices) {
  // SPP visits strictly fewer BFS vertices than BSP whenever Rule 2 fires.
  uint64_t bsp_visits = 0;
  uint64_t spp_visits = 0;
  uint64_t fired = 0;
  for (const auto& q : queries_) {
    QueryStats bsp_stats;
    QueryStats spp_stats;
    ASSERT_TRUE(exec_->ExecuteBsp(q, &bsp_stats).ok());
    ASSERT_TRUE(exec_->ExecuteSpp(q, &spp_stats).ok());
    if (!bsp_stats.completed) continue;  // Timed-out runs not comparable.
    bsp_visits += bsp_stats.vertices_visited;
    spp_visits += spp_stats.vertices_visited;
    fired += spp_stats.pruned_dynamic_bound;
  }
  if (fired > 0) {
    EXPECT_LT(spp_visits, bsp_visits);
  }
}

TEST_F(PruningTest, ReachabilityQueriesBoundedByKeywordsPerPlace) {
  for (const auto& q : queries_) {
    QueryStats stats;
    ASSERT_TRUE(exec_->ExecuteSpp(q, &stats).ok());
    // Per candidate place, at most |q.ψ| reachability queries are issued.
    uint64_t candidates = stats.tqsp_computations + stats.pruned_unqualified;
    EXPECT_LE(stats.reachability_queries, candidates * q.keywords.size());
  }
}

TEST_F(PruningTest, BspNeverReportsPruning) {
  for (const auto& q : queries_) {
    QueryStats stats;
    ASSERT_TRUE(exec_->ExecuteBsp(q, &stats).ok());
    EXPECT_EQ(stats.pruned_unqualified, 0u);
    EXPECT_EQ(stats.pruned_dynamic_bound, 0u);
    EXPECT_EQ(stats.pruned_alpha_place, 0u);
    EXPECT_EQ(stats.pruned_alpha_node, 0u);
    EXPECT_EQ(stats.reachability_queries, 0u);
  }
}

TEST_F(PruningTest, WorkGrowsWithK) {
  // More requested results -> monotonically more TQSP computations for SP
  // (within noise; we check the endpoints).
  const KspQuery& base = queries_.front();
  KspQuery q1 = base;
  q1.k = 1;
  KspQuery q20 = base;
  q20.k = 20;
  QueryStats s1;
  QueryStats s20;
  ASSERT_TRUE(exec_->ExecuteSp(q1, &s1).ok());
  ASSERT_TRUE(exec_->ExecuteSp(q20, &s20).ok());
  EXPECT_LE(s1.tqsp_computations, s20.tqsp_computations);
  EXPECT_LE(s1.rtree_nodes_accessed, s20.rtree_nodes_accessed);
}

TEST_F(PruningTest, SemanticTimeWithinTotal) {
  for (const auto& q : queries_) {
    for (auto exec : {&QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
                      &QueryExecutor::ExecuteSp, &QueryExecutor::ExecuteTa}) {
      QueryStats stats;
      ASSERT_TRUE(((*exec_).*exec)(q, &stats).ok());
      EXPECT_GE(stats.total_ms, 0.0);
      EXPECT_GE(stats.semantic_ms, 0.0);
      EXPECT_LE(stats.semantic_ms, stats.total_ms + 0.5);
    }
  }
}

TEST_F(PruningTest, AlphaCountersOnlyFromSp) {
  for (const auto& q : queries_) {
    QueryStats spp_stats;
    QueryStats sp_stats;
    ASSERT_TRUE(exec_->ExecuteSpp(q, &spp_stats).ok());
    ASSERT_TRUE(exec_->ExecuteSp(q, &sp_stats).ok());
    EXPECT_EQ(spp_stats.pruned_alpha_place, 0u);
    EXPECT_EQ(spp_stats.pruned_alpha_node, 0u);
  }
}

TEST_F(PruningTest, LargerAlphaNeverIncreasesTqspCount) {
  // Tighter bounds with larger α can only prune more (same ordering
  // heuristics, same data).
  KspDatabase db1(kb_.get());
  db1.PrepareAll(1);
  QueryExecutor exec1(&db1);
  KspDatabase db3(kb_.get());
  db3.PrepareAll(3);
  QueryExecutor exec3(&db3);
  uint64_t tqsp1 = 0;
  uint64_t tqsp3 = 0;
  for (const auto& q : queries_) {
    QueryStats s1;
    QueryStats s3;
    ASSERT_TRUE(exec1.ExecuteSp(q, &s1).ok());
    ASSERT_TRUE(exec3.ExecuteSp(q, &s3).ok());
    tqsp1 += s1.tqsp_computations;
    tqsp3 += s3.tqsp_computations;
    // Identical answers regardless of α.
    auto r1 = exec1.ExecuteSp(q);
    auto r3 = exec3.ExecuteSp(q);
    ASSERT_TRUE(r1.ok() && r3.ok());
    ASSERT_EQ(r1->entries.size(), r3->entries.size());
    for (size_t i = 0; i < r1->entries.size(); ++i) {
      EXPECT_DOUBLE_EQ(r1->entries[i].score, r3->entries[i].score);
    }
  }
  EXPECT_LE(tqsp3, tqsp1);
}

}  // namespace
}  // namespace ksp
