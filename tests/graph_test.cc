#include "rdf/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ksp {
namespace {

TEST(GraphTest, CsrAdjacency) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 0);
  builder.AddEdge(0, 2, 1);
  builder.AddEdge(2, 1, 0);
  Graph g = builder.Finish(3);

  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);

  auto out0 = g.OutNeighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], 1u);
  EXPECT_EQ(out0[1], 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_TRUE(g.OutNeighbors(1).empty());

  auto in1 = g.InNeighbors(1);
  ASSERT_EQ(in1.size(), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_TRUE(g.InNeighbors(0).empty());
}

TEST(GraphTest, PredicatesAlignedWithTargets) {
  GraphBuilder builder;
  builder.AddEdge(0, 2, 7);
  builder.AddEdge(0, 1, 3);
  Graph g = builder.Finish(3);
  auto targets = g.OutNeighbors(0);
  auto preds = g.OutPredicates(0);
  ASSERT_EQ(targets.size(), preds.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] == 1) EXPECT_EQ(preds[i], 3u);
    if (targets[i] == 2) EXPECT_EQ(preds[i], 7u);
  }
}

TEST(GraphTest, DuplicateEdgesRemoved) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 0);
  builder.AddEdge(0, 1, 0);
  builder.AddEdge(0, 1, 1);  // Different predicate: kept.
  Graph g = builder.Finish(2);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder builder;
  Graph g = builder.Finish(0);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.WeaklyConnectedComponentSizes().empty());
}

TEST(GraphTest, IsolatedVertices) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 0);
  Graph g = builder.Finish(4);
  auto wcc = g.WeaklyConnectedComponentSizes();
  ASSERT_EQ(wcc.size(), 3u);  // {0,1}, {2}, {3}.
  EXPECT_EQ(wcc[0], 2u);
  EXPECT_EQ(wcc[1], 1u);
  EXPECT_EQ(wcc[2], 1u);
}

TEST(GraphTest, WccIgnoresDirection) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 0);
  builder.AddEdge(2, 1, 0);  // 2 -> 1: weakly connects 2 with {0, 1}.
  builder.AddEdge(3, 4, 0);
  Graph g = builder.Finish(5);
  auto wcc = g.WeaklyConnectedComponentSizes();
  ASSERT_EQ(wcc.size(), 2u);
  EXPECT_EQ(wcc[0], 3u);
  EXPECT_EQ(wcc[1], 2u);
}

TEST(GraphTest, SelfLoop) {
  GraphBuilder builder;
  builder.AddEdge(0, 0, 0);
  Graph g = builder.Finish(1);
  EXPECT_EQ(g.num_edges(), 1u);
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 0u);
  EXPECT_EQ(g.InNeighbors(0).size(), 1u);
}

TEST(GraphTest, MemoryUsageNonZero) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 0);
  Graph g = builder.Finish(2);
  EXPECT_GT(g.MemoryUsageBytes(), 0u);
}

}  // namespace
}  // namespace ksp
