// I/O fault injection: the injector itself, and the crash-safety
// acceptance criterion — a SaveIndexes interrupted at EVERY possible
// fault point (EIO and torn-write flavors) must leave the directory
// loadable: either the previous generation (fault before manifest
// publication) or the new one (fault after).

#include "common/fault_injection.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/io_util.h"
#include "core/database.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(400));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (std::filesystem::temp_directory_path() /
             ("ksp_fault_" + std::string(info->name()) + "_" +
              std::to_string(::getpid())))
                .string();
    pristine_ = root_ + "/pristine";
    work_ = root_ + "/work";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(pristine_);

    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(2);
    ASSERT_TRUE(db_->SaveIndexes(pristine_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void ResetWorkDir() {
    std::filesystem::remove_all(work_);
    std::filesystem::create_directories(work_);
    for (const auto& entry :
         std::filesystem::directory_iterator(pristine_)) {
      std::filesystem::copy(entry.path(),
                            work_ + "/" + entry.path().filename().string());
    }
  }

  /// The invariant under test: whatever a fault did to the directory, a
  /// fresh database must load a complete index set from it.
  void AssertDirectoryLoadable() {
    KspDatabase restored(kb_.get());
    auto status = restored.LoadIndexes(work_);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_TRUE(restored.has_rtree());
    EXPECT_NE(restored.reachability_index(), nullptr);
    EXPECT_NE(restored.alpha_index(), nullptr);
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::string root_;
  std::string pristine_;
  std::string work_;
};

TEST_F(FaultInjectionTest, NthOperationAndAllLaterOnesFail) {
  std::filesystem::create_directories(work_);
  FaultInjectingFileSystem fs(DefaultFileSystem());
  fs.FailAfter(1);
  auto first = fs.NewWritableFile(work_ + "/probe");  // Op 0: fine.
  ASSERT_TRUE(first.ok());
  auto second = fs.NewWritableFile(work_ + "/probe2");  // Op 1: fails.
  EXPECT_TRUE(second.status().IsIOError());
  auto third = fs.NewWritableFile(work_ + "/probe3");  // Still failing.
  EXPECT_TRUE(third.status().IsIOError());
  EXPECT_EQ(fs.faults_injected(), 2);
  fs.Disarm();
  auto fourth = fs.NewWritableFile(work_ + "/probe4");
  EXPECT_TRUE(fourth.ok());
}

TEST_F(FaultInjectionTest, ShortWriteLeavesTornPrefix) {
  std::filesystem::create_directories(work_);
  FaultInjectingFileSystem fs(DefaultFileSystem());
  auto file = fs.NewWritableFile(work_ + "/torn");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("intact").ok());
  fs.FailAfter(0, FaultInjectingFileSystem::FailureMode::kShortWrite);
  EXPECT_TRUE((*file)->Append("01234567").IsIOError());
  fs.Disarm();
  (void)(*file)->Close();
  EXPECT_EQ(std::filesystem::file_size(work_ + "/torn"), 6u + 4u);
}

TEST_F(FaultInjectionTest, SaveInterruptedAtEveryFaultPointStaysLoadable) {
  // Pass 1 (disarmed): count the operations of one full re-save on top of
  // an existing generation.
  ResetWorkDir();
  FaultInjectingFileSystem fs(DefaultFileSystem());
  ASSERT_TRUE(db_->SaveIndexes(work_, &fs).ok());
  const int64_t total_ops = fs.ops_counted();
  ASSERT_GT(total_ops, 10);

  // Pass 2: replay with a fault injected at every single operation.
  for (auto mode : {FaultInjectingFileSystem::FailureMode::kEIO,
                    FaultInjectingFileSystem::FailureMode::kShortWrite}) {
    for (int64_t fault_at = 0; fault_at < total_ops; ++fault_at) {
      ResetWorkDir();
      fs.ResetCounter();
      fs.FailAfter(fault_at, mode);
      auto status = db_->SaveIndexes(work_, &fs);
      fs.Disarm();
      EXPECT_GE(fs.faults_injected(), 1)
          << "fault point " << fault_at << " never reached";
      if (!status.ok()) {
        // Clean failure, never a crash or a mystery code.
        EXPECT_TRUE(status.IsIOError() || status.IsCorruption())
            << status.ToString();
      }
      // Whether the save died before publication (previous generation
      // intact) or after (new generation live), the directory loads.
      AssertDirectoryLoadable();
    }
  }
}

TEST_F(FaultInjectionTest, InterruptedFirstSaveLeavesDirectoryEmptyEnough) {
  // No previous generation: a fault during the very first save must leave
  // a directory that still loads (as "nothing built yet"), not a poisoned
  // half-generation.
  std::filesystem::create_directories(work_);
  FaultInjectingFileSystem fs(DefaultFileSystem());
  ASSERT_TRUE(db_->SaveIndexes(work_, &fs).ok());
  const int64_t total_ops = fs.ops_counted();

  for (int64_t fault_at = 0; fault_at < total_ops; ++fault_at) {
    std::filesystem::remove_all(work_);
    std::filesystem::create_directories(work_);
    fs.ResetCounter();
    fs.FailAfter(fault_at);
    auto status = db_->SaveIndexes(work_, &fs);
    fs.Disarm();
    KspDatabase restored(kb_.get());
    auto load = restored.LoadIndexes(work_);
    ASSERT_TRUE(load.ok()) << "fault at " << fault_at << ": "
                           << load.ToString();
    if (status.ok()) {
      // Fault landed after publication: full generation present.
      EXPECT_TRUE(restored.has_rtree());
    }
  }
}

TEST_F(FaultInjectionTest, ReadFaultDuringLoadFailsCleanAndUnprepared) {
  ResetWorkDir();
  FaultInjectingFileSystem fs(DefaultFileSystem());

  // Count a clean load's operations, then fail each one in turn.
  KspDatabase counter(kb_.get());
  ASSERT_TRUE(counter.LoadIndexes(work_, &fs).ok());
  const int64_t total_ops = fs.ops_counted();
  ASSERT_GT(total_ops, 0);

  for (int64_t fault_at = 0; fault_at < total_ops; ++fault_at) {
    fs.ResetCounter();
    fs.FailAfter(fault_at);
    KspDatabase restored(kb_.get());
    auto status = restored.LoadIndexes(work_, &fs);
    fs.Disarm();
    ASSERT_FALSE(status.ok()) << "fault at " << fault_at;
    EXPECT_TRUE(status.IsIOError() || status.IsCorruption())
        << status.ToString();
    // No half-loaded index set survives a failed load.
    EXPECT_FALSE(restored.has_rtree()) << "fault at " << fault_at;
    EXPECT_EQ(restored.reachability_index(), nullptr);
    EXPECT_EQ(restored.alpha_index(), nullptr);
  }
}

}  // namespace
}  // namespace ksp
