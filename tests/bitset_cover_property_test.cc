// Property tier: the u64-bitset keyword-cover machinery (DESIGN.md §13)
// against straightforward set-based references. Three layers:
//
//  1. VertexMaskTable (flat open-addressed VertexId -> mask) vs a
//     std::map<VertexId, std::set<uint32_t>> under random
//     OrInsert/Find/Reset sequences, including absent keys, duplicate
//     inserts, and growth from an empty table.
//  2. End-to-end TQSP merge/qualification on random knowledge bases:
//     the executor's bitset cover tracking vs a reference BFS that
//     tracks covered keywords as an ordered set — looseness, match
//     (term, vertex, distance) triples, path well-formedness, and the
//     unqualified (+inf) verdict must agree, up to and including the
//     64-keyword boundary. The flat and legacy frontier drivers are
//     also diffed against each other on the same instances.
//  3. The contract edges: exactly 64 distinct keywords work (full_mask
//     = ~0), duplicates dedup before the limit, and >64 distinct
//     keywords fail with InvalidArgument.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "core/vertex_mask_table.h"
#include "rdf/knowledge_base.h"

namespace ksp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------
// Layer 1: VertexMaskTable vs a set-based reference map.
// ---------------------------------------------------------------------

TEST(VertexMaskTableProperty, MatchesSetBasedReferenceOnRandomSequences) {
  std::mt19937_64 rng(0xB175E75);  // "bitsets"
  for (int trial = 0; trial < 20; ++trial) {
    VertexMaskTable table;
    // Reference: per-vertex set of keyword indices, the representation
    // the bitset replaced.
    std::map<VertexId, std::set<uint32_t>> reference;

    // Trials rotate through the three construction modes: pre-sized
    // with a known key universe (the PrepareContext path, which also
    // builds the presence bitmap), pre-sized without one, and grown
    // from empty (exercises Grow + rehash).
    const int mode = trial % 3;
    const size_t num_ops = 500 + static_cast<size_t>(rng() % 2000);
    if (mode == 0) {
      table.Reset(num_ops, /*universe=*/2'000'000);
    } else if (mode == 1) {
      table.Reset(num_ops);
    }

    // Keys drawn from a small dense range (forces collisions and
    // duplicate OrInserts) plus occasional sparse outliers.
    const VertexId dense_span = 1 + static_cast<VertexId>(rng() % 300);
    auto draw_key = [&]() -> VertexId {
      if (rng() % 8 == 0) {
        return static_cast<VertexId>(rng() % 1'000'000);
      }
      return static_cast<VertexId>(rng() % dense_span);
    };

    for (size_t op = 0; op < num_ops; ++op) {
      const VertexId v = draw_key();
      const uint32_t bit = static_cast<uint32_t>(rng() % 64);
      table.OrInsert(v, uint64_t{1} << bit);
      reference[v].insert(bit);

      // Interleave reads of a random (often absent) key.
      const VertexId probe = draw_key();
      uint64_t want = 0;
      auto it = reference.find(probe);
      if (it != reference.end()) {
        for (uint32_t b : it->second) want |= uint64_t{1} << b;
      }
      ASSERT_EQ(table.Find(probe), want)
          << "trial " << trial << " op " << op << " key " << probe;
    }

    // Full sweep: every inserted key reads back its exact mask, the
    // sizes agree, and keys never touched read back 0.
    ASSERT_EQ(table.size(), reference.size()) << "trial " << trial;
    for (const auto& [v, bits] : reference) {
      uint64_t want = 0;
      for (uint32_t b : bits) want |= uint64_t{1} << b;
      ASSERT_EQ(table.Find(v), want) << "trial " << trial << " key " << v;
    }
    for (int probe = 0; probe < 100; ++probe) {
      const VertexId v = static_cast<VertexId>(rng() % 2'000'000);
      if (reference.count(v) == 0) {
        ASSERT_EQ(table.Find(v), 0u) << "trial " << trial << " key " << v;
      }
    }

    // Clear drops everything.
    table.Clear();
    EXPECT_EQ(table.size(), 0u);
    for (const auto& [v, bits] : reference) {
      ASSERT_EQ(table.Find(v), 0u);
    }
  }
}

TEST(VertexMaskTableProperty, ResetDiscardsPriorEpochEntries) {
  VertexMaskTable table;
  table.Reset(8);
  table.OrInsert(7, 0x5);
  ASSERT_EQ(table.Find(7), 0x5u);
  table.Reset(8);  // New query epoch: prior masks must not leak.
  EXPECT_EQ(table.Find(7), 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(VertexMaskTableProperty, ResetClearsThePresenceBitmapToo) {
  VertexMaskTable table;
  table.Reset(8, /*universe=*/1024);
  table.OrInsert(7, 0x5);
  table.OrInsert(1023, 0x2);
  ASSERT_EQ(table.Find(7), 0x5u);
  ASSERT_EQ(table.Find(1023), 0x2u);
  // A fresh universe-sized Reset must drop the bits, and a universe-less
  // Reset must drop the bitmap entirely rather than serve stale bits.
  table.Reset(8, /*universe=*/1024);
  EXPECT_EQ(table.Find(7), 0u);
  EXPECT_EQ(table.Find(1023), 0u);
  table.OrInsert(7, 0x1);
  table.Reset(8);
  EXPECT_EQ(table.Find(7), 0u);
}

// ---------------------------------------------------------------------
// Layer 2: end-to-end TQSP cover merging on random knowledge bases.
// ---------------------------------------------------------------------

/// Pure-alpha keyword names so tokenization is the identity.
std::string TermName(uint32_t i) {
  std::string name = "kw";
  name += static_cast<char>('a' + i / 26);
  name += static_cast<char>('a' + i % 26);
  return name;
}

struct RandomKbSpec {
  uint32_t num_vertices = 0;
  uint32_t num_terms = 0;  // distinct query keywords planted in the KB
};

/// Random directed KB: every vertex gets a handful of out-edges, ~1/5
/// of vertices are places, and each of the `num_terms` keywords is
/// planted on 1-3 random vertices. Reachability is NOT guaranteed, so
/// the unqualified (+inf looseness) verdict is exercised naturally.
std::unique_ptr<KnowledgeBase> MakeRandomKb(const RandomKbSpec& spec,
                                            std::mt19937_64* rng) {
  KnowledgeBaseBuilder builder;
  std::vector<VertexId> vertices;
  vertices.reserve(spec.num_vertices);
  for (uint32_t i = 0; i < spec.num_vertices; ++i) {
    vertices.push_back(
        builder.AddEntity("http://t/v" + std::to_string(i)));
  }
  for (uint32_t i = 0; i < spec.num_vertices; ++i) {
    const uint32_t degree = static_cast<uint32_t>((*rng)() % 4);
    for (uint32_t e = 0; e < degree; ++e) {
      const VertexId dst =
          vertices[static_cast<size_t>((*rng)() % spec.num_vertices)];
      builder.AddRelation(vertices[i], dst, "http://t/rel");
    }
  }
  for (uint32_t i = 0; i < spec.num_vertices; i += 5) {
    builder.SetLocation(vertices[i],
                        Point{static_cast<double>((*rng)() % 100),
                              static_cast<double>((*rng)() % 100)});
  }
  for (uint32_t t = 0; t < spec.num_terms; ++t) {
    const uint32_t copies = 1 + static_cast<uint32_t>((*rng)() % 3);
    for (uint32_t c = 0; c < copies; ++c) {
      const VertexId v =
          vertices[static_cast<size_t>((*rng)() % spec.num_vertices)];
      builder.AddDocumentTerm(v, TermName(t));
    }
  }
  auto kb = builder.Finish();
  EXPECT_TRUE(kb.ok()) << kb.status().ToString();
  return kb.ok() ? std::move(*kb) : nullptr;
}

struct ReferenceMatch {
  TermId term = kInvalidTerm;
  VertexId vertex = kInvalidVertex;
  uint32_t distance = 0;
};

struct ReferenceTree {
  double looseness = kInf;
  std::vector<ReferenceMatch> matches;
};

/// The pre-bitset formulation: a FIFO BFS whose uncovered-keyword state
/// is an ordered set of deduplicated query positions, covers resolved
/// via DocumentStore::Contains. Matches are recorded in pop order, ties
/// within a pop in deduplicated query order — exactly the order the
/// executor's countr_zero bit walk produces.
ReferenceTree ReferenceTqsp(const KnowledgeBase& kb, VertexId root,
                            const std::vector<TermId>& query_terms) {
  std::vector<TermId> terms;
  for (TermId t : query_terms) {
    if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
      terms.push_back(t);
    }
  }
  std::set<size_t> uncovered;
  for (size_t i = 0; i < terms.size(); ++i) uncovered.insert(i);

  ReferenceTree out;
  const DocumentStore& docs = kb.documents();
  const Graph& graph = kb.graph();
  std::vector<char> seen(kb.num_vertices(), 0);
  std::deque<std::pair<VertexId, uint32_t>> queue;
  queue.emplace_back(root, 0);
  seen[root] = 1;
  double covered_sum = 0.0;
  while (!queue.empty() && !uncovered.empty()) {
    const auto [v, dist] = queue.front();
    queue.pop_front();
    std::vector<size_t> hit;
    for (size_t i : uncovered) {
      if (docs.Contains(v, terms[i])) hit.push_back(i);
    }
    for (size_t i : hit) {
      covered_sum += static_cast<double>(dist);
      out.matches.push_back(ReferenceMatch{terms[i], v, dist});
      uncovered.erase(i);
    }
    if (uncovered.empty()) break;
    for (VertexId w : graph.OutNeighbors(v)) {
      if (seen[w] == 0) {
        seen[w] = 1;
        queue.emplace_back(w, dist + 1);
      }
    }
  }
  out.looseness = uncovered.empty() ? 1.0 + covered_sum : kInf;
  return out;
}

bool HasEdge(const Graph& graph, VertexId src, VertexId dst) {
  const auto out = graph.OutNeighbors(src);
  return std::find(out.begin(), out.end(), dst) != out.end();
}

void ExpectTreeMatchesReference(const KnowledgeBase& kb,
                                const SemanticPlaceTree& got,
                                const ReferenceTree& want,
                                const std::string& context) {
  ASSERT_EQ(got.looseness, want.looseness) << context;
  ASSERT_EQ(got.IsQualified(), want.looseness != kInf) << context;
  if (!got.IsQualified()) return;
  ASSERT_EQ(got.matches.size(), want.matches.size()) << context;
  for (size_t m = 0; m < want.matches.size(); ++m) {
    const auto& gm = got.matches[m];
    const auto& wm = want.matches[m];
    ASSERT_EQ(gm.term, wm.term) << context << " match " << m;
    ASSERT_EQ(gm.vertex, wm.vertex) << context << " match " << m;
    ASSERT_EQ(gm.distance, wm.distance) << context << " match " << m;
    // The path is a real root-to-vertex walk of the right length.
    ASSERT_EQ(gm.path.size(), static_cast<size_t>(gm.distance) + 1)
        << context << " match " << m;
    ASSERT_EQ(gm.path.front(), got.root) << context << " match " << m;
    ASSERT_EQ(gm.path.back(), gm.vertex) << context << " match " << m;
    for (size_t s = 0; s + 1 < gm.path.size(); ++s) {
      ASSERT_TRUE(HasEdge(kb.graph(), gm.path[s], gm.path[s + 1]))
          << context << " match " << m << " step " << s;
    }
  }
}

TEST(BitsetCoverProperty, RandomTreesMatchSetBasedReferenceUpTo64Keywords) {
  std::mt19937_64 rng(0x7C5B64);
  for (int trial = 0; trial < 30; ++trial) {
    RandomKbSpec spec;
    spec.num_vertices = 20 + static_cast<uint32_t>(rng() % 100);
    // Mix of widths, biased toward the interesting ends, including the
    // exact 64-keyword boundary every third trial.
    switch (trial % 3) {
      case 0:
        spec.num_terms = 1 + static_cast<uint32_t>(rng() % 8);
        break;
      case 1:
        spec.num_terms = 20 + static_cast<uint32_t>(rng() % 40);
        break;
      default:
        spec.num_terms = 64;
        break;
    }
    auto kb = MakeRandomKb(spec, &rng);
    ASSERT_NE(kb, nullptr);
    ASSERT_GT(kb->num_places(), 0u);

    KspDatabase flat_db(kb.get());
    flat_db.PrepareAll(/*alpha=*/3);
    KspOptions legacy_options;
    legacy_options.bfs_frontier = BfsFrontier::kLegacy;
    KspDatabase legacy_db(kb.get(), legacy_options);
    legacy_db.PrepareAll(/*alpha=*/3);
    QueryExecutor flat_exec(&flat_db);
    QueryExecutor legacy_exec(&legacy_db);

    // Query keywords: a random subset (sometimes all) of the planted
    // terms, shuffled, with occasional duplicates appended — the dedup
    // must be invisible.
    std::vector<std::string> names;
    for (uint32_t t = 0; t < spec.num_terms; ++t) {
      names.push_back(TermName(t));
    }
    std::shuffle(names.begin(), names.end(), rng);
    const size_t take =
        (trial % 3 == 2) ? names.size()
                         : 1 + static_cast<size_t>(rng() % names.size());
    names.resize(take);
    KspQuery query;
    query.location = Point{50, 50};
    query.k = 1;
    query.keywords = kb->LookupTerms(names);
    for (TermId t : query.keywords) ASSERT_NE(t, kInvalidTerm);
    if (rng() % 2 == 0 && query.keywords.size() < 64) {
      query.keywords.push_back(query.keywords.front());  // duplicate
    }

    for (PlaceId p = 0; p < kb->num_places(); ++p) {
      const std::string context = "trial " + std::to_string(trial) +
                                  " place " + std::to_string(p) + " m=" +
                                  std::to_string(take);
      auto tree = flat_exec.ComputeTqspForPlace(p, query);
      ASSERT_TRUE(tree.ok()) << context << ": " << tree.status().ToString();
      const ReferenceTree want =
          ReferenceTqsp(*kb, kb->place_vertex(p), query.keywords);
      ExpectTreeMatchesReference(*kb, *tree, want, context);

      // The legacy frontier driver must agree exactly — same looseness,
      // same matches, same paths (the A/B flag is perf-only).
      auto legacy_tree = legacy_exec.ComputeTqspForPlace(p, query);
      ASSERT_TRUE(legacy_tree.ok()) << context;
      ExpectTreeMatchesReference(*kb, *legacy_tree, want,
                                 context + " (legacy)");
    }
  }
}

// ---------------------------------------------------------------------
// Layer 3: the 64-keyword contract edges.
// ---------------------------------------------------------------------

/// Chain KB v0 -> v1 -> ... -> v{n-1}, place at v0, keyword t planted
/// on v_t. Every keyword distance is exact by construction.
std::unique_ptr<KnowledgeBase> MakeChainKb(uint32_t n) {
  KnowledgeBaseBuilder builder;
  std::vector<VertexId> vertices;
  for (uint32_t i = 0; i < n; ++i) {
    vertices.push_back(
        builder.AddEntity("http://t/chain" + std::to_string(i)));
  }
  for (uint32_t i = 0; i + 1 < n; ++i) {
    builder.AddRelation(vertices[i], vertices[i + 1], "http://t/rel");
  }
  builder.SetLocation(vertices[0], Point{0, 0});
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddDocumentTerm(vertices[i], TermName(i));
  }
  auto kb = builder.Finish();
  EXPECT_TRUE(kb.ok()) << kb.status().ToString();
  return kb.ok() ? std::move(*kb) : nullptr;
}

TEST(BitsetCoverProperty, SixtyFourKeywordBoundaryIsExact) {
  auto kb = MakeChainKb(64);
  ASSERT_NE(kb, nullptr);
  KspDatabase db(kb.get());
  db.PrepareAll(/*alpha=*/3);
  QueryExecutor exec(&db);

  std::vector<std::string> names;
  for (uint32_t t = 0; t < 64; ++t) names.push_back(TermName(t));
  KspQuery query;
  query.k = 1;
  query.keywords = kb->LookupTerms(names);
  // 70 raw keywords, 64 distinct: dedup happens before the limit check.
  for (int d = 0; d < 6; ++d) query.keywords.push_back(query.keywords[d]);
  ASSERT_EQ(query.keywords.size(), 70u);

  auto tree = exec.ComputeTqspForPlace(0, query);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE(tree->IsQualified());
  // L = 1 + sum of distances 0..63 = 1 + 2016.
  EXPECT_EQ(tree->looseness, 2017.0);
  ASSERT_EQ(tree->matches.size(), 64u);
  const ReferenceTree want =
      ReferenceTqsp(*kb, kb->place_vertex(0), query.keywords);
  ExpectTreeMatchesReference(*kb, *tree, want, "chain64");
}

TEST(BitsetCoverProperty, MoreThan64DistinctKeywordsIsInvalidArgument) {
  auto kb = MakeChainKb(65);
  ASSERT_NE(kb, nullptr);
  KspDatabase db(kb.get());
  db.PrepareAll(/*alpha=*/3);
  QueryExecutor exec(&db);

  std::vector<std::string> names;
  for (uint32_t t = 0; t < 65; ++t) names.push_back(TermName(t));
  KspQuery query;
  query.k = 1;
  query.keywords = kb->LookupTerms(names);
  for (TermId t : query.keywords) ASSERT_NE(t, kInvalidTerm);

  // Every entry point that prepares a query context enforces the bound.
  auto tree = exec.ComputeTqspForPlace(0, query);
  ASSERT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsInvalidArgument())
      << tree.status().ToString();
  EXPECT_NE(tree.status().ToString().find("at most 64"), std::string::npos)
      << tree.status().ToString();

  auto result = exec.ExecuteBsp(query, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());

  // Dropping one keyword makes the same query legal again.
  query.keywords.pop_back();
  auto ok_tree = exec.ComputeTqspForPlace(0, query);
  ASSERT_TRUE(ok_tree.ok()) << ok_tree.status().ToString();
  EXPECT_TRUE(ok_tree->IsQualified());
}

}  // namespace
}  // namespace ksp
