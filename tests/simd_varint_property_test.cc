// Differential fuzz of the SIMD varint-delta decoder (common/
// simd_varint.h) against the scalar reference: every supported ISA
// level must produce byte-identical output, statuses, and consumed
// positions on 10k seeded random cases per level — including empty
// lists, single elements, max-size deltas, dense one-byte runs (the
// vector fast path), corrupt/truncated input, and lists long enough to
// straddle buffer-pool page boundaries. A disk-postings section
// additionally pins identical buffer-pool read patterns across levels:
// the decode must never influence what the pool fetches.
//
// Runs under ASan/UBSan in CI (the `property` ctest label): the 16/32-
// byte vector loads must be proven in-bounds, not assumed.

#include "common/simd_varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/varint.h"
#include "core/accessors.h"
#include "storage/shared_buffer_pool.h"
#include "text/document_store.h"
#include "text/inverted_index.h"

namespace ksp {
namespace {

/// The reference decoder: the historic per-value loop, written here
/// independently of the production scalar path.
Status ReferenceDecode(std::string_view src, size_t* pos, uint64_t count,
                       uint64_t limit, std::vector<VertexId>* out) {
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    KSP_RETURN_NOT_OK(GetVarint64(src, pos, &delta));
    prev = (i == 0) ? delta : prev + delta;
    if (limit != kVarintNoLimit && prev >= limit) {
      return Status::Corruption("range");
    }
    out->push_back(static_cast<VertexId>(prev));
  }
  return Status::OK();
}

struct Case {
  std::string encoded;   // Count varint followed by the deltas.
  uint64_t count = 0;
  size_t start = 0;      // Decode position after the count varint.
  uint64_t limit = kVarintNoLimit;
};

/// One random case: a delta-encoded list biased toward the shapes that
/// matter — long one-byte runs (vector fast path), multi-byte spikes,
/// max-u64 deltas (wrap + over-long encodings), and short/empty lists.
Case MakeCase(std::mt19937_64* rng) {
  Case c;
  const uint32_t shape = static_cast<uint32_t>((*rng)() % 100);
  size_t n;
  if (shape < 5) {
    n = 0;  // Empty list.
  } else if (shape < 15) {
    n = 1;  // Single element.
  } else if (shape < 40) {
    n = 1 + (*rng)() % 30;  // Short mixed list.
  } else {
    n = 30 + (*rng)() % 400;  // Long list: exercises 16/32-byte blocks.
  }
  std::string body;
  for (size_t i = 0; i < n; ++i) {
    uint64_t delta;
    const uint32_t kind = static_cast<uint32_t>((*rng)() % 100);
    if (kind < 70) {
      delta = (*rng)() % 128;  // One-byte varint (fast-path fodder).
    } else if (kind < 90) {
      delta = 128 + (*rng)() % 100000;  // Multi-byte.
    } else if (kind < 97) {
      delta = (*rng)();  // Anywhere in u64.
    } else {
      delta = ~uint64_t{0};  // Max delta: 10-byte varint + u64 wrap.
    }
    PutVarint64(&body, delta);
  }
  c.count = n;
  PutVarint64(&c.encoded, n);
  c.start = c.encoded.size();
  c.encoded += body;

  const uint32_t lim = static_cast<uint32_t>((*rng)() % 100);
  if (lim < 50) {
    c.limit = kVarintNoLimit;                 // Postings contract.
  } else if (lim < 80) {
    c.limit = 1 + (*rng)() % (1u << 20);      // Graph contract, tight.
  } else {
    c.limit = uint64_t{1} << 32;              // Graph contract, max ids.
  }

  // 10% of cases: corrupt the tail (truncation) so the error paths are
  // fuzzed too, not just the happy path.
  if ((*rng)() % 10 == 0 && c.encoded.size() > c.start) {
    c.encoded.resize(c.start + (*rng)() % (c.encoded.size() - c.start));
  }
  return c;
}

TEST(SimdVarintPropertyTest, AllIsaLevelsMatchReferenceOn10kSeededCases) {
  const std::vector<VarintIsa> levels = SupportedVarintIsas();
  ASSERT_FALSE(levels.empty());
  ASSERT_EQ(levels.front(), VarintIsa::kScalar);
  for (VarintIsa isa : levels) {
    SCOPED_TRACE(VarintIsaName(isa));
    std::mt19937_64 rng(0xC0FFEE);  // Same cases for every level.
    for (int t = 0; t < 10000; ++t) {
      const Case c = MakeCase(&rng);

      std::vector<VertexId> want;
      size_t want_pos = c.start;
      const Status want_st =
          ReferenceDecode(c.encoded, &want_pos, c.count, c.limit, &want);

      SetVarintIsaForTesting(isa);
      std::vector<VertexId> got;
      size_t got_pos = c.start;
      const Status got_st = DecodeVarintDeltas(
          c.encoded, &got_pos, c.count, c.limit, "range", &got);
      ResetVarintIsaForTesting();

      ASSERT_EQ(want_st.ok(), got_st.ok())
          << "case " << t << ": " << want_st.ToString() << " vs "
          << got_st.ToString();
      if (want_st.ok()) {
        // Identical bytes and identical consumed span.
        ASSERT_EQ(want, got) << "case " << t;
        ASSERT_EQ(want_pos, got_pos) << "case " << t;
      } else {
        // Same status class and message; the output prefix is
        // unspecified by contract (callers discard it).
        ASSERT_EQ(want_st.code(), got_st.code()) << "case " << t;
      }
    }
  }
}

TEST(SimdVarintPropertyTest, DenseOneByteRunsHitTheFastPathExactly) {
  // A purpose-built worst/best case: thousands of one-byte deltas, the
  // shape the 16/32-byte blocks are built for, across lengths around
  // every block-size boundary (15, 16, 17, 31, 32, 33, ...).
  for (size_t n : {15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u, 4096u}) {
    std::string encoded;
    PutVarint64(&encoded, n);
    const size_t start = encoded.size();
    for (size_t i = 0; i < n; ++i) {
      PutVarint64(&encoded, (i * 7) % 128);
    }
    std::vector<VertexId> want;
    size_t want_pos = start;
    ASSERT_TRUE(ReferenceDecode(encoded, &want_pos, n, kVarintNoLimit,
                                &want)
                    .ok());
    for (VarintIsa isa : SupportedVarintIsas()) {
      SetVarintIsaForTesting(isa);
      std::vector<VertexId> got;
      size_t got_pos = start;
      ASSERT_TRUE(DecodeVarintDeltas(encoded, &got_pos, n, kVarintNoLimit,
                                     nullptr, &got)
                      .ok())
          << VarintIsaName(isa) << " n=" << n;
      ResetVarintIsaForTesting();
      ASSERT_EQ(want, got) << VarintIsaName(isa) << " n=" << n;
      ASSERT_EQ(want_pos, got_pos) << VarintIsaName(isa) << " n=" << n;
    }
  }
}

TEST(SimdVarintPropertyTest, LimitViolationsErrorIdenticallyAtEveryLevel) {
  // Graph-decode contract: ids must stay < limit. Build lists whose
  // running sum crosses the limit at controlled offsets, including mid
  // one-byte-block (the vector gate must fall back, not store).
  for (size_t cross_at : {0u, 1u, 7u, 15u, 16u, 17u, 40u}) {
    std::string encoded;
    const size_t n = cross_at + 5;
    for (size_t i = 0; i < n; ++i) PutVarint64(&encoded, 10);
    const uint64_t limit = 10 * (cross_at + 1);  // Fails at index cross_at.
    for (VarintIsa isa : SupportedVarintIsas()) {
      SetVarintIsaForTesting(isa);
      std::vector<VertexId> got;
      size_t pos = 0;
      const Status st = DecodeVarintDeltas(encoded, &pos, n, limit,
                                           "id out of range", &got);
      ResetVarintIsaForTesting();
      ASSERT_FALSE(st.ok()) << VarintIsaName(isa);
      EXPECT_TRUE(st.IsCorruption()) << VarintIsaName(isa);
      EXPECT_NE(st.ToString().find("id out of range"), std::string::npos)
          << VarintIsaName(isa);
    }
  }
}

/// Disk-postings end-to-end: the same index fetched through the shared
/// buffer pool at every ISA level must yield identical posting ids AND
/// an identical pool read pattern (hits/misses per fetch) — the decoder
/// runs strictly after the page reads and must not perturb them.
TEST(SimdVarintPropertyTest, DiskPostingsReadPatternInvariantAcrossIsas) {
  // Synthetic postings: enough terms and ids that lists straddle 4 KiB
  // page boundaries in the blob.
  constexpr VertexId kNumVertices = 6000;
  constexpr TermId kNumTerms = 48;
  DocumentStoreBuilder builder;
  std::mt19937_64 rng(42);
  for (VertexId v = 0; v < kNumVertices; ++v) {
    const size_t k = 1 + rng() % 4;
    for (size_t i = 0; i < k; ++i) {
      builder.AddTerm(v, static_cast<TermId>(rng() % kNumTerms));
    }
  }
  const DocumentStore docs = builder.Finish(kNumVertices);
  const MemoryInvertedIndex memory_index =
      MemoryInvertedIndex::Build(docs, kNumTerms);

  const std::string path =
      ::testing::TempDir() + "/simd_varint_property_postings.idx";
  ASSERT_TRUE(DiskInvertedIndex::Write(memory_index, path).ok());

  struct Pattern {
    std::vector<std::vector<VertexId>> postings;
    std::vector<PageIoCounters> io;  // Per-fetch counters, in order.
  };
  auto run = [&](VarintIsa isa) -> Pattern {
    SetVarintIsaForTesting(isa);
    // A pool small enough to force eviction/refetch churn mid-workload.
    SharedBufferPool pool(/*budget_bytes=*/16 * 4096, /*page_size=*/4096);
    auto accessor = DiskPostingsAccessor::Open(path, &pool);
    EXPECT_TRUE(accessor.ok()) << accessor.status().ToString();
    Pattern pattern;
    // A deterministic fetch sequence with repeats (hits) and sweeps
    // (evictions): the pattern must reproduce exactly at every level.
    for (int round = 0; round < 3; ++round) {
      for (TermId t = 0; t < kNumTerms; ++t) {
        std::vector<VertexId> backing;
        std::span<const VertexId> view;
        PageIoCounters io;
        const Status st = (*accessor)->Fetch(t, &backing, &view, &io);
        EXPECT_TRUE(st.ok()) << st.ToString();
        pattern.postings.emplace_back(view.begin(), view.end());
        io.micros = 0;  // Timing is not part of the pattern.
        pattern.io.push_back(io);
      }
    }
    ResetVarintIsaForTesting();
    return pattern;
  };

  const std::vector<VarintIsa> levels = SupportedVarintIsas();
  const Pattern want = run(levels.front());
  // Sanity: the workload actually decoded something and touched pages.
  uint64_t total_fetches = 0;
  size_t total_ids = 0;
  for (const PageIoCounters& io : want.io) total_fetches += io.Fetches();
  for (const auto& list : want.postings) total_ids += list.size();
  ASSERT_GT(total_fetches, 0u);
  ASSERT_GT(total_ids, 1000u);

  for (size_t l = 1; l < levels.size(); ++l) {
    const Pattern got = run(levels[l]);
    ASSERT_EQ(want.postings, got.postings) << VarintIsaName(levels[l]);
    ASSERT_EQ(want.io.size(), got.io.size()) << VarintIsaName(levels[l]);
    for (size_t i = 0; i < want.io.size(); ++i) {
      EXPECT_EQ(want.io[i].hits, got.io[i].hits)
          << VarintIsaName(levels[l]) << " fetch " << i;
      EXPECT_EQ(want.io[i].misses, got.io[i].misses)
          << VarintIsaName(levels[l]) << " fetch " << i;
      EXPECT_EQ(want.io[i].evictions, got.io[i].evictions)
          << VarintIsaName(levels[l]) << " fetch " << i;
    }
  }
}

TEST(SimdVarintPropertyTest, ActiveIsaIsTheBestSupportedLevel) {
  ResetVarintIsaForTesting();
  const std::vector<VarintIsa> levels = SupportedVarintIsas();
  EXPECT_EQ(ActiveVarintIsa(), levels.back());
#if defined(__x86_64__)
  // The CI runners and dev machines are x86-64 with at least SSE4.1;
  // make sure the vector paths are actually covered there, not silently
  // skipped by a detection bug.
  EXPECT_GE(levels.size(), 2u);
#endif
}

}  // namespace
}  // namespace ksp
