// Serving-tier protocol and end-to-end behavior: codec roundtrips,
// oracle-matched query responses, inline health/metrics/explain, and the
// fast-reject path for malformed and oversized frames.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace ksp {
namespace {

std::unique_ptr<KnowledgeBase> MakeKb(uint32_t places) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(places));
  EXPECT_TRUE(kb.ok()) << kb.status().ToString();
  return std::move(*kb);
}

std::vector<std::string> KeywordStrings(const KnowledgeBase& kb,
                                        const KspQuery& query) {
  std::vector<std::string> out;
  out.reserve(query.keywords.size());
  for (TermId t : query.keywords) out.push_back(kb.vocabulary().Term(t));
  return out;
}

TEST(ServiceProtocolTest, QueryRequestRoundTrips) {
  ServiceRequest request;
  request.type = MessageType::kQuery;
  request.query.algorithm = KspAlgorithm::kSpp;
  request.query.k = 7;
  request.query.location = {12.5, -3.25};
  request.query.deadline_ms = 1500;
  request.query.keywords = {"museum", "baroque", ""};
  std::string payload;
  EncodeRequest(request, &payload);

  ServiceRequest decoded;
  ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
  EXPECT_EQ(decoded.type, MessageType::kQuery);
  EXPECT_EQ(decoded.query.algorithm, KspAlgorithm::kSpp);
  EXPECT_EQ(decoded.query.k, 7u);
  EXPECT_EQ(decoded.query.location.x, 12.5);
  EXPECT_EQ(decoded.query.location.y, -3.25);
  EXPECT_EQ(decoded.query.deadline_ms, 1500u);
  EXPECT_EQ(decoded.query.keywords, request.query.keywords);
}

TEST(ServiceProtocolTest, ResponseRoundTripsBothShapes) {
  ServiceResponse ok;
  ok.generation = 3;
  ok.entries.push_back({42, 2.0, 7.5, 15.0});
  ok.total_ms = 1.25;
  ok.body = "{\"x\": 1}";
  std::string payload;
  EncodeResponse(ok, &payload);
  ServiceResponse decoded;
  ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
  EXPECT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.generation, 3u);
  ASSERT_EQ(decoded.entries.size(), 1u);
  EXPECT_EQ(decoded.entries[0].place, 42u);
  EXPECT_EQ(decoded.entries[0].looseness, 2.0);
  EXPECT_EQ(decoded.entries[0].spatial_distance, 7.5);
  EXPECT_EQ(decoded.entries[0].score, 15.0);
  EXPECT_EQ(decoded.body, ok.body);

  ServiceResponse err;
  err.code = StatusCode::kUnavailable;
  err.message = "queue full";
  err.retry_after_ms = 25;
  payload.clear();
  EncodeResponse(err, &payload);
  ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
  EXPECT_EQ(decoded.code, StatusCode::kUnavailable);
  EXPECT_EQ(decoded.message, "queue full");
  EXPECT_EQ(decoded.retry_after_ms, 25u);
}

TEST(ServiceProtocolTest, MalformedPayloadsAreRejected) {
  ServiceRequest decoded;
  EXPECT_FALSE(DecodeRequest("", &decoded).ok());
  EXPECT_FALSE(DecodeRequest(std::string(1, '\x2A'), &decoded).ok());
  // Truncated query frame.
  ServiceRequest request;
  request.type = MessageType::kQuery;
  request.query.keywords = {"a"};
  std::string payload;
  EncodeRequest(request, &payload);
  EXPECT_FALSE(
      DecodeRequest(std::string_view(payload).substr(0, payload.size() - 1),
                    &decoded)
          .ok());
  // Trailing garbage.
  payload.push_back('x');
  EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());
}

class ServiceEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kb_ = MakeKb(500);
    auto db = std::make_shared<KspDatabase>(kb_.get());
    db->PrepareAll(3);
    db_ = db;
    ServerOptions options;
    options.num_workers = 2;
    server_ = std::make_unique<KspServer>(kb_.get(), KspOptions(), options);
    ASSERT_TRUE(server_->ServeDatabase(db).ok());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
    QueryGenOptions qopt;
    qopt.num_keywords = 3;
    qopt.k = 4;
    qopt.seed = 11;
    queries_ = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 6);
    ASSERT_FALSE(queries_.empty());
  }

  void TearDown() override { server_->Stop(); }

  Result<KspClient> Connect() {
    return KspClient::Connect("127.0.0.1", server_->port());
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::shared_ptr<KspDatabase> db_;
  std::unique_ptr<KspServer> server_;
  std::vector<KspQuery> queries_;
};

TEST_F(ServiceEndToEndTest, QueriesMatchDirectExecution) {
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  QueryExecutor oracle(db_.get());
  for (const KspQuery& query : queries_) {
    auto expected = oracle.ExecuteSp(query, nullptr);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto response = client->Query(KspAlgorithm::kSp, query.location,
                                  KeywordStrings(*kb_, query), query.k);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->ok()) << response->message;
    EXPECT_EQ(response->generation, 1u);
    ASSERT_EQ(response->entries.size(), expected->entries.size());
    for (size_t i = 0; i < expected->entries.size(); ++i) {
      EXPECT_EQ(response->entries[i].place, expected->entries[i].place);
      EXPECT_EQ(response->entries[i].looseness,
                expected->entries[i].looseness);
      EXPECT_EQ(response->entries[i].score, expected->entries[i].score);
    }
  }
}

TEST_F(ServiceEndToEndTest, HealthReportsServingStateAndBackend) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto response = client->Health();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok());
  EXPECT_NE(response->body.find("\"status\": \"serving\""),
            std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"storage_backend\": \"ok\""),
            std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"serving_generation\": 1"),
            std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"queue_capacity\""), std::string::npos);
}

TEST_F(ServiceEndToEndTest, MetricsExposeServerCounters) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto query = client->Query(KspAlgorithm::kSp, queries_[0].location,
                             KeywordStrings(*kb_, queries_[0]),
                             queries_[0].k);
  ASSERT_TRUE(query.ok());
  auto response = client->Metrics();
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok());
  EXPECT_NE(response->body.find("ksp_server_requests_total"),
            std::string::npos);
  EXPECT_NE(response->body.find("ksp_queries_total"), std::string::npos)
      << "worker query metrics should land in the server registry";
}

TEST_F(ServiceEndToEndTest, ExplainReturnsJsonWithBackendStatus) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto response = client->Explain(KspAlgorithm::kSp, queries_[0].location,
                                  KeywordStrings(*kb_, queries_[0]),
                                  queries_[0].k);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << response->message;
  EXPECT_NE(response->body.find("\"candidates\""), std::string::npos);
  EXPECT_NE(response->body.find("\"storage_backend\": \"ok\""),
            std::string::npos)
      << response->body;
}

TEST_F(ServiceEndToEndTest, ExpiredDeadlineIsTyped) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  // 1 ms must elapse before a worker first checks the token under any
  // scheduling; queue admission keeps the request valid regardless.
  auto response =
      client->Query(KspAlgorithm::kSp, queries_[0].location,
                    KeywordStrings(*kb_, queries_[0]), queries_[0].k,
                    /*deadline_ms=*/1);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // Tiny queries can still beat a 1 ms deadline; accept either a full
  // answer or the typed deadline error — never anything else.
  if (!response->ok()) {
    EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded)
        << response->message;
  }
}

TEST_F(ServiceEndToEndTest, MalformedAndOversizedFramesAreFastRejected) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  // Keywords over the server limit encode fine but fail validation:
  // a typed InvalidArgument comes back and the connection survives.
  ServiceRequest too_many;
  too_many.type = MessageType::kQuery;
  too_many.query.keywords.assign(65, "kw");
  auto response = client->Call(too_many);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  // The connection survived the typed rejection.
  auto health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->ok());

  // A frame announcing more than max_frame_bytes is answered with an
  // error and the connection dropped.
  ServerOptions tiny;
  tiny.max_frame_bytes = 64;
  tiny.num_workers = 1;
  KspServer small_server(kb_.get(), KspOptions(), tiny);
  ASSERT_TRUE(small_server.Start().ok());
  auto big_client = KspClient::Connect("127.0.0.1", small_server.port());
  ASSERT_TRUE(big_client.ok());
  ServiceRequest big;
  big.type = MessageType::kQuery;
  big.query.keywords.assign(30, std::string(16, 'x'));
  auto rejected = big_client->Call(big);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->code, StatusCode::kInvalidArgument);
  small_server.Stop();
}

TEST_F(ServiceEndToEndTest, UnknownKeywordYieldsEmptyResult) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto response = client->Query(
      KspAlgorithm::kSp, queries_[0].location,
      {"no-such-keyword-in-any-vocabulary"}, /*k=*/3);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok()) << response->message;
  EXPECT_TRUE(response->entries.empty());
}

TEST(ServiceServerTest, DegradedBackendSurfacesInHealthAndExplain) {
  auto kb = MakeKb(200);
  KspOptions db_options;
  db_options.backend = StorageBackend::kDisk;
  // Spilling under /dev/null cannot succeed: preparation leaves the
  // in-memory indexes intact but parks a sticky backend error.
  db_options.spill_directory = "/dev/null/ksp-service-degraded";
  auto db = std::make_shared<KspDatabase>(kb.get(), db_options);
  db->PrepareAll(3);
  ASSERT_TRUE(db->has_rtree());
  ASSERT_FALSE(db->storage_backend_status().ok());

  ServerOptions options;
  options.num_workers = 1;
  KspServer server(kb.get(), db_options, options);
  ASSERT_TRUE(server.ServeDatabase(db).ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = KspClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  auto health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"status\": \"degraded\""),
            std::string::npos)
      << health->body;
  EXPECT_EQ(health->body.find("\"storage_backend\": \"ok\""),
            std::string::npos)
      << health->body;

  auto explain = client->Explain(KspAlgorithm::kSp, {0, 0}, {"a"}, 2);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  ASSERT_TRUE(explain->ok()) << explain->message;
  EXPECT_NE(explain->body.find("storage_backend_error"), std::string::npos)
      << explain->body;

  // Actual queries are refused with a typed error, not wrong answers.
  auto query = client->Query(KspAlgorithm::kSp, {0, 0}, {"a"}, 2);
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(query->ok());
  server.Stop();
}

TEST(ServiceServerTest, NoDatabaseMeansUnavailable) {
  auto kb = MakeKb(200);
  ServerOptions options;
  options.num_workers = 1;
  KspServer server(kb.get(), KspOptions(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = KspClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Query(KspAlgorithm::kSp, {0, 0}, {"a"}, 1);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kUnavailable);
  EXPECT_GT(response->retry_after_ms, 0u);
  auto health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("no_database"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace ksp
