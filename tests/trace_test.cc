// QueryTrace span semantics (nesting, early-return closing, aggregate
// mode), executor-level tracing and metrics recording, and the EXPLAIN
// report on the paper's Figure 1 knowledge base.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "common/status.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/trace.h"
#include "datagen/fixtures.h"

namespace ksp {
namespace {

void SpinFor(std::chrono::microseconds duration) {
  const auto until = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(QueryTraceTest, RecordsSpanWithDurationAndItems) {
  QueryTrace trace;
  {
    TraceSpan span(&trace, TracePhase::kTqspCompute);
    span.AddItems(17);
    SpinFor(std::chrono::microseconds(200));
  }
  EXPECT_FALSE(trace.HasOpenSpans());
  ASSERT_EQ(trace.spans().size(), 1u);
  const QueryTrace::Span& span = trace.spans()[0];
  EXPECT_EQ(span.phase, TracePhase::kTqspCompute);
  EXPECT_EQ(span.depth, 0u);
  EXPECT_EQ(span.items, 17u);
  EXPECT_GT(span.duration_us, 0);
  EXPECT_EQ(trace.PhaseCount(TracePhase::kTqspCompute), 1u);
  EXPECT_EQ(trace.PhaseItems(TracePhase::kTqspCompute), 17u);
  EXPECT_EQ(trace.PhaseInclusiveUs(TracePhase::kTqspCompute),
            span.duration_us);
}

TEST(QueryTraceTest, NestedSpansPartitionExclusiveTime) {
  QueryTrace trace;
  {
    TraceSpan outer(&trace, TracePhase::kTqspCompute);
    SpinFor(std::chrono::microseconds(300));
    {
      TraceSpan inner(&trace, TracePhase::kRtreeNn);
      SpinFor(std::chrono::microseconds(300));
    }
    SpinFor(std::chrono::microseconds(300));
  }
  ASSERT_EQ(trace.spans().size(), 2u);
  // Spans are recorded at close time: inner first, depth 1.
  EXPECT_EQ(trace.spans()[0].phase, TracePhase::kRtreeNn);
  EXPECT_EQ(trace.spans()[0].depth, 1u);
  EXPECT_EQ(trace.spans()[1].phase, TracePhase::kTqspCompute);
  EXPECT_EQ(trace.spans()[1].depth, 0u);

  // Exclusive time excludes the child exactly: outer_inclusive ==
  // outer_exclusive + inner_inclusive, so summing exclusive times over
  // phases never double-counts an instant.
  const int64_t outer_inc = trace.PhaseInclusiveUs(TracePhase::kTqspCompute);
  const int64_t outer_exc = trace.PhaseExclusiveUs(TracePhase::kTqspCompute);
  const int64_t inner_inc = trace.PhaseInclusiveUs(TracePhase::kRtreeNn);
  EXPECT_EQ(outer_inc, outer_exc + inner_inc);
  EXPECT_GT(outer_exc, 0);
  EXPECT_EQ(trace.PhaseExclusiveUs(TracePhase::kRtreeNn), inner_inc);
}

Status ReturnsEarly(QueryTrace* trace) {
  TraceSpan span(trace, TracePhase::kDocFetch);
  return Status::InvalidArgument("early exit");  // Span must still close.
}

TEST(QueryTraceTest, SpanClosesOnEarlyStatusReturn) {
  QueryTrace trace;
  EXPECT_FALSE(ReturnsEarly(&trace).ok());
  EXPECT_FALSE(trace.HasOpenSpans());
  EXPECT_EQ(trace.PhaseCount(TracePhase::kDocFetch), 1u);
  ASSERT_EQ(trace.spans().size(), 1u);
}

TEST(QueryTraceTest, RecordEventIsZeroDuration) {
  QueryTrace trace;
  trace.RecordEvent(TracePhase::kRule2Prune);
  trace.RecordEvent(TracePhase::kRule2Prune, 3);
  EXPECT_EQ(trace.PhaseCount(TracePhase::kRule2Prune), 2u);
  EXPECT_EQ(trace.PhaseItems(TracePhase::kRule2Prune), 4u);
  EXPECT_EQ(trace.PhaseInclusiveUs(TracePhase::kRule2Prune), 0);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].duration_us, 0);
}

TEST(QueryTraceTest, AggregateOnlyModeKeepsNoSpanList) {
  QueryTrace trace;
  trace.set_record_spans(false);
  {
    TraceSpan span(&trace, TracePhase::kBfsExpand);
    span.AddItems(5);
  }
  trace.RecordEvent(TracePhase::kRule2Prune);
  EXPECT_TRUE(trace.spans().empty());  // No unbounded growth...
  EXPECT_EQ(trace.PhaseCount(TracePhase::kBfsExpand), 1u);  // ...but
  EXPECT_EQ(trace.PhaseItems(TracePhase::kBfsExpand), 5u);  // aggregates
  EXPECT_EQ(trace.PhaseCount(TracePhase::kRule2Prune), 1u);  // survive.
}

TEST(QueryTraceTest, ClearResetsEverything) {
  QueryTrace trace;
  { TraceSpan span(&trace, TracePhase::kRtreeNn); }
  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
  for (size_t p = 0; p < kNumTracePhases; ++p) {
    const TracePhase phase = static_cast<TracePhase>(p);
    EXPECT_EQ(trace.PhaseCount(phase), 0u);
    EXPECT_EQ(trace.PhaseInclusiveUs(phase), 0);
  }
}

TEST(QueryTraceTest, NullTraceRecordsNothing) {
  // The disabled path: spans over a null trace never touch a trace, so
  // there is nothing to assert beyond "does not crash" here — the <2%
  // overhead bound is benchmarked in bench_micro_components
  // (BM_TraceSpanDisabled) and the compile-time variant is NullTraceSpan,
  // whose static_asserts pin zero state.
  QueryTrace* trace = nullptr;
  TraceSpan span(trace, TracePhase::kTqspCompute);
  span.AddItems(100);
  NullTraceSpan null_span(nullptr, TracePhase::kTqspCompute);
  null_span.AddItems(100);
}

TEST(QueryTraceTest, ToJsonShape) {
  QueryTrace trace;
  {
    TraceSpan span(&trace, TracePhase::kDocFetch);
    span.AddItems(2);
  }
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"spans\": [{\"phase\": \"doc_fetch\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"phase_totals_us\": {\"doc_fetch\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"items\": 2"), std::string::npos) << json;
}

/// Executor-level tracing on the paper's running example.
class ExecutorTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = BuildFigure1KnowledgeBase();
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = std::move(kb).value();
    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(/*alpha=*/3);
    exec_ = std::make_unique<QueryExecutor>(db_.get());
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::unique_ptr<QueryExecutor> exec_;
};

TEST_F(ExecutorTraceTest, AttachedTraceSeesEveryPhaseOfSpp) {
  QueryTrace trace;
  exec_->set_trace(&trace);
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  QueryStats stats;
  ASSERT_TRUE(exec_->ExecuteSpp(query, &stats).ok());
  EXPECT_FALSE(trace.HasOpenSpans());
  EXPECT_EQ(trace.PhaseCount(TracePhase::kDocFetch), 1u);
  EXPECT_EQ(trace.PhaseCount(TracePhase::kTqspCompute),
            stats.tqsp_computations);
  EXPECT_EQ(trace.PhaseItems(TracePhase::kTqspCompute),
            stats.vertices_visited);
  EXPECT_GT(trace.PhaseCount(TracePhase::kRtreeNn), 0u);
  EXPECT_FALSE(trace.spans().empty());

  // The trace is per-query: the next Execute* clears it first.
  KspQuery q1 = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  ASSERT_TRUE(exec_->ExecuteSpp(q1, &stats).ok());
  EXPECT_EQ(trace.PhaseCount(TracePhase::kDocFetch), 1u);
}

TEST_F(ExecutorTraceTest, Rule2AbortSurfacesAsTraceEvent) {
  QueryTrace trace;
  exec_->set_trace(&trace);
  // Example 8: with k=1 at q1, SPP aborts p2's TQSP via the dynamic bound.
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  QueryStats stats;
  ASSERT_TRUE(exec_->ExecuteSpp(query, &stats).ok());
  EXPECT_EQ(stats.pruned_dynamic_bound, 1u);
  EXPECT_EQ(trace.PhaseCount(TracePhase::kRule2Prune), 1u);
}

TEST_F(ExecutorTraceTest, DetachedExecutorHasNoTrace) {
  EXPECT_EQ(exec_->trace(), nullptr);
  EXPECT_EQ(exec_->metrics(), nullptr);
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  ASSERT_TRUE(exec_->ExecuteSp(query).ok());  // Untraced path still works.
}

TEST_F(ExecutorTraceTest, MetricsRecordQueryCountersAndPhases) {
  MetricsRegistry registry;
  exec_->set_metrics(&registry);
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  QueryStats stats;
  ASSERT_TRUE(exec_->ExecuteSpp(query, &stats).ok());
  ASSERT_TRUE(exec_->ExecuteSp(query, &stats).ok());

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters["ksp_queries_total"], 2u);
  EXPECT_EQ(snapshot.counters["ksp_query_timeouts_total"], 0u);
  EXPECT_GT(snapshot.counters["ksp_tqsp_computations_total"], 0u);
  EXPECT_GT(snapshot.counters["ksp_bfs_vertices_visited_total"], 0u);
  EXPECT_EQ(snapshot.histograms["ksp_query_latency_ms"].count, 2u);
  // Per-phase exclusive-time counters exist (values may round to 0 µs on
  // this tiny KB, so assert presence, not magnitude).
  EXPECT_NE(snapshot.counters.find("ksp_phase_tqsp_compute_us_total"),
            snapshot.counters.end());
  EXPECT_NE(snapshot.counters.find("ksp_phase_rtree_nn_us_total"),
            snapshot.counters.end());
}

TEST_F(ExecutorTraceTest, ExplainBspFigure1Golden) {
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  auto report = exec_->Explain(query, KspAlgorithm::kBsp);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // BSP visits both places in spatial order, computes both TQSPs, and
  // both land in the top-2 (Examples 4-5: L=6 and L=4).
  ASSERT_EQ(report->candidates.size(), 2u);
  EXPECT_EQ(report->candidates[0].outcome, CandidateOutcome::kInTopK);
  EXPECT_EQ(report->candidates[1].outcome, CandidateOutcome::kInTopK);
  EXPECT_DOUBLE_EQ(report->candidates[0].looseness, 6.0);
  EXPECT_DOUBLE_EQ(report->candidates[1].looseness, 4.0);
  EXPECT_EQ(report->termination, "exhausted");
  ASSERT_EQ(report->result.entries.size(), 2u);

  EXPECT_EQ(report->ToText(kb_.get()),
            "EXPLAIN BSP k=2 location=(43.51, 4.75) keywords=4\n"
            "order  kind  id        spatial      theta  looseness      "
            "score  outcome\n"
            "    0  place 0        0.219317        inf          6     "
            "1.3159  in_topk\n"
            "    1  place 1         1.27781        inf          4    "
            "5.11124  in_topk\n"
            "terminated: exhausted\n"
            "counters: tqsp=2 rtree_nodes=1 reach=0 pruned r1=0 r2=0 r3=0 "
            "r4=0\n"
            "result:\n"
            "  1. place 0 http://example.org/Montmajour_Abbey L=6 "
            "S=0.219317 f=1.3159\n"
            "  2. place 1 "
            "http://example.org/Roman_Catholic_Diocese_of_Frejus_Toulon "
            "L=4 S=1.27781 f=5.11124\n");
}

TEST_F(ExecutorTraceTest, ExplainSppRecordsPruneOutcomes) {
  // {church, architecture}: Rule 1 discards both places (§4.1).
  KspQuery query = db_->MakeQuery(kQ2, {"church", "architecture"}, 2);
  auto report = exec_->Explain(query, KspAlgorithm::kSpp);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->candidates.size(), 2u);
  EXPECT_EQ(report->candidates[0].outcome, CandidateOutcome::kPrunedRule1);
  EXPECT_EQ(report->candidates[1].outcome, CandidateOutcome::kPrunedRule1);
  EXPECT_TRUE(report->result.entries.empty());
  EXPECT_EQ(report->stats.pruned_unqualified, 2u);

  // Example 8: the dynamic bound kills p2 when k=1.
  KspQuery q1 = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  auto r2 = exec_->Explain(q1, KspAlgorithm::kSpp);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->candidates.size(), 2u);
  EXPECT_EQ(r2->candidates[0].outcome, CandidateOutcome::kInTopK);
  EXPECT_EQ(r2->candidates[1].outcome, CandidateOutcome::kPrunedRule2);
}

TEST_F(ExecutorTraceTest, ExplainSpReportsAlphaPrunes) {
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  auto report = exec_->Explain(query, KspAlgorithm::kSp);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->result.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(report->result.entries[0].looseness, 6.0);
  // Every candidate row carries a consistent outcome; SP may kill the
  // runner-up with Rule 2/3 depending on bound tightness.
  for (const ExplainCandidate& c : report->candidates) {
    EXPECT_NE(CandidateOutcomeName(c.outcome), std::string("?"));
  }
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"algorithm\": \"SP\""), std::string::npos);
  EXPECT_NE(json.find("\"termination\": \""), std::string::npos);
}

TEST_F(ExecutorTraceTest, ExplainTaIsUnimplemented) {
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  auto report = exec_->Explain(query, KspAlgorithm::kTa);
  EXPECT_FALSE(report.ok());
  auto kw = exec_->Explain(query, KspAlgorithm::kKeywordOnly);
  EXPECT_FALSE(kw.ok());
}

}  // namespace
}  // namespace ksp
