// Cooperative cancellation / deadline exactness (DESIGN.md §11). The
// contract under test: a tripped CancellationToken makes Execute* return
// kCancelled / kDeadlineExceeded with stats.completed == false and NO
// result — never a partial top-k presented as complete — and leaves the
// executor scratch so clean that re-running the same query is
// byte-identical to a never-cancelled run, on both storage backends,
// with no leaked buffer-pool pins and no poisoned semantic-cache entry.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

using ExecuteFn = Result<KspResult> (QueryExecutor::*)(const KspQuery&,
                                                       QueryStats*);

struct NamedAlgorithm {
  const char* name;
  ExecuteFn fn;
};

constexpr NamedAlgorithm kAlgorithms[] = {
    {"BSP", &QueryExecutor::ExecuteBsp},
    {"SPP", &QueryExecutor::ExecuteSpp},
    {"SP", &QueryExecutor::ExecuteSp},
    {"TA", &QueryExecutor::ExecuteTa},
    {"KW", &QueryExecutor::ExecuteKeywordOnly},
};

std::unique_ptr<KnowledgeBase> MakeKb(uint32_t places, uint32_t seed = 7) {
  SyntheticProfile profile = SyntheticProfile::DBpediaLike(places);
  profile.seed = seed;
  auto kb = GenerateKnowledgeBase(profile);
  EXPECT_TRUE(kb.ok()) << kb.status().ToString();
  return std::move(*kb);
}

std::vector<KspQuery> MakeQueries(const KnowledgeBase& kb, size_t count) {
  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 4;
  qopt.seed = 23;
  return GenerateQueries(kb, QueryClass::kOriginal, qopt, count);
}

void ExpectSameResult(const KspResult& got, const KspResult& want,
                      const std::string& context) {
  ASSERT_EQ(got.entries.size(), want.entries.size()) << context;
  for (size_t i = 0; i < got.entries.size(); ++i) {
    EXPECT_EQ(got.entries[i].place, want.entries[i].place) << context;
    EXPECT_EQ(got.entries[i].looseness, want.entries[i].looseness)
        << context;
    EXPECT_EQ(got.entries[i].spatial_distance,
              want.entries[i].spatial_distance)
        << context;
    EXPECT_EQ(got.entries[i].score, want.entries[i].score) << context;
  }
}

/// Cancels a query at every feasible check index until cancellation stops
/// biting, re-running after each cancellation and comparing against the
/// uncancelled reference. Exercises every phase a check can land in:
/// early checks hit the first BFS, later ones the pipeline commit or the
/// final candidates.
void RunCancellationSweep(KspDatabase* db, const KspQuery& query,
                          const NamedAlgorithm& algorithm,
                          uint32_t intra_threads) {
  QueryExecutor executor(db);
  executor.set_intra_query_threads(intra_threads);

  auto reference = (executor.*algorithm.fn)(query, nullptr);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  CancellationToken token;
  executor.set_cancellation(&token);
  uint64_t cancellations = 0;
  // Sparse sweep: dense early (phase boundaries cluster there), then
  // exponential — total checks per query run in the hundreds at most.
  for (uint64_t trip = 1;; trip = trip < 16 ? trip + 1 : trip * 2) {
    // Drop the result-layer entry from the previous rerun (and the
    // reference run), or the sweep would be served from cache before a
    // single token check. The cancelled attempt below then repopulates
    // the dg layer — any entry it inserts is exactly the poisoning
    // hazard the rerun comparison is here to catch.
    if (db->semantic_cache() != nullptr) db->semantic_cache()->Invalidate();
    token.Reset();
    token.CancelAfterChecks(trip);
    QueryStats stats;
    auto cancelled = (executor.*algorithm.fn)(query, &stats);
    token.Reset();  // Disarm before the verification run.
    const std::string context = std::string(algorithm.name) + " trip=" +
                                std::to_string(trip) +
                                " threads=" + std::to_string(intra_threads);
    if (cancelled.ok()) {
      // The token no longer fires inside the run: the sweep is done.
      ExpectSameResult(*cancelled, *reference, context + " (uncancelled)");
      break;
    }
    ++cancellations;
    EXPECT_TRUE(cancelled.status().IsCancelled()) << context << ": "
        << cancelled.status().ToString();
    EXPECT_FALSE(stats.completed) << context;
    // Exactness: the very next run must be byte-identical to a run that
    // never saw a cancellation (no poisoned scratch, no stale cache).
    QueryStats rerun_stats;
    auto rerun = (executor.*algorithm.fn)(query, &rerun_stats);
    ASSERT_TRUE(rerun.ok()) << context << ": " << rerun.status().ToString();
    EXPECT_TRUE(rerun_stats.completed) << context;
    ExpectSameResult(*rerun, *reference, context + " (rerun)");
  }
  executor.set_cancellation(nullptr);
  EXPECT_GT(cancellations, 0u)
      << algorithm.name << ": the sweep never landed a cancellation";
}

TEST(CancellationTest, TokenTripsAtRequestedCheck) {
  CancellationToken token;
  EXPECT_TRUE(token.Check().ok());
  token.CancelAfterChecks(3);        // Also resets the check counter.
  EXPECT_TRUE(token.Check().ok());   // check #1
  EXPECT_TRUE(token.Check().ok());   // check #2
  EXPECT_FALSE(token.Check().ok());  // check #3 trips
  EXPECT_TRUE(token.Check().IsCancelled());
  token.Reset();
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancellationTest, DeadlineTripsAndIsSticky) {
  CancellationToken token;
  token.set_deadline_after_ms(0);  // Already expired.
  EXPECT_TRUE(token.Check().IsDeadlineExceeded());
  EXPECT_TRUE(token.Check().IsDeadlineExceeded());
  token.clear_deadline();
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancellationTest, ExpiredDeadlineFailsQueryWithPartialStats) {
  auto kb = MakeKb(300);
  KspDatabase db(kb.get());
  db.PrepareAll(3);
  const auto queries = MakeQueries(*kb, 1);
  ASSERT_FALSE(queries.empty());

  QueryExecutor executor(&db);
  CancellationToken token;
  token.set_deadline_after_ms(0);
  executor.set_cancellation(&token);
  QueryStats stats;
  auto result = executor.ExecuteSp(queries[0], &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_FALSE(stats.completed);
}

TEST(CancellationTest, RerunAfterCancelIsExactOnMemoryBackend) {
  auto kb = MakeKb(500);
  KspOptions options;
  options.cache_budget_bytes = 256 * 1024;  // Cache on: catches poisoning.
  KspDatabase db(kb.get(), options);
  db.PrepareAll(3);
  const auto queries = MakeQueries(*kb, 2);
  ASSERT_GE(queries.size(), 1u);

  for (const NamedAlgorithm& algorithm : kAlgorithms) {
    RunCancellationSweep(&db, queries[0], algorithm, /*intra_threads=*/1);
  }
}

TEST(CancellationTest, RerunAfterCancelIsExactInParallelPipeline) {
  auto kb = MakeKb(500);
  KspOptions options;
  options.cache_budget_bytes = 256 * 1024;
  KspDatabase db(kb.get(), options);
  db.PrepareAll(3);
  const auto queries = MakeQueries(*kb, 2);
  ASSERT_GE(queries.size(), 1u);

  // Pipeline algorithms only (TA/KW never enter the pipeline).
  constexpr NamedAlgorithm kPipelined[] = {
      {"BSP", &QueryExecutor::ExecuteBsp},
      {"SPP", &QueryExecutor::ExecuteSpp},
      {"SP", &QueryExecutor::ExecuteSp},
  };
  for (const NamedAlgorithm& algorithm : kPipelined) {
    RunCancellationSweep(&db, queries[0], algorithm, /*intra_threads=*/3);
  }
}

TEST(CancellationTest, RerunAfterCancelIsExactOnDiskBackendAndPinsDrop) {
  auto kb = MakeKb(400);
  KspOptions options;
  options.backend = StorageBackend::kDisk;
  options.buffer_pool_budget_bytes = 1 << 20;
  options.cache_budget_bytes = 128 * 1024;
  KspDatabase db(kb.get(), options);
  db.PrepareAll(3);
  ASSERT_TRUE(db.storage_backend_status().ok())
      << db.storage_backend_status().ToString();
  ASSERT_NE(db.buffer_pool(), nullptr);
  const auto queries = MakeQueries(*kb, 2);
  ASSERT_GE(queries.size(), 1u);

  for (const NamedAlgorithm& algorithm : kAlgorithms) {
    RunCancellationSweep(&db, queries[0], algorithm, /*intra_threads=*/1);
    // A cancelled BFS must not leak page pins: a pinned frame would be
    // unevictable forever and eventually wedge the pool.
    EXPECT_EQ(db.buffer_pool()->GetStats().pinned_pages, 0u)
        << algorithm.name;
  }
}

TEST(CancellationTest, CancelledBfsDoesNotPoisonNegativeCache) {
  // A BFS cut short must not record "unreachable" for keywords it simply
  // had not reached yet — that entry would silently drop places from
  // every later query. Cancel mid-BFS repeatedly, then compare a cached
  // run against a cache-free database.
  auto kb = MakeKb(500);
  KspOptions cached_options;
  cached_options.cache_budget_bytes = kCacheUnlimited;
  KspDatabase cached_db(kb.get(), cached_options);
  cached_db.PrepareAll(3);
  KspDatabase plain_db(kb.get());
  plain_db.PrepareAll(3);

  const auto queries = MakeQueries(*kb, 4);
  ASSERT_FALSE(queries.empty());

  QueryExecutor cached_exec(&cached_db);
  CancellationToken token;
  cached_exec.set_cancellation(&token);
  for (const KspQuery& query : queries) {
    for (uint64_t trip = 1; trip <= 40; trip += 3) {
      token.Reset();
      token.CancelAfterChecks(trip);
      (void)cached_exec.ExecuteSpp(query, nullptr);
    }
  }
  token.Reset();
  cached_exec.set_cancellation(nullptr);

  QueryExecutor plain_exec(&plain_db);
  for (const KspQuery& query : queries) {
    auto cached = cached_exec.ExecuteSpp(query, nullptr);
    auto plain = plain_exec.ExecuteSpp(query, nullptr);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    ExpectSameResult(*cached, *plain, "post-cancellation cached query");
  }
}

TEST(CancellationTest, CancellationsAreCounted) {
  auto kb = MakeKb(300);
  KspDatabase db(kb.get());
  db.PrepareAll(3);
  const auto queries = MakeQueries(*kb, 1);
  ASSERT_FALSE(queries.empty());

  MetricsRegistry registry;
  QueryExecutor executor(&db);
  executor.set_metrics(&registry);
  CancellationToken token;
  executor.set_cancellation(&token);
  token.CancelAfterChecks(1);
  QueryStats stats;
  auto result = executor.ExecuteSp(queries[0], &stats);
  ASSERT_FALSE(result.ok());
  const auto snapshot = registry.Snapshot();
  const auto it = snapshot.counters.find("ksp_query_cancellations_total");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_EQ(it->second, 1u);
}

}  // namespace
}  // namespace ksp
