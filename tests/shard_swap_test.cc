// Hot swap under sharding: installing a sharded directory flips every
// shard at once behind the server's single ServingState pointer, so no
// in-flight query may ever observe a mix of shard generations. Clients
// hammer the server across repeated sharded swaps: zero transport
// errors, every answer oracle-exact for its generation, and ≥2 serving
// generations answering (the load really overlapped the swaps). A torn
// multi-shard save — one shard directory bumped out from under the
// ensemble — must fail the swap with Corruption and leave the current
// generation serving untouched.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "service/client.h"
#include "service/server.h"
#include "shard/partition.h"
#include "shard/sharded_database.h"
#include "shard/sharded_executor.h"

namespace ksp {
namespace {

std::unique_ptr<KnowledgeBase> MakeKb(uint32_t places) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(places));
  EXPECT_TRUE(kb.ok()) << kb.status().ToString();
  return std::move(*kb);
}

std::vector<std::string> KeywordStrings(const KnowledgeBase& kb,
                                        const KspQuery& query) {
  std::vector<std::string> out;
  out.reserve(query.keywords.size());
  for (TermId t : query.keywords) out.push_back(kb.vocabulary().Term(t));
  return out;
}

std::string FreshTempDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ksp_shard_swap_" + tag + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(ShardSwapTest, ShardedSwapUnderLoadIsAtomicAndExact) {
  auto kb = MakeKb(500);

  // The sharded ensemble to serve: K=3 STR tiles, saved twice so
  // successive swaps land on observably different index generations —
  // always aligned across shards thanks to the generation floor.
  auto partition = StrPartition(*kb, 3);
  auto built =
      ShardedKspDatabase::Build(kb.get(), KspOptions(), partition, 3);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string dir = FreshTempDir("load");
  ASSERT_TRUE((*built)->Save(dir).ok());
  ASSERT_TRUE((*built)->Save(dir).ok());

  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 4;
  qopt.seed = 47;
  const auto queries = GenerateQueries(*kb, QueryClass::kOriginal, qopt, 4);
  ASSERT_FALSE(queries.empty());

  // Per-query oracle from the sharded ensemble itself — which the
  // equivalence suite pins to the unsharded answer. Every generation is
  // built from the same KB, so each generation's exact answer is this
  // same result; a mixed-generation merge would be the only way to
  // diverge.
  ShardedExecutor oracle(built->get());
  std::vector<KspResult> expected;
  for (const KspQuery& query : queries) {
    auto result = oracle.Execute(KspAlgorithm::kSp, query, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(*result);
  }

  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  KspServer server(kb.get(), KspOptions(), options);
  // First install via ServeDirectory: the SHARDS manifest routes to the
  // sharded load path.
  ASSERT_TRUE(server.ServeDirectory(dir).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.serving_generation(), 1u);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> oks{0};
  std::mutex gen_mu;
  std::set<uint64_t> generations_seen;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<bool> swapping_done{false};

  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      auto client = KspClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      int sent = 0;
      while (sent < kRequestsPerClient || !swapping_done.load()) {
        const size_t qi = static_cast<size_t>(c + sent) % queries.size();
        auto response =
            client->Query(KspAlgorithm::kSp, queries[qi].location,
                          KeywordStrings(*kb, queries[qi]), queries[qi].k);
        ++sent;
        if (!response.ok() || !response->ok()) {
          ++failures;  // A swap must never surface as any kind of error.
          continue;
        }
        // Exactness doubles as the generation-mix detector: a query
        // merging shards from two generations could only produce these
        // exact entries by accident.
        const KspResult& want = expected[qi];
        bool same = response->entries.size() == want.entries.size();
        for (size_t i = 0; same && i < want.entries.size(); ++i) {
          same = response->entries[i].place == want.entries[i].place &&
                 response->entries[i].looseness ==
                     want.entries[i].looseness &&
                 response->entries[i].score == want.entries[i].score;
        }
        if (!same) {
          ++failures;
          continue;
        }
        ++oks;
        std::lock_guard<std::mutex> lock(gen_mu);
        generations_seen.insert(response->generation);
        if (sent > kRequestsPerClient * 4) break;  // Safety valve.
      }
    });
  }

  // Swap the whole shard ensemble twice over the wire, mid-load.
  {
    auto swapper = KspClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(swapper.ok());
    for (int s = 0; s < 2; ++s) {
      auto response = swapper->Swap(dir);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_TRUE(response->ok()) << response->message;
    }
  }
  swapping_done.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(oks.load(), 0u);
  EXPECT_EQ(server.serving_generation(), 3u);  // 1 install + 2 swaps.
  EXPECT_GE(generations_seen.size(), 2u) << "no query spanned the swap";

  // Health reports the sharded topology and the aligned manifest
  // generation of the second save.
  auto client = KspClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"num_shards\": 3"), std::string::npos)
      << health->body;
  EXPECT_NE(health->body.find("\"index_generation\": 2"), std::string::npos)
      << health->body;

  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(ShardSwapTest, TornShardSaveFailsSwapAndKeepsServing) {
  auto kb = MakeKb(300);

  auto partition = StrPartition(*kb, 3);
  auto built =
      ShardedKspDatabase::Build(kb.get(), KspOptions(), partition, 3);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string dir = FreshTempDir("torn");
  ASSERT_TRUE((*built)->Save(dir).ok());

  // Tear the directory: bump ONE shard to a newer generation directly,
  // as an interrupted ensemble save would leave it.
  ASSERT_TRUE((*built)
                  ->shard(0)
                  ->SaveIndexes(dir + "/shard-000000")
                  .ok());

  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 3;
  qopt.seed = 53;
  const auto queries = GenerateQueries(*kb, QueryClass::kOriginal, qopt, 1);
  ASSERT_FALSE(queries.empty());

  ServerOptions options;
  options.num_workers = 1;
  KspServer server(kb.get(), KspOptions(), options);
  ASSERT_TRUE(server.ServeShardedDatabase(std::move(*built)).ok());
  ASSERT_TRUE(server.Start().ok());

  // The torn directory must refuse to load — Corruption, not a mix.
  auto direct = ShardedKspDatabase::Load(kb.get(), KspOptions(), dir);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsCorruption())
      << direct.status().ToString();

  auto client = KspClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto bad = client->Swap(dir);
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_FALSE(bad->ok());
  EXPECT_EQ(server.serving_generation(), 1u);

  // Still serving the original sharded generation, still exact.
  auto response = client->Query(KspAlgorithm::kSp, queries[0].location,
                                KeywordStrings(*kb, queries[0]),
                                queries[0].k);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok()) << response->message;
  EXPECT_EQ(response->generation, 1u);

  server.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ksp
