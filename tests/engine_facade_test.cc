// The deprecated KspEngine facade: one release of compatibility for code
// written against the pre-split monolith. It must keep the old behaviours
// — lazy R-tree construction on first query, Clone() sharing the
// underlying database, the engine-based batch overload — while answering
// exactly like the KspDatabase/QueryExecutor pair it wraps.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/parallel.h"
#include "datagen/fixtures.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

class EngineFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1500));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    QueryGenOptions qopt;
    qopt.num_keywords = 4;
    qopt.k = 5;
    qopt.seed = 17;
    queries_ = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 6);
    ASSERT_FALSE(queries_.empty());
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::vector<KspQuery> queries_;
};

TEST_F(EngineFacadeTest, LazilyBuildsRTreeOnFirstQuery) {
  // The old contract: querying a bare engine works because the facade
  // builds the R-tree on demand (the new QueryExecutor would error).
  KspEngine engine(kb_.get());
  EXPECT_FALSE(engine.database().has_rtree());
  auto result = engine.ExecuteBsp(queries_[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(engine.database().has_rtree());
}

TEST_F(EngineFacadeTest, MatchesDirectExecutor) {
  KspEngine engine(kb_.get());
  engine.PrepareAll(3);
  QueryExecutor executor(&engine.database());
  for (const KspQuery& q : queries_) {
    auto facade = engine.ExecuteSp(q);
    auto direct = executor.ExecuteSp(q);
    ASSERT_TRUE(facade.ok() && direct.ok());
    ASSERT_EQ(facade->entries.size(), direct->entries.size());
    for (size_t i = 0; i < facade->entries.size(); ++i) {
      EXPECT_DOUBLE_EQ(facade->entries[i].score, direct->entries[i].score);
      EXPECT_EQ(facade->entries[i].place, direct->entries[i].place);
    }
  }
}

TEST_F(EngineFacadeTest, CloneSharesIndexes) {
  KspEngine engine(kb_.get());
  engine.PrepareAll(3);
  auto clone = engine.Clone();
  EXPECT_EQ(&clone->database(), &engine.database());
  EXPECT_EQ(&clone->rtree(), &engine.rtree());
  EXPECT_EQ(clone->reachability_index(), engine.reachability_index());
  EXPECT_EQ(clone->alpha_index(), engine.alpha_index());
  // Clone answers queries identically.
  auto a = engine.ExecuteSp(queries_[0]);
  auto b = clone->ExecuteSp(queries_[0]);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->entries.size(), b->entries.size());
  for (size_t i = 0; i < a->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->entries[i].score, b->entries[i].score);
  }
}

TEST_F(EngineFacadeTest, CloneOutlivesOriginal) {
  // The shared database is refcounted: dropping the original engine must
  // not invalidate a clone's indexes.
  auto engine = std::make_unique<KspEngine>(kb_.get());
  engine->PrepareAll(3);
  auto expected = engine->ExecuteSp(queries_[0]);
  ASSERT_TRUE(expected.ok());
  auto clone = engine->Clone();
  engine.reset();
  auto got = clone->ExecuteSp(queries_[0]);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->entries.size(), expected->entries.size());
  for (size_t i = 0; i < expected->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(got->entries[i].score, expected->entries[i].score);
    EXPECT_EQ(got->entries[i].place, expected->entries[i].place);
  }
}

TEST_F(EngineFacadeTest, DeprecatedBatchOverloadDelegates) {
  KspEngine engine(kb_.get());
  engine.PrepareAll(3);
  BatchRunOptions options;
  options.algorithm = KspAlgorithm::kSp;
  options.num_threads = 2;
  QueryStats totals;
  auto old_api = RunQueryBatch(&engine, queries_, options, &totals);
  ASSERT_TRUE(old_api.ok()) << old_api.status().ToString();
  EXPECT_GT(totals.total_ms, 0.0);

  auto new_api = RunQueryBatch(engine.database(), queries_, options);
  ASSERT_TRUE(new_api.ok());
  ASSERT_EQ(old_api->size(), new_api->size());
  for (size_t i = 0; i < new_api->size(); ++i) {
    ASSERT_EQ((*old_api)[i].entries.size(), (*new_api)[i].entries.size());
    for (size_t j = 0; j < (*new_api)[i].entries.size(); ++j) {
      EXPECT_DOUBLE_EQ((*old_api)[i].entries[j].score,
                       (*new_api)[i].entries[j].score);
      EXPECT_EQ((*old_api)[i].entries[j].place,
                (*new_api)[i].entries[j].place);
    }
  }
}

TEST_F(EngineFacadeTest, Figure1TqspStillReturnsByValue) {
  // The deprecated crash-on-error TQSP accessors keep their signatures.
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspEngine engine(kb->get());
  engine.BuildRTree();
  KspQuery query = engine.MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  SemanticPlaceTree tree = engine.ComputeTqspForPlace(0, query);
  EXPECT_TRUE(tree.IsQualified());
  TiedSemanticPlace tied = engine.ComputeTqspAlternatives(0, query);
  EXPECT_TRUE(tied.IsQualified());
  EXPECT_DOUBLE_EQ(tree.looseness, tied.looseness);
}

}  // namespace
}  // namespace ksp
