// Backend invariance: the disk backend (accessor seams + buffer pool,
// DESIGN.md §10) must be observationally identical to the in-memory
// backend — same top-k entries, same prune decisions, same committed
// QueryStats counters — on every algorithm, across hundreds of seeded
// queries, under a pool budget small enough to force eviction traffic.
// Only the bufferpool_* counters (and timing) may differ between
// backends; they are asserted zero on the memory side and non-zero in
// aggregate on the disk side so the comparison cannot pass vacuously.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "query_corpus.h"
#include "rdf/knowledge_base.h"

namespace ksp {
namespace {

/// Committed (backend-invariant) counters of one query. Excludes the
/// bufferpool_* trio, wall-clock fields, and the speculation/cache
/// counters that are outside the determinism contract.
void ExpectCommittedCountersEqual(const QueryStats& mem,
                                  const QueryStats& disk,
                                  const char* context) {
  EXPECT_EQ(mem.tqsp_computations, disk.tqsp_computations) << context;
  EXPECT_EQ(mem.rtree_nodes_accessed, disk.rtree_nodes_accessed) << context;
  EXPECT_EQ(mem.vertices_visited, disk.vertices_visited) << context;
  EXPECT_EQ(mem.reachability_queries, disk.reachability_queries) << context;
  EXPECT_EQ(mem.pruned_unqualified, disk.pruned_unqualified) << context;
  EXPECT_EQ(mem.pruned_dynamic_bound, disk.pruned_dynamic_bound) << context;
  EXPECT_EQ(mem.pruned_alpha_place, disk.pruned_alpha_place) << context;
  EXPECT_EQ(mem.pruned_alpha_node, disk.pruned_alpha_node) << context;
  EXPECT_EQ(mem.completed, disk.completed) << context;
}

void ExpectResultsEqual(const KspResult& mem, const KspResult& disk,
                        const char* context) {
  ASSERT_EQ(mem.entries.size(), disk.entries.size()) << context;
  for (size_t i = 0; i < mem.entries.size(); ++i) {
    ASSERT_EQ(mem.entries[i].place, disk.entries[i].place)
        << context << " rank " << i;
    ASSERT_DOUBLE_EQ(mem.entries[i].looseness, disk.entries[i].looseness)
        << context << " rank " << i;
    ASSERT_DOUBLE_EQ(mem.entries[i].spatial_distance,
                     disk.entries[i].spatial_distance)
        << context << " rank " << i;
    ASSERT_DOUBLE_EQ(mem.entries[i].score, disk.entries[i].score)
        << context << " rank " << i;
  }
}

class BackendInvarianceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1500));
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = kb->release();

    mem_db_ = new KspDatabase(kb_);
    mem_db_->PrepareAll(/*alpha=*/3);
    ASSERT_TRUE(mem_db_->storage_backend_status().ok());
    ASSERT_EQ(mem_db_->buffer_pool(), nullptr);

    // A pool budget far below the spilled index footprint, so queries
    // continuously evict and re-fetch pages — the regime the invariance
    // claim actually has to hold in.
    KspOptions options;
    options.backend = StorageBackend::kDisk;
    options.buffer_pool_budget_bytes = 1 << 20;
    disk_db_ = new KspDatabase(kb_, options);
    disk_db_->PrepareAll(/*alpha=*/3);
    ASSERT_TRUE(disk_db_->storage_backend_status().ok())
        << disk_db_->storage_backend_status().ToString();
    ASSERT_NE(disk_db_->buffer_pool(), nullptr);

    // Same seeded workload as the oracle suite (tests/query_corpus.h).
    *queries_ = testing::MakeEquivalenceCorpus(*kb_);
    ASSERT_GE(queries_->size(), 200u);
  }

  static void TearDownTestSuite() {
    delete disk_db_;
    disk_db_ = nullptr;
    delete mem_db_;
    mem_db_ = nullptr;
    delete kb_;
    kb_ = nullptr;
    queries_->clear();
  }

  using Execute = Result<KspResult> (QueryExecutor::*)(const KspQuery&,
                                                       QueryStats*);

  /// Runs every seeded query at every k on both backends and diffs
  /// results and committed counters.
  void CheckAlgorithm(Execute execute, const char* name) {
    QueryExecutor mem_exec(mem_db_);
    QueryExecutor disk_exec(disk_db_);
    uint64_t disk_fetches = 0;
    size_t nonempty = 0;
    for (size_t qi = 0; qi < queries_->size(); ++qi) {
      KspQuery query = (*queries_)[qi];
      for (uint32_t k : {1u, 5u, 10u}) {
        query.k = k;
        const std::string context_str = std::string(name) + " query " +
                                        std::to_string(qi) + " k=" +
                                        std::to_string(k);
        const char* context = context_str.c_str();

        QueryStats mem_stats;
        auto mem_result = (mem_exec.*execute)(query, &mem_stats);
        ASSERT_TRUE(mem_result.ok())
            << context << ": " << mem_result.status().ToString();

        QueryStats disk_stats;
        auto disk_result = (disk_exec.*execute)(query, &disk_stats);
        ASSERT_TRUE(disk_result.ok())
            << context << ": " << disk_result.status().ToString();

        ExpectResultsEqual(*mem_result, *disk_result, context);
        ExpectCommittedCountersEqual(mem_stats, disk_stats, context);

        // The memory backend must not report page I/O, ever.
        ASSERT_EQ(mem_stats.bufferpool_hits, 0u) << context;
        ASSERT_EQ(mem_stats.bufferpool_misses, 0u) << context;
        ASSERT_EQ(mem_stats.bufferpool_evictions, 0u) << context;
        disk_fetches +=
            disk_stats.bufferpool_hits + disk_stats.bufferpool_misses;
        if (!mem_result->entries.empty()) ++nonempty;
      }
    }
    // Non-vacuity: the workload produced results, and the disk side
    // actually went through the pool.
    EXPECT_GT(nonempty, queries_->size());
    EXPECT_GT(disk_fetches, 0u) << name;
  }

  static KnowledgeBase* kb_;
  static KspDatabase* mem_db_;
  static KspDatabase* disk_db_;
  static std::vector<KspQuery>* queries_;
};

KnowledgeBase* BackendInvarianceTest::kb_ = nullptr;
KspDatabase* BackendInvarianceTest::mem_db_ = nullptr;
KspDatabase* BackendInvarianceTest::disk_db_ = nullptr;
std::vector<KspQuery>* BackendInvarianceTest::queries_ =
    new std::vector<KspQuery>();

TEST_F(BackendInvarianceTest, BspMatchesAcrossBackends) {
  CheckAlgorithm(&QueryExecutor::ExecuteBsp, "BSP");
}

TEST_F(BackendInvarianceTest, SppMatchesAcrossBackends) {
  CheckAlgorithm(&QueryExecutor::ExecuteSpp, "SPP");
}

TEST_F(BackendInvarianceTest, SpMatchesAcrossBackends) {
  CheckAlgorithm(&QueryExecutor::ExecuteSp, "SP");
}

// TA runs a different engine (backward multi-source BFS over in-edges +
// incremental kNN pulls); a subset of the workload keeps the runtime in
// check while still covering both pull directions of its round-robin.
TEST_F(BackendInvarianceTest, TaMatchesAcrossBackendsOnSubset) {
  QueryExecutor mem_exec(mem_db_);
  QueryExecutor disk_exec(disk_db_);
  uint64_t disk_fetches = 0;
  for (size_t qi = 0; qi < queries_->size(); qi += 10) {
    KspQuery query = (*queries_)[qi];
    query.k = 5;
    const std::string context_str = "TA query " + std::to_string(qi);
    QueryStats mem_stats;
    auto mem_result = mem_exec.ExecuteTa(query, &mem_stats);
    ASSERT_TRUE(mem_result.ok()) << mem_result.status().ToString();
    QueryStats disk_stats;
    auto disk_result = disk_exec.ExecuteTa(query, &disk_stats);
    ASSERT_TRUE(disk_result.ok()) << disk_result.status().ToString();
    ExpectResultsEqual(*mem_result, *disk_result, context_str.c_str());
    ExpectCommittedCountersEqual(mem_stats, disk_stats,
                                 context_str.c_str());
    disk_fetches +=
        disk_stats.bufferpool_hits + disk_stats.bufferpool_misses;
  }
  EXPECT_GT(disk_fetches, 0u);
}

// The intra-query pipeline on the disk backend must agree with the
// sequential disk path on results and committed counters (speculation,
// cache and bufferpool counters are interleaving-dependent).
TEST_F(BackendInvarianceTest, ParallelPipelineMatchesOnDiskBackend) {
  QueryExecutor sequential(disk_db_);
  QueryExecutor parallel(disk_db_);
  parallel.set_intra_query_threads(3);
  for (size_t qi = 0; qi < queries_->size(); qi += 5) {
    KspQuery query = (*queries_)[qi];
    query.k = 5;
    for (Execute execute :
         {&QueryExecutor::ExecuteSpp, &QueryExecutor::ExecuteSp}) {
      const std::string context_str =
          "parallel-disk query " + std::to_string(qi);
      QueryStats seq_stats;
      auto seq_result = (sequential.*execute)(query, &seq_stats);
      ASSERT_TRUE(seq_result.ok()) << seq_result.status().ToString();
      QueryStats par_stats;
      auto par_result = (parallel.*execute)(query, &par_stats);
      ASSERT_TRUE(par_result.ok()) << par_result.status().ToString();
      ExpectResultsEqual(*seq_result, *par_result, context_str.c_str());
      ExpectCommittedCountersEqual(seq_stats, par_stats,
                                   context_str.c_str());
    }
  }
}

// Semantic cache over the disk backend: a second pass over the same
// workload must return results identical to the uncached disk reference
// even though most BFS work is then served from cache.
TEST_F(BackendInvarianceTest, SemanticCacheIsExactOnDiskBackend) {
  KspOptions options;
  options.backend = StorageBackend::kDisk;
  options.buffer_pool_budget_bytes = 1 << 20;
  options.cache_budget_bytes = 8 << 20;
  KspDatabase cached_db(kb_, options);
  cached_db.PrepareAll(/*alpha=*/3);
  ASSERT_TRUE(cached_db.storage_backend_status().ok())
      << cached_db.storage_backend_status().ToString();

  QueryExecutor reference(disk_db_);
  QueryExecutor cached(&cached_db);
  uint64_t cache_hits = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t qi = 0; qi < queries_->size(); qi += 5) {
      KspQuery query = (*queries_)[qi];
      query.k = 5;
      const std::string context_str = "cached-disk pass " +
                                      std::to_string(pass) + " query " +
                                      std::to_string(qi);
      auto want = reference.ExecuteSpp(query, nullptr);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      QueryStats stats;
      auto got = cached.ExecuteSpp(query, &stats);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectResultsEqual(*want, *got, context_str.c_str());
      cache_hits += stats.dg_cache_hits + stats.result_cache_hits;
    }
  }
  // The second pass must actually have been served (partly) from cache.
  EXPECT_GT(cache_hits, 0u);
}

}  // namespace
}  // namespace ksp
