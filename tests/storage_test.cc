// Disk-resident graph substrate: paged file, LRU buffer pool, and the
// varint-encoded adjacency store, validated against the in-memory Graph.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "storage/buffer_pool.h"
#include "storage/disk_graph.h"
#include "storage/paged_file.h"

namespace ksp {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PagedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("ksp_paged_file_test.bin");
    auto writer = PagedFileWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    // 2.5 pages of recognizable content at page_size 64.
    std::string data;
    for (int i = 0; i < 160; ++i) data.push_back(static_cast<char>(i));
    ASSERT_TRUE((*writer)->Append(data).ok());
    EXPECT_EQ((*writer)->offset(), 160u);
    ASSERT_TRUE((*writer)->Close().ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(PagedFileTest, ReadsPagesIncludingShortLast) {
  auto file = PagedFile::Open(path_, 64);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->num_pages(), 3u);
  EXPECT_EQ((*file)->file_size(), 160u);
  std::string page;
  ASSERT_TRUE((*file)->ReadPage(0, &page).ok());
  EXPECT_EQ(page.size(), 64u);
  EXPECT_EQ(page[1], 1);
  ASSERT_TRUE((*file)->ReadPage(2, &page).ok());
  EXPECT_EQ(page.size(), 32u);  // Short tail.
  EXPECT_EQ(static_cast<unsigned char>(page[0]), 128u);
  EXPECT_EQ((*file)->reads(), 2u);
}

TEST_F(PagedFileTest, PageBeyondEndIsOutOfRange) {
  auto file = PagedFile::Open(path_, 64);
  ASSERT_TRUE(file.ok());
  std::string page;
  EXPECT_TRUE((*file)->ReadPage(3, &page).IsOutOfRange());
}

TEST_F(PagedFileTest, MissingFileIsIOError) {
  auto file = PagedFile::Open(TempPath("missing.bin"), 64);
  EXPECT_TRUE(file.status().IsIOError());
}

TEST_F(PagedFileTest, ZeroPageSizeRejected) {
  auto file = PagedFile::Open(path_, 0);
  EXPECT_TRUE(file.status().IsInvalidArgument());
}

TEST_F(PagedFileTest, BufferPoolCachesAndEvicts) {
  auto file = PagedFile::Open(path_, 64);
  ASSERT_TRUE(file.ok());
  BufferPool pool(file->get(), 2);

  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // Hit.
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);

  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(2).ok());  // Evicts page 0 (LRU).
  EXPECT_EQ(pool.evictions(), 1u);
  ASSERT_TRUE(pool.Fetch(0).ok());  // Miss again.
  EXPECT_EQ(pool.misses(), 4u);
  EXPECT_GT(pool.HitRate(), 0.0);
  EXPECT_EQ((*file)->reads(), pool.misses());

  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(PagedFileTest, BufferPoolLruOrderOnHit) {
  auto file = PagedFile::Open(path_, 64);
  ASSERT_TRUE(file.ok());
  BufferPool pool(file->get(), 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // Refresh 0 to MRU.
  ASSERT_TRUE(pool.Fetch(2).ok());  // Must evict 1, not 0.
  uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.misses(), misses_before);  // Still cached.
}

Graph MakeRandomGraph(uint32_t n, int edges, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder;
  for (int i = 0; i < edges; ++i) {
    builder.AddEdge(static_cast<VertexId>(rng.NextBounded(n)),
                    static_cast<VertexId>(rng.NextBounded(n)), 0);
  }
  return builder.Finish(n);
}

TEST(DiskGraphTest, AdjacencyMatchesMemoryGraph) {
  Graph graph = MakeRandomGraph(500, 3000, 99);
  std::string path = TempPath("ksp_disk_graph.bin");
  ASSERT_TRUE(DiskGraph::Write(graph, path, /*page_size=*/256).ok());
  auto disk = DiskGraph::Open(path, /*pool_pages=*/4, /*page_size=*/256);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ((*disk)->num_vertices(), graph.num_vertices());
  EXPECT_EQ((*disk)->num_edges(), graph.num_edges());

  std::vector<VertexId> neighbors;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    neighbors.clear();
    ASSERT_TRUE((*disk)->OutNeighbors(v, &neighbors).ok());
    auto expected = graph.OutNeighbors(v);
    ASSERT_EQ(neighbors.size(), expected.size()) << v;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_EQ(neighbors[i], expected[i]);
    }
    EXPECT_EQ((*disk)->OutDegree(v), graph.OutDegree(v));
  }
  std::remove(path.c_str());
}

TEST(DiskGraphTest, BfsMatchesMemoryBfs) {
  Graph graph = MakeRandomGraph(300, 1200, 17);
  std::string path = TempPath("ksp_disk_graph_bfs.bin");
  ASSERT_TRUE(DiskGraph::Write(graph, path, 128).ok());
  auto disk = DiskGraph::Open(path, 8, 128);
  ASSERT_TRUE(disk.ok());

  // Memory BFS oracle.
  auto memory_bfs = [&](VertexId root) {
    std::vector<std::pair<VertexId, uint32_t>> visited{{root, 0}};
    std::vector<bool> seen(graph.num_vertices(), false);
    seen[root] = true;
    for (size_t qi = 0; qi < visited.size(); ++qi) {
      auto [v, d] = visited[qi];
      for (VertexId w : graph.OutNeighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          visited.emplace_back(w, d + 1);
        }
      }
    }
    return visited;
  };

  for (VertexId root : {0u, 7u, 299u}) {
    std::vector<std::pair<VertexId, uint32_t>> visited;
    ASSERT_TRUE((*disk)->Bfs(root, &visited).ok());
    EXPECT_EQ(visited, memory_bfs(root));
  }
  // With a pool that fits the whole file, a repeated BFS is IO-free.
  auto warm = DiskGraph::Open(path, (*disk)->file().num_pages() + 1, 128);
  ASSERT_TRUE(warm.ok());
  std::vector<std::pair<VertexId, uint32_t>> visited;
  ASSERT_TRUE((*warm)->Bfs(0, &visited).ok());
  uint64_t misses_before = (*warm)->buffer_pool().misses();
  ASSERT_TRUE((*warm)->Bfs(0, &visited).ok());
  EXPECT_EQ((*warm)->buffer_pool().misses(), misses_before);
}

TEST(DiskGraphTest, EmptyGraph) {
  GraphBuilder builder;
  Graph graph = builder.Finish(0);
  std::string path = TempPath("ksp_disk_graph_empty.bin");
  ASSERT_TRUE(DiskGraph::Write(graph, path, 64).ok());
  auto disk = DiskGraph::Open(path, 2, 64);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ((*disk)->num_vertices(), 0u);
  std::remove(path.c_str());
}

TEST(DiskGraphTest, PageSizeMismatchRejected) {
  Graph graph = MakeRandomGraph(10, 20, 3);
  std::string path = TempPath("ksp_disk_graph_ps.bin");
  ASSERT_TRUE(DiskGraph::Write(graph, path, 128).ok());
  auto disk = DiskGraph::Open(path, 2, 256);
  EXPECT_FALSE(disk.ok());
  EXPECT_TRUE(disk.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(DiskGraphTest, CorruptHeaderRejected) {
  std::string path = TempPath("ksp_disk_graph_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage garbage garbage garbage!";
  }
  auto disk = DiskGraph::Open(path, 2, 64);
  EXPECT_FALSE(disk.ok());
  std::remove(path.c_str());
}

TEST(DiskGraphTest, SyntheticKbGraphRoundTrip) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::YagoLike(2000));
  ASSERT_TRUE(kb.ok());
  std::string path = TempPath("ksp_disk_graph_kb.bin");
  ASSERT_TRUE(DiskGraph::Write((*kb)->graph(), path).ok());
  auto disk = DiskGraph::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->num_edges(), (*kb)->num_edges());
  // Spot check a few vertices.
  std::vector<VertexId> neighbors;
  for (VertexId v = 0; v < 50; ++v) {
    neighbors.clear();
    ASSERT_TRUE((*disk)->OutNeighbors(v, &neighbors).ok());
    auto expected = (*kb)->graph().OutNeighbors(v);
    ASSERT_EQ(neighbors.size(), expected.size());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ksp
