#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace ksp {
namespace {

using ::testing::Test;

TEST(TokenizerTest, SplitsOnPunctuationAndLowercases) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("Montmajour_Abbey");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "montmajour");
  EXPECT_EQ(tokens[1], "abbey");
}

TEST(TokenizerTest, CamelCaseSplit) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("birthPlace");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "birth");
  EXPECT_EQ(tokens[1], "place");
}

TEST(TokenizerTest, AcronymBoundary) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("XMLParser");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "xml");
  EXPECT_EQ(tokens[1], "parser");
}

TEST(TokenizerTest, LetterDigitBoundary) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("Area51zone");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "area");
  EXPECT_EQ(tokens[1], "51");
  EXPECT_EQ(tokens[2], "zone");
}

TEST(TokenizerTest, CamelSplitDisabled) {
  TokenizerOptions options;
  options.split_camel_case = false;
  Tokenizer tokenizer(options);
  auto tokens = tokenizer.Tokenize("birthPlace");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "birthplace");
}

TEST(TokenizerTest, DropsStopwordsAndShortTokens) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("The_Lord_of_the_Rings a b");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "lord");
  EXPECT_EQ(tokens[1], "rings");
}

TEST(TokenizerTest, KeepsStopwordsWhenDisabled) {
  TokenizerOptions options;
  options.drop_stopwords = false;
  options.min_token_length = 1;
  Tokenizer tokenizer(options);
  auto tokens = tokenizer.Tokenize("of a");
  ASSERT_EQ(tokens.size(), 2u);
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("--- ... !!!").empty());
}

TEST(UriLocalNameTest, ExtractsAfterHashOrSlash) {
  EXPECT_EQ(UriLocalName("<http://dbpedia.org/resource/Saint_Peter>"),
            "Saint_Peter");
  EXPECT_EQ(UriLocalName("http://www.w3.org/2003/01/geo/wgs84_pos#lat"),
            "lat");
  EXPECT_EQ(UriLocalName("no_separators"), "no_separators");
}

TEST(UriLocalNameTest, TrailingSlashFallsBack) {
  // A URI ending in '/' has no local name; the whole IRI is returned.
  EXPECT_EQ(UriLocalName("http://x.org/"), "http://x.org/");
}

TEST(StripAngleBracketsTest, Basics) {
  EXPECT_EQ(StripAngleBrackets("<http://x>"), "http://x");
  EXPECT_EQ(StripAngleBrackets("http://x"), "http://x");
  EXPECT_EQ(StripAngleBrackets("<>"), "");
}

TEST(TokenizerTest, TokenizeUriLocalName) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.TokenizeUriLocalName(
      "<http://dbpedia.org/resource/Ancient_Diocese_of_Arles>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "ancient");
  EXPECT_EQ(tokens[1], "diocese");
  EXPECT_EQ(tokens[2], "arles");
}

TEST(TokenizerTest, NumbersKept) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("Paris_1968");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1], "1968");
}

}  // namespace
}  // namespace ksp
