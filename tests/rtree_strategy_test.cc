// Construction-strategy invariance: quadratic split, linear split, and
// STR bulk loading build different trees but must answer every spatial
// query identically — and the kSP engine's answers must not depend on
// how the R-tree was built.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "spatial/rtree.h"

namespace ksp {
namespace {

std::vector<std::pair<Point, uint64_t>> RandomPoints(size_t n,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Point, uint64_t>> points;
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(
        Point{rng.NextDouble(-40, 40), rng.NextDouble(-40, 40)}, i);
  }
  return points;
}

TEST(RTreeStrategyTest, LinearSplitMaintainsInvariantsAndAnswers) {
  auto points = RandomPoints(600, 5);
  RTree::Options linear_options;
  linear_options.max_entries = 8;
  linear_options.min_entries = 3;
  linear_options.split = RTreeSplitStrategy::kLinear;
  RTree linear(linear_options);
  RTree::Options quad_options = linear_options;
  quad_options.split = RTreeSplitStrategy::kQuadratic;
  RTree quadratic(quad_options);
  for (auto& [p, id] : points) {
    linear.Insert(p, id);
    quadratic.Insert(p, id);
  }
  EXPECT_EQ(linear.size(), points.size());

  Rng rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    Point q{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)};
    auto a = linear.KnnQuery(q, 10);
    auto b = quadratic.KnnQuery(q, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].first, b[i].first, 1e-9);
    }
  }
}

TEST(RTreeStrategyTest, EngineAnswersIndependentOfConstruction) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::YagoLike(1200));
  ASSERT_TRUE(kb.ok());
  QueryGenOptions qopt;
  qopt.num_keywords = 4;
  qopt.k = 5;
  auto queries = GenerateQueries(**kb, QueryClass::kOriginal, qopt, 4);
  ASSERT_FALSE(queries.empty());

  struct Variant {
    bool bulk;
    RTreeSplitStrategy split;
  };
  std::vector<KspResult> reference;
  bool have_reference = false;
  for (const Variant& variant :
       {Variant{false, RTreeSplitStrategy::kQuadratic},
        Variant{false, RTreeSplitStrategy::kLinear},
        Variant{true, RTreeSplitStrategy::kQuadratic}}) {
    KspOptions options;
    options.bulk_load_rtree = variant.bulk;
    options.rtree_options.split = variant.split;
    KspDatabase db(kb->get(), options);
    db.PrepareAll(2);
    QueryExecutor executor(&db);
    std::vector<KspResult> results;
    for (const auto& q : queries) {
      auto r = executor.ExecuteSp(q);
      ASSERT_TRUE(r.ok());
      results.push_back(std::move(*r));
    }
    if (!have_reference) {
      reference = std::move(results);
      have_reference = true;
      continue;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(results[i].entries.size(), reference[i].entries.size());
      for (size_t j = 0; j < reference[i].entries.size(); ++j) {
        EXPECT_DOUBLE_EQ(results[i].entries[j].score,
                         reference[i].entries[j].score);
        EXPECT_EQ(results[i].entries[j].place,
                  reference[i].entries[j].place);
      }
    }
  }
}

}  // namespace
}  // namespace ksp
