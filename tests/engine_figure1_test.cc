// Validates the query engine against the paper's worked examples
// (Figures 1-2, Table 2, Examples 4-8): exact looseness values, exact
// ranking scores, identical answers from BSP, SPP, SP and TA, and the
// documented behaviour of the pruning rules on this instance.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"

namespace ksp {
namespace {

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = BuildFigure1KnowledgeBase();
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = std::move(kb).value();
    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(/*alpha=*/3);
    exec_ = std::make_unique<QueryExecutor>(db_.get());
  }

  VertexId Vertex(std::string_view local) {
    auto v = kb_->FindVertex("http://example.org/" + std::string(local));
    EXPECT_TRUE(v.has_value()) << local;
    return *v;
  }

  PlaceId PlaceOf(std::string_view local) {
    return kb_->place_of(Vertex(local));
  }

  SemanticPlaceTree Tqsp(PlaceId place, const KspQuery& query) {
    auto tree = exec_->ComputeTqspForPlace(place, query);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return tree.ok() ? std::move(*tree) : SemanticPlaceTree{};
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::unique_ptr<QueryExecutor> exec_;
};

TEST_F(Figure1Test, DatasetShape) {
  EXPECT_EQ(kb_->num_vertices(), 10u);
  EXPECT_EQ(kb_->num_edges(), 8u);
  EXPECT_EQ(kb_->num_places(), 2u);
}

TEST_F(Figure1Test, Table2KeywordCoverage) {
  // M_q.ψ of Table 2: which vertices cover which of
  // {ancient, roman, catholic, history}.
  auto terms = kb_->LookupTerms(Figure1QueryKeywords());
  ASSERT_EQ(terms.size(), 4u);
  const TermId ancient = terms[0];
  const TermId roman = terms[1];
  const TermId catholic = terms[2];
  const TermId history = terms[3];
  const DocumentStore& docs = kb_->documents();

  auto covers = [&](std::string_view local, TermId t) {
    return docs.Contains(Vertex(local), t);
  };

  EXPECT_TRUE(covers("Saint_Peter", catholic));
  EXPECT_TRUE(covers("Saint_Peter", roman));
  EXPECT_FALSE(covers("Saint_Peter", ancient));
  EXPECT_FALSE(covers("Saint_Peter", history));

  EXPECT_TRUE(covers("Ancient_Diocese_of_Arles", ancient));
  EXPECT_TRUE(covers("Architectural_history", history));

  EXPECT_TRUE(covers("Roman_Empire", ancient));
  EXPECT_TRUE(covers("Roman_Empire", roman));

  EXPECT_TRUE(covers("Catholic_Church", catholic));
  EXPECT_TRUE(covers("Catholic_Church", history));

  EXPECT_TRUE(covers("Anatolia", ancient));
  EXPECT_TRUE(covers("Anatolia", history));

  EXPECT_TRUE(
      covers("Roman_Catholic_Diocese_of_Frejus_Toulon", catholic));
  EXPECT_TRUE(covers("Roman_Catholic_Diocese_of_Frejus_Toulon", roman));

  // Montmajour Abbey itself covers none of the query keywords.
  for (TermId t : terms) {
    EXPECT_FALSE(covers("Montmajour_Abbey", t));
  }
}

TEST_F(Figure1Test, Example4Looseness) {
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 1);

  SemanticPlaceTree t1 = Tqsp(PlaceOf("Montmajour_Abbey"), query);
  EXPECT_DOUBLE_EQ(t1.looseness, 6.0);  // 1 + 1 + 1 + 1 + 2.

  SemanticPlaceTree t2 =
      Tqsp(PlaceOf("Roman_Catholic_Diocese_of_Frejus_Toulon"), query);
  EXPECT_DOUBLE_EQ(t2.looseness, 4.0);  // 1 + 0 + 0 + 1 + 2.

  // The TQSP at p2 matches ⟨p2, (v6, v7, v8)⟩: ancient at distance 2 via
  // Mary_Magdalene -> Anatolia, history at 1 via Catholic_Church.
  for (const auto& match : t2.matches) {
    if (match.term == kb_->LookupTerms({"ancient"})[0]) {
      EXPECT_EQ(match.vertex, Vertex("Anatolia"));
      EXPECT_EQ(match.distance, 2u);
      ASSERT_EQ(match.path.size(), 3u);
      EXPECT_EQ(match.path[1], Vertex("Mary_Magdalene"));
    }
    if (match.term == kb_->LookupTerms({"history"})[0]) {
      EXPECT_EQ(match.vertex, Vertex("Catholic_Church"));
      EXPECT_EQ(match.distance, 1u);
    }
  }
}

TEST_F(Figure1Test, TqspTreeVertexSetsMatchPaperNotation) {
  // Example 4's trees: ⟨p1, (v1, v2, v3, v4)⟩ and ⟨p2, (v6, v7, v8)⟩.
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 1);

  SemanticPlaceTree t1 = Tqsp(PlaceOf("Montmajour_Abbey"), query);
  std::vector<VertexId> expected1 = {
      Vertex("Montmajour_Abbey"), Vertex("Romanesque_architecture"),
      Vertex("Saint_Peter"), Vertex("Ancient_Diocese_of_Arles"),
      Vertex("Architectural_history")};
  std::sort(expected1.begin(), expected1.end());
  EXPECT_EQ(t1.TreeVertices(), expected1);

  SemanticPlaceTree t2 =
      Tqsp(PlaceOf("Roman_Catholic_Diocese_of_Frejus_Toulon"), query);
  std::vector<VertexId> expected2 = {
      Vertex("Roman_Catholic_Diocese_of_Frejus_Toulon"),
      Vertex("Mary_Magdalene"), Vertex("Catholic_Church"),
      Vertex("Anatolia")};
  std::sort(expected2.begin(), expected2.end());
  EXPECT_EQ(t2.TreeVertices(), expected2);
}

TEST_F(Figure1Test, Example5ScoresAtQ1) {
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  auto result = exec_->ExecuteBsp(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 2u);

  // Top-1 at q1 is Montmajour Abbey with f = 6 × 0.22 ≈ 1.32.
  EXPECT_EQ(result->entries[0].place, PlaceOf("Montmajour_Abbey"));
  EXPECT_NEAR(result->entries[0].spatial_distance, 0.22, 0.005);
  EXPECT_DOUBLE_EQ(result->entries[0].looseness, 6.0);
  EXPECT_NEAR(result->entries[0].score, 1.32, 0.01);

  EXPECT_EQ(result->entries[1].place,
            PlaceOf("Roman_Catholic_Diocese_of_Frejus_Toulon"));
  EXPECT_NEAR(result->entries[1].spatial_distance, 1.28, 0.005);
  EXPECT_DOUBLE_EQ(result->entries[1].looseness, 4.0);
  EXPECT_NEAR(result->entries[1].score, 5.12, 0.02);
}

TEST_F(Figure1Test, Example5ScoresAtQ2) {
  KspQuery query = db_->MakeQuery(kQ2, Figure1QueryKeywords(), 2);
  auto result = exec_->ExecuteBsp(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 2u);

  // At q2 the diocese wins with f = 4 × 0.08 ≈ 0.32.
  EXPECT_EQ(result->entries[0].place,
            PlaceOf("Roman_Catholic_Diocese_of_Frejus_Toulon"));
  EXPECT_NEAR(result->entries[0].score, 0.33, 0.02);
  EXPECT_EQ(result->entries[1].place, PlaceOf("Montmajour_Abbey"));
  EXPECT_NEAR(result->entries[1].score, 8.10, 0.05);
}

TEST_F(Figure1Test, AllAlgorithmsAgree) {
  for (const Point& q : {kQ1, kQ2}) {
    for (uint32_t k : {1u, 2u, 5u}) {
      KspQuery query = db_->MakeQuery(q, Figure1QueryKeywords(), k);
      auto bsp = exec_->ExecuteBsp(query);
      auto spp = exec_->ExecuteSpp(query);
      auto sp = exec_->ExecuteSp(query);
      auto ta = exec_->ExecuteTa(query);
      ASSERT_TRUE(bsp.ok() && spp.ok() && sp.ok() && ta.ok());
      ASSERT_EQ(bsp->entries.size(), spp->entries.size());
      ASSERT_EQ(bsp->entries.size(), sp->entries.size());
      ASSERT_EQ(bsp->entries.size(), ta->entries.size());
      for (size_t i = 0; i < bsp->entries.size(); ++i) {
        EXPECT_DOUBLE_EQ(bsp->entries[i].score, spp->entries[i].score);
        EXPECT_DOUBLE_EQ(bsp->entries[i].score, sp->entries[i].score);
        EXPECT_DOUBLE_EQ(bsp->entries[i].score, ta->entries[i].score);
        EXPECT_EQ(bsp->entries[i].place, spp->entries[i].place);
        EXPECT_EQ(bsp->entries[i].place, sp->entries[i].place);
        EXPECT_EQ(bsp->entries[i].place, ta->entries[i].place);
      }
    }
  }
}

TEST_F(Figure1Test, Example8DynamicBoundPrunesSecondPlace) {
  // With k = 1 at q1, SPP finds p1 (θ = 1.32) and then aborts p2's TQSP:
  // Lw(T_p2) = 1.32 / 1.28 ≈ 1.03 and the bound reaches 3 > 1.03 after
  // Mary_Magdalene is visited.
  KspQuery query = db_->MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  QueryStats stats;
  auto result = exec_->ExecuteSpp(query, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 1u);
  EXPECT_EQ(result->entries[0].place, PlaceOf("Montmajour_Abbey"));
  EXPECT_EQ(stats.pruned_dynamic_bound, 1u);
}

TEST_F(Figure1Test, PruningRule1DiscardsUnreachableKeywordPlaces) {
  // {church, architecture}: p2 never reaches "architecture" (§4.1's
  // example) and p1 never reaches "church", so Pruning Rule 1 discards
  // both places and no TQSP is ever constructed.
  KspQuery query = db_->MakeQuery(kQ2, {"church", "architecture"}, 2);
  QueryStats stats;
  auto result = exec_->ExecuteSpp(query, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->entries.empty());
  EXPECT_EQ(stats.pruned_unqualified, 2u);
  EXPECT_EQ(stats.tqsp_computations, 0u);

  // {church, ancient}: both reachable from p2 only.
  KspQuery q2 = db_->MakeQuery(kQ2, {"church", "ancient"}, 2);
  QueryStats stats2;
  auto result2 = exec_->ExecuteSpp(q2, &stats2);
  ASSERT_TRUE(result2.ok());
  ASSERT_EQ(result2->entries.size(), 1u);
  EXPECT_EQ(result2->entries[0].place,
            PlaceOf("Roman_Catholic_Diocese_of_Frejus_Toulon"));
  EXPECT_GE(stats2.pruned_unqualified, 1u);
}

TEST_F(Figure1Test, UnknownKeywordYieldsEmptyResult) {
  KspQuery query = db_->MakeQuery(kQ1, {"zeppelin"}, 3);
  for (auto exec : {&QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
                    &QueryExecutor::ExecuteSp, &QueryExecutor::ExecuteTa}) {
    auto result = (exec_.get()->*exec)(query, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->entries.empty());
  }
}

TEST_F(Figure1Test, NTriplesFixtureGivesSameAnswers) {
  auto kb2 = LoadKnowledgeBaseFromString(MontmajourNTriples());
  ASSERT_TRUE(kb2.ok()) << kb2.status().ToString();
  KspDatabase db2(kb2->get());
  db2.PrepareAll(3);
  QueryExecutor exec2(&db2);
  KspQuery query = db2.MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  auto result = exec2.ExecuteSp(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result->entries[0].looseness, 6.0);
  EXPECT_NEAR(result->entries[0].score, 1.32, 0.01);
  EXPECT_DOUBLE_EQ(result->entries[1].looseness, 4.0);
}

}  // namespace
}  // namespace ksp
