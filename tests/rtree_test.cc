#include "spatial/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace ksp {
namespace {

std::vector<std::pair<Point, uint64_t>> RandomPoints(size_t n,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Point, uint64_t>> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(
        Point{rng.NextDouble(-100, 100), rng.NextDouble(-100, 100)}, i);
  }
  return points;
}

/// Checks structural invariants: MBR containment, fan-out limits, parent
/// pointers, and that every data entry appears exactly once.
void CheckInvariants(const RTree& tree, size_t expected_size,
                     uint32_t max_entries) {
  if (tree.empty()) {
    EXPECT_EQ(expected_size, 0u);
    return;
  }
  std::vector<uint64_t> data;
  std::vector<uint32_t> stack{tree.root()};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    const RTree::Node& node = tree.node(id);
    EXPECT_LE(node.entries.size(), max_entries);
    if (node.is_leaf) {
      for (const auto& e : node.entries) data.push_back(e.id);
    } else {
      EXPECT_GE(node.entries.size(), 1u);
      for (const auto& e : node.entries) {
        uint32_t child = static_cast<uint32_t>(e.id);
        EXPECT_EQ(tree.node(child).parent, id);
        // Parent entry MBR must tightly contain the child's MBR.
        EXPECT_EQ(e.rect, tree.node(child).BoundingRect());
        stack.push_back(child);
      }
    }
  }
  std::sort(data.begin(), data.end());
  ASSERT_EQ(data.size(), expected_size);
  for (size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], i);
}

TEST(RTreeTest, InsertMaintainsInvariants) {
  RTree::Options options;
  options.max_entries = 8;
  options.min_entries = 3;
  RTree tree(options);
  auto points = RandomPoints(500, 1);
  for (auto& [p, id] : points) tree.Insert(p, id);
  EXPECT_EQ(tree.size(), 500u);
  CheckInvariants(tree, 500, options.max_entries);
  EXPECT_GE(tree.Height(), 2u);
  EXPECT_GT(tree.MemoryUsageBytes(), 0u);
}

TEST(RTreeTest, BulkLoadMaintainsInvariants) {
  RTree::Options options;
  options.max_entries = 16;
  options.min_entries = 4;
  RTree tree = RTree::BulkLoadStr(RandomPoints(3000, 2), options);
  EXPECT_EQ(tree.size(), 3000u);
  CheckInvariants(tree, 3000, options.max_entries);
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0u);
  NearestIterator it(&tree, Point{0, 0});
  NearestIterator::Item item;
  EXPECT_FALSE(it.Next(&item));
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(Point{1, 2}, 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1u);
  NearestIterator it(&tree, Point{0, 0});
  NearestIterator::Item item;
  ASSERT_TRUE(it.NextData(&item));
  EXPECT_EQ(item.id, 42u);
  EXPECT_DOUBLE_EQ(item.distance, Distance(Point{0, 0}, Point{1, 2}));
  EXPECT_FALSE(it.NextData(&item));
}

TEST(RTreeTest, DuplicatePointsAllRetained) {
  RTree tree;
  for (uint64_t i = 0; i < 100; ++i) tree.Insert(Point{5, 5}, i);
  EXPECT_EQ(tree.size(), 100u);
  NearestIterator it(&tree, Point{5, 5});
  NearestIterator::Item item;
  std::vector<uint64_t> seen;
  while (it.NextData(&item)) seen.push_back(item.id);
  EXPECT_EQ(seen.size(), 100u);
}

class RTreeNnProperty : public ::testing::TestWithParam<
                            std::tuple<bool, size_t, uint64_t>> {};

TEST_P(RTreeNnProperty, IncrementalNnMatchesLinearScan) {
  auto [bulk, n, seed] = GetParam();
  auto points = RandomPoints(n, seed);
  RTree::Options options;
  options.max_entries = 8;
  options.min_entries = 3;
  RTree tree(options);
  if (bulk) {
    tree = RTree::BulkLoadStr(points, options);
  } else {
    for (auto& [p, id] : points) tree.Insert(p, id);
  }

  Rng rng(seed ^ 0xABCDEF);
  for (int trial = 0; trial < 5; ++trial) {
    Point q{rng.NextDouble(-120, 120), rng.NextDouble(-120, 120)};
    // Oracle: sort by distance.
    std::vector<std::pair<double, uint64_t>> expected;
    for (auto& [p, id] : points) expected.emplace_back(Distance(q, p), id);
    std::sort(expected.begin(), expected.end());

    NearestIterator it(&tree, q);
    NearestIterator::Item item;
    size_t i = 0;
    double last = 0.0;
    while (it.NextData(&item)) {
      ASSERT_LT(i, expected.size());
      // Distances must match the oracle and be non-decreasing.
      EXPECT_NEAR(item.distance, expected[i].first, 1e-9);
      EXPECT_GE(item.distance + 1e-12, last);
      last = item.distance;
      ++i;
    }
    EXPECT_EQ(i, expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RTreeNnProperty,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 7, 64, 500),
                       ::testing::Values(3u, 4u, 5u)));

TEST(RTreeTest, NodeItemsReportedInDistanceOrder) {
  auto points = RandomPoints(300, 9);
  RTree tree = RTree::BulkLoadStr(points);
  NearestIterator it(&tree, Point{0, 0});
  NearestIterator::Item item;
  double last = 0.0;
  uint64_t nodes = 0;
  while (it.Next(&item)) {
    EXPECT_GE(item.distance + 1e-12, last);
    last = item.distance;
    if (item.is_node) ++nodes;
  }
  EXPECT_EQ(nodes, it.nodes_accessed());
  EXPECT_GE(nodes, 1u);
}

TEST(RTreeTest, CollectLeafEntries) {
  auto points = RandomPoints(200, 10);
  RTree tree = RTree::BulkLoadStr(points);
  std::vector<RTree::Entry> entries;
  tree.CollectLeafEntries(tree.root(), &entries);
  EXPECT_EQ(entries.size(), 200u);
}

}  // namespace
}  // namespace ksp
