// Database-level index persistence: PrepareAll -> SaveIndexes ->
// LoadIndexes must answer every query identically with no rebuild.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

class EnginePersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1500));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    dir_ = (std::filesystem::temp_directory_path() / "ksp_engine_idx")
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<KnowledgeBase> kb_;
  std::string dir_;
};

TEST_F(EnginePersistenceTest, SaveLoadRoundTripAnswersIdentically) {
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());

  KspDatabase restored(kb_.get());
  ASSERT_TRUE(restored.LoadIndexes(dir_).ok());
  ASSERT_NE(restored.alpha_index(), nullptr);
  ASSERT_NE(restored.reachability_index(), nullptr);
  EXPECT_EQ(restored.rtree().size(), kb_->num_places());
  EXPECT_EQ(restored.alpha_index()->alpha(), 2u);

  QueryGenOptions qopt;
  qopt.num_keywords = 4;
  qopt.k = 5;
  auto queries = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 5);
  ASSERT_FALSE(queries.empty());
  QueryExecutor original_exec(&original);
  QueryExecutor restored_exec(&restored);
  for (const auto& q : queries) {
    for (auto exec : {&QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
                      &QueryExecutor::ExecuteSp, &QueryExecutor::ExecuteTa}) {
      auto a = (original_exec.*exec)(q, nullptr);
      auto b = (restored_exec.*exec)(q, nullptr);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->entries.size(), b->entries.size());
      for (size_t i = 0; i < a->entries.size(); ++i) {
        EXPECT_DOUBLE_EQ(a->entries[i].score, b->entries[i].score);
        EXPECT_EQ(a->entries[i].place, b->entries[i].place);
      }
    }
  }
}

TEST_F(EnginePersistenceTest, MissingFilesLeaveIndexesUnbuilt) {
  KspDatabase db(kb_.get());
  ASSERT_TRUE(db.LoadIndexes(dir_).ok());  // Empty dir: no-op.
  EXPECT_EQ(db.reachability_index(), nullptr);
  EXPECT_EQ(db.alpha_index(), nullptr);
}

TEST_F(EnginePersistenceTest, PartialSaveLoads) {
  KspDatabase original(kb_.get());
  original.BuildRTree();
  original.BuildReachabilityIndex();  // No alpha index.
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());

  KspDatabase restored(kb_.get());
  ASSERT_TRUE(restored.LoadIndexes(dir_).ok());
  EXPECT_NE(restored.reachability_index(), nullptr);
  EXPECT_EQ(restored.alpha_index(), nullptr);
  // SPP works (needs reach), SP correctly demands the alpha index.
  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  auto queries = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 1);
  ASSERT_FALSE(queries.empty());
  QueryExecutor executor(&restored);
  EXPECT_TRUE(executor.ExecuteSpp(queries[0]).ok());
  EXPECT_FALSE(executor.ExecuteSp(queries[0]).ok());
}

TEST_F(EnginePersistenceTest, AlphaWithoutItsRTreeRejected) {
  // α entries are keyed by R-tree node ids; loading the α file without
  // the tree it was built against must fail loudly, not misalign.
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());
  std::filesystem::remove(dir_ + "/rtree.bin");
  KspDatabase restored(kb_.get());
  auto status = restored.LoadIndexes(dir_);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(EnginePersistenceTest, MismatchedKbRejected) {
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());

  auto other = GenerateKnowledgeBase(SyntheticProfile::YagoLike(900));
  ASSERT_TRUE(other.ok());
  KspDatabase mismatched(other->get());
  EXPECT_FALSE(mismatched.LoadIndexes(dir_).ok());
}

}  // namespace
}  // namespace ksp
