// Database-level index persistence: PrepareAll -> SaveIndexes ->
// LoadIndexes must answer every query identically with no rebuild.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

class EnginePersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1500));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            ("ksp_engine_idx_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<KnowledgeBase> kb_;
  std::string dir_;
};

TEST_F(EnginePersistenceTest, SaveLoadRoundTripAnswersIdentically) {
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());

  KspDatabase restored(kb_.get());
  ASSERT_TRUE(restored.LoadIndexes(dir_).ok());
  ASSERT_NE(restored.alpha_index(), nullptr);
  ASSERT_NE(restored.reachability_index(), nullptr);
  EXPECT_EQ(restored.rtree().size(), kb_->num_places());
  EXPECT_EQ(restored.alpha_index()->alpha(), 2u);

  QueryGenOptions qopt;
  qopt.num_keywords = 4;
  qopt.k = 5;
  auto queries = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 5);
  ASSERT_FALSE(queries.empty());
  QueryExecutor original_exec(&original);
  QueryExecutor restored_exec(&restored);
  for (const auto& q : queries) {
    for (auto exec : {&QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
                      &QueryExecutor::ExecuteSp, &QueryExecutor::ExecuteTa}) {
      auto a = (original_exec.*exec)(q, nullptr);
      auto b = (restored_exec.*exec)(q, nullptr);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->entries.size(), b->entries.size());
      for (size_t i = 0; i < a->entries.size(); ++i) {
        EXPECT_DOUBLE_EQ(a->entries[i].score, b->entries[i].score);
        EXPECT_EQ(a->entries[i].place, b->entries[i].place);
      }
    }
  }
}

TEST_F(EnginePersistenceTest, MissingFilesLeaveIndexesUnbuilt) {
  KspDatabase db(kb_.get());
  ASSERT_TRUE(db.LoadIndexes(dir_).ok());  // Empty dir: no-op.
  EXPECT_EQ(db.reachability_index(), nullptr);
  EXPECT_EQ(db.alpha_index(), nullptr);
}

TEST_F(EnginePersistenceTest, PartialSaveLoads) {
  KspDatabase original(kb_.get());
  original.BuildRTree();
  original.BuildReachabilityIndex();  // No alpha index.
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());

  KspDatabase restored(kb_.get());
  ASSERT_TRUE(restored.LoadIndexes(dir_).ok());
  EXPECT_NE(restored.reachability_index(), nullptr);
  EXPECT_EQ(restored.alpha_index(), nullptr);
  // SPP works (needs reach), SP correctly demands the alpha index.
  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  auto queries = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 1);
  ASSERT_FALSE(queries.empty());
  QueryExecutor executor(&restored);
  EXPECT_TRUE(executor.ExecuteSpp(queries[0]).ok());
  EXPECT_FALSE(executor.ExecuteSp(queries[0]).ok());
}

TEST_F(EnginePersistenceTest, MissingArtifactFromManifestIsIOError) {
  // A manifest whose artifact vanished (partially copied directory) must
  // fail the whole load and leave the database fully unprepared.
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());
  std::filesystem::remove(dir_ + "/rtree-000001.bin");

  KspDatabase restored(kb_.get());
  auto status = restored.LoadIndexes(dir_);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_FALSE(restored.has_rtree());
  EXPECT_EQ(restored.reachability_index(), nullptr);
  EXPECT_EQ(restored.alpha_index(), nullptr);

  // Queries on the unprepared database fail cleanly.
  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  auto queries = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 1);
  ASSERT_FALSE(queries.empty());
  QueryExecutor executor(&restored);
  auto result = executor.ExecuteSp(queries[0]);
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status().ToString();
}

TEST_F(EnginePersistenceTest, StaleManifestIsCorruption) {
  // An artifact swapped out from under its manifest (size/checksum
  // mismatch) must be rejected before any index is loaded.
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());
  {
    // Same size, different bytes: flip one payload byte in place.
    std::fstream f(dir_ + "/reach-000001.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(64);
    char b = 0;
    f.get(b);
    f.seekp(64);
    f.put(static_cast<char>(b ^ 0x01));
  }

  KspDatabase restored(kb_.get());
  auto status = restored.LoadIndexes(dir_);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_FALSE(restored.has_rtree());
  EXPECT_EQ(restored.reachability_index(), nullptr);
  EXPECT_EQ(restored.alpha_index(), nullptr);
}

TEST_F(EnginePersistenceTest, SecondSaveAdvancesGenerationAndCollectsOld) {
  KspDatabase db(kb_.get());
  db.PrepareAll(2);
  ASSERT_TRUE(db.SaveIndexes(dir_).ok());
  ASSERT_TRUE(std::filesystem::exists(dir_ + "/rtree-000001.bin"));
  ASSERT_TRUE(db.SaveIndexes(dir_).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/rtree-000002.bin"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/rtree-000001.bin"));

  KspDatabase restored(kb_.get());
  ASSERT_TRUE(restored.LoadIndexes(dir_).ok());
  EXPECT_TRUE(restored.has_rtree());
  EXPECT_NE(restored.alpha_index(), nullptr);
}

TEST_F(EnginePersistenceTest, LegacyLayoutStillLoads) {
  // Pre-manifest directories (fixed filenames, no MANIFEST) stay
  // readable for one release.
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.rtree().Save(dir_ + "/rtree.bin").ok());
  ASSERT_TRUE(
      original.reachability_index()->Save(dir_ + "/reach.bin").ok());
  ASSERT_TRUE(original.alpha_index()->Save(dir_ + "/alpha.bin").ok());

  KspDatabase restored(kb_.get());
  ASSERT_TRUE(restored.LoadIndexes(dir_).ok());
  EXPECT_TRUE(restored.has_rtree());
  EXPECT_NE(restored.reachability_index(), nullptr);
  EXPECT_NE(restored.alpha_index(), nullptr);
}

TEST_F(EnginePersistenceTest, AlphaWithoutItsRTreeRejected) {
  // α entries are keyed by R-tree node ids; loading the α file without
  // the tree it was built against (legacy layout) must fail loudly with
  // InvalidArgument, not misalign.
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.alpha_index()->Save(dir_ + "/alpha.bin").ok());
  KspDatabase restored(kb_.get());
  auto status = restored.LoadIndexes(dir_);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_EQ(restored.alpha_index(), nullptr);
}

TEST_F(EnginePersistenceTest, MismatchedKbRejected) {
  KspDatabase original(kb_.get());
  original.PrepareAll(2);
  ASSERT_TRUE(original.SaveIndexes(dir_).ok());

  auto other = GenerateKnowledgeBase(SyntheticProfile::YagoLike(900));
  ASSERT_TRUE(other.ok());
  KspDatabase mismatched(other->get());
  EXPECT_FALSE(mismatched.LoadIndexes(dir_).ok());
}

}  // namespace
}  // namespace ksp
