// Persistence of the expensive preprocessing artifacts: reachability
// labels and the α-radius inverted file round-trip exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "alpha/alpha_index.h"
#include "core/database.h"
#include "datagen/synthetic.h"
#include "reach/reachability_index.h"

namespace ksp {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class IndexIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::YagoLike(1500));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
  }
  std::unique_ptr<KnowledgeBase> kb_;
};

TEST_F(IndexIoTest, ReachabilityRoundTrip) {
  auto index = ReachabilityIndex::Build(kb_->graph(), kb_->documents(),
                                        kb_->num_terms());
  std::string path = TempPath("ksp_reach.idx");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = ReachabilityIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumLabelEntries(), index.NumLabelEntries());
  EXPECT_EQ(loaded->num_base_vertices(), index.num_base_vertices());
  // Every query agrees on a sample grid.
  for (VertexId v = 0; v < kb_->num_vertices(); v += 37) {
    for (TermId t = 0; t < kb_->num_terms(); t += 211) {
      EXPECT_EQ(loaded->Reaches(v, t), index.Reaches(v, t))
          << v << " " << t;
    }
  }
  std::remove(path.c_str());
}

TEST_F(IndexIoTest, ReachabilityBadFileRejected) {
  std::string path = TempPath("ksp_reach_bad.idx");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("nonsense", f);
    std::fclose(f);
  }
  auto loaded = ReachabilityIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
  EXPECT_TRUE(ReachabilityIndex::Load(path).status().IsIOError());
}

TEST_F(IndexIoTest, AlphaIndexRoundTrip) {
  KspDatabase db(kb_.get());
  db.BuildRTree();
  AlphaIndex index = AlphaIndex::Build(*kb_, db.rtree(), 2);
  std::string path = TempPath("ksp_alpha.idx");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = AlphaIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->alpha(), index.alpha());
  EXPECT_EQ(loaded->num_places(), index.num_places());
  EXPECT_EQ(loaded->num_nodes(), index.num_nodes());
  EXPECT_EQ(loaded->TotalEntries(), index.TotalEntries());
  for (TermId t = 0; t < kb_->num_terms(); t += 101) {
    auto a = index.TermPostings(t);
    auto b = loaded->TermPostings(t);
    ASSERT_EQ(a.size(), b.size()) << t;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].entry, b[i].entry);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
  std::remove(path.c_str());
}

TEST_F(IndexIoTest, AlphaIndexTruncatedRejected) {
  KspDatabase db(kb_.get());
  db.BuildRTree();
  AlphaIndex index = AlphaIndex::Build(*kb_, db.rtree(), 1);
  std::string path = TempPath("ksp_alpha_trunc.idx");
  ASSERT_TRUE(index.Save(path).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  auto loaded = AlphaIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ksp
