#include "rdf/knowledge_base.h"

#include <gtest/gtest.h>

namespace ksp {
namespace {

TEST(KnowledgeBaseBuilderTest, ProgrammaticConstruction) {
  KnowledgeBaseBuilder builder;
  VertexId a = builder.AddEntity("http://x.org/Cathedral_Tower");
  VertexId b = builder.AddEntity("http://x.org/Old_Town");
  builder.AddRelation(a, b, "http://x.org/locatedIn");
  builder.SetLocation(a, Point{10.0, 20.0});

  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ((*kb)->num_vertices(), 2u);
  EXPECT_EQ((*kb)->num_edges(), 1u);
  EXPECT_EQ((*kb)->num_places(), 1u);
  EXPECT_EQ((*kb)->place_vertex(0), a);
  EXPECT_EQ((*kb)->place_location(0), (Point{10.0, 20.0}));
  EXPECT_EQ((*kb)->place_of(a), 0u);
  EXPECT_EQ((*kb)->place_of(b), kInvalidPlace);
  EXPECT_TRUE((*kb)->IsPlace(a));
  EXPECT_FALSE((*kb)->IsPlace(b));

  // URI local-name tokens form the documents; predicate tokens enrich the
  // object's document.
  auto terms = (*kb)->LookupTerms({"cathedral", "tower", "town", "located"});
  const DocumentStore& docs = (*kb)->documents();
  EXPECT_TRUE(docs.Contains(a, terms[0]));
  EXPECT_TRUE(docs.Contains(a, terms[1]));
  EXPECT_TRUE(docs.Contains(b, terms[2]));
  EXPECT_TRUE(docs.Contains(b, terms[3]));  // From the predicate.
  EXPECT_FALSE(docs.Contains(a, terms[3]));
}

TEST(KnowledgeBaseBuilderTest, AddEntityIsIdempotent) {
  KnowledgeBaseBuilder builder;
  VertexId a1 = builder.AddEntity("http://x.org/A");
  VertexId a2 = builder.AddEntity("<http://x.org/A>");  // Brackets stripped.
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(builder.num_vertices(), 1u);
}

TEST(KnowledgeBaseBuilderTest, LiteralTriplesFoldIntoSubjectDocument) {
  KnowledgeBaseBuilder builder;
  Triple t;
  t.subject = "http://x.org/Abbey";
  t.predicate = "http://x.org/description";
  t.object = "romanesque monastery";
  t.object_kind = ObjectKind::kLiteral;
  builder.AddTriple(t);
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ((*kb)->num_vertices(), 1u);  // Literal creates no vertex.
  EXPECT_EQ((*kb)->num_edges(), 0u);
  auto v = (*kb)->FindVertex("http://x.org/Abbey");
  ASSERT_TRUE(v.has_value());
  auto terms =
      (*kb)->LookupTerms({"romanesque", "monastery", "description"});
  for (TermId t2 : terms) {
    EXPECT_TRUE((*kb)->documents().Contains(*v, t2));
  }
}

TEST(KnowledgeBaseBuilderTest, TypeTriplesFoldObjectTokens) {
  KnowledgeBaseBuilder builder;
  Triple t;
  t.subject = "http://x.org/Abbey";
  t.predicate = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
  t.object = "http://x.org/ReligiousBuilding";
  t.object_kind = ObjectKind::kIri;
  builder.AddTriple(t);
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  // The type IRI does not become a vertex.
  EXPECT_EQ((*kb)->num_vertices(), 1u);
  auto v = (*kb)->FindVertex("http://x.org/Abbey");
  auto terms = (*kb)->LookupTerms({"religious", "building"});
  EXPECT_TRUE((*kb)->documents().Contains(*v, terms[0]));
  EXPECT_TRUE((*kb)->documents().Contains(*v, terms[1]));
}

TEST(KnowledgeBaseBuilderTest, IgnoredPredicatesDropped) {
  KnowledgeBaseBuilder builder;
  Triple t;
  t.subject = "http://x.org/A";
  t.predicate = "http://www.w3.org/2002/07/owl#sameAs";
  t.object = "http://y.org/A";
  t.object_kind = ObjectKind::kIri;
  builder.AddTriple(t);
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ((*kb)->num_vertices(), 0u);
  EXPECT_EQ((*kb)->num_edges(), 0u);
}

TEST(KnowledgeBaseBuilderTest, LatLongPairBecomesPlace) {
  KnowledgeBaseBuilder builder;
  Triple lat;
  lat.subject = "http://x.org/A";
  lat.predicate = "http://www.w3.org/2003/01/geo/wgs84_pos#lat";
  lat.object = "43.71";
  lat.object_kind = ObjectKind::kLiteral;
  Triple lon = lat;
  lon.predicate = "http://www.w3.org/2003/01/geo/wgs84_pos#long";
  lon.object = "4.66";
  builder.AddTriple(lat);
  builder.AddTriple(lon);
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  ASSERT_EQ((*kb)->num_places(), 1u);
  EXPECT_NEAR((*kb)->place_location(0).x, 43.71, 1e-9);
  EXPECT_NEAR((*kb)->place_location(0).y, 4.66, 1e-9);
}

TEST(KnowledgeBaseBuilderTest, LatOnlyIsNotAPlace) {
  KnowledgeBaseBuilder builder;
  Triple lat;
  lat.subject = "http://x.org/A";
  lat.predicate = "http://x.org/lat";
  lat.object = "43.71";
  lat.object_kind = ObjectKind::kLiteral;
  builder.AddTriple(lat);
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ((*kb)->num_places(), 0u);
}

TEST(KnowledgeBaseBuilderTest, GeorssPointBecomesPlace) {
  KnowledgeBaseBuilder builder;
  Triple t;
  t.subject = "http://x.org/A";
  t.predicate = "http://www.georss.org/georss/point";
  t.object = "43.13 5.97";
  t.object_kind = ObjectKind::kLiteral;
  builder.AddTriple(t);
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  ASSERT_EQ((*kb)->num_places(), 1u);
  EXPECT_NEAR((*kb)->place_location(0).x, 43.13, 1e-9);
  EXPECT_NEAR((*kb)->place_location(0).y, 5.97, 1e-9);
}

TEST(KnowledgeBaseBuilderTest, WktPointBecomesPlace) {
  KnowledgeBaseBuilder builder;
  Triple t;
  t.subject = "http://x.org/A";
  t.predicate = "http://www.opengis.net/ont/geosparql#asWKT";
  t.object = "POINT(4.66 43.71)";  // WKT is (lon lat).
  t.object_kind = ObjectKind::kLiteral;
  builder.AddTriple(t);
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  ASSERT_EQ((*kb)->num_places(), 1u);
  EXPECT_NEAR((*kb)->place_location(0).x, 43.71, 1e-9);
  EXPECT_NEAR((*kb)->place_location(0).y, 4.66, 1e-9);
}

TEST(KnowledgeBaseBuilderTest, MalformedCoordinateIsKeptAsText) {
  KnowledgeBaseBuilder builder;
  Triple t;
  t.subject = "http://x.org/A";
  t.predicate = "http://x.org/lat";
  t.object = "not a number";
  t.object_kind = ObjectKind::kLiteral;
  builder.AddTriple(t);
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ((*kb)->num_places(), 0u);
  auto v = (*kb)->FindVertex("http://x.org/A");
  auto terms = (*kb)->LookupTerms({"number"});
  EXPECT_TRUE((*kb)->documents().Contains(*v, terms[0]));
}

TEST(KnowledgeBaseTest, LookupTermsMapsUnknownToInvalid) {
  KnowledgeBaseBuilder builder;
  builder.AddEntity("http://x.org/Alpha_Beta");
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  auto terms = (*kb)->LookupTerms({"alpha", "MISSING", "Beta"});
  EXPECT_NE(terms[0], kInvalidTerm);
  EXPECT_EQ(terms[1], kInvalidTerm);
  EXPECT_NE(terms[2], kInvalidTerm);  // Case-insensitive.
}

TEST(KnowledgeBaseTest, LoadFromStringEndToEnd) {
  auto kb = LoadKnowledgeBaseFromString(
      "<http://x.org/A_Place> <http://x.org/linksTo> <http://x.org/B> .\n"
      "<http://x.org/A_Place> <http://x.org/near> <http://x.org/B> .\n"
      "<http://x.org/A_Place> <http://x.org/lat> \"1.0\" .\n"
      "<http://x.org/A_Place> <http://x.org/long> \"2.0\" .\n");
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ((*kb)->num_vertices(), 2u);
  EXPECT_EQ((*kb)->num_edges(), 1u);  // linksTo ignored.
  EXPECT_EQ((*kb)->num_places(), 1u);
}

}  // namespace
}  // namespace ksp
