#include "text/document_store.h"

#include <gtest/gtest.h>

namespace ksp {
namespace {

TEST(DocumentStoreTest, BuildsSortedUniqueDocs) {
  DocumentStoreBuilder builder;
  builder.AddTerm(0, 5);
  builder.AddTerm(0, 2);
  builder.AddTerm(0, 5);  // Duplicate.
  builder.AddTerm(2, 1);
  DocumentStore store = builder.Finish(3);

  EXPECT_EQ(store.num_vertices(), 3u);
  auto d0 = store.Terms(0);
  ASSERT_EQ(d0.size(), 2u);
  EXPECT_EQ(d0[0], 2u);
  EXPECT_EQ(d0[1], 5u);
  EXPECT_TRUE(store.Terms(1).empty());
  ASSERT_EQ(store.Terms(2).size(), 1u);
  EXPECT_EQ(store.TotalPostings(), 3u);
}

TEST(DocumentStoreTest, Contains) {
  DocumentStoreBuilder builder;
  for (TermId t : {3u, 1u, 4u, 1u, 5u, 9u, 2u, 6u}) builder.AddTerm(0, t);
  DocumentStore store = builder.Finish(1);
  for (TermId t : {1u, 2u, 3u, 4u, 5u, 6u, 9u}) {
    EXPECT_TRUE(store.Contains(0, t)) << t;
  }
  EXPECT_FALSE(store.Contains(0, 7));
  EXPECT_FALSE(store.Contains(0, 0));
  EXPECT_FALSE(store.Contains(0, 100));
}

TEST(DocumentStoreTest, EmptyStore) {
  DocumentStoreBuilder builder;
  DocumentStore store = builder.Finish(0);
  EXPECT_EQ(store.num_vertices(), 0u);
  EXPECT_EQ(store.TotalPostings(), 0u);
  EXPECT_EQ(store.AverageDocumentLength(), 0.0);
}

TEST(DocumentStoreTest, AverageDocumentLength) {
  DocumentStoreBuilder builder;
  builder.AddTerm(0, 1);
  builder.AddTerm(0, 2);
  builder.AddTerm(1, 3);
  DocumentStore store = builder.Finish(4);
  EXPECT_DOUBLE_EQ(store.AverageDocumentLength(), 3.0 / 4.0);
  EXPECT_GT(store.MemoryUsageBytes(), 0u);
}

TEST(DocumentStoreTest, UntouchedTrailingVerticesGetEmptyDocs) {
  DocumentStoreBuilder builder;
  builder.AddTerm(1, 7);
  DocumentStore store = builder.Finish(5);
  EXPECT_TRUE(store.Terms(0).empty());
  EXPECT_FALSE(store.Terms(1).empty());
  for (VertexId v = 2; v < 5; ++v) EXPECT_TRUE(store.Terms(v).empty());
}

}  // namespace
}  // namespace ksp
