// Randomized corruption matrix: for every persisted artifact format, ≥64
// deterministic bit-flip and truncation variants must each yield a clean
// Status::Corruption / Status::IOError — never a crash, an unbounded
// allocation, or a silently loaded index (the CI sanitizer job runs this
// under ASan/UBSan to catch the "crash" half of that claim).

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "alpha/alpha_index.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/database.h"
#include "datagen/synthetic.h"
#include "rdf/kb_io.h"
#include "reach/reachability_index.h"
#include "spatial/paged_rtree.h"
#include "spatial/rtree.h"
#include "storage/shared_buffer_pool.h"
#include "text/inverted_index.h"

namespace ksp {
namespace {

constexpr int kBitFlipVariants = 48;
constexpr int kTruncationVariants = 16;

class CorruptionMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(400));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            ("ksp_corrupt_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(2);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::string ReadFileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  static void WriteFileBytes(const std::string& path,
                             const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Runs the ≥64-variant matrix over one saved artifact. `load` returns
  /// the load status; `strict` demands that every variant FAILS (the
  /// checksummed v2 format), while legacy files only guarantee that
  /// failures are clean.
  void RunMatrix(const std::string& path,
                 const std::function<Status(const std::string&)>& load,
                 uint64_t seed, bool strict) {
    const std::string pristine = ReadFileBytes(path);
    ASSERT_FALSE(pristine.empty());
    ASSERT_TRUE(load(path).ok()) << "pristine file must load";
    Rng rng(seed);
    int failures = 0;

    for (int i = 0; i < kBitFlipVariants; ++i) {
      std::string copy = pristine;
      const size_t byte = rng.NextBounded(copy.size());
      const int bit = static_cast<int>(rng.NextBounded(8));
      copy[byte] ^= static_cast<char>(1u << bit);
      WriteFileBytes(path, copy);
      Status st = load(path);
      if (strict) {
        EXPECT_FALSE(st.ok()) << path << ": flip byte " << byte << " bit "
                              << bit << " was not detected";
      }
      if (!st.ok()) {
        ++failures;
        EXPECT_TRUE(st.IsCorruption() || st.IsIOError())
            << path << ": flip byte " << byte << " bit " << bit
            << " yielded unclean error: " << st.ToString();
      }
    }

    for (int i = 0; i < kTruncationVariants; ++i) {
      const size_t keep = rng.NextBounded(pristine.size());
      WriteFileBytes(path, pristine.substr(0, keep));
      Status st = load(path);
      if (strict) {
        EXPECT_FALSE(st.ok())
            << path << ": truncation to " << keep << " was not detected";
      }
      if (!st.ok()) {
        ++failures;
        EXPECT_TRUE(st.IsCorruption() || st.IsIOError())
            << path << ": truncation to " << keep
            << " yielded unclean error: " << st.ToString();
      }
    }

    if (strict) {
      EXPECT_EQ(failures, kBitFlipVariants + kTruncationVariants);
    }
    WriteFileBytes(path, pristine);  // Restore for any later matrix.
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::string dir_;
};

TEST_F(CorruptionMatrixTest, RTreeArtifact) {
  const std::string path = dir_ + "/rtree.bin";
  ASSERT_TRUE(db_->rtree().Save(path).ok());
  RunMatrix(
      path,
      [](const std::string& p) { return RTree::Load(p).status(); },
      /*seed=*/101, /*strict=*/true);
}

TEST_F(CorruptionMatrixTest, ReachabilityArtifact) {
  const std::string path = dir_ + "/reach.bin";
  ASSERT_TRUE(db_->reachability_index()->Save(path).ok());
  RunMatrix(
      path,
      [](const std::string& p) {
        return ReachabilityIndex::Load(p).status();
      },
      /*seed=*/202, /*strict=*/true);
}

TEST_F(CorruptionMatrixTest, AlphaArtifact) {
  const std::string path = dir_ + "/alpha.bin";
  ASSERT_TRUE(db_->alpha_index()->Save(path).ok());
  RunMatrix(
      path,
      [](const std::string& p) { return AlphaIndex::Load(p).status(); },
      /*seed=*/303, /*strict=*/true);
}

TEST_F(CorruptionMatrixTest, KnowledgeBaseSnapshot) {
  const std::string path = dir_ + "/kb.bin";
  ASSERT_TRUE(SaveKnowledgeBase(*kb_, path).ok());
  RunMatrix(
      path,
      [](const std::string& p) {
        return LoadKnowledgeBaseSnapshot(p).status();
      },
      /*seed=*/404, /*strict=*/true);
}

TEST_F(CorruptionMatrixTest, DiskInvertedIndex) {
  const std::string path = dir_ + "/inverted.bin";
  ASSERT_TRUE(
      DiskInvertedIndex::Write(kb_->inverted_index(), path).ok());
  RunMatrix(
      path,
      [](const std::string& p) {
        auto index = DiskInvertedIndex::Open(p);
        if (!index.ok()) return index.status();
        // The blob was CRC-verified at Open; reads must stay in bounds
        // regardless.
        std::vector<VertexId> out;
        for (TermId t = 0; t < (*index)->NumTerms(); ++t) {
          out.clear();
          KSP_RETURN_NOT_OK((*index)->GetPostings(t, &out));
        }
        return Status::OK();
      },
      /*seed=*/505, /*strict=*/true);
}

TEST_F(CorruptionMatrixTest, PagedRTreeArtifact) {
  const std::string path = dir_ + "/paged_rtree.bin";
  ASSERT_TRUE(PagedRTree::Write(db_->rtree(), path).ok());
  RunMatrix(
      path,
      [](const std::string& p) {
        // Open CRC-verifies every section; a clean open must then be able
        // to sweep every node slot through the buffer pool.
        SharedBufferPool pool(/*budget_bytes=*/4 << 20, /*page_size=*/4096);
        auto tree = PagedRTree::Open(p, &pool);
        if (!tree.ok()) return tree.status();
        SpatialCursor cursor;
        SpatialNodeRef node;
        for (size_t id = 0; id < (*tree)->num_nodes(); ++id) {
          KSP_RETURN_NOT_OK(
              (*tree)->ReadNode(static_cast<uint32_t>(id), &cursor, &node));
        }
        return Status::OK();
      },
      /*seed=*/1111, /*strict=*/true);
}

// Legacy (CRC-free) files cannot detect every flipped payload bit, but
// the hardened v1 readers must never crash, over-allocate, or return an
// unclean error on the same matrix.
TEST_F(CorruptionMatrixTest, LegacyArtifactsFailCleanlyAtWorst) {
  const std::string rtree_path = dir_ + "/rtree_v1.bin";
  ASSERT_TRUE(db_->rtree().SaveLegacyForTesting(rtree_path).ok());
  RunMatrix(
      rtree_path,
      [](const std::string& p) { return RTree::Load(p).status(); },
      /*seed=*/606, /*strict=*/false);

  const std::string reach_path = dir_ + "/reach_v1.bin";
  ASSERT_TRUE(
      db_->reachability_index()->SaveLegacyForTesting(reach_path).ok());
  RunMatrix(
      reach_path,
      [](const std::string& p) {
        return ReachabilityIndex::Load(p).status();
      },
      /*seed=*/707, /*strict=*/false);

  const std::string alpha_path = dir_ + "/alpha_v1.bin";
  ASSERT_TRUE(db_->alpha_index()->SaveLegacyForTesting(alpha_path).ok());
  RunMatrix(
      alpha_path,
      [](const std::string& p) { return AlphaIndex::Load(p).status(); },
      /*seed=*/808, /*strict=*/false);

  const std::string kb_path = dir_ + "/kb_v1.bin";
  ASSERT_TRUE(SaveKnowledgeBaseLegacyForTesting(*kb_, kb_path).ok());
  RunMatrix(
      kb_path,
      [](const std::string& p) {
        return LoadKnowledgeBaseSnapshot(p).status();
      },
      /*seed=*/909, /*strict=*/false);

  const std::string inv_path = dir_ + "/inverted_v1.bin";
  ASSERT_TRUE(DiskInvertedIndex::WriteLegacyForTesting(
                  kb_->inverted_index(), inv_path)
                  .ok());
  RunMatrix(
      inv_path,
      [](const std::string& p) {
        auto index = DiskInvertedIndex::Open(p);
        if (!index.ok()) return index.status();
        std::vector<VertexId> out;
        for (TermId t = 0; t < (*index)->NumTerms(); ++t) {
          out.clear();
          KSP_RETURN_NOT_OK((*index)->GetPostings(t, &out));
        }
        return Status::OK();
      },
      /*seed=*/1010, /*strict=*/false);
}

// Legacy files must still round-trip bit-for-pristine: the one-release
// read window.
TEST_F(CorruptionMatrixTest, PristineLegacyFilesStillLoad) {
  const std::string rtree_path = dir_ + "/rtree_v1.bin";
  ASSERT_TRUE(db_->rtree().SaveLegacyForTesting(rtree_path).ok());
  auto rtree = RTree::Load(rtree_path);
  ASSERT_TRUE(rtree.ok()) << rtree.status().ToString();
  EXPECT_EQ(rtree->size(), kb_->num_places());

  const std::string kb_path = dir_ + "/kb_v1.bin";
  ASSERT_TRUE(SaveKnowledgeBaseLegacyForTesting(*kb_, kb_path).ok());
  auto loaded = LoadKnowledgeBaseSnapshot(kb_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_vertices(), kb_->num_vertices());
  EXPECT_EQ((*loaded)->num_places(), kb_->num_places());
}

}  // namespace
}  // namespace ksp
