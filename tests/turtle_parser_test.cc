#include "rdf/turtle_parser.h"

#include <gtest/gtest.h>

#include <vector>

#include "rdf/knowledge_base.h"

namespace ksp {
namespace {

std::vector<Triple> ParseAll(std::string_view text, bool strict = true,
                             uint64_t* malformed = nullptr,
                             Status* status = nullptr) {
  TurtleParser::Options options;
  options.strict = strict;
  TurtleParser parser(options);
  std::vector<Triple> triples;
  auto count = parser.ParseString(
      text, [&](const Triple& t) { triples.push_back(t); }, malformed);
  if (status != nullptr) {
    *status = count.ok() ? Status::OK() : count.status();
  } else {
    EXPECT_TRUE(count.ok()) << count.status().ToString();
  }
  return triples;
}

TEST(TurtleParserTest, PrefixExpansion) {
  auto triples = ParseAll(
      "@prefix ex: <http://example.org/> .\n"
      "ex:A ex:knows ex:B .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject, "http://example.org/A");
  EXPECT_EQ(triples[0].predicate, "http://example.org/knows");
  EXPECT_EQ(triples[0].object, "http://example.org/B");
  EXPECT_EQ(triples[0].object_kind, ObjectKind::kIri);
}

TEST(TurtleParserTest, SparqlStylePrefixAndEmptyPrefix) {
  auto triples = ParseAll(
      "PREFIX : <http://example.org/>\n"
      ":A :p :B .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject, "http://example.org/A");
}

TEST(TurtleParserTest, BaseResolution) {
  auto triples = ParseAll(
      "@base <http://example.org/> .\n"
      "<A> <p> <B> .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject, "http://example.org/A");
  EXPECT_EQ(triples[0].predicate, "http://example.org/p");
}

TEST(TurtleParserTest, AKeywordExpandsToRdfType) {
  auto triples = ParseAll(
      "@prefix ex: <http://example.org/> .\n"
      "ex:Abbey a ex:Monastery .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].predicate,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(TurtleParserTest, PredicateAndObjectLists) {
  auto triples = ParseAll(
      "@prefix ex: <http://example.org/> .\n"
      "ex:A ex:p ex:B , ex:C ;\n"
      "     ex:q ex:D ;\n"
      "     ex:r \"text\" .\n");
  ASSERT_EQ(triples.size(), 4u);
  EXPECT_EQ(triples[0].object, "http://example.org/B");
  EXPECT_EQ(triples[1].object, "http://example.org/C");
  EXPECT_EQ(triples[1].predicate, "http://example.org/p");
  EXPECT_EQ(triples[2].predicate, "http://example.org/q");
  EXPECT_EQ(triples[3].object, "text");
  EXPECT_EQ(triples[3].object_kind, ObjectKind::kLiteral);
}

TEST(TurtleParserTest, DanglingSemicolonBeforeDot) {
  auto triples = ParseAll(
      "@prefix ex: <http://e/> .\n"
      "ex:A ex:p ex:B ; .\n");
  EXPECT_EQ(triples.size(), 1u);
}

TEST(TurtleParserTest, LiteralForms) {
  auto triples = ParseAll(
      "@prefix ex: <http://e/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:A ex:label \"hello\\nworld\"@en ;\n"
      "     ex:typed \"42\"^^xsd:int ;\n"
      "     ex:count 17 ;\n"
      "     ex:ratio 3.5 ;\n"
      "     ex:mass 1.2e3 ;\n"
      "     ex:flag true .\n");
  ASSERT_EQ(triples.size(), 6u);
  EXPECT_EQ(triples[0].object, "hello\nworld");
  EXPECT_EQ(triples[0].language, "en");
  EXPECT_EQ(triples[1].datatype, "http://www.w3.org/2001/XMLSchema#int");
  EXPECT_EQ(triples[2].object, "17");
  EXPECT_EQ(triples[2].datatype,
            "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(triples[3].datatype,
            "http://www.w3.org/2001/XMLSchema#decimal");
  EXPECT_EQ(triples[4].datatype, "http://www.w3.org/2001/XMLSchema#double");
  EXPECT_EQ(triples[5].object, "true");
  EXPECT_EQ(triples[5].datatype,
            "http://www.w3.org/2001/XMLSchema#boolean");
}

TEST(TurtleParserTest, NTriplesIsValidTurtle) {
  auto triples = ParseAll(
      "<http://e/s> <http://e/p> <http://e/o> .\n"
      "<http://e/s> <http://e/q> \"lit\" .\n");
  EXPECT_EQ(triples.size(), 2u);
}

TEST(TurtleParserTest, CommentsAndBlankLines) {
  auto triples = ParseAll(
      "# a header comment\n"
      "@prefix ex: <http://e/> .  # trailing comment\n"
      "\n"
      "ex:A ex:p ex:B . # done\n");
  EXPECT_EQ(triples.size(), 1u);
}

TEST(TurtleParserTest, BlankNodeLabels) {
  auto triples = ParseAll(
      "@prefix ex: <http://e/> .\n"
      "_:b1 ex:p _:b2 .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject, "_:b1");
  EXPECT_EQ(triples[0].object, "_:b2");
}

TEST(TurtleParserTest, ErrorsCarryLineNumbers) {
  Status status;
  ParseAll("@prefix ex: <http://e/> .\n\nex:A ex:p ex:B\n", true, nullptr,
           &status);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line"), std::string::npos);
}

TEST(TurtleParserTest, RejectedConstructs) {
  const char* bad[] = {
      "ex:A ex:p ex:B .",  // Undeclared prefix.
      "@prefix ex: <http://e/> . ex:A ex:p [ ex:q ex:B ] .",
      "@prefix ex: <http://e/> . ex:A ex:p (1 2 3) .",
      "@prefix ex: <http://e/> . ex:A ex:p \"\"\"multi\"\"\" .",
      "@prefix ex: <http://e/> . ex:A ex:p \"unterminated .",
  };
  for (const char* text : bad) {
    Status status;
    ParseAll(text, true, nullptr, &status);
    EXPECT_FALSE(status.ok()) << text;
  }
}

TEST(TurtleParserTest, LenientModeSkipsBadStatements) {
  uint64_t malformed = 0;
  auto triples = ParseAll(
      "@prefix ex: <http://e/> .\n"
      "ex:A ex:p ex:B .\n"
      "ex:broken ex:p [ ] .\n"
      "ex:C ex:p ex:D .\n",
      /*strict=*/false, &malformed);
  EXPECT_EQ(triples.size(), 2u);
  EXPECT_EQ(malformed, 1u);
}

TEST(TurtleParserTest, EndToEndKnowledgeBase) {
  // A Turtle rendering of the Figure 1 neighbourhood with coordinates.
  const char* turtle = R"(
@prefix ex: <http://example.org/> .
@prefix geo: <http://www.w3.org/2003/01/geo/wgs84_pos#> .

ex:Montmajour_Abbey a ex:Monastery ;
    ex:dedication ex:Saint_Peter ;
    geo:lat 43.71 ;
    geo:long 4.66 .

ex:Saint_Peter ex:note "Roman Catholic saint" .
)";
  auto kb = LoadKnowledgeBaseFromTurtleString(turtle);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ((*kb)->num_vertices(), 2u);  // Abbey + Saint (type folded).
  EXPECT_EQ((*kb)->num_places(), 1u);
  EXPECT_NEAR((*kb)->place_location(0).x, 43.71, 1e-9);
  auto abbey = (*kb)->FindVertex("http://example.org/Montmajour_Abbey");
  ASSERT_TRUE(abbey.has_value());
  // The folded type contributes "monastery" to the abbey's document.
  auto terms = (*kb)->LookupTerms({"monastery"});
  ASSERT_NE(terms[0], kInvalidTerm);
  EXPECT_TRUE((*kb)->documents().Contains(*abbey, terms[0]));
}

TEST(TurtleParserTest, MissingFileIsIOError) {
  TurtleParser parser;
  auto result = parser.ParseFile("/nonexistent.ttl", [](const Triple&) {});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

}  // namespace
}  // namespace ksp
