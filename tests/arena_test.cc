// Goldens for the bump-pointer arena (common/arena.h): alignment
// guarantees, reset-reuse convergence (the footprint settles on one
// block sized for the worst iteration), the large-allocation fallback,
// and ArenaVec growth semantics. The no-leak guarantee is exercised
// simply by running everything here under the ASan CI job.

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace ksp {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena(/*block_bytes=*/256);
  for (size_t align : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul, 128ul}) {
    for (int i = 0; i < 10; ++i) {
      void* p = arena.Allocate(align + i, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "align=" << align << " i=" << i;
    }
  }
}

TEST(ArenaTest, DefaultAlignmentIsMaxAlign) {
  Arena arena;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(1 + (i % 7));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
  }
}

TEST(ArenaTest, AllocationsDoNotOverlapAndHoldData) {
  Arena arena(/*block_bytes=*/64);  // Tiny blocks force many chains.
  std::vector<std::pair<unsigned char*, size_t>> spans;
  for (size_t i = 1; i <= 40; ++i) {
    auto* p = static_cast<unsigned char*>(arena.Allocate(i, 1));
    std::memset(p, static_cast<int>(i), i);
    spans.emplace_back(p, i);
  }
  // Every span still holds its fill pattern: no overlap, no corruption.
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t b = 0; b < spans[i].second; ++b) {
      ASSERT_EQ(spans[i].first[b], static_cast<unsigned char>(i + 1))
          << "span " << i << " byte " << b;
    }
  }
}

TEST(ArenaTest, ResetKeepsSingleLargestBlockAndReusesIt) {
  Arena arena(/*block_bytes=*/128);
  // First iteration: the "worst" candidate — spills into several blocks
  // including one oversized fallback block.
  arena.Allocate(100);
  arena.Allocate(100);
  arena.Allocate(1000);  // Large-allocation fallback block.
  EXPECT_GE(arena.num_blocks(), 2u);
  const size_t reserved_before = arena.bytes_reserved();

  arena.Reset();
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // The survivor is the largest block (>= the 1000-byte fallback).
  EXPECT_GE(arena.bytes_reserved(), 1000u);
  EXPECT_LE(arena.bytes_reserved(), reserved_before);

  // Steady state: iterations that fit the retained block allocate no new
  // blocks, ever.
  for (int iter = 0; iter < 50; ++iter) {
    arena.Reset();
    void* p = arena.Allocate(900);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(arena.num_blocks(), 1u) << "iteration " << iter;
  }
}

TEST(ArenaTest, LargeAllocationFallbackServicesOversizedRequests) {
  Arena arena(/*block_bytes=*/64);
  auto* big = static_cast<unsigned char*>(arena.Allocate(10000));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 10000);  // ASan would flag an undersized block.
  EXPECT_GE(arena.bytes_reserved(), 10000u);
  // A following small allocation still works (current block handling
  // survives the fallback).
  void* small = arena.Allocate(8);
  ASSERT_NE(small, nullptr);
}

TEST(ArenaTest, ZeroByteAllocationsAreValidPointers) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
}

TEST(ArenaTest, BytesAllocatedTracksRequestsNotPadding) {
  Arena arena;
  arena.Allocate(10);
  arena.Allocate(30);
  EXPECT_EQ(arena.bytes_allocated(), 40u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(ArenaVecTest, PushBackGrowsAndPreservesContents) {
  Arena arena(/*block_bytes=*/256);
  ArenaVec<uint32_t> vec(&arena);
  EXPECT_TRUE(vec.empty());
  for (uint32_t i = 0; i < 1000; ++i) vec.push_back(i * 3);
  ASSERT_EQ(vec.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(vec[i], i * 3);
  // Range-for hits the same elements.
  uint32_t i = 0;
  for (uint32_t v : vec) ASSERT_EQ(v, (i++) * 3);
}

TEST(ArenaVecTest, ClearKeepsCapacityWithinOneArenaEpoch) {
  Arena arena;
  ArenaVec<uint64_t> vec(&arena);
  vec.reserve(64);
  const size_t after_reserve = arena.bytes_allocated();
  for (int round = 0; round < 10; ++round) {
    vec.clear();
    for (uint64_t i = 0; i < 64; ++i) vec.push_back(i);
    // Refilling within capacity allocates nothing further.
    EXPECT_EQ(arena.bytes_allocated(), after_reserve) << round;
  }
}

TEST(ArenaVecTest, ManyVecsInterleavedOnOneArena) {
  Arena arena(/*block_bytes=*/128);
  ArenaVec<uint16_t> a(&arena);
  ArenaVec<uint16_t> b(&arena);
  for (uint16_t i = 0; i < 300; ++i) {
    a.push_back(i);
    b.push_back(static_cast<uint16_t>(1000 + i));
  }
  for (uint16_t i = 0; i < 300; ++i) {
    ASSERT_EQ(a[i], i);
    ASSERT_EQ(b[i], 1000 + i);
  }
}

}  // namespace
}  // namespace ksp
