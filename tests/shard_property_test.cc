// Randomized shard-partition property test: for ANY partition of the
// place set — not just the STR tiling — the sharded scatter-gather must
// equal the unsharded top-k exactly. 200 seeded rounds draw random tile
// boundaries (including degenerate single-place and empty tiles) and a
// random query, and additionally pin the no-false-prune property: when k
// covers every matching place, no shard may be pruned, because pruning
// would have to discard a place that belongs to the result.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/parallel.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "rdf/knowledge_base.h"
#include "shard/partition.h"
#include "shard/sharded_database.h"
#include "shard/sharded_executor.h"

namespace ksp {
namespace {

/// A uniformly random partition of [0, num_places) into `num_tiles`
/// tiles: each place independently picks a tile, so small tile counts
/// regularly produce empty and single-place tiles — exactly the
/// degenerate shapes the sharding layer has to survive.
ShardPartition RandomPartition(uint32_t num_places, uint32_t num_tiles,
                               Rng* rng) {
  ShardPartition partition;
  partition.tiles.resize(num_tiles);
  for (PlaceId p = 0; p < num_places; ++p) {
    partition.tiles[rng->NextBounded(num_tiles)].push_back(p);
  }
  return partition;
}

class ShardPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(400));
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = kb->release();
    reference_ = new KspDatabase(kb_);
    reference_->PrepareAll(/*alpha=*/3);
  }

  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
    delete kb_;
    kb_ = nullptr;
  }

  static KnowledgeBase* kb_;
  static KspDatabase* reference_;
};

KnowledgeBase* ShardPropertyTest::kb_ = nullptr;
KspDatabase* ShardPropertyTest::reference_ = nullptr;

TEST_F(ShardPropertyTest, RandomPartitionsMatchUnsharded) {
  QueryExecutor unsharded(reference_);
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    const uint32_t num_tiles = 1 + rng.NextBounded(6);
    auto partition = RandomPartition(kb_->num_places(), num_tiles, &rng);
    auto sharded = ShardedKspDatabase::Build(kb_, KspOptions(), partition,
                                             /*alpha=*/3);
    ASSERT_TRUE(sharded.ok())
        << "seed " << seed << ": " << sharded.status().ToString();
    ShardedExecutor executor(sharded->get());

    QueryGenOptions options;
    options.num_keywords = 2 + rng.NextBounded(3);
    options.seed = seed * 977;
    auto queries =
        GenerateQueries(*kb_, QueryClass::kOriginal, options, 1);
    ASSERT_EQ(queries.size(), 1u);
    KspQuery query = queries[0];
    query.k = 1 + rng.NextBounded(10);
    const KspAlgorithm algorithm =
        rng.NextBounded(2) == 0 ? KspAlgorithm::kBsp : KspAlgorithm::kSpp;

    auto want = ExecuteWith(&unsharded, algorithm, query, nullptr);
    ASSERT_TRUE(want.ok()) << "seed " << seed;
    QueryStats stats;
    auto got = executor.Execute(algorithm, query, &stats);
    ASSERT_TRUE(got.ok())
        << "seed " << seed << ": " << got.status().ToString();

    ASSERT_EQ(want->entries.size(), got->entries.size())
        << "seed " << seed;
    for (size_t i = 0; i < want->entries.size(); ++i) {
      ASSERT_EQ(want->entries[i].place, got->entries[i].place)
          << "seed " << seed << " rank " << i;
      ASSERT_EQ(want->entries[i].looseness, got->entries[i].looseness)
          << "seed " << seed << " rank " << i;
      ASSERT_EQ(want->entries[i].spatial_distance,
                got->entries[i].spatial_distance)
          << "seed " << seed << " rank " << i;
      ASSERT_EQ(want->entries[i].score, got->entries[i].score)
          << "seed " << seed << " rank " << i;
    }
  }
}

// When k is at least the number of matching places, the global heap
// never fills, θ stays +inf, and no shard-level prune may ever fire —
// every prune at an infinite threshold would discard result entries.
TEST_F(ShardPropertyTest, NoPruningWhenKCoversAllMatches) {
  QueryExecutor unsharded(reference_);
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 31);
    const uint32_t num_tiles = 2 + rng.NextBounded(5);
    auto partition = RandomPartition(kb_->num_places(), num_tiles, &rng);
    auto sharded = ShardedKspDatabase::Build(kb_, KspOptions(), partition,
                                             /*alpha=*/3);
    ASSERT_TRUE(sharded.ok()) << "seed " << seed;
    ShardedExecutor executor(sharded->get());

    QueryGenOptions options;
    options.num_keywords = 2;
    options.seed = seed * 1301;
    auto queries =
        GenerateQueries(*kb_, QueryClass::kOriginal, options, 1);
    ASSERT_EQ(queries.size(), 1u);
    KspQuery query = queries[0];
    // k ≥ total matching places: ask for every place in the KB.
    query.k = kb_->num_places();

    auto want = ExecuteWith(&unsharded, KspAlgorithm::kBsp, query, nullptr);
    ASSERT_TRUE(want.ok()) << "seed " << seed;
    QueryStats stats;
    auto got = executor.Execute(KspAlgorithm::kBsp, query, &stats);
    ASSERT_TRUE(got.ok()) << "seed " << seed;

    EXPECT_EQ(stats.shards_pruned, 0u) << "seed " << seed;
    ASSERT_EQ(want->entries.size(), got->entries.size())
        << "seed " << seed;
    for (size_t i = 0; i < want->entries.size(); ++i) {
      ASSERT_EQ(want->entries[i].place, got->entries[i].place)
          << "seed " << seed << " rank " << i;
      ASSERT_EQ(want->entries[i].score, got->entries[i].score)
          << "seed " << seed << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace ksp
