#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "core/executor.h"

namespace ksp {
namespace {

KspResultEntry Entry(PlaceId place, double score) {
  KspResultEntry e;
  e.place = place;
  e.score = score;
  return e;
}

TEST(TopKHeapTest, KeepsBestK) {
  TopKHeap heap(3);
  for (double s : {5.0, 1.0, 4.0, 2.0, 3.0}) {
    heap.Add(Entry(static_cast<PlaceId>(s), s));
  }
  KspResult result = std::move(heap).Finish();
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 1.0);
  EXPECT_DOUBLE_EQ(result.entries[1].score, 2.0);
  EXPECT_DOUBLE_EQ(result.entries[2].score, 3.0);
}

TEST(TopKHeapTest, ThresholdEvolution) {
  TopKHeap heap(2);
  EXPECT_EQ(heap.Threshold(), std::numeric_limits<double>::infinity());
  heap.Add(Entry(0, 10.0));
  EXPECT_EQ(heap.Threshold(), std::numeric_limits<double>::infinity());
  heap.Add(Entry(1, 5.0));
  EXPECT_DOUBLE_EQ(heap.Threshold(), 10.0);
  heap.Add(Entry(2, 1.0));
  EXPECT_DOUBLE_EQ(heap.Threshold(), 5.0);
  heap.Add(Entry(3, 100.0));  // Worse: ignored.
  EXPECT_DOUBLE_EQ(heap.Threshold(), 5.0);
}

TEST(TopKHeapTest, ZeroKIsAlwaysEmpty) {
  TopKHeap heap(0);
  EXPECT_EQ(heap.Threshold(), -std::numeric_limits<double>::infinity());
  heap.Add(Entry(0, 1.0));
  EXPECT_TRUE(std::move(heap).Finish().entries.empty());
}

TEST(TopKHeapTest, TieBreakByPlaceId) {
  TopKHeap heap(1);
  heap.Add(Entry(7, 2.0));
  heap.Add(Entry(3, 2.0));  // Same score, smaller id wins.
  KspResult result = std::move(heap).Finish();
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].place, 3u);
}

TEST(TopKHeapTest, FewerEntriesThanK) {
  TopKHeap heap(10);
  heap.Add(Entry(0, 3.0));
  heap.Add(Entry(1, 1.0));
  KspResult result = std::move(heap).Finish();
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 1.0);
}

TEST(TopKHeapTest, WouldAddMirrorsAddExactly) {
  TopKHeap heap(2);
  EXPECT_TRUE(heap.WouldAdd(100.0, 0));  // Not full: everything enters.
  heap.Add(Entry(5, 3.0));
  heap.Add(Entry(6, 5.0));
  // Full: strictly better score enters, worse does not.
  EXPECT_TRUE(heap.WouldAdd(4.0, 9));
  EXPECT_FALSE(heap.WouldAdd(6.0, 9));
  // Exact tie on the k-th score: Add tie-breaks on place id.
  EXPECT_TRUE(heap.WouldAdd(5.0, 2));   // 2 < 6: would replace.
  EXPECT_FALSE(heap.WouldAdd(5.0, 6));  // Equal (score, place): no-op.
  EXPECT_FALSE(heap.WouldAdd(5.0, 7));  // 7 > 6: worse tie.

  TopKHeap empty(0);
  EXPECT_FALSE(empty.WouldAdd(0.0, 0));  // k = 0 admits nothing.
}

TEST(TopKHeapTest, RandomizedWouldAddAgreesWithAdd) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    TopKHeap heap(1 + static_cast<uint32_t>(rng.NextBounded(5)));
    for (size_t i = 0; i < 60; ++i) {
      const double score = rng.NextDouble(0, 4);
      const PlaceId place = static_cast<PlaceId>(rng.NextBounded(30));
      const bool predicted = heap.WouldAdd(score, place);
      const double theta_before = heap.Threshold();
      heap.Add(Entry(place, score));
      // An admitted entry either fills the heap or tightens/keeps θ with
      // the new entry inside; a rejected one leaves θ untouched.
      if (!predicted) {
        EXPECT_EQ(heap.Threshold(), theta_before);
      } else {
        EXPECT_LE(heap.Threshold(), theta_before);
      }
    }
  }
}

TEST(TopKHeapTest, RandomizedMatchesSort) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.NextBounded(10));
    TopKHeap heap(k);
    std::vector<std::pair<double, PlaceId>> all;
    size_t n = rng.NextBounded(100);
    for (size_t i = 0; i < n; ++i) {
      double score = rng.NextDouble(0, 10);
      all.emplace_back(score, static_cast<PlaceId>(i));
      heap.Add(Entry(static_cast<PlaceId>(i), score));
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k) all.resize(k);
    KspResult result = std::move(heap).Finish();
    ASSERT_EQ(result.entries.size(), all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      EXPECT_DOUBLE_EQ(result.entries[i].score, all[i].first);
      EXPECT_EQ(result.entries[i].place, all[i].second);
    }
  }
}

TEST(SemanticPlaceTreeTest, TreeVerticesDeduplicated) {
  SemanticPlaceTree tree;
  tree.root = 10;
  SemanticPlaceTree::KeywordMatch m1;
  m1.path = {10, 4, 7};
  SemanticPlaceTree::KeywordMatch m2;
  m2.path = {10, 4, 2};
  tree.matches = {m1, m2};
  auto vertices = tree.TreeVertices();
  EXPECT_EQ(vertices, (std::vector<VertexId>{2, 4, 7, 10}));
}

TEST(SemanticPlaceTreeTest, DefaultIsUnqualified) {
  SemanticPlaceTree tree;
  EXPECT_FALSE(tree.IsQualified());
  tree.looseness = 3.0;
  EXPECT_TRUE(tree.IsQualified());
}

}  // namespace
}  // namespace ksp
