#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "core/executor.h"

namespace ksp {
namespace {

KspResultEntry Entry(PlaceId place, double score) {
  KspResultEntry e;
  e.place = place;
  e.score = score;
  return e;
}

TEST(TopKHeapTest, KeepsBestK) {
  TopKHeap heap(3);
  for (double s : {5.0, 1.0, 4.0, 2.0, 3.0}) {
    heap.Add(Entry(static_cast<PlaceId>(s), s));
  }
  KspResult result = std::move(heap).Finish();
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 1.0);
  EXPECT_DOUBLE_EQ(result.entries[1].score, 2.0);
  EXPECT_DOUBLE_EQ(result.entries[2].score, 3.0);
}

TEST(TopKHeapTest, ThresholdEvolution) {
  TopKHeap heap(2);
  EXPECT_EQ(heap.Threshold(), std::numeric_limits<double>::infinity());
  heap.Add(Entry(0, 10.0));
  EXPECT_EQ(heap.Threshold(), std::numeric_limits<double>::infinity());
  heap.Add(Entry(1, 5.0));
  EXPECT_DOUBLE_EQ(heap.Threshold(), 10.0);
  heap.Add(Entry(2, 1.0));
  EXPECT_DOUBLE_EQ(heap.Threshold(), 5.0);
  heap.Add(Entry(3, 100.0));  // Worse: ignored.
  EXPECT_DOUBLE_EQ(heap.Threshold(), 5.0);
}

TEST(TopKHeapTest, ZeroKIsAlwaysEmpty) {
  TopKHeap heap(0);
  EXPECT_EQ(heap.Threshold(), -std::numeric_limits<double>::infinity());
  heap.Add(Entry(0, 1.0));
  EXPECT_TRUE(std::move(heap).Finish().entries.empty());
}

TEST(TopKHeapTest, TieBreakByPlaceId) {
  TopKHeap heap(1);
  heap.Add(Entry(7, 2.0));
  heap.Add(Entry(3, 2.0));  // Same score, smaller id wins.
  KspResult result = std::move(heap).Finish();
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].place, 3u);
}

TEST(TopKHeapTest, FewerEntriesThanK) {
  TopKHeap heap(10);
  heap.Add(Entry(0, 3.0));
  heap.Add(Entry(1, 1.0));
  KspResult result = std::move(heap).Finish();
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result.entries[0].score, 1.0);
}

TEST(TopKHeapTest, RandomizedMatchesSort) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.NextBounded(10));
    TopKHeap heap(k);
    std::vector<std::pair<double, PlaceId>> all;
    size_t n = rng.NextBounded(100);
    for (size_t i = 0; i < n; ++i) {
      double score = rng.NextDouble(0, 10);
      all.emplace_back(score, static_cast<PlaceId>(i));
      heap.Add(Entry(static_cast<PlaceId>(i), score));
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k) all.resize(k);
    KspResult result = std::move(heap).Finish();
    ASSERT_EQ(result.entries.size(), all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      EXPECT_DOUBLE_EQ(result.entries[i].score, all[i].first);
      EXPECT_EQ(result.entries[i].place, all[i].second);
    }
  }
}

TEST(SemanticPlaceTreeTest, TreeVerticesDeduplicated) {
  SemanticPlaceTree tree;
  tree.root = 10;
  SemanticPlaceTree::KeywordMatch m1;
  m1.path = {10, 4, 7};
  SemanticPlaceTree::KeywordMatch m2;
  m2.path = {10, 4, 2};
  tree.matches = {m1, m2};
  auto vertices = tree.TreeVertices();
  EXPECT_EQ(vertices, (std::vector<VertexId>{2, 4, 7, 10}));
}

TEST(SemanticPlaceTreeTest, DefaultIsUnqualified) {
  SemanticPlaceTree tree;
  EXPECT_FALSE(tree.IsQualified());
  tree.looseness = 3.0;
  EXPECT_TRUE(tree.IsQualified());
}

}  // namespace
}  // namespace ksp
