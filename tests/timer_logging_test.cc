#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace ksp {
namespace {

TEST(TimerTest, StartsStopped) {
  Timer t;
  EXPECT_DOUBLE_EQ(t.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, AccumulatesAcrossIntervals) {
  Timer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.Stop();
  double first = t.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.Stop();
  EXPECT_GT(t.ElapsedSeconds(), first);
}

TEST(TimerTest, ElapsedWhileRunning) {
  Timer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(t.ElapsedMillis(), 0.0);
  EXPECT_GE(t.ElapsedMicros(), 1000);
}

TEST(TimerTest, ResetClears) {
  Timer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  t.Reset();
  EXPECT_DOUBLE_EQ(t.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, DoubleStartIsIdempotent) {
  Timer t;
  t.Start();
  t.Start();
  t.Stop();
  t.Stop();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(ScopedTimerTest, AddsToAccumulator) {
  double acc = 0.0;
  {
    ScopedTimer st(&acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  EXPECT_GT(acc, 0.0);
  double prev = acc;
  {
    ScopedTimer st(&acc);
  }
  EXPECT_GE(acc, prev);
}

TEST(LoggingTest, LevelFiltering) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages must not crash and are dropped silently.
  KSP_LOG(kDebug) << "dropped " << 42;
  KSP_LOG(kInfo) << "dropped too";
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  KSP_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ KSP_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ KSP_LOG(kFatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace ksp
