// Pins QueryStats::Accumulate's field-by-field merge semantics, both
// directly and through the QueryExecutorPool::Run merge path. The
// static_assert below forces anyone adding a QueryStats field to revisit
// Accumulate (and this test) — a silently dropped field corrupts every
// batch report.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/database.h"
#include "core/parallel.h"
#include "core/stats.h"
#include "datagen/fixtures.h"

namespace ksp {
namespace {

// 2 doubles + 19 uint64 counters + bool (padded) on LP64. If this fires,
// a field was added or removed: update Accumulate, the field checks
// below, and RecordQueryMetrics in executor.cc, then re-pin the size.
static_assert(sizeof(QueryStats) == 176,
              "QueryStats layout changed — audit Accumulate() and every "
              "consumer before re-pinning this size");

QueryStats MakeDistinct(int base) {
  QueryStats s;
  s.total_ms = base + 0.5;
  s.semantic_ms = base + 0.25;
  s.tqsp_computations = base + 1;
  s.rtree_nodes_accessed = base + 2;
  s.vertices_visited = base + 3;
  s.reachability_queries = base + 4;
  s.pruned_unqualified = base + 5;
  s.pruned_dynamic_bound = base + 6;
  s.pruned_alpha_place = base + 7;
  s.pruned_alpha_node = base + 8;
  s.speculative_wasted_tqsp = base + 9;
  s.dg_cache_hits = base + 10;
  s.dg_cache_misses = base + 11;
  s.result_cache_hits = base + 12;
  s.result_cache_misses = base + 13;
  s.cache_evictions = base + 14;
  s.bufferpool_hits = base + 15;
  s.bufferpool_misses = base + 16;
  s.bufferpool_evictions = base + 17;
  s.shards_visited = base + 18;
  s.shards_pruned = base + 19;
  s.completed = true;
  return s;
}

TEST(QueryStatsTest, AccumulateMergesEveryField) {
  QueryStats a = MakeDistinct(100);
  const QueryStats b = MakeDistinct(1000);
  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.total_ms, 100.5 + 1000.5);
  EXPECT_DOUBLE_EQ(a.semantic_ms, 100.25 + 1000.25);
  EXPECT_EQ(a.tqsp_computations, 101u + 1001u);
  EXPECT_EQ(a.rtree_nodes_accessed, 102u + 1002u);
  EXPECT_EQ(a.vertices_visited, 103u + 1003u);
  EXPECT_EQ(a.reachability_queries, 104u + 1004u);
  EXPECT_EQ(a.pruned_unqualified, 105u + 1005u);
  EXPECT_EQ(a.pruned_dynamic_bound, 106u + 1006u);
  EXPECT_EQ(a.pruned_alpha_place, 107u + 1007u);
  EXPECT_EQ(a.pruned_alpha_node, 108u + 1008u);
  EXPECT_EQ(a.speculative_wasted_tqsp, 109u + 1009u);
  EXPECT_EQ(a.dg_cache_hits, 110u + 1010u);
  EXPECT_EQ(a.dg_cache_misses, 111u + 1011u);
  EXPECT_EQ(a.result_cache_hits, 112u + 1012u);
  EXPECT_EQ(a.result_cache_misses, 113u + 1013u);
  EXPECT_EQ(a.cache_evictions, 114u + 1014u);
  EXPECT_EQ(a.bufferpool_hits, 115u + 1015u);
  EXPECT_EQ(a.bufferpool_misses, 116u + 1016u);
  EXPECT_EQ(a.bufferpool_evictions, 117u + 1017u);
  EXPECT_EQ(a.shards_visited, 118u + 1018u);
  EXPECT_EQ(a.shards_pruned, 119u + 1019u);
  EXPECT_TRUE(a.completed);
}

TEST(QueryStatsTest, AccumulatePropagatesIncomplete) {
  QueryStats a;  // completed defaults true
  QueryStats timed_out;
  timed_out.completed = false;
  a.Accumulate(timed_out);
  EXPECT_FALSE(a.completed);
  // Incomplete is sticky: a later completed query does not wash it out.
  a.Accumulate(QueryStats());
  EXPECT_FALSE(a.completed);
}

TEST(QueryStatsTest, AccumulateFromDefaultIsIdentity) {
  QueryStats a = MakeDistinct(7);
  const QueryStats before = a;
  a.Accumulate(QueryStats());
  EXPECT_DOUBLE_EQ(a.total_ms, before.total_ms);
  EXPECT_EQ(a.tqsp_computations, before.tqsp_computations);
  EXPECT_EQ(a.pruned_alpha_node, before.pruned_alpha_node);
  EXPECT_EQ(a.completed, before.completed);
}

class PoolMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = BuildFigure1KnowledgeBase();
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = std::move(kb).value();
    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(/*alpha=*/3);
    for (int i = 0; i < 12; ++i) {
      queries_.push_back(db_->MakeQuery(i % 2 == 0 ? kQ1 : kQ2,
                                        Figure1QueryKeywords(), 2));
    }
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::vector<KspQuery> queries_;
};

TEST_F(PoolMergeTest, PoolTotalsMatchPerQuerySums) {
  // Reference: the deterministic counters summed query-by-query.
  QueryStats expected;
  {
    QueryExecutor executor(db_.get());
    for (const KspQuery& query : queries_) {
      QueryStats stats;
      ASSERT_TRUE(executor.ExecuteSpp(query, &stats).ok());
      expected.Accumulate(stats);
    }
  }

  QueryExecutorPool pool(db_.get(), /*num_threads=*/3);
  BatchRunStats batch;
  auto results = pool.Run(queries_, KspAlgorithm::kSpp, &batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), queries_.size());

  // Work-stealing order varies; the deterministic counter sums must not.
  EXPECT_EQ(batch.totals.tqsp_computations, expected.tqsp_computations);
  EXPECT_EQ(batch.totals.rtree_nodes_accessed,
            expected.rtree_nodes_accessed);
  EXPECT_EQ(batch.totals.vertices_visited, expected.vertices_visited);
  EXPECT_EQ(batch.totals.reachability_queries,
            expected.reachability_queries);
  EXPECT_EQ(batch.totals.pruned_unqualified, expected.pruned_unqualified);
  EXPECT_EQ(batch.totals.pruned_dynamic_bound,
            expected.pruned_dynamic_bound);
  EXPECT_TRUE(batch.totals.completed);
  EXPECT_EQ(batch.worker_wall_ms.size(), 3u);
}

TEST_F(PoolMergeTest, PoolMergesWorkerMetricsRegistries) {
  QueryExecutorPool pool(db_.get(), /*num_threads=*/4);
  BatchRunStats batch;
  ASSERT_TRUE(pool.Run(queries_, KspAlgorithm::kSpp, &batch).ok());
  EXPECT_EQ(batch.metrics.counters["ksp_queries_total"], queries_.size());
  EXPECT_EQ(batch.metrics.counters["ksp_tqsp_computations_total"],
            batch.totals.tqsp_computations);
  EXPECT_EQ(batch.metrics.counters["ksp_bfs_vertices_visited_total"],
            batch.totals.vertices_visited);
  EXPECT_EQ(batch.metrics.histograms["ksp_query_latency_ms"].count,
            queries_.size());

  // Registries are cumulative over the pool lifetime: a second batch
  // doubles the query count.
  BatchRunStats batch2;
  ASSERT_TRUE(pool.Run(queries_, KspAlgorithm::kSpp, &batch2).ok());
  EXPECT_EQ(batch2.metrics.counters["ksp_queries_total"],
            2 * queries_.size());
}

TEST_F(PoolMergeTest, SingleThreadedBatchFillsMetricsToo) {
  BatchRunOptions options;
  options.algorithm = KspAlgorithm::kSp;
  options.num_threads = 1;
  BatchRunStats batch;
  auto results = RunQueryBatch(*db_, queries_, options, &batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(batch.metrics.counters["ksp_queries_total"], queries_.size());
  EXPECT_EQ(batch.worker_wall_ms.size(), 1u);
  EXPECT_EQ(batch.metrics.counters["ksp_tqsp_computations_total"],
            batch.totals.tqsp_computations);
}

}  // namespace
}  // namespace ksp
