#include "reach/tarjan.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace ksp {
namespace {

Csr MakeGraph(uint32_t n,
              std::vector<std::pair<uint32_t, uint32_t>> edges) {
  return Csr::FromEdges(n, std::move(edges), /*dedup=*/true);
}

TEST(CsrTest, FromEdgesAndReverse) {
  Csr g = MakeGraph(3, {{0, 1}, {0, 2}, {2, 1}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_EQ(g.Neighbors(0).size(), 2u);
  Csr r = g.Reversed();
  ASSERT_EQ(r.Neighbors(1).size(), 2u);
  EXPECT_TRUE(r.Neighbors(0).empty());
}

TEST(CsrTest, DedupRemovesDuplicates) {
  Csr g = Csr::FromEdges(2, {{0, 1}, {0, 1}, {0, 1}}, /*dedup=*/true);
  EXPECT_EQ(g.num_edges(), 1u);
  Csr g2 = Csr::FromEdges(2, {{0, 1}, {0, 1}}, /*dedup=*/false);
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(TarjanTest, DagHasSingletonComponents) {
  Csr g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 3}});
  auto scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 4u);
  // Reverse-topological numbering: an edge u -> v implies comp(u) > comp(v).
  EXPECT_GT(scc.component_of[0], scc.component_of[1]);
  EXPECT_GT(scc.component_of[1], scc.component_of[2]);
  EXPECT_GT(scc.component_of[0], scc.component_of[3]);
}

TEST(TarjanTest, CycleCollapses) {
  Csr g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  auto scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[1], scc.component_of[2]);
  EXPECT_NE(scc.component_of[0], scc.component_of[3]);
}

TEST(TarjanTest, SelfLoopIsItsOwnComponent) {
  Csr g = MakeGraph(2, {{0, 0}, {0, 1}});
  auto scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2u);
}

TEST(TarjanTest, DeepChainNoStackOverflow) {
  // 200k-vertex path: recursive Tarjan would overflow the call stack.
  const uint32_t n = 200000;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(n - 1);
  for (uint32_t v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  auto scc = ComputeScc(MakeGraph(n, std::move(edges)));
  EXPECT_EQ(scc.num_components, n);
}

TEST(TarjanTest, BigCycleSingleComponent) {
  const uint32_t n = 100000;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  auto scc = ComputeScc(MakeGraph(n, std::move(edges)));
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(CondenseDagTest, ProducesAcyclicDedupedGraph) {
  // Two 2-cycles connected by parallel edges.
  Csr g = MakeGraph(4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {0, 2}, {1, 3}});
  auto scc = ComputeScc(g);
  ASSERT_EQ(scc.num_components, 2u);
  Csr dag = CondenseDag(g, scc);
  EXPECT_EQ(dag.num_vertices(), 2u);
  EXPECT_EQ(dag.num_edges(), 1u);  // Parallel component edges deduped.
}

TEST(TarjanTest, RandomGraphComponentsAreConsistent) {
  // Property: vertices in one component reach each other (checked by BFS)
  // and the component count matches a reference union over mutual
  // reachability on a small random graph.
  Rng rng(99);
  const uint32_t n = 60;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (int i = 0; i < 150; ++i) {
    edges.emplace_back(static_cast<uint32_t>(rng.NextBounded(n)),
                       static_cast<uint32_t>(rng.NextBounded(n)));
  }
  Csr g = MakeGraph(n, edges);
  auto scc = ComputeScc(g);

  // BFS reachability oracle.
  auto reaches = [&](uint32_t from, uint32_t to) {
    std::vector<bool> seen(n, false);
    std::vector<uint32_t> queue{from};
    seen[from] = true;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      if (queue[qi] == to) return true;
      for (uint32_t w : g.Neighbors(queue[qi])) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    return false;
  };

  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      bool same = scc.component_of[u] == scc.component_of[v];
      bool mutual = reaches(u, v) && reaches(v, u);
      EXPECT_EQ(same, mutual) << u << " " << v;
    }
  }
}

}  // namespace
}  // namespace ksp
