// Range and kNN convenience queries on the R-tree, validated against
// linear-scan oracles over random point sets.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "spatial/rtree.h"

namespace ksp {
namespace {

std::vector<std::pair<Point, uint64_t>> RandomPoints(size_t n,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Point, uint64_t>> points;
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(
        Point{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)}, i);
  }
  return points;
}

TEST(RTreeRangeQueryTest, MatchesLinearScan) {
  auto points = RandomPoints(800, 11);
  RTree tree = RTree::BulkLoadStr(points);
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    Point a{rng.NextDouble(-60, 60), rng.NextDouble(-60, 60)};
    Point b{rng.NextDouble(-60, 60), rng.NextDouble(-60, 60)};
    Rect range{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
               std::max(a.y, b.y)};
    std::vector<uint64_t> got;
    uint64_t visited = tree.RangeQuery(range, &got);
    EXPECT_GE(visited, 1u);
    std::vector<uint64_t> expected;
    for (const auto& [p, id] : points) {
      if (range.Contains(p)) expected.push_back(id);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(RTreeRangeQueryTest, EmptyRangeAndEmptyTree) {
  RTree empty_tree;
  std::vector<uint64_t> out;
  EXPECT_EQ(empty_tree.RangeQuery(Rect{0, 0, 1, 1}, &out), 0u);
  EXPECT_TRUE(out.empty());

  auto points = RandomPoints(50, 13);
  RTree tree = RTree::BulkLoadStr(points);
  tree.RangeQuery(Rect{1000, 1000, 1001, 1001}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeRangeQueryTest, BoundaryInclusive) {
  RTree tree;
  tree.Insert(Point{1, 1}, 7);
  std::vector<uint64_t> out;
  tree.RangeQuery(Rect{1, 1, 2, 2}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
}

TEST(RTreeKnnQueryTest, MatchesSortedOracle) {
  auto points = RandomPoints(400, 17);
  RTree::Options options;
  options.max_entries = 8;
  options.min_entries = 3;
  RTree tree(options);
  for (const auto& [p, id] : points) tree.Insert(p, id);

  Rng rng(18);
  for (int trial = 0; trial < 10; ++trial) {
    Point q{rng.NextDouble(-60, 60), rng.NextDouble(-60, 60)};
    for (size_t k : {1u, 5u, 50u, 1000u}) {
      auto got = tree.KnnQuery(q, k);
      std::vector<std::pair<double, uint64_t>> expected;
      for (const auto& [p, id] : points) {
        expected.emplace_back(Distance(q, p), id);
      }
      std::sort(expected.begin(), expected.end());
      expected.resize(std::min(k, expected.size()));
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].first, expected[i].first, 1e-9);
      }
    }
  }
}

TEST(RTreeKnnQueryTest, KZero) {
  auto points = RandomPoints(10, 19);
  RTree tree = RTree::BulkLoadStr(points);
  EXPECT_TRUE(tree.KnnQuery(Point{0, 0}, 0).empty());
}

}  // namespace
}  // namespace ksp
