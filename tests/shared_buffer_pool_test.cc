// SharedBufferPool unit tests: LRU eviction order under a byte budget,
// pin refcounts blocking eviction, oversized-page admission, cumulative
// counters, spanning-range reads, and per-file drop semantics. The pool
// is the single byte-budget authority of the disk backend (DESIGN.md
// §10), so its accounting must be exact.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/io_stats.h"
#include "storage/shared_buffer_pool.h"

namespace ksp {
namespace {

class SharedBufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            ("ksp_pool_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes `pages` pages of `page_size` bytes; page i is filled with the
  /// byte 'A' + i so reads are content-checkable.
  std::unique_ptr<RandomAccessFile> MakeFile(const std::string& name,
                                             size_t pages,
                                             uint32_t page_size,
                                             size_t tail_bytes = 0) {
    const std::string path = dir_ + "/" + name;
    {
      std::ofstream out(path, std::ios::binary);
      for (size_t i = 0; i < pages; ++i) {
        out << std::string(page_size, static_cast<char>('A' + (i % 26)));
      }
      if (tail_bytes > 0) out << std::string(tail_bytes, 'z');
    }
    auto file = DefaultFileSystem()->NewRandomAccessFile(path);
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    return std::move(*file);
  }

  std::string dir_;
};

TEST_F(SharedBufferPoolTest, FetchReadsCorrectPageContents) {
  SharedBufferPool pool(/*budget_bytes=*/1 << 20, /*page_size=*/256);
  auto file = MakeFile("f.bin", 4, 256, /*tail_bytes=*/10);
  const uint32_t id = pool.RegisterFile(file.get());
  for (uint64_t page = 0; page < 4; ++page) {
    SharedBufferPool::PageRef ref;
    ASSERT_TRUE(pool.Fetch(id, page, &ref, nullptr).ok());
    ASSERT_EQ(ref.data().size(), 256u);
    EXPECT_EQ(ref.data()[0], static_cast<char>('A' + page));
  }
  // The short tail page is readable with its true length.
  SharedBufferPool::PageRef tail;
  ASSERT_TRUE(pool.Fetch(id, 4, &tail, nullptr).ok());
  EXPECT_EQ(tail.data(), std::string(10, 'z'));
  // Entirely past EOF: corruption (page ids come from validated tables).
  SharedBufferPool::PageRef beyond;
  EXPECT_TRUE(pool.Fetch(id, 5, &beyond, nullptr).IsCorruption());
}

TEST_F(SharedBufferPoolTest, CountersAccumulateAndStatsSnapshot) {
  SharedBufferPool pool(/*budget_bytes=*/1 << 20, /*page_size=*/128);
  auto file = MakeFile("f.bin", 8, 128);
  const uint32_t id = pool.RegisterFile(file.get());
  PageIoCounters io;
  SharedBufferPool::PageRef ref;
  ASSERT_TRUE(pool.Fetch(id, 0, &ref, &io).ok());
  ref.Release();
  ASSERT_TRUE(pool.Fetch(id, 0, &ref, &io).ok());
  ref.Release();
  EXPECT_EQ(io.misses, 1u);
  EXPECT_EQ(io.hits, 1u);
  EXPECT_GE(io.micros, 0);
  EXPECT_EQ(io.Fetches(), 2u);

  const SharedBufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.cached_pages, 1u);
  EXPECT_EQ(stats.cached_bytes, 128u);
  EXPECT_EQ(stats.pinned_pages, 0u);
  EXPECT_EQ(stats.budget_bytes, 1u << 20);
}

TEST_F(SharedBufferPoolTest, EvictsLeastRecentlyUsedFirst) {
  // Budget of exactly 2 pages.
  SharedBufferPool pool(/*budget_bytes=*/256, /*page_size=*/128);
  auto file = MakeFile("f.bin", 4, 128);
  const uint32_t id = pool.RegisterFile(file.get());
  PageIoCounters io;
  auto touch = [&](uint64_t page) {
    SharedBufferPool::PageRef ref;
    ASSERT_TRUE(pool.Fetch(id, page, &ref, &io).ok());
  };
  touch(0);
  touch(1);
  touch(0);  // Page 0 is now MRU, page 1 LRU.
  touch(2);  // Evicts page 1.
  EXPECT_EQ(io.evictions, 1u);
  const uint64_t misses_before = io.misses;
  touch(0);  // Still cached: hit, no miss.
  EXPECT_EQ(io.misses, misses_before);
  touch(1);  // Was evicted: miss again.
  EXPECT_EQ(io.misses, misses_before + 1);
}

TEST_F(SharedBufferPoolTest, PinnedPagesAreNeverEvicted) {
  SharedBufferPool pool(/*budget_bytes=*/256, /*page_size=*/128);
  auto file = MakeFile("f.bin", 6, 128);
  const uint32_t id = pool.RegisterFile(file.get());
  SharedBufferPool::PageRef pinned;
  ASSERT_TRUE(pool.Fetch(id, 0, &pinned, nullptr).ok());
  // Stream the rest of the file through the one unpinned frame: page 0
  // must survive every eviction pass while its pin is held.
  for (uint64_t page = 1; page < 6; ++page) {
    SharedBufferPool::PageRef ref;
    ASSERT_TRUE(pool.Fetch(id, page, &ref, nullptr).ok());
  }
  EXPECT_EQ(pinned.data()[0], 'A');
  EXPECT_GE(pool.GetStats().pinned_pages, 1u);
  PageIoCounters io;
  SharedBufferPool::PageRef again;
  ASSERT_TRUE(pool.Fetch(id, 0, &again, &io).ok());
  EXPECT_EQ(io.hits, 1u);  // Survived as a cached frame.
  EXPECT_EQ(io.misses, 0u);
}

TEST_F(SharedBufferPoolTest, OversizedPageIsAdmittedThenEvictedFirst) {
  // Budget smaller than one page: the read must still succeed (the pool
  // transiently exceeds its budget) and the frame must not stick.
  SharedBufferPool pool(/*budget_bytes=*/64, /*page_size=*/256);
  auto file = MakeFile("f.bin", 3, 256);
  const uint32_t id = pool.RegisterFile(file.get());
  PageIoCounters io;
  {
    SharedBufferPool::PageRef ref;
    ASSERT_TRUE(pool.Fetch(id, 0, &ref, &io).ok());
    ASSERT_EQ(ref.data().size(), 256u);
  }
  {
    SharedBufferPool::PageRef ref;
    ASSERT_TRUE(pool.Fetch(id, 1, &ref, &io).ok());
  }
  // The second over-budget fetch had to push the first frame out.
  EXPECT_GE(io.evictions, 1u);
  EXPECT_LE(pool.GetStats().cached_pages, 1u);
}

TEST_F(SharedBufferPoolTest, ReadRangeAssemblesSpanningPages) {
  SharedBufferPool pool(/*budget_bytes=*/1 << 20, /*page_size=*/128);
  auto file = MakeFile("f.bin", 4, 128);
  const uint32_t id = pool.RegisterFile(file.get());
  PageIoCounters io;
  std::string out;
  // 100 bytes starting 100 bytes in: spans pages 0 and 1.
  ASSERT_TRUE(pool.ReadRange(id, 100, 100, &out, &io).ok());
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out.substr(0, 28), std::string(28, 'A'));
  EXPECT_EQ(out.substr(28), std::string(72, 'B'));
  EXPECT_EQ(io.misses, 2u);
  // Past-EOF range is corruption.
  EXPECT_TRUE(pool.ReadRange(id, 4 * 128 - 10, 20, &out, &io)
                  .IsCorruption());
}

TEST_F(SharedBufferPoolTest, DropFileForgetsPagesAndClearResets) {
  SharedBufferPool pool(/*budget_bytes=*/1 << 20, /*page_size=*/128);
  auto a = MakeFile("a.bin", 2, 128);
  auto b = MakeFile("b.bin", 2, 128);
  const uint32_t ida = pool.RegisterFile(a.get());
  const uint32_t idb = pool.RegisterFile(b.get());
  ASSERT_NE(ida, idb);
  PageIoCounters io;
  SharedBufferPool::PageRef ref;
  ASSERT_TRUE(pool.Fetch(ida, 0, &ref, &io).ok());
  ref.Release();
  ASSERT_TRUE(pool.Fetch(idb, 0, &ref, &io).ok());
  ref.Release();
  EXPECT_EQ(pool.GetStats().cached_pages, 2u);
  pool.DropFile(ida);
  EXPECT_EQ(pool.GetStats().cached_pages, 1u);
  // The other file's page is untouched.
  ASSERT_TRUE(pool.Fetch(idb, 0, &ref, &io).ok());
  ref.Release();
  EXPECT_EQ(io.hits, 1u);
  pool.Clear();
  EXPECT_EQ(pool.GetStats().cached_pages, 0u);
  EXPECT_EQ(pool.GetStats().cached_bytes, 0u);
}

}  // namespace
}  // namespace ksp
