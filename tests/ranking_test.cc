#include "core/ranking.h"

#include <gtest/gtest.h>

#include <limits>

namespace ksp {
namespace {

TEST(RankingTest, ProductScore) {
  auto f = RankingFunction::Product();
  EXPECT_TRUE(f.is_product());
  EXPECT_DOUBLE_EQ(f.Score(6.0, 0.22), 1.32);
  EXPECT_DOUBLE_EQ(f.Score(4.0, 1.28), 5.12);
}

TEST(RankingTest, WeightedSumScore) {
  auto f = RankingFunction::WeightedSum(0.5);
  EXPECT_FALSE(f.is_product());
  EXPECT_DOUBLE_EQ(f.Score(6.0, 2.0), 4.0);
}

TEST(RankingTest, ProductMinScoreGivenSpatial) {
  auto f = RankingFunction::Product();
  // L >= 1 so f >= S.
  EXPECT_DOUBLE_EQ(f.MinScoreGivenSpatialDistance(3.5), 3.5);
  for (double l : {1.0, 2.0, 10.0}) {
    for (double s : {0.0, 0.5, 9.0}) {
      EXPECT_LE(f.MinScoreGivenSpatialDistance(s), f.Score(l, s));
    }
  }
}

TEST(RankingTest, WeightedSumMinScoreGivenSpatial) {
  auto f = RankingFunction::WeightedSum(0.25);
  for (double l : {1.0, 2.0, 10.0}) {
    for (double s : {0.0, 0.5, 9.0}) {
      EXPECT_LE(f.MinScoreGivenSpatialDistance(s), f.Score(l, s) + 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(f.MinScoreGivenSpatialDistance(0.0), 0.25);
}

TEST(RankingTest, LoosenessThresholdIsExactBoundary) {
  // Lw is the exact L at which score reaches θ: Score(Lw, s) == θ.
  auto product = RankingFunction::Product();
  double lw = product.LoosenessThreshold(1.32, 1.28);
  EXPECT_NEAR(product.Score(lw, 1.28), 1.32, 1e-12);

  auto wsum = RankingFunction::WeightedSum(0.7);
  double lw2 = wsum.LoosenessThreshold(5.0, 2.0);
  EXPECT_NEAR(wsum.Score(lw2, 2.0), 5.0, 1e-12);
}

TEST(RankingTest, ProductThresholdAtZeroDistanceIsInfinite) {
  auto f = RankingFunction::Product();
  EXPECT_EQ(f.LoosenessThreshold(3.0, 0.0),
            std::numeric_limits<double>::infinity());
}

TEST(RankingTest, Monotonicity) {
  for (auto f :
       {RankingFunction::Product(), RankingFunction::WeightedSum(0.4)}) {
    EXPECT_LE(f.Score(2.0, 1.0), f.Score(3.0, 1.0));
    EXPECT_LE(f.Score(2.0, 1.0), f.Score(2.0, 2.0));
  }
}

TEST(RankingTest, ToString) {
  EXPECT_EQ(RankingFunction::Product().ToString(), "L*S");
  EXPECT_FALSE(RankingFunction::WeightedSum(0.3).ToString().empty());
  EXPECT_DOUBLE_EQ(RankingFunction::WeightedSum(0.3).beta(), 0.3);
}

}  // namespace
}  // namespace ksp
