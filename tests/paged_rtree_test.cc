// PagedRTree round-trip: the node-as-page file must reproduce the
// in-memory RTree exactly — same node ids, same entry order, same root —
// because the disk backend's backend-invariance contract (DESIGN.md §10)
// rests on traversals seeing identical node contents in identical order.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "spatial/paged_rtree.h"
#include "spatial/rtree.h"
#include "storage/shared_buffer_pool.h"

namespace ksp {
namespace {

class PagedRTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            ("ksp_paged_rtree_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static RTree MakeTree(size_t n, uint64_t seed) {
    Rng rng(seed);
    RTree tree;
    for (size_t i = 0; i < n; ++i) {
      tree.Insert(Point{static_cast<double>(rng.NextBounded(10000)) / 10.0,
                        static_cast<double>(rng.NextBounded(10000)) / 10.0},
                  /*data=*/i);
    }
    return tree;
  }

  std::string dir_;
};

TEST_F(PagedRTreeTest, RoundTripMatchesEveryNode) {
  const RTree tree = MakeTree(900, /*seed=*/42);
  const std::string path = dir_ + "/tree.bin";
  ASSERT_TRUE(PagedRTree::Write(tree, path).ok());

  SharedBufferPool pool(/*budget_bytes=*/1 << 20, /*page_size=*/4096);
  auto paged = PagedRTree::Open(path, &pool);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  EXPECT_EQ((*paged)->root(), tree.root());
  EXPECT_EQ((*paged)->num_nodes(), tree.num_nodes());
  EXPECT_EQ((*paged)->size(), tree.size());
  EXPECT_EQ((*paged)->empty(), tree.empty());
  EXPECT_EQ((*paged)->page_size(), 4096u);
  // A 64-entry node is 16 + 64*40 = 2576 bytes: one page per node here.
  EXPECT_EQ((*paged)->node_stride() % (*paged)->page_size(), 0u);

  SpatialCursor cursor;
  for (size_t id = 0; id < tree.num_nodes(); ++id) {
    const RTree::Node& expected = tree.node(static_cast<uint32_t>(id));
    SpatialNodeRef node;
    ASSERT_TRUE(
        (*paged)
            ->ReadNode(static_cast<uint32_t>(id), &cursor, &node)
            .ok())
        << "node " << id;
    ASSERT_EQ(node.is_leaf, expected.is_leaf) << "node " << id;
    ASSERT_EQ(node.entries.size(), expected.entries.size()) << "node " << id;
    for (size_t e = 0; e < expected.entries.size(); ++e) {
      EXPECT_EQ(node.entries[e].id, expected.entries[e].id);
      EXPECT_EQ(node.entries[e].rect.min_x, expected.entries[e].rect.min_x);
      EXPECT_EQ(node.entries[e].rect.min_y, expected.entries[e].rect.min_y);
      EXPECT_EQ(node.entries[e].rect.max_x, expected.entries[e].rect.max_x);
      EXPECT_EQ(node.entries[e].rect.max_y, expected.entries[e].rect.max_y);
    }
  }
  EXPECT_GT(cursor.io.Fetches(), 0u);
}

TEST_F(PagedRTreeTest, NearestStreamMatchesMemoryAccessor) {
  const RTree tree = MakeTree(600, /*seed=*/7);
  const std::string path = dir_ + "/tree.bin";
  ASSERT_TRUE(PagedRTree::Write(tree, path).ok());
  // A pool far smaller than the file forces eviction churn mid-traversal;
  // the stream must still be identical.
  SharedBufferPool pool(/*budget_bytes=*/16 << 10, /*page_size=*/4096);
  auto paged = PagedRTree::Open(path, &pool);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_GT((*paged)->file_size_bytes(), 16u << 10);

  const Point query{123.4, 567.8};
  NearestIterator mem(&tree, query);
  NearestIterator disk(paged->get(), query);
  NearestIterator::Item a;
  NearestIterator::Item b;
  size_t popped = 0;
  while (mem.Next(&a)) {
    ASSERT_TRUE(disk.Next(&b)) << "disk stream ended early at " << popped;
    ASSERT_EQ(a.is_node, b.is_node);
    ASSERT_EQ(a.id, b.id);
    ASSERT_DOUBLE_EQ(a.distance, b.distance);
    ++popped;
  }
  EXPECT_FALSE(disk.Next(&b));
  ASSERT_TRUE(mem.status().ok());
  ASSERT_TRUE(disk.status().ok()) << disk.status().ToString();
  EXPECT_EQ(mem.nodes_accessed(), disk.nodes_accessed());
  EXPECT_GT(popped, 0u);
  // The memory path reports no page I/O; the disk path must, and the
  // under-budget pool must have evicted.
  EXPECT_TRUE(mem.io().IsZero());
  EXPECT_GT(disk.io().misses, 0u);
  EXPECT_GT(disk.io().evictions, 0u);
}

TEST_F(PagedRTreeTest, OpenRejectsPageSizeMismatch) {
  const RTree tree = MakeTree(100, /*seed=*/3);
  const std::string path = dir_ + "/tree.bin";
  ASSERT_TRUE(PagedRTree::Write(tree, path, /*page_size=*/4096).ok());
  SharedBufferPool pool(/*budget_bytes=*/1 << 20, /*page_size=*/8192);
  auto paged = PagedRTree::Open(path, &pool);
  ASSERT_FALSE(paged.ok());
  EXPECT_TRUE(paged.status().IsInvalidArgument())
      << paged.status().ToString();
}

TEST_F(PagedRTreeTest, ReadNodeRejectsOutOfRangeId) {
  const RTree tree = MakeTree(50, /*seed=*/9);
  const std::string path = dir_ + "/tree.bin";
  ASSERT_TRUE(PagedRTree::Write(tree, path).ok());
  SharedBufferPool pool(/*budget_bytes=*/1 << 20, /*page_size=*/4096);
  auto paged = PagedRTree::Open(path, &pool);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  SpatialCursor cursor;
  SpatialNodeRef node;
  const Status st = (*paged)->ReadNode(
      static_cast<uint32_t>((*paged)->num_nodes()), &cursor, &node);
  EXPECT_FALSE(st.ok());
}

TEST_F(PagedRTreeTest, NonDefaultPageSizeRoundTrips) {
  const RTree tree = MakeTree(300, /*seed=*/11);
  const std::string path = dir_ + "/tree.bin";
  ASSERT_TRUE(PagedRTree::Write(tree, path, /*page_size=*/1024).ok());
  SharedBufferPool pool(/*budget_bytes=*/1 << 20, /*page_size=*/1024);
  auto paged = PagedRTree::Open(path, &pool);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  // A 64-entry node no longer fits one 1 KB page: the stride must be a
  // page multiple and node reads must span pages transparently.
  EXPECT_EQ((*paged)->node_stride() % 1024u, 0u);
  EXPECT_GT((*paged)->node_stride(), 1024u);
  SpatialCursor cursor;
  SpatialNodeRef node;
  ASSERT_TRUE((*paged)->ReadNode(tree.root(), &cursor, &node).ok());
  EXPECT_EQ(node.entries.size(), tree.node(tree.root()).entries.size());
}

}  // namespace
}  // namespace ksp
