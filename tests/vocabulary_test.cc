#include "text/vocabulary.h"

#include <gtest/gtest.h>

#include <string>

namespace ksp {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("alpha"), 0u);
  EXPECT_EQ(vocab.Intern("beta"), 1u);
  EXPECT_EQ(vocab.Intern("alpha"), 0u);  // Idempotent.
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, LookupMissesUnknown) {
  Vocabulary vocab;
  vocab.Intern("known");
  EXPECT_TRUE(vocab.Lookup("known").has_value());
  EXPECT_FALSE(vocab.Lookup("unknown").has_value());
}

TEST(VocabularyTest, TermRoundTrip) {
  Vocabulary vocab;
  TermId id = vocab.Intern("roundtrip");
  EXPECT_EQ(vocab.Term(id), "roundtrip");
}

TEST(VocabularyTest, StableUnderGrowth) {
  // Guards the deque-based storage: interned string_views must remain
  // valid as the vocabulary grows (SSO strings would break with vector).
  Vocabulary vocab;
  std::vector<TermId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(vocab.Intern("t" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    auto found = vocab.Lookup("t" + std::to_string(i));
    ASSERT_TRUE(found.has_value()) << i;
    EXPECT_EQ(*found, ids[i]);
    EXPECT_EQ(vocab.Term(ids[i]), "t" + std::to_string(i));
  }
  EXPECT_GT(vocab.MemoryUsageBytes(), 0u);
}

TEST(VocabularyTest, EmptyStringIsValidTerm) {
  Vocabulary vocab;
  TermId id = vocab.Intern("");
  EXPECT_EQ(vocab.Term(id), "");
  EXPECT_EQ(vocab.Intern(""), id);
}

}  // namespace
}  // namespace ksp
