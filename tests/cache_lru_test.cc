// Deterministic goldens for the ShardedLruCache primitive: eviction
// order, byte accounting, and the three budget regimes (pass-through,
// bounded, unbounded). Single-shard caches make LRU order observable;
// the semantic layers on top (core/semantic_cache) are covered by
// cache_equivalence_test and cache_stress_test.

#include "common/cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace ksp {
namespace {

using IntCache = ShardedLruCache<uint64_t, uint64_t>;

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(IntCache(1024, 1).num_shards(), 1u);
  EXPECT_EQ(IntCache(1024, 2).num_shards(), 2u);
  EXPECT_EQ(IntCache(1024, 3).num_shards(), 4u);
  EXPECT_EQ(IntCache(1024, 16).num_shards(), 16u);
  EXPECT_EQ(IntCache(1024, 17).num_shards(), 32u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard, budget for exactly three 10-byte entries.
  IntCache cache(30, 1);
  EXPECT_EQ(cache.Insert(1, 100, 10), 0u);
  EXPECT_EQ(cache.Insert(2, 200, 10), 0u);
  EXPECT_EQ(cache.Insert(3, 300, 10), 0u);
  EXPECT_EQ(cache.entries(), 3u);

  // Touch 1 so it becomes MRU; 2 is now the LRU tail.
  uint64_t v = 0;
  ASSERT_TRUE(cache.Lookup(1, &v));
  EXPECT_EQ(v, 100u);

  // A fourth entry overflows the shard: exactly the tail (2) goes.
  EXPECT_EQ(cache.Insert(4, 400, 10), 1u);
  EXPECT_FALSE(cache.Lookup(2, &v));
  EXPECT_TRUE(cache.Lookup(1, &v));
  EXPECT_TRUE(cache.Lookup(3, &v));
  EXPECT_TRUE(cache.Lookup(4, &v));
  EXPECT_EQ(cache.bytes(), 30u);
}

TEST(ShardedLruCacheTest, UpdateRefreshesRecencyAndRecharges) {
  IntCache cache(30, 1);
  cache.Insert(1, 100, 10);
  cache.Insert(2, 200, 10);
  cache.Insert(3, 300, 10);
  // Re-inserting 1 with a new charge moves it to MRU and re-accounts.
  EXPECT_EQ(cache.Insert(1, 101, 5), 0u);
  EXPECT_EQ(cache.bytes(), 25u);
  // Overflow now evicts 2 (oldest untouched), not the refreshed 1.
  cache.Insert(4, 400, 10);
  uint64_t v = 0;
  EXPECT_FALSE(cache.Lookup(2, &v));
  ASSERT_TRUE(cache.Lookup(1, &v));
  EXPECT_EQ(v, 101u);
}

TEST(ShardedLruCacheTest, OversizedEntryEvictsEverythingIncludingItself) {
  // Pathological single-entry shard: a charge above the whole shard
  // budget cannot be held, and it must not leave stale residents behind.
  IntCache cache(10, 1);
  cache.Insert(1, 100, 4);
  cache.Insert(2, 200, 4);
  // 50 > 10: evicts 1, 2, and the new entry itself.
  EXPECT_EQ(cache.Insert(3, 300, 50), 3u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  uint64_t v = 0;
  EXPECT_FALSE(cache.Lookup(3, &v));
}

TEST(ShardedLruCacheTest, ZeroBudgetIsPassThrough) {
  IntCache cache(0, 4);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.Insert(1, 100, 8), 0u);
  uint64_t v = 0;
  EXPECT_FALSE(cache.Lookup(1, &v));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  // Misses are still counted — a disabled cache reports a 0% hit rate
  // rather than vanishing from metrics.
  EXPECT_EQ(cache.GetStats().misses, 1u);
}

TEST(ShardedLruCacheTest, UnboundedNeverEvicts) {
  IntCache cache(IntCache::kUnbounded, 2);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(cache.Insert(i, i, 1 << 20), 0u);  // 1 MiB each.
  }
  EXPECT_EQ(cache.entries(), 1000u);
  EXPECT_EQ(cache.GetStats().evictions, 0u);
}

TEST(ShardedLruCacheTest, StatsCountHitsMissesBytes) {
  IntCache cache(1024, 1);
  cache.Insert(1, 100, 16);
  cache.Insert(2, 200, 16);
  uint64_t v = 0;
  cache.Lookup(1, &v);
  cache.Lookup(1, &v);
  cache.Lookup(9, &v);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes, 32u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ShardedLruCacheTest, ClearDropsEntriesButKeepsCounters) {
  IntCache cache(100, 1);
  cache.Insert(1, 100, 60);
  cache.Insert(2, 200, 60);  // Evicts 1.
  uint64_t v = 0;
  cache.Lookup(2, &v);
  cache.Lookup(3, &v);

  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  const auto stats = cache.GetStats();
  // Cumulative counters survive invalidation: they feed monotone
  // Prometheus counters, which must never go backwards.
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ShardedLruCacheTest, EraseRefundsBytes) {
  IntCache cache(100, 1);
  cache.Insert(1, 100, 40);
  cache.Insert(2, 200, 40);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.bytes(), 40u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ShardedLruCacheTest, StringValuesCopyOut) {
  ShardedLruCache<std::string, std::string> cache(1024, 2);
  cache.Insert("key", "value", 8);
  std::string out;
  ASSERT_TRUE(cache.Lookup("key", &out));
  EXPECT_EQ(out, "value");
}

TEST(ShardedLruCacheTest, ConcurrentMixedOpsStaySane) {
  // Smoke test for the locking (TSan job runs this under -L cache):
  // 8 threads hammer overlapping keys with inserts, lookups, erases,
  // and clears. Invariant: accounting never underflows and the final
  // byte total matches a full recount via GetStats().
  IntCache cache(4096, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      uint64_t v = 0;
      for (uint64_t i = 0; i < 2000; ++i) {
        const uint64_t key = (i * 7 + t) % 257;
        switch (i % 5) {
          case 0:
          case 1:
            cache.Insert(key, i, 16 + key % 32);
            break;
          case 2:
          case 3:
            cache.Lookup(key, &v);
            break;
          default:
            if (i % 100 == 0) {
              cache.Clear();
            } else {
              cache.Erase(key);
            }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.GetStats();
  EXPECT_LE(stats.bytes, cache.budget_bytes());
  EXPECT_EQ(stats.hits + stats.misses, 8u * 2000u * 2 / 5);
}

}  // namespace
}  // namespace ksp
