// Footnote 2, option (2): enumeration of all tied minimum-looseness
// semantic places rooted at one place.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"

namespace ksp {
namespace {

TEST(TiedTqspTest, EnumeratesAllMinimumDistanceMatches) {
  KnowledgeBaseBuilder builder;
  VertexId root = builder.AddEntity("http://x.org/Root_Place");
  VertexId a = builder.AddEntity("http://x.org/Alpha_Widget");
  VertexId b = builder.AddEntity("http://x.org/Beta_Widget");
  VertexId c = builder.AddEntity("http://x.org/Far_Widget");
  builder.AddRelation(root, a, "http://x.org/rel");
  builder.AddRelation(root, b, "http://x.org/rel");
  builder.AddRelation(a, c, "http://x.org/rel");
  builder.SetLocation(root, Point{0, 0});
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());

  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  // "widget" occurs at distance 1 twice (a, b) and distance 2 once (c):
  // two tied TQSPs of looseness 2; c is not a minimum match.
  KspQuery query = db.MakeQuery(Point{0, 0}, {"widget"}, 1);
  auto tied = executor.ComputeTqspAlternatives(0, query);
  ASSERT_TRUE(tied.ok()) << tied.status().ToString();
  ASSERT_TRUE(tied->IsQualified());
  EXPECT_DOUBLE_EQ(tied->looseness, 2.0);
  ASSERT_EQ(tied->keywords.size(), 1u);
  EXPECT_EQ(tied->keywords[0].distance, 1u);
  EXPECT_EQ(tied->keywords[0].vertices.size(), 2u);
  EXPECT_EQ(tied->NumDistinctTrees(), 2u);

  // Two keywords -> product of alternatives.
  KspQuery q2 = db.MakeQuery(Point{0, 0}, {"widget", "alpha"}, 1);
  auto tied2 = executor.ComputeTqspAlternatives(0, q2);
  ASSERT_TRUE(tied2.ok());
  ASSERT_TRUE(tied2->IsQualified());
  EXPECT_DOUBLE_EQ(tied2->looseness, 3.0);  // 1 + 1 + 1.
  EXPECT_EQ(tied2->NumDistinctTrees(), 2u);  // {a,b} x {a}.
}

TEST(TiedTqspTest, AgreesWithSingleTqspLooseness) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  for (PlaceId p = 0; p < (*kb)->num_places(); ++p) {
    auto single = executor.ComputeTqspForPlace(p, query);
    auto tied = executor.ComputeTqspAlternatives(p, query);
    ASSERT_TRUE(single.ok() && tied.ok());
    ASSERT_EQ(single->IsQualified(), tied->IsQualified());
    if (single->IsQualified()) {
      EXPECT_DOUBLE_EQ(single->looseness, tied->looseness);
      // The single tree's choice per keyword is among the alternatives.
      for (const auto& match : single->matches) {
        bool found = false;
        for (const auto& kw : tied->keywords) {
          if (kw.term != match.term) continue;
          EXPECT_EQ(kw.distance, match.distance);
          for (VertexId v : kw.vertices) {
            if (v == match.vertex) found = true;
          }
        }
        EXPECT_TRUE(found);
      }
      EXPECT_GE(tied->NumDistinctTrees(), 1u);
    }
  }
}

TEST(TiedTqspTest, UnqualifiedPlace) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  // p1 (place 0) never reaches "church".
  KspQuery query = db.MakeQuery(kQ1, {"church"}, 1);
  PlaceId p1 =
      (*kb)->place_of(*(*kb)->FindVertex("http://example.org/Montmajour_Abbey"));
  auto tied = executor.ComputeTqspAlternatives(p1, query);
  ASSERT_TRUE(tied.ok());
  EXPECT_FALSE(tied->IsQualified());
  EXPECT_EQ(tied->NumDistinctTrees(), 0u);
}

TEST(TiedTqspTest, UnknownKeywordUnqualified) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, {"nonexistentterm"}, 1);
  auto tied = executor.ComputeTqspAlternatives(0, query);
  ASSERT_TRUE(tied.ok());
  EXPECT_FALSE(tied->IsQualified());
}

}  // namespace
}  // namespace ksp
