// QueryExecutor session behaviour: the prepared-before-query contract,
// the >64-distinct-keyword limit on the Result-returning TQSP API, and
// the BFS-epoch uint32_t wraparound path.

#include "core/executor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>

#include "datagen/fixtures.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

using ExecuteFn = Result<KspResult> (QueryExecutor::*)(const KspQuery&,
                                                       QueryStats*);

constexpr ExecuteFn kAllAlgorithms[] = {
    &QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
    &QueryExecutor::ExecuteSp, &QueryExecutor::ExecuteTa,
    &QueryExecutor::ExecuteKeywordOnly};

TEST(ExecutorContractTest, UnpreparedDatabaseRejectedByEveryAlgorithm) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());  // No BuildRTree / PrepareAll.
  ASSERT_FALSE(db.has_rtree());
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, {"roman"}, 1);
  for (ExecuteFn fn : kAllAlgorithms) {
    auto result = (executor.*fn)(query, nullptr);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument());
  }
}

TEST(ExecutorContractTest, SameExecutorWorksOncePrepared) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, {"roman"}, 1);
  ASSERT_FALSE(executor.ExecuteBsp(query).ok());
  // Preparing the database unblocks executors constructed before it.
  db.PrepareAll(2);
  for (ExecuteFn fn : kAllAlgorithms) {
    auto result = (executor.*fn)(query, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
}

TEST(ExecutorContractTest, TooManyDistinctKeywordsRejected) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.PrepareAll(2);
  QueryExecutor executor(&db);

  KspQuery query;
  query.location = kQ1;
  query.k = 1;
  for (TermId t = 0; t < 70; ++t) query.keywords.push_back(t % 5);
  // 70 keywords but only 5 distinct: fine everywhere.
  EXPECT_TRUE(executor.ExecuteSp(query).ok());
  EXPECT_TRUE(executor.ComputeTqspForPlace(0, query).ok());
  EXPECT_TRUE(executor.ComputeTqspAlternatives(0, query).ok());

  for (TermId t = 0; t < 70; ++t) query.keywords.push_back(t);
  for (ExecuteFn fn : kAllAlgorithms) {
    auto result = (executor.*fn)(query, nullptr);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument());
  }
  // The direct TQSP entry points report the error instead of crashing.
  auto tree = executor.ComputeTqspForPlace(0, query);
  ASSERT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsInvalidArgument());
  auto tied = executor.ComputeTqspAlternatives(0, query);
  ASSERT_FALSE(tied.ok());
  EXPECT_TRUE(tied.status().IsInvalidArgument());
}

TEST(ExecutorContractTest, SharedDatabaseExecutorsAnswerIdentically) {
  // Any number of executors over one prepared database answer alike —
  // the sharing contract that replaced the old clone-an-engine pattern.
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.PrepareAll(3);
  QueryExecutor first(&db);
  QueryExecutor second(&db);
  KspQuery query = db.MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  auto a = first.ExecuteSp(query);
  auto b = second.ExecuteSp(query);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->entries.size(), 2u);
  ASSERT_EQ(b->entries.size(), a->entries.size());
  for (size_t i = 0; i < a->entries.size(); ++i) {
    EXPECT_EQ(b->entries[i].place, a->entries[i].place);
    EXPECT_DOUBLE_EQ(b->entries[i].score, a->entries[i].score);
    EXPECT_DOUBLE_EQ(b->entries[i].looseness, a->entries[i].looseness);
  }
}

class EpochWrapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1000));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(2);
    QueryGenOptions qopt;
    qopt.num_keywords = 4;
    qopt.k = 5;
    qopt.seed = 9;
    queries_ = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 6);
    ASSERT_FALSE(queries_.empty());
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::vector<KspQuery> queries_;
};

TEST_F(EpochWrapTest, ResultsUnchangedAcrossCounterWraparound) {
  // Reference: a fresh executor far away from the wrap.
  QueryExecutor reference(db_.get());
  // Victim: dirty its visit array with normal queries first so stale marks
  // exist, then park the epoch counter right below the 16-bit maximum. The
  // batch below crosses the wrap (each TQSP computation advances the
  // epoch); without the zero-fill on wrap, stale marks alias the restarted
  // epochs and corrupt BFS visitation.
  QueryExecutor victim(db_.get());
  for (const KspQuery& q : queries_) {
    ASSERT_TRUE(victim.ExecuteBsp(q).ok());
  }
  victim.set_bfs_epoch_for_testing(std::numeric_limits<uint16_t>::max() - 2);

  for (const KspQuery& q : queries_) {
    auto expected = reference.ExecuteBsp(q);
    auto got = victim.ExecuteBsp(q);
    ASSERT_TRUE(expected.ok() && got.ok());
    ASSERT_EQ(got->entries.size(), expected->entries.size());
    for (size_t i = 0; i < expected->entries.size(); ++i) {
      EXPECT_DOUBLE_EQ(got->entries[i].score, expected->entries[i].score);
      EXPECT_DOUBLE_EQ(got->entries[i].looseness,
                       expected->entries[i].looseness);
      EXPECT_EQ(got->entries[i].place, expected->entries[i].place);
    }
  }
}

TEST_F(EpochWrapTest, TqspIdenticalRightAtTheWrapBoundary) {
  QueryExecutor reference(db_.get());
  QueryExecutor victim(db_.get());
  const KspQuery& q = queries_.front();
  // Pin the counter so the very next BFS triggers the wrap.
  victim.set_bfs_epoch_for_testing(std::numeric_limits<uint16_t>::max());
  const uint32_t places = std::min<uint32_t>(kb_->num_places(), 50);
  for (PlaceId p = 0; p < places; ++p) {
    auto expected = reference.ComputeTqspForPlace(p, q);
    auto got = victim.ComputeTqspForPlace(p, q);
    ASSERT_TRUE(expected.ok() && got.ok());
    EXPECT_EQ(got->IsQualified(), expected->IsQualified()) << "place " << p;
    if (expected->IsQualified()) {
      EXPECT_DOUBLE_EQ(got->looseness, expected->looseness) << "place " << p;
    }
  }
}

}  // namespace
}  // namespace ksp
