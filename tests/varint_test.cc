#include "common/varint.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace ksp {
namespace {

TEST(VarintTest, SmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 42ull, 127ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    size_t off = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &out).ok());
    EXPECT_EQ(out, v);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(VarintTest, BoundaryValues) {
  for (uint64_t v : {128ull, 16383ull, 16384ull, (1ull << 32) - 1,
                     1ull << 32, ~0ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t off = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.pop_back();
  size_t off = 0;
  uint64_t out = 0;
  EXPECT_TRUE(GetVarint64(buf, &off, &out).IsCorruption());
}

TEST(VarintTest, RoundTripRandomSequence) {
  Rng rng(123);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Next() >> (rng.NextBounded(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  size_t off = 0;
  for (uint64_t expected : values) {
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &out).ok());
    EXPECT_EQ(out, expected);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(FixedTest, RoundTrip64And32) {
  std::string buf;
  PutFixed64(&buf, 0xDEADBEEFCAFEBABEull);
  PutFixed32(&buf, 0x12345678u);
  size_t off = 0;
  uint64_t v64 = 0;
  uint32_t v32 = 0;
  ASSERT_TRUE(GetFixed64(buf, &off, &v64).ok());
  ASSERT_TRUE(GetFixed32(buf, &off, &v32).ok());
  EXPECT_EQ(v64, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(v32, 0x12345678u);
  EXPECT_EQ(off, 12u);
}

TEST(FixedTest, TruncatedFixedIsCorruption) {
  std::string buf = "abc";
  size_t off = 0;
  uint64_t v = 0;
  EXPECT_TRUE(GetFixed64(buf, &off, &v).IsCorruption());
  uint32_t w = 0;
  off = 1;
  EXPECT_TRUE(GetFixed32(buf, &off, &w).IsCorruption());
}

TEST(LengthPrefixedTest, RoundTripIncludingEmbeddedNul) {
  std::string buf;
  std::string payload("a\0b", 3);
  PutLengthPrefixed(&buf, payload);
  PutLengthPrefixed(&buf, "");
  size_t off = 0;
  std::string out;
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &out).ok());
  EXPECT_EQ(out, payload);
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &out).ok());
  EXPECT_EQ(out, "");
  EXPECT_EQ(off, buf.size());
}

TEST(LengthPrefixedTest, TruncatedBodyIsCorruption) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 2);
  size_t off = 0;
  std::string out;
  EXPECT_TRUE(GetLengthPrefixed(buf, &off, &out).IsCorruption());
}

}  // namespace
}  // namespace ksp
