// Admission control and backpressure: a full bounded queue answers a
// typed kUnavailable with a retry hint — it never blocks the connection
// and never drops it — and under sustained concurrent overload every
// request resolves to either a correct answer or that typed rejection.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "service/client.h"
#include "service/request_queue.h"
#include "service/server.h"

namespace ksp {
namespace {

std::unique_ptr<KnowledgeBase> MakeKb(uint32_t places) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(places));
  EXPECT_TRUE(kb.ok()) << kb.status().ToString();
  return std::move(*kb);
}

std::vector<std::string> KeywordStrings(const KnowledgeBase& kb,
                                        const KspQuery& query) {
  std::vector<std::string> out;
  out.reserve(query.keywords.size());
  for (TermId t : query.keywords) out.push_back(kb.vocabulary().Term(t));
  return out;
}

TEST(BoundedRequestQueueTest, TryPushNeverBlocksAndPopDrainsAfterClose) {
  BoundedRequestQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // Full: immediate refusal, no wait.
  queue.Close();
  EXPECT_FALSE(queue.TryPush(4));  // Closed: refused too.
  int value = 0;
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 2);
  EXPECT_FALSE(queue.Pop(&value));  // Closed and empty.
}

TEST(ServiceOverloadTest, ZeroCapacityQueueRejectsDeterministically) {
  auto kb = MakeKb(300);
  auto db = std::make_shared<KspDatabase>(kb.get());
  db->PrepareAll(3);

  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 0;  // Every admission attempt must bounce.
  options.overload_retry_after_ms = 40;
  KspServer server(kb.get(), KspOptions(), options);
  ASSERT_TRUE(server.ServeDatabase(db).ok());
  ASSERT_TRUE(server.Start().ok());

  auto client = KspClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 5; ++i) {
    auto response = client->Query(KspAlgorithm::kSp, {0, 0}, {"a"}, 2);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->code, StatusCode::kUnavailable) << response->message;
    EXPECT_EQ(response->retry_after_ms, 40u);
  }
  // The connection is still healthy after repeated rejections.
  auto health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->ok());

  const auto snapshot = server.metrics()->Snapshot();
  const auto it =
      snapshot.counters.find("ksp_server_overload_rejections_total");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_EQ(it->second, 5u);
  server.Stop();
}

TEST(ServiceOverloadTest, ConcurrentOverloadNeverHangsOrCorrupts) {
  auto kb = MakeKb(500);
  auto db = std::make_shared<KspDatabase>(kb.get());
  db->PrepareAll(3);

  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 4;
  qopt.seed = 31;
  const auto queries = GenerateQueries(*kb, QueryClass::kOriginal, qopt, 4);
  ASSERT_FALSE(queries.empty());

  // Oracle answers computed directly, before any load.
  KspDatabase oracle_db(kb.get());
  oracle_db.PrepareAll(3);
  QueryExecutor oracle(&oracle_db);
  std::vector<KspResult> expected;
  for (const KspQuery& query : queries) {
    auto result = oracle.ExecuteSp(query, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(*result);
  }

  ServerOptions options;
  options.num_workers = 1;       // Deliberately starved...
  options.queue_capacity = 2;    // ...with almost no headroom.
  KspServer server(kb.get(), KspOptions(), options);
  ASSERT_TRUE(server.ServeDatabase(db).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::atomic<uint64_t> oks{0};
  std::atomic<uint64_t> rejections{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      auto client = KspClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = static_cast<size_t>(c + r) % queries.size();
        auto response =
            client->Query(KspAlgorithm::kSp, queries[qi].location,
                          KeywordStrings(*kb, queries[qi]), queries[qi].k);
        if (!response.ok()) {
          ++failures;
          continue;
        }
        if (response->code == StatusCode::kUnavailable) {
          ++rejections;
          continue;
        }
        if (!response->ok()) {
          ++failures;
          continue;
        }
        // Every accepted answer must match the oracle exactly.
        const KspResult& want = expected[qi];
        if (response->entries.size() != want.entries.size()) {
          ++failures;
          continue;
        }
        bool same = true;
        for (size_t i = 0; i < want.entries.size(); ++i) {
          same = same &&
                 response->entries[i].place == want.entries[i].place &&
                 response->entries[i].looseness ==
                     want.entries[i].looseness &&
                 response->entries[i].score == want.entries[i].score;
        }
        if (same) {
          ++oks;
        } else {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(oks.load() + rejections.load(),
            static_cast<uint64_t>(kClients) * kRequestsPerClient);
  // The starved server must still have answered some queries correctly.
  EXPECT_GT(oks.load(), 0u);
}

}  // namespace
}  // namespace ksp
