#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace ksp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO error: disk on fire");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  EXPECT_EQ(t.message(), "x");
  // Copying OK is cheap and stays OK.
  Status ok;
  Status ok2 = ok;
  EXPECT_TRUE(ok2.ok());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::Corruption("bad magic");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsCorruption());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("inner"); };
  auto outer = [&]() -> Status {
    KSP_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto get = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Internal("boom");
  };
  auto use = [&](bool ok) -> Result<int> {
    KSP_ASSIGN_OR_RETURN(int v, get(ok));
    return v + 1;
  };
  EXPECT_EQ(*use(true), 6);
  EXPECT_FALSE(use(false).ok());
}

}  // namespace
}  // namespace ksp
