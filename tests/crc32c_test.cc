// CRC32C against published vectors (RFC 3720 §B.4) plus the streaming
// composition property the whole-file manifest checksum relies on.

#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace ksp {
namespace {

TEST(Crc32cTest, StandardVectors) {
  // The canonical check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);

  std::string buf(32, '\0');
  EXPECT_EQ(Crc32c(buf), 0x8A9136AAu);

  buf.assign(32, '\xff');
  EXPECT_EQ(Crc32c(buf), 0x62A8AB43u);

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(buf), 0x46DD794Eu);

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(Crc32c(buf), 0x113FDB5Cu);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Crc32c(std::string_view{}), 0u);
  EXPECT_EQ(Crc32cExtend(0x12345678u, std::string_view{}), 0x12345678u);
}

TEST(Crc32cTest, ExtendComposesAcrossArbitrarySplits) {
  Rng rng(42);
  std::string data(4096, '\0');
  for (char& c : data) c = static_cast<char>(rng.Next());
  const uint32_t whole = Crc32c(data);
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                       size_t{63}, size_t{1024}, data.size()}) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
  // Many-chunk streaming (the ChecksumWholeFile pattern).
  uint32_t crc = 0;
  for (size_t pos = 0; pos < data.size();) {
    size_t n = 1 + rng.NextBounded(97);
    n = std::min(n, data.size() - pos);
    crc = Crc32cExtend(crc, data.data() + pos, n);
    pos += n;
  }
  EXPECT_EQ(crc, whole);
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  Rng rng(7);
  std::string data(257, '\0');
  for (char& c : data) c = static_cast<char>(rng.Next());
  const uint32_t clean = Crc32c(data);
  for (int trial = 0; trial < 128; ++trial) {
    std::string copy = data;
    size_t byte = rng.NextBounded(copy.size());
    copy[byte] ^= static_cast<char>(1u << rng.NextBounded(8));
    EXPECT_NE(Crc32c(copy), clean);
  }
}

}  // namespace
}  // namespace ksp
