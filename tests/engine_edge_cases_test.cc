#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

using ExecuteFn = Result<KspResult> (QueryExecutor::*)(const KspQuery&,
                                                       QueryStats*);

constexpr ExecuteFn kCoreAlgorithms[] = {
    &QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
    &QueryExecutor::ExecuteSp, &QueryExecutor::ExecuteTa};

std::unique_ptr<KnowledgeBase> SmallKb() {
  auto kb = BuildFigure1KnowledgeBase();
  EXPECT_TRUE(kb.ok());
  return std::move(*kb);
}

TEST(EngineEdgeCasesTest, EmptyKeywordListRanksByDistanceOnly) {
  auto kb = SmallKb();
  KspDatabase db(kb.get());
  db.PrepareAll(2);
  QueryExecutor executor(&db);
  KspQuery query;
  query.location = kQ2;  // Nearest place is p2.
  query.k = 2;
  for (ExecuteFn fn : kCoreAlgorithms) {
    auto result = (executor.*fn)(query, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->entries.size(), 2u);
    // Every place qualifies with L = 1; ranking degenerates to distance.
    EXPECT_DOUBLE_EQ(result->entries[0].looseness, 1.0);
    EXPECT_LT(result->entries[0].spatial_distance,
              result->entries[1].spatial_distance);
  }
}

TEST(EngineEdgeCasesTest, KGreaterThanNumPlaces) {
  auto kb = SmallKb();
  KspDatabase db(kb.get());
  db.PrepareAll(2);
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, {"roman"}, 50);
  auto result = executor.ExecuteSp(query);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->entries.size(), kb->num_places());
  EXPECT_FALSE(result->entries.empty());
}

TEST(EngineEdgeCasesTest, KZeroReturnsEmpty) {
  auto kb = SmallKb();
  KspDatabase db(kb.get());
  db.PrepareAll(2);
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, {"roman"}, 0);
  for (ExecuteFn fn : kCoreAlgorithms) {
    auto result = (executor.*fn)(query, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->entries.empty());
  }
}

TEST(EngineEdgeCasesTest, DuplicateKeywordsCollapse) {
  auto kb = SmallKb();
  KspDatabase db(kb.get());
  db.PrepareAll(2);
  QueryExecutor executor(&db);
  KspQuery once = db.MakeQuery(kQ1, {"roman"}, 2);
  KspQuery thrice = db.MakeQuery(kQ1, {"roman", "roman", "roman"}, 2);
  auto a = executor.ExecuteSp(once);
  auto b = executor.ExecuteSp(thrice);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->entries.size(), b->entries.size());
  for (size_t i = 0; i < a->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->entries[i].score, b->entries[i].score);
  }
}

TEST(EngineEdgeCasesTest, TooManyKeywordsRejected) {
  auto kb = SmallKb();
  KspDatabase db(kb.get());
  db.PrepareAll(2);
  QueryExecutor executor(&db);
  KspQuery query;
  query.location = kQ1;
  query.k = 1;
  for (TermId t = 0; t < 70; ++t) query.keywords.push_back(t % 5);
  // 5 distinct keywords: fine.
  EXPECT_TRUE(executor.ExecuteSp(query).ok());
  for (TermId t = 0; t < 70; ++t) query.keywords.push_back(t);
  auto result = executor.ExecuteSp(query);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(EngineEdgeCasesTest, SppWithoutReachabilityIndexFails) {
  auto kb = SmallKb();
  KspDatabase db(kb.get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, {"roman"}, 1);
  auto result = executor.ExecuteSpp(query);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(EngineEdgeCasesTest, SpWithoutAlphaIndexFails) {
  auto kb = SmallKb();
  KspDatabase db(kb.get());
  db.BuildRTree();
  db.BuildReachabilityIndex();
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, {"roman"}, 1);
  auto result = executor.ExecuteSp(query);
  EXPECT_FALSE(result.ok());
}

TEST(EngineEdgeCasesTest, PruningDisabledStillCorrect) {
  auto kb = SmallKb();
  KspOptions options;
  options.use_unqualified_pruning = false;
  options.use_dynamic_bound_pruning = false;
  KspDatabase db(kb.get(), options);
  db.BuildRTree();
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  auto result = executor.ExecuteSpp(query);  // No reach index needed now.
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 2u);
  EXPECT_NEAR(result->entries[0].score, 1.32, 0.01);
}

TEST(EngineEdgeCasesTest, AlphaPruningDisabledFallsBackToSpp) {
  auto kb = SmallKb();
  KspOptions options;
  options.use_alpha_pruning = false;
  KspDatabase db(kb.get(), options);
  db.BuildRTree();
  db.BuildReachabilityIndex();
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, Figure1QueryKeywords(), 1);
  auto result = executor.ExecuteSp(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 1u);
}

TEST(EngineEdgeCasesTest, KbWithNoPlaces) {
  KnowledgeBaseBuilder builder;
  VertexId a = builder.AddEntity("http://x.org/Lonely_Node");
  VertexId b = builder.AddEntity("http://x.org/Friend");
  builder.AddRelation(a, b, "http://x.org/knows");
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.PrepareAll(2);
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(Point{0, 0}, {"friend"}, 3);
  for (ExecuteFn fn : kCoreAlgorithms) {
    auto result = (executor.*fn)(query, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->entries.empty());
  }
}

TEST(EngineEdgeCasesTest, TimeLimitMarksIncomplete) {
  auto profile = SyntheticProfile::DBpediaLike(3000);
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  KspOptions options;
  options.time_limit_ms = 0.0;  // Everything times out instantly.
  KspDatabase db(kb->get(), options);
  db.BuildRTree();
  QueryExecutor executor(&db);
  KspQuery query;
  query.location = Point{45, 10};
  query.keywords = {0, 1};
  query.k = 5;
  QueryStats stats;
  auto result = executor.ExecuteBsp(query, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(stats.completed);
}

TEST(EngineEdgeCasesTest, DiskInvertedIndexBackendGivesSameAnswers) {
  auto kb = SmallKb();
  std::string path = "/tmp/ksp_engine_disk.idx";
  ASSERT_TRUE(DiskInvertedIndex::Write(kb->inverted_index(), path).ok());
  auto disk = DiskInvertedIndex::Open(path);
  ASSERT_TRUE(disk.ok());

  KspOptions options;
  options.inverted_index = disk->get();
  KspDatabase db(kb.get(), options);
  db.PrepareAll(2);
  QueryExecutor executor(&db);
  KspQuery query = db.MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  auto result = executor.ExecuteSp(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 2u);
  EXPECT_NEAR(result->entries[0].score, 1.32, 0.01);
  std::remove(path.c_str());
}

TEST(EngineEdgeCasesTest, StatsAccumulate) {
  QueryStats a;
  a.total_ms = 5;
  a.semantic_ms = 2;
  a.tqsp_computations = 3;
  QueryStats b;
  b.total_ms = 7;
  b.semantic_ms = 1;
  b.tqsp_computations = 4;
  b.completed = false;
  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.total_ms, 12.0);
  EXPECT_DOUBLE_EQ(a.other_ms(), 9.0);
  EXPECT_EQ(a.tqsp_computations, 7u);
  EXPECT_FALSE(a.completed);
}

}  // namespace
}  // namespace ksp
