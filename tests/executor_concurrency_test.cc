// Concurrency contract of the database/executor split: eight
// QueryExecutors sharing one immutable KspDatabase must produce
// bit-identical results to a single executor, and batch stats must merge
// exactly. This is the primary TSan target (build with
// -DKSP_SANITIZE=thread).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "core/parallel.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

constexpr size_t kThreads = 8;

void ExpectSameResults(const std::vector<KspResult>& a,
                       const std::vector<KspResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].entries.size(), b[i].entries.size()) << "query " << i;
    for (size_t j = 0; j < a[i].entries.size(); ++j) {
      // Bit-identical, not approximately equal: the same deterministic
      // float operations must run regardless of which thread runs them.
      EXPECT_EQ(a[i].entries[j].score, b[i].entries[j].score);
      EXPECT_EQ(a[i].entries[j].looseness, b[i].entries[j].looseness);
      EXPECT_EQ(a[i].entries[j].spatial_distance,
                b[i].entries[j].spatial_distance);
      EXPECT_EQ(a[i].entries[j].place, b[i].entries[j].place);
    }
  }
}

class ExecutorConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(2500));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(3);
    QueryGenOptions qopt;
    qopt.num_keywords = 4;
    qopt.k = 5;
    qopt.seed = 4242;
    queries_ = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 24);
    ASSERT_FALSE(queries_.empty());
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::vector<KspQuery> queries_;
};

TEST_F(ExecutorConcurrencyTest, EightWorkersMatchOneForEveryAlgorithm) {
  for (KspAlgorithm algorithm :
       {KspAlgorithm::kBsp, KspAlgorithm::kSpp, KspAlgorithm::kSp,
        KspAlgorithm::kTa, KspAlgorithm::kKeywordOnly}) {
    BatchRunOptions serial;
    serial.algorithm = algorithm;
    serial.num_threads = 1;
    BatchRunStats serial_stats;
    auto expected = RunQueryBatch(*db_, queries_, serial, &serial_stats);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    BatchRunOptions parallel;
    parallel.algorithm = algorithm;
    parallel.num_threads = kThreads;
    BatchRunStats parallel_stats;
    auto got = RunQueryBatch(*db_, queries_, parallel, &parallel_stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameResults(*expected, *got);

    // Work counters are per-query deterministic, so the merged totals
    // must agree exactly however queries were distributed over workers.
    const QueryStats& s = serial_stats.totals;
    const QueryStats& p = parallel_stats.totals;
    EXPECT_EQ(p.tqsp_computations, s.tqsp_computations)
        << KspAlgorithmName(algorithm);
    EXPECT_EQ(p.rtree_nodes_accessed, s.rtree_nodes_accessed)
        << KspAlgorithmName(algorithm);
    EXPECT_EQ(p.vertices_visited, s.vertices_visited)
        << KspAlgorithmName(algorithm);
    EXPECT_EQ(p.reachability_queries, s.reachability_queries)
        << KspAlgorithmName(algorithm);
    EXPECT_EQ(p.pruned_unqualified, s.pruned_unqualified);
    EXPECT_EQ(p.pruned_dynamic_bound, s.pruned_dynamic_bound);
    EXPECT_EQ(p.pruned_alpha_place, s.pruned_alpha_place);
    EXPECT_EQ(p.pruned_alpha_node, s.pruned_alpha_node);
    EXPECT_EQ(p.completed, s.completed);

    // One wall-clock lane per worker, each non-negative.
    ASSERT_EQ(parallel_stats.worker_wall_ms.size(), kThreads);
    for (double wall : parallel_stats.worker_wall_ms) {
      EXPECT_GE(wall, 0.0);
    }
  }
}

TEST_F(ExecutorConcurrencyTest, RawExecutorsShareOneDatabaseSafely) {
  // Bypass the pool: eight plain threads, each with its own stack
  // QueryExecutor, all hammering the same database over the full batch.
  // Every thread must reproduce the reference answers exactly.
  QueryExecutor reference(db_.get());
  std::vector<KspResult> expected;
  for (const KspQuery& q : queries_) {
    auto r = reference.ExecuteSp(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(std::move(*r));
  }

  std::vector<std::vector<KspResult>> per_thread(kThreads);
  std::vector<Status> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryExecutor executor(db_.get());
      for (const KspQuery& q : queries_) {
        auto r = executor.ExecuteSp(q);
        if (!r.ok()) {
          errors[t] = r.status();
          return;
        }
        per_thread[t].push_back(std::move(*r));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(errors[t].ok()) << "thread " << t << ": "
                                << errors[t].ToString();
    ExpectSameResults(expected, per_thread[t]);
  }
}

TEST_F(ExecutorConcurrencyTest, PoolSurvivesManySmallBatches) {
  // Regression against pool dispatch races: many generations of tiny
  // batches on a persistent pool (TSan exercises the handoff protocol).
  QueryExecutorPool pool(db_.get(), kThreads);
  BatchRunOptions serial;
  serial.algorithm = KspAlgorithm::kSpp;
  auto expected = RunQueryBatch(*db_, queries_, serial);
  ASSERT_TRUE(expected.ok());
  for (int round = 0; round < 10; ++round) {
    auto got = pool.Run(queries_, KspAlgorithm::kSpp);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameResults(*expected, *got);
  }
}

}  // namespace
}  // namespace ksp
