// The mini-SPARQL layer (parser + BGP evaluator + spatial filter) over
// the Figure 1 knowledge base.

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/fixtures.h"
#include "sparql/evaluator.h"
#include "sparql/parser.h"

namespace ksp {
namespace sparql {
namespace {

constexpr const char* kE = "http://example.org/";

class SparqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = BuildFigure1KnowledgeBase();
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    evaluator_ = std::make_unique<SparqlEvaluator>(kb_.get());
  }

  VertexId Vertex(const std::string& local) {
    auto v = kb_->FindVertex(kE + local);
    EXPECT_TRUE(v.has_value()) << local;
    return *v;
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<SparqlEvaluator> evaluator_;
};

TEST_F(SparqlTest, ParserBasics) {
  auto q = ParseSelectQuery(
      "SELECT ?a ?b WHERE { ?a <http://e/p> ?b . } LIMIT 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_TRUE(q->patterns[0].subject.is_variable());
  EXPECT_EQ(q->patterns[0].predicate.value, "http://e/p");
  EXPECT_EQ(q->limit, 5u);
}

TEST_F(SparqlTest, ParserSelectStarAndFilter) {
  auto q = ParseSelectQuery(
      "select * where { ?x <http://e/p> <http://e/O> "
      "FILTER(distance(?x, POINT(43.5, 4.7)) < 2.5) }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->select.empty());
  ASSERT_EQ(q->filters.size(), 1u);
  EXPECT_EQ(q->filters[0].variable, "x");
  EXPECT_DOUBLE_EQ(q->filters[0].center.x, 43.5);
  EXPECT_DOUBLE_EQ(q->filters[0].radius, 2.5);
}

TEST_F(SparqlTest, ParserRejectsBadInput) {
  const char* bad[] = {
      "",
      "WHERE { ?a <p> ?b }",
      "SELECT WHERE { ?a <http://e/p> ?b }",
      "SELECT ?a { ?a <http://e/p> ?b }",          // Missing WHERE.
      "SELECT ?a WHERE { ?a <http://e/p> ?b",      // Unterminated.
      "SELECT ?a WHERE { }",                       // No patterns.
      "SELECT ?a WHERE { ?a <http://e/p> \"x\" }",  // Literal object.
      "SELECT ?a WHERE { OPTIONAL { ?a <http://e/p> ?b } }",
      "SELECT ?a WHERE { ?a <http://e/p> ?b } LIMIT -3",
      "SELECT ?a WHERE { ?a <http://e/p> ?b } trailing",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseSelectQuery(text).ok()) << text;
  }
}

TEST_F(SparqlTest, BoundSubjectLookup) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?who WHERE { <http://example.org/Montmajour_Abbey> "
      "<http://example.org/dedication> ?who }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].values[0], Vertex("Saint_Peter"));
}

TEST_F(SparqlTest, BoundObjectLookup) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?s WHERE { ?s <http://example.org/birthPlace> "
      "<http://example.org/Roman_Empire> }");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].values[0], Vertex("Saint_Peter"));
}

TEST_F(SparqlTest, PredicateOnlyScan) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?s ?o WHERE { ?s <http://example.org/subject> ?o }");
  ASSERT_TRUE(result.ok());
  // Two subject-edges: p1 -> v1 and v1 -> v4.
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(SparqlTest, TwoPatternJoin) {
  // Places dedicated to someone born in the Roman Empire.
  auto result = evaluator_->ExecuteText(
      "SELECT ?place ?saint WHERE { "
      "  ?place <http://example.org/dedication> ?saint . "
      "  ?saint <http://example.org/birthPlace> "
      "<http://example.org/Roman_Empire> . }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].values[0], Vertex("Montmajour_Abbey"));
  EXPECT_EQ(result->rows[0].values[1], Vertex("Saint_Peter"));
}

TEST_F(SparqlTest, SpatialFilterSelectsNearbyPlace) {
  // Entities with a patron, restricted to places near q2 (the diocese).
  auto result = evaluator_->ExecuteText(
      "SELECT ?p WHERE { ?p <http://example.org/patron> ?x "
      "FILTER(distance(?p, POINT(43.17, 5.90)) < 1.0) }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].values[0],
            Vertex("Roman_Catholic_Diocese_of_Frejus_Toulon"));

  // Shrinking the radius below the distance empties the result.
  auto empty = evaluator_->ExecuteText(
      "SELECT ?p WHERE { ?p <http://example.org/patron> ?x "
      "FILTER(distance(?p, POINT(43.17, 5.90)) < 0.01) }");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->rows.empty());
}

TEST_F(SparqlTest, FilterOnNonPlaceVariableEmpties) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?x WHERE { <http://example.org/Montmajour_Abbey> "
      "<http://example.org/dedication> ?x "
      "FILTER(distance(?x, POINT(0, 0)) < 10000) }");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());  // Saint_Peter has no coordinates.
}

TEST_F(SparqlTest, LimitStopsEnumeration) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?s ?o WHERE { ?s <http://example.org/subject> ?o } LIMIT 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(SparqlTest, UnknownIriYieldsEmpty) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?o WHERE { <http://example.org/Nowhere> "
      "<http://example.org/dedication> ?o }");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(SparqlTest, UnknownPredicateYieldsEmpty) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?s WHERE { ?s <http://example.org/noSuchPredicate> ?o }");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(SparqlTest, VariablePredicateRejected) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?s WHERE { ?s ?p ?o }");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(SparqlTest, SelectVariableMustOccur) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?ghost WHERE { ?s <http://example.org/subject> ?o }");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(SparqlTest, SharedVariableAcrossPatterns) {
  // ?x is both object and subject (path of length 2 from p1).
  auto result = evaluator_->ExecuteText(
      "SELECT ?x ?y WHERE { "
      "<http://example.org/Montmajour_Abbey> <http://example.org/subject> "
      "?x . ?x <http://example.org/subject> ?y }");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].values[0], Vertex("Romanesque_architecture"));
  EXPECT_EQ(result->rows[0].values[1], Vertex("Architectural_history"));
}

TEST_F(SparqlTest, ToTableRendersIris) {
  auto result = evaluator_->ExecuteText(
      "SELECT ?who WHERE { <http://example.org/Montmajour_Abbey> "
      "<http://example.org/dedication> ?who }");
  ASSERT_TRUE(result.ok());
  std::string table = evaluator_->ToTable(*result);
  EXPECT_NE(table.find("?who"), std::string::npos);
  EXPECT_NE(table.find("Saint_Peter"), std::string::npos);
}

}  // namespace
}  // namespace sparql
}  // namespace ksp
