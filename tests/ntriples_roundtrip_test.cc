// Property test: serialize -> parse round-trips arbitrary triples,
// including hostile literal content.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "rdf/ntriples_parser.h"

namespace ksp {
namespace {

std::string RandomIri(Rng* rng) {
  static const char* kHosts[] = {"http://a.org/", "http://b.net/x#",
                                 "https://kb.example/r/"};
  std::string iri = kHosts[rng->NextBounded(3)];
  size_t len = 1 + rng->NextBounded(12);
  for (size_t i = 0; i < len; ++i) {
    iri.push_back(static_cast<char>('a' + rng->NextBounded(26)));
  }
  return iri;
}

std::string RandomLiteral(Rng* rng) {
  // Includes characters that must be escaped.
  static const char kAlphabet[] =
      "abc XYZ 123 \"quote\" \\back\nnew\ttab\rcr";
  std::string out;
  size_t len = rng->NextBounded(30);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

TEST(NTriplesRoundTripTest, RandomTriplesSurviveSerialization) {
  Rng rng(2024);
  NTriplesParser parser;
  for (int trial = 0; trial < 500; ++trial) {
    Triple original;
    original.subject = RandomIri(&rng);
    original.predicate = RandomIri(&rng);
    switch (rng.NextBounded(4)) {
      case 0:
        original.object = RandomIri(&rng);
        original.object_kind = ObjectKind::kIri;
        break;
      case 1:
        original.object = RandomLiteral(&rng);
        original.object_kind = ObjectKind::kLiteral;
        break;
      case 2:
        original.object = RandomLiteral(&rng);
        original.object_kind = ObjectKind::kLiteral;
        original.language = "en";
        break;
      default:
        original.object = RandomLiteral(&rng);
        original.object_kind = ObjectKind::kLiteral;
        original.datatype = RandomIri(&rng);
        break;
    }
    std::string line = ToNTriplesLine(original);
    auto parsed = parser.ParseLine(line);
    ASSERT_TRUE(parsed.ok())
        << parsed.status().ToString() << "\nline: " << line;
    EXPECT_EQ(*parsed, original) << "line: " << line;
  }
}

TEST(NTriplesRoundTripTest, BlankNodeRoundTrip) {
  NTriplesParser parser;
  Triple t;
  t.subject = "_:node1";
  t.predicate = "http://p";
  t.object = "_:node2";
  auto parsed = parser.ParseLine(ToNTriplesLine(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(NTriplesRoundTripTest, DocumentRoundTrip) {
  // A multi-line document round-trips through ParseString.
  Rng rng(7);
  NTriplesParser parser;
  std::vector<Triple> originals;
  std::string doc;
  for (int i = 0; i < 100; ++i) {
    Triple t;
    t.subject = RandomIri(&rng);
    t.predicate = RandomIri(&rng);
    t.object = RandomLiteral(&rng);
    t.object_kind = ObjectKind::kLiteral;
    originals.push_back(t);
    doc += ToNTriplesLine(t);
    doc += "\n";
  }
  std::vector<Triple> parsed;
  auto count = parser.ParseString(doc, [&](const Triple& t) {
    parsed.push_back(t);
  });
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  ASSERT_EQ(parsed.size(), originals.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], originals[i]) << i;
  }
}

}  // namespace
}  // namespace ksp
