#include "alpha/alpha_index.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

TEST(AlphaIndexTest, Figure1Table3Neighborhoods) {
  // Table 3 (α = 1): dg(p1, ancient) = 1, dg(p1, catholic) = 1,
  // dg(p1, roman) = 1, history not within radius 1 of p1;
  // dg(p2, catholic) = 0, dg(p2, roman) = 0, dg(p2, history) = 1,
  // ancient not within radius 1 of p2. Node N over {p1, p2} takes the
  // term-wise minima.
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  AlphaIndex alpha = AlphaIndex::Build(**kb, db.rtree(), 1);

  auto terms = (*kb)->LookupTerms(Figure1QueryKeywords());
  const TermId ancient = terms[0];
  const TermId roman = terms[1];
  const TermId catholic = terms[2];
  const TermId history = terms[3];

  const PlaceId p1 =
      (*kb)->place_of(*(*kb)->FindVertex("http://example.org/Montmajour_Abbey"));
  const PlaceId p2 = (*kb)->place_of(*(*kb)->FindVertex(
      "http://example.org/Roman_Catholic_Diocese_of_Frejus_Toulon"));

  EXPECT_EQ(alpha.EntryTermDistance(alpha.PlaceEntry(p1), ancient), 1u);
  EXPECT_EQ(alpha.EntryTermDistance(alpha.PlaceEntry(p1), catholic), 1u);
  EXPECT_EQ(alpha.EntryTermDistance(alpha.PlaceEntry(p1), roman), 1u);
  EXPECT_FALSE(
      alpha.EntryTermDistance(alpha.PlaceEntry(p1), history).has_value());

  EXPECT_EQ(alpha.EntryTermDistance(alpha.PlaceEntry(p2), catholic), 0u);
  EXPECT_EQ(alpha.EntryTermDistance(alpha.PlaceEntry(p2), roman), 0u);
  EXPECT_EQ(alpha.EntryTermDistance(alpha.PlaceEntry(p2), history), 1u);
  EXPECT_FALSE(
      alpha.EntryTermDistance(alpha.PlaceEntry(p2), ancient).has_value());

  // Root node word neighborhood = min over both places ("abbey" at 0 via
  // p1, catholic/roman at 0 via p2, history at 1, ancient at 1).
  const uint32_t root_entry = alpha.NodeEntry(db.rtree().root());
  EXPECT_EQ(alpha.EntryTermDistance(root_entry, ancient), 1u);
  EXPECT_EQ(alpha.EntryTermDistance(root_entry, catholic), 0u);
  EXPECT_EQ(alpha.EntryTermDistance(root_entry, roman), 0u);
  EXPECT_EQ(alpha.EntryTermDistance(root_entry, history), 1u);
  TermId abbey = (*kb)->LookupTerms({"abbey"})[0];
  EXPECT_EQ(alpha.EntryTermDistance(root_entry, abbey), 0u);
}

TEST(AlphaIndexTest, LargerAlphaCoversHistoryAtP1) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  AlphaIndex alpha = AlphaIndex::Build(**kb, db.rtree(), 2);
  TermId history = (*kb)->LookupTerms({"history"})[0];
  const PlaceId p1 =
      (*kb)->place_of(*(*kb)->FindVertex("http://example.org/Montmajour_Abbey"));
  EXPECT_EQ(alpha.EntryTermDistance(alpha.PlaceEntry(p1), history), 2u);
}

TEST(AlphaIndexTest, SizeGrowsWithAlpha) {
  // Table 6's trend: the WN inverted file grows with α.
  auto profile = SyntheticProfile::DBpediaLike(2000);
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  uint64_t last = 0;
  for (uint32_t a : {1u, 2u, 3u}) {
    AlphaIndex alpha = AlphaIndex::Build(**kb, db.rtree(), a);
    EXPECT_GE(alpha.TotalEntries(), last) << "alpha " << a;
    last = alpha.TotalEntries();
    EXPECT_GT(alpha.SizeBytes(), 0u);
  }
}

TEST(AlphaIndexTest, BoundsAreValidLowerBounds) {
  // Property (Lemmas 2 and 4): for random queries, the α-bound of a place
  // never exceeds its true TQSP looseness, and a node's bound never
  // exceeds any enclosed place's bound.
  auto profile = SyntheticProfile::YagoLike(1500);
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  const uint32_t a = 2;
  AlphaIndex alpha = AlphaIndex::Build(**kb, db.rtree(), a);

  // A fixed handful of frequent terms as the query.
  std::vector<TermId> terms = {0, 1, 2};
  auto bound_of = [&](uint32_t entry) {
    double b = 1.0;
    for (TermId t : terms) {
      auto d = alpha.EntryTermDistance(entry, t);
      b += d.has_value() ? static_cast<double>(*d)
                         : static_cast<double>(a + 1);
    }
    return b;
  };

  KspQuery query;
  query.keywords = terms;
  query.k = 1;
  const uint32_t num_places = (*kb)->num_places();
  for (PlaceId p = 0; p < std::min<uint32_t>(num_places, 200); ++p) {
    auto tree = executor.ComputeTqspForPlace(p, query);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    if (tree->IsQualified()) {
      EXPECT_LE(bound_of(alpha.PlaceEntry(p)), tree->looseness)
          << "place " << p;
    }
  }

  // Node bound <= min over children bounds.
  const RTree& rtree = db.rtree();
  for (uint32_t node_id = 0; node_id < rtree.num_nodes(); ++node_id) {
    const RTree::Node& node = rtree.node(node_id);
    double node_bound = bound_of(alpha.NodeEntry(node_id));
    for (const RTree::Entry& e : node.entries) {
      uint32_t child_entry =
          node.is_leaf ? alpha.PlaceEntry(static_cast<PlaceId>(e.id))
                       : alpha.NodeEntry(static_cast<uint32_t>(e.id));
      EXPECT_LE(node_bound, bound_of(child_entry) + 1e-12);
    }
  }
}

TEST(AlphaIndexTest, EmptyPostingsForUnknownTerm) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  AlphaIndex alpha = AlphaIndex::Build(**kb, db.rtree(), 1);
  EXPECT_TRUE(alpha.TermPostings(999999).empty());
  EXPECT_FALSE(alpha.EntryTermDistance(0, 999999).has_value());
}

}  // namespace
}  // namespace ksp
