#include "datagen/sampler.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace ksp {
namespace {

TEST(SamplerTest, SampleHasRequestedSize) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::YagoLike(4000));
  ASSERT_TRUE(kb.ok());
  auto sample = RandomJumpSample(**kb, 1000, 0.15, 7);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  EXPECT_EQ((*sample)->num_vertices(), 1000u);
  // Induced subgraph has no more edges than the original.
  EXPECT_LE((*sample)->num_edges(), (*kb)->num_edges());
  EXPECT_GT((*sample)->num_edges(), 0u);
}

TEST(SamplerTest, PlacesAndCoordinatesPreserved) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::YagoLike(3000));
  ASSERT_TRUE(kb.ok());
  auto sample = RandomJumpSample(**kb, 800, 0.15, 11);
  ASSERT_TRUE(sample.ok());
  EXPECT_GT((*sample)->num_places(), 0u);
  // Every sampled place keeps its original coordinates.
  for (PlaceId p = 0; p < (*sample)->num_places(); ++p) {
    VertexId v = (*sample)->place_vertex(p);
    auto original = (*kb)->FindVertex((*sample)->VertexIri(v));
    ASSERT_TRUE(original.has_value());
    PlaceId op = (*kb)->place_of(*original);
    ASSERT_NE(op, kInvalidPlace);
    EXPECT_EQ((*sample)->place_location(p), (*kb)->place_location(op));
  }
}

TEST(SamplerTest, DocumentsPreserved) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(2000));
  ASSERT_TRUE(kb.ok());
  auto sample = RandomJumpSample(**kb, 500, 0.15, 13);
  ASSERT_TRUE(sample.ok());
  // Every original document term string survives in the sampled vertex.
  const auto& skb = **sample;
  for (VertexId v = 0; v < std::min<VertexId>(skb.num_vertices(), 50); ++v) {
    auto original = (*kb)->FindVertex(skb.VertexIri(v));
    ASSERT_TRUE(original.has_value());
    for (TermId t : (*kb)->documents().Terms(*original)) {
      auto mapped = skb.vocabulary().Lookup((*kb)->vocabulary().Term(t));
      ASSERT_TRUE(mapped.has_value());
      EXPECT_TRUE(skb.documents().Contains(v, *mapped));
    }
  }
}

TEST(SamplerTest, RequestLargerThanGraphClamps) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::YagoLike(300));
  ASSERT_TRUE(kb.ok());
  auto sample = RandomJumpSample(**kb, 5000, 0.15, 17);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ((*sample)->num_vertices(), (*kb)->num_vertices());
}

TEST(SamplerTest, EmptyKbRejected) {
  KnowledgeBaseBuilder builder;
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  auto sample = RandomJumpSample(**kb, 10, 0.15, 19);
  EXPECT_FALSE(sample.ok());
}

TEST(SamplerTest, DeterministicForSeed) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::YagoLike(1000));
  ASSERT_TRUE(kb.ok());
  auto a = RandomJumpSample(**kb, 300, 0.15, 23);
  auto b = RandomJumpSample(**kb, 300, 0.15, 23);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->num_vertices(), (*b)->num_vertices());
  EXPECT_EQ((*a)->num_edges(), (*b)->num_edges());
  EXPECT_EQ((*a)->num_places(), (*b)->num_places());
}

}  // namespace
}  // namespace ksp
