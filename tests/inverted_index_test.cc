#include "text/inverted_index.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "text/document_store.h"

namespace ksp {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

DocumentStore MakeStore(
    const std::vector<std::vector<TermId>>& docs_by_vertex) {
  DocumentStoreBuilder builder;
  for (VertexId v = 0; v < docs_by_vertex.size(); ++v) {
    for (TermId t : docs_by_vertex[v]) builder.AddTerm(v, t);
  }
  return builder.Finish(static_cast<VertexId>(docs_by_vertex.size()));
}

TEST(MemoryInvertedIndexTest, PostingsAreSortedByVertex) {
  DocumentStore store = MakeStore({{1}, {0, 1}, {1, 2}});
  auto index = MemoryInvertedIndex::Build(store, 3);

  auto l0 = index.Postings(0);
  ASSERT_EQ(l0.size(), 1u);
  EXPECT_EQ(l0[0], 1u);

  auto l1 = index.Postings(1);
  ASSERT_EQ(l1.size(), 3u);
  EXPECT_EQ(l1[0], 0u);
  EXPECT_EQ(l1[1], 1u);
  EXPECT_EQ(l1[2], 2u);

  EXPECT_EQ(index.NumPostings(), 5u);
  EXPECT_EQ(index.NumTerms(), 3u);
  EXPECT_NEAR(index.AveragePostingLength(), 5.0 / 3.0, 1e-12);
}

TEST(MemoryInvertedIndexTest, UnknownTermIsEmpty) {
  DocumentStore store = MakeStore({{0}});
  auto index = MemoryInvertedIndex::Build(store, 1);
  EXPECT_TRUE(index.Postings(5).empty());
  std::vector<VertexId> out;
  ASSERT_TRUE(index.GetPostings(5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(MemoryInvertedIndexTest, TermWithNoPostings) {
  DocumentStore store = MakeStore({{0}, {2}});
  auto index = MemoryInvertedIndex::Build(store, 3);
  EXPECT_TRUE(index.Postings(1).empty());
  EXPECT_EQ(index.NumTerms(), 2u);  // Terms 0 and 2 only.
  EXPECT_EQ(index.TermCount(), 3u);
}

TEST(MemoryInvertedIndexTest, PostingsSpanIsZeroCopy) {
  DocumentStore store = MakeStore({{1}, {0, 1}, {1, 2}, {}, {0, 2}});
  auto index = MemoryInvertedIndex::Build(store, 3);
  for (TermId t = 0; t < 3; ++t) {
    auto span = index.PostingsSpan(t);
    ASSERT_TRUE(span.has_value()) << "term " << t;
    std::vector<VertexId> copy;
    ASSERT_TRUE(index.GetPostings(t, &copy).ok());
    EXPECT_EQ(std::vector<VertexId>(span->begin(), span->end()), copy);
    // The span aliases the index's own storage — no copy was made.
    EXPECT_EQ(span->data(), index.Postings(t).data());
  }
  auto unknown = index.PostingsSpan(9);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_TRUE(unknown->empty());
}

TEST(DiskInvertedIndexTest, PostingsSpanUnsupported) {
  DocumentStore store = MakeStore({{0, 1}});
  auto mem = MemoryInvertedIndex::Build(store, 2);
  std::string path = TempPath("ksp_disk_index_span.idx");
  ASSERT_TRUE(DiskInvertedIndex::Write(mem, path).ok());
  auto opened = DiskInvertedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  // Disk postings decode per call, so the zero-copy view is declined and
  // callers must fall back to GetPostings.
  EXPECT_FALSE((*opened)->PostingsSpan(0).has_value());
  std::remove(path.c_str());
}

TEST(DiskInvertedIndexTest, RoundTripSmall) {
  DocumentStore store = MakeStore({{1}, {0, 1}, {1, 2}, {}, {0, 2}});
  auto mem = MemoryInvertedIndex::Build(store, 3);
  std::string path = TempPath("ksp_disk_index_small.idx");
  ASSERT_TRUE(DiskInvertedIndex::Write(mem, path).ok());

  auto opened = DiskInvertedIndex::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& disk = *opened.value();
  EXPECT_EQ(disk.NumPostings(), mem.NumPostings());
  for (TermId t = 0; t < 3; ++t) {
    std::vector<VertexId> mem_list;
    std::vector<VertexId> disk_list;
    ASSERT_TRUE(mem.GetPostings(t, &mem_list).ok());
    ASSERT_TRUE(disk.GetPostings(t, &disk_list).ok());
    EXPECT_EQ(mem_list, disk_list) << "term " << t;
  }
  std::remove(path.c_str());
}

TEST(DiskInvertedIndexTest, RandomizedEquivalenceWithMemory) {
  // Property: disk and memory indexes return identical postings.
  Rng rng(77);
  std::vector<std::vector<TermId>> docs(500);
  const TermId num_terms = 80;
  for (auto& doc : docs) {
    size_t len = rng.NextBounded(12);
    for (size_t i = 0; i < len; ++i) {
      doc.push_back(static_cast<TermId>(rng.NextBounded(num_terms)));
    }
  }
  DocumentStore store = MakeStore(docs);
  auto mem = MemoryInvertedIndex::Build(store, num_terms);
  std::string path = TempPath("ksp_disk_index_random.idx");
  ASSERT_TRUE(DiskInvertedIndex::Write(mem, path).ok());
  auto opened = DiskInvertedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  for (TermId t = 0; t < num_terms; ++t) {
    std::vector<VertexId> a;
    std::vector<VertexId> b;
    ASSERT_TRUE(mem.GetPostings(t, &a).ok());
    ASSERT_TRUE((*opened)->GetPostings(t, &b).ok());
    ASSERT_EQ(a, b) << "term " << t;
  }
  EXPECT_EQ((*opened)->NumPostings(), mem.NumPostings());
  std::remove(path.c_str());
}

TEST(DiskInvertedIndexTest, EmptyIndexRoundTrips) {
  DocumentStore store = MakeStore({});
  auto mem = MemoryInvertedIndex::Build(store, 0);
  std::string path = TempPath("ksp_disk_index_empty.idx");
  ASSERT_TRUE(DiskInvertedIndex::Write(mem, path).ok());
  auto opened = DiskInvertedIndex::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->NumTerms(), 0u);
  std::remove(path.c_str());
}

TEST(DiskInvertedIndexTest, OpenMissingFileFails) {
  auto opened = DiskInvertedIndex::Open(TempPath("does_not_exist.idx"));
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsIOError());
}

TEST(DiskInvertedIndexTest, CorruptFooterRejected) {
  DocumentStore store = MakeStore({{0, 1}});
  auto mem = MemoryInvertedIndex::Build(store, 2);
  std::string path = TempPath("ksp_disk_index_corrupt.idx");
  ASSERT_TRUE(DiskInvertedIndex::Write(mem, path).ok());
  // Flip a footer byte.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    std::fputc('X', f);
    std::fclose(f);
  }
  auto opened = DiskInvertedIndex::Open(path);
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ksp
