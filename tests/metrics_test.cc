// MetricsRegistry semantics: counter/gauge/histogram behaviour, shard
// merging under concurrency (run under TSan in CI — see sanitize.yml),
// snapshot merging across registries, and the Prometheus/JSON export
// golden strings DESIGN.md §7 declares stable.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"

namespace ksp {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, EightThreadsNeverLoseIncrements) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Add(-1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.25);
  gauge.Set(7.0);  // Last write wins over accumulated state.
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.0);
}

TEST(GaugeTest, ConcurrentAddIsExact) {
  // Add uses a CAS loop, so concurrent deltas must all land.
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketAssignmentUsesLeSemantics) {
  Histogram histogram({1.0, 2.5, 10.0});
  histogram.Observe(0.5);   // le=1
  histogram.Observe(1.0);   // le=1: equal to the bound stays in it.
  histogram.Observe(2.0);   // le=2.5
  histogram.Observe(10.5);  // +Inf overflow
  HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 0u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 14.0);
}

TEST(HistogramTest, QuantilesInterpolateInsideTheCrossingBucket) {
  Histogram histogram({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) histogram.Observe(v);
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_NEAR(snapshot.p50(), 50.0, 1.0);
  EXPECT_NEAR(snapshot.p95(), 95.0, 1.0);
  EXPECT_NEAR(snapshot.p99(), 99.0, 1.0);
  EXPECT_NEAR(snapshot.Quantile(0.0), 1.0, 1.0);
  EXPECT_NEAR(snapshot.Quantile(1.0), 100.0, 1.0);
}

TEST(HistogramTest, EmptySnapshotQuantileIsZero) {
  Histogram histogram({1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram.Snapshot().p99(), 0.0);
}

TEST(HistogramTest, EightThreadsNeverLoseObservations) {
  Histogram histogram(Histogram::DefaultLatencyBucketsMs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(static_cast<double>(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.Snapshot().count, kThreads * kPerThread);
}

TEST(HistogramTest, SnapshotMergeSumsBucketsCountsAndSums) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.Observe(0.5);
  b.Observe(1.5);
  b.Observe(5.0);
  HistogramSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.sum, 7.0);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 1u);
  EXPECT_EQ(merged.counts[2], 1u);
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ops_total");
  Counter* b = registry.GetCounter("ops_total");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("lat_ms", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("lat_ms", {1.0, 2.0});
  EXPECT_EQ(h1, h2);
}

TEST(RegistryTest, SnapshotIsDeterministicAcrossShardAssignments) {
  // The same increments issued from different threads (thus different
  // shards) must snapshot to the same merged values.
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("x_total")->Increment(7);
  std::thread shard_hopper([&b] { b.GetCounter("x_total")->Increment(3); });
  shard_hopper.join();
  b.GetCounter("x_total")->Increment(4);
  EXPECT_EQ(a.Snapshot().counters["x_total"],
            b.Snapshot().counters["x_total"]);
  EXPECT_EQ(a.Snapshot().ToJson(), b.Snapshot().ToJson());
}

TEST(RegistryTest, MergeSumsCountersAndMaxesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("queries_total")->Increment(10);
  b.GetCounter("queries_total")->Increment(5);
  b.GetCounter("only_b_total")->Increment(2);
  a.GetGauge("depth")->Set(3.0);
  b.GetGauge("depth")->Set(8.0);
  a.GetHistogram("lat_ms", {1.0})->Observe(0.5);
  b.GetHistogram("lat_ms", {1.0})->Observe(2.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.counters["queries_total"], 15u);
  EXPECT_EQ(merged.counters["only_b_total"], 2u);
  EXPECT_DOUBLE_EQ(merged.gauges["depth"], 8.0);
  EXPECT_EQ(merged.histograms["lat_ms"].count, 2u);
  EXPECT_DOUBLE_EQ(merged.histograms["lat_ms"].sum, 2.5);
}

/// Fills one registry with one metric of each kind, with exactly the
/// observations the export goldens below encode.
void FillGoldenRegistry(MetricsRegistry* registry) {
  registry->GetCounter("requests_total")->Increment(3);
  registry->GetGauge("pool_size")->Set(2.5);
  Histogram* histogram = registry->GetHistogram("lat_ms", {1.0, 2.5});
  histogram->Observe(0.5);
  histogram->Observe(2.0);
  histogram->Observe(7.0);
}

TEST(ExportTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  FillGoldenRegistry(&registry);
  EXPECT_EQ(registry.Snapshot().ToPrometheusText(),
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
            "# TYPE pool_size gauge\n"
            "pool_size 2.5\n"
            "# TYPE lat_ms histogram\n"
            "lat_ms_bucket{le=\"1\"} 1\n"
            "lat_ms_bucket{le=\"2.5\"} 2\n"
            "lat_ms_bucket{le=\"+Inf\"} 3\n"
            "lat_ms_sum 9.5\n"
            "lat_ms_count 3\n");
}

TEST(ExportTest, JsonGolden) {
  MetricsRegistry registry;
  FillGoldenRegistry(&registry);
  // p50: rank 2 of 3 falls in the (1, 2.5] bucket and lands on its upper
  // bound; p95/p99 cross into the +Inf bucket, which reports its lower
  // bound (2.5).
  EXPECT_EQ(registry.Snapshot().ToJson(),
            "{\n"
            "  \"counters\": {\n"
            "    \"requests_total\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"pool_size\": 2.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"lat_ms\": {\"count\": 3, \"sum\": 9.5, \"p50\": 2.5, "
            "\"p95\": 2.5, \"p99\": 2.5, \"buckets\": [{\"le\": 1, "
            "\"count\": 1}, {\"le\": 2.5, \"count\": 1}, {\"le\": \"+Inf\", "
            "\"count\": 1}]}\n"
            "  }\n"
            "}\n");
}

TEST(ExportTest, EmptyRegistryExports) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Snapshot().ToPrometheusText(), "");
  EXPECT_EQ(registry.Snapshot().ToJson(),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST(CacheMetricsTest, ExecutorExportsCacheCountersAndBytes) {
  // A cache-enabled executor must surface the §9 cache series through
  // the same registry as the query counters: warm repeats drive
  // ksp_cache_hits_total up, and the bytes gauge tracks residency.
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspOptions options;
  options.cache_budget_bytes = kCacheUnlimited;
  KspDatabase db(kb->get(), options);
  db.PrepareAll(3);

  MetricsRegistry registry;
  QueryExecutor executor(&db);
  executor.set_metrics(&registry);
  const KspQuery query = db.MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(executor.ExecuteSpp(query).ok());
  }

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_GT(snapshot.counters["ksp_cache_hits_total"], 0u);
  EXPECT_GT(snapshot.counters["ksp_cache_misses_total"], 0u);
  EXPECT_EQ(snapshot.counters["ksp_cache_evictions_total"], 0u);
  EXPECT_GT(snapshot.gauges["ksp_cache_bytes_total"], 0.0);
  EXPECT_DOUBLE_EQ(snapshot.gauges["ksp_cache_bytes_total"],
                   static_cast<double>(db.semantic_cache()->TotalBytes()));

  // And they reach the Prometheus exposition format by name.
  const std::string text = snapshot.ToPrometheusText();
  EXPECT_NE(text.find("ksp_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find("ksp_cache_misses_total"), std::string::npos);
  EXPECT_NE(text.find("ksp_cache_evictions_total"), std::string::npos);
  EXPECT_NE(text.find("ksp_cache_bytes_total"), std::string::npos);
}

TEST(CacheMetricsTest, CacheDisabledExportsZeroSeries) {
  // Budget 0: the series still exist (dashboards see a flat zero, not a
  // missing metric), but nothing ever hits and the gauge stays 0.
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.PrepareAll(3);
  ASSERT_EQ(db.semantic_cache(), nullptr);

  MetricsRegistry registry;
  QueryExecutor executor(&db);
  executor.set_metrics(&registry);
  const KspQuery query = db.MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  ASSERT_TRUE(executor.ExecuteSpp(query).ok());

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters["ksp_cache_hits_total"], 0u);
  EXPECT_EQ(snapshot.counters["ksp_cache_misses_total"], 0u);
  EXPECT_DOUBLE_EQ(snapshot.gauges["ksp_cache_bytes_total"], 0.0);
}

TEST(ExportTest, ConcurrentScrapeWhileWritingIsSafe) {
  // Scraping mid-write must be TSan-clean and never read torn values —
  // the snapshot may lag but each counter is monotone.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("ops_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) counter->Increment();
  });
  uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = registry.Snapshot().counters["ops_total"];
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace ksp
