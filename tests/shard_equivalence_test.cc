// Shard-equivalence oracle suite (DESIGN.md §12): the sharded
// scatter-gather executor must return byte-identical results to a single
// unsharded database — same places, same exact doubles, same order — for
// every algorithm, at every shard count, on both storage backends. The
// workload is the same 210 seeded queries the oracle and backend
// invariance suites pin, so a divergence here isolates the sharding
// layer itself.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "core/parallel.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "query_corpus.h"
#include "rdf/knowledge_base.h"
#include "shard/partition.h"
#include "shard/remote.h"
#include "shard/sharded_database.h"
#include "shard/sharded_executor.h"

namespace ksp {
namespace {

constexpr uint32_t kShardCounts[] = {1, 2, 4, 8};
constexpr KspAlgorithm kAlgorithms[] = {KspAlgorithm::kBsp,
                                        KspAlgorithm::kSpp,
                                        KspAlgorithm::kSp};

/// Exact comparison: bitwise-equal doubles, not just approximately
/// equal — the equivalence claim is byte-identical results.
void ExpectByteIdentical(const KspResult& want, const KspResult& got,
                         const std::string& context) {
  ASSERT_EQ(want.entries.size(), got.entries.size()) << context;
  for (size_t i = 0; i < want.entries.size(); ++i) {
    const KspResultEntry& w = want.entries[i];
    const KspResultEntry& g = got.entries[i];
    ASSERT_EQ(w.place, g.place) << context << " rank " << i;
    EXPECT_EQ(std::memcmp(&w.looseness, &g.looseness, sizeof(double)), 0)
        << context << " rank " << i << " looseness " << w.looseness
        << " vs " << g.looseness;
    EXPECT_EQ(std::memcmp(&w.spatial_distance, &g.spatial_distance,
                          sizeof(double)),
              0)
        << context << " rank " << i << " spatial " << w.spatial_distance
        << " vs " << g.spatial_distance;
    EXPECT_EQ(std::memcmp(&w.score, &g.score, sizeof(double)), 0)
        << context << " rank " << i << " score " << w.score << " vs "
        << g.score;
  }
}

class ShardEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1500));
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = kb->release();

    reference_ = new KspDatabase(kb_);
    reference_->PrepareAll(/*alpha=*/3);
    ASSERT_TRUE(reference_->storage_backend_status().ok());

    // The canonical 210-query seeded workload (tests/query_corpus.h).
    *queries_ = testing::MakeEquivalenceCorpus(*kb_);
    ASSERT_GE(queries_->size(), 200u);
  }

  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
    delete kb_;
    kb_ = nullptr;
    queries_->clear();
  }

  /// Reference result from the unsharded database, memoized across shard
  /// counts (the reference does not depend on K).
  const KspResult& Reference(KspAlgorithm algorithm, size_t query_index,
                             uint32_t k) {
    const auto key = std::make_tuple(algorithm, query_index, k);
    auto it = reference_cache_.find(key);
    if (it != reference_cache_.end()) return it->second;
    QueryExecutor executor(reference_);
    KspQuery query = (*queries_)[query_index];
    query.k = k;
    auto result = ExecuteWith(&executor, algorithm, query, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return reference_cache_.emplace(key, std::move(*result)).first->second;
  }

  /// Runs the full workload against `sharded` and diffs every result
  /// against the unsharded reference. Accumulates shards pruned into
  /// `total_pruned` when non-null.
  void CheckSharded(const ShardedKspDatabase& sharded,
                    ShardedExecutor* executor,
                    const std::vector<uint32_t>& ks,
                    const std::string& label,
                    uint64_t* total_pruned = nullptr) {
    uint32_t nonempty_shards = 0;
    for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
      if (sharded.shard(s) != nullptr) ++nonempty_shards;
    }
    for (KspAlgorithm algorithm : kAlgorithms) {
      for (size_t qi = 0; qi < queries_->size(); ++qi) {
        for (uint32_t k : ks) {
          KspQuery query = (*queries_)[qi];
          query.k = k;
          QueryStats stats;
          auto result = executor->Execute(algorithm, query, &stats);
          const std::string context =
              label + " " + KspAlgorithmName(algorithm) + " query " +
              std::to_string(qi) + " k=" + std::to_string(k);
          ASSERT_TRUE(result.ok())
              << context << ": " << result.status().ToString();
          ExpectByteIdentical(Reference(algorithm, qi, k), *result,
                              context);
          // Every non-empty shard is either visited or pruned (an
          // unanswerable query shortcuts with both zero).
          if (stats.shards_visited + stats.shards_pruned != 0) {
            ASSERT_EQ(stats.shards_visited + stats.shards_pruned,
                      nonempty_shards)
                << context;
          }
          if (total_pruned != nullptr) *total_pruned += stats.shards_pruned;
        }
      }
    }
  }

  static KnowledgeBase* kb_;
  static KspDatabase* reference_;
  static std::vector<KspQuery>* queries_;
  std::map<std::tuple<KspAlgorithm, size_t, uint32_t>, KspResult>
      reference_cache_;
};

KnowledgeBase* ShardEquivalenceTest::kb_ = nullptr;
KspDatabase* ShardEquivalenceTest::reference_ = nullptr;
std::vector<KspQuery>* ShardEquivalenceTest::queries_ =
    new std::vector<KspQuery>();

// Every shard count, every algorithm, every k, on the in-memory
// backend: byte-identical to unsharded, and shard-level pruning fires
// somewhere in the K>1 workloads.
TEST_F(ShardEquivalenceTest, MemoryBackendByteIdentical) {
  uint64_t pruned_at_any_k_gt1 = 0;
  for (uint32_t num_shards : kShardCounts) {
    auto partition = StrPartition(*kb_, num_shards);
    auto sharded = ShardedKspDatabase::Build(kb_, KspOptions(), partition,
                                             /*alpha=*/3);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ShardedExecutor executor(sharded->get());
    uint64_t pruned = 0;
    CheckSharded(**sharded, &executor, {1u, 5u, 10u},
                 "mem K=" + std::to_string(num_shards), &pruned);
    if (num_shards > 1) pruned_at_any_k_gt1 += pruned;
  }
  // The acceptance bar: at least one sharded configuration actually
  // skips shards, so the suite exercises the prune path, not just the
  // merge path.
  EXPECT_GT(pruned_at_any_k_gt1, 0u);
}

// Same claim with every shard living on the disk backend behind a small
// shared buffer pool.
TEST_F(ShardEquivalenceTest, DiskBackendByteIdentical) {
  for (uint32_t num_shards : kShardCounts) {
    auto partition = StrPartition(*kb_, num_shards);
    KspOptions options;
    options.backend = StorageBackend::kDisk;
    options.buffer_pool_budget_bytes = 1 << 20;
    auto sharded =
        ShardedKspDatabase::Build(kb_, options, partition, /*alpha=*/3);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_TRUE((*sharded)->storage_backend_status().ok());
    ShardedExecutor executor(sharded->get());
    CheckSharded(**sharded, &executor, {5u},
                 "disk K=" + std::to_string(num_shards));
  }
}

// The loopback channel round-trips every request and response through
// the wire codec (remote.h) before and after execution — a transport
// swap must not change a byte of the results. The shared-θ fast path is
// unavailable across the codec (remote shards only get the dispatch-time
// θ seed), which exercises the weaker-θ side of the exactness argument.
TEST_F(ShardEquivalenceTest, LoopbackTransportByteIdentical) {
  auto partition = StrPartition(*kb_, 4);
  auto sharded = ShardedKspDatabase::Build(kb_, KspOptions(), partition,
                                           /*alpha=*/3);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ShardedExecutor executor(sharded->get(),
                           MakeLoopbackChannels(**sharded));
  CheckSharded(**sharded, &executor, {5u}, "loopback K=4");
}

// Persistence round-trip: Save writes every shard plus the SHARDS
// manifest; Load rebuilds the ensemble on both backends and results stay
// byte-identical.
TEST_F(ShardEquivalenceTest, SaveLoadRoundTripByteIdentical) {
  auto partition = StrPartition(*kb_, 4);
  auto built = ShardedKspDatabase::Build(kb_, KspOptions(), partition,
                                         /*alpha=*/3);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string dir =
      ::testing::TempDir() + "/shard_equivalence_roundtrip";
  ASSERT_TRUE((*built)->Save(dir).ok());

  for (StorageBackend backend :
       {StorageBackend::kMemory, StorageBackend::kDisk}) {
    KspOptions options;
    options.backend = backend;
    if (backend == StorageBackend::kDisk) {
      options.buffer_pool_budget_bytes = 1 << 20;
    }
    auto loaded = ShardedKspDatabase::Load(kb_, options, dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_TRUE((*loaded)->storage_backend_status().ok());
    EXPECT_GT((*loaded)->index_generation(), 0u);
    ShardedExecutor executor(loaded->get());
    CheckSharded(**loaded, &executor, {5u},
                 backend == StorageBackend::kDisk ? "loaded-disk K=4"
                                                  : "loaded-mem K=4");
  }
}

}  // namespace
}  // namespace ksp
