#include "spatial/geometry.h"

#include <gtest/gtest.h>

namespace ksp {
namespace {

TEST(GeometryTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSq(Point{0, 0}, Point{3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance(Point{1, 1}, Point{1, 1}), 0.0);
}

TEST(GeometryTest, PaperExample5Distances) {
  // Figure 2: S(q1, p1) ≈ 0.22, S(q1, p2) ≈ 1.28, S(q2, p2) ≈ 0.08.
  Point p1{43.71, 4.66};
  Point p2{43.13, 5.97};
  Point q1{43.51, 4.75};
  Point q2{43.17, 5.90};
  EXPECT_NEAR(Distance(q1, p1), 0.22, 0.005);
  EXPECT_NEAR(Distance(q1, p2), 1.28, 0.005);
  EXPECT_NEAR(Distance(q2, p2), 0.08, 0.005);
  EXPECT_NEAR(Distance(q2, p1), 1.35, 0.005);
}

TEST(RectTest, EmptyRect) {
  Rect r = Rect::Empty();
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  r.ExpandToInclude(Point{1, 2});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);  // Degenerate point rect.
  EXPECT_TRUE(r.Contains(Point{1, 2}));
}

TEST(RectTest, ExpandAndArea) {
  Rect r = Rect::FromPoint(Point{0, 0});
  r.ExpandToInclude(Point{2, 3});
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_TRUE(r.Contains(Point{1, 1}));
  EXPECT_FALSE(r.Contains(Point{3, 1}));
  EXPECT_EQ(r.Center(), (Point{1.0, 1.5}));
}

TEST(RectTest, ExpandWithEmptyRectIsNoOp) {
  Rect r = Rect::FromPoint(Point{1, 1});
  Rect copy = r;
  r.ExpandToInclude(Rect::Empty());
  EXPECT_EQ(r, copy);
}

TEST(RectTest, EnlargedArea) {
  Rect r{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(r.EnlargedArea(Rect{0, 0, 2, 2}), 4.0);
  EXPECT_DOUBLE_EQ(r.EnlargedArea(Rect{0.2, 0.2, 0.5, 0.5}), 1.0);
}

TEST(RectTest, Intersects) {
  Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.Intersects(Rect{1, 1, 3, 3}));
  EXPECT_TRUE(a.Intersects(Rect{2, 2, 3, 3}));  // Touching counts.
  EXPECT_FALSE(a.Intersects(Rect{2.1, 0, 3, 1}));
}

TEST(MinDistTest, InsideIsZero) {
  Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(MinDist(Point{1, 1}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDist(Point{0, 0}, r), 0.0);  // Boundary.
}

TEST(MinDistTest, OutsideDistances) {
  Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(MinDist(Point{3, 1}, r), 1.0);   // Right side.
  EXPECT_DOUBLE_EQ(MinDist(Point{-1, 1}, r), 1.0);  // Left side.
  EXPECT_DOUBLE_EQ(MinDist(Point{5, 6}, r), 5.0);   // Corner: 3-4-5.
  EXPECT_DOUBLE_EQ(MinDistSq(Point{5, 6}, r), 25.0);
}

TEST(MinDistTest, LowerBoundsTrueDistanceToAnyContainedPoint) {
  Rect r{1, 1, 4, 5};
  Point q{-2, 7};
  for (Point p : {Point{1, 1}, Point{4, 5}, Point{2.5, 3.0}, Point{1, 5}}) {
    EXPECT_LE(MinDist(q, r), Distance(q, p));
  }
}

}  // namespace
}  // namespace ksp
