#include "common/strings.h"

#include <gtest/gtest.h>

namespace ksp {
namespace {

TEST(SplitAnyTest, BasicSplit) {
  auto parts = SplitAny("a,b;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitAnyTest, DropsEmptyPieces) {
  auto parts = SplitAny(",,a,,b,", ",");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(SplitAnyTest, EmptyInput) {
  EXPECT_TRUE(SplitAny("", ",").empty());
  EXPECT_TRUE(SplitAny(",,,", ",").empty());
}

TEST(SplitAnyTest, NoDelimiterReturnsWhole) {
  auto parts = SplitAny("whole", ",");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "whole");
}

TEST(AsciiToLowerTest, MixedCase) {
  EXPECT_EQ(AsciiToLower("MiXeD123!"), "mixed123!");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(TrimWhitespaceTest, Trims) {
  EXPECT_EQ(TrimWhitespace("  x \t"), "x");
  EXPECT_EQ(TrimWhitespace("x"), "x");
  EXPECT_EQ(TrimWhitespace(" \t\n "), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(50ull * 1024 * 1024), "50.00 MB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.00 GB");
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace ksp
