#include "datagen/query_gen.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

class QueryGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(3000));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
  }
  std::unique_ptr<KnowledgeBase> kb_;
};

TEST_F(QueryGenTest, OriginalQueriesAreWellFormed) {
  QueryGenOptions options;
  options.num_keywords = 5;
  options.k = 3;
  auto queries = GenerateQueries(*kb_, QueryClass::kOriginal, options, 20);
  ASSERT_EQ(queries.size(), 20u);
  for (const auto& q : queries) {
    EXPECT_EQ(q.k, 3u);
    EXPECT_LE(q.keywords.size(), 5u);
    EXPECT_FALSE(q.keywords.empty());
    for (TermId t : q.keywords) {
      EXPECT_NE(t, kInvalidTerm);
      EXPECT_LT(t, kb_->num_terms());
    }
  }
}

TEST_F(QueryGenTest, OriginalQueriesUsuallyHaveResults) {
  // Keywords are drawn from vertices reachable from a place, so most
  // queries must return at least one qualified semantic place.
  QueryGenOptions options;
  options.num_keywords = 4;
  options.k = 1;
  auto queries = GenerateQueries(*kb_, QueryClass::kOriginal, options, 15);
  ASSERT_FALSE(queries.empty());
  KspDatabase db(kb_.get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  size_t with_results = 0;
  for (const auto& q : queries) {
    auto result = executor.ExecuteBsp(q);
    ASSERT_TRUE(result.ok());
    if (!result->entries.empty()) ++with_results;
  }
  EXPECT_GE(with_results, queries.size() / 2);
}

TEST_F(QueryGenTest, DeterministicForSeed) {
  QueryGenOptions options;
  options.seed = 123;
  auto a = GenerateQueries(*kb_, QueryClass::kOriginal, options, 5);
  auto b = GenerateQueries(*kb_, QueryClass::kOriginal, options, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keywords, b[i].keywords);
    EXPECT_EQ(a[i].location, b[i].location);
  }
}

TEST_F(QueryGenTest, SdllKeywordsAreInfrequent) {
  QueryGenOptions options;
  options.num_keywords = 3;
  options.infrequent_threshold = 100;
  auto queries = GenerateQueries(*kb_, QueryClass::kSDLL, options, 10);
  for (const auto& q : queries) {
    EXPECT_EQ(q.keywords.size(), 3u);
    for (TermId t : q.keywords) {
      EXPECT_LT(kb_->inverted_index().Postings(t).size(), 100u);
    }
  }
}

TEST_F(QueryGenTest, LdllLocationsAreFar) {
  QueryGenOptions options;
  options.num_keywords = 3;
  auto sdll = GenerateQueries(*kb_, QueryClass::kSDLL, options, 8);
  auto ldll = GenerateQueries(*kb_, QueryClass::kLDLL, options, 8);
  if (sdll.empty() || ldll.empty()) {
    GTEST_SKIP() << "KB too sparse for large-looseness queries";
  }
  // LDLL queries sit ~90 longitude degrees away from every place cluster;
  // their nearest-place distance must dominate SDLL's.
  auto nearest_place_distance = [&](const KspQuery& q) {
    double best = 1e18;
    for (PlaceId p = 0; p < kb_->num_places(); ++p) {
      best = std::min(best, Distance(q.location, kb_->place_location(p)));
    }
    return best;
  };
  double sdll_max = 0;
  double ldll_min = 1e18;
  for (const auto& q : sdll) {
    sdll_max = std::max(sdll_max, nearest_place_distance(q));
  }
  for (const auto& q : ldll) {
    ldll_min = std::min(ldll_min, nearest_place_distance(q));
  }
  EXPECT_LT(sdll_max, ldll_min);
}

TEST_F(QueryGenTest, EmptyKbYieldsNoQueries) {
  KnowledgeBaseBuilder builder;
  builder.AddEntity("http://x.org/NoPlaces");
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  QueryGenOptions options;
  EXPECT_TRUE(
      GenerateQueries(**kb, QueryClass::kOriginal, options, 5).empty());
}

}  // namespace
}  // namespace ksp
