// Cross-thread-count determinism of the intra-query pipeline
// (DESIGN.md §8): BSP, SPP and SP answered with intra_query_threads ∈
// {1, 2, 4, 8} must produce byte-identical KspResults — places, scores,
// loosenesses, spatial distances, and full TQSP trees — and identical
// committed QueryStats counters (prunes, visits, node accesses) on 210
// seeded queries. Any divergence means the ordered-commit replay failed
// to reconstruct the sequential decision sequence.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/parallel.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "query_corpus.h"
#include "rdf/knowledge_base.h"

namespace ksp {
namespace {

struct QueryOutcome {
  KspResult result;
  QueryStats stats;
};

void ExpectIdenticalEntry(const KspResultEntry& got,
                          const KspResultEntry& want, const char* name,
                          size_t qi, size_t rank, uint32_t threads) {
  SCOPED_TRACE(::testing::Message()
               << name << " query " << qi << " rank " << rank
               << " threads=" << threads);
  EXPECT_EQ(got.place, want.place);
  EXPECT_EQ(got.looseness, want.looseness);
  EXPECT_EQ(got.spatial_distance, want.spatial_distance);
  EXPECT_EQ(got.score, want.score);
  // The full TQSP tree: the workers' BFS is the same code over the same
  // context, so even paths and match order must agree.
  EXPECT_EQ(got.tree.place, want.tree.place);
  EXPECT_EQ(got.tree.root, want.tree.root);
  EXPECT_EQ(got.tree.looseness, want.tree.looseness);
  ASSERT_EQ(got.tree.matches.size(), want.tree.matches.size());
  for (size_t m = 0; m < got.tree.matches.size(); ++m) {
    EXPECT_EQ(got.tree.matches[m].term, want.tree.matches[m].term);
    EXPECT_EQ(got.tree.matches[m].vertex, want.tree.matches[m].vertex);
    EXPECT_EQ(got.tree.matches[m].distance, want.tree.matches[m].distance);
    EXPECT_EQ(got.tree.matches[m].path, want.tree.matches[m].path);
  }
}

/// The determinism contract: every committed counter, not the times.
void ExpectIdenticalStats(const QueryStats& got, const QueryStats& want,
                          const char* name, size_t qi, uint32_t threads) {
  SCOPED_TRACE(::testing::Message()
               << name << " query " << qi << " threads=" << threads);
  EXPECT_EQ(got.completed, want.completed);
  EXPECT_EQ(got.tqsp_computations, want.tqsp_computations);
  EXPECT_EQ(got.rtree_nodes_accessed, want.rtree_nodes_accessed);
  EXPECT_EQ(got.vertices_visited, want.vertices_visited);
  EXPECT_EQ(got.reachability_queries, want.reachability_queries);
  EXPECT_EQ(got.pruned_unqualified, want.pruned_unqualified);
  EXPECT_EQ(got.pruned_dynamic_bound, want.pruned_dynamic_bound);
  EXPECT_EQ(got.pruned_alpha_place, want.pruned_alpha_place);
  EXPECT_EQ(got.pruned_alpha_node, want.pruned_alpha_node);
}

class IntraQueryParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1500));
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = kb->release();
    db_ = new KspDatabase(kb_);
    db_->PrepareAll(/*alpha=*/3);

    // The oracle suite's seeded workload (tests/query_corpus.h), with k
    // cycling {1, 5, 10}.
    *queries_ = testing::MakeEquivalenceCorpus(*kb_);
    ASSERT_GE(queries_->size(), 210u);
    const uint32_t ks[3] = {1, 5, 10};
    for (size_t qi = 0; qi < queries_->size(); ++qi) {
      (*queries_)[qi].k = ks[qi % 3];
    }
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete kb_;
    kb_ = nullptr;
    queries_->clear();
  }

  using Execute = Result<KspResult> (QueryExecutor::*)(const KspQuery&,
                                                       QueryStats*);

  /// Answers the whole workload on one executor configured for `threads`.
  static std::vector<QueryOutcome> RunAll(Execute execute, uint32_t threads,
                                          const char* name) {
    QueryExecutor executor(db_);
    executor.set_intra_query_threads(threads);
    std::vector<QueryOutcome> outcomes(queries_->size());
    for (size_t qi = 0; qi < queries_->size(); ++qi) {
      auto result = (executor.*execute)((*queries_)[qi], &outcomes[qi].stats);
      EXPECT_TRUE(result.ok()) << name << " query " << qi << " threads="
                               << threads << ": "
                               << result.status().ToString();
      if (result.ok()) outcomes[qi].result = std::move(*result);
    }
    return outcomes;
  }

  void CheckAlgorithm(Execute execute, const char* name) {
    const std::vector<QueryOutcome> sequential = RunAll(execute, 1, name);
    size_t nonempty = 0;
    for (const QueryOutcome& outcome : sequential) {
      // The sequential path never speculates.
      ASSERT_EQ(outcome.stats.speculative_wasted_tqsp, 0u);
      if (!outcome.result.entries.empty()) ++nonempty;
    }
    // Guard against a vacuous workload.
    ASSERT_GT(nonempty, queries_->size() / 2);

    for (uint32_t threads : {2u, 4u, 8u}) {
      const std::vector<QueryOutcome> parallel =
          RunAll(execute, threads, name);
      for (size_t qi = 0; qi < sequential.size(); ++qi) {
        const KspResult& want = sequential[qi].result;
        const KspResult& got = parallel[qi].result;
        ASSERT_EQ(got.entries.size(), want.entries.size())
            << name << " query " << qi << " threads=" << threads;
        for (size_t i = 0; i < want.entries.size(); ++i) {
          ExpectIdenticalEntry(got.entries[i], want.entries[i], name, qi, i,
                               threads);
        }
        ExpectIdenticalStats(parallel[qi].stats, sequential[qi].stats, name,
                             qi, threads);
      }
    }
  }

  static KnowledgeBase* kb_;
  static KspDatabase* db_;
  static std::vector<KspQuery>* queries_;
};

KnowledgeBase* IntraQueryParallelTest::kb_ = nullptr;
KspDatabase* IntraQueryParallelTest::db_ = nullptr;
std::vector<KspQuery>* IntraQueryParallelTest::queries_ =
    new std::vector<KspQuery>();

TEST_F(IntraQueryParallelTest, BspDeterministicAcrossThreadCounts) {
  CheckAlgorithm(&QueryExecutor::ExecuteBsp, "BSP");
}

TEST_F(IntraQueryParallelTest, SppDeterministicAcrossThreadCounts) {
  CheckAlgorithm(&QueryExecutor::ExecuteSpp, "SPP");
}

TEST_F(IntraQueryParallelTest, SpDeterministicAcrossThreadCounts) {
  CheckAlgorithm(&QueryExecutor::ExecuteSp, "SP");
}

TEST_F(IntraQueryParallelTest, KZeroAndUnanswerableEdgeCases) {
  QueryExecutor executor(db_);
  executor.set_intra_query_threads(4);
  // k = 0: θ = -inf terminates the commit at the very first stream item.
  KspQuery query = (*queries_)[0];
  query.k = 0;
  for (auto execute :
       {&QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
        &QueryExecutor::ExecuteSp}) {
    auto result = (executor.*execute)(query, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->entries.empty());
  }
  // Unanswerable (unknown keyword): the pipeline is never entered.
  KspQuery unanswerable = (*queries_)[0];
  unanswerable.keywords.push_back(kInvalidTerm);
  QueryStats stats;
  auto result = executor.ExecuteSpp(unanswerable, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->entries.empty());
  EXPECT_EQ(stats.tqsp_computations, 0u);
}

TEST_F(IntraQueryParallelTest, WastedSpeculationFlowsIntoMetrics) {
  MetricsRegistry registry;
  QueryExecutor executor(db_);
  executor.set_metrics(&registry);
  executor.set_intra_query_threads(4);
  uint64_t wasted_sum = 0;
  uint64_t committed_sum = 0;
  for (size_t qi = 0; qi < 30; ++qi) {
    QueryStats stats;
    ASSERT_TRUE(executor.ExecuteSpp((*queries_)[qi], &stats).ok());
    wasted_sum += stats.speculative_wasted_tqsp;
    committed_sum += stats.tqsp_computations;
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters["ksp_speculative_wasted_tqsp_total"],
            wasted_sum);
  EXPECT_EQ(snapshot.counters["ksp_tqsp_computations_total"], committed_sum);
}

TEST_F(IntraQueryParallelTest, ExplainStaysSequentialUnderParallelism) {
  QueryExecutor executor(db_);
  executor.set_intra_query_threads(8);
  // EXPLAIN needs the sequential candidate walk; the executor must fall
  // back even with parallelism configured.
  auto report = executor.Explain((*queries_)[0], KspAlgorithm::kSpp);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->termination.empty());
}

TEST_F(IntraQueryParallelTest, ExecutionOptionsPlumbThroughBatchApi) {
  BatchRunOptions options;
  options.algorithm = KspAlgorithm::kSpp;
  options.num_threads = 2;
  options.execution.intra_query_threads = 2;
  std::vector<KspQuery> batch(queries_->begin(), queries_->begin() + 20);
  auto parallel = RunQueryBatch(*db_, batch, options, nullptr);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  BatchRunOptions sequential_options;
  sequential_options.algorithm = KspAlgorithm::kSpp;
  auto sequential = RunQueryBatch(*db_, batch, sequential_options, nullptr);
  ASSERT_TRUE(sequential.ok());
  ASSERT_EQ(parallel->size(), sequential->size());
  for (size_t i = 0; i < parallel->size(); ++i) {
    ASSERT_EQ((*parallel)[i].entries.size(),
              (*sequential)[i].entries.size());
    for (size_t e = 0; e < (*parallel)[i].entries.size(); ++e) {
      EXPECT_EQ((*parallel)[i].entries[e].place,
                (*sequential)[i].entries[e].place);
      EXPECT_EQ((*parallel)[i].entries[e].score,
                (*sequential)[i].entries[e].score);
    }
  }
}

}  // namespace
}  // namespace ksp
