// Cross-algorithm QueryExecutor correctness: on random synthetic KBs and
// random queries, BSP, SPP, SP and TA must return exactly the scores of
// a brute-force oracle that evaluates every place. Pruning may only
// reduce work, never change answers. Parameterized over dataset profile,
// |q.ψ|, k and α. (The sharded executor's equivalence claim lives in
// shard_equivalence_test.cc.)

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

/// Brute force: score all places, take the best k by (score, place).
std::vector<std::pair<double, PlaceId>> BruteForceTopK(
    QueryExecutor* executor, const KspQuery& q) {
  const KspDatabase& db = executor->db();
  const KnowledgeBase& kb = db.kb();
  std::vector<std::pair<double, PlaceId>> scored;
  for (PlaceId p = 0; p < kb.num_places(); ++p) {
    auto tree = executor->ComputeTqspForPlace(p, q);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    if (!tree.ok() || !tree->IsQualified()) continue;
    double s = Distance(q.location, kb.place_location(p));
    scored.emplace_back(db.options().ranking.Score(tree->looseness, s), p);
  }
  std::sort(scored.begin(), scored.end());
  if (scored.size() > q.k) scored.resize(q.k);
  return scored;
}

void ExpectMatchesOracle(
    const KspResult& result,
    const std::vector<std::pair<double, PlaceId>>& oracle) {
  ASSERT_EQ(result.entries.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_NEAR(result.entries[i].score, oracle[i].first, 1e-9) << i;
    EXPECT_EQ(result.entries[i].place, oracle[i].second) << i;
    // Entry internals must be consistent.
    EXPECT_NEAR(result.entries[i].score,
                result.entries[i].looseness *
                    result.entries[i].spatial_distance,
                1e-9);
  }
}

struct Config {
  bool dbpedia_like;
  uint32_t num_keywords;
  uint32_t k;
  uint32_t alpha;
};

class EquivalenceTest : public ::testing::TestWithParam<Config> {};

TEST_P(EquivalenceTest, AllAlgorithmsMatchBruteForce) {
  const Config config = GetParam();
  auto profile = config.dbpedia_like ? SyntheticProfile::DBpediaLike(1200)
                                     : SyntheticProfile::YagoLike(1200);
  profile.seed += config.num_keywords * 17 + config.k;
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.PrepareAll(config.alpha);
  QueryExecutor executor(&db);

  QueryGenOptions qopt;
  qopt.num_keywords = config.num_keywords;
  qopt.k = config.k;
  qopt.seed = 1000 + config.alpha;
  auto queries =
      GenerateQueries(**kb, QueryClass::kOriginal, qopt, /*count=*/5);
  ASSERT_FALSE(queries.empty());

  for (const KspQuery& q : queries) {
    auto oracle = BruteForceTopK(&executor, q);
    QueryStats bsp_stats;
    QueryStats spp_stats;
    QueryStats sp_stats;
    QueryStats ta_stats;
    auto bsp = executor.ExecuteBsp(q, &bsp_stats);
    auto spp = executor.ExecuteSpp(q, &spp_stats);
    auto sp = executor.ExecuteSp(q, &sp_stats);
    auto ta = executor.ExecuteTa(q, &ta_stats);
    ASSERT_TRUE(bsp.ok()) << bsp.status().ToString();
    ASSERT_TRUE(spp.ok()) << spp.status().ToString();
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    ASSERT_TRUE(ta.ok()) << ta.status().ToString();

    ExpectMatchesOracle(*bsp, oracle);
    ExpectMatchesOracle(*spp, oracle);
    ExpectMatchesOracle(*sp, oracle);
    // TA entries: scores must match; trees are materialized post-hoc.
    ASSERT_EQ(ta->entries.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_NEAR(ta->entries[i].score, oracle[i].first, 1e-9);
      EXPECT_EQ(ta->entries[i].place, oracle[i].second);
    }

    // Pruning only reduces work.
    EXPECT_LE(spp_stats.tqsp_computations, bsp_stats.tqsp_computations);
    EXPECT_LE(sp_stats.rtree_nodes_accessed, bsp_stats.rtree_nodes_accessed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, EquivalenceTest,
    ::testing::Values(Config{true, 3, 5, 2}, Config{true, 5, 1, 3},
                      Config{true, 1, 10, 1}, Config{false, 3, 5, 2},
                      Config{false, 5, 3, 3}, Config{false, 8, 2, 2}));

TEST(EquivalenceWeightedSumTest, AlgorithmsAgreeUnderEquation1) {
  auto profile = SyntheticProfile::DBpediaLike(800);
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  KspOptions options;
  options.ranking = RankingFunction::WeightedSum(0.6);
  KspDatabase db(kb->get(), options);
  db.PrepareAll(2);
  QueryExecutor executor(&db);

  QueryGenOptions qopt;
  qopt.num_keywords = 4;
  qopt.k = 5;
  auto queries = GenerateQueries(**kb, QueryClass::kOriginal, qopt, 3);
  ASSERT_FALSE(queries.empty());
  for (const KspQuery& q : queries) {
    auto oracle = BruteForceTopK(&executor, q);
    for (auto exec : {&QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
                      &QueryExecutor::ExecuteSp, &QueryExecutor::ExecuteTa}) {
      auto result = (executor.*exec)(q, nullptr);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->entries.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_NEAR(result->entries[i].score, oracle[i].first, 1e-9);
      }
    }
  }
}

TEST(EquivalenceUndirectedTest, FutureWorkEdgeModeAgrees) {
  auto profile = SyntheticProfile::YagoLike(800);
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  KspOptions options;
  options.undirected_edges = true;
  KspDatabase db(kb->get(), options);
  db.PrepareAll(2);
  QueryExecutor executor(&db);

  QueryGenOptions qopt;
  qopt.num_keywords = 4;
  qopt.k = 4;
  auto queries = GenerateQueries(**kb, QueryClass::kOriginal, qopt, 3);
  ASSERT_FALSE(queries.empty());
  for (const KspQuery& q : queries) {
    auto oracle = BruteForceTopK(&executor, q);
    for (auto exec : {&QueryExecutor::ExecuteBsp, &QueryExecutor::ExecuteSpp,
                      &QueryExecutor::ExecuteSp, &QueryExecutor::ExecuteTa}) {
      auto result = (executor.*exec)(q, nullptr);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->entries.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_NEAR(result->entries[i].score, oracle[i].first, 1e-9);
        EXPECT_EQ(result->entries[i].place, oracle[i].second);
      }
    }
  }
}

TEST(TqspPropertyTest, LoosenessMatchesPerKeywordBfsOracle) {
  // L(T_p) must equal 1 + Σ_t min-BFS-distance(p, t), computed keyword by
  // keyword with an independent BFS.
  auto profile = SyntheticProfile::DBpediaLike(600);
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);

  QueryGenOptions qopt;
  qopt.num_keywords = 4;
  auto queries = GenerateQueries(**kb, QueryClass::kOriginal, qopt, 4);
  ASSERT_FALSE(queries.empty());

  const Graph& graph = (*kb)->graph();
  const DocumentStore& docs = (*kb)->documents();
  auto bfs_distance_to_term = [&](VertexId root, TermId term) -> double {
    std::vector<uint32_t> dist(graph.num_vertices(), 0xFFFFFFFFu);
    std::vector<VertexId> queue{root};
    dist[root] = 0;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      VertexId v = queue[qi];
      if (docs.Contains(v, term)) return dist[v];
      for (VertexId w : graph.OutNeighbors(v)) {
        if (dist[w] == 0xFFFFFFFFu) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
    return std::numeric_limits<double>::infinity();
  };

  for (const KspQuery& q : queries) {
    for (PlaceId p = 0; p < std::min<uint32_t>((*kb)->num_places(), 30);
         ++p) {
      auto tree_or = executor.ComputeTqspForPlace(p, q);
      ASSERT_TRUE(tree_or.ok()) << tree_or.status().ToString();
      const SemanticPlaceTree& tree = *tree_or;
      // Oracle over deduplicated keywords.
      std::vector<TermId> terms;
      for (TermId t : q.keywords) {
        if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
          terms.push_back(t);
        }
      }
      double expected = 1.0;
      for (TermId t : terms) {
        expected += bfs_distance_to_term((*kb)->place_vertex(p), t);
      }
      if (std::isinf(expected)) {
        EXPECT_FALSE(tree.IsQualified());
      } else {
        ASSERT_TRUE(tree.IsQualified());
        EXPECT_DOUBLE_EQ(tree.looseness, expected);
        // Matches must carry consistent paths.
        for (const auto& match : tree.matches) {
          ASSERT_FALSE(match.path.empty());
          EXPECT_EQ(match.path.front(), tree.root);
          EXPECT_EQ(match.path.back(), match.vertex);
          EXPECT_EQ(match.path.size(), match.distance + 1);
          EXPECT_TRUE(docs.Contains(match.vertex, match.term));
        }
      }
    }
  }
}

}  // namespace
}  // namespace ksp
