#include "rdf/kb_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void ExpectEquivalent(const KnowledgeBase& a, const KnowledgeBase& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_terms(), b.num_terms());
  ASSERT_EQ(a.num_places(), b.num_places());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.VertexIri(v), b.VertexIri(v));
    auto da = a.documents().Terms(v);
    auto db = b.documents().Terms(v);
    ASSERT_EQ(da.size(), db.size()) << v;
    for (size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i], db[i]);
      EXPECT_EQ(a.vocabulary().Term(da[i]), b.vocabulary().Term(db[i]));
    }
    auto na = a.graph().OutNeighbors(v);
    auto nb = b.graph().OutNeighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << v;
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
    EXPECT_EQ(a.graph().InDegree(v), b.graph().InDegree(v));
  }
  for (PlaceId p = 0; p < a.num_places(); ++p) {
    EXPECT_EQ(a.place_vertex(p), b.place_vertex(p));
    EXPECT_EQ(a.place_location(p), b.place_location(p));
  }
}

TEST(KbIoTest, Figure1RoundTrip) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  std::string path = TempPath("ksp_snapshot_fig1.kbsnap");
  ASSERT_TRUE(SaveKnowledgeBase(**kb, path).ok());
  auto loaded = LoadKnowledgeBaseSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalent(**kb, **loaded);
  std::remove(path.c_str());
}

TEST(KbIoTest, SyntheticRoundTripAndIdenticalQueryResults) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::YagoLike(1500));
  ASSERT_TRUE(kb.ok());
  std::string path = TempPath("ksp_snapshot_syn.kbsnap");
  ASSERT_TRUE(SaveKnowledgeBase(**kb, path).ok());
  auto loaded = LoadKnowledgeBaseSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalent(**kb, **loaded);

  // Queries over the loaded KB return identical answers.
  KspDatabase db_a(kb->get());
  db_a.PrepareAll(2);
  QueryExecutor exec_a(&db_a);
  KspDatabase db_b(loaded->get());
  db_b.PrepareAll(2);
  QueryExecutor exec_b(&db_b);
  KspQuery q;
  q.location = Point{45, 10};
  q.keywords = {0, 1, 2};
  q.k = 5;
  auto ra = exec_a.ExecuteSp(q);
  auto rb = exec_b.ExecuteSp(q);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra->entries.size(), rb->entries.size());
  for (size_t i = 0; i < ra->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra->entries[i].score, rb->entries[i].score);
    EXPECT_EQ(ra->entries[i].place, rb->entries[i].place);
  }
  std::remove(path.c_str());
}

TEST(KbIoTest, EmptyKbRoundTrips) {
  KnowledgeBaseBuilder builder;
  auto kb = builder.Finish();
  ASSERT_TRUE(kb.ok());
  std::string path = TempPath("ksp_snapshot_empty.kbsnap");
  ASSERT_TRUE(SaveKnowledgeBase(**kb, path).ok());
  auto loaded = LoadKnowledgeBaseSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_vertices(), 0u);
  std::remove(path.c_str());
}

TEST(KbIoTest, MissingFileIsIOError) {
  auto loaded = LoadKnowledgeBaseSnapshot(TempPath("nope.kbsnap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(KbIoTest, TruncatedFileIsRejected) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  std::string path = TempPath("ksp_snapshot_trunc.kbsnap");
  ASSERT_TRUE(SaveKnowledgeBase(**kb, path).ok());
  // Truncate the last 8 bytes.
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) - 8);
  auto loaded = LoadKnowledgeBaseSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(KbIoTest, BadMagicIsCorruption) {
  std::string path = TempPath("ksp_snapshot_badmagic.kbsnap");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[16] = "notasnapshot!!!";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  auto loaded = LoadKnowledgeBaseSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ksp
