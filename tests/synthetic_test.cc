#include "datagen/synthetic.h"

#include <gtest/gtest.h>

namespace ksp {
namespace {

TEST(SyntheticTest, GeneratesRequestedShape) {
  auto profile = SyntheticProfile::DBpediaLike(5000);
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ((*kb)->num_vertices(), 5000u);
  // Dedup trims a little off the nominal edge count.
  EXPECT_NEAR(static_cast<double>((*kb)->num_edges()),
              5000 * profile.avg_out_degree,
              5000 * profile.avg_out_degree * 0.15);
}

TEST(SyntheticTest, PlaceFractionMatchesProfile) {
  for (bool dbpedia : {true, false}) {
    auto profile = dbpedia ? SyntheticProfile::DBpediaLike(8000)
                           : SyntheticProfile::YagoLike(8000);
    auto kb = GenerateKnowledgeBase(profile);
    ASSERT_TRUE(kb.ok());
    double fraction =
        static_cast<double>((*kb)->num_places()) / (*kb)->num_vertices();
    EXPECT_NEAR(fraction, profile.place_fraction,
                profile.place_fraction * 0.15)
        << profile.name;
  }
}

TEST(SyntheticTest, KeywordFrequencyContrastBetweenProfiles) {
  // The defining contrast of §6.1: DBpedia's mean posting length (56.46)
  // vastly exceeds Yago's (7.83). The synthetic profiles must preserve the
  // direction and rough magnitude of that gap.
  auto dbpedia = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(20000));
  auto yago = GenerateKnowledgeBase(SyntheticProfile::YagoLike(20000));
  ASSERT_TRUE(dbpedia.ok() && yago.ok());
  double f_dbpedia = (*dbpedia)->inverted_index().AveragePostingLength();
  double f_yago = (*yago)->inverted_index().AveragePostingLength();
  EXPECT_GT(f_dbpedia, 3.0 * f_yago);
}

TEST(SyntheticTest, PlacesHaveInBoundsClusteredLocations) {
  auto profile = SyntheticProfile::YagoLike(3000);
  auto kb = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(kb.ok());
  ASSERT_GT((*kb)->num_places(), 0u);
  // Gaussian tails may slightly exceed the box; allow 5 stddev slack.
  const double slack = 5 * profile.cluster_stddev;
  for (PlaceId p = 0; p < (*kb)->num_places(); ++p) {
    Point loc = (*kb)->place_location(p);
    EXPECT_GE(loc.x, profile.min_x - slack);
    EXPECT_LE(loc.x, profile.max_x + slack);
    EXPECT_GE(loc.y, profile.min_y - slack);
    EXPECT_LE(loc.y, profile.max_y + slack);
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  auto a = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1000));
  auto b = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1000));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->num_edges(), (*b)->num_edges());
  EXPECT_EQ((*a)->num_places(), (*b)->num_places());
  EXPECT_EQ((*a)->num_terms(), (*b)->num_terms());
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto profile = SyntheticProfile::DBpediaLike(1000);
  auto a = GenerateKnowledgeBase(profile);
  profile.seed = 777;
  auto b = GenerateKnowledgeBase(profile);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)->num_edges(), (*b)->num_edges());
}

TEST(SyntheticTest, ZeroVerticesRejected) {
  SyntheticProfile profile;
  profile.num_vertices = 0;
  EXPECT_FALSE(GenerateKnowledgeBase(profile).ok());
}

TEST(SyntheticTest, GraphIsLargelyConnected) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(5000));
  ASSERT_TRUE(kb.ok());
  auto wcc = (*kb)->graph().WeaklyConnectedComponentSizes();
  ASSERT_FALSE(wcc.empty());
  // Like the real datasets: one huge WCC dominating the graph.
  EXPECT_GT(wcc[0], 0.9 * (*kb)->num_vertices());
}

}  // namespace
}  // namespace ksp
