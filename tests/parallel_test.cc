// Batch and multi-threaded query execution through engine clones sharing
// the immutable indexes.

#include "core/parallel.h"

#include <gtest/gtest.h>

#include <memory>

#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(2000));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    engine_ = std::make_unique<KspEngine>(kb_.get());
    engine_->PrepareAll(3);
    QueryGenOptions qopt;
    qopt.num_keywords = 4;
    qopt.k = 5;
    qopt.seed = 77;
    queries_ = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 12);
    ASSERT_FALSE(queries_.empty());
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspEngine> engine_;
  std::vector<KspQuery> queries_;
};

TEST_F(ParallelTest, SerialBatchMatchesIndividualExecution) {
  BatchRunOptions options;
  options.algorithm = KspAlgorithm::kSp;
  options.num_threads = 1;
  QueryStats total;
  auto batch = RunQueryBatch(engine_.get(), queries_, options, &total);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto single = engine_->ExecuteSp(queries_[i]);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[i].entries.size(), single->entries.size()) << i;
    for (size_t j = 0; j < single->entries.size(); ++j) {
      EXPECT_DOUBLE_EQ((*batch)[i].entries[j].score,
                       single->entries[j].score);
      EXPECT_EQ((*batch)[i].entries[j].place, single->entries[j].place);
    }
  }
  EXPECT_GT(total.total_ms, 0.0);
}

TEST_F(ParallelTest, MultiThreadedMatchesSerial) {
  for (KspAlgorithm algorithm :
       {KspAlgorithm::kBsp, KspAlgorithm::kSpp, KspAlgorithm::kSp,
        KspAlgorithm::kTa}) {
    BatchRunOptions serial;
    serial.algorithm = algorithm;
    serial.num_threads = 1;
    auto expected = RunQueryBatch(engine_.get(), queries_, serial);
    ASSERT_TRUE(expected.ok());

    BatchRunOptions parallel;
    parallel.algorithm = algorithm;
    parallel.num_threads = 4;
    auto got = RunQueryBatch(engine_.get(), queries_, parallel);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      ASSERT_EQ((*got)[i].entries.size(), (*expected)[i].entries.size())
          << KspAlgorithmName(algorithm) << " query " << i;
      for (size_t j = 0; j < (*expected)[i].entries.size(); ++j) {
        EXPECT_DOUBLE_EQ((*got)[i].entries[j].score,
                         (*expected)[i].entries[j].score);
        EXPECT_EQ((*got)[i].entries[j].place,
                  (*expected)[i].entries[j].place);
      }
    }
  }
}

TEST_F(ParallelTest, CloneSharesIndexes) {
  auto clone = engine_->Clone();
  EXPECT_EQ(&clone->rtree(), &engine_->rtree());
  EXPECT_EQ(clone->reachability_index(), engine_->reachability_index());
  EXPECT_EQ(clone->alpha_index(), engine_->alpha_index());
  // Clone answers queries identically.
  auto a = engine_->ExecuteSp(queries_[0]);
  auto b = clone->ExecuteSp(queries_[0]);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->entries.size(), b->entries.size());
  for (size_t i = 0; i < a->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->entries[i].score, b->entries[i].score);
  }
}

TEST_F(ParallelTest, EmptyBatch) {
  BatchRunOptions options;
  auto batch = RunQueryBatch(engine_.get(), {}, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST_F(ParallelTest, ErrorPropagates) {
  // SPP without a reachability index fails; the batch must surface it.
  KspEngine bare(kb_.get());
  bare.BuildRTree();
  BatchRunOptions options;
  options.algorithm = KspAlgorithm::kSpp;
  options.num_threads = 2;
  auto batch = RunQueryBatch(&bare, queries_, options);
  EXPECT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
}

TEST(KspAlgorithmTest, Names) {
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kBsp), "BSP");
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kSpp), "SPP");
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kSp), "SP");
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kTa), "TA");
}

}  // namespace
}  // namespace ksp
