// Batch and multi-threaded query execution: QueryExecutor pools over one
// shared immutable KspDatabase.

#include "core/parallel.h"

#include <gtest/gtest.h>

#include <memory>

#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(2000));
    ASSERT_TRUE(kb.ok());
    kb_ = std::move(*kb);
    db_ = std::make_unique<KspDatabase>(kb_.get());
    db_->PrepareAll(3);
    QueryGenOptions qopt;
    qopt.num_keywords = 4;
    qopt.k = 5;
    qopt.seed = 77;
    queries_ = GenerateQueries(*kb_, QueryClass::kOriginal, qopt, 12);
    ASSERT_FALSE(queries_.empty());
  }

  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<KspDatabase> db_;
  std::vector<KspQuery> queries_;
};

TEST_F(ParallelTest, SerialBatchMatchesIndividualExecution) {
  BatchRunOptions options;
  options.algorithm = KspAlgorithm::kSp;
  options.num_threads = 1;
  BatchRunStats stats;
  auto batch = RunQueryBatch(*db_, queries_, options, &stats);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), queries_.size());
  QueryExecutor executor(db_.get());
  QueryStats manual_totals;
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryStats single_stats;
    auto single = executor.ExecuteSp(queries_[i], &single_stats);
    ASSERT_TRUE(single.ok());
    manual_totals.Accumulate(single_stats);
    ASSERT_EQ((*batch)[i].entries.size(), single->entries.size()) << i;
    for (size_t j = 0; j < single->entries.size(); ++j) {
      EXPECT_DOUBLE_EQ((*batch)[i].entries[j].score,
                       single->entries[j].score);
      EXPECT_EQ((*batch)[i].entries[j].place, single->entries[j].place);
    }
  }
  EXPECT_GT(stats.totals.total_ms, 0.0);
  // Per-query counters merge exactly, independent of who accumulates.
  EXPECT_EQ(stats.totals.tqsp_computations, manual_totals.tqsp_computations);
  EXPECT_EQ(stats.totals.rtree_nodes_accessed,
            manual_totals.rtree_nodes_accessed);
  // Single-threaded batches report exactly one worker lane.
  ASSERT_EQ(stats.worker_wall_ms.size(), 1u);
  EXPECT_GE(stats.worker_wall_ms[0], 0.0);
}

TEST_F(ParallelTest, MultiThreadedMatchesSerial) {
  for (KspAlgorithm algorithm :
       {KspAlgorithm::kBsp, KspAlgorithm::kSpp, KspAlgorithm::kSp,
        KspAlgorithm::kTa}) {
    BatchRunOptions serial;
    serial.algorithm = algorithm;
    serial.num_threads = 1;
    auto expected = RunQueryBatch(*db_, queries_, serial);
    ASSERT_TRUE(expected.ok());

    BatchRunOptions parallel;
    parallel.algorithm = algorithm;
    parallel.num_threads = 4;
    BatchRunStats stats;
    auto got = RunQueryBatch(*db_, queries_, parallel, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), expected->size());
    EXPECT_EQ(stats.worker_wall_ms.size(), 4u);
    for (size_t i = 0; i < expected->size(); ++i) {
      ASSERT_EQ((*got)[i].entries.size(), (*expected)[i].entries.size())
          << KspAlgorithmName(algorithm) << " query " << i;
      for (size_t j = 0; j < (*expected)[i].entries.size(); ++j) {
        EXPECT_DOUBLE_EQ((*got)[i].entries[j].score,
                         (*expected)[i].entries[j].score);
        EXPECT_EQ((*got)[i].entries[j].place,
                  (*expected)[i].entries[j].place);
      }
    }
  }
}

TEST_F(ParallelTest, PoolIsReusableAcrossBatches) {
  QueryExecutorPool pool(db_.get(), 3);
  EXPECT_EQ(pool.num_threads(), 3u);
  auto first = pool.Run(queries_, KspAlgorithm::kSp);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Same batch again on the warm pool: identical answers.
  auto second = pool.Run(queries_, KspAlgorithm::kSp);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    ASSERT_EQ((*first)[i].entries.size(), (*second)[i].entries.size());
    for (size_t j = 0; j < (*first)[i].entries.size(); ++j) {
      EXPECT_DOUBLE_EQ((*first)[i].entries[j].score,
                       (*second)[i].entries[j].score);
      EXPECT_EQ((*first)[i].entries[j].place, (*second)[i].entries[j].place);
    }
  }
  // A different algorithm on the same pool also works.
  auto ta = pool.Run(queries_, KspAlgorithm::kTa);
  ASSERT_TRUE(ta.ok());
  EXPECT_EQ(ta->size(), queries_.size());
}

TEST_F(ParallelTest, EmptyBatch) {
  BatchRunOptions options;
  auto batch = RunQueryBatch(*db_, {}, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST_F(ParallelTest, UnpreparedDatabaseRejected) {
  KspDatabase bare(kb_.get());
  BatchRunOptions options;
  options.num_threads = 2;
  auto batch = RunQueryBatch(bare, queries_, options);
  EXPECT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
}

TEST_F(ParallelTest, ErrorPropagates) {
  // SPP without a reachability index fails; the batch must surface it.
  KspDatabase bare(kb_.get());
  bare.BuildRTree();
  BatchRunOptions options;
  options.algorithm = KspAlgorithm::kSpp;
  options.num_threads = 2;
  auto batch = RunQueryBatch(bare, queries_, options);
  EXPECT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
}

TEST(KspAlgorithmTest, Names) {
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kBsp), "BSP");
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kSpp), "SPP");
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kSp), "SP");
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kTa), "TA");
  EXPECT_STREQ(KspAlgorithmName(KspAlgorithm::kKeywordOnly), "KW");
}

}  // namespace
}  // namespace ksp
