#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ksp {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++counts[rng.NextBounded(bound)];
  for (int c : counts) {
    EXPECT_NEAR(c, samples / bound, samples / bound * 0.15);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // Degenerate range.
  EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfSamplerTest, UniformWhenSkewZero) {
  ZipfSampler zipf(4, 0.0);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(zipf.Probability(r), 0.25, 1e-12);
  }
}

TEST(ZipfSamplerTest, ProbabilitiesDecreaseWithRank) {
  ZipfSampler zipf(100, 1.0);
  for (size_t r = 1; r < 100; ++r) {
    EXPECT_GT(zipf.Probability(r - 1), zipf.Probability(r));
  }
  double total = 0;
  for (size_t r = 0; r < 100; ++r) total += zipf.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalMatchesTheoretical) {
  ZipfSampler zipf(8, 1.2);
  Rng rng(29);
  std::vector<int> counts(8, 0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 0; r < 8; ++r) {
    double expected = zipf.Probability(r) * samples;
    EXPECT_NEAR(counts[r], expected, expected * 0.1 + 30);
  }
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(31);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace ksp
