// Property tests over random graphs: in-adjacency is the exact transpose
// of out-adjacency, degrees are consistent, and the WCC decomposition
// partitions the vertex set.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "common/rng.h"
#include "rdf/graph.h"

namespace ksp {
namespace {

class GraphProperty
    : public ::testing::TestWithParam<std::pair<uint32_t, int>> {};

TEST_P(GraphProperty, InAdjacencyIsTransposeOfOut) {
  auto [n, density] = GetParam();
  Rng rng(n * 31 + density);
  GraphBuilder builder;
  std::map<std::pair<VertexId, VertexId>, int> expected;
  for (int i = 0; i < density; ++i) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    PredicateId p = static_cast<PredicateId>(rng.NextBounded(3));
    builder.AddEdge(s, t, p);
    expected[{s, t}] = 1;  // Dedup tracks presence, not multiplicity.
  }
  Graph g = builder.Finish(n);

  // Forward edges match the deduplicated expectation per (s,t) pair
  // modulo predicate multiplicity.
  uint64_t total_out = 0;
  uint64_t total_in = 0;
  std::map<std::pair<VertexId, VertexId>, int> out_pairs;
  std::map<std::pair<VertexId, VertexId>, int> in_pairs;
  for (VertexId v = 0; v < n; ++v) {
    total_out += g.OutDegree(v);
    total_in += g.InDegree(v);
    for (VertexId w : g.OutNeighbors(v)) ++out_pairs[{v, w}];
    for (VertexId u : g.InNeighbors(v)) ++in_pairs[{u, v}];
  }
  EXPECT_EQ(total_out, g.num_edges());
  EXPECT_EQ(total_in, g.num_edges());
  EXPECT_EQ(out_pairs, in_pairs);
  for (const auto& [pair, count] : out_pairs) {
    (void)count;
    EXPECT_EQ(expected.count(pair), 1u);
  }
}

TEST_P(GraphProperty, WccSizesPartitionVertices) {
  auto [n, density] = GetParam();
  Rng rng(n * 17 + density);
  GraphBuilder builder;
  for (int i = 0; i < density; ++i) {
    builder.AddEdge(static_cast<VertexId>(rng.NextBounded(n)),
                    static_cast<VertexId>(rng.NextBounded(n)), 0);
  }
  Graph g = builder.Finish(n);
  auto wcc = g.WeaklyConnectedComponentSizes();
  uint64_t total = std::accumulate(wcc.begin(), wcc.end(), uint64_t{0});
  EXPECT_EQ(total, n);
  for (size_t i = 1; i < wcc.size(); ++i) {
    EXPECT_GE(wcc[i - 1], wcc[i]);  // Sorted descending.
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, GraphProperty,
                         ::testing::Values(std::pair{10u, 5},
                                           std::pair{50u, 100},
                                           std::pair{200u, 50},
                                           std::pair{500u, 2000}));

}  // namespace
}  // namespace ksp
