// Brute-force oracle equivalence: a naive O(|P| · BFS) reference
// implementation of Definition 3 — one independent BFS per place, no
// R-tree, no pruning rules, no shared code with the engine's TQSP
// machinery — checked against BSP, SPP and SP on hundreds of seeded
// random queries. Any divergence in the top-k set, order, or looseness
// values is a correctness bug in one of the pruning rules.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "query_corpus.h"
#include "rdf/knowledge_base.h"
#include "spatial/geometry.h"

namespace ksp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct OracleEntry {
  PlaceId place;
  double looseness;
  double spatial;
  double score;
};

/// The reference evaluator: for every place, dg(p, t_i) by plain BFS
/// from the place vertex over out-edges (the engine's default edge
/// direction), L(T_p) = 1 + Σ dg, f from the database's ranking function
/// on the exact point-to-point distance. Places missing any keyword are
/// unqualified and dropped (Definition 1).
class BruteForceOracle {
 public:
  explicit BruteForceOracle(const KspDatabase* db)
      : db_(db),
        kb_(db->kb()),
        seen_(kb_.num_vertices(), 0),
        dist_(kb_.num_vertices(), 0) {}

  /// All qualified places in ascending (score, place) order — the
  /// engine's TopKHeap tiebreak.
  std::vector<OracleEntry> RankAll(const KspQuery& query) {
    std::vector<TermId> terms;
    for (TermId t : query.keywords) {
      if (t == kInvalidTerm) return {};  // Unanswerable query.
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::vector<OracleEntry> entries;
    for (PlaceId p = 0; p < kb_.num_places(); ++p) {
      const double looseness = Looseness(kb_.place_vertex(p), terms);
      if (looseness == kInf) continue;
      OracleEntry entry;
      entry.place = p;
      entry.looseness = looseness;
      entry.spatial = Distance(query.location, kb_.place_location(p));
      entry.score = db_->options().ranking.Score(looseness, entry.spatial);
      entries.push_back(entry);
    }
    std::sort(entries.begin(), entries.end(),
              [](const OracleEntry& a, const OracleEntry& b) {
                return a.score != b.score ? a.score < b.score
                                          : a.place < b.place;
              });
    return entries;
  }

 private:
  /// 1 + Σ_i min-hops from root to a vertex whose document contains
  /// t_i, or +inf if some keyword is unreachable.
  double Looseness(VertexId root, const std::vector<TermId>& terms) {
    const Graph& graph = kb_.graph();
    const DocumentStore& docs = kb_.documents();
    std::vector<uint32_t> best(terms.size(),
                               std::numeric_limits<uint32_t>::max());
    size_t found = 0;

    ++epoch_;
    queue_.clear();
    queue_.push_back(root);
    seen_[root] = epoch_;
    dist_[root] = 0;
    for (size_t qi = 0; qi < queue_.size() && found < terms.size(); ++qi) {
      const VertexId v = queue_[qi];
      for (size_t i = 0; i < terms.size(); ++i) {
        if (best[i] == std::numeric_limits<uint32_t>::max() &&
            docs.Contains(v, terms[i])) {
          best[i] = dist_[v];
          ++found;
        }
      }
      if (found == terms.size()) break;
      for (VertexId w : graph.OutNeighbors(v)) {
        if (seen_[w] != epoch_) {
          seen_[w] = epoch_;
          dist_[w] = dist_[v] + 1;
          queue_.push_back(w);
        }
      }
    }
    if (found < terms.size()) return kInf;
    double looseness = 1.0;
    for (uint32_t d : best) looseness += d;
    return looseness;
  }

  const KspDatabase* db_;
  const KnowledgeBase& kb_;
  std::vector<uint32_t> seen_;
  std::vector<uint32_t> dist_;
  std::vector<VertexId> queue_;
  uint32_t epoch_ = 0;
};

class OracleEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1500));
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = kb->release();
    db_ = new KspDatabase(kb_);
    db_->PrepareAll(/*alpha=*/3);

    // The shared 210-query seeded workload (tests/query_corpus.h).
    *queries_ = testing::MakeEquivalenceCorpus(*kb_);
    ASSERT_GE(queries_->size(), 200u);
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete kb_;
    kb_ = nullptr;
    queries_->clear();
  }

  using Execute = Result<KspResult> (QueryExecutor::*)(const KspQuery&,
                                                       QueryStats*);

  /// Runs every seeded query at every k and diffs against the oracle.
  void CheckAlgorithm(Execute execute, const char* name) {
    QueryExecutor executor(db_);
    BruteForceOracle oracle(db_);
    size_t nonempty = 0;
    for (size_t qi = 0; qi < queries_->size(); ++qi) {
      KspQuery query = (*queries_)[qi];
      const std::vector<OracleEntry> ranked = oracle.RankAll(query);
      for (uint32_t k : {1u, 5u, 10u}) {
        query.k = k;
        auto result = (executor.*execute)(query, nullptr);
        ASSERT_TRUE(result.ok())
            << name << " query " << qi << " k=" << k << ": "
            << result.status().ToString();
        const size_t expected = std::min<size_t>(k, ranked.size());
        ASSERT_EQ(result->entries.size(), expected)
            << name << " query " << qi << " k=" << k;
        for (size_t i = 0; i < expected; ++i) {
          const KspResultEntry& got = result->entries[i];
          const OracleEntry& want = ranked[i];
          ASSERT_EQ(got.place, want.place)
              << name << " query " << qi << " k=" << k << " rank " << i;
          ASSERT_DOUBLE_EQ(got.looseness, want.looseness)
              << name << " query " << qi << " k=" << k << " rank " << i;
          ASSERT_DOUBLE_EQ(got.spatial_distance, want.spatial)
              << name << " query " << qi << " k=" << k << " rank " << i;
          ASSERT_DOUBLE_EQ(got.score, want.score)
              << name << " query " << qi << " k=" << k << " rank " << i;
        }
        if (expected > 0) ++nonempty;
      }
    }
    // The workload must actually exercise the engine, not vacuously pass
    // on empty results.
    EXPECT_GT(nonempty, queries_->size());
  }

  static KnowledgeBase* kb_;
  static KspDatabase* db_;
  static std::vector<KspQuery>* queries_;
};

KnowledgeBase* OracleEquivalenceTest::kb_ = nullptr;
KspDatabase* OracleEquivalenceTest::db_ = nullptr;
std::vector<KspQuery>* OracleEquivalenceTest::queries_ =
    new std::vector<KspQuery>();

TEST_F(OracleEquivalenceTest, BspMatchesOracle) {
  CheckAlgorithm(&QueryExecutor::ExecuteBsp, "BSP");
}

TEST_F(OracleEquivalenceTest, SppMatchesOracle) {
  CheckAlgorithm(&QueryExecutor::ExecuteSpp, "SPP");
}

TEST_F(OracleEquivalenceTest, SpMatchesOracle) {
  CheckAlgorithm(&QueryExecutor::ExecuteSp, "SP");
}

}  // namespace
}  // namespace ksp
