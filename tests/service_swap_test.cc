// Zero-downtime hot index swap: clients hammer the server while new
// index generations are installed. The contract: zero transport errors,
// zero rejected or wrong answers attributable to the swap, every
// response oracle-exact for the generation that answered, and a failed
// swap leaves the current generation serving untouched.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "service/client.h"
#include "service/server.h"

namespace ksp {
namespace {

std::unique_ptr<KnowledgeBase> MakeKb(uint32_t places) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(places));
  EXPECT_TRUE(kb.ok()) << kb.status().ToString();
  return std::move(*kb);
}

std::vector<std::string> KeywordStrings(const KnowledgeBase& kb,
                                        const KspQuery& query) {
  std::vector<std::string> out;
  out.reserve(query.keywords.size());
  for (TermId t : query.keywords) out.push_back(kb.vocabulary().Term(t));
  return out;
}

std::string FreshTempDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ksp_swap_" + tag + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(ServiceSwapTest, SwapUnderLoadDropsNothingAndStaysExact) {
  auto kb = MakeKb(500);
  auto db = std::make_shared<KspDatabase>(kb.get());
  db->PrepareAll(3);

  // Two saved generations in the same directory: each SaveIndexes bumps
  // the manifest generation, so successive swaps observably change the
  // index generation reported by /health.
  const std::string dir = FreshTempDir("load");
  ASSERT_TRUE(db->SaveIndexes(dir).ok());
  ASSERT_TRUE(db->SaveIndexes(dir).ok());

  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 4;
  qopt.seed = 47;
  const auto queries = GenerateQueries(*kb, QueryClass::kOriginal, qopt, 4);
  ASSERT_FALSE(queries.empty());

  // Oracle per query. Every generation is built from the same KB, so the
  // per-generation oracle is the same exact answer — which is precisely
  // the invariant a swap must preserve.
  QueryExecutor oracle(db.get());
  std::vector<KspResult> expected;
  for (const KspQuery& query : queries) {
    auto result = oracle.ExecuteSp(query, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(*result);
  }

  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  KspServer server(kb.get(), KspOptions(), options);
  ASSERT_TRUE(server.ServeDatabase(db).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.serving_generation(), 1u);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> oks{0};
  std::mutex gen_mu;
  std::set<uint64_t> generations_seen;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<bool> swapping_done{false};

  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      auto client = KspClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      int sent = 0;
      // Keep querying at least until the swapper finishes, so load
      // definitely overlaps every swap.
      while (sent < kRequestsPerClient || !swapping_done.load()) {
        const size_t qi = static_cast<size_t>(c + sent) % queries.size();
        auto response =
            client->Query(KspAlgorithm::kSp, queries[qi].location,
                          KeywordStrings(*kb, queries[qi]), queries[qi].k);
        ++sent;
        if (!response.ok() || !response->ok()) {
          ++failures;  // A swap must never surface as any kind of error.
          continue;
        }
        const KspResult& want = expected[qi];
        bool same = response->entries.size() == want.entries.size();
        for (size_t i = 0; same && i < want.entries.size(); ++i) {
          same = response->entries[i].place == want.entries[i].place &&
                 response->entries[i].looseness ==
                     want.entries[i].looseness &&
                 response->entries[i].score == want.entries[i].score;
        }
        if (!same) {
          ++failures;
          continue;
        }
        ++oks;
        std::lock_guard<std::mutex> lock(gen_mu);
        generations_seen.insert(response->generation);
        if (sent > kRequestsPerClient * 4) break;  // Safety valve.
      }
    });
  }

  // Swap twice over the wire while the clients hammer away.
  {
    auto swapper = KspClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(swapper.ok());
    for (int s = 0; s < 2; ++s) {
      auto response = swapper->Swap(dir);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_TRUE(response->ok()) << response->message;
    }
  }
  swapping_done.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(oks.load(), 0u);
  EXPECT_EQ(server.serving_generation(), 3u);  // 1 install + 2 swaps.
  // Load overlapped the swaps: more than one serving generation answered.
  EXPECT_GE(generations_seen.size(), 2u) << "no query spanned the swap";

  // After the swaps, health reports the loaded manifest generation (the
  // second save), not 0 (built in-process).
  auto client = KspClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"index_generation\": 2"), std::string::npos)
      << health->body;
  EXPECT_NE(health->body.find("\"serving_generation\": 3"),
            std::string::npos)
      << health->body;

  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServiceSwapTest, FailedSwapLeavesCurrentGenerationServing) {
  auto kb = MakeKb(300);
  auto db = std::make_shared<KspDatabase>(kb.get());
  db->PrepareAll(3);

  QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 3;
  qopt.seed = 53;
  const auto queries = GenerateQueries(*kb, QueryClass::kOriginal, qopt, 1);
  ASSERT_FALSE(queries.empty());

  ServerOptions options;
  options.num_workers = 1;
  KspServer server(kb.get(), KspOptions(), options);
  ASSERT_TRUE(server.ServeDatabase(db).ok());
  ASSERT_TRUE(server.Start().ok());

  auto client = KspClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto bad = client->Swap("/nonexistent/ksp-swap-target");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_FALSE(bad->ok());
  EXPECT_EQ(server.serving_generation(), 1u);

  // Still serving, still exact.
  QueryExecutor oracle(db.get());
  auto expected = oracle.ExecuteSp(queries[0], nullptr);
  ASSERT_TRUE(expected.ok());
  auto response = client->Query(KspAlgorithm::kSp, queries[0].location,
                                KeywordStrings(*kb, queries[0]),
                                queries[0].k);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok()) << response->message;
  EXPECT_EQ(response->generation, 1u);
  ASSERT_EQ(response->entries.size(), expected->entries.size());
  for (size_t i = 0; i < expected->entries.size(); ++i) {
    EXPECT_EQ(response->entries[i].place, expected->entries[i].place);
  }
  server.Stop();
}

}  // namespace
}  // namespace ksp
