// The checksummed container framing: round trips, corruption detection
// with path+offset errors, bounded allocation on corrupt length prefixes,
// and the atomic-commit helper.

#include "common/io_util.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/crc32c.h"

namespace ksp {
namespace {

constexpr uint32_t kTestMagic = 0x54534554u;  // "TEST"

class ChecksummedIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            ("ksp_cio_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/artifact.bin";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Status WriteTestArtifact(const std::vector<std::string>& sections,
                           ArtifactInfo* info = nullptr) {
    return WriteArtifactAtomically(
        DefaultFileSystem(), path_, kTestMagic, 3,
        [&sections](ChecksummedWriter* w) -> Status {
          for (const std::string& s : sections) {
            KSP_RETURN_NOT_OK(w->WriteSection(s));
          }
          return Status::OK();
        },
        info);
  }

  std::string ReadFileBytes() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void WriteFileBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
  std::string path_;
};

TEST_F(ChecksummedIoTest, RoundTripsSectionsAndVersion) {
  ArtifactInfo info;
  ASSERT_TRUE(WriteTestArtifact({"hello", "", "world!"}, &info).ok());
  EXPECT_EQ(info.format_version, 3u);
  EXPECT_EQ(info.size_bytes, std::filesystem::file_size(path_));
  EXPECT_EQ(info.crc32c, Crc32c(ReadFileBytes()));

  auto file = DefaultFileSystem()->NewRandomAccessFile(path_);
  ASSERT_TRUE(file.ok());
  auto is_v2 = IsChecksummedFile(**file);
  ASSERT_TRUE(is_v2.ok());
  EXPECT_TRUE(*is_v2);

  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  ASSERT_TRUE(reader.Open(kTestMagic, &version).ok());
  EXPECT_EQ(version, 3u);
  std::string payload;
  ASSERT_TRUE(reader.ReadSection(&payload).ok());
  EXPECT_EQ(payload, "hello");
  ASSERT_TRUE(reader.ReadSection(&payload).ok());
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(reader.ReadSection(&payload).ok());
  EXPECT_EQ(payload, "world!");
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST_F(ChecksummedIoTest, VerifySectionReturnsPayloadRange) {
  ASSERT_TRUE(WriteTestArtifact({"0123456789"}).ok());
  auto file = DefaultFileSystem()->NewRandomAccessFile(path_);
  ASSERT_TRUE(file.ok());
  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  ASSERT_TRUE(reader.Open(kTestMagic, &version).ok());
  uint64_t offset = 0;
  uint64_t size = 0;
  ASSERT_TRUE(reader.VerifySection(&offset, &size).ok());
  EXPECT_EQ(size, 10u);
  std::string raw;
  ASSERT_TRUE((*file)->Read(offset, size, &raw).ok());
  EXPECT_EQ(raw, "0123456789");
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST_F(ChecksummedIoTest, WrongArtifactMagicRejected) {
  ASSERT_TRUE(WriteTestArtifact({"x"}).ok());
  auto file = DefaultFileSystem()->NewRandomAccessFile(path_);
  ASSERT_TRUE(file.ok());
  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  auto status = reader.Open(kTestMagic + 1, &version);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(ChecksummedIoTest, FlippedPayloadByteIsCorruptionWithPathAndOffset) {
  ASSERT_TRUE(WriteTestArtifact({"some payload bytes"}).ok());
  std::string bytes = ReadFileBytes();
  // Past container magic + header section; inside the payload section.
  const size_t victim = bytes.size() - 6;
  bytes[victim] ^= 0x20;
  WriteFileBytes(bytes);

  auto file = DefaultFileSystem()->NewRandomAccessFile(path_);
  ASSERT_TRUE(file.ok());
  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  ASSERT_TRUE(reader.Open(kTestMagic, &version).ok());
  std::string payload;
  auto status = reader.ReadSection(&payload);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.ToString().find(path_), std::string::npos)
      << "error must carry the file path: " << status.ToString();
}

TEST_F(ChecksummedIoTest, HugeLengthPrefixRejectedBeforeAllocation) {
  ASSERT_TRUE(WriteTestArtifact({"abc"}).ok());
  std::string bytes = ReadFileBytes();
  // The payload section's length prefix sits right after the header
  // section: magic(4) + [len 8][payload 8][crc 4].
  const size_t len_pos = 4 + 8 + 8 + 4;
  for (int i = 0; i < 8; ++i) bytes[len_pos + i] = '\xff';
  WriteFileBytes(bytes);

  auto file = DefaultFileSystem()->NewRandomAccessFile(path_);
  ASSERT_TRUE(file.ok());
  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  ASSERT_TRUE(reader.Open(kTestMagic, &version).ok());
  std::string payload;
  auto status = reader.ReadSection(&payload);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(ChecksummedIoTest, TruncationDetected) {
  ASSERT_TRUE(WriteTestArtifact({"a longer payload for truncation"}).ok());
  std::string bytes = ReadFileBytes();
  for (size_t keep : {bytes.size() - 1, bytes.size() - 5, size_t{30},
                      size_t{24}, size_t{5}, size_t{3}, size_t{0}}) {
    WriteFileBytes(bytes.substr(0, keep));
    auto file = DefaultFileSystem()->NewRandomAccessFile(path_);
    ASSERT_TRUE(file.ok());
    auto is_v2 = IsChecksummedFile(**file);
    if (!is_v2.ok()) {
      EXPECT_TRUE(is_v2.status().IsCorruption());
      continue;  // Shorter than the container magic itself.
    }
    ASSERT_TRUE(*is_v2);
    ChecksummedReader reader(file->get());
    uint32_t version = 0;
    Status status = reader.Open(kTestMagic, &version);
    std::string payload;
    if (status.ok()) status = reader.ReadSection(&payload);
    if (status.ok()) status = reader.ExpectEnd();
    EXPECT_TRUE(status.IsCorruption() || status.IsIOError())
        << "keep=" << keep << ": " << status.ToString();
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
  }
}

TEST_F(ChecksummedIoTest, TrailingGarbageRejectedByExpectEnd) {
  ASSERT_TRUE(WriteTestArtifact({"payload"}).ok());
  WriteFileBytes(ReadFileBytes() + "garbage");
  auto file = DefaultFileSystem()->NewRandomAccessFile(path_);
  ASSERT_TRUE(file.ok());
  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  ASSERT_TRUE(reader.Open(kTestMagic, &version).ok());
  std::string payload;
  ASSERT_TRUE(reader.ReadSection(&payload).ok());
  EXPECT_TRUE(reader.ExpectEnd().IsCorruption());
}

TEST_F(ChecksummedIoTest, FailedBodyLeavesNoFileBehind) {
  auto status = WriteArtifactAtomically(
      DefaultFileSystem(), path_, kTestMagic, 1,
      [](ChecksummedWriter* w) {
        KSP_RETURN_NOT_OK(w->WriteSection("partial"));
        return Status::IOError("synthetic body failure");
      });
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(ChecksummedIoTest, AtomicRewriteReplacesPreviousVersion) {
  ASSERT_TRUE(WriteTestArtifact({"generation one"}).ok());
  ASSERT_TRUE(WriteTestArtifact({"generation two"}).ok());
  auto file = DefaultFileSystem()->NewRandomAccessFile(path_);
  ASSERT_TRUE(file.ok());
  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  ASSERT_TRUE(reader.Open(kTestMagic, &version).ok());
  std::string payload;
  ASSERT_TRUE(reader.ReadSection(&payload).ok());
  EXPECT_EQ(payload, "generation two");
}

TEST_F(ChecksummedIoTest, ChecksumWholeFileMatchesWriterInfo) {
  ArtifactInfo written;
  ASSERT_TRUE(WriteTestArtifact({"abc", "defg"}, &written).ok());
  ArtifactInfo verified;
  ASSERT_TRUE(
      ChecksumWholeFile(DefaultFileSystem(), path_, &verified).ok());
  EXPECT_EQ(verified.size_bytes, written.size_bytes);
  EXPECT_EQ(verified.crc32c, written.crc32c);
}

TEST_F(ChecksummedIoTest, ReadPodVectorRejectsOversizedPrefix) {
  // Legacy v1 reader hardening: an 8-byte length prefix claiming 2^60
  // elements in a 24-byte file must fail without allocating.
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    uint64_t huge = 1ull << 60;
    ASSERT_TRUE(WritePod(f, huge).ok());
    uint64_t filler = 0;
    ASSERT_TRUE(WritePod(f, filler).ok());
    ASSERT_TRUE(WritePod(f, filler).ok());
    std::fclose(f);
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint32_t> v;
  auto status = ReadPodVector(f, &v);
  std::fclose(f);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_TRUE(v.empty());
}

TEST_F(ChecksummedIoTest, ParsePodVectorRejectsOversizedPrefix) {
  std::string buf;
  AppendPod<uint64_t>(&buf, 1ull << 58);
  buf += "short";
  size_t pos = 0;
  std::vector<uint64_t> v;
  EXPECT_TRUE(ParsePodVector(buf, &pos, &v).IsCorruption());
  EXPECT_TRUE(v.empty());

  // ParsePod past the end is Corruption, not UB.
  pos = buf.size();
  uint32_t x = 0;
  EXPECT_TRUE(ParsePod(buf, &pos, &x).IsCorruption());
}

TEST_F(ChecksummedIoTest, ErrorsCarryPathAndOffset) {
  auto status = CorruptionAt("/some/file.bin", 1234, "boom");
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_NE(status.ToString().find("/some/file.bin"), std::string::npos);
  EXPECT_NE(status.ToString().find("1234"), std::string::npos);
  auto io = IOErrorAt("/other/file.bin", 99, "eio");
  EXPECT_TRUE(io.IsIOError());
  EXPECT_NE(io.ToString().find("/other/file.bin"), std::string::npos);
  EXPECT_NE(io.ToString().find("99"), std::string::npos);
}

}  // namespace
}  // namespace ksp
