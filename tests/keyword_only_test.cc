// Location-free keyword search (looseness-only ranking): validated
// against a brute-force per-place TQSP oracle.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace ksp {
namespace {

PlaceId kb_place(const std::unique_ptr<KnowledgeBase>& kb,
                 const std::string& local) {
  auto v = kb->FindVertex("http://example.org/" + local);
  EXPECT_TRUE(v.has_value());
  return kb->place_of(*v);
}

TEST(KeywordOnlyTest, Figure1RanksByLoosenessNotDistance) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  // From q1, p1 is much closer — but p2 has the lower looseness (4 vs 6)
  // and must win a location-free ranking.
  KspQuery query = db.MakeQuery(kQ1, Figure1QueryKeywords(), 2);
  auto result = executor.ExecuteKeywordOnly(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result->entries[0].score, 4.0);
  EXPECT_DOUBLE_EQ(result->entries[0].looseness, 4.0);
  EXPECT_DOUBLE_EQ(result->entries[1].looseness, 6.0);
  EXPECT_EQ(result->entries[0].place,
            kb_place(*kb, "Roman_Catholic_Diocese_of_Frejus_Toulon"));

  // Trees are materialized.
  EXPECT_FALSE(result->entries[0].tree.matches.empty());
}

TEST(KeywordOnlyTest, MatchesBruteForceOracle) {
  auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1200));
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  QueryGenOptions qopt;
  qopt.num_keywords = 4;
  qopt.k = 6;
  auto queries = GenerateQueries(**kb, QueryClass::kOriginal, qopt, 4);
  ASSERT_FALSE(queries.empty());

  for (const auto& q : queries) {
    std::vector<std::pair<double, PlaceId>> oracle;
    for (PlaceId p = 0; p < (*kb)->num_places(); ++p) {
      auto tree = executor.ComputeTqspForPlace(p, q);
      ASSERT_TRUE(tree.ok());
      if (tree->IsQualified()) oracle.emplace_back(tree->looseness, p);
    }
    std::sort(oracle.begin(), oracle.end());
    if (oracle.size() > q.k) oracle.resize(q.k);

    auto result = executor.ExecuteKeywordOnly(q);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->entries.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      // Looseness values must match positionally (ties may permute ids).
      EXPECT_DOUBLE_EQ(result->entries[i].looseness, oracle[i].first) << i;
    }
  }
}

TEST(KeywordOnlyTest, UnansweredAndEmptyQueries) {
  auto kb = BuildFigure1KnowledgeBase();
  ASSERT_TRUE(kb.ok());
  KspDatabase db(kb->get());
  db.BuildRTree();
  QueryExecutor executor(&db);
  auto r1 = executor.ExecuteKeywordOnly(db.MakeQuery(kQ1, {"zzz"}, 3));
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->entries.empty());
  KspQuery no_keywords;
  no_keywords.location = kQ1;
  no_keywords.k = 3;
  auto r2 = executor.ExecuteKeywordOnly(no_keywords);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->entries.empty());
}

}  // namespace
}  // namespace ksp
