#include "reach/reachability_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rdf/graph.h"
#include "text/document_store.h"

namespace ksp {
namespace {

struct TestGraph {
  Graph graph;
  DocumentStore docs;
  TermId num_terms;
};

TestGraph Make(uint32_t n, std::vector<std::pair<uint32_t, uint32_t>> edges,
               std::vector<std::vector<TermId>> docs_by_vertex,
               TermId num_terms) {
  GraphBuilder gb;
  for (auto& [s, t] : edges) gb.AddEdge(s, t, 0);
  DocumentStoreBuilder db;
  for (VertexId v = 0; v < docs_by_vertex.size(); ++v) {
    for (TermId t : docs_by_vertex[v]) db.AddTerm(v, t);
  }
  return TestGraph{gb.Finish(n), db.Finish(n), num_terms};
}

/// BFS oracle for "v reaches some vertex containing t".
bool OracleReaches(const TestGraph& tg, VertexId from, TermId term,
                   bool undirected = false) {
  const VertexId n = tg.graph.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<VertexId> queue{from};
  seen[from] = true;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    VertexId v = queue[qi];
    if (tg.docs.Contains(v, term)) return true;
    for (VertexId w : tg.graph.OutNeighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
    if (undirected) {
      for (VertexId w : tg.graph.InNeighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
  }
  return false;
}

TEST(ReachabilityIndexTest, ChainGraph) {
  // 0 -> 1 -> 2, term 0 at vertex 2, term 1 at vertex 0.
  auto tg = Make(3, {{0, 1}, {1, 2}}, {{1}, {}, {0}}, 2);
  auto index = ReachabilityIndex::Build(tg.graph, tg.docs, tg.num_terms);
  EXPECT_TRUE(index.Reaches(0, 0));
  EXPECT_TRUE(index.Reaches(1, 0));
  EXPECT_TRUE(index.Reaches(2, 0));
  EXPECT_TRUE(index.Reaches(0, 1));   // Own document counts.
  EXPECT_FALSE(index.Reaches(1, 1));  // Edges are directed.
  EXPECT_FALSE(index.Reaches(2, 1));
}

TEST(ReachabilityIndexTest, VertexToVertex) {
  auto tg = Make(4, {{0, 1}, {1, 2}}, {{}, {}, {}, {}}, 0);
  auto index = ReachabilityIndex::Build(tg.graph, tg.docs, 0);
  EXPECT_TRUE(index.ReachesVertex(0, 2));
  EXPECT_TRUE(index.ReachesVertex(1, 1));  // Reflexive.
  EXPECT_FALSE(index.ReachesVertex(2, 0));
  EXPECT_FALSE(index.ReachesVertex(0, 3));
}

TEST(ReachabilityIndexTest, CyclesCollapse) {
  // 0 <-> 1, term at 0; 2 reaches the cycle.
  auto tg = Make(3, {{0, 1}, {1, 0}, {2, 0}}, {{0}, {}, {}}, 1);
  auto index = ReachabilityIndex::Build(tg.graph, tg.docs, 1);
  EXPECT_TRUE(index.Reaches(0, 0));
  EXPECT_TRUE(index.Reaches(1, 0));
  EXPECT_TRUE(index.Reaches(2, 0));
}

TEST(ReachabilityIndexTest, UnknownTermIsFalse) {
  auto tg = Make(2, {{0, 1}}, {{0}, {}}, 1);
  auto index = ReachabilityIndex::Build(tg.graph, tg.docs, 1);
  EXPECT_FALSE(index.Reaches(0, 57));
}

TEST(ReachabilityIndexTest, UndirectedMode) {
  // 0 -> 1, term at 0: under undirected edges, 1 reaches it too.
  auto tg = Make(2, {{0, 1}}, {{0}, {}}, 1);
  auto directed = ReachabilityIndex::Build(tg.graph, tg.docs, 1, false);
  auto undirected = ReachabilityIndex::Build(tg.graph, tg.docs, 1, true);
  EXPECT_FALSE(directed.Reaches(1, 0));
  EXPECT_TRUE(undirected.Reaches(1, 0));
}

class ReachabilityProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, bool>> {};

TEST_P(ReachabilityProperty, MatchesBfsOracleOnRandomGraphs) {
  auto [seed, density, undirected] = GetParam();
  Rng rng(seed);
  const uint32_t n = 80;
  const TermId num_terms = 12;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (int i = 0; i < density; ++i) {
    edges.emplace_back(static_cast<uint32_t>(rng.NextBounded(n)),
                       static_cast<uint32_t>(rng.NextBounded(n)));
  }
  std::vector<std::vector<TermId>> docs(n);
  for (auto& d : docs) {
    size_t len = rng.NextBounded(3);
    for (size_t i = 0; i < len; ++i) {
      d.push_back(static_cast<TermId>(rng.NextBounded(num_terms)));
    }
  }
  auto tg = Make(n, edges, docs, num_terms);
  auto index =
      ReachabilityIndex::Build(tg.graph, tg.docs, num_terms, undirected);
  EXPECT_GT(index.NumLabelEntries(), 0u);
  EXPECT_GT(index.MemoryUsageBytes(), 0u);

  for (VertexId v = 0; v < n; ++v) {
    for (TermId t = 0; t < num_terms; ++t) {
      EXPECT_EQ(index.Reaches(v, t), OracleReaches(tg, v, t, undirected))
          << "v=" << v << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ReachabilityProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(40, 120, 400),
                       ::testing::Bool()));

}  // namespace
}  // namespace ksp
