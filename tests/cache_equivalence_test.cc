// The cache exactness contract (DESIGN.md §9): with caching enabled at
// ANY budget, every query's top-k ids, scores, looseness values, and
// ordering are byte-identical to the uncached run — cold cache, warm
// cache (every query asked twice), and across a QueryExecutorPool whose
// workers share one cache. 210 seeded queries spanning the paper's
// kOriginal and kSDLL workloads, three algorithms, k ∈ {1, 10}, and the
// three budget regimes {0 (pass-through), 64 KiB (eviction pressure),
// unlimited (every entry sticks)}.

#include <gtest/gtest.h>

#include <cstddef>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "core/parallel.h"
#include "core/semantic_cache.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "query_corpus.h"

namespace ksp {
namespace {

constexpr size_t k64KiB = 64 * 1024;

using ExecuteFn = Result<KspResult> (QueryExecutor::*)(const KspQuery&,
                                                       QueryStats*);

struct AlgorithmCase {
  const char* name;
  ExecuteFn fn;
  KspAlgorithm algorithm;
};

constexpr AlgorithmCase kAlgorithms[] = {
    {"BSP", &QueryExecutor::ExecuteBsp, KspAlgorithm::kBsp},
    {"SPP", &QueryExecutor::ExecuteSpp, KspAlgorithm::kSpp},
    {"SP", &QueryExecutor::ExecuteSp, KspAlgorithm::kSp},
};

void ExpectIdentical(const KspResult& got, const KspResult& want,
                     const char* algorithm, size_t query_index,
                     const char* pass) {
  ASSERT_EQ(got.entries.size(), want.entries.size())
      << algorithm << " query " << query_index << " (" << pass << ")";
  for (size_t i = 0; i < want.entries.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — the contract is
    // byte-identity, not approximate equality.
    EXPECT_EQ(got.entries[i].place, want.entries[i].place)
        << algorithm << " query " << query_index << " rank " << i << " ("
        << pass << ")";
    EXPECT_EQ(got.entries[i].score, want.entries[i].score)
        << algorithm << " query " << query_index << " rank " << i << " ("
        << pass << ")";
    EXPECT_EQ(got.entries[i].looseness, want.entries[i].looseness)
        << algorithm << " query " << query_index << " rank " << i << " ("
        << pass << ")";
  }
}

class CacheEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto kb = GenerateKnowledgeBase(SyntheticProfile::DBpediaLike(1500));
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb_ = kb->release();

    // The shared 210-query seeded workload (tests/query_corpus.h),
    // alternating k between 1 and 10.
    queries_ = new std::vector<KspQuery>();
    *queries_ = testing::MakeEquivalenceCorpus(*kb_);
    ASSERT_EQ(queries_->size(), 210u);
    for (size_t i = 0; i < queries_->size(); ++i) {
      (*queries_)[i].k = (i % 2 == 0) ? 1 : 10;
    }

    // Uncached ground truth, one result list per algorithm.
    auto* db = new KspDatabase(kb_);
    db->PrepareAll(3);
    baseline_ = new std::vector<std::vector<KspResult>>();
    QueryExecutor executor(db);
    for (const AlgorithmCase& algo : kAlgorithms) {
      std::vector<KspResult> results;
      results.reserve(queries_->size());
      for (const KspQuery& query : *queries_) {
        auto result = (executor.*algo.fn)(query, nullptr);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        results.push_back(std::move(*result));
      }
      baseline_->push_back(std::move(results));
    }
    delete db;
  }

  static void TearDownTestSuite() {
    delete baseline_;
    baseline_ = nullptr;
    delete queries_;
    queries_ = nullptr;
    delete kb_;
    kb_ = nullptr;
  }

  static std::unique_ptr<KspDatabase> MakeCachedDb(size_t budget) {
    KspOptions options;
    options.cache_budget_bytes = budget;
    auto db = std::make_unique<KspDatabase>(kb_, options);
    db->PrepareAll(3);
    return db;
  }

  /// Runs every query twice (cold then warm) on a fresh database with
  /// the given budget and checks byte-identity against the uncached
  /// baseline on both passes. Sums the warm pass's stats into
  /// `*warm_sum` (out param: ASSERT_* requires a void function).
  void RunColdWarm(size_t budget, QueryStats* warm_sum) {
    auto db = MakeCachedDb(budget);
    QueryExecutor executor(db.get());
    for (size_t a = 0; a < std::size(kAlgorithms); ++a) {
      const AlgorithmCase& algo = kAlgorithms[a];
      for (size_t i = 0; i < queries_->size(); ++i) {
        auto cold = (executor.*algo.fn)((*queries_)[i], nullptr);
        ASSERT_TRUE(cold.ok()) << cold.status().ToString();
        ExpectIdentical(*cold, (*baseline_)[a][i], algo.name, i, "cold");
        QueryStats stats;
        auto warm = (executor.*algo.fn)((*queries_)[i], &stats);
        ASSERT_TRUE(warm.ok()) << warm.status().ToString();
        ExpectIdentical(*warm, (*baseline_)[a][i], algo.name, i, "warm");
        warm_sum->Accumulate(stats);
      }
      if (budget != 0 && budget != kCacheUnlimited) {
        ASSERT_NE(db->semantic_cache(), nullptr);
        EXPECT_LE(db->semantic_cache()->TotalBytes(), budget);
      }
    }
  }

  static const KnowledgeBase* kb_;
  static std::vector<KspQuery>* queries_;
  /// baseline_[algorithm index][query index], aligned with kAlgorithms.
  static std::vector<std::vector<KspResult>>* baseline_;
};

const KnowledgeBase* CacheEquivalenceTest::kb_ = nullptr;
std::vector<KspQuery>* CacheEquivalenceTest::queries_ = nullptr;
std::vector<std::vector<KspResult>>* CacheEquivalenceTest::baseline_ =
    nullptr;

TEST_F(CacheEquivalenceTest, ZeroBudgetIsExactPassThrough) {
  // budget 0 constructs no cache at all; this is the control arm proving
  // the harness itself agrees with the baseline.
  QueryStats warm;
  RunColdWarm(0, &warm);
  EXPECT_EQ(warm.dg_cache_hits, 0u);
  EXPECT_EQ(warm.result_cache_hits, 0u);
}

TEST_F(CacheEquivalenceTest, SmallBudgetEvictsButStaysExact) {
  QueryStats warm;
  RunColdWarm(k64KiB, &warm);
  // 64 KiB over 630 cold queries forces evictions; exactness held above.
  EXPECT_GT(warm.dg_cache_hits + warm.result_cache_hits +
                warm.dg_cache_misses + warm.result_cache_misses,
            0u);
}

TEST_F(CacheEquivalenceTest, UnlimitedBudgetServesEveryWarmQueryFromCache) {
  QueryStats warm;
  RunColdWarm(kCacheUnlimited, &warm);
  // Nothing evicts, so every warm query is answered straight from the
  // result layer: one hit per (algorithm, query) pair.
  EXPECT_EQ(warm.result_cache_hits,
            std::size(kAlgorithms) * queries_->size());
  EXPECT_EQ(warm.result_cache_misses, 0u);
  EXPECT_EQ(warm.cache_evictions, 0u);
}

TEST_F(CacheEquivalenceTest, PoolWorkersSharingOneCacheStayExact) {
  // Eight workers race on the shared cache: first pass populates it
  // concurrently, second pass hits it concurrently. Results must remain
  // positionally byte-identical to the uncached baseline in both.
  for (size_t budget : {k64KiB, kCacheUnlimited}) {
    auto db = MakeCachedDb(budget);
    QueryExecutorPool pool(db.get(), /*num_threads=*/8);
    for (size_t a = 0; a < std::size(kAlgorithms); ++a) {
      for (const char* pass : {"pool-cold", "pool-warm"}) {
        auto results = pool.Run(*queries_, kAlgorithms[a].algorithm);
        ASSERT_TRUE(results.ok()) << results.status().ToString();
        ASSERT_EQ(results->size(), queries_->size());
        for (size_t i = 0; i < results->size(); ++i) {
          ExpectIdentical((*results)[i], (*baseline_)[a][i],
                          kAlgorithms[a].name, i, pass);
        }
      }
    }
  }
}

TEST_F(CacheEquivalenceTest, InvalidationAfterReloadKeepsAnswersExact) {
  // LoadIndexes swaps index generations and must drop the cache; the
  // post-reload cold pass still matches the baseline (a stale cache
  // would replay distances from the dropped generation).
  auto db = MakeCachedDb(kCacheUnlimited);
  QueryExecutor executor(db.get());
  const AlgorithmCase& algo = kAlgorithms[1];  // SPP
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE((executor.*algo.fn)((*queries_)[i], nullptr).ok());
  }
  ASSERT_GT(db->semantic_cache()->TotalBytes(), 0u);

  const std::string dir = ::testing::TempDir() + "/cache_equiv_reload";
  ASSERT_TRUE(db->SaveIndexes(dir).ok());
  ASSERT_TRUE(db->LoadIndexes(dir).ok());
  EXPECT_EQ(db->semantic_cache()->TotalBytes(), 0u);

  for (size_t i = 0; i < 40; ++i) {
    QueryStats stats;
    auto result = (executor.*algo.fn)((*queries_)[i], &stats);
    ASSERT_TRUE(result.ok());
    ExpectIdentical(*result, (*baseline_)[1][i], algo.name, i,
                    "post-reload");
  }
}

}  // namespace
}  // namespace ksp
