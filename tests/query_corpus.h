// The canonical seeded query corpus shared by every equivalence suite
// (oracle, backend-invariance, shard, cache, intra-query pipeline):
// 210 queries over the DBpediaLike(1500) synthetic KB — three kOriginal
// keyword-count mixes plus a high-looseness kSDLL tail — with
// byte-identical seeds, so all suites pin the exact same executions.
// Tests that vary k apply their own policy on the returned vector;
// generation itself always uses the default k (k only stamps the query,
// it does not perturb the generator's RNG stream).

#ifndef KSP_TESTS_QUERY_CORPUS_H_
#define KSP_TESTS_QUERY_CORPUS_H_

#include <vector>

#include "core/query.h"
#include "datagen/query_gen.h"
#include "rdf/knowledge_base.h"

namespace ksp {
namespace testing {

/// The 210-query equivalence corpus for `kb` (which must be the
/// DBpediaLike(1500) KB for the seeds to pin the historic workload).
inline std::vector<KspQuery> MakeEquivalenceCorpus(const KnowledgeBase& kb) {
  struct Config {
    uint32_t num_keywords;
    QueryClass query_class;
    uint64_t seed;
    size_t count;
  };
  static constexpr Config kConfigs[] = {
      {2, QueryClass::kOriginal, 11, 70},
      {3, QueryClass::kOriginal, 22, 70},
      {5, QueryClass::kOriginal, 33, 50},
      {3, QueryClass::kSDLL, 44, 20},
  };
  std::vector<KspQuery> queries;
  for (const Config& config : kConfigs) {
    QueryGenOptions options;
    options.num_keywords = config.num_keywords;
    options.seed = config.seed;
    auto batch =
        GenerateQueries(kb, config.query_class, options, config.count);
    queries.insert(queries.end(), batch.begin(), batch.end());
  }
  return queries;
}

}  // namespace testing
}  // namespace ksp

#endif  // KSP_TESTS_QUERY_CORPUS_H_
