// Table 6: total size of the α-radius word neighborhoods (inverted file
// over places and R-tree nodes) for α ∈ {1, 2, 3, 5} on both datasets.
// The paper's trend — moderate growth up to α = 3, then an explosion at
// α = 5 (204.70 GB on DBpedia) — comes from the BFS ball covering most of
// a vertex's neighborhood vocabulary by 5 hops.

#include <cstdio>

#include "alpha/alpha_index.h"
#include "bench_common.h"
#include "common/strings.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Table 6: alpha-radius word neighborhood size ===\n");
  std::printf("%-14s %12s %12s %16s\n", "dataset", "alpha", "entries",
              "size");

  for (bool dbpedia : {true, false}) {
    auto kb = MakeDataset(dbpedia, env.Scaled(dbpedia ? kDBpediaBaseVertices
                                                      : kYagoBaseVertices));
    ksp::KspDatabase db(kb.get());
    db.BuildRTree();
    for (uint32_t alpha : {1u, 2u, 3u, 5u}) {
      ksp::AlphaIndex index =
          ksp::AlphaIndex::Build(*kb, db.rtree(), alpha);
      std::printf("%-14s %12u %12llu %16s\n",
                  dbpedia ? "dbpedia-like" : "yago-like", alpha,
                  static_cast<unsigned long long>(index.TotalEntries()),
                  ksp::HumanBytes(index.SizeBytes()).c_str());
    }
  }
  std::printf(
      "\npaper (full scale, GB): DBpedia 3.56 / 24.33 / 32.53 / 204.70; "
      "Yago 1.07 / 3.61 / 12.37 / 30.63 for alpha 1/2/3/5\n");
  return ksp::bench::Finish();
}
