// Ablation study (beyond the paper's figures): each pruning rule toggled
// individually, the two ranking functions, both R-tree construction modes,
// and the §8 future-work undirected edge mode. Quantifies where SP's
// speedup comes from.

#include <cstdio>

#include "bench_common.h"

namespace {

using ksp::bench::Algo;
using ksp::bench::BenchEnv;
using ksp::bench::PrintStatsRow;
using ksp::bench::RunWorkload;

void RunConfig(const char* label, const ksp::KnowledgeBase& kb,
               const BenchEnv& env, ksp::KspOptions options,
               Algo algo, uint32_t alpha,
               const std::vector<ksp::KspQuery>& queries) {
  options.time_limit_ms = env.time_limit_ms;
  ksp::KspDatabase db(&kb, options);
  db.PrepareAll(alpha);
  PrintStatsRow(label, algo, RunWorkload(db, algo, queries, 5));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Ablation: pruning rules, ranking, edge mode ===\n");

  auto kb = MakeDataset(/*dbpedia_like=*/true,
                        env.Scaled(kDBpediaBaseVertices / 2));
  PrintDatasetSummary("dbpedia-like", *kb);

  ksp::QueryGenOptions qopt;
  qopt.num_keywords = 5;
  qopt.k = 5;
  qopt.seed = 1101;
  auto queries =
      ksp::GenerateQueries(*kb, ksp::QueryClass::kOriginal, qopt,
                           env.queries);
  std::printf("queries=%zu\n\n", queries.size());
  PrintStatsHeader();

  ksp::KspOptions base;

  // Pruning ladder: BSP -> +rule1 -> +rule2 -> +rules1+2 -> SP (all).
  RunConfig("baseline", *kb, env, base, Algo::kBsp, 3, queries);
  {
    ksp::KspOptions o = base;
    o.use_dynamic_bound_pruning = false;
    RunConfig("rule1-only", *kb, env, o, Algo::kSpp, 3, queries);
  }
  {
    ksp::KspOptions o = base;
    o.use_unqualified_pruning = false;
    RunConfig("rule2-only", *kb, env, o, Algo::kSpp, 3, queries);
  }
  RunConfig("rules1+2", *kb, env, base, Algo::kSpp, 3, queries);
  RunConfig("sp-full", *kb, env, base, Algo::kSp, 3, queries);
  {
    ksp::KspOptions o = base;
    o.use_unqualified_pruning = false;
    o.use_dynamic_bound_pruning = false;
    RunConfig("alpha-only", *kb, env, o, Algo::kSp, 3, queries);
  }

  // Ranking function: Equation 1 (weighted sum) vs Equation 2 (product).
  {
    ksp::KspOptions o = base;
    o.ranking = ksp::RankingFunction::WeightedSum(0.5);
    RunConfig("wsum-sp", *kb, env, o, Algo::kSp, 3, queries);
  }

  // R-tree construction mode only affects preprocessing; query side shown
  // for completeness.
  {
    ksp::KspOptions o = base;
    o.bulk_load_rtree = true;
    RunConfig("str-rtree-sp", *kb, env, o, Algo::kSp, 3, queries);
  }

  // R-tree linear-split construction (Guttman's cheaper alternative).
  {
    ksp::KspOptions o = base;
    o.rtree_options.split = ksp::RTreeSplitStrategy::kLinear;
    RunConfig("linsplit-sp", *kb, env, o, Algo::kSp, 3, queries);
  }

  // §8 future work: undirected edges (keywords may be covered through
  // incoming paths as well).
  {
    ksp::KspOptions o = base;
    o.undirected_edges = true;
    RunConfig("undirected-sp", *kb, env, o, Algo::kSp, 3, queries);
  }
  return ksp::bench::Finish();
}
