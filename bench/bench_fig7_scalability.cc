// Table 7 + Figure 7: scalability over random-jump samples (c = 0.15) of
// the Yago-like dataset at 25/50/75/100% of its vertices. As in §6.2.4,
// queries are generated once on the smallest sample (as keyword strings)
// and replayed on every sample.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/sampler.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Table 7 + Figure 7: scalability (random jump, c=0.15) "
              "===\n");

  const uint32_t full = env.Scaled(2 * kYagoBaseVertices);
  auto base = MakeDataset(/*dbpedia_like=*/false, full);

  std::vector<std::unique_ptr<ksp::KnowledgeBase>> samples;
  std::printf("%-10s %12s %12s %12s\n", "fraction", "vertices", "edges",
              "places");
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    auto target = static_cast<uint32_t>(full * fraction);
    auto sample = ksp::RandomJumpSample(*base, target, 0.15, 7001);
    if (!sample.ok()) {
      std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10.2f %12u %12llu %12u\n", fraction,
                (*sample)->num_vertices(),
                static_cast<unsigned long long>((*sample)->num_edges()),
                (*sample)->num_places());
    samples.push_back(std::move(*sample));
  }

  // Queries from the smallest sample, replayed everywhere by keyword
  // string (term ids differ across KBs).
  ksp::QueryGenOptions qopt;
  qopt.num_keywords = 5;
  qopt.k = 5;
  qopt.seed = 701;
  auto seed_queries = ksp::GenerateQueries(
      *samples.front(), ksp::QueryClass::kOriginal, qopt, env.queries);
  std::vector<std::pair<ksp::Point, std::vector<std::string>>> replay;
  for (const auto& q : seed_queries) {
    std::vector<std::string> keywords;
    for (ksp::TermId t : q.keywords) {
      keywords.push_back(samples.front()->vocabulary().Term(t));
    }
    replay.emplace_back(q.location, std::move(keywords));
  }
  std::printf("\nqueries=%zu (generated on the smallest sample)\n\n",
              replay.size());

  PrintStatsHeader();
  const double fractions[] = {0.25, 0.5, 0.75, 1.0};
  for (size_t i = 0; i < samples.size(); ++i) {
    auto db = MakeDatabase(samples[i].get(), env, /*alpha=*/3);
    std::vector<ksp::KspQuery> queries;
    for (const auto& [location, keywords] : replay) {
      queries.push_back(db->MakeQuery(location, keywords, 5));
    }
    char config[32];
    std::snprintf(config, sizeof(config), "frac=%.2f", fractions[i]);
    for (Algo algo : {Algo::kBsp, Algo::kSpp, Algo::kSp}) {
      PrintStatsRow(config, algo,
                    RunWorkload(*db, algo, queries, 5));
    }
  }
  return ksp::bench::Finish();
}
