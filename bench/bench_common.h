#ifndef KSP_BENCH_BENCH_COMMON_H_
#define KSP_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/parallel.h"
#include "core/trace.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"
#include "rdf/knowledge_base.h"

namespace ksp {
namespace bench {

/// Environment-driven bench configuration:
///   KSP_SCALE          dataset size multiplier (default 1.0)
///   KSP_QUERIES        queries per configuration (default 25; paper: 100)
///   KSP_TIME_LIMIT_MS  per-query abort limit (default 2000; paper: 120000
///                      for BSP)
/// Command-line flags (FromArgs):
///   --metrics-out=FILE  write the bench-wide ksp_* metrics snapshot
///                       (DESIGN.md §7) as JSON to FILE on exit
///   --json-out=FILE     write every PrintStatsRow row as a machine-readable
///                       JSON document (schema below) to FILE on exit
///   --intra-threads=N   answer each query with N intra-query pipeline
///                       threads (DESIGN.md §8); default 1 = sequential
///   --warmup=N          run each workload N untimed passes first
///   --repeat=N          run each workload N timed passes and report the
///                       median pass (by total wall time); default 1
///   --cache-budget=N    semantic-cache byte budget (DESIGN.md §9) applied
///                       to every MakeDatabase; 0 (default) disables the
///                       cache, "unlimited" never evicts. Combine with
///                       --warmup/--repeat to measure warm-cache passes.
///   --backend=memory|disk
///                       storage backend (DESIGN.md §10) for every
///                       MakeDatabase; disk spills the indexes and serves
///                       queries through the shared buffer pool
///   --bufferpool-budget=BYTES
///                       buffer-pool byte budget for --backend=disk
///                       (default: the KspOptions default)
///   --bfs-frontier=flat|legacy
///                       TQSP BFS frontier driver (DESIGN.md §13) for
///                       every MakeDatabase. Temporary A/B knob for the
///                       raw-speed pass; goes away with
///                       BfsFrontier::kLegacy once flat has soaked.
struct BenchEnv {
  double scale = 1.0;
  size_t queries = 25;
  double time_limit_ms = 2000.0;
  std::string metrics_out;  // empty: metrics collection off
  uint32_t intra_threads = 1;
  size_t warmup = 0;
  size_t repeat = 1;
  size_t cache_budget = 0;  // KspOptions::cache_budget_bytes for benches
  StorageBackend backend = StorageBackend::kMemory;
  uint64_t bufferpool_budget = 0;  // 0: keep the KspOptions default
  BfsFrontier bfs_frontier = BfsFrontier::kFlat;
  std::string json_out;  // empty: JSON row capture off

  static BenchEnv FromEnv();
  /// FromEnv() plus flag parsing; KSP_CHECK-fails on unknown flags. Also
  /// enables the process-wide bench metrics registry when --metrics-out
  /// is given (see BenchMetrics / Finish).
  static BenchEnv FromArgs(int argc, char** argv);

  uint32_t Scaled(uint32_t base) const {
    return static_cast<uint32_t>(base * scale) < 100
               ? 100
               : static_cast<uint32_t>(base * scale);
  }
};

/// Base dataset sizes standing in for the full DBpedia/Yago dumps.
inline constexpr uint32_t kDBpediaBaseVertices = 40000;
inline constexpr uint32_t kYagoBaseVertices = 40000;

/// Builds the calibrated dataset (see DESIGN.md substitution 1).
std::unique_ptr<KnowledgeBase> MakeDataset(bool dbpedia_like,
                                           uint32_t num_vertices);

/// Builds a fully prepared database; time limit from `env`.
std::unique_ptr<KspDatabase> MakeDatabase(const KnowledgeBase* kb,
                                          const BenchEnv& env, uint32_t alpha,
                                          KspOptions options = {});

/// Benches dispatch through the shared algorithm enum (KW included).
using Algo = KspAlgorithm;
inline const char* AlgoName(Algo algo) { return KspAlgorithmName(algo); }

/// Aggregated workload metrics (averages over queries, like §6 reports).
/// With --repeat=N this is the median timed pass; wall_us holds that
/// pass's per-query wall times and phase_exclusive_us its summed per-phase
/// exclusive trace time (populated only when --json-out or --metrics-out
/// keeps tracing on).
struct WorkloadStats {
  QueryStats sum;
  size_t num_queries = 0;
  size_t timed_out = 0;
  std::vector<double> wall_us;  // per-query wall time, microseconds
  double phase_exclusive_us[kNumTracePhases] = {};

  double AvgTotalMs() const { return Avg(sum.total_ms); }
  double AvgSemanticMs() const { return Avg(sum.semantic_ms); }
  double AvgOtherMs() const { return Avg(sum.total_ms - sum.semantic_ms); }
  double AvgTqsp() const {
    return Avg(static_cast<double>(sum.tqsp_computations));
  }
  double AvgRtreeNodes() const {
    return Avg(static_cast<double>(sum.rtree_nodes_accessed));
  }
  /// Nearest-rank percentiles over wall_us (0 when empty).
  double MedianWallUs() const { return PercentileWallUs(0.50); }
  double P95WallUs() const { return PercentileWallUs(0.95); }
  double PercentileWallUs(double q) const;

 private:
  double Avg(double total) const {
    return num_queries == 0 ? 0.0
                            : total / static_cast<double>(num_queries);
  }
};

/// Runs `queries` through one algorithm on a fresh QueryExecutor, with
/// `k` overriding each query's requested result size (pass 0 to keep the
/// generated k). Honors the FromArgs execution flags: --intra-threads
/// configures the executor's pipeline, --warmup adds untimed passes, and
/// --repeat returns the median timed pass.
WorkloadStats RunWorkload(const KspDatabase& db, Algo algo,
                          const std::vector<KspQuery>& queries, uint32_t k);

/// Collects the per-query results as well (Figure 8 needs result
/// statistics, not runtimes).
std::vector<KspResult> RunWorkloadCollect(const KspDatabase& db, Algo algo,
                                          const std::vector<KspQuery>& queries,
                                          uint32_t k);

/// Prints the standard per-row metrics line. With --json-out, the row is
/// also captured for the JSON document Finish() writes:
///   {"schema_version": 1, "bench": "<argv0 basename>",
///    "env": {scale, queries, time_limit_ms, intra_threads, warmup,
///            repeat, cache_budget},
///    "rows": [{config, algo, queries, timed_out, mean_wall_us,
///              median_wall_us, p95_wall_us, phase_exclusive_us: {<phase>:
///              µs, ...}, counters: {tqsp_computations,
///              rtree_nodes_accessed, vertices_visited,
///              speculative_wasted_tqsp},
///              cache: {dg_hits, dg_misses, dg_hit_rate, result_hits,
///                      result_misses, result_hit_rate, evictions},
///              backend: "memory"|"disk",
///              bufferpool: {budget_bytes, hits, misses, evictions},
///              shard: {count, shards_visited, shards_pruned,
///                      prune_rate}}]}
/// The schema is stable: fields are only added, never renamed or removed
/// (cache_budget, the cache object, backend, the bufferpool object, and
/// the shard object are additive; schema_version stays 1). The row-level
/// backend/bufferpool annotation reflects the most recent MakeDatabase;
/// the shard object appears only while SetShardRowAnnotation is active.
void PrintStatsRow(const char* config, Algo algo,
                   const WorkloadStats& stats);

/// Marks subsequent PrintStatsRow rows as answered by a sharded
/// scatter-gather executor over `shard_count` shards (DESIGN.md §12):
/// each JSON row gains a `shard` object with the count, total shards
/// visited/pruned (from QueryStats), and the prune rate. Pass 0 to
/// return to unsharded rows (also reset by MakeDatabase).
void SetShardRowAnnotation(uint32_t shard_count);

/// Prints the standard header for PrintStatsRow tables.
void PrintStatsHeader();

/// Prints the dataset summary line (§6.1-style statistics).
void PrintDatasetSummary(const char* label, const KnowledgeBase& kb);

/// The process-wide bench metrics registry, or nullptr until FromArgs
/// sees --metrics-out. RunWorkload / RunWorkloadCollect attach it to
/// their executors automatically.
MetricsRegistry* BenchMetrics();

/// Bench epilogue: writes the metrics snapshot to --metrics-out and the
/// captured rows to --json-out (each if enabled) and returns the process
/// exit code. Every bench main ends with `return ksp::bench::Finish();`.
int Finish();

}  // namespace bench
}  // namespace ksp

#endif  // KSP_BENCH_BENCH_COMMON_H_
