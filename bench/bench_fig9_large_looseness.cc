// Figure 9: runtime of BSP/SPP/SP on the hard SDLL and LDLL query classes
// (results with large looseness) while varying k, on the DBpedia-like
// dataset. The paper's finding: the dominant cost factor is looseness,
// not spatial distance — SDLL and LDLL cost similarly and both are much
// harder than O queries, but SP stays fastest by orders of magnitude.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Figure 9: large-looseness queries (DBpedia-like) ===\n");

  auto kb = MakeDataset(/*dbpedia_like=*/true,
                        env.Scaled(kDBpediaBaseVertices));
  PrintDatasetSummary("dbpedia-like", *kb);
  auto db = MakeDatabase(kb.get(), env, /*alpha=*/3);

  for (auto [name, query_class] :
       {std::pair{"SDLL", ksp::QueryClass::kSDLL},
        std::pair{"LDLL", ksp::QueryClass::kLDLL}}) {
    ksp::QueryGenOptions qopt;
    qopt.num_keywords = 5;
    qopt.k = 5;
    qopt.seed = 901;
    auto queries =
        ksp::GenerateQueries(*kb, query_class, qopt, env.queries);
    std::printf("\n%s queries: %zu\n", name, queries.size());
    PrintStatsHeader();
    for (uint32_t k : {1u, 3u, 5u, 8u, 10u, 15u, 20u}) {
      char config[32];
      std::snprintf(config, sizeof(config), "%s k=%u", name, k);
      for (Algo algo : {Algo::kBsp, Algo::kSpp, Algo::kSp}) {
        PrintStatsRow(config, algo,
                      RunWorkload(*db, algo, queries, k));
      }
    }
  }
  return ksp::bench::Finish();
}
