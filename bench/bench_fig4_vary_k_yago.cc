// Figure 4: BSP vs SPP vs SP on the Yago-like dataset while varying
// k ∈ {1, 3, 5, 8, 10, 15, 20} (|q.ψ| = 5, α = 3). Yago's low keyword
// frequency and high place fraction stress Pruning Rule 1 (many more
// reachability queries), reproducing the paper's narrower SPP/BSP gap.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Figure 4: varying k on Yago(-like) ===\n");

  auto kb = MakeDataset(/*dbpedia_like=*/false,
                        env.Scaled(kYagoBaseVertices));
  PrintDatasetSummary("yago-like", *kb);
  auto db = MakeDatabase(kb.get(), env, /*alpha=*/3);

  ksp::QueryGenOptions qopt;
  qopt.num_keywords = 5;
  qopt.k = 5;
  qopt.seed = 401;
  auto queries = ksp::GenerateQueries(*kb, ksp::QueryClass::kOriginal, qopt,
                                      env.queries);
  std::printf("queries=%zu |q.psi|=5 alpha=3\n\n", queries.size());

  PrintStatsHeader();
  for (uint32_t k : {1u, 3u, 5u, 8u, 10u, 15u, 20u}) {
    char config[32];
    std::snprintf(config, sizeof(config), "k=%u", k);
    for (Algo algo : {Algo::kBsp, Algo::kSpp, Algo::kSp}) {
      PrintStatsRow(config, algo, RunWorkload(*db, algo, queries, k));
    }
  }
  return ksp::bench::Finish();
}
