// Table 4: storage cost of the R-tree, the native RDF graph, and the
// inverted index, for both datasets. The disk-resident inverted index is
// also materialized so its file size is reported alongside the in-memory
// footprint, and the checksummed (v2) save/load paths are timed against
// the CRC-free legacy writers to report the integrity overhead.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "text/inverted_index.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Table 4: storage cost ===\n");
  std::printf("%-14s %14s %14s %16s %16s\n", "dataset", "R-tree",
              "RDF graph", "inv-index(mem)", "inv-index(disk)");

  for (bool dbpedia : {true, false}) {
    auto kb = MakeDataset(dbpedia, env.Scaled(dbpedia ? kDBpediaBaseVertices
                                                      : kYagoBaseVertices));
    ksp::KspDatabase db(kb.get());
    db.BuildRTree();

    std::string path = (std::filesystem::temp_directory_path() /
                        "ksp_table4_index.idx")
                           .string();
    uint64_t disk_bytes = 0;
    if (ksp::DiskInvertedIndex::Write(kb->inverted_index(), path).ok()) {
      auto opened = ksp::DiskInvertedIndex::Open(path);
      if (opened.ok()) disk_bytes = (*opened)->SizeBytes();
      std::remove(path.c_str());
    }

    std::printf("%-14s %14s %14s %16s %16s\n",
                dbpedia ? "dbpedia-like" : "yago-like",
                ksp::HumanBytes(db.rtree().MemoryUsageBytes()).c_str(),
                ksp::HumanBytes(kb->GraphMemoryBytes()).c_str(),
                ksp::HumanBytes(kb->InvertedIndexBytes()).c_str(),
                ksp::HumanBytes(disk_bytes).c_str());
  }
  std::printf(
      "\npaper (full-scale): DBpedia R-tree 50.54MB graph 607.95MB "
      "inv 1307.98MB; Yago R-tree 273.17MB graph 454.81MB inv 231.91MB\n");

  // --- Checksum overhead: v2 (CRC32C-framed, atomic rename) persistence
  // vs. the CRC-free legacy writers, plus raw CRC32C throughput. ---
  std::printf("\n=== Checksum overhead (v2 vs legacy persistence) ===\n");
  {
    ksp::Rng rng(4);
    std::string buf(64ull << 20, '\0');
    for (char& c : buf) c = static_cast<char>(rng.Next());
    ksp::Timer timer;
    timer.Start();
    uint32_t crc = ksp::Crc32c(buf);
    timer.Stop();
    std::printf("crc32c throughput: %.0f MB/s (64 MiB, crc=%08x)\n",
                static_cast<double>(buf.size()) / (1 << 20) /
                    timer.ElapsedSeconds(),
                crc);
  }

  std::printf("%-26s %12s %12s %9s\n", "operation", "v2 (ms)",
              "legacy (ms)", "overhead");
  {
    auto kb = MakeDataset(true, env.Scaled(kDBpediaBaseVertices));
    ksp::KspDatabase db(kb.get());
    db.BuildRTree();
    const std::string dir = std::filesystem::temp_directory_path().string();
    const std::string v2 = dir + "/ksp_table4_v2.bin";
    const std::string v1 = dir + "/ksp_table4_v1.bin";

    auto report = [](const char* op, double v2_ms, double v1_ms) {
      std::printf("%-26s %12.2f %12.2f %8.1f%%\n", op, v2_ms, v1_ms,
                  v1_ms > 0 ? (v2_ms / v1_ms - 1.0) * 100.0 : 0.0);
    };
    auto time_ms = [](auto&& fn) {
      ksp::Timer timer;
      timer.Start();
      fn();
      timer.Stop();
      return timer.ElapsedMillis();
    };

    report("rtree save",
           time_ms([&] { (void)db.rtree().Save(v2); }),
           time_ms([&] { (void)db.rtree().SaveLegacyForTesting(v1); }));
    report("rtree load",
           time_ms([&] { (void)ksp::RTree::Load(v2); }),
           time_ms([&] { (void)ksp::RTree::Load(v1); }));

    report("inverted-index write",
           time_ms([&] {
             (void)ksp::DiskInvertedIndex::Write(kb->inverted_index(), v2);
           }),
           time_ms([&] {
             (void)ksp::DiskInvertedIndex::WriteLegacyForTesting(
                 kb->inverted_index(), v1);
           }));
    report("inverted-index open",
           time_ms([&] { (void)ksp::DiskInvertedIndex::Open(v2); }),
           time_ms([&] { (void)ksp::DiskInvertedIndex::Open(v1); }));

    std::remove(v2.c_str());
    std::remove(v1.c_str());
  }
  return ksp::bench::Finish();
}
