// Table 4: storage cost of the R-tree, the native RDF graph, and the
// inverted index, for both datasets. The disk-resident inverted index is
// also materialized so its file size is reported alongside the in-memory
// footprint.

#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "common/strings.h"
#include "text/inverted_index.h"

int main() {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Table 4: storage cost ===\n");
  std::printf("%-14s %14s %14s %16s %16s\n", "dataset", "R-tree",
              "RDF graph", "inv-index(mem)", "inv-index(disk)");

  for (bool dbpedia : {true, false}) {
    auto kb = MakeDataset(dbpedia, env.Scaled(dbpedia ? kDBpediaBaseVertices
                                                      : kYagoBaseVertices));
    ksp::KspDatabase db(kb.get());
    db.BuildRTree();

    std::string path = (std::filesystem::temp_directory_path() /
                        "ksp_table4_index.idx")
                           .string();
    uint64_t disk_bytes = 0;
    if (ksp::DiskInvertedIndex::Write(kb->inverted_index(), path).ok()) {
      auto opened = ksp::DiskInvertedIndex::Open(path);
      if (opened.ok()) disk_bytes = (*opened)->SizeBytes();
      std::remove(path.c_str());
    }

    std::printf("%-14s %14s %14s %16s %16s\n",
                dbpedia ? "dbpedia-like" : "yago-like",
                ksp::HumanBytes(db.rtree().MemoryUsageBytes()).c_str(),
                ksp::HumanBytes(kb->GraphMemoryBytes()).c_str(),
                ksp::HumanBytes(kb->InvertedIndexBytes()).c_str(),
                ksp::HumanBytes(disk_bytes).c_str());
  }
  std::printf(
      "\npaper (full-scale): DBpedia R-tree 50.54MB graph 607.95MB "
      "inv 1307.98MB; Yago R-tree 273.17MB graph 454.81MB inv 231.91MB\n");
  return 0;
}
