// Component micro-benchmarks (google-benchmark): per-operation costs of
// the substrates the kSP engine is built on. These quantify the paper's
// §6.2.6 observation that spatial operations are orders of magnitude
// cheaper than graph-browsing operations.

#include <benchmark/benchmark.h>

#include <memory>

#include "alpha/alpha_index.h"
#include "bench_common.h"
#include "common/rng.h"
#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "common/logging.h"
#include "reach/reachability_index.h"
#include "spatial/rtree.h"
#include "storage/disk_graph.h"
#include "text/tokenizer.h"

namespace {

using ksp::bench::MakeDataset;

/// Shared fixture state, built once (dataset generation is expensive).
struct SharedState {
  std::unique_ptr<ksp::KnowledgeBase> kb;
  std::unique_ptr<ksp::KspDatabase> db;
  std::unique_ptr<ksp::QueryExecutor> exec;
  std::vector<ksp::KspQuery> queries;

  SharedState() {
    kb = MakeDataset(/*dbpedia_like=*/true, 10000);
    db = std::make_unique<ksp::KspDatabase>(kb.get());
    db->PrepareAll(3);
    exec = std::make_unique<ksp::QueryExecutor>(db.get());
    ksp::QueryGenOptions qopt;
    qopt.num_keywords = 5;
    qopt.k = 5;
    queries = GenerateQueries(*kb, ksp::QueryClass::kOriginal, qopt, 8);
  }
};

SharedState& State() {
  static SharedState* state = new SharedState();
  return *state;
}

void BM_RTreeInsert(benchmark::State& state) {
  ksp::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    ksp::RTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(ksp::Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)},
                  i);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  ksp::Rng rng(2);
  std::vector<std::pair<ksp::Point, uint64_t>> points;
  for (int i = 0; i < state.range(0); ++i) {
    points.emplace_back(
        ksp::Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)}, i);
  }
  for (auto _ : state) {
    auto tree = ksp::RTree::BulkLoadStr(points);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_RTreeNearestNeighbor(benchmark::State& state) {
  auto& shared = State();
  ksp::Rng rng(3);
  for (auto _ : state) {
    ksp::Point q{rng.NextDouble(35, 60), rng.NextDouble(-10, 30)};
    ksp::NearestIterator it(&shared.db->rtree(), q);
    ksp::NearestIterator::Item item;
    for (int i = 0; i < state.range(0) && it.NextData(&item); ++i) {
      benchmark::DoNotOptimize(item);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeNearestNeighbor)->Arg(1)->Arg(10)->Arg(100);

void BM_ReachabilityQuery(benchmark::State& state) {
  auto& shared = State();
  const auto* reach = shared.db->reachability_index();
  ksp::Rng rng(4);
  const uint32_t n = shared.kb->num_vertices();
  const uint32_t terms = shared.kb->num_terms();
  for (auto _ : state) {
    bool r = reach->Reaches(static_cast<ksp::VertexId>(rng.NextBounded(n)),
                            static_cast<ksp::TermId>(rng.NextBounded(terms)));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachabilityQuery);

void BM_AlphaBoundLookup(benchmark::State& state) {
  auto& shared = State();
  const auto* alpha = shared.db->alpha_index();
  ksp::Rng rng(5);
  const uint32_t entries = alpha->num_places() + alpha->num_nodes();
  const uint32_t terms = shared.kb->num_terms();
  for (auto _ : state) {
    auto d = alpha->EntryTermDistance(
        static_cast<uint32_t>(rng.NextBounded(entries)),
        static_cast<ksp::TermId>(rng.NextBounded(terms)));
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AlphaBoundLookup);

void BM_TqspConstruction(benchmark::State& state) {
  auto& shared = State();
  ksp::Rng rng(6);
  const auto& query = shared.queries.front();
  const uint32_t places = shared.kb->num_places();
  for (auto _ : state) {
    auto tree = shared.exec->ComputeTqspForPlace(
        static_cast<ksp::PlaceId>(rng.NextBounded(places)), query);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TqspConstruction);

void BM_QuerySp(benchmark::State& state) {
  auto& shared = State();
  size_t i = 0;
  for (auto _ : state) {
    auto result =
        shared.exec->ExecuteSp(shared.queries[i % shared.queries.size()]);
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySp);

void BM_QuerySpp(benchmark::State& state) {
  auto& shared = State();
  size_t i = 0;
  for (auto _ : state) {
    auto result = shared.exec->ExecuteSpp(
        shared.queries[i % shared.queries.size()]);
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySpp);

/// Disabled tracing (null trace pointer): the acceptance bar is "a
/// disabled TraceSpan compiles down to a branch", i.e. the cost per
/// guard must be nanoseconds — compare against BM_TraceSpanEnabled.
void BM_TraceSpanDisabled(benchmark::State& state) {
  ksp::QueryTrace* trace = nullptr;
  for (auto _ : state) {
    ksp::TraceSpan span(trace, ksp::TracePhase::kTqspCompute);
    span.AddItems(1);
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  ksp::QueryTrace trace;
  trace.set_record_spans(state.range(0) != 0);
  for (auto _ : state) {
    ksp::TraceSpan span(&trace, ksp::TracePhase::kTqspCompute);
    span.AddItems(1);
    benchmark::DoNotOptimize(trace);
  }
  if (state.range(0) != 0) trace.Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanEnabled)->Arg(0)->Arg(1);

/// Whole-query overhead of the metrics pipeline (internal aggregate
/// trace + counter flush) — compare against BM_QuerySp.
void BM_QuerySpMetrics(benchmark::State& state) {
  auto& shared = State();
  static ksp::MetricsRegistry* registry = new ksp::MetricsRegistry();
  ksp::QueryExecutor exec(shared.db.get());
  exec.set_metrics(registry);
  size_t i = 0;
  for (auto _ : state) {
    auto result = exec.ExecuteSp(shared.queries[i % shared.queries.size()]);
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySpMetrics);

void BM_MetricsCounterIncrement(benchmark::State& state) {
  static ksp::MetricsRegistry* registry = new ksp::MetricsRegistry();
  ksp::Counter* counter = registry->GetCounter("bm_counter_total");
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterIncrement)->Threads(1)->Threads(8);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  static ksp::MetricsRegistry* registry = new ksp::MetricsRegistry();
  ksp::Histogram* histogram = registry->GetHistogram(
      "bm_latency_ms", ksp::Histogram::DefaultLatencyBucketsMs());
  double v = 0.0;
  for (auto _ : state) {
    histogram->Observe(v);
    v = v > 1000 ? 0.0 : v + 0.37;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve)->Threads(1)->Threads(8);

void BM_MemoryGraphBfs(benchmark::State& state) {
  auto& shared = State();
  const ksp::Graph& graph = shared.kb->graph();
  ksp::Rng rng(7);
  const uint32_t n = graph.num_vertices();
  std::vector<uint32_t> seen(n, 0);
  uint32_t epoch = 0;
  std::vector<ksp::VertexId> queue;
  for (auto _ : state) {
    ++epoch;
    queue.clear();
    ksp::VertexId root = static_cast<ksp::VertexId>(rng.NextBounded(n));
    queue.push_back(root);
    seen[root] = epoch;
    size_t visited = 0;
    for (size_t qi = 0; qi < queue.size() && visited < 2000; ++qi) {
      ++visited;
      for (ksp::VertexId w : graph.OutNeighbors(queue[qi])) {
        if (seen[w] != epoch) {
          seen[w] = epoch;
          queue.push_back(w);
        }
      }
    }
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryGraphBfs);

void BM_DiskGraphBfs(benchmark::State& state) {
  // Same bounded BFS through the disk-resident graph (4 KB pages, LRU
  // pool sized by the benchmark argument, in pages).
  static std::string path = [] {
    std::string p = "/tmp/ksp_micro_disk_graph.bin";
    KSP_CHECK(ksp::DiskGraph::Write(State().kb->graph(), p).ok());
    return p;
  }();
  auto disk = ksp::DiskGraph::Open(path, state.range(0));
  KSP_CHECK(disk.ok());
  ksp::Rng rng(7);
  const uint32_t n = (*disk)->num_vertices();
  std::vector<uint32_t> seen(n, 0);
  uint32_t epoch = 0;
  std::vector<ksp::VertexId> queue;
  std::vector<ksp::VertexId> neighbors;
  for (auto _ : state) {
    ++epoch;
    queue.clear();
    ksp::VertexId root = static_cast<ksp::VertexId>(rng.NextBounded(n));
    queue.push_back(root);
    seen[root] = epoch;
    size_t visited = 0;
    for (size_t qi = 0; qi < queue.size() && visited < 2000; ++qi) {
      ++visited;
      neighbors.clear();
      KSP_CHECK((*disk)->OutNeighbors(queue[qi], &neighbors).ok());
      for (ksp::VertexId w : neighbors) {
        if (seen[w] != epoch) {
          seen[w] = epoch;
          queue.push_back(w);
        }
      }
    }
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pool_hit_rate"] = (*disk)->buffer_pool().HitRate();
}
BENCHMARK(BM_DiskGraphBfs)->Arg(16)->Arg(1024);

void BM_Tokenizer(benchmark::State& state) {
  ksp::Tokenizer tokenizer;
  const std::string text =
      "Roman_Catholic_Diocese_of_Frejus_Toulon birthPlace "
      "AncientHistoryOfTheMediterraneanWorld 1968";
  for (auto _ : state) {
    auto tokens = tokenizer.Tokenize(text);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_Tokenizer);

void BM_PostingsFetch(benchmark::State& state) {
  auto& shared = State();
  const auto& index = shared.kb->inverted_index();
  ksp::Rng rng(8);
  const uint32_t terms = shared.kb->num_terms();
  std::vector<ksp::VertexId> out;
  for (auto _ : state) {
    out.clear();
    (void)index.GetPostings(
        static_cast<ksp::TermId>(rng.NextBounded(terms)), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PostingsFetch);

}  // namespace
