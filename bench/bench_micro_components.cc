// Component micro-benchmark: phase-exclusive cost of the two dominant
// engine phases (tqsp_compute + bfs_expand, which the trace layer shows
// dominating every Figure-5/9 workload) on the Figure-5 keyword sweep,
// plus per-operation substrate costs (posting fetch, bounded BFS). This
// is the measurement harness for the raw-speed pass (DESIGN.md §13):
// run twice with --bfs-frontier=legacy and --bfs-frontier=flat and diff
// the phase_exclusive_us totals in the JSON rows (methodology:
// docs/BENCHMARKS.md).
//
// Unlike its previous google-benchmark incarnation this bench goes
// through ksp::bench::RunWorkload, so --warmup/--repeat give it the
// same untimed-warmup + median-of-passes treatment as every figure
// bench, and --json-out emits the stable schema_version-1 document
// (rows gain nothing new; the env object already carries the
// bfs_frontier annotation — purely additive).

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "spatial/rtree.h"

namespace {

using namespace ksp::bench;

/// Substrate micro-rows: per-operation costs reported through the same
/// stats pipeline (wall_us carries one sample per timed op batch). These
/// quantify the paper's §6.2.6 observation that spatial operations are
/// orders of magnitude cheaper than graph-browsing operations.
double TimeUs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void RunSubstrateRows(const ksp::KnowledgeBase& kb,
                      const ksp::KspDatabase& db) {
  constexpr int kOps = 20000;

  // Posting-list fetch through the (memory) inverted index.
  {
    ksp::Rng rng(8);
    const uint32_t terms = kb.num_terms();
    std::vector<ksp::VertexId> out;
    const double us = TimeUs([&] {
      for (int i = 0; i < kOps; ++i) {
        out.clear();
        (void)kb.inverted_index().GetPostings(
            static_cast<ksp::TermId>(rng.NextBounded(terms)), &out);
      }
    });
    std::printf("%-24s %12.1f us / %d ops (%.3f us/op)\n",
                "postings_fetch", us, kOps, us / kOps);
  }

  // Bounded CSR BFS (2000 pops), the graph-browsing primitive.
  {
    const ksp::Graph& graph = kb.graph();
    ksp::Rng rng(7);
    const uint32_t n = graph.num_vertices();
    std::vector<uint32_t> seen(n, 0);
    uint32_t epoch = 0;
    std::vector<ksp::VertexId> queue;
    constexpr int kRuns = 200;
    const double us = TimeUs([&] {
      for (int r = 0; r < kRuns; ++r) {
        ++epoch;
        queue.clear();
        ksp::VertexId root =
            static_cast<ksp::VertexId>(rng.NextBounded(n));
        queue.push_back(root);
        seen[root] = epoch;
        size_t visited = 0;
        for (size_t qi = 0; qi < queue.size() && visited < 2000; ++qi) {
          ++visited;
          for (ksp::VertexId w : graph.OutNeighbors(queue[qi])) {
            if (seen[w] != epoch) {
              seen[w] = epoch;
              queue.push_back(w);
            }
          }
        }
      }
    });
    std::printf("%-24s %12.1f us / %d runs (%.1f us/run)\n",
                "memory_graph_bfs", us, kRuns, us / kRuns);
  }

  // R-tree incremental nearest-neighbor (spatial side of the paper's
  // comparison).
  {
    ksp::Rng rng(3);
    constexpr int kRuns = 2000;
    const double us = TimeUs([&] {
      for (int r = 0; r < kRuns; ++r) {
        ksp::Point q{rng.NextDouble(35, 60), rng.NextDouble(-10, 30)};
        ksp::NearestIterator it(&db.rtree(), q);
        ksp::NearestIterator::Item item;
        for (int i = 0; i < 10 && it.NextData(&item); ++i) {
        }
      }
    });
    std::printf("%-24s %12.1f us / %d runs (%.3f us/run)\n",
                "rtree_nn10", us, kRuns, us / kRuns);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Micro components: phase-exclusive hot-path costs ===\n");

  auto kb = MakeDataset(/*dbpedia_like=*/true,
                        env.Scaled(kDBpediaBaseVertices));
  PrintDatasetSummary("dbpedia-like", *kb);
  auto db = MakeDatabase(kb.get(), env, /*alpha=*/3);

  RunSubstrateRows(*kb, *db);
  std::printf("\n");

  // The Figure-5 keyword sweep (|q.psi| ∈ {1,3,5,8,10}, k = 5, same
  // seeds as bench_fig5) — the workload the tentpole's ≥2x target on
  // tqsp_compute + bfs_expand is measured against. RunWorkload applies
  // --warmup untimed passes and reports the --repeat median pass; with
  // --json-out each row carries the per-phase exclusive totals.
  PrintStatsHeader();
  for (uint32_t m : {1u, 3u, 5u, 8u, 10u}) {
    ksp::QueryGenOptions qopt;
    qopt.num_keywords = m;
    qopt.k = 5;
    qopt.seed = 500 + m;
    auto queries = ksp::GenerateQueries(*kb, ksp::QueryClass::kOriginal,
                                        qopt, env.queries);
    char config[32];
    std::snprintf(config, sizeof(config), "|q.psi|=%u", m);
    for (Algo algo : {Algo::kBsp, Algo::kSpp, Algo::kSp}) {
      PrintStatsRow(config, algo, RunWorkload(*db, algo, queries, 5));
    }
  }
  return ksp::bench::Finish();
}
