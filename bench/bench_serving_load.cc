// Serving-tier load generator (DESIGN.md §11): starts a real KspServer
// on a loopback socket and drives it two ways —
//
//   closed loop   C clients issue requests back-to-back; measures the
//                 server's sustainable throughput and its latency
//                 distribution at saturation.
//   open loop     requests arrive on a fixed global schedule (a target
//                 rate), independent of completions; measures latency
//                 under a controlled offered load, where admission
//                 control (kUnavailable rejections) is allowed to shed
//                 the excess rather than queue it unboundedly.
//
// Output: a human-readable summary plus (with --json-out=FILE) a JSON
// document with the same outer shape as the figure benches
// (schema_version / bench / env) and an additive "serving" object —
// sustained QPS, p50/p95/p99 latency, and rejection/error counts per
// loop. scripts/bench_smoke.sh asserts nonzero QPS and zero protocol
// errors from it.
//
// Flags: --json-out=FILE  --clients=N (default 4)  --seconds=S (default
// 2.0 per loop)  --rate=R (open-loop target arrivals/sec, default 200)
// Env: KSP_SCALE scales the dataset like every other bench.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/client.h"
#include "service/server.h"

namespace {

using Clock = std::chrono::steady_clock;

struct LoopStats {
  uint64_t requests = 0;
  uint64_t oks = 0;
  uint64_t rejections = 0;        // typed kUnavailable (admission control)
  uint64_t deadline_exceeded = 0; // typed kDeadlineExceeded
  uint64_t protocol_errors = 0;   // transport/codec failures: must be 0
  double wall_seconds = 0;
  std::vector<double> latency_ms;

  double Qps() const {
    return wall_seconds > 0 ? static_cast<double>(oks) / wall_seconds : 0;
  }
  double PercentileMs(double q) {
    if (latency_ms.empty()) return 0;
    std::sort(latency_ms.begin(), latency_ms.end());
    size_t rank = static_cast<size_t>(q * static_cast<double>(
                                              latency_ms.size() - 1));
    return latency_ms[rank];
  }
};

struct WirePlan {
  ksp::KspAlgorithm algorithm = ksp::KspAlgorithm::kSp;
  std::vector<ksp::Point> locations;
  std::vector<std::vector<std::string>> keywords;
  std::vector<uint32_t> ks;
};

void RecordResponse(const ksp::Result<ksp::ServiceResponse>& response,
                    double ms, LoopStats* stats) {
  ++stats->requests;
  if (!response.ok()) {
    ++stats->protocol_errors;
    return;
  }
  if (response->code == ksp::StatusCode::kUnavailable) {
    ++stats->rejections;
    return;
  }
  if (response->code == ksp::StatusCode::kDeadlineExceeded) {
    ++stats->deadline_exceeded;
    return;
  }
  if (!response->ok()) {
    ++stats->protocol_errors;  // Unexpected typed error under pure load.
    return;
  }
  ++stats->oks;
  stats->latency_ms.push_back(ms);
}

LoopStats RunClosedLoop(uint16_t port, const WirePlan& plan, size_t clients,
                        double seconds) {
  std::vector<LoopStats> per_client(clients);
  std::vector<std::thread> threads;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  const auto start = Clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ksp::KspClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++per_client[c].protocol_errors;
        return;
      }
      size_t i = c;
      while (Clock::now() < deadline) {
        const size_t qi = i++ % plan.locations.size();
        const auto t0 = Clock::now();
        auto response = client->Query(plan.algorithm, plan.locations[qi],
                                      plan.keywords[qi], plan.ks[qi]);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        RecordResponse(response, ms, &per_client[c]);
      }
    });
  }
  for (auto& t : threads) t.join();
  LoopStats merged;
  merged.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (auto& stats : per_client) {
    merged.requests += stats.requests;
    merged.oks += stats.oks;
    merged.rejections += stats.rejections;
    merged.deadline_exceeded += stats.deadline_exceeded;
    merged.protocol_errors += stats.protocol_errors;
    merged.latency_ms.insert(merged.latency_ms.end(),
                             stats.latency_ms.begin(),
                             stats.latency_ms.end());
  }
  return merged;
}

LoopStats RunOpenLoop(uint16_t port, const WirePlan& plan, size_t clients,
                      double seconds, double rate_per_sec) {
  // Fixed global arrival schedule, round-robined across the client
  // threads: client c owns arrivals c, c+C, c+2C, ... If a client falls
  // behind its schedule (slow responses), it fires immediately —
  // arrivals are never conditioned on completions, which is what makes
  // the loop open.
  const uint64_t total =
      static_cast<uint64_t>(seconds * rate_per_sec);
  const auto interarrival = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate_per_sec));
  std::vector<LoopStats> per_client(clients);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ksp::KspClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++per_client[c].protocol_errors;
        return;
      }
      for (uint64_t i = c; i < total; i += clients) {
        std::this_thread::sleep_until(start + interarrival * i);
        const size_t qi = i % plan.locations.size();
        const auto t0 = Clock::now();
        auto response = client->Query(plan.algorithm, plan.locations[qi],
                                      plan.keywords[qi], plan.ks[qi]);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        RecordResponse(response, ms, &per_client[c]);
      }
    });
  }
  for (auto& t : threads) t.join();
  LoopStats merged;
  merged.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (auto& stats : per_client) {
    merged.requests += stats.requests;
    merged.oks += stats.oks;
    merged.rejections += stats.rejections;
    merged.deadline_exceeded += stats.deadline_exceeded;
    merged.protocol_errors += stats.protocol_errors;
    merged.latency_ms.insert(merged.latency_ms.end(),
                             stats.latency_ms.begin(),
                             stats.latency_ms.end());
  }
  return merged;
}

void PrintLoop(const char* name, LoopStats* stats) {
  std::printf(
      "%-7s requests=%llu ok=%llu rejected=%llu deadline=%llu "
      "proto_err=%llu qps=%.1f p50=%.3fms p95=%.3fms p99=%.3fms\n",
      name, static_cast<unsigned long long>(stats->requests),
      static_cast<unsigned long long>(stats->oks),
      static_cast<unsigned long long>(stats->rejections),
      static_cast<unsigned long long>(stats->deadline_exceeded),
      static_cast<unsigned long long>(stats->protocol_errors),
      stats->Qps(), stats->PercentileMs(0.50), stats->PercentileMs(0.95),
      stats->PercentileMs(0.99));
}

void AppendLoopJson(const char* name, LoopStats* stats, std::string* out) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"requests\": %llu, \"oks\": %llu, "
      "\"rejections\": %llu, \"deadline_exceeded\": %llu, "
      "\"protocol_errors\": %llu, \"wall_seconds\": %.3f, "
      "\"qps\": %.2f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
      "\"p99_ms\": %.4f}",
      name, static_cast<unsigned long long>(stats->requests),
      static_cast<unsigned long long>(stats->oks),
      static_cast<unsigned long long>(stats->rejections),
      static_cast<unsigned long long>(stats->deadline_exceeded),
      static_cast<unsigned long long>(stats->protocol_errors),
      stats->wall_seconds, stats->Qps(), stats->PercentileMs(0.50),
      stats->PercentileMs(0.95), stats->PercentileMs(0.99));
  *out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  std::string json_out;
  size_t clients = 4;
  double seconds = 2.0;
  double rate = 200.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json-out="));
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::strtoull(arg.c_str() + std::strlen("--clients="),
                              nullptr, 10);
    } else if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::strtod(arg.c_str() + std::strlen("--seconds="),
                            nullptr);
    } else if (arg.rfind("--rate=", 0) == 0) {
      rate = std::strtod(arg.c_str() + std::strlen("--rate="), nullptr);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (clients == 0 || seconds <= 0 || rate <= 0) {
    std::fprintf(stderr, "clients/seconds/rate must be positive\n");
    return 2;
  }

  std::printf("=== Serving-tier load: closed and open loop ===\n");
  auto kb = MakeDataset(/*dbpedia_like=*/true,
                        env.Scaled(kDBpediaBaseVertices));
  PrintDatasetSummary("dbpedia-like", *kb);

  auto db = std::make_shared<ksp::KspDatabase>(kb.get());
  db->PrepareAll(3);

  ksp::ServerOptions options;
  options.num_workers =
      std::max(2u, std::thread::hardware_concurrency() / 2);
  options.queue_capacity = 128;
  ksp::KspServer server(kb.get(), ksp::KspOptions(), options);
  if (!server.ServeDatabase(db).ok() || !server.Start().ok()) {
    std::fprintf(stderr, "failed to start the server\n");
    return 1;
  }
  std::printf("server: 127.0.0.1:%u, %zu workers, queue=%zu\n",
              server.port(), options.num_workers, options.queue_capacity);

  ksp::QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 5;
  qopt.seed = 1101;
  const auto queries =
      ksp::GenerateQueries(*kb, ksp::QueryClass::kOriginal, qopt, 16);
  if (queries.empty()) {
    std::fprintf(stderr, "query generation produced nothing\n");
    return 1;
  }
  WirePlan plan;
  for (const auto& query : queries) {
    plan.locations.push_back(query.location);
    plan.ks.push_back(query.k);
    std::vector<std::string> kws;
    for (ksp::TermId t : query.keywords) {
      kws.push_back(kb->vocabulary().Term(t));
    }
    plan.keywords.push_back(std::move(kws));
  }

  LoopStats closed = RunClosedLoop(server.port(), plan, clients, seconds);
  PrintLoop("closed", &closed);
  LoopStats open =
      RunOpenLoop(server.port(), plan, clients, seconds, rate);
  PrintLoop("open", &open);
  server.Stop();

  if (!json_out.empty()) {
    std::string doc;
    doc += "{\n  \"schema_version\": 1,\n";
    doc += "  \"bench\": \"bench_serving_load\",\n";
    char envbuf[256];
    std::snprintf(envbuf, sizeof(envbuf),
                  "  \"env\": {\"scale\": %.3f, \"clients\": %zu, "
                  "\"seconds\": %.2f, \"rate_per_sec\": %.1f, "
                  "\"workers\": %zu},\n",
                  env.scale, clients, seconds, rate, options.num_workers);
    doc += envbuf;
    doc += "  \"serving\": {\n";
    AppendLoopJson("closed_loop", &closed, &doc);
    doc += ",\n";
    AppendLoopJson("open_loop", &open, &doc);
    doc += "\n  }\n}\n";
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
