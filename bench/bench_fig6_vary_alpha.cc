// Figure 6: SP runtime as a function of α ∈ {1, 2, 3, 5} for
// k ∈ {1, 3, 5, 8, 10, 15, 20} (|q.ψ| = 5) on both datasets. Larger α
// tightens the bounds (less work per query) but inflates the index
// (Table 6); on Yago-like data α = 5 can *hurt* because of the low
// keyword frequency — the paper's reason to recommend α = 3.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Figure 6: varying alpha (SP only) ===\n");

  for (bool dbpedia : {true, false}) {
    auto kb = MakeDataset(dbpedia, env.Scaled(dbpedia ? kDBpediaBaseVertices
                                                      : kYagoBaseVertices));
    PrintDatasetSummary(dbpedia ? "dbpedia-like" : "yago-like", *kb);

    ksp::QueryGenOptions qopt;
    qopt.num_keywords = 5;
    qopt.k = 5;
    qopt.seed = 601;
    auto queries = ksp::GenerateQueries(*kb, ksp::QueryClass::kOriginal,
                                        qopt, env.queries);

    std::printf("%-10s", "alpha");
    for (uint32_t k : {1u, 3u, 5u, 8u, 10u, 15u, 20u}) {
      std::printf("  k=%-2u ms ", k);
    }
    std::printf("\n");
    for (uint32_t alpha : {1u, 2u, 3u, 5u}) {
      auto db = MakeDatabase(kb.get(), env, alpha);
      std::printf("%-10u", alpha);
      for (uint32_t k : {1u, 3u, 5u, 8u, 10u, 15u, 20u}) {
        WorkloadStats stats =
            RunWorkload(*db, Algo::kSp, queries, k);
        std::printf("  %8.3f", stats.AvgTotalMs());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return ksp::bench::Finish();
}
