// Figure 8: validation of the SDLL/LDLL query generators — average
// spatial distance and average looseness of the top-k results for the
// three query classes (SDLL, LDLL, O) as k varies. Expected shape (as in
// the paper): S(SDLL) < S(O) < S(LDLL) while both SDLL and LDLL return
// results of much larger looseness than O.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Figure 8: result statistics per query class ===\n");

  for (bool dbpedia : {true, false}) {
    auto kb = MakeDataset(dbpedia, env.Scaled(dbpedia ? kDBpediaBaseVertices
                                                      : kYagoBaseVertices));
    PrintDatasetSummary(dbpedia ? "dbpedia-like" : "yago-like", *kb);
    auto db = MakeDatabase(kb.get(), env, /*alpha=*/3);

    struct ClassSpec {
      const char* name;
      ksp::QueryClass query_class;
    };
    const ClassSpec classes[] = {{"SDLL", ksp::QueryClass::kSDLL},
                                 {"LDLL", ksp::QueryClass::kLDLL},
                                 {"O", ksp::QueryClass::kOriginal}};

    std::printf("%-6s %-6s %16s %16s %10s\n", "class", "k",
                "avg_spatial_S", "avg_looseness_L", "results");
    for (uint32_t k : {1u, 3u, 5u, 8u, 10u, 15u, 20u}) {
      for (const ClassSpec& spec : classes) {
        ksp::QueryGenOptions qopt;
        qopt.num_keywords = 5;
        qopt.k = k;
        qopt.seed = 801;
        auto queries = ksp::GenerateQueries(*kb, spec.query_class, qopt,
                                            env.queries);
        auto results =
            RunWorkloadCollect(*db, Algo::kSp, queries, k);
        double sum_s = 0;
        double sum_l = 0;
        size_t count = 0;
        for (const auto& result : results) {
          for (const auto& entry : result.entries) {
            sum_s += entry.spatial_distance;
            sum_l += entry.looseness;
            ++count;
          }
        }
        std::printf("%-6s %-6u %16.3f %16.2f %10zu\n", spec.name, k,
                    count ? sum_s / count : 0.0,
                    count ? sum_l / count : 0.0, count);
      }
    }
    std::printf("\n");
  }
  return ksp::bench::Finish();
}
