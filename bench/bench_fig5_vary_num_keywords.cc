// Figure 5: runtime of BSP/SPP/SP while varying the number of query
// keywords |q.ψ| ∈ {1, 3, 5, 8, 10} on both datasets (k = 5, α = 3).

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Figure 5: varying |q.psi| ===\n");

  for (bool dbpedia : {true, false}) {
    auto kb = MakeDataset(dbpedia, env.Scaled(dbpedia ? kDBpediaBaseVertices
                                                      : kYagoBaseVertices));
    PrintDatasetSummary(dbpedia ? "dbpedia-like" : "yago-like", *kb);
    auto db = MakeDatabase(kb.get(), env, /*alpha=*/3);

    PrintStatsHeader();
    for (uint32_t m : {1u, 3u, 5u, 8u, 10u}) {
      ksp::QueryGenOptions qopt;
      qopt.num_keywords = m;
      qopt.k = 5;
      qopt.seed = 500 + m;
      auto queries = ksp::GenerateQueries(
          *kb, ksp::QueryClass::kOriginal, qopt, env.queries);
      char config[32];
      std::snprintf(config, sizeof(config), "|q.psi|=%u", m);
      for (Algo algo : {Algo::kBsp, Algo::kSpp, Algo::kSp}) {
        PrintStatsRow(config, algo,
                      RunWorkload(*db, algo, queries, 5));
      }
    }
    std::printf("\n");
  }
  return ksp::bench::Finish();
}
