#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "rdf/kb_io.h"

namespace ksp {
namespace bench {

namespace {
double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

/// Set by FromArgs; nullptr keeps the query path metrics-free.
MetricsRegistry* g_metrics = nullptr;
std::string g_metrics_out;
}  // namespace

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  env.scale = EnvDouble("KSP_SCALE", 1.0);
  env.queries = static_cast<size_t>(EnvDouble("KSP_QUERIES", 25));
  env.time_limit_ms = EnvDouble("KSP_TIME_LIMIT_MS", 2000.0);
  if (env.scale <= 0) env.scale = 1.0;
  if (env.queries == 0) env.queries = 1;
  return env;
}

BenchEnv BenchEnv::FromArgs(int argc, char** argv) {
  BenchEnv env = FromEnv();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    constexpr const char kMetricsOut[] = "--metrics-out=";
    if (std::strncmp(arg, kMetricsOut, sizeof(kMetricsOut) - 1) == 0) {
      env.metrics_out = arg + sizeof(kMetricsOut) - 1;
      KSP_CHECK(!env.metrics_out.empty())
          << "--metrics-out requires a file path";
      continue;
    }
    KSP_CHECK(false) << "unknown flag: " << arg
                     << " (supported: --metrics-out=FILE)";
  }
  if (!env.metrics_out.empty()) {
    static MetricsRegistry registry;
    g_metrics = &registry;
    g_metrics_out = env.metrics_out;
  }
  return env;
}

MetricsRegistry* BenchMetrics() { return g_metrics; }

int Finish() {
  if (g_metrics == nullptr) return 0;
  const std::string json = g_metrics->Snapshot().ToJson();
  std::FILE* f = std::fopen(g_metrics_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --metrics-out file %s\n",
                 g_metrics_out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "metrics snapshot written to %s\n",
               g_metrics_out.c_str());
  return 0;
}

std::unique_ptr<KnowledgeBase> MakeDataset(bool dbpedia_like,
                                           uint32_t num_vertices) {
  // Generation is deterministic, so benches share cached snapshots.
  char cache_path[128];
  std::snprintf(cache_path, sizeof(cache_path),
                "/tmp/ksp_bench_%s_%u.kbsnap",
                dbpedia_like ? "dbpedia" : "yago", num_vertices);
  if (auto cached = LoadKnowledgeBaseSnapshot(cache_path); cached.ok()) {
    return std::move(*cached);
  }
  SyntheticProfile profile = dbpedia_like
                                 ? SyntheticProfile::DBpediaLike(num_vertices)
                                 : SyntheticProfile::YagoLike(num_vertices);
  auto kb = GenerateKnowledgeBase(profile);
  KSP_CHECK(kb.ok()) << kb.status().ToString();
  if (Status st = SaveKnowledgeBase(**kb, cache_path); !st.ok()) {
    KSP_LOG(kWarning) << "snapshot cache write failed: " << st.ToString();
  }
  return std::move(*kb);
}

std::unique_ptr<KspDatabase> MakeDatabase(const KnowledgeBase* kb,
                                          const BenchEnv& env, uint32_t alpha,
                                          KspOptions options) {
  options.time_limit_ms = env.time_limit_ms;
  auto db = std::make_unique<KspDatabase>(kb, options);
  db->PrepareAll(alpha);
  return db;
}

WorkloadStats RunWorkload(const KspDatabase& db, Algo algo,
                          const std::vector<KspQuery>& queries, uint32_t k) {
  WorkloadStats out;
  QueryExecutor executor(&db);
  if (g_metrics != nullptr) executor.set_metrics(g_metrics);
  for (const KspQuery& query : queries) {
    KspQuery q = query;
    if (k > 0) q.k = k;
    QueryStats stats;
    auto result = ExecuteWith(&executor, algo, q, &stats);
    KSP_CHECK(result.ok()) << result.status().ToString();
    out.sum.Accumulate(stats);
    if (!stats.completed) ++out.timed_out;
    ++out.num_queries;
  }
  return out;
}

std::vector<KspResult> RunWorkloadCollect(
    const KspDatabase& db, Algo algo, const std::vector<KspQuery>& queries,
    uint32_t k) {
  std::vector<KspResult> results;
  results.reserve(queries.size());
  QueryExecutor executor(&db);
  if (g_metrics != nullptr) executor.set_metrics(g_metrics);
  for (const KspQuery& query : queries) {
    KspQuery q = query;
    if (k > 0) q.k = k;
    auto result = ExecuteWith(&executor, algo, q, nullptr);
    KSP_CHECK(result.ok()) << result.status().ToString();
    results.push_back(std::move(*result));
  }
  return results;
}

void PrintStatsHeader() {
  std::printf(
      "%-18s %-4s %12s %12s %12s %10s %10s %8s\n", "config", "algo",
      "runtime_ms", "semantic_ms", "other_ms", "tqsp_cnt", "rtree_node",
      "timeout");
}

void PrintStatsRow(const char* config, Algo algo,
                   const WorkloadStats& stats) {
  std::printf("%-18s %-4s %12.3f %12.3f %12.3f %10.1f %10.1f %5zu/%zu\n",
              config, AlgoName(algo), stats.AvgTotalMs(),
              stats.AvgSemanticMs(), stats.AvgOtherMs(), stats.AvgTqsp(),
              stats.AvgRtreeNodes(), stats.timed_out, stats.num_queries);
}

void PrintDatasetSummary(const char* label, const KnowledgeBase& kb) {
  std::printf(
      "dataset %-14s vertices=%u edges=%llu places=%u terms=%u "
      "kw_freq=%.2f\n",
      label, kb.num_vertices(),
      static_cast<unsigned long long>(kb.num_edges()), kb.num_places(),
      kb.num_terms(), kb.inverted_index().AveragePostingLength());
}

}  // namespace bench
}  // namespace ksp
