#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "rdf/kb_io.h"

namespace ksp {
namespace bench {

namespace {
double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

/// Set by FromArgs; nullptr keeps the query path metrics-free.
MetricsRegistry* g_metrics = nullptr;
std::string g_metrics_out;
/// Execution shape shared by every RunWorkload call in the process
/// (intra_threads / warmup / repeat), set once by FromArgs.
BenchEnv g_env;
/// --json-out capture: bench id from argv[0], pre-rendered row objects.
std::string g_json_out;
std::string g_bench_id = "bench";
std::vector<std::string> g_json_rows;
/// Row-level storage annotation, refreshed by every MakeDatabase so the
/// JSON rows name the backend/budget they actually ran against (the
/// memory-budget sweep builds one database per budget).
StorageBackend g_row_backend = StorageBackend::kMemory;
uint64_t g_row_bufferpool_budget = 0;
/// Sharded-row annotation (SetShardRowAnnotation): 0 = unsharded rows.
uint32_t g_row_shard_count = 0;

const char* BackendName(StorageBackend backend) {
  return backend == StorageBackend::kDisk ? "disk" : "memory";
}

uint64_t ParseCount(const char* value, const char* flag) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value, &end, 10);
  KSP_CHECK(end != value && *end == '\0')
      << flag << " requires an unsigned integer, got: " << value;
  return n;
}

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}
}  // namespace

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  env.scale = EnvDouble("KSP_SCALE", 1.0);
  env.queries = static_cast<size_t>(EnvDouble("KSP_QUERIES", 25));
  env.time_limit_ms = EnvDouble("KSP_TIME_LIMIT_MS", 2000.0);
  if (env.scale <= 0) env.scale = 1.0;
  if (env.queries == 0) env.queries = 1;
  return env;
}

BenchEnv BenchEnv::FromArgs(int argc, char** argv) {
  BenchEnv env = FromEnv();
  if (argc > 0 && argv[0] != nullptr) {
    const char* slash = std::strrchr(argv[0], '/');
    g_bench_id = slash != nullptr ? slash + 1 : argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    constexpr const char kMetricsOut[] = "--metrics-out=";
    constexpr const char kJsonOut[] = "--json-out=";
    constexpr const char kIntraThreads[] = "--intra-threads=";
    constexpr const char kWarmup[] = "--warmup=";
    constexpr const char kRepeat[] = "--repeat=";
    constexpr const char kCacheBudget[] = "--cache-budget=";
    if (std::strncmp(arg, kMetricsOut, sizeof(kMetricsOut) - 1) == 0) {
      env.metrics_out = arg + sizeof(kMetricsOut) - 1;
      KSP_CHECK(!env.metrics_out.empty())
          << "--metrics-out requires a file path";
      continue;
    }
    if (std::strncmp(arg, kJsonOut, sizeof(kJsonOut) - 1) == 0) {
      env.json_out = arg + sizeof(kJsonOut) - 1;
      KSP_CHECK(!env.json_out.empty()) << "--json-out requires a file path";
      continue;
    }
    if (std::strncmp(arg, kIntraThreads, sizeof(kIntraThreads) - 1) == 0) {
      env.intra_threads = static_cast<uint32_t>(
          ParseCount(arg + sizeof(kIntraThreads) - 1, "--intra-threads"));
      if (env.intra_threads == 0) env.intra_threads = 1;
      continue;
    }
    if (std::strncmp(arg, kWarmup, sizeof(kWarmup) - 1) == 0) {
      env.warmup = ParseCount(arg + sizeof(kWarmup) - 1, "--warmup");
      continue;
    }
    if (std::strncmp(arg, kRepeat, sizeof(kRepeat) - 1) == 0) {
      env.repeat = ParseCount(arg + sizeof(kRepeat) - 1, "--repeat");
      if (env.repeat == 0) env.repeat = 1;
      continue;
    }
    if (std::strncmp(arg, kCacheBudget, sizeof(kCacheBudget) - 1) == 0) {
      const char* value = arg + sizeof(kCacheBudget) - 1;
      env.cache_budget = std::strcmp(value, "unlimited") == 0
                             ? kCacheUnlimited
                             : ParseCount(value, "--cache-budget");
      continue;
    }
    constexpr const char kBackend[] = "--backend=";
    constexpr const char kBufferPoolBudget[] = "--bufferpool-budget=";
    if (std::strncmp(arg, kBackend, sizeof(kBackend) - 1) == 0) {
      const char* value = arg + sizeof(kBackend) - 1;
      if (std::strcmp(value, "memory") == 0) {
        env.backend = StorageBackend::kMemory;
      } else if (std::strcmp(value, "disk") == 0) {
        env.backend = StorageBackend::kDisk;
      } else {
        KSP_CHECK(false) << "--backend must be memory or disk, got: "
                         << value;
      }
      continue;
    }
    if (std::strncmp(arg, kBufferPoolBudget,
                     sizeof(kBufferPoolBudget) - 1) == 0) {
      env.bufferpool_budget = ParseCount(
          arg + sizeof(kBufferPoolBudget) - 1, "--bufferpool-budget");
      continue;
    }
    constexpr const char kBfsFrontier[] = "--bfs-frontier=";
    if (std::strncmp(arg, kBfsFrontier, sizeof(kBfsFrontier) - 1) == 0) {
      const char* value = arg + sizeof(kBfsFrontier) - 1;
      if (std::strcmp(value, "flat") == 0) {
        env.bfs_frontier = BfsFrontier::kFlat;
      } else if (std::strcmp(value, "legacy") == 0) {
        env.bfs_frontier = BfsFrontier::kLegacy;
      } else {
        KSP_CHECK(false) << "--bfs-frontier must be flat or legacy, got: "
                         << value;
      }
      continue;
    }
    KSP_CHECK(false) << "unknown flag: " << arg
                     << " (supported: --metrics-out=FILE --json-out=FILE "
                        "--intra-threads=N --warmup=N --repeat=N "
                        "--cache-budget=BYTES|unlimited "
                        "--backend=memory|disk --bufferpool-budget=BYTES "
                        "--bfs-frontier=flat|legacy)";
  }
  if (!env.metrics_out.empty()) {
    static MetricsRegistry registry;
    g_metrics = &registry;
    g_metrics_out = env.metrics_out;
  }
  g_json_out = env.json_out;
  g_env = env;
  return env;
}

MetricsRegistry* BenchMetrics() { return g_metrics; }

namespace {
int WriteFile(const std::string& path, const std::string& content,
              const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s file %s\n", what, path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
  return 0;
}
}  // namespace

int Finish() {
  int rc = 0;
  if (g_metrics != nullptr) {
    rc |= WriteFile(g_metrics_out, g_metrics->Snapshot().ToJson(),
                    "metrics snapshot");
  }
  if (!g_json_out.empty()) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n  \"schema_version\": 1,\n  \"bench\": \"%s\",\n"
                  "  \"env\": {\"scale\": %g, \"queries\": %zu,"
                  " \"time_limit_ms\": %g, \"intra_threads\": %u,"
                  " \"warmup\": %zu, \"repeat\": %zu,"
                  " \"cache_budget\": %llu, \"backend\": \"%s\","
                  " \"bufferpool_budget\": %llu,"
                  " \"bfs_frontier\": \"%s\"},\n  \"rows\": [\n",
                  JsonEscape(g_bench_id.c_str()).c_str(), g_env.scale,
                  g_env.queries, g_env.time_limit_ms, g_env.intra_threads,
                  g_env.warmup, g_env.repeat,
                  static_cast<unsigned long long>(g_env.cache_budget),
                  BackendName(g_env.backend),
                  static_cast<unsigned long long>(g_env.bufferpool_budget),
                  g_env.bfs_frontier == BfsFrontier::kLegacy ? "legacy"
                                                             : "flat");
    std::string doc = buf;
    for (size_t i = 0; i < g_json_rows.size(); ++i) {
      doc += g_json_rows[i];
      if (i + 1 < g_json_rows.size()) doc += ",";
      doc += "\n";
    }
    doc += "  ]\n}";
    rc |= WriteFile(g_json_out, doc, "bench JSON");
  }
  return rc;
}

std::unique_ptr<KnowledgeBase> MakeDataset(bool dbpedia_like,
                                           uint32_t num_vertices) {
  // Generation is deterministic, so benches share cached snapshots.
  char cache_path[128];
  std::snprintf(cache_path, sizeof(cache_path),
                "/tmp/ksp_bench_%s_%u.kbsnap",
                dbpedia_like ? "dbpedia" : "yago", num_vertices);
  if (auto cached = LoadKnowledgeBaseSnapshot(cache_path); cached.ok()) {
    return std::move(*cached);
  }
  SyntheticProfile profile = dbpedia_like
                                 ? SyntheticProfile::DBpediaLike(num_vertices)
                                 : SyntheticProfile::YagoLike(num_vertices);
  auto kb = GenerateKnowledgeBase(profile);
  KSP_CHECK(kb.ok()) << kb.status().ToString();
  if (Status st = SaveKnowledgeBase(**kb, cache_path); !st.ok()) {
    KSP_LOG(kWarning) << "snapshot cache write failed: " << st.ToString();
  }
  return std::move(*kb);
}

std::unique_ptr<KspDatabase> MakeDatabase(const KnowledgeBase* kb,
                                          const BenchEnv& env, uint32_t alpha,
                                          KspOptions options) {
  options.time_limit_ms = env.time_limit_ms;
  // Flag wins only when given, so benches hard-coding a budget keep it.
  if (env.cache_budget != 0) options.cache_budget_bytes = env.cache_budget;
  if (env.backend == StorageBackend::kDisk) {
    options.backend = StorageBackend::kDisk;
  }
  if (env.bufferpool_budget != 0) {
    options.buffer_pool_budget_bytes = env.bufferpool_budget;
  }
  options.bfs_frontier = env.bfs_frontier;
  auto db = std::make_unique<KspDatabase>(kb, options);
  db->PrepareAll(alpha);
  KSP_CHECK(db->storage_backend_status().ok())
      << db->storage_backend_status().ToString();
  g_row_backend = options.backend;
  g_row_bufferpool_budget = options.backend == StorageBackend::kDisk
                                ? options.buffer_pool_budget_bytes
                                : 0;
  g_row_shard_count = 0;  // A fresh unsharded database ends sharded rows.
  return db;
}

void SetShardRowAnnotation(uint32_t shard_count) {
  g_row_shard_count = shard_count;
}

double WorkloadStats::PercentileWallUs(double q) const {
  if (wall_us.empty()) return 0.0;
  std::vector<double> sorted = wall_us;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest sample with cumulative frequency >= q.
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

WorkloadStats RunWorkload(const KspDatabase& db, Algo algo,
                          const std::vector<KspQuery>& queries, uint32_t k) {
  QueryExecutor executor(&db);
  executor.set_intra_query_threads(g_env.intra_threads);
  if (g_metrics != nullptr) executor.set_metrics(g_metrics);
  // Phase breakdown needs the (cheap, aggregate-only) trace on the query
  // path; keep the path trace-free unless an output asked for it.
  QueryTrace trace;
  trace.set_record_spans(false);
  if (!g_json_out.empty() || g_metrics != nullptr) {
    executor.set_trace(&trace);
  }

  auto run_pass = [&]() {
    WorkloadStats out;
    out.wall_us.reserve(queries.size());
    for (const KspQuery& query : queries) {
      KspQuery q = query;
      if (k > 0) q.k = k;
      QueryStats stats;
      auto result = ExecuteWith(&executor, algo, q, &stats);
      KSP_CHECK(result.ok()) << result.status().ToString();
      out.sum.Accumulate(stats);
      out.wall_us.push_back(stats.total_ms * 1000.0);
      if (executor.trace() != nullptr) {
        // The executor clears the trace per query, so fold now.
        for (size_t p = 0; p < kNumTracePhases; ++p) {
          out.phase_exclusive_us[p] += static_cast<double>(
              trace.PhaseExclusiveUs(static_cast<TracePhase>(p)));
        }
      }
      if (!stats.completed) ++out.timed_out;
      ++out.num_queries;
    }
    return out;
  };

  for (size_t w = 0; w < g_env.warmup; ++w) run_pass();
  std::vector<WorkloadStats> passes;
  passes.reserve(g_env.repeat);
  for (size_t r = 0; r < g_env.repeat; ++r) passes.push_back(run_pass());
  // Median-of-repeats by total wall time: robust against one-off stalls
  // without averaging away the distribution shape within the pass.
  std::sort(passes.begin(), passes.end(),
            [](const WorkloadStats& a, const WorkloadStats& b) {
              return a.sum.total_ms < b.sum.total_ms;
            });
  return std::move(passes[(passes.size() - 1) / 2]);
}

std::vector<KspResult> RunWorkloadCollect(
    const KspDatabase& db, Algo algo, const std::vector<KspQuery>& queries,
    uint32_t k) {
  std::vector<KspResult> results;
  results.reserve(queries.size());
  QueryExecutor executor(&db);
  executor.set_intra_query_threads(g_env.intra_threads);
  if (g_metrics != nullptr) executor.set_metrics(g_metrics);
  for (const KspQuery& query : queries) {
    KspQuery q = query;
    if (k > 0) q.k = k;
    auto result = ExecuteWith(&executor, algo, q, nullptr);
    KSP_CHECK(result.ok()) << result.status().ToString();
    results.push_back(std::move(*result));
  }
  return results;
}

void PrintStatsHeader() {
  std::printf(
      "%-18s %-4s %12s %12s %12s %10s %10s %8s\n", "config", "algo",
      "runtime_ms", "semantic_ms", "other_ms", "tqsp_cnt", "rtree_node",
      "timeout");
}

namespace {
void AppendJsonRow(const char* config, Algo algo,
                   const WorkloadStats& stats) {
  char buf[256];
  std::string row = "    {\"config\": \"" + JsonEscape(config) +
                    "\", \"algo\": \"" + AlgoName(algo) + "\",";
  std::snprintf(buf, sizeof(buf),
                " \"queries\": %zu, \"timed_out\": %zu,"
                " \"mean_wall_us\": %.1f, \"median_wall_us\": %.1f,"
                " \"p95_wall_us\": %.1f,",
                stats.num_queries, stats.timed_out,
                stats.AvgTotalMs() * 1000.0, stats.MedianWallUs(),
                stats.P95WallUs());
  row += buf;
  row += " \"phase_exclusive_us\": {";
  for (size_t p = 0; p < kNumTracePhases; ++p) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.0f", p == 0 ? "" : ", ",
                  TracePhaseName(static_cast<TracePhase>(p)),
                  stats.phase_exclusive_us[p]);
    row += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "}, \"counters\": {\"tqsp_computations\": %llu,"
                " \"rtree_nodes_accessed\": %llu,"
                " \"vertices_visited\": %llu,"
                " \"speculative_wasted_tqsp\": %llu},",
                static_cast<unsigned long long>(stats.sum.tqsp_computations),
                static_cast<unsigned long long>(
                    stats.sum.rtree_nodes_accessed),
                static_cast<unsigned long long>(stats.sum.vertices_visited),
                static_cast<unsigned long long>(
                    stats.sum.speculative_wasted_tqsp));
  row += buf;
  const auto rate = [](uint64_t hits, uint64_t misses) {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  };
  std::snprintf(
      buf, sizeof(buf),
      " \"cache\": {\"dg_hits\": %llu, \"dg_misses\": %llu,"
      " \"dg_hit_rate\": %.4f, \"result_hits\": %llu,"
      " \"result_misses\": %llu, \"result_hit_rate\": %.4f,"
      " \"evictions\": %llu},",
      static_cast<unsigned long long>(stats.sum.dg_cache_hits),
      static_cast<unsigned long long>(stats.sum.dg_cache_misses),
      rate(stats.sum.dg_cache_hits, stats.sum.dg_cache_misses),
      static_cast<unsigned long long>(stats.sum.result_cache_hits),
      static_cast<unsigned long long>(stats.sum.result_cache_misses),
      rate(stats.sum.result_cache_hits, stats.sum.result_cache_misses),
      static_cast<unsigned long long>(stats.sum.cache_evictions));
  row += buf;
  std::snprintf(
      buf, sizeof(buf),
      " \"backend\": \"%s\", \"bufferpool\": {\"budget_bytes\": %llu,"
      " \"hits\": %llu, \"misses\": %llu, \"evictions\": %llu}",
      BackendName(g_row_backend),
      static_cast<unsigned long long>(g_row_bufferpool_budget),
      static_cast<unsigned long long>(stats.sum.bufferpool_hits),
      static_cast<unsigned long long>(stats.sum.bufferpool_misses),
      static_cast<unsigned long long>(stats.sum.bufferpool_evictions));
  row += buf;
  if (g_row_shard_count != 0) {
    const uint64_t dispatched =
        stats.sum.shards_visited + stats.sum.shards_pruned;
    std::snprintf(
        buf, sizeof(buf),
        ", \"shard\": {\"count\": %u, \"shards_visited\": %llu,"
        " \"shards_pruned\": %llu, \"prune_rate\": %.4f}",
        g_row_shard_count,
        static_cast<unsigned long long>(stats.sum.shards_visited),
        static_cast<unsigned long long>(stats.sum.shards_pruned),
        dispatched == 0 ? 0.0
                        : static_cast<double>(stats.sum.shards_pruned) /
                              static_cast<double>(dispatched));
    row += buf;
  }
  row += "}";
  g_json_rows.push_back(std::move(row));
}
}  // namespace

void PrintStatsRow(const char* config, Algo algo,
                   const WorkloadStats& stats) {
  std::printf("%-18s %-4s %12.3f %12.3f %12.3f %10.1f %10.1f %5zu/%zu\n",
              config, AlgoName(algo), stats.AvgTotalMs(),
              stats.AvgSemanticMs(), stats.AvgOtherMs(), stats.AvgTqsp(),
              stats.AvgRtreeNodes(), stats.timed_out, stats.num_queries);
  if (!g_json_out.empty()) AppendJsonRow(config, algo, stats);
}

void PrintDatasetSummary(const char* label, const KnowledgeBase& kb) {
  std::printf(
      "dataset %-14s vertices=%u edges=%llu places=%u terms=%u "
      "kw_freq=%.2f\n",
      label, kb.num_vertices(),
      static_cast<unsigned long long>(kb.num_edges()), kb.num_places(),
      kb.num_terms(), kb.inverted_index().AveragePostingLength());
}

}  // namespace bench
}  // namespace ksp
