// Table 5: preprocessing and indexing time — R-tree construction (both
// one-by-one insertion, as the paper used, and STR bulk loading, which it
// notes would drastically reduce the cost), inverted-index build and
// serialization, reachability labeling (the TF-Label stand-in), and the
// α = 3 radius word-neighborhood construction.

#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "common/timer.h"
#include "text/inverted_index.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Table 5: preprocessing and indexing time (seconds) ===\n");
  std::printf("%-14s %10s %10s %10s %10s %10s\n", "dataset", "rtree-ins",
              "rtree-str", "inv-index", "reach-lbl", "alpha3");

  for (bool dbpedia : {true, false}) {
    auto kb = MakeDataset(dbpedia, env.Scaled(dbpedia ? kDBpediaBaseVertices
                                                      : kYagoBaseVertices));

    // R-tree: insertion vs bulk loading.
    ksp::KspOptions insert_options;
    insert_options.bulk_load_rtree = false;
    ksp::KspDatabase insert_db(kb.get(), insert_options);
    insert_db.BuildRTree();

    ksp::KspOptions bulk_options;
    bulk_options.bulk_load_rtree = true;
    ksp::KspDatabase db(kb.get(), bulk_options);
    db.BuildRTree();

    // Inverted index: rebuild + serialize to disk.
    ksp::Timer inv_timer;
    inv_timer.Start();
    auto mem_index = ksp::MemoryInvertedIndex::Build(kb->documents(),
                                                     kb->num_terms());
    std::string path = (std::filesystem::temp_directory_path() /
                        "ksp_table5_index.idx")
                           .string();
    (void)ksp::DiskInvertedIndex::Write(mem_index, path);
    inv_timer.Stop();
    std::remove(path.c_str());

    db.BuildReachabilityIndex();
    db.BuildAlphaIndex(3);

    std::printf("%-14s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                dbpedia ? "dbpedia-like" : "yago-like",
                insert_db.preprocessing_times().rtree_s,
                db.preprocessing_times().rtree_s,
                inv_timer.ElapsedSeconds(),
                db.preprocessing_times().reachability_s,
                db.preprocessing_times().alpha_s);
  }
  std::printf(
      "\npaper (minutes, full scale): DBpedia rtree 3.17 inv 4.61 "
      "tflabel 22.60 alpha3 1192.01; Yago rtree 31.90 inv 1.00 "
      "tflabel 6.09 alpha3 101.61\n");
  return ksp::bench::Finish();
}
