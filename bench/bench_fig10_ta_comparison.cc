// Figure 10: the TA baseline (looseness stream + spatial stream, Fagin's
// threshold algorithm) against BSP/SPP/SP while varying |q.ψ| on both
// datasets. Expected shape: TA is competitive only for |q.ψ| = 1 and
// degrades sharply with more keywords, because ranking places by
// looseness requires expanding from every posting of every keyword.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Figure 10: comparison with top-k aggregation (TA) ===\n");

  for (bool dbpedia : {true, false}) {
    auto kb = MakeDataset(dbpedia, env.Scaled(dbpedia ? kDBpediaBaseVertices
                                                      : kYagoBaseVertices));
    PrintDatasetSummary(dbpedia ? "dbpedia-like" : "yago-like", *kb);
    auto db = MakeDatabase(kb.get(), env, /*alpha=*/3);

    PrintStatsHeader();
    for (uint32_t m : {1u, 3u, 5u, 8u, 10u}) {
      ksp::QueryGenOptions qopt;
      qopt.num_keywords = m;
      qopt.k = 5;
      qopt.seed = 1000 + m;
      auto queries = ksp::GenerateQueries(
          *kb, ksp::QueryClass::kOriginal, qopt, env.queries);
      char config[32];
      std::snprintf(config, sizeof(config), "|q.psi|=%u", m);
      for (Algo algo :
           {Algo::kTa, Algo::kKeywordOnly, Algo::kBsp, Algo::kSpp,
            Algo::kSp}) {
        PrintStatsRow(config, algo,
                      RunWorkload(*db, algo, queries, 5));
      }
    }
    std::printf("\n");
  }
  return ksp::bench::Finish();
}
