// Out-of-core sweep (DESIGN.md §10): latency of the disk backend as a
// function of the shared buffer pool's byte budget, on the Figure 5
// workload (|q.psi| = 3, k = 5), against the in-memory baseline and the
// paged-index footprint. The interesting regime is budgets far below
// the footprint: results stay exact (backend invariance) while the pool
// eviction/miss counters in the JSON rows show the paging cost.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ksp::bench;
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Memory budget sweep: disk backend vs pool budget ===\n");

  auto kb = MakeDataset(/*dbpedia_like=*/true,
                        env.Scaled(kDBpediaBaseVertices));
  PrintDatasetSummary("dbpedia-like", *kb);

  ksp::QueryGenOptions qopt;
  qopt.num_keywords = 3;
  qopt.k = 5;
  qopt.seed = 503;  // The Figure 5 |q.psi|=3 workload.
  auto queries = ksp::GenerateQueries(*kb, ksp::QueryClass::kOriginal, qopt,
                                      env.queries);

  // In-memory baseline; its graph + R-tree resident size is the
  // footprint the pool budgets are measured against (those are exactly
  // the structures the disk backend pages).
  BenchEnv mem_env = env;
  mem_env.backend = ksp::StorageBackend::kMemory;
  auto mem_db = MakeDatabase(kb.get(), mem_env, /*alpha=*/3);
  const uint64_t footprint_bytes =
      kb->GraphMemoryBytes() + mem_db->rtree().MemoryUsageBytes();
  std::printf("paged-index in-memory footprint: %.1f MiB\n",
              static_cast<double>(footprint_bytes) / (1 << 20));

  PrintStatsHeader();
  for (Algo algo : {Algo::kSpp, Algo::kSp}) {
    PrintStatsRow("memory", algo, RunWorkload(*mem_db, algo, queries, 5));
  }
  mem_db.reset();

  for (uint64_t budget : {256ULL << 10, 1ULL << 20, 4ULL << 20,
                          16ULL << 20, 64ULL << 20}) {
    BenchEnv disk_env = env;
    disk_env.backend = ksp::StorageBackend::kDisk;
    disk_env.bufferpool_budget = budget;
    auto disk_db = MakeDatabase(kb.get(), disk_env, /*alpha=*/3);
    char config[48];
    if (budget < (1 << 20)) {
      std::snprintf(config, sizeof(config), "disk-%lluKiB",
                    static_cast<unsigned long long>(budget >> 10));
    } else {
      std::snprintf(config, sizeof(config), "disk-%lluMiB",
                    static_cast<unsigned long long>(budget >> 20));
    }
    for (Algo algo : {Algo::kSpp, Algo::kSp}) {
      PrintStatsRow(config, algo, RunWorkload(*disk_db, algo, queries, 5));
    }
  }
  return ksp::bench::Finish();
}
