// Sharded scatter-gather (DESIGN.md §12): the Figure-5 workload
// (|q.ψ| ∈ {3, 5}, k = 5, α = 3) answered by a ShardedKspDatabase at
// K ∈ {1, 2, 4, 8} STR tiles, against the K=1 baseline. Each JSON row
// carries the additive `shard` annotation (count, shards visited/pruned,
// prune rate) next to the usual wall-time percentiles, so the artifact
// shows how much of the shard fleet the mindist-ordered θ gate skips.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/logging.h"
#include "shard/partition.h"
#include "shard/sharded_database.h"
#include "shard/sharded_executor.h"

namespace {

using namespace ksp::bench;

/// RunWorkload for the sharded executor: same timing/stat conventions
/// (per-query wall µs, summed QueryStats), no warmup/repeat machinery —
/// this bench compares shard counts against each other in one pass.
WorkloadStats RunShardedWorkload(const ksp::ShardedKspDatabase& db,
                                 Algo algo,
                                 const std::vector<ksp::KspQuery>& queries,
                                 uint32_t k) {
  ksp::ShardedExecutor executor(&db);
  WorkloadStats stats;
  for (const ksp::KspQuery& base : queries) {
    ksp::KspQuery query = base;
    if (k != 0) query.k = k;
    ksp::QueryStats qs;
    auto result = executor.Execute(algo, query, &qs);
    KSP_CHECK(result.ok()) << result.status().ToString();
    stats.sum.Accumulate(qs);
    stats.wall_us.push_back(qs.total_ms * 1000.0);
    ++stats.num_queries;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::FromArgs(argc, argv);
  std::printf("=== Sharded scatter-gather: varying shard count ===\n");

  auto kb = MakeDataset(/*dbpedia_like=*/true,
                        env.Scaled(kDBpediaBaseVertices));
  PrintDatasetSummary("dbpedia-like", *kb);

  ksp::KspOptions options;
  options.time_limit_ms = env.time_limit_ms;
  if (env.backend == ksp::StorageBackend::kDisk) {
    options.backend = ksp::StorageBackend::kDisk;
    if (env.bufferpool_budget != 0) {
      options.buffer_pool_budget_bytes = env.bufferpool_budget;
    }
  }

  PrintStatsHeader();
  for (uint32_t num_shards : {1u, 2u, 4u, 8u}) {
    auto partition = ksp::StrPartition(*kb, num_shards);
    auto sharded =
        ksp::ShardedKspDatabase::Build(kb.get(), options, partition,
                                       /*alpha=*/3);
    KSP_CHECK(sharded.ok()) << sharded.status().ToString();
    SetShardRowAnnotation(num_shards);

    for (uint32_t m : {3u, 5u}) {
      ksp::QueryGenOptions qopt;
      qopt.num_keywords = m;
      qopt.k = 5;
      qopt.seed = 500 + m;
      auto queries = ksp::GenerateQueries(*kb, ksp::QueryClass::kOriginal,
                                          qopt, env.queries);
      char config[40];
      std::snprintf(config, sizeof(config), "K=%u |q.psi|=%u", num_shards,
                    m);
      for (Algo algo : {Algo::kBsp, Algo::kSpp, Algo::kSp}) {
        PrintStatsRow(config, algo,
                      RunShardedWorkload(**sharded, algo, queries, 5));
      }
    }
  }
  SetShardRowAnnotation(0);
  return ksp::bench::Finish();
}
