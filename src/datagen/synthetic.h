#ifndef KSP_DATAGEN_SYNTHETIC_H_
#define KSP_DATAGEN_SYNTHETIC_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "rdf/knowledge_base.h"

namespace ksp {

/// Statistical profile of a synthetic spatial RDF knowledge base. The two
/// factory profiles are calibrated to the per-vertex statistics the paper
/// reports for DBpedia and Yago (§6.1); absolute sizes are scaled by the
/// caller so experiments run on one machine (see DESIGN.md, substitution 1).
struct SyntheticProfile {
  std::string name = "synthetic";
  uint32_t num_vertices = 100000;
  /// Mean out-degree (DBpedia 72.2M/8.1M ≈ 8.9; Yago 50.4M/8.1M ≈ 6.2).
  double avg_out_degree = 8.0;
  /// Fraction of vertices that are places (DBpedia 0.109; Yago 0.59).
  double place_fraction = 0.1;
  /// Shared keyword vocabulary size as a fraction of num_vertices
  /// (DBpedia 2.93M/8.1M ≈ 0.36; Yago 3.78M/8.1M ≈ 0.47).
  double vocabulary_fraction = 0.36;
  /// Mean number of shared-vocabulary terms per document. Together with
  /// vocabulary_fraction this controls the paper's "keyword frequency"
  /// (mean posting length): kw_freq ≈ avg_doc_terms / vocabulary_fraction.
  double avg_doc_terms = 20.0;
  /// Zipf skew of term usage.
  double zipf_skew = 1.0;
  /// Fraction of edge targets drawn preferentially (hub bias).
  double hub_bias = 0.3;
  /// Spatial model: places cluster around Gaussian centers, giving the
  /// collocation of similar places the paper relies on in §6.2.5 [17,18].
  uint32_t num_clusters = 64;
  double cluster_stddev = 0.35;
  /// World bounding box in coordinate degrees (x = lat, y = lon).
  double min_x = 35.0, max_x = 60.0, min_y = -10.0, max_y = 30.0;
  /// Couples place documents to their spatial cluster so nearby places
  /// share topical terms.
  bool correlate_terms_with_space = true;
  uint64_t seed = 42;

  /// DBpedia-like: text-rich (high keyword frequency), few places.
  static SyntheticProfile DBpediaLike(uint32_t num_vertices);
  /// Yago-like: sparse text (low keyword frequency), places dominate.
  static SyntheticProfile YagoLike(uint32_t num_vertices);
};

/// Generates a knowledge base through the standard builder (the same code
/// path N-Triples ingestion uses).
Result<std::unique_ptr<KnowledgeBase>> GenerateKnowledgeBase(
    const SyntheticProfile& profile);

}  // namespace ksp

#endif  // KSP_DATAGEN_SYNTHETIC_H_
