#include "datagen/synthetic.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"

namespace ksp {

SyntheticProfile SyntheticProfile::DBpediaLike(uint32_t num_vertices) {
  SyntheticProfile p;
  p.name = "dbpedia-like";
  p.num_vertices = num_vertices;
  p.avg_out_degree = 8.9;
  p.place_fraction = 0.109;
  p.vocabulary_fraction = 0.30;
  // Calibrated so the DBpedia/Yago keyword-frequency contrast (56.46 vs
  // 7.83, a 7.2x gap) is preserved at reduced scale.
  p.avg_doc_terms = 35.0;
  p.seed = 42;
  return p;
}

SyntheticProfile SyntheticProfile::YagoLike(uint32_t num_vertices) {
  SyntheticProfile p;
  p.name = "yago-like";
  p.num_vertices = num_vertices;
  p.avg_out_degree = 6.2;
  p.place_fraction = 0.59;
  p.vocabulary_fraction = 0.47;
  p.avg_doc_terms = 2.0;
  p.seed = 43;
  return p;
}

Result<std::unique_ptr<KnowledgeBase>> GenerateKnowledgeBase(
    const SyntheticProfile& profile) {
  if (profile.num_vertices == 0) {
    return Status::InvalidArgument("num_vertices must be positive");
  }
  const uint32_t n = profile.num_vertices;
  const uint32_t vocab = std::max<uint32_t>(
      16, static_cast<uint32_t>(profile.vocabulary_fraction * n));

  Rng rng(profile.seed);
  ZipfSampler term_sampler(vocab, profile.zipf_skew);
  ZipfSampler hub_sampler(n, 1.0);
  ZipfSampler cluster_sampler(std::max<uint32_t>(1, profile.num_clusters),
                              0.8);

  // Pre-render term and predicate strings once.
  std::vector<std::string> term_strings(vocab);
  for (uint32_t t = 0; t < vocab; ++t) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "kw%06u", t);
    term_strings[t] = buf;
  }
  static const char* kPredicateNames[] = {
      "http://ksp.synthetic/linkedTo",   "http://ksp.synthetic/locatedIn",
      "http://ksp.synthetic/partOf",     "http://ksp.synthetic/category",
      "http://ksp.synthetic/associated", "http://ksp.synthetic/memberOf",
      "http://ksp.synthetic/created",    "http://ksp.synthetic/influenced",
  };
  constexpr size_t kNumPredicates = 8;
  ZipfSampler predicate_sampler(kNumPredicates, 0.7);

  // Tokenizer would split our synthetic IRIs into noise; disable camel
  // splitting (the local names are "nXXXXXXX").
  KnowledgeBaseOptions kb_options;
  kb_options.tokenizer.split_camel_case = false;
  KnowledgeBaseBuilder builder(kb_options);

  // 1. Entities. Local names "nXXXXXXX" tokenize to one unique term each,
  // mimicking the unique URI tokens of real KBs.
  for (uint32_t v = 0; v < n; ++v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "http://ksp.synthetic/e/n%07u", v);
    VertexId id = builder.AddEntity(buf);
    KSP_CHECK(id == v);
  }

  // 2. Spatial clusters and place assignment.
  std::vector<Point> cluster_centers(std::max<uint32_t>(
      1, profile.num_clusters));
  for (auto& c : cluster_centers) {
    c = Point{rng.NextDouble(profile.min_x, profile.max_x),
              rng.NextDouble(profile.min_y, profile.max_y)};
  }
  std::vector<uint32_t> cluster_of(n, 0);
  std::vector<bool> is_place(n, false);
  for (uint32_t v = 0; v < n; ++v) {
    cluster_of[v] = static_cast<uint32_t>(cluster_sampler.Sample(&rng));
    if (rng.NextBool(profile.place_fraction)) {
      is_place[v] = true;
      const Point& c = cluster_centers[cluster_of[v]];
      builder.SetLocation(
          v, Point{c.x + rng.NextGaussian() * profile.cluster_stddev,
                   c.y + rng.NextGaussian() * profile.cluster_stddev});
    }
  }

  // 3. Documents: Zipf-distributed shared terms, rotated per cluster for
  // place vertices so that collocated places share topical vocabulary.
  for (uint32_t v = 0; v < n; ++v) {
    // Geometric count with mean avg_doc_terms, at least 1, capped at 6x.
    uint32_t count = 1;
    const double p_continue =
        1.0 - 1.0 / std::max(1.0, profile.avg_doc_terms);
    while (count < profile.avg_doc_terms * 6 && rng.NextBool(p_continue)) {
      ++count;
    }
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t term = static_cast<uint32_t>(term_sampler.Sample(&rng));
      if (profile.correlate_terms_with_space && is_place[v]) {
        term = (term + cluster_of[v] * 131u) % vocab;
      }
      builder.AddDocumentTerm(v, term_strings[term]);
    }
  }

  // 4. Edges: per-vertex out-degree ~ Poisson-ish around the mean; targets
  // mix uniform picks with Zipf "hub" picks for a skewed in-degree.
  const uint64_t total_edges =
      static_cast<uint64_t>(profile.avg_out_degree * n);
  for (uint64_t e = 0; e < total_edges; ++e) {
    uint32_t src = static_cast<uint32_t>(rng.NextBounded(n));
    uint32_t dst;
    if (rng.NextBool(profile.hub_bias)) {
      dst = static_cast<uint32_t>(hub_sampler.Sample(&rng));
    } else {
      dst = static_cast<uint32_t>(rng.NextBounded(n));
    }
    if (dst == src) dst = (dst + 1) % n;
    const char* predicate =
        kPredicateNames[predicate_sampler.Sample(&rng) % kNumPredicates];
    builder.AddRelation(src, dst, predicate);
  }

  return builder.Finish();
}

}  // namespace ksp
