#ifndef KSP_DATAGEN_FIXTURES_H_
#define KSP_DATAGEN_FIXTURES_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "core/query.h"
#include "rdf/knowledge_base.h"

namespace ksp {

/// The running example of the paper (Figures 1 and 2): Montmajour Abbey
/// (p1) and the Roman Catholic Diocese (p2) with vertices v1..v8, built so
/// that the keyword-coverage map M_q.ψ of Table 2 and the worked numbers of
/// Examples 4-8 hold exactly:
///   q.ψ = {ancient, roman, catholic, history}
///   L(T_p1) = 6, L(T_p2) = 4,
///   f(T_p1, q1) = 1.32 (top-1 at q1), f(T_p2, q2) = 0.32 (top-1 at q2).
Result<std::unique_ptr<KnowledgeBase>> BuildFigure1KnowledgeBase();

/// Query locations of Figure 2.
inline constexpr Point kQ1{43.51, 4.75};
inline constexpr Point kQ2{43.17, 5.90};

/// Keywords of Examples 4-8.
std::vector<std::string> Figure1QueryKeywords();

/// The same example as an N-Triples document (with geo:lat/geo:long
/// coordinate triples), exercising the parser-driven ingestion path.
/// Feed to LoadKnowledgeBaseFromString().
std::string_view MontmajourNTriples();

}  // namespace ksp

#endif  // KSP_DATAGEN_FIXTURES_H_
