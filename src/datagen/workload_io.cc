#include "datagen/workload_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace ksp {

Status SaveWorkload(const KnowledgeBase& kb,
                    const std::vector<KspQuery>& queries,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# kSP workload: lat lon k keyword...\n";
  for (const KspQuery& q : queries) {
    char head[96];
    std::snprintf(head, sizeof(head), "%.17g %.17g %u", q.location.x,
                  q.location.y, q.k);
    out << head;
    for (TermId t : q.keywords) {
      if (t == kInvalidTerm) {
        return Status::InvalidArgument(
            "workload contains an unresolvable keyword");
      }
      out << ' ' << kb.vocabulary().Term(t);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<KspQuery>> LoadWorkload(const KnowledgeBase& kb,
                                           const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::vector<KspQuery> queries;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    KspQuery q;
    if (!(fields >> q.location.x >> q.location.y >> q.k)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": malformed query header");
    }
    std::vector<std::string> keywords;
    std::string keyword;
    while (fields >> keyword) keywords.push_back(keyword);
    if (keywords.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": query has no keywords");
    }
    q.keywords = kb.LookupTerms(keywords);
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace ksp
