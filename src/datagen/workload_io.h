#ifndef KSP_DATAGEN_WORKLOAD_IO_H_
#define KSP_DATAGEN_WORKLOAD_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/query.h"
#include "rdf/knowledge_base.h"

namespace ksp {

/// Text serialization of a query workload, portable across KBs that share
/// keyword strings (e.g., the random-jump samples of §6.2.4, where the
/// paper generates queries on the smallest dataset and replays them on
/// all). Format, one query per line:
///   <lat> <lon> <k> <keyword> [<keyword>...]
/// '#' lines are comments.
Status SaveWorkload(const KnowledgeBase& kb,
                    const std::vector<KspQuery>& queries,
                    const std::string& path);

/// Loads a workload, resolving keywords against `kb`'s vocabulary
/// (unknown keywords map to kInvalidTerm, making that query empty-result,
/// mirroring MakeQuery semantics).
Result<std::vector<KspQuery>> LoadWorkload(const KnowledgeBase& kb,
                                           const std::string& path);

}  // namespace ksp

#endif  // KSP_DATAGEN_WORKLOAD_IO_H_
