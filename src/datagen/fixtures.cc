#include "datagen/fixtures.h"

namespace ksp {

namespace {
constexpr std::string_view kBase = "http://example.org/";
}  // namespace

std::vector<std::string> Figure1QueryKeywords() {
  return {"ancient", "roman", "catholic", "history"};
}

Result<std::unique_ptr<KnowledgeBase>> BuildFigure1KnowledgeBase() {
  KnowledgeBaseBuilder builder;

  auto entity = [&](std::string_view local) {
    return builder.AddEntity(std::string(kBase) + std::string(local));
  };
  auto predicate = [&](std::string_view local) {
    return std::string(kBase) + std::string(local);
  };

  // Figure 1(a): squares p1/p2 are places, circles v1..v8 are entities.
  VertexId p1 = entity("Montmajour_Abbey");
  VertexId v1 = entity("Romanesque_architecture");
  VertexId v2 = entity("Saint_Peter");
  VertexId v3 = entity("Ancient_Diocese_of_Arles");
  VertexId v4 = entity("Architectural_history");
  VertexId v5 = entity("Roman_Empire");
  VertexId p2 = entity("Roman_Catholic_Diocese_of_Frejus_Toulon");
  VertexId v6 = entity("Mary_Magdalene");
  VertexId v7 = entity("Catholic_Church");
  VertexId v8 = entity("Anatolia");

  // Edges (predicate tokens flow into the object documents).
  builder.AddRelation(p1, v1, predicate("subject"));
  builder.AddRelation(p1, v2, predicate("dedication"));
  builder.AddRelation(p1, v3, predicate("diocese"));
  builder.AddRelation(v1, v4, predicate("subject"));
  builder.AddRelation(v2, v5, predicate("birthPlace"));
  builder.AddRelation(p2, v6, predicate("patron"));
  builder.AddRelation(p2, v7, predicate("denomination"));
  builder.AddRelation(v6, v8, predicate("deathPlace"));

  // Document top-ups so Figure 1(b)'s keyword coverage (and hence Table 2)
  // holds: v2 ⊇ {catholic, roman}, v5 ⊇ {ancient}, v7 ⊇ {history},
  // v8 ⊇ {ancient, history}.
  builder.AddDocumentTerm(v2, "catholic");
  builder.AddDocumentTerm(v2, "roman");
  builder.AddDocumentTerm(v5, "ancient");
  builder.AddDocumentTerm(v7, "history");
  builder.AddDocumentTerm(v8, "ancient");
  builder.AddDocumentTerm(v8, "history");

  // Figure 2 coordinates.
  builder.SetLocation(p1, Point{43.71, 4.66});
  builder.SetLocation(p2, Point{43.13, 5.97});

  return builder.Finish();
}

std::string_view MontmajourNTriples() {
  // Same example expressed in N-Triples; literals carry the document
  // top-ups and geo:lat/geo:long the coordinates.
  static constexpr std::string_view kNt = R"(# Figure 1 of the kSP paper as N-Triples.
<http://example.org/Montmajour_Abbey> <http://example.org/subject> <http://example.org/Romanesque_architecture> .
<http://example.org/Montmajour_Abbey> <http://example.org/dedication> <http://example.org/Saint_Peter> .
<http://example.org/Montmajour_Abbey> <http://example.org/diocese> <http://example.org/Ancient_Diocese_of_Arles> .
<http://example.org/Romanesque_architecture> <http://example.org/subject> <http://example.org/Architectural_history> .
<http://example.org/Saint_Peter> <http://example.org/birthPlace> <http://example.org/Roman_Empire> .
<http://example.org/Roman_Catholic_Diocese_of_Frejus_Toulon> <http://example.org/patron> <http://example.org/Mary_Magdalene> .
<http://example.org/Roman_Catholic_Diocese_of_Frejus_Toulon> <http://example.org/denomination> <http://example.org/Catholic_Church> .
<http://example.org/Mary_Magdalene> <http://example.org/deathPlace> <http://example.org/Anatolia> .
<http://example.org/Saint_Peter> <http://example.org/note> "Roman Catholic saint" .
<http://example.org/Roman_Empire> <http://example.org/note> "Ancient empire" .
<http://example.org/Catholic_Church> <http://example.org/note> "History of the church" .
<http://example.org/Anatolia> <http://example.org/note> "Ancient history region" .
<http://example.org/Montmajour_Abbey> <http://www.w3.org/2003/01/geo/wgs84_pos#lat> "43.71" .
<http://example.org/Montmajour_Abbey> <http://www.w3.org/2003/01/geo/wgs84_pos#long> "4.66" .
<http://example.org/Roman_Catholic_Diocese_of_Frejus_Toulon> <http://www.w3.org/2003/01/geo/wgs84_pos#lat> "43.13" .
<http://example.org/Roman_Catholic_Diocese_of_Frejus_Toulon> <http://www.w3.org/2003/01/geo/wgs84_pos#long> "5.97" .
)";
  return kNt;
}

}  // namespace ksp
