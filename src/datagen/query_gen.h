#ifndef KSP_DATAGEN_QUERY_GEN_H_
#define KSP_DATAGEN_QUERY_GEN_H_

#include <vector>

#include "core/query.h"
#include "rdf/knowledge_base.h"

namespace ksp {

/// The three query workloads of the evaluation:
///  - kOriginal (§6.1): keywords drawn from documents of vertices reachable
///    from a random place, location a large range around that place.
///  - kSDLL / kLDLL (§6.2.5): infrequent keywords (posting length < 100)
///    beyond 4 hops from the seed place; location near the place (SDLL) or
///    shifted by +90 longitude degrees (LDLL). Results then have large
///    looseness, with small/large spatial distance respectively.
enum class QueryClass { kOriginal, kSDLL, kLDLL };

struct QueryGenOptions {
  uint32_t num_keywords = 5;  // |q.ψ|
  uint32_t k = 5;
  /// §6.1: between |q.ψ|/2 and |q.ψ|·factor candidate vertices are picked.
  double factor = 2.0;
  /// kOriginal: query location uniform in a box of this half-width (in
  /// coordinate degrees) around the seed place.
  double location_range = 2.0;
  /// kSDLL: location offset magnitude from the seed place.
  double sdll_offset = 0.1;
  /// Keywords for SDLL/LDLL must have posting length below this.
  uint32_t infrequent_threshold = 100;
  /// SDLL/LDLL keywords must come from vertices strictly beyond this depth.
  uint32_t min_hops = 4;
  /// BFS exploration caps (keeps generation cheap on large graphs).
  uint32_t max_bfs_depth = 8;
  uint32_t max_bfs_vertices = 20000;
  uint64_t seed = 7;
};

/// Generates `count` queries of the given class. Returns fewer than
/// `count` only if the KB is too small to seed them (e.g., no places).
std::vector<KspQuery> GenerateQueries(const KnowledgeBase& kb,
                                      QueryClass query_class,
                                      const QueryGenOptions& options,
                                      size_t count);

}  // namespace ksp

#endif  // KSP_DATAGEN_QUERY_GEN_H_
