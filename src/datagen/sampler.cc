#include "datagen/sampler.h"

#include <vector>

#include "common/rng.h"

namespace ksp {

Result<std::unique_ptr<KnowledgeBase>> RandomJumpSample(
    const KnowledgeBase& kb, uint32_t target_vertices,
    double jump_probability, uint64_t seed) {
  const VertexId n = kb.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty knowledge base");
  target_vertices = std::min<uint32_t>(target_vertices, n);

  Rng rng(seed);
  std::vector<bool> sampled(n, false);
  uint32_t num_sampled = 0;
  const Graph& graph = kb.graph();

  VertexId current = static_cast<VertexId>(rng.NextBounded(n));
  // Guard: at most ~50 steps per target vertex before we fall back to
  // uniform filling (degenerate graphs).
  uint64_t steps_left = static_cast<uint64_t>(target_vertices) * 50 + 1000;
  while (num_sampled < target_vertices && steps_left-- > 0) {
    if (!sampled[current]) {
      sampled[current] = true;
      ++num_sampled;
    }
    auto out = graph.OutNeighbors(current);
    if (out.empty() || rng.NextBool(jump_probability)) {
      current = static_cast<VertexId>(rng.NextBounded(n));
    } else {
      current = out[rng.NextBounded(out.size())];
    }
  }
  // Fill any remainder uniformly (keeps the requested size exact).
  while (num_sampled < target_vertices) {
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (!sampled[v]) {
      sampled[v] = true;
      ++num_sampled;
    }
  }

  // Rebuild the induced subgraph through the standard builder. Documents
  // are copied verbatim; AddRelation re-adds predicate tokens to object
  // documents, which the document builder de-duplicates.
  KnowledgeBaseOptions options;
  options.tokenizer.split_camel_case = false;
  options.tokenizer.min_token_length = 1;
  options.tokenizer.drop_stopwords = false;
  KnowledgeBaseBuilder builder(options);

  std::vector<VertexId> new_id(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (!sampled[v]) continue;
    new_id[v] = builder.AddEntity(kb.VertexIri(v));
  }
  const DocumentStore& docs = kb.documents();
  const Vocabulary& vocab = kb.vocabulary();
  for (VertexId v = 0; v < n; ++v) {
    if (!sampled[v]) continue;
    const VertexId nv = new_id[v];
    for (TermId t : docs.Terms(v)) {
      builder.AddDocumentTerm(nv, vocab.Term(t));
    }
    PlaceId p = kb.place_of(v);
    if (p != kInvalidPlace) {
      builder.SetLocation(nv, kb.place_location(p));
    }
  }
  const Vocabulary& predicates = kb.predicate_dictionary();
  for (VertexId v = 0; v < n; ++v) {
    if (!sampled[v]) continue;
    auto neighbors = graph.OutNeighbors(v);
    auto preds = graph.OutPredicates(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (!sampled[neighbors[i]]) continue;
      builder.AddRelation(new_id[v], new_id[neighbors[i]],
                          predicates.Term(preds[i]));
    }
  }
  return builder.Finish();
}

}  // namespace ksp
