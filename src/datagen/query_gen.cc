#include "datagen/query_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace ksp {

namespace {

/// Bounded BFS from `root` over out-edges; returns (vertex, depth) pairs in
/// visiting order, root included at depth 0.
std::vector<std::pair<VertexId, uint32_t>> BoundedBfs(
    const Graph& graph, VertexId root, uint32_t max_depth,
    uint32_t max_vertices) {
  std::vector<std::pair<VertexId, uint32_t>> visited;
  std::unordered_set<VertexId> seen;
  visited.emplace_back(root, 0);
  seen.insert(root);
  for (size_t qi = 0; qi < visited.size() && visited.size() < max_vertices;
       ++qi) {
    auto [v, d] = visited[qi];
    if (d >= max_depth) continue;
    for (VertexId w : graph.OutNeighbors(v)) {
      if (seen.insert(w).second) {
        visited.emplace_back(w, d + 1);
        if (visited.size() >= max_vertices) break;
      }
    }
  }
  return visited;
}

/// Picks a random term of `v`'s document, or kInvalidTerm for empty docs.
TermId RandomDocTerm(const DocumentStore& docs, VertexId v, Rng* rng) {
  auto terms = docs.Terms(v);
  if (terms.empty()) return kInvalidTerm;
  return terms[rng->NextBounded(terms.size())];
}

/// §6.1 original generator: one attempt; false if the seed place is too
/// isolated (fewer than |q.ψ|/2 reachable vertices).
bool TryGenerateOriginal(const KnowledgeBase& kb,
                         const QueryGenOptions& options, Rng* rng,
                         KspQuery* query) {
  const PlaceId place =
      static_cast<PlaceId>(rng->NextBounded(kb.num_places()));
  const VertexId root = kb.place_vertex(place);
  const uint32_t m = options.num_keywords;

  auto reachable = BoundedBfs(kb.graph(), root, options.max_bfs_depth,
                              options.max_bfs_vertices);
  const size_t min_vertices = std::max<size_t>(1, m / 2);
  if (reachable.size() < min_vertices) return false;

  // Select between m/2 and m*factor reachable vertices at random, then at
  // most m of them contribute one keyword each.
  const size_t hi = std::min<size_t>(
      reachable.size(), static_cast<size_t>(m * options.factor));
  const size_t lo = std::min<size_t>(min_vertices, hi);
  const size_t num_selected =
      lo + static_cast<size_t>(rng->NextBounded(hi - lo + 1));
  std::vector<std::pair<VertexId, uint32_t>> pool = reachable;
  rng->Shuffle(&pool);
  pool.resize(num_selected);
  rng->Shuffle(&pool);

  query->keywords.clear();
  const DocumentStore& docs = kb.documents();
  for (size_t i = 0; i < pool.size() && query->keywords.size() < m; ++i) {
    TermId t = RandomDocTerm(docs, pool[i].first, rng);
    if (t != kInvalidTerm) query->keywords.push_back(t);
  }
  // Top up to m keywords by re-sampling selected vertices.
  for (size_t guard = 0; query->keywords.size() < m && guard < 64; ++guard) {
    TermId t = RandomDocTerm(
        docs, pool[rng->NextBounded(pool.size())].first, rng);
    if (t != kInvalidTerm) query->keywords.push_back(t);
  }
  if (query->keywords.empty()) return false;

  const Point p = kb.place_location(place);
  query->location =
      Point{p.x + rng->NextDouble(-options.location_range,
                                  options.location_range),
            p.y + rng->NextDouble(-options.location_range,
                                  options.location_range)};
  query->k = options.k;
  return true;
}

/// §6.2.5 SDLL/LDLL generator: infrequent keywords beyond min_hops.
bool TryGenerateLargeLooseness(const KnowledgeBase& kb,
                               const QueryGenOptions& options, bool distant,
                               Rng* rng, KspQuery* query) {
  const PlaceId place =
      static_cast<PlaceId>(rng->NextBounded(kb.num_places()));
  const VertexId root = kb.place_vertex(place);
  const uint32_t m = options.num_keywords;

  auto reachable = BoundedBfs(kb.graph(), root, options.max_bfs_depth,
                              options.max_bfs_vertices);
  // Candidate terms: infrequent, first seen beyond min_hops from the seed.
  std::vector<TermId> candidates;
  const DocumentStore& docs = kb.documents();
  const MemoryInvertedIndex& index = kb.inverted_index();
  for (const auto& [v, d] : reachable) {
    if (d <= options.min_hops) continue;
    for (TermId t : docs.Terms(v)) {
      if (index.Postings(t).size() < options.infrequent_threshold) {
        candidates.push_back(t);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.size() < m) return false;

  rng->Shuffle(&candidates);
  query->keywords.assign(candidates.begin(), candidates.begin() + m);

  const Point p = kb.place_location(place);
  if (distant) {
    // LDLL: shift longitude by +90 degrees.
    query->location = Point{p.x, p.y + 90.0};
  } else {
    // SDLL: near the seed place.
    query->location =
        Point{p.x + rng->NextDouble(-options.sdll_offset,
                                    options.sdll_offset),
              p.y + rng->NextDouble(-options.sdll_offset,
                                    options.sdll_offset)};
  }
  query->k = options.k;
  return true;
}

}  // namespace

std::vector<KspQuery> GenerateQueries(const KnowledgeBase& kb,
                                      QueryClass query_class,
                                      const QueryGenOptions& options,
                                      size_t count) {
  std::vector<KspQuery> queries;
  if (kb.num_places() == 0) return queries;
  Rng rng(options.seed);
  // Bounded retries: a sparse KB may not support the requested class.
  size_t attempts_left = count * 200 + 1000;
  while (queries.size() < count && attempts_left-- > 0) {
    KspQuery query;
    bool ok = false;
    switch (query_class) {
      case QueryClass::kOriginal:
        ok = TryGenerateOriginal(kb, options, &rng, &query);
        break;
      case QueryClass::kSDLL:
        ok = TryGenerateLargeLooseness(kb, options, /*distant=*/false, &rng,
                                       &query);
        break;
      case QueryClass::kLDLL:
        ok = TryGenerateLargeLooseness(kb, options, /*distant=*/true, &rng,
                                       &query);
        break;
    }
    if (ok) queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace ksp
