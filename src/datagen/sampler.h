#ifndef KSP_DATAGEN_SAMPLER_H_
#define KSP_DATAGEN_SAMPLER_H_

#include <memory>

#include "common/result.h"
#include "rdf/knowledge_base.h"

namespace ksp {

/// Random-jump graph sampling (Leskovec & Faloutsos [44], §6.2.4): a random
/// walk over out-edges that restarts at a uniformly random vertex with
/// probability `jump_probability` (the paper uses c = 0.15), collecting
/// distinct vertices until `target_vertices` are sampled. The returned KB
/// is the induced subgraph with documents and place coordinates preserved.
Result<std::unique_ptr<KnowledgeBase>> RandomJumpSample(
    const KnowledgeBase& kb, uint32_t target_vertices,
    double jump_probability, uint64_t seed);

}  // namespace ksp

#endif  // KSP_DATAGEN_SAMPLER_H_
