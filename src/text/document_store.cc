#include "text/document_store.h"

#include <algorithm>

#include "common/logging.h"

namespace ksp {

void DocumentStoreBuilder::AddTerm(VertexId vertex, TermId term) {
  if (docs_.size() <= vertex) docs_.resize(vertex + 1);
  docs_[vertex].push_back(term);
}

DocumentStore DocumentStoreBuilder::Finish(VertexId num_vertices) {
  KSP_CHECK(docs_.size() <= num_vertices)
      << "terms recorded for vertex beyond num_vertices";
  DocumentStore store;
  store.offsets_.reserve(num_vertices + 1);
  store.offsets_.push_back(0);
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (v < docs_.size()) {
      auto& doc = docs_[v];
      std::sort(doc.begin(), doc.end());
      doc.erase(std::unique(doc.begin(), doc.end()), doc.end());
      store.terms_.insert(store.terms_.end(), doc.begin(), doc.end());
      doc.clear();
      doc.shrink_to_fit();
    }
    store.offsets_.push_back(store.terms_.size());
  }
  docs_.clear();
  return store;
}

bool DocumentStore::Contains(VertexId vertex, TermId term) const {
  auto terms = Terms(vertex);
  return std::binary_search(terms.begin(), terms.end(), term);
}

double DocumentStore::AverageDocumentLength() const {
  VertexId n = num_vertices();
  if (n == 0) return 0.0;
  return static_cast<double>(terms_.size()) / static_cast<double>(n);
}

}  // namespace ksp
