#ifndef KSP_TEXT_DOCUMENT_STORE_H_
#define KSP_TEXT_DOCUMENT_STORE_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace ksp {

class DocumentStore;

/// Accumulates the per-vertex documents ψ while the KB is being built.
/// Duplicated terms are de-duplicated at Finish().
class DocumentStoreBuilder {
 public:
  /// Records that `term` appears in the document of `vertex`.
  void AddTerm(VertexId vertex, TermId term);

  /// Finalizes into an immutable store covering vertices [0, num_vertices).
  /// Vertices never touched get empty documents.
  DocumentStore Finish(VertexId num_vertices);

 private:
  friend class DocumentStore;
  std::vector<std::vector<TermId>> docs_;
};

/// Immutable CSR table of vertex documents: the "table which helps to
/// look-up fast the associated data for each vertex" of §3. Each document
/// is a sorted, de-duplicated list of TermIds.
class DocumentStore {
 public:
  DocumentStore() = default;

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Sorted unique terms of the document of `vertex`.
  std::span<const TermId> Terms(VertexId vertex) const {
    return {terms_.data() + offsets_[vertex],
            terms_.data() + offsets_[vertex + 1]};
  }

  /// Whether `term` occurs in the document of `vertex` (binary search).
  bool Contains(VertexId vertex, TermId term) const;

  /// Total number of (vertex, term) postings.
  uint64_t TotalPostings() const { return terms_.size(); }

  /// Mean document length; 0 for an empty store.
  double AverageDocumentLength() const;

  uint64_t MemoryUsageBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           terms_.capacity() * sizeof(TermId);
  }

 private:
  friend class DocumentStoreBuilder;
  std::vector<uint64_t> offsets_;  // size num_vertices + 1
  std::vector<TermId> terms_;
};

}  // namespace ksp

#endif  // KSP_TEXT_DOCUMENT_STORE_H_
