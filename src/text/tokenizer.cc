#include "text/tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace ksp {

namespace {

// Small stopword set: common English function words plus RDF/URI
// boilerplate that would otherwise dominate every document.
constexpr std::array<std::string_view, 32> kStopwords = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",       "by",
    "for",  "from", "in",   "is",   "it",   "of",   "on",       "or",
    "that", "the",  "to",   "was",  "with", "http", "https",    "www",
    "org",  "com",  "net",  "wiki", "page", "html", "resource", "ontology"};

inline bool IsAlnum(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}
inline bool IsUpper(char c) {
  return std::isupper(static_cast<unsigned char>(c)) != 0;
}
inline bool IsLower(char c) {
  return std::islower(static_cast<unsigned char>(c)) != 0;
}
inline bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

bool Tokenizer::IsStopword(std::string_view token) const {
  return std::find(kStopwords.begin(), kStopwords.end(), token) !=
         kStopwords.end();
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.size() >= options_.min_token_length &&
        (!options_.drop_stopwords || !IsStopword(current))) {
      tokens.push_back(current);
    }
    current.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (!IsAlnum(c)) {
      flush();
      continue;
    }
    if (options_.split_camel_case && !current.empty()) {
      char prev = text[i - 1];
      // Boundary: aB ("camelCase"), 1a/a1 (letter<->digit), and ABc
      // ("HTTPServer" -> "http", "server").
      bool lower_to_upper = IsLower(prev) && IsUpper(c);
      bool alpha_digit_switch = IsDigit(prev) != IsDigit(c);
      bool acronym_end = IsUpper(prev) && IsUpper(c) && i + 1 < text.size() &&
                         IsLower(text[i + 1]);
      if (lower_to_upper || alpha_digit_switch || acronym_end) flush();
    }
    current.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  flush();
  return tokens;
}

std::vector<std::string> Tokenizer::TokenizeUriLocalName(
    std::string_view uri) const {
  return Tokenize(UriLocalName(uri));
}

std::string_view StripAngleBrackets(std::string_view iri) {
  if (iri.size() >= 2 && iri.front() == '<' && iri.back() == '>') {
    return iri.substr(1, iri.size() - 2);
  }
  return iri;
}

std::string_view UriLocalName(std::string_view iri) {
  std::string_view s = StripAngleBrackets(iri);
  size_t pos = s.find_last_of("#/");
  if (pos != std::string_view::npos && pos + 1 < s.size()) {
    return s.substr(pos + 1);
  }
  return s;
}

}  // namespace ksp
