#include "text/vocabulary.h"

namespace ksp {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(std::string_view(terms_.back()), id);
  return id;
}

std::optional<TermId> Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

uint64_t Vocabulary::MemoryUsageBytes() const {
  uint64_t bytes = 0;
  for (const auto& t : terms_) {
    bytes += sizeof(std::string) + t.capacity();
  }
  // Hash table: bucket array + node per entry (approximate).
  bytes += index_.bucket_count() * sizeof(void*);
  bytes += index_.size() *
           (sizeof(std::pair<std::string_view, TermId>) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace ksp
