#include "text/inverted_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>

#include "common/io_util.h"
#include "common/varint.h"

namespace ksp {

namespace {
constexpr uint32_t kMagic = 0x4B535049;  // "KSPI"
constexpr uint32_t kFormatVersion = 2;

Status WriteAll(std::FILE* f, std::string_view data) {
  if (std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

/// Varint-delta encodes one posting list onto `*buf`.
void AppendPostingList(std::string* buf, std::span<const VertexId> postings) {
  PutVarint64(buf, postings.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < postings.size(); ++i) {
    uint64_t value = postings[i];
    PutVarint64(buf, i == 0 ? value : value - prev);
    prev = value;
  }
}
}  // namespace

MemoryInvertedIndex MemoryInvertedIndex::Build(const DocumentStore& docs,
                                               TermId num_terms) {
  MemoryInvertedIndex index;
  // Counting pass, then fill: stable O(postings) without per-term vectors.
  std::vector<uint64_t> counts(num_terms, 0);
  const VertexId n = docs.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (TermId t : docs.Terms(v)) ++counts[t];
  }
  index.offsets_.assign(num_terms + 1, 0);
  for (TermId t = 0; t < num_terms; ++t) {
    index.offsets_[t + 1] = index.offsets_[t] + counts[t];
  }
  index.postings_.resize(index.offsets_[num_terms]);
  std::vector<uint64_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (TermId t : docs.Terms(v)) {
      index.postings_[cursor[t]++] = v;
    }
  }
  // Vertices are visited in ascending order, so lists are already sorted.
  return index;
}

Status MemoryInvertedIndex::GetPostings(TermId term,
                                        std::vector<VertexId>* out) const {
  auto span = Postings(term);
  out->insert(out->end(), span.begin(), span.end());
  return Status::OK();
}

uint64_t MemoryInvertedIndex::NumTerms() const {
  uint64_t n = 0;
  for (size_t t = 0; t + 1 < offsets_.size(); ++t) {
    if (offsets_[t + 1] > offsets_[t]) ++n;
  }
  return n;
}

uint64_t MemoryInvertedIndex::SizeBytes() const {
  return offsets_.capacity() * sizeof(uint64_t) +
         postings_.capacity() * sizeof(VertexId);
}

Status DiskInvertedIndex::Write(const MemoryInvertedIndex& index,
                                const std::string& path, FileSystem* fs,
                                ArtifactInfo* info) {
  if (fs == nullptr) fs = DefaultFileSystem();
  const TermId num_terms = index.TermCount();
  return WriteArtifactAtomically(
      fs, path, kMagic, kFormatVersion,
      [&index, num_terms](ChecksummedWriter* w) -> Status {
        std::string meta;
        AppendPod(&meta, static_cast<uint32_t>(num_terms));
        AppendPod(&meta, index.NumPostings());
        KSP_RETURN_NOT_OK(w->WriteSection(meta));

        // Postings blob with blob-relative offsets, then the table.
        std::string blob;
        std::vector<uint64_t> offsets(num_terms, 0);
        for (TermId t = 0; t < num_terms; ++t) {
          offsets[t] = blob.size();
          AppendPostingList(&blob, index.Postings(t));
        }
        KSP_RETURN_NOT_OK(w->WriteSection(blob));

        std::string table;
        table.reserve(offsets.size() * 8);
        for (uint64_t off : offsets) PutFixed64(&table, off);
        return w->WriteSection(table);
      },
      info);
}

Status DiskInvertedIndex::WriteLegacyForTesting(
    const MemoryInvertedIndex& index, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  Status st;
  const TermId num_terms = index.TermCount();

  std::string header;
  PutFixed32(&header, kMagic);
  PutFixed32(&header, num_terms);
  st = WriteAll(f, header);

  std::vector<uint64_t> offsets(num_terms, 0);
  uint64_t pos = header.size();
  std::string buf;
  for (TermId t = 0; t < num_terms && st.ok(); ++t) {
    offsets[t] = pos;
    buf.clear();
    AppendPostingList(&buf, index.Postings(t));
    st = WriteAll(f, buf);
    pos += buf.size();
  }

  if (st.ok()) {
    std::string table;
    table.reserve(num_terms * 8 + 12);
    for (uint64_t off : offsets) PutFixed64(&table, off);
    PutFixed64(&table, pos);  // Offset of the table itself.
    PutFixed32(&table, kMagic);
    st = WriteAll(f, table);
  }
  if (std::fclose(f) != 0 && st.ok()) {
    st = Status::IOError("close failed: " + path);
  }
  return st;
}

Result<std::unique_ptr<DiskInvertedIndex>> DiskInvertedIndex::Open(
    const std::string& path, FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  auto checksummed = IsChecksummedFile(**file);
  if (!checksummed.ok()) return checksummed.status();
  if (!*checksummed) return OpenLegacy(std::move(*file));

  auto index = std::unique_ptr<DiskInvertedIndex>(new DiskInvertedIndex());
  index->file_ = std::move(*file);
  index->file_size_ = index->file_->Size();
  ChecksummedReader reader(index->file_.get());
  uint32_t version = 0;
  KSP_RETURN_NOT_OK(reader.Open(kMagic, &version));
  if (version != kFormatVersion) {
    return CorruptionAt(path, 4,
                        "unsupported inverted-index format version " +
                            std::to_string(version));
  }

  std::string meta;
  const uint64_t meta_offset = reader.offset();
  KSP_RETURN_NOT_OK(reader.ReadSection(&meta));
  size_t mpos = 0;
  uint32_t num_terms = 0;
  Status st = ParsePod(meta, &mpos, &num_terms);
  if (st.ok()) st = ParsePod(meta, &mpos, &index->num_postings_);
  if (!st.ok() || mpos != meta.size()) {
    return CorruptionAt(path, meta_offset, "malformed meta section");
  }

  // The postings blob is CRC-verified in place (streamed, not held in
  // memory) so per-query positioned reads hit validated bytes.
  KSP_RETURN_NOT_OK(
      reader.VerifySection(&index->blob_offset_, &index->blob_size_));

  std::string table;
  const uint64_t table_offset = reader.offset();
  KSP_RETURN_NOT_OK(reader.ReadSection(&table));
  KSP_RETURN_NOT_OK(reader.ExpectEnd());
  if (table.size() != num_terms * 8ULL) {
    return CorruptionAt(path, table_offset, "offset table size mismatch");
  }
  index->offsets_.resize(num_terms);
  size_t tpos = 0;
  for (uint32_t t = 0; t < num_terms; ++t) {
    KSP_RETURN_NOT_OK(GetFixed64(table, &tpos, &index->offsets_[t]));
    if (index->offsets_[t] > index->blob_size_) {
      return CorruptionAt(path, table_offset + t * 8ULL,
                          "posting offset beyond blob");
    }
  }
  return index;
}

Result<std::unique_ptr<DiskInvertedIndex>> DiskInvertedIndex::OpenLegacy(
    std::unique_ptr<RandomAccessFile> file) {
  const std::string path = file->path();
  auto index = std::unique_ptr<DiskInvertedIndex>(new DiskInvertedIndex());
  index->file_ = std::move(file);
  const uint64_t size = index->file_->Size();
  if (size < 20) return Status::Corruption("index file too small: " + path);
  index->file_size_ = size;

  // Footer: [table_offset fixed64][magic fixed32].
  std::string footer;
  KSP_RETURN_NOT_OK(index->file_->Read(size - 12, 12, &footer));
  if (footer.size() != 12) return IOErrorAt(path, size - 12, "short read");
  size_t fpos = 0;
  uint64_t table_offset = 0;
  uint32_t magic = 0;
  KSP_RETURN_NOT_OK(GetFixed64(footer, &fpos, &table_offset));
  KSP_RETURN_NOT_OK(GetFixed32(footer, &fpos, &magic));
  if (magic != kMagic) return Status::Corruption("bad footer magic: " + path);

  // Header: [magic fixed32][num_terms fixed32].
  std::string header;
  KSP_RETURN_NOT_OK(index->file_->Read(0, 8, &header));
  if (header.size() != 8) return IOErrorAt(path, 0, "short read");
  size_t hpos = 0;
  uint32_t hmagic = 0;
  uint32_t num_terms = 0;
  KSP_RETURN_NOT_OK(GetFixed32(header, &hpos, &hmagic));
  KSP_RETURN_NOT_OK(GetFixed32(header, &hpos, &num_terms));
  if (hmagic != kMagic) return Status::Corruption("bad header magic: " + path);

  // Lists occupy [8, table_offset); the table plus footer must fit in the
  // rest of the file or the declared term count is corrupt.
  if (table_offset < 8 || table_offset > size - 12 ||
      num_terms > (size - 12 - table_offset) / 8) {
    return CorruptionAt(path, size - 12,
                        "offset table does not fit in file");
  }
  // v1 offsets are absolute file positions.
  index->blob_offset_ = 0;
  index->blob_size_ = table_offset;

  std::string table;
  KSP_RETURN_NOT_OK(
      index->file_->Read(table_offset, num_terms * 8ULL, &table));
  if (table.size() != num_terms * 8ULL) {
    return IOErrorAt(path, table_offset, "cannot read offset table");
  }
  index->offsets_.resize(num_terms);
  size_t tpos = 0;
  for (uint32_t t = 0; t < num_terms; ++t) {
    KSP_RETURN_NOT_OK(GetFixed64(table, &tpos, &index->offsets_[t]));
    if (index->offsets_[t] < 8 || index->offsets_[t] > table_offset) {
      return CorruptionAt(path, table_offset + t * 8ULL,
                          "posting offset out of range");
    }
  }

  // Count postings once for stats (streaming pass over the lists).
  uint64_t total = 0;
  std::vector<VertexId> scratch;
  for (uint32_t t = 0; t < num_terms; ++t) {
    scratch.clear();
    KSP_RETURN_NOT_OK(index->GetPostings(t, &scratch));
    total += scratch.size();
  }
  index->num_postings_ = total;
  return index;
}

Status DiskInvertedIndex::GetPostings(TermId term,
                                      std::vector<VertexId>* out) const {
  if (term >= offsets_.size()) return Status::OK();
  const uint64_t off = offsets_[term];
  if (off > blob_size_) {
    return CorruptionAt(file_->path(), blob_offset_ + off,
                        "posting offset beyond blob");
  }
  const uint64_t remaining = blob_size_ - off;

  // Read the count (at most 10 bytes), then exactly the remaining deltas.
  std::string buf;
  KSP_RETURN_NOT_OK(
      file_->Read(blob_offset_ + off, std::min<uint64_t>(10, remaining),
                  &buf));
  size_t pos = 0;
  uint64_t count = 0;
  KSP_RETURN_NOT_OK(GetVarint64(buf, &pos, &count));
  // Each delta takes at least one byte; a corrupt count must not drive a
  // multi-GB reserve.
  if (count > remaining - pos) {
    return CorruptionAt(file_->path(), blob_offset_ + off,
                        "posting count exceeds blob");
  }

  std::string body;
  // Worst case 10 bytes per varint delta, bounded by the blob itself.
  const uint64_t want =
      std::min<uint64_t>(count * 10 + 16, remaining - pos);
  KSP_RETURN_NOT_OK(
      file_->Read(blob_offset_ + off + pos, want, &body));

  size_t bpos = 0;
  uint64_t prev = 0;
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    KSP_RETURN_NOT_OK(GetVarint64(body, &bpos, &delta));
    prev = (i == 0) ? delta : prev + delta;
    out->push_back(static_cast<VertexId>(prev));
  }
  return Status::OK();
}

}  // namespace ksp
