#include "text/inverted_index.h"

#include <algorithm>
#include <cstring>

#include "common/varint.h"

namespace ksp {

namespace {
constexpr uint32_t kMagic = 0x4B535049;  // "KSPI"

Status WriteAll(std::FILE* f, std::string_view data) {
  if (std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    return Status::IOError("short write");
  }
  return Status::OK();
}
}  // namespace

MemoryInvertedIndex MemoryInvertedIndex::Build(const DocumentStore& docs,
                                               TermId num_terms) {
  MemoryInvertedIndex index;
  // Counting pass, then fill: stable O(postings) without per-term vectors.
  std::vector<uint64_t> counts(num_terms, 0);
  const VertexId n = docs.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (TermId t : docs.Terms(v)) ++counts[t];
  }
  index.offsets_.assign(num_terms + 1, 0);
  for (TermId t = 0; t < num_terms; ++t) {
    index.offsets_[t + 1] = index.offsets_[t] + counts[t];
  }
  index.postings_.resize(index.offsets_[num_terms]);
  std::vector<uint64_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (TermId t : docs.Terms(v)) {
      index.postings_[cursor[t]++] = v;
    }
  }
  // Vertices are visited in ascending order, so lists are already sorted.
  return index;
}

Status MemoryInvertedIndex::GetPostings(TermId term,
                                        std::vector<VertexId>* out) const {
  auto span = Postings(term);
  out->insert(out->end(), span.begin(), span.end());
  return Status::OK();
}

uint64_t MemoryInvertedIndex::NumTerms() const {
  uint64_t n = 0;
  for (size_t t = 0; t + 1 < offsets_.size(); ++t) {
    if (offsets_[t + 1] > offsets_[t]) ++n;
  }
  return n;
}

uint64_t MemoryInvertedIndex::SizeBytes() const {
  return offsets_.capacity() * sizeof(uint64_t) +
         postings_.capacity() * sizeof(VertexId);
}

DiskInvertedIndex::~DiskInvertedIndex() {
  if (file_ != nullptr) std::fclose(file_);
}

Status DiskInvertedIndex::Write(const MemoryInvertedIndex& index,
                                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  Status st;
  const TermId num_terms = index.TermCount();

  std::string header;
  PutFixed32(&header, kMagic);
  PutFixed32(&header, num_terms);
  st = WriteAll(f, header);

  std::vector<uint64_t> offsets(num_terms, 0);
  uint64_t pos = header.size();
  std::string buf;
  for (TermId t = 0; t < num_terms && st.ok(); ++t) {
    offsets[t] = pos;
    buf.clear();
    auto postings = index.Postings(t);
    PutVarint64(&buf, postings.size());
    uint64_t prev = 0;
    for (size_t i = 0; i < postings.size(); ++i) {
      uint64_t value = postings[i];
      PutVarint64(&buf, i == 0 ? value : value - prev);
      prev = value;
    }
    st = WriteAll(f, buf);
    pos += buf.size();
  }

  if (st.ok()) {
    std::string table;
    table.reserve(num_terms * 8 + 12);
    for (uint64_t off : offsets) PutFixed64(&table, off);
    PutFixed64(&table, pos);  // Offset of the table itself.
    PutFixed32(&table, kMagic);
    st = WriteAll(f, table);
  }
  if (std::fclose(f) != 0 && st.ok()) {
    st = Status::IOError("close failed: " + path);
  }
  return st;
}

Result<std::unique_ptr<DiskInvertedIndex>> DiskInvertedIndex::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open: " + path);
  }
  auto index = std::unique_ptr<DiskInvertedIndex>(new DiskInvertedIndex());
  index->file_ = f;

  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed: " + path);
  }
  long end = std::ftell(f);
  if (end < 20) return Status::Corruption("index file too small: " + path);
  index->file_size_ = static_cast<uint64_t>(end);

  // Footer: [table_offset fixed64][magic fixed32].
  std::string footer(12, '\0');
  if (std::fseek(f, end - 12, SEEK_SET) != 0 ||
      std::fread(footer.data(), 1, 12, f) != 12) {
    return Status::IOError("cannot read footer: " + path);
  }
  size_t fpos = 0;
  uint64_t table_offset = 0;
  uint32_t magic = 0;
  KSP_RETURN_NOT_OK(GetFixed64(footer, &fpos, &table_offset));
  KSP_RETURN_NOT_OK(GetFixed32(footer, &fpos, &magic));
  if (magic != kMagic) return Status::Corruption("bad footer magic: " + path);

  // Header: [magic fixed32][num_terms fixed32].
  std::string header(8, '\0');
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fread(header.data(), 1, 8, f) != 8) {
    return Status::IOError("cannot read header: " + path);
  }
  size_t hpos = 0;
  uint32_t hmagic = 0;
  uint32_t num_terms = 0;
  KSP_RETURN_NOT_OK(GetFixed32(header, &hpos, &hmagic));
  KSP_RETURN_NOT_OK(GetFixed32(header, &hpos, &num_terms));
  if (hmagic != kMagic) return Status::Corruption("bad header magic: " + path);

  std::string table(num_terms * 8ULL, '\0');
  if (std::fseek(f, static_cast<long>(table_offset), SEEK_SET) != 0 ||
      std::fread(table.data(), 1, table.size(), f) != table.size()) {
    return Status::IOError("cannot read offset table: " + path);
  }
  index->offsets_.resize(num_terms);
  size_t tpos = 0;
  for (uint32_t t = 0; t < num_terms; ++t) {
    KSP_RETURN_NOT_OK(GetFixed64(table, &tpos, &index->offsets_[t]));
  }

  // Count postings once for stats (streaming pass over the lists).
  uint64_t total = 0;
  std::vector<VertexId> scratch;
  for (uint32_t t = 0; t < num_terms; ++t) {
    scratch.clear();
    KSP_RETURN_NOT_OK(index->GetPostings(t, &scratch));
    total += scratch.size();
  }
  index->num_postings_ = total;
  return index;
}

Status DiskInvertedIndex::GetPostings(TermId term,
                                      std::vector<VertexId>* out) const {
  if (term >= offsets_.size()) return Status::OK();
  if (std::fseek(file_, static_cast<long>(offsets_[term]), SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  // Read the count (at most 10 bytes), then exactly the remaining deltas.
  std::string buf(10, '\0');
  size_t got = std::fread(buf.data(), 1, buf.size(), file_);
  buf.resize(got);
  size_t pos = 0;
  uint64_t count = 0;
  KSP_RETURN_NOT_OK(GetVarint64(buf, &pos, &count));

  std::string body;
  body.resize(count * 5 + 16);  // Worst case 5 bytes per 32-bit delta.
  size_t have = got - pos;
  std::memcpy(body.data(), buf.data() + pos, have);
  size_t more = std::fread(body.data() + have, 1, body.size() - have, file_);
  body.resize(have + more);

  size_t bpos = 0;
  uint64_t prev = 0;
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    KSP_RETURN_NOT_OK(GetVarint64(body, &bpos, &delta));
    prev = (i == 0) ? delta : prev + delta;
    out->push_back(static_cast<VertexId>(prev));
  }
  return Status::OK();
}

}  // namespace ksp
