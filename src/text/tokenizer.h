#ifndef KSP_TEXT_TOKENIZER_H_
#define KSP_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ksp {

/// Options controlling keyword extraction from URIs and literals.
struct TokenizerOptions {
  /// Split "CamelCase" into {"camel", "case"}. URIs in DBpedia/Yago use
  /// CamelCase local names heavily.
  bool split_camel_case = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 2;
  /// Drop a small set of English stopwords and RDF boilerplate ("the",
  /// "of", "http", "resource", ...).
  bool drop_stopwords = true;
};

/// Extracts lowercase keyword tokens from free text, splitting on
/// non-alphanumeric characters (and CamelCase boundaries if enabled).
/// Numbers-only tokens are kept: entity names often include years.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes arbitrary text (a literal value or a URI local name).
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Tokenizes the local name of a URI: the fragment after the last '#',
  /// '/' or ':'. "<http://dbpedia.org/resource/Montmajour_Abbey>" yields
  /// {"montmajour", "abbey"}.
  std::vector<std::string> TokenizeUriLocalName(std::string_view uri) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool IsStopword(std::string_view token) const;

  TokenizerOptions options_;
};

/// Strips surrounding angle brackets from an IRI token if present.
std::string_view StripAngleBrackets(std::string_view iri);

/// Returns the local name of an IRI: the suffix after the last '#' or '/'
/// (after stripping angle brackets). Falls back to the whole IRI.
std::string_view UriLocalName(std::string_view iri);

}  // namespace ksp

#endif  // KSP_TEXT_TOKENIZER_H_
