#ifndef KSP_TEXT_VOCABULARY_H_
#define KSP_TEXT_VOCABULARY_H_

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.h"

namespace ksp {

/// Bidirectional term dictionary: interns keyword strings to dense TermIds
/// and back. Ids are assigned in first-seen order and are stable.
class Vocabulary {
 public:
  Vocabulary() = default;

  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Returns the id of `term`, adding it if absent.
  TermId Intern(std::string_view term);

  /// Returns the id of `term` or nullopt if it was never interned.
  std::optional<TermId> Lookup(std::string_view term) const;

  /// Returns the string of an id. Requires id < size().
  const std::string& Term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

  /// Approximate heap footprint, for the storage-cost table.
  uint64_t MemoryUsageBytes() const;

 private:
  // deque keeps element addresses stable so index_ may hold views into it.
  std::deque<std::string> terms_;
  std::unordered_map<std::string_view, TermId> index_;
};

}  // namespace ksp

#endif  // KSP_TEXT_VOCABULARY_H_
