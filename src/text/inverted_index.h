#ifndef KSP_TEXT_INVERTED_INDEX_H_
#define KSP_TEXT_INVERTED_INDEX_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "text/document_store.h"

namespace ksp {

struct ArtifactInfo;

/// Term -> sorted vertex posting list. The paper keeps this index
/// disk-resident (only the query keywords' lists are loaded per query);
/// both a memory- and a disk-resident implementation are provided behind
/// this interface.
class InvertedIndex {
 public:
  virtual ~InvertedIndex() = default;

  /// Appends the (sorted ascending) posting list of `term` to `*out`.
  /// Unknown terms yield an empty list and OK status.
  virtual Status GetPostings(TermId term, std::vector<VertexId>* out) const = 0;

  /// Zero-copy view of `term`'s posting list when the implementation
  /// keeps it memory-resident (valid for the index's lifetime); nullopt
  /// when the caller must materialize a copy via GetPostings (disk
  /// index). Unknown terms yield an empty span, not nullopt.
  virtual std::optional<std::span<const VertexId>> PostingsSpan(
      TermId term) const {
    (void)term;
    return std::nullopt;
  }

  /// Number of distinct terms with at least one posting.
  virtual uint64_t NumTerms() const = 0;

  /// Total number of postings across all terms.
  virtual uint64_t NumPostings() const = 0;

  /// Bytes occupied (heap for the memory index, file size for disk).
  virtual uint64_t SizeBytes() const = 0;

  /// Mean posting-list length — the paper's "keyword frequency" statistic
  /// (56.46 for DBpedia, 7.83 for Yago).
  double AveragePostingLength() const {
    uint64_t t = NumTerms();
    return t == 0 ? 0.0
                  : static_cast<double>(NumPostings()) /
                        static_cast<double>(t);
  }
};

/// Heap-resident inverted index built directly from a DocumentStore.
class MemoryInvertedIndex : public InvertedIndex {
 public:
  /// Builds postings for all terms in [0, num_terms).
  static MemoryInvertedIndex Build(const DocumentStore& docs,
                                   TermId num_terms);

  Status GetPostings(TermId term, std::vector<VertexId>* out) const override;
  uint64_t NumTerms() const override;
  uint64_t NumPostings() const override { return postings_.size(); }
  uint64_t SizeBytes() const override;

  /// Size of the id space the index was built over (terms with empty lists
  /// included).
  TermId TermCount() const {
    return static_cast<TermId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  std::optional<std::span<const VertexId>> PostingsSpan(
      TermId term) const override {
    return Postings(term);
  }

  /// Zero-copy view (memory index only).
  std::span<const VertexId> Postings(TermId term) const {
    if (term + 1 >= offsets_.size()) return {};
    return {postings_.data() + offsets_[term],
            postings_.data() + offsets_[term + 1]};
  }

 private:
  std::vector<uint64_t> offsets_;  // size num_terms + 1
  std::vector<VertexId> postings_;
};

/// Disk-resident inverted index: postings are varint-delta encoded in a
/// single file; only an offset table is kept in memory and each
/// GetPostings() performs one positioned read — mirroring the paper's
/// "commercial search engine" setting.
///
/// v2 layout (inside the checksummed container of common/io_util.h):
///   container magic u32
///   header section:   artifact magic u32, format version u32
///   meta section:     num_terms u32, num_postings u64
///   postings section: per term varint count, then `count` varint deltas
///                     (first is absolute); offsets are blob-relative
///   table section:    num_terms fixed64 blob-relative offsets
/// Write commits via temp-file + fsync + atomic rename; Open CRC-verifies
/// every section (the postings blob is streamed) before any query runs,
/// so positioned reads at query time stay checksum-covered. The CRC-free
/// v1 layout ([magic][num_terms] lists, absolute-offset table,
/// [table_offset][magic] footer) remains readable for one release.
class DiskInvertedIndex : public InvertedIndex {
 public:
  ~DiskInvertedIndex() override = default;

  DiskInvertedIndex(const DiskInvertedIndex&) = delete;
  DiskInvertedIndex& operator=(const DiskInvertedIndex&) = delete;

  /// Serializes a memory index to `path` (atomic, checksummed).
  static Status Write(const MemoryInvertedIndex& index,
                      const std::string& path, FileSystem* fs = nullptr,
                      ArtifactInfo* info = nullptr);

  /// v1 writer kept only for legacy-read-window tests.
  static Status WriteLegacyForTesting(const MemoryInvertedIndex& index,
                                      const std::string& path);

  /// Opens an index previously produced by Write().
  static Result<std::unique_ptr<DiskInvertedIndex>> Open(
      const std::string& path, FileSystem* fs = nullptr);

  Status GetPostings(TermId term, std::vector<VertexId>* out) const override;
  uint64_t NumTerms() const override { return offsets_.size(); }
  uint64_t NumPostings() const override { return num_postings_; }
  uint64_t SizeBytes() const override { return file_size_; }

  /// File range of the varint posting blob (CRC-verified at Open) —
  /// exposed so a pooled reader can route posting decodes through a
  /// shared buffer pool instead of this object's private pread path.
  uint64_t blob_offset() const { return blob_offset_; }
  uint64_t blob_size() const { return blob_size_; }
  const std::string& path() const { return file_->path(); }

  /// Blob-relative byte range [*begin, *end) of `term`'s encoded list.
  /// Unknown terms yield the empty range [0, 0) and OK status.
  Status PostingRange(TermId term, uint64_t* begin, uint64_t* end) const {
    if (term >= offsets_.size()) {
      *begin = *end = 0;
      return Status::OK();
    }
    *begin = offsets_[term];
    *end = term + 1 < offsets_.size() ? offsets_[term + 1] : blob_size_;
    if (*end < *begin || *end > blob_size_) {
      return Status::Corruption("posting offsets not monotonic");
    }
    return Status::OK();
  }

 private:
  DiskInvertedIndex() = default;

  static Result<std::unique_ptr<DiskInvertedIndex>> OpenLegacy(
      std::unique_ptr<RandomAccessFile> file);

  std::unique_ptr<RandomAccessFile> file_;
  /// Blob-relative posting-list offsets (absolute == blob_offset_ + off).
  std::vector<uint64_t> offsets_;
  /// File range of the varint posting blob.
  uint64_t blob_offset_ = 0;
  uint64_t blob_size_ = 0;
  uint64_t num_postings_ = 0;
  uint64_t file_size_ = 0;
};

}  // namespace ksp

#endif  // KSP_TEXT_INVERTED_INDEX_H_
