#ifndef KSP_SERVICE_PROTOCOL_H_
#define KSP_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/query.h"
#include "spatial/geometry.h"

namespace ksp {

/// Wire protocol of the query serving tier (DESIGN.md §11): every message
/// is one length-prefixed frame — a fixed32 little-endian payload size
/// followed by that many payload bytes — over a stream socket, strictly
/// request/response per connection. The payload reuses the varint /
/// fixed-width codec of the on-disk indexes (common/varint.h); doubles
/// travel as their IEEE-754 bit pattern in a fixed64.
///
/// Requests carry keyword *strings*; the server resolves them against the
/// vocabulary of whichever index generation answers, so a client never
/// holds TermIds that a hot swap could invalidate.

/// Frame size prefix width.
inline constexpr size_t kFrameHeaderBytes = 4;

enum class MessageType : uint8_t {
  kQuery = 1,    // Top-k retrieval; runs on a pool worker.
  kHealth = 2,   // Liveness + backend/queue snapshot; served inline.
  kMetrics = 3,  // Registry snapshot (Prometheus text); served inline.
  kSwap = 4,     // Hot index swap to a saved directory; served inline.
  kExplain = 5,  // EXPLAIN report (JSON body); runs on a pool worker.
};

/// A kQuery / kExplain payload.
struct QueryRequest {
  KspAlgorithm algorithm = KspAlgorithm::kSp;
  uint32_t k = 1;
  Point location;
  /// Per-request deadline measured from admission, 0 = server default.
  /// The clock covers queue wait: a request that waits out its deadline
  /// is answered kDeadlineExceeded without ever running.
  uint64_t deadline_ms = 0;
  std::vector<std::string> keywords;
};

/// One decoded request frame. `query` is meaningful for kQuery/kExplain,
/// `directory` for kSwap.
struct ServiceRequest {
  MessageType type = MessageType::kQuery;
  QueryRequest query;
  std::string directory;
};

/// One top-k entry on the wire (the semantic-place tree stays server-side;
/// clients that need matched vertices use kExplain).
struct WireResultEntry {
  PlaceId place = kInvalidPlace;
  double looseness = 0.0;
  double spatial_distance = 0.0;
  double score = 0.0;
};

/// One decoded response frame. `code != kOk` carries `message` and, for
/// kUnavailable (admission rejection / draining), a `retry_after_ms`
/// backoff hint. Successful responses carry the serving generation that
/// answered plus the type-specific payload: `entries`/`total_ms` for
/// kQuery, `body` for kHealth/kMetrics/kExplain.
struct ServiceResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint64_t retry_after_ms = 0;
  uint64_t generation = 0;
  std::vector<WireResultEntry> entries;
  double total_ms = 0.0;
  std::string body;

  bool ok() const { return code == StatusCode::kOk; }
};

/// ---- Payload codec (no I/O) ----

void EncodeRequest(const ServiceRequest& request, std::string* out);
Status DecodeRequest(std::string_view payload, ServiceRequest* request);

void EncodeResponse(const ServiceResponse& response, std::string* out);
Status DecodeResponse(std::string_view payload, ServiceResponse* response);

/// ---- Frame I/O over a connected stream socket ----

/// Reads one frame into `payload`. A connection closed cleanly between
/// frames sets `*clean_eof` and returns OK with an empty payload; a close
/// or error mid-frame is an IOError. A frame announcing more than
/// `max_payload_bytes` fails with InvalidArgument *before* reading the
/// payload — the caller should answer and drop the connection, since the
/// unread bytes make the stream unframeable.
Status ReadFrame(int fd, uint32_t max_payload_bytes, std::string* payload,
                 bool* clean_eof);

/// Writes one frame (size prefix + payload). Suppresses SIGPIPE.
Status WriteFrame(int fd, std::string_view payload);

}  // namespace ksp

#endif  // KSP_SERVICE_PROTOCOL_H_
