#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"
#include "common/timer.h"
#include "core/parallel.h"
#include "rdf/knowledge_base.h"
#include "service/protocol.h"

namespace ksp {

namespace {

ServiceResponse ErrorResponse(const Status& status,
                              uint64_t retry_after_ms = 0) {
  ServiceResponse response;
  response.code = status.code();
  response.message = status.message();
  response.retry_after_ms = retry_after_ms;
  return response;
}

}  // namespace

void KspServer::PendingRequest::Complete(std::string payload) {
  // Notify while still holding the mutex: the owning connection thread
  // destroys this stack-allocated request as soon as Wait() returns, so
  // signalling after unlock races the signal against the destructor.
  // Holding the lock pins the waiter in its mutex re-acquire until the
  // signal call has fully returned.
  std::lock_guard<std::mutex> lock(mu);
  response_payload = std::move(payload);
  done = true;
  cv.notify_one();
}

void KspServer::PendingRequest::Wait() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
}

KspServer::KspServer(const KnowledgeBase* kb, KspOptions db_options,
                     ServerOptions options)
    : kb_(kb),
      db_options_(std::move(db_options)),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {
  server_metrics_.requests = registry_.GetCounter("ksp_server_requests_total");
  server_metrics_.overload_rejections =
      registry_.GetCounter("ksp_server_overload_rejections_total");
  server_metrics_.malformed_rejections =
      registry_.GetCounter("ksp_server_malformed_rejections_total");
  server_metrics_.deadline_exceeded =
      registry_.GetCounter("ksp_server_deadline_exceeded_total");
  server_metrics_.swaps = registry_.GetCounter("ksp_server_swaps_total");
  server_metrics_.queue_depth = registry_.GetGauge("ksp_server_queue_depth");
  server_metrics_.request_ms =
      registry_.GetHistogram("ksp_server_request_ms");
}

KspServer::~KspServer() { Stop(); }

Status KspServer::InstallState(std::shared_ptr<ServingState> state) {
  std::lock_guard<std::mutex> lock(state_mu_);
  state->generation = ++installs_;
  // The one-pointer flip IS the swap: workers snapshot `serving_` per
  // request, in-flight queries keep their generation — for a sharded
  // install, the entire shard ensemble — pinned through the shared_ptr,
  // and the incoming database carries its own (empty) semantic cache —
  // flip and cache invalidation are one atomic step.
  serving_ = std::move(state);
  return Status::OK();
}

Status KspServer::ServeDatabase(std::shared_ptr<KspDatabase> db) {
  if (db == nullptr) {
    return Status::InvalidArgument("ServeDatabase requires a database");
  }
  if (!db->has_rtree()) {
    return Status::InvalidArgument(
        "serving database has no R-tree: prepare or load indexes first");
  }
  auto state = std::make_shared<ServingState>();
  state->db = std::move(db);
  return InstallState(std::move(state));
}

Status KspServer::ServeShardedDatabase(
    std::shared_ptr<ShardedKspDatabase> db) {
  if (db == nullptr) {
    return Status::InvalidArgument(
        "ServeShardedDatabase requires a database");
  }
  KSP_RETURN_NOT_OK(db->storage_backend_status());
  auto state = std::make_shared<ServingState>();
  state->sharded = std::move(db);
  return InstallState(std::move(state));
}

Status KspServer::ServeDirectory(const std::string& directory) {
  // Load off to the side first; the live generation keeps serving and is
  // untouched by a failed load.
  if (IsShardedDirectory(directory)) {
    KSP_ASSIGN_OR_RETURN(
        auto fresh, ShardedKspDatabase::Load(kb_, db_options_, directory));
    return ServeShardedDatabase(std::move(fresh));
  }
  auto fresh = std::make_shared<KspDatabase>(kb_, db_options_);
  KSP_RETURN_NOT_OK(fresh->LoadIndexes(directory));
  KSP_RETURN_NOT_OK(fresh->storage_backend_status());
  return ServeDatabase(std::move(fresh));
}

uint64_t KspServer::serving_generation() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return serving_ != nullptr ? serving_->generation : 0;
}

std::shared_ptr<KspServer::ServingState> KspServer::CurrentState() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return serving_;
}

Status KspServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable listen host: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::IOError(std::string("bind failed: ") +
                                      std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) < 0) {
    const Status st = Status::IOError(std::string("listen failed: ") +
                                      std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void KspServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // 1. Stop accepting: a shutdown unblocks the acceptor's accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Drain the queue: workers answer every admitted request (stopping_
  //    turns them into kUnavailable without executing), which unblocks
  //    the connection threads waiting in PendingRequest::Wait.
  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // 3. Unblock connection reads and join the connection threads (each
  //    closes its own fd on the way out).
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& [id, fd] : live_connections_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) t.join();
  }
  connection_threads_.clear();
}

void KspServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down (or unrecoverable): stop accepting.
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    const uint64_t conn_id = next_conn_id_++;
    live_connections_[conn_id] = fd;
    connection_threads_.emplace_back(
        [this, fd, conn_id] { ConnectionLoop(fd, conn_id); });
  }
}

Status KspServer::ValidateRequest(const ServiceRequest& request) const {
  if (request.type == MessageType::kQuery ||
      request.type == MessageType::kExplain) {
    if (request.query.keywords.size() > options_.max_keywords) {
      return Status::InvalidArgument(
          "query carries " + std::to_string(request.query.keywords.size()) +
          " keywords; the server accepts at most " +
          std::to_string(options_.max_keywords));
    }
  }
  if (request.type == MessageType::kSwap && request.directory.empty()) {
    return Status::InvalidArgument("swap request carries no directory");
  }
  return Status::OK();
}

void KspServer::ConnectionLoop(int fd, uint64_t conn_id) {
  std::string payload;
  for (;;) {
    bool clean_eof = false;
    const Status frame_status =
        ReadFrame(fd, options_.max_frame_bytes, &payload, &clean_eof);
    if (clean_eof) break;
    if (!frame_status.ok()) {
      // An oversized announcement is answerable (the payload was never
      // read, so nothing desynchronized yet) but the connection must
      // drop — the unread bytes make further framing impossible.
      if (frame_status.IsInvalidArgument()) {
        server_metrics_.malformed_rejections->Increment();
        std::string out;
        EncodeResponse(ErrorResponse(frame_status), &out);
        WriteFrame(fd, out);
      }
      break;
    }
    server_metrics_.requests->Increment();
    ServiceRequest request;
    Status status = DecodeRequest(payload, &request);
    if (status.ok()) status = ValidateRequest(request);
    if (!status.ok()) {
      // Fast reject before any executor involvement; the stream is still
      // framed, so the connection survives.
      server_metrics_.malformed_rejections->Increment();
      std::string out;
      EncodeResponse(ErrorResponse(status), &out);
      if (!WriteFrame(fd, out).ok()) break;
      continue;
    }

    std::string out;
    if (request.type == MessageType::kQuery ||
        request.type == MessageType::kExplain) {
      PendingRequest pending;
      pending.request = std::move(request);
      uint64_t deadline_ms = pending.request.query.deadline_ms;
      if (deadline_ms == 0) deadline_ms = options_.default_deadline_ms;
      // Armed at admission: the deadline covers queue wait, so a request
      // that ages out while queued never reaches the engine.
      if (deadline_ms != 0) {
        pending.token.set_deadline_after_ms(
            static_cast<int64_t>(deadline_ms));
      }
      if (!queue_.TryPush(&pending)) {
        server_metrics_.overload_rejections->Increment();
        EncodeResponse(
            ErrorResponse(
                Status::Unavailable(
                    "admission queue full (" +
                    std::to_string(queue_.capacity()) + " requests)"),
                options_.overload_retry_after_ms),
            &out);
      } else {
        server_metrics_.queue_depth->Set(
            static_cast<double>(queue_.size()));
        pending.Wait();
        out = std::move(pending.response_payload);
      }
    } else {
      ServiceResponse response;
      switch (request.type) {
        case MessageType::kHealth:
          response = HandleHealth();
          break;
        case MessageType::kMetrics:
          response = HandleMetrics();
          break;
        default:
          response = HandleSwap(request);
          break;
      }
      EncodeResponse(response, &out);
    }
    if (!WriteFrame(fd, out).ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  live_connections_.erase(conn_id);
}

void KspServer::WorkerLoop() {
  // Per-worker executor, rebuilt when the serving generation changes. The
  // cached shared_ptr pins the old database until the rebuild, and the
  // per-request snapshot pins it for the query's duration.
  std::shared_ptr<ServingState> cached_state;
  std::unique_ptr<QueryExecutor> executor;
  std::unique_ptr<ShardedExecutor> sharded_executor;
  PendingRequest* request = nullptr;
  while (queue_.Pop(&request)) {
    server_metrics_.queue_depth->Set(static_cast<double>(queue_.size()));
    std::string out;
    if (stopping_.load()) {
      EncodeResponse(
          ErrorResponse(Status::Unavailable("server shutting down"),
                        options_.overload_retry_after_ms),
          &out);
      request->Complete(std::move(out));
      continue;
    }
    const std::shared_ptr<ServingState> state = CurrentState();
    if (state == nullptr) {
      EncodeResponse(
          ErrorResponse(Status::Unavailable("no index generation installed"),
                        options_.overload_retry_after_ms),
          &out);
      request->Complete(std::move(out));
      continue;
    }
    if (state != cached_state) {
      executor.reset();
      sharded_executor.reset();
      if (state->sharded != nullptr) {
        sharded_executor =
            std::make_unique<ShardedExecutor>(state->sharded.get());
        sharded_executor->set_metrics(&registry_);
      } else {
        executor = std::make_unique<QueryExecutor>(state->db.get());
        executor->set_metrics(&registry_);
        executor->set_intra_query_threads(options_.intra_query_threads);
      }
      cached_state = state;
    }
    HandleQuery(request, executor.get(), sharded_executor.get(), *state);
  }
}

void KspServer::HandleQuery(PendingRequest* request, QueryExecutor* executor,
                            ShardedExecutor* sharded,
                            const ServingState& state) {
  Timer timer;
  timer.Start();
  ServiceResponse response;
  response.generation = state.generation;
  const QueryRequest& qr = request->request.query;

  // A request whose deadline elapsed in the queue fails here, before any
  // engine work; a trip mid-query unwinds cooperatively below.
  Status status = request->token.Check();
  if (status.ok() && request->request.type == MessageType::kExplain &&
      sharded != nullptr) {
    // Explain reports are single-executor introspection; a sharded
    // report would have to stitch per-shard traces and is not built yet.
    status = Status::Unimplemented(
        "explain is not supported on a sharded serving generation");
  }
  if (status.ok()) {
    Result<KspResult> result = KspResult();
    QueryStats stats;
    if (request->request.type == MessageType::kExplain) {
      const KspQuery query =
          state.db->MakeQuery(qr.location, qr.keywords, qr.k);
      executor->set_cancellation(&request->token);
      Result<ExplainReport> report = executor->Explain(query, qr.algorithm);
      executor->set_cancellation(nullptr);
      if (report.ok()) {
        response.body = report->ToJson();
      } else {
        status = report.status();
      }
    } else if (sharded != nullptr) {
      sharded->set_cancellation(&request->token);
      result = sharded->Execute(qr.algorithm, qr.location, qr.keywords,
                                qr.k, &stats);
      sharded->set_cancellation(nullptr);
    } else {
      const KspQuery query =
          state.db->MakeQuery(qr.location, qr.keywords, qr.k);
      executor->set_cancellation(&request->token);
      result = ExecuteWith(executor, qr.algorithm, query, &stats);
      executor->set_cancellation(nullptr);
    }
    if (request->request.type != MessageType::kExplain) {
      if (result.ok()) {
        response.entries.reserve(result->entries.size());
        for (const KspResultEntry& e : result->entries) {
          WireResultEntry wire;
          wire.place = e.place;
          wire.looseness = e.looseness;
          wire.spatial_distance = e.spatial_distance;
          wire.score = e.score;
          response.entries.push_back(wire);
        }
        response.total_ms = stats.total_ms;
      } else {
        status = result.status();
      }
    }
  }
  if (!status.ok()) {
    if (status.IsInterruption()) {
      server_metrics_.deadline_exceeded->Increment();
    }
    response = ErrorResponse(status);
    response.generation = state.generation;
  }
  server_metrics_.request_ms->Observe(timer.ElapsedMillis());
  std::string out;
  EncodeResponse(response, &out);
  request->Complete(std::move(out));
}

ServiceResponse KspServer::HandleHealth() {
  ServiceResponse response;
  const std::shared_ptr<ServingState> state = CurrentState();
  Status backend = Status::OK();
  uint64_t index_generation = 0;
  uint32_t num_shards = 0;
  if (state != nullptr) {
    if (state->sharded != nullptr) {
      backend = state->sharded->storage_backend_status();
      index_generation = state->sharded->index_generation();
      num_shards = state->sharded->num_shards();
    } else {
      backend = state->db->storage_backend_status();
      index_generation = state->db->index_generation();
    }
  }
  std::string body = "{\"status\": \"";
  if (state == nullptr) {
    body += "no_database";
  } else {
    body += backend.ok() ? "serving" : "degraded";
  }
  body += "\", \"serving_generation\": ";
  body += std::to_string(state != nullptr ? state->generation : 0);
  body += ", \"index_generation\": ";
  body += std::to_string(index_generation);
  body += ", \"num_shards\": " + std::to_string(num_shards);
  body += ", \"storage_backend\": \"";
  body += JsonEscape(backend.ok() ? "ok" : backend.ToString());
  body += "\", \"queue_depth\": " + std::to_string(queue_.size());
  body += ", \"queue_capacity\": " + std::to_string(queue_.capacity());
  body += ", \"workers\": " + std::to_string(options_.num_workers);
  body += "}";
  response.generation = state != nullptr ? state->generation : 0;
  response.body = std::move(body);
  return response;
}

ServiceResponse KspServer::HandleMetrics() {
  ServiceResponse response;
  response.generation = serving_generation();
  response.body = registry_.Snapshot().ToPrometheusText();
  return response;
}

ServiceResponse KspServer::HandleSwap(const ServiceRequest& request) {
  const Status status = ServeDirectory(request.directory);
  if (!status.ok()) return ErrorResponse(status);
  server_metrics_.swaps->Increment();
  ServiceResponse response;
  response.generation = serving_generation();
  return response;
}

}  // namespace ksp
