#ifndef KSP_SERVICE_CLIENT_H_
#define KSP_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/query.h"
#include "service/protocol.h"
#include "spatial/geometry.h"

namespace ksp {

/// Blocking client for the serving tier: one connection, one outstanding
/// request at a time. Call() returns the decoded response whatever its
/// code — application-level rejections (kUnavailable, kDeadlineExceeded,
/// kInvalidArgument, ...) live in ServiceResponse::code; only transport
/// and codec failures surface as a non-OK Result. Not thread-safe; use
/// one client per thread (the load generator does exactly that).
class KspClient {
 public:
  KspClient() = default;
  ~KspClient();

  KspClient(const KspClient&) = delete;
  KspClient& operator=(const KspClient&) = delete;
  KspClient(KspClient&& other) noexcept;
  KspClient& operator=(KspClient&& other) noexcept;

  static Result<KspClient> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  Result<ServiceResponse> Call(const ServiceRequest& request);

  /// ---- Conveniences over Call() ----

  Result<ServiceResponse> Query(KspAlgorithm algorithm,
                                const Point& location,
                                const std::vector<std::string>& keywords,
                                uint32_t k, uint64_t deadline_ms = 0);
  Result<ServiceResponse> Explain(KspAlgorithm algorithm,
                                  const Point& location,
                                  const std::vector<std::string>& keywords,
                                  uint32_t k, uint64_t deadline_ms = 0);
  Result<ServiceResponse> Health();
  Result<ServiceResponse> Metrics();
  Result<ServiceResponse> Swap(const std::string& directory);

 private:
  explicit KspClient(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace ksp

#endif  // KSP_SERVICE_CLIENT_H_
