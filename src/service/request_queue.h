#ifndef KSP_SERVICE_REQUEST_QUEUE_H_
#define KSP_SERVICE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ksp {

/// Bounded MPMC admission queue of the serving tier. Producers never
/// block: TryPush refuses immediately when the queue is at capacity (the
/// caller answers kUnavailable with a retry hint — backpressure is a
/// typed rejection, not an unbounded wait). Consumers block in Pop until
/// an item or Close() arrives; after Close the queue drains — Pop keeps
/// returning queued items so every admitted request gets a response, and
/// returns false only once closed AND empty.
template <typename T>
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(size_t capacity) : capacity_(capacity) {}

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Non-blocking admission; false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item; false once closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ksp

#endif  // KSP_SERVICE_REQUEST_QUEUE_H_
