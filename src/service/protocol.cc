#include "service/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "common/varint.h"

namespace ksp {

namespace {

void PutDouble(std::string* dst, double value) {
  PutFixed64(dst, std::bit_cast<uint64_t>(value));
}

Status GetDouble(std::string_view src, size_t* offset, double* value) {
  uint64_t bits;
  KSP_RETURN_NOT_OK(GetFixed64(src, offset, &bits));
  *value = std::bit_cast<double>(bits);
  return Status::OK();
}

Status GetByte(std::string_view src, size_t* offset, uint8_t* value) {
  if (*offset >= src.size()) {
    return Status::Corruption("truncated service frame");
  }
  *value = static_cast<uint8_t>(src[(*offset)++]);
  return Status::OK();
}

bool IsQueryType(MessageType type) {
  return type == MessageType::kQuery || type == MessageType::kExplain;
}

}  // namespace

void EncodeRequest(const ServiceRequest& request, std::string* out) {
  out->push_back(static_cast<char>(request.type));
  if (IsQueryType(request.type)) {
    out->push_back(static_cast<char>(request.query.algorithm));
    PutVarint64(out, request.query.k);
    PutDouble(out, request.query.location.x);
    PutDouble(out, request.query.location.y);
    PutVarint64(out, request.query.deadline_ms);
    PutVarint64(out, request.query.keywords.size());
    for (const std::string& kw : request.query.keywords) {
      PutLengthPrefixed(out, kw);
    }
  } else if (request.type == MessageType::kSwap) {
    PutLengthPrefixed(out, request.directory);
  }
}

Status DecodeRequest(std::string_view payload, ServiceRequest* request) {
  *request = ServiceRequest();
  size_t offset = 0;
  uint8_t type;
  KSP_RETURN_NOT_OK(GetByte(payload, &offset, &type));
  if (type < static_cast<uint8_t>(MessageType::kQuery) ||
      type > static_cast<uint8_t>(MessageType::kExplain)) {
    return Status::InvalidArgument("unknown service message type " +
                                   std::to_string(type));
  }
  request->type = static_cast<MessageType>(type);
  if (IsQueryType(request->type)) {
    uint8_t algorithm;
    KSP_RETURN_NOT_OK(GetByte(payload, &offset, &algorithm));
    if (algorithm > static_cast<uint8_t>(KspAlgorithm::kKeywordOnly)) {
      return Status::InvalidArgument("unknown algorithm " +
                                     std::to_string(algorithm));
    }
    request->query.algorithm = static_cast<KspAlgorithm>(algorithm);
    uint64_t k;
    KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &k));
    if (k == 0 || k > UINT32_MAX) {
      return Status::InvalidArgument("k must be in [1, 2^32)");
    }
    request->query.k = static_cast<uint32_t>(k);
    KSP_RETURN_NOT_OK(
        GetDouble(payload, &offset, &request->query.location.x));
    KSP_RETURN_NOT_OK(
        GetDouble(payload, &offset, &request->query.location.y));
    KSP_RETURN_NOT_OK(
        GetVarint64(payload, &offset, &request->query.deadline_ms));
    uint64_t num_keywords;
    KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &num_keywords));
    // Belt-and-suspenders against a hostile count: the frame already fits
    // max_payload_bytes, but each keyword costs at least one byte, so the
    // count can never exceed what remains.
    if (num_keywords > payload.size() - offset) {
      return Status::Corruption("keyword count exceeds frame size");
    }
    request->query.keywords.reserve(num_keywords);
    for (uint64_t i = 0; i < num_keywords; ++i) {
      std::string kw;
      KSP_RETURN_NOT_OK(GetLengthPrefixed(payload, &offset, &kw));
      request->query.keywords.push_back(std::move(kw));
    }
  } else if (request->type == MessageType::kSwap) {
    KSP_RETURN_NOT_OK(
        GetLengthPrefixed(payload, &offset, &request->directory));
  }
  if (offset != payload.size()) {
    return Status::Corruption("trailing bytes after service request");
  }
  return Status::OK();
}

void EncodeResponse(const ServiceResponse& response, std::string* out) {
  out->push_back(static_cast<char>(response.code));
  if (response.code != StatusCode::kOk) {
    PutLengthPrefixed(out, response.message);
    PutVarint64(out, response.retry_after_ms);
    return;
  }
  PutVarint64(out, response.generation);
  PutVarint64(out, response.entries.size());
  for (const WireResultEntry& e : response.entries) {
    PutVarint64(out, e.place);
    PutDouble(out, e.looseness);
    PutDouble(out, e.spatial_distance);
    PutDouble(out, e.score);
  }
  PutDouble(out, response.total_ms);
  PutLengthPrefixed(out, response.body);
}

Status DecodeResponse(std::string_view payload, ServiceResponse* response) {
  *response = ServiceResponse();
  size_t offset = 0;
  uint8_t code;
  KSP_RETURN_NOT_OK(GetByte(payload, &offset, &code));
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("unknown status code in service response");
  }
  response->code = static_cast<StatusCode>(code);
  if (response->code != StatusCode::kOk) {
    KSP_RETURN_NOT_OK(
        GetLengthPrefixed(payload, &offset, &response->message));
    KSP_RETURN_NOT_OK(
        GetVarint64(payload, &offset, &response->retry_after_ms));
  } else {
    KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &response->generation));
    uint64_t num_entries;
    KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &num_entries));
    if (num_entries > payload.size() - offset) {
      return Status::Corruption("entry count exceeds frame size");
    }
    response->entries.reserve(num_entries);
    for (uint64_t i = 0; i < num_entries; ++i) {
      WireResultEntry e;
      uint64_t place;
      KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &place));
      e.place = static_cast<PlaceId>(place);
      KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &e.looseness));
      KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &e.spatial_distance));
      KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &e.score));
      response->entries.push_back(e);
    }
    KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &response->total_ms));
    KSP_RETURN_NOT_OK(GetLengthPrefixed(payload, &offset, &response->body));
  }
  if (offset != payload.size()) {
    return Status::Corruption("trailing bytes after service response");
  }
  return Status::OK();
}

namespace {

/// Reads exactly `n` bytes. `*clean_eof` is set only when the connection
/// closes before the first byte.
Status ReadFull(int fd, char* buf, size_t n, bool* clean_eof) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd, buf + done, n - done, 0);
    if (r > 0) {
      done += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (done == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IOError("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, uint32_t max_payload_bytes, std::string* payload,
                 bool* clean_eof) {
  payload->clear();
  if (clean_eof != nullptr) *clean_eof = false;
  char header[kFrameHeaderBytes];
  bool eof = false;
  KSP_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header), &eof));
  if (eof) {
    if (clean_eof != nullptr) *clean_eof = true;
    return Status::OK();
  }
  uint32_t size;
  std::memcpy(&size, header, sizeof(size));
  if (size > max_payload_bytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(size) + " bytes exceeds the " +
        std::to_string(max_payload_bytes) + "-byte limit");
  }
  payload->resize(size);
  if (size == 0) return Status::OK();
  return ReadFull(fd, payload->data(), size, nullptr);
}

Status WriteFrame(int fd, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const uint32_t size = static_cast<uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&size), sizeof(size));
  frame.append(payload);
  size_t done = 0;
  while (done < frame.size()) {
    const ssize_t w =
        ::send(fd, frame.data() + done, frame.size() - done, MSG_NOSIGNAL);
    if (w >= 0) {
      done += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("send failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace ksp
