#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ksp {

namespace {
/// Responses are server-composed; a generous fixed bound keeps a
/// misbehaving server from ballooning client memory.
constexpr uint32_t kMaxResponseBytes = 64u << 20;
}  // namespace

KspClient::~KspClient() { Close(); }

KspClient::KspClient(KspClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

KspClient& KspClient::operator=(KspClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void KspClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<KspClient> KspClient::Connect(const std::string& host,
                                     uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::IOError(std::string("connect failed: ") +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  return KspClient(fd);
}

Result<ServiceResponse> KspClient::Call(const ServiceRequest& request) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  std::string payload;
  EncodeRequest(request, &payload);
  KSP_RETURN_NOT_OK(WriteFrame(fd_, payload));
  bool clean_eof = false;
  KSP_RETURN_NOT_OK(ReadFrame(fd_, kMaxResponseBytes, &payload, &clean_eof));
  if (clean_eof) {
    return Status::IOError("server closed the connection");
  }
  ServiceResponse response;
  KSP_RETURN_NOT_OK(DecodeResponse(payload, &response));
  return response;
}

Result<ServiceResponse> KspClient::Query(
    KspAlgorithm algorithm, const Point& location,
    const std::vector<std::string>& keywords, uint32_t k,
    uint64_t deadline_ms) {
  ServiceRequest request;
  request.type = MessageType::kQuery;
  request.query.algorithm = algorithm;
  request.query.location = location;
  request.query.keywords = keywords;
  request.query.k = k;
  request.query.deadline_ms = deadline_ms;
  return Call(request);
}

Result<ServiceResponse> KspClient::Explain(
    KspAlgorithm algorithm, const Point& location,
    const std::vector<std::string>& keywords, uint32_t k,
    uint64_t deadline_ms) {
  ServiceRequest request;
  request.type = MessageType::kExplain;
  request.query.algorithm = algorithm;
  request.query.location = location;
  request.query.keywords = keywords;
  request.query.k = k;
  request.query.deadline_ms = deadline_ms;
  return Call(request);
}

Result<ServiceResponse> KspClient::Health() {
  ServiceRequest request;
  request.type = MessageType::kHealth;
  return Call(request);
}

Result<ServiceResponse> KspClient::Metrics() {
  ServiceRequest request;
  request.type = MessageType::kMetrics;
  return Call(request);
}

Result<ServiceResponse> KspClient::Swap(const std::string& directory) {
  ServiceRequest request;
  request.type = MessageType::kSwap;
  request.directory = directory;
  return Call(request);
}

}  // namespace ksp
