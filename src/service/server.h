#ifndef KSP_SERVICE_SERVER_H_
#define KSP_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/database.h"
#include "service/protocol.h"
#include "service/request_queue.h"
#include "shard/sharded_database.h"
#include "shard/sharded_executor.h"

namespace ksp {

class KnowledgeBase;
class QueryExecutor;

struct ServerOptions {
  /// TCP listen address. Port 0 binds an ephemeral port (read it back via
  /// port() after Start — the tests and the smoke bench rely on this).
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Query worker threads, each owning one QueryExecutor per serving
  /// generation (rebuilt lazily after a hot swap).
  size_t num_workers = 4;
  /// Admission queue bound; a full queue answers kUnavailable immediately.
  size_t queue_capacity = 64;
  /// Backoff hint stamped into kUnavailable rejections.
  uint64_t overload_retry_after_ms = 25;

  /// Deadline applied to requests that carry none (0 = unlimited).
  uint64_t default_deadline_ms = 0;
  /// Fast-reject bound on request frames, enforced before decoding.
  uint32_t max_frame_bytes = 1 << 20;
  /// Fast-reject bound on per-query keywords (TQSP masks hold 64).
  uint32_t max_keywords = 64;

  /// Intra-query parallelism applied to every worker executor.
  uint32_t intra_query_threads = 1;
};

/// Deadline-aware network front-end over the kSP engine (DESIGN.md §11).
///
/// Threading: one acceptor, one thread per connection (frame parse, fast
/// rejects, inline health/metrics/swap), and a fixed worker pool that
/// drains the bounded admission queue for kQuery/kExplain. A request's
/// CancellationToken is armed at admission, so its deadline covers queue
/// wait; workers poll it cooperatively inside the engine.
///
/// Hot swap: ServeDirectory loads generation N+1 into a fresh KspDatabase
/// while workers keep answering from N, then flips one shared_ptr under a
/// mutex. In-flight queries pin their generation via the shared_ptr (zero
/// dropped or mixed-generation queries); each fresh database starts with
/// a fresh semantic cache, so the flip and the cache invalidation are the
/// same single atomic transition. Responses carry the serving generation
/// that answered.
class KspServer {
 public:
  /// `kb` (and `db_options.inverted_index`, if set) must outlive the
  /// server; every serving database is built over this one KB.
  KspServer(const KnowledgeBase* kb, KspOptions db_options,
            ServerOptions options);
  ~KspServer();

  KspServer(const KspServer&) = delete;
  KspServer& operator=(const KspServer&) = delete;

  /// Installs an already-prepared database (e.g. PrepareAll in-process)
  /// as the next serving generation. Callable before Start and while
  /// serving.
  Status ServeDatabase(std::shared_ptr<KspDatabase> db);

  /// Installs an already-built sharded database as the next serving
  /// generation. One install flips every shard at once: the ensemble
  /// lives behind the same single ServingState pointer as an unsharded
  /// database, so in-flight queries keep their whole shard set pinned
  /// and no query ever observes a mix of shard generations.
  Status ServeShardedDatabase(std::shared_ptr<ShardedKspDatabase> db);

  /// Loads saved indexes from `directory` into a fresh database and
  /// installs it — the hot-swap path (also reachable over the wire via
  /// MessageType::kSwap). A directory carrying a SHARDS manifest loads
  /// as a sharded database (every shard verified to be on one common
  /// generation before anything is served); otherwise as a single
  /// database. On failure the current generation keeps serving
  /// untouched.
  Status ServeDirectory(const std::string& directory);

  /// Binds, listens, and starts the acceptor + worker threads. A server
  /// with no database yet answers queries kUnavailable until one is
  /// installed.
  Status Start();

  /// Drains and joins everything. Queued requests are answered
  /// kUnavailable; in-flight queries finish normally. Idempotent.
  void Stop();

  /// The bound port (after Start).
  uint16_t port() const { return bound_port_; }

  /// Serving install counter: 0 before the first ServeDatabase/-Directory,
  /// then +1 per successful install.
  uint64_t serving_generation() const;

  /// The server's registry (server counters + worker query metrics).
  MetricsRegistry* metrics() { return &registry_; }

 private:
  /// One installed generation — exactly one of `db` / `sharded` is set.
  /// Workers and in-flight requests hold the shared_ptr, so a superseded
  /// database (or whole shard ensemble) dies only after its last query
  /// finishes.
  struct ServingState {
    std::shared_ptr<KspDatabase> db;
    std::shared_ptr<ShardedKspDatabase> sharded;
    uint64_t generation = 0;
  };

  /// One admitted kQuery/kExplain awaiting a worker. The owning
  /// connection thread blocks in Wait(); the worker fills the encoded
  /// response and signals.
  struct PendingRequest {
    ServiceRequest request;
    CancellationToken token;
    std::string response_payload;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;

    void Complete(std::string payload);
    void Wait();
  };

  void AcceptLoop();
  void ConnectionLoop(int fd, uint64_t conn_id);
  void WorkerLoop();

  std::shared_ptr<ServingState> CurrentState() const;
  Status InstallState(std::shared_ptr<ServingState> state);
  /// Exactly one of `executor` / `sharded` is non-null, matching the
  /// serving state the worker cached.
  void HandleQuery(PendingRequest* request, QueryExecutor* executor,
                   ShardedExecutor* sharded, const ServingState& state);
  ServiceResponse HandleHealth();
  ServiceResponse HandleMetrics();
  ServiceResponse HandleSwap(const ServiceRequest& request);
  /// Frame-level validation shared by every request type; OK or the
  /// typed rejection to send back.
  Status ValidateRequest(const ServiceRequest& request) const;

  const KnowledgeBase* kb_;
  const KspOptions db_options_;
  const ServerOptions options_;

  MetricsRegistry registry_;
  struct {
    Counter* requests = nullptr;
    Counter* overload_rejections = nullptr;
    Counter* malformed_rejections = nullptr;
    Counter* deadline_exceeded = nullptr;
    Counter* swaps = nullptr;
    Gauge* queue_depth = nullptr;
    Histogram* request_ms = nullptr;
  } server_metrics_;

  mutable std::mutex state_mu_;
  std::shared_ptr<ServingState> serving_;  // null until first install
  uint64_t installs_ = 0;

  BoundedRequestQueue<PendingRequest*> queue_;

  std::mutex conn_mu_;
  std::map<uint64_t, int> live_connections_;  // conn_id -> fd
  std::vector<std::thread> connection_threads_;
  uint64_t next_conn_id_ = 0;

  std::vector<std::thread> workers_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace ksp

#endif  // KSP_SERVICE_SERVER_H_
