#ifndef KSP_SHARD_REMOTE_H_
#define KSP_SHARD_REMOTE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/executor.h"
#include "core/query.h"
#include "core/semantic_place.h"
#include "core/stats.h"
#include "shard/sharded_database.h"

namespace ksp {

/// The shard boundary of DESIGN.md §12: a narrow request/response message
/// pair plus a transport interface. The scatter-gather executor speaks
/// ONLY this vocabulary to its shards, so moving a shard out of process
/// is a transport swap — implement ShardChannel over a socket using the
/// src/service frame convention (fixed32 length prefix + the payloads
/// encoded below) and nothing above this seam changes.

/// One shard's slice of a scatter-gather query. Keywords travel as
/// strings and are resolved against the vocabulary of whichever index
/// generation answers — the same contract as the serving protocol's
/// QueryRequest, and the property that makes hot swap safe under
/// sharding.
struct ShardQueryRequest {
  KspAlgorithm algorithm = KspAlgorithm::kSp;
  Point location;
  std::vector<std::string> keywords;
  uint32_t k = 1;
  /// Global θ at dispatch time (+inf before the merge heap fills). A
  /// remote shard can only prune against this snapshot; the in-process
  /// transport additionally re-reads the live θ (see ShardChannel).
  double theta_seed = std::numeric_limits<double>::infinity();
};

/// A shard's answer: its local top-k (full result entries, trees
/// included, bit-exact doubles) plus the stats of the shard-local run.
struct ShardQueryResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Index generation that answered (0 for in-process builds).
  uint64_t generation = 0;
  KspResult result;
  QueryStats stats;
};

/// ---- Wire codec (payloads; transports add their own frame header) ----
///
/// Varint ints, length-prefixed strings, fixed64 IEEE-754 doubles —
/// decode(encode(x)) == x bit-for-bit, which the loopback channel (and
/// its test) pin. Decode never trusts a length before bounds-checking it.

void EncodeShardQueryRequest(const ShardQueryRequest& request,
                             std::string* payload);
Status DecodeShardQueryRequest(std::string_view payload,
                               ShardQueryRequest* request);
void EncodeShardQueryResponse(const ShardQueryResponse& response,
                              std::string* payload);
Status DecodeShardQueryResponse(std::string_view payload,
                                ShardQueryResponse* response);

/// Transport seam: one channel per shard. Query() is synchronous and a
/// channel serves one in-flight query at a time (the scatter-gather
/// executor owns its channels; give each thread its own executor, as
/// with QueryExecutor).
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// `live_theta`, when non-null, is the scatter-gather merge's shared
  /// atomic θ; a co-located shard reads it throughout execution (the PR 4
  /// plumbing) for tighter pruning. Transports that cannot share memory
  /// pass the request's theta_seed instead — both are ≥ the final global
  /// θ at all times, so either choice is exact and only prune counts
  /// differ.
  virtual Status Query(const ShardQueryRequest& request,
                       const std::atomic<double>* live_theta,
                       ShardQueryResponse* response) = 0;
};

/// Shard = thread: executes against a shard KspDatabase in this process,
/// reading the live shared θ.
class InProcessShardChannel : public ShardChannel {
 public:
  explicit InProcessShardChannel(const KspDatabase* db);

  Status Query(const ShardQueryRequest& request,
               const std::atomic<double>* live_theta,
               ShardQueryResponse* response) override;

 private:
  const KspDatabase* db_;
  QueryExecutor executor_;
  std::atomic<double> seed_theta_;
};

/// In-process channel that round-trips both messages through the wire
/// codec and drops the live-θ shortcut — exactly what a remote shard
/// would see. Exists to prove, in the equivalence suite, that the codec
/// loses nothing: scatter-gather over loopback channels returns the
/// byte-identical top-k.
class LoopbackShardChannel : public ShardChannel {
 public:
  explicit LoopbackShardChannel(const KspDatabase* db) : inner_(db) {}

  Status Query(const ShardQueryRequest& request,
               const std::atomic<double>* live_theta,
               ShardQueryResponse* response) override;

 private:
  InProcessShardChannel inner_;
};

/// One channel per shard slot of `db` (nullptr for empty tiles).
std::vector<std::unique_ptr<ShardChannel>> MakeInProcessChannels(
    const ShardedKspDatabase& db);
std::vector<std::unique_ptr<ShardChannel>> MakeLoopbackChannels(
    const ShardedKspDatabase& db);

}  // namespace ksp

#endif  // KSP_SHARD_REMOTE_H_
