#ifndef KSP_SHARD_PARTITION_H_
#define KSP_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rdf/knowledge_base.h"
#include "spatial/geometry.h"

namespace ksp {

/// A spatial partition of a KB's places into shard tiles (DESIGN.md §12).
/// Every KB place appears in exactly one tile; tiles may be empty (a
/// fixed shard count over a sparse region). The tile index IS the shard
/// id, so the partition must be identical between the process that saved
/// a sharded directory and the one loading it — StrPartition below is
/// deterministic for that reason, and ShardedKspDatabase persists the
/// tile lists alongside the shard directories.
struct ShardPartition {
  std::vector<std::vector<PlaceId>> tiles;

  uint32_t num_tiles() const { return static_cast<uint32_t>(tiles.size()); }
};

/// MBR of one tile's place locations (Rect::Empty() for an empty tile).
/// MinDist(q, mbr) lower-bounds S(q, p) for every place p of the tile —
/// the bound the scatter-gather shard pruning rests on.
Rect TileMbr(const KnowledgeBase& kb, const std::vector<PlaceId>& tile);

/// Sort-Tile-Recursive partitioning into exactly `num_tiles` tiles:
/// places are sorted by x into ⌈√num_tiles⌉ vertical slices of near-equal
/// population, then each slice is sorted by y and cut into its share of
/// tiles. Deterministic (ties broken by place id) and total — every place
/// lands in exactly one tile; trailing tiles are empty when there are
/// fewer places than tiles. num_tiles == 0 is treated as 1.
ShardPartition StrPartition(const KnowledgeBase& kb, uint32_t num_tiles);

/// Validates an arbitrary partition against a KB: every place id in
/// range, no duplicates across tiles, and the union covering all places.
/// Used by ShardedKspDatabase::Build on caller-supplied partitions (the
/// randomized property suite feeds deliberately weird ones).
Status ValidatePartition(const KnowledgeBase& kb,
                         const ShardPartition& partition);

}  // namespace ksp

#endif  // KSP_SHARD_PARTITION_H_
