#ifndef KSP_SHARD_SHARDED_DATABASE_H_
#define KSP_SHARD_SHARDED_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/result.h"
#include "core/database.h"
#include "shard/partition.h"

namespace ksp {

/// A spatially-sharded KspDatabase (DESIGN.md §12): one independent
/// KspDatabase per non-empty partition tile, each built over the shared
/// KnowledgeBase with KspOptions::place_subset restricted to its tile.
/// Shard-local indexes (R-tree, α) cover only the tile; the
/// keyword-reachability oracle is vertex-keyed and therefore built once
/// and adopted by every shard. The whole ensemble is immutable once
/// built/loaded and safe to share across threads, exactly like a single
/// KspDatabase.
///
/// Persistence reuses the per-database generation machinery: shard i
/// saves into `<dir>/shard-00000i/` via KspDatabase::SaveIndexes, always
/// in ascending shard order with a generation floor carried forward, so
/// an interrupted save leaves a generation-aligned PREFIX updated and
/// shard 0 always carries the directory's maximum generation; Load
/// refuses any directory whose shards disagree on generation (a torn
/// save can therefore never serve a mixed index set). The SHARDS
/// manifest (partition tile lists) is written last on the first save.
class ShardedKspDatabase {
 public:
  /// Builds every shard in-process: reachability once (when
  /// base.use_unqualified_pruning), then per non-empty tile an R-tree
  /// and, when alpha > 0, an α-index over it. Empty tiles get a null
  /// shard slot. Fails on an invalid partition.
  static Result<std::unique_ptr<ShardedKspDatabase>> Build(
      const KnowledgeBase* kb, const KspOptions& base,
      const ShardPartition& partition, uint32_t alpha);

  /// Restores a sharded directory previously written by Save: reads the
  /// SHARDS manifest, rebuilds the shard skeletons with the persisted
  /// partition, loads each shard's indexes on the options' backend, and
  /// verifies every shard landed on one common generation — mixed
  /// generations (torn save, tampering) are Corruption and nothing is
  /// served. Each shard directory carries its own copy of the
  /// (vertex-keyed, shard-invariant) reachability labels; after loading,
  /// the first copy is adopted by every other shard so memory holds one.
  static Result<std::unique_ptr<ShardedKspDatabase>> Load(
      const KnowledgeBase* kb, const KspOptions& base,
      const std::string& directory, FileSystem* fs = nullptr);

  /// Saves every non-empty shard (ascending shard order, aligned
  /// generation — see class comment), then the SHARDS manifest.
  Status Save(const std::string& directory, FileSystem* fs = nullptr) const;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// Null for an empty tile.
  const KspDatabase* shard(uint32_t i) const { return shards_[i].get(); }
  const std::vector<PlaceId>& shard_places(uint32_t i) const {
    return partition_.tiles[i];
  }
  /// MBR of the shard's place locations; Rect::Empty() for empty tiles.
  const Rect& shard_mbr(uint32_t i) const { return mbrs_[i]; }

  const KnowledgeBase& kb() const { return *kb_; }
  const ShardPartition& partition() const { return partition_; }
  /// The base options every shard was configured from (place_subset
  /// empty — each shard holds its own tile-restricted copy).
  const KspOptions& options() const { return base_options_; }
  /// The common shard generation: LoadIndexes' manifest generation after
  /// Load, 0 for in-process builds.
  uint64_t index_generation() const { return index_generation_; }

  /// First failed shard backend status, OK otherwise (mirrors
  /// KspDatabase::storage_backend_status for the serving tier).
  Status storage_backend_status() const;

  /// Resolves keyword strings against the shared KB vocabulary (same
  /// contract as KspDatabase::MakeQuery).
  KspQuery MakeQuery(const Point& location,
                     const std::vector<std::string>& keywords,
                     uint32_t k) const;

 private:
  ShardedKspDatabase() = default;

  /// Shared skeleton of Build/Load: validates the partition and creates
  /// the per-tile KspDatabase shells (place_subset set, nothing built).
  static Result<std::unique_ptr<ShardedKspDatabase>> MakeShells(
      const KnowledgeBase* kb, const KspOptions& base,
      ShardPartition partition);

  const KnowledgeBase* kb_ = nullptr;
  KspOptions base_options_;
  ShardPartition partition_;
  std::vector<Rect> mbrs_;
  std::vector<std::unique_ptr<KspDatabase>> shards_;
  uint64_t index_generation_ = 0;
};

/// True iff `directory` holds a sharded database (a SHARDS manifest).
/// The serving tier uses this to route ServeDirectory between the single
/// and sharded load paths.
bool IsShardedDirectory(const std::string& directory,
                        FileSystem* fs = nullptr);

}  // namespace ksp

#endif  // KSP_SHARD_SHARDED_DATABASE_H_
