#include "shard/sharded_executor.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "core/executor.h"

namespace ksp {

ShardedExecutor::ShardedExecutor(const ShardedKspDatabase* db)
    : ShardedExecutor(db, MakeInProcessChannels(*db)) {}

ShardedExecutor::ShardedExecutor(
    const ShardedKspDatabase* db,
    std::vector<std::unique_ptr<ShardChannel>> channels)
    : db_(db), channels_(std::move(channels)) {
  KSP_CHECK(db_ != nullptr);
  KSP_CHECK(channels_.size() == db_->num_shards());
}

void ShardedExecutor::set_metrics(MetricsRegistry* registry) {
  metrics_ = MetricsHandles();
  metrics_.registry = registry;
  if (registry == nullptr) return;
  metrics_.queries = registry->GetCounter("ksp_shard_queries_total");
  metrics_.shards_visited =
      registry->GetCounter("ksp_shard_shards_visited_total");
  metrics_.shards_pruned =
      registry->GetCounter("ksp_shard_shards_pruned_total");
  metrics_.latency_ms =
      registry->GetHistogram("ksp_shard_query_latency_ms");
}

Result<KspResult> ShardedExecutor::Execute(KspAlgorithm algorithm,
                                           const KspQuery& query,
                                           QueryStats* stats) {
  // The shard boundary speaks keyword strings; TermIds map back through
  // the (bijective) vocabulary. An unresolvable keyword makes the query
  // unanswerable on every shard — the empty result, exactly as the
  // unsharded executor reports it.
  const Vocabulary& vocabulary = db_->kb().vocabulary();
  std::vector<std::string> keywords;
  keywords.reserve(query.keywords.size());
  bool answerable = true;
  for (TermId t : query.keywords) {
    if (t >= vocabulary.size()) {
      answerable = false;
      break;
    }
    keywords.push_back(vocabulary.Term(t));
  }
  if (!answerable) {
    QueryStats local_stats;
    QueryStats* st = stats != nullptr ? stats : &local_stats;
    *st = QueryStats();
    if (metrics_.registry != nullptr) {
      metrics_.queries->Increment();
      metrics_.latency_ms->Observe(0.0);
    }
    return KspResult();
  }
  return ExecuteScatterGather(algorithm, query.location, keywords, query.k,
                              stats);
}

Result<KspResult> ShardedExecutor::Execute(
    KspAlgorithm algorithm, const Point& location,
    const std::vector<std::string>& keywords, uint32_t k,
    QueryStats* stats) {
  return ExecuteScatterGather(algorithm, location, keywords, k, stats);
}

Result<KspResult> ShardedExecutor::ExecuteScatterGather(
    KspAlgorithm algorithm, const Point& location,
    const std::vector<std::string>& keywords, uint32_t k,
    QueryStats* stats) {
  Timer total_timer;
  total_timer.Start();
  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  *st = QueryStats();
  QueryTrace* trace = trace_;
  if (trace != nullptr) trace->Clear();

  // Visit order: ascending (mindist to the shard MBR, shard id). The
  // tiebreak keeps the order — and hence the prune counts — fully
  // deterministic.
  struct Visit {
    double mindist;
    uint32_t shard;
  };
  std::vector<Visit> order;
  order.reserve(db_->num_shards());
  for (uint32_t i = 0; i < db_->num_shards(); ++i) {
    if (channels_[i] == nullptr) continue;  // Empty tile.
    order.push_back(Visit{MinDist(location, db_->shard_mbr(i)), i});
  }
  std::sort(order.begin(), order.end(), [](const Visit& a, const Visit& b) {
    if (a.mindist != b.mindist) return a.mindist < b.mindist;
    return a.shard < b.shard;
  });

  const RankingFunction& ranking = db_->options().ranking;
  TopKHeap heap(k);
  // The shared global θ of §12: seeded from the (empty) merge heap,
  // re-published after every shard merge; co-located shards re-read it
  // live, remote ones get the dispatch-time snapshot.
  std::atomic<double> theta{heap.Threshold()};

  ShardQueryRequest request;
  request.algorithm = algorithm;
  request.location = location;
  request.keywords = keywords;
  request.k = k;

  uint64_t generation = 0;
  bool generation_seen = false;
  Status interrupted = Status::OK();
  for (size_t v = 0; v < order.size(); ++v) {
    // Shard-level Rule 2: MinDist lower-bounds S(q,p) for every place of
    // the shard, so MinScore(mindist) lower-bounds f. Once it reaches θ
    // this shard — and by mindist order every later one — cannot
    // contribute, mirroring the algorithms' own `>=` prune boundary.
    const double bound = ranking.MinScoreGivenSpatialDistance(
        order[v].mindist);
    if (bound >= theta.load(std::memory_order_acquire)) {
      st->shards_pruned += order.size() - v;
      break;
    }
    if (cancel_ != nullptr) {
      interrupted = cancel_->Check();
      if (!interrupted.ok()) break;
    }

    request.theta_seed = theta.load(std::memory_order_acquire);
    ShardQueryResponse response;
    {
      TraceSpan span(trace, TracePhase::kShardDispatch);
      KSP_RETURN_NOT_OK(
          channels_[order[v].shard]->Query(request, &theta, &response));
      span.AddItems(response.result.entries.size());
    }
    if (response.code != StatusCode::kOk) {
      return Status(response.code, response.message);
    }
    // One query must be answered by one index generation across every
    // shard; a mix would merge rankings over different indexes.
    if (!generation_seen) {
      generation = response.generation;
      generation_seen = true;
    } else if (response.generation != generation) {
      return Status::Internal(
          "shard responses mix index generations " +
          std::to_string(generation) + " and " +
          std::to_string(response.generation));
    }

    ++st->shards_visited;
    st->Accumulate(response.stats);
    for (KspResultEntry& entry : response.result.entries) {
      heap.Add(std::move(entry));
    }
    theta.store(heap.Threshold(), std::memory_order_release);
  }

  // Accumulate summed the per-shard wall clocks; the query's total is
  // the scatter-gather wall time.
  st->total_ms = total_timer.ElapsedMillis();
  if (metrics_.registry != nullptr) {
    metrics_.queries->Increment();
    metrics_.shards_visited->Increment(st->shards_visited);
    metrics_.shards_pruned->Increment(st->shards_pruned);
    metrics_.latency_ms->Observe(st->total_ms);
  }
  if (!interrupted.ok()) {
    st->completed = false;
    return interrupted;
  }
  return std::move(heap).Finish();
}

}  // namespace ksp
