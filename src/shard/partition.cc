#include "shard/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ksp {

Rect TileMbr(const KnowledgeBase& kb, const std::vector<PlaceId>& tile) {
  Rect mbr = Rect::Empty();
  for (PlaceId p : tile) mbr.ExpandToInclude(kb.place_location(p));
  return mbr;
}

ShardPartition StrPartition(const KnowledgeBase& kb, uint32_t num_tiles) {
  if (num_tiles == 0) num_tiles = 1;
  const uint32_t num_places = kb.num_places();

  std::vector<PlaceId> order(num_places);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PlaceId a, PlaceId b) {
    const Point pa = kb.place_location(a);
    const Point pb = kb.place_location(b);
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;
  });

  // ⌈√K⌉ vertical slices; slice s owns base + (s < extra) tiles so the
  // tile counts sum to exactly K.
  const uint32_t num_slices = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(num_tiles))));
  const uint32_t base_tiles = num_tiles / num_slices;
  const uint32_t extra_tiles = num_tiles % num_slices;

  ShardPartition partition;
  partition.tiles.reserve(num_tiles);
  size_t slice_begin = 0;
  for (uint32_t s = 0; s < num_slices; ++s) {
    // Near-equal population per slice (remainder spread over the first
    // slices), matching the classic STR slice cut.
    const size_t slice_count =
        num_places / num_slices + (s < num_places % num_slices ? 1 : 0);
    const size_t slice_end = slice_begin + slice_count;
    std::vector<PlaceId> slice(order.begin() + slice_begin,
                               order.begin() + slice_end);
    std::sort(slice.begin(), slice.end(), [&](PlaceId a, PlaceId b) {
      const Point pa = kb.place_location(a);
      const Point pb = kb.place_location(b);
      if (pa.y != pb.y) return pa.y < pb.y;
      if (pa.x != pb.x) return pa.x < pb.x;
      return a < b;
    });

    const uint32_t slice_tiles = base_tiles + (s < extra_tiles ? 1 : 0);
    size_t tile_begin = 0;
    for (uint32_t t = 0; t < slice_tiles; ++t) {
      const size_t tile_count =
          slice.size() / slice_tiles +
          (t < slice.size() % slice_tiles ? 1 : 0);
      partition.tiles.emplace_back(slice.begin() + tile_begin,
                                   slice.begin() + tile_begin + tile_count);
      tile_begin += tile_count;
    }
    slice_begin = slice_end;
  }
  return partition;
}

Status ValidatePartition(const KnowledgeBase& kb,
                         const ShardPartition& partition) {
  if (partition.tiles.empty()) {
    return Status::InvalidArgument("partition has no tiles");
  }
  const uint32_t num_places = kb.num_places();
  std::vector<bool> seen(num_places, false);
  uint64_t covered = 0;
  for (const std::vector<PlaceId>& tile : partition.tiles) {
    for (PlaceId p : tile) {
      if (p >= num_places) {
        return Status::InvalidArgument(
            "partition references place " + std::to_string(p) +
            " beyond the KB's " + std::to_string(num_places) + " places");
      }
      if (seen[p]) {
        return Status::InvalidArgument(
            "place " + std::to_string(p) + " appears in two tiles");
      }
      seen[p] = true;
      ++covered;
    }
  }
  if (covered != num_places) {
    return Status::InvalidArgument(
        "partition covers " + std::to_string(covered) + " of " +
        std::to_string(num_places) + " places");
  }
  return Status::OK();
}

}  // namespace ksp
