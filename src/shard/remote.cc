#include "shard/remote.h"

#include <bit>
#include <limits>
#include <utility>

#include "common/varint.h"
#include "core/parallel.h"

namespace ksp {

namespace {

void PutDouble(std::string* dst, double value) {
  PutFixed64(dst, std::bit_cast<uint64_t>(value));
}

Status GetDouble(std::string_view src, size_t* offset, double* value) {
  uint64_t bits;
  KSP_RETURN_NOT_OK(GetFixed64(src, offset, &bits));
  *value = std::bit_cast<double>(bits);
  return Status::OK();
}

/// Bounds a decoded element count: each element needs at least one more
/// payload byte, so a count beyond the remaining bytes is corruption
/// (and must not drive a huge reserve).
Status CheckCount(uint64_t count, std::string_view src, size_t offset) {
  if (count > src.size() - offset) {
    return Status::Corruption("element count exceeds payload size");
  }
  return Status::OK();
}

void PutTree(std::string* dst, const SemanticPlaceTree& tree) {
  PutVarint64(dst, tree.place);
  PutVarint64(dst, tree.root);
  PutDouble(dst, tree.looseness);
  PutVarint64(dst, tree.matches.size());
  for (const SemanticPlaceTree::KeywordMatch& m : tree.matches) {
    PutVarint64(dst, m.term);
    PutVarint64(dst, m.vertex);
    PutVarint64(dst, m.distance);
    PutVarint64(dst, m.path.size());
    for (VertexId v : m.path) PutVarint64(dst, v);
  }
}

Status GetTree(std::string_view src, size_t* offset,
               SemanticPlaceTree* tree) {
  uint64_t value = 0;
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &value));
  tree->place = static_cast<PlaceId>(value);
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &value));
  tree->root = static_cast<VertexId>(value);
  KSP_RETURN_NOT_OK(GetDouble(src, offset, &tree->looseness));
  uint64_t num_matches = 0;
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &num_matches));
  KSP_RETURN_NOT_OK(CheckCount(num_matches, src, *offset));
  tree->matches.resize(num_matches);
  for (SemanticPlaceTree::KeywordMatch& m : tree->matches) {
    KSP_RETURN_NOT_OK(GetVarint64(src, offset, &value));
    m.term = static_cast<TermId>(value);
    KSP_RETURN_NOT_OK(GetVarint64(src, offset, &value));
    m.vertex = static_cast<VertexId>(value);
    KSP_RETURN_NOT_OK(GetVarint64(src, offset, &value));
    m.distance = static_cast<uint32_t>(value);
    uint64_t path_len = 0;
    KSP_RETURN_NOT_OK(GetVarint64(src, offset, &path_len));
    KSP_RETURN_NOT_OK(CheckCount(path_len, src, *offset));
    m.path.resize(path_len);
    for (VertexId& v : m.path) {
      KSP_RETURN_NOT_OK(GetVarint64(src, offset, &value));
      v = static_cast<VertexId>(value);
    }
  }
  return Status::OK();
}

void PutStats(std::string* dst, const QueryStats& stats) {
  PutDouble(dst, stats.total_ms);
  PutDouble(dst, stats.semantic_ms);
  PutVarint64(dst, stats.tqsp_computations);
  PutVarint64(dst, stats.rtree_nodes_accessed);
  PutVarint64(dst, stats.vertices_visited);
  PutVarint64(dst, stats.reachability_queries);
  PutVarint64(dst, stats.pruned_unqualified);
  PutVarint64(dst, stats.pruned_dynamic_bound);
  PutVarint64(dst, stats.pruned_alpha_place);
  PutVarint64(dst, stats.pruned_alpha_node);
  PutVarint64(dst, stats.speculative_wasted_tqsp);
  PutVarint64(dst, stats.dg_cache_hits);
  PutVarint64(dst, stats.dg_cache_misses);
  PutVarint64(dst, stats.result_cache_hits);
  PutVarint64(dst, stats.result_cache_misses);
  PutVarint64(dst, stats.cache_evictions);
  PutVarint64(dst, stats.bufferpool_hits);
  PutVarint64(dst, stats.bufferpool_misses);
  PutVarint64(dst, stats.bufferpool_evictions);
  PutVarint64(dst, stats.shards_visited);
  PutVarint64(dst, stats.shards_pruned);
  PutVarint64(dst, stats.completed ? 1 : 0);
}

Status GetStats(std::string_view src, size_t* offset, QueryStats* stats) {
  KSP_RETURN_NOT_OK(GetDouble(src, offset, &stats->total_ms));
  KSP_RETURN_NOT_OK(GetDouble(src, offset, &stats->semantic_ms));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->tqsp_computations));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->rtree_nodes_accessed));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->vertices_visited));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->reachability_queries));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->pruned_unqualified));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->pruned_dynamic_bound));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->pruned_alpha_place));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->pruned_alpha_node));
  KSP_RETURN_NOT_OK(
      GetVarint64(src, offset, &stats->speculative_wasted_tqsp));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->dg_cache_hits));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->dg_cache_misses));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->result_cache_hits));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->result_cache_misses));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->cache_evictions));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->bufferpool_hits));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->bufferpool_misses));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->bufferpool_evictions));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->shards_visited));
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &stats->shards_pruned));
  uint64_t completed = 0;
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &completed));
  stats->completed = completed != 0;
  return Status::OK();
}

}  // namespace

void EncodeShardQueryRequest(const ShardQueryRequest& request,
                             std::string* payload) {
  payload->clear();
  PutVarint64(payload, static_cast<uint64_t>(request.algorithm));
  PutDouble(payload, request.location.x);
  PutDouble(payload, request.location.y);
  PutVarint64(payload, request.k);
  PutVarint64(payload, request.keywords.size());
  for (const std::string& kw : request.keywords) {
    PutLengthPrefixed(payload, kw);
  }
  PutDouble(payload, request.theta_seed);
}

Status DecodeShardQueryRequest(std::string_view payload,
                               ShardQueryRequest* request) {
  *request = ShardQueryRequest();
  size_t offset = 0;
  uint64_t value = 0;
  KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &value));
  if (value > static_cast<uint64_t>(KspAlgorithm::kKeywordOnly)) {
    return Status::Corruption("unknown shard query algorithm");
  }
  request->algorithm = static_cast<KspAlgorithm>(value);
  KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &request->location.x));
  KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &request->location.y));
  KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &value));
  request->k = static_cast<uint32_t>(value);
  uint64_t num_keywords = 0;
  KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &num_keywords));
  KSP_RETURN_NOT_OK(CheckCount(num_keywords, payload, offset));
  request->keywords.resize(num_keywords);
  for (std::string& kw : request->keywords) {
    KSP_RETURN_NOT_OK(GetLengthPrefixed(payload, &offset, &kw));
  }
  KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &request->theta_seed));
  if (offset != payload.size()) {
    return Status::Corruption("trailing bytes in shard query request");
  }
  return Status::OK();
}

void EncodeShardQueryResponse(const ShardQueryResponse& response,
                              std::string* payload) {
  payload->clear();
  PutVarint64(payload, static_cast<uint64_t>(response.code));
  PutLengthPrefixed(payload, response.message);
  PutVarint64(payload, response.generation);
  PutVarint64(payload, response.result.entries.size());
  for (const KspResultEntry& entry : response.result.entries) {
    PutVarint64(payload, entry.place);
    PutDouble(payload, entry.score);
    PutDouble(payload, entry.looseness);
    PutDouble(payload, entry.spatial_distance);
    PutTree(payload, entry.tree);
  }
  PutStats(payload, response.stats);
}

Status DecodeShardQueryResponse(std::string_view payload,
                                ShardQueryResponse* response) {
  *response = ShardQueryResponse();
  size_t offset = 0;
  uint64_t value = 0;
  KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &value));
  if (value > static_cast<uint64_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("unknown shard response status code");
  }
  response->code = static_cast<StatusCode>(value);
  KSP_RETURN_NOT_OK(
      GetLengthPrefixed(payload, &offset, &response->message));
  KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &response->generation));
  uint64_t num_entries = 0;
  KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &num_entries));
  KSP_RETURN_NOT_OK(CheckCount(num_entries, payload, offset));
  response->result.entries.resize(num_entries);
  for (KspResultEntry& entry : response->result.entries) {
    KSP_RETURN_NOT_OK(GetVarint64(payload, &offset, &value));
    entry.place = static_cast<PlaceId>(value);
    KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &entry.score));
    KSP_RETURN_NOT_OK(GetDouble(payload, &offset, &entry.looseness));
    KSP_RETURN_NOT_OK(
        GetDouble(payload, &offset, &entry.spatial_distance));
    KSP_RETURN_NOT_OK(GetTree(payload, &offset, &entry.tree));
  }
  KSP_RETURN_NOT_OK(GetStats(payload, &offset, &response->stats));
  if (offset != payload.size()) {
    return Status::Corruption("trailing bytes in shard query response");
  }
  return Status::OK();
}

InProcessShardChannel::InProcessShardChannel(const KspDatabase* db)
    : db_(db),
      executor_(db),
      seed_theta_(std::numeric_limits<double>::infinity()) {}

Status InProcessShardChannel::Query(const ShardQueryRequest& request,
                                    const std::atomic<double>* live_theta,
                                    ShardQueryResponse* response) {
  *response = ShardQueryResponse();
  response->generation = db_->index_generation();

  // Keyword strings resolve against THIS shard's generation, mirroring
  // the serving protocol. No live θ (remote-style transport): fall back
  // to the dispatch-time snapshot, still a valid upper bound on final θ.
  const KspQuery query =
      db_->MakeQuery(request.location, request.keywords, request.k);
  if (live_theta == nullptr) {
    seed_theta_.store(request.theta_seed, std::memory_order_relaxed);
    live_theta = &seed_theta_;
  }
  executor_.set_shared_theta(live_theta);
  QueryStats stats;
  Result<KspResult> result =
      ExecuteWith(&executor_, request.algorithm, query, &stats);
  executor_.set_shared_theta(nullptr);
  response->stats = stats;
  if (!result.ok()) {
    // An application-level failure is part of the response, not a
    // transport error — exactly what a remote shard would send back.
    response->code = result.status().code();
    response->message = std::string(result.status().message());
    return Status::OK();
  }
  response->result = std::move(*result);
  return Status::OK();
}

Status LoopbackShardChannel::Query(const ShardQueryRequest& request,
                                   const std::atomic<double>* live_theta,
                                   ShardQueryResponse* response) {
  (void)live_theta;  // A remote shard cannot share the live atomic.
  std::string request_payload;
  EncodeShardQueryRequest(request, &request_payload);
  ShardQueryRequest decoded_request;
  KSP_RETURN_NOT_OK(
      DecodeShardQueryRequest(request_payload, &decoded_request));

  ShardQueryResponse inner_response;
  KSP_RETURN_NOT_OK(
      inner_.Query(decoded_request, /*live_theta=*/nullptr,
                   &inner_response));

  std::string response_payload;
  EncodeShardQueryResponse(inner_response, &response_payload);
  return DecodeShardQueryResponse(response_payload, response);
}

std::vector<std::unique_ptr<ShardChannel>> MakeInProcessChannels(
    const ShardedKspDatabase& db) {
  std::vector<std::unique_ptr<ShardChannel>> channels(db.num_shards());
  for (uint32_t i = 0; i < db.num_shards(); ++i) {
    if (db.shard(i) != nullptr) {
      channels[i] = std::make_unique<InProcessShardChannel>(db.shard(i));
    }
  }
  return channels;
}

std::vector<std::unique_ptr<ShardChannel>> MakeLoopbackChannels(
    const ShardedKspDatabase& db) {
  std::vector<std::unique_ptr<ShardChannel>> channels(db.num_shards());
  for (uint32_t i = 0; i < db.num_shards(); ++i) {
    if (db.shard(i) != nullptr) {
      channels[i] = std::make_unique<LoopbackShardChannel>(db.shard(i));
    }
  }
  return channels;
}

}  // namespace ksp
