#ifndef KSP_SHARD_SHARDED_EXECUTOR_H_
#define KSP_SHARD_SHARDED_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/query.h"
#include "core/stats.h"
#include "core/trace.h"
#include "shard/remote.h"
#include "shard/sharded_database.h"

namespace ksp {

/// Exact scatter-gather top-k over a ShardedKspDatabase (DESIGN.md §12).
///
/// Shards are visited in ascending MinDist(q, shard MBR) order. A global
/// TopKHeap merges shard-local top-ks; its threshold is published to a
/// shared atomic θ that (a) co-located shards re-read during execution
/// via QueryExecutor::set_shared_theta, and (b) gates whole shards: when
/// ranking.MinScoreGivenSpatialDistance(mindist) ≥ θ, that shard — and,
/// by mindist order and the bound's monotonicity, every later shard — is
/// skipped entirely. This is the paper's Rule 2 lifted one level: the
/// shard MBR lower-bounds S(q,p), hence f(q,p), for every place inside.
///
/// Exactness: every merged entry comes from exactly one shard, shard
/// θ_eff is always ≥ the final global θ (both heap threshold and shared
/// θ decrease monotonically), so a place missing from a shard's local
/// top-k has f ≥ θ_eff ≥ θ_final and cannot belong to the global top-k;
/// ties break on (score, place) exactly as TopKHeap does unsharded. The
/// shard-equivalence suite pins byte-identical results at every shard
/// count, on both backends, against the 210-query oracle workload.
///
/// Not thread-safe (owns per-shard channels with executor scratch): one
/// ShardedExecutor per thread, like QueryExecutor.
class ShardedExecutor {
 public:
  /// In-process execution (shard = thread-local subquery).
  explicit ShardedExecutor(const ShardedKspDatabase* db);
  /// Custom transports: one channel per shard slot, null for empty
  /// tiles (see MakeInProcessChannels / MakeLoopbackChannels).
  ShardedExecutor(const ShardedKspDatabase* db,
                  std::vector<std::unique_ptr<ShardChannel>> channels);

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  const ShardedKspDatabase& db() const { return *db_; }

  /// Per-query trace sink: shard visits appear as `shard_dispatch`
  /// spans (items = entries returned). Same contract as
  /// QueryExecutor::set_trace.
  void set_trace(QueryTrace* trace) { trace_ = trace; }

  /// ksp_shard_* metrics: queries, shards visited/pruned, latency.
  void set_metrics(MetricsRegistry* registry);

  /// Deadline/cancel polled at shard-dispatch boundaries (coarser than
  /// the per-candidate polling inside a single executor, but a shard
  /// visit is the unit of work here). Same contract as
  /// QueryExecutor::set_cancellation.
  void set_cancellation(CancellationToken* token) { cancel_ = token; }

  /// Scatter-gather evaluation. The TermId overload requires ids from
  /// this KB's vocabulary (kInvalidTerm ⇒ the empty result, exactly as
  /// unsharded); the string overload resolves per shard generation, the
  /// serving-tier contract.
  Result<KspResult> Execute(KspAlgorithm algorithm, const KspQuery& query,
                            QueryStats* stats = nullptr);
  Result<KspResult> Execute(KspAlgorithm algorithm, const Point& location,
                            const std::vector<std::string>& keywords,
                            uint32_t k, QueryStats* stats = nullptr);

 private:
  struct MetricsHandles {
    MetricsRegistry* registry = nullptr;
    Counter* queries = nullptr;
    Counter* shards_visited = nullptr;
    Counter* shards_pruned = nullptr;
    Histogram* latency_ms = nullptr;
  };

  Result<KspResult> ExecuteScatterGather(
      KspAlgorithm algorithm, const Point& location,
      const std::vector<std::string>& keywords, uint32_t k,
      QueryStats* stats);

  const ShardedKspDatabase* db_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  QueryTrace* trace_ = nullptr;
  CancellationToken* cancel_ = nullptr;
  MetricsHandles metrics_;
};

}  // namespace ksp

#endif  // KSP_SHARD_SHARDED_EXECUTOR_H_
