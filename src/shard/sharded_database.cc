#include "shard/sharded_database.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/io_util.h"
#include "common/varint.h"

namespace ksp {

namespace {

constexpr uint32_t kShardsMagic = 0x4B535348u;  // "KSSH"
constexpr uint32_t kShardsVersion = 1;
constexpr char kShardsName[] = "SHARDS";

std::string ShardDirName(uint32_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%06u", shard);
  return buf;
}

Status WriteShardsManifest(FileSystem* fs, const std::string& path,
                           const ShardPartition& partition) {
  return WriteArtifactAtomically(
      fs, path, kShardsMagic, kShardsVersion,
      [&partition](ChecksummedWriter* w) {
        std::string body;
        PutVarint64(&body, partition.tiles.size());
        for (const std::vector<PlaceId>& tile : partition.tiles) {
          PutVarint64(&body, tile.size());
          // Tiles are sorted place-id lists (KspOptions::place_subset
          // canonicalization), so deltas stay small under varint.
          PlaceId previous = 0;
          for (PlaceId p : tile) {
            PutVarint64(&body, p - previous);
            previous = p;
          }
        }
        return w->WriteSection(body);
      });
}

Result<ShardPartition> ReadShardsManifest(FileSystem* fs,
                                          const std::string& path) {
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  KSP_RETURN_NOT_OK(reader.Open(kShardsMagic, &version));
  if (version != kShardsVersion) {
    return CorruptionAt(path, 4, "unsupported SHARDS version " +
                                     std::to_string(version));
  }
  std::string body;
  const uint64_t body_offset = reader.offset();
  KSP_RETURN_NOT_OK(reader.ReadSection(&body));
  KSP_RETURN_NOT_OK(reader.ExpectEnd());

  ShardPartition partition;
  size_t pos = 0;
  auto parse = [&]() -> Status {
    uint64_t num_tiles = 0;
    KSP_RETURN_NOT_OK(GetVarint64(body, &pos, &num_tiles));
    if (num_tiles > body.size() - pos + 1) {
      return Status::Corruption("tile count exceeds manifest size");
    }
    partition.tiles.resize(num_tiles);
    for (std::vector<PlaceId>& tile : partition.tiles) {
      uint64_t count = 0;
      KSP_RETURN_NOT_OK(GetVarint64(body, &pos, &count));
      if (count > body.size() - pos + 1) {
        return Status::Corruption("tile size exceeds manifest size");
      }
      tile.reserve(count);
      uint64_t previous = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t delta = 0;
        KSP_RETURN_NOT_OK(GetVarint64(body, &pos, &delta));
        previous += delta;
        if (previous > kInvalidPlace) {
          return Status::Corruption("tile place id overflows PlaceId");
        }
        tile.push_back(static_cast<PlaceId>(previous));
      }
    }
    if (pos != body.size()) {
      return Status::Corruption("trailing bytes in SHARDS manifest");
    }
    return Status::OK();
  };
  Status st = parse();
  if (!st.ok()) return CorruptionAt(path, body_offset + pos, st.message());
  return partition;
}

}  // namespace

Result<std::unique_ptr<ShardedKspDatabase>> ShardedKspDatabase::MakeShells(
    const KnowledgeBase* kb, const KspOptions& base,
    ShardPartition partition) {
  if (kb == nullptr) {
    return Status::InvalidArgument("sharded database requires a KB");
  }
  KSP_RETURN_NOT_OK(ValidatePartition(*kb, partition));
  // Tiles are sets; store them in ascending place-id order so
  // shard_places, the SHARDS manifest's delta encoding, and the shards'
  // place_subset all share one canonical form.
  for (std::vector<PlaceId>& tile : partition.tiles) {
    std::sort(tile.begin(), tile.end());
  }

  auto db = std::unique_ptr<ShardedKspDatabase>(new ShardedKspDatabase());
  db->kb_ = kb;
  db->base_options_ = base;
  db->base_options_.place_subset.clear();
  db->partition_ = std::move(partition);
  db->mbrs_.reserve(db->partition_.tiles.size());
  db->shards_.resize(db->partition_.tiles.size());
  for (uint32_t i = 0; i < db->partition_.num_tiles(); ++i) {
    const std::vector<PlaceId>& tile = db->partition_.tiles[i];
    db->mbrs_.push_back(TileMbr(*kb, tile));
    if (tile.empty()) continue;  // Empty tile: no shard database.
    KspOptions options = base;
    options.place_subset = tile;
    // Shard spill files must not collide in a caller-provided directory.
    if (!options.spill_directory.empty()) {
      options.spill_directory += "/" + ShardDirName(i);
    }
    db->shards_[i] = std::make_unique<KspDatabase>(kb, options);
  }
  return db;
}

Result<std::unique_ptr<ShardedKspDatabase>> ShardedKspDatabase::Build(
    const KnowledgeBase* kb, const KspOptions& base,
    const ShardPartition& partition, uint32_t alpha) {
  KSP_ASSIGN_OR_RETURN(auto db, MakeShells(kb, base, partition));

  // Reachability labels are vertex-keyed and identical for every shard:
  // build them once and let each shard adopt the shared instance.
  std::shared_ptr<const ReachabilityIndex> reach;
  if (base.use_unqualified_pruning) {
    reach = std::make_shared<const ReachabilityIndex>(
        ReachabilityIndex::Build(kb->graph(), kb->documents(),
                                 kb->num_terms(), base.undirected_edges));
  }
  for (std::unique_ptr<KspDatabase>& shard : db->shards_) {
    if (shard == nullptr) continue;
    shard->BuildRTree();
    if (reach != nullptr) shard->AdoptReachabilityIndex(reach);
    if (alpha > 0) shard->BuildAlphaIndex(alpha);
    KSP_RETURN_NOT_OK(shard->storage_backend_status());
  }
  return db;
}

Result<std::unique_ptr<ShardedKspDatabase>> ShardedKspDatabase::Load(
    const KnowledgeBase* kb, const KspOptions& base,
    const std::string& directory, FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  KSP_ASSIGN_OR_RETURN(
      auto partition,
      ReadShardsManifest(fs, directory + "/" + kShardsName));
  KSP_ASSIGN_OR_RETURN(auto db,
                       MakeShells(kb, base, std::move(partition)));

  // Load every shard, then require one common generation: a torn save
  // (aligned prefix at generation g+1, suffix still at g) must never be
  // served as a mixed index set.
  uint64_t generation = 0;
  bool first = true;
  std::shared_ptr<const ReachabilityIndex> shared_reach;
  for (uint32_t i = 0; i < db->num_shards(); ++i) {
    KspDatabase* shard = db->shards_[i].get();
    if (shard == nullptr) continue;
    KSP_RETURN_NOT_OK(
        shard->LoadIndexes(directory + "/" + ShardDirName(i), fs));
    if (first) {
      generation = shard->index_generation();
      shared_reach = shard->reachability_shared();
      first = false;
    } else if (shard->index_generation() != generation) {
      return Status::Corruption(
          "shard generations diverge (torn save?): shard " +
          ShardDirName(i) + " is at generation " +
          std::to_string(shard->index_generation()) + ", expected " +
          std::to_string(generation));
    } else if (shared_reach != nullptr) {
      // Drop this shard's duplicate labels for the shared copy.
      shard->AdoptReachabilityIndex(shared_reach);
    }
  }
  db->index_generation_ = generation;
  return db;
}

Status ShardedKspDatabase::Save(const std::string& directory,
                                FileSystem* fs) const {
  if (fs == nullptr) fs = DefaultFileSystem();
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);

  // Ascending shard order with the generation floor carried forward:
  // SaveIndexes returns the generation it published and every later
  // shard is forced to at least that number. Combined with the read-back
  // this keeps a completed save perfectly aligned, and an interrupted
  // one leaves an aligned prefix — which Load detects and refuses.
  uint64_t generation_floor = 0;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    if (shards_[i] == nullptr) continue;
    uint64_t published = 0;
    KSP_RETURN_NOT_OK(
        shards_[i]->SaveIndexes(directory + "/" + ShardDirName(i), fs,
                                generation_floor, &published));
    generation_floor = published;
  }
  // SHARDS last: a directory is a loadable sharded database only once
  // the partition is durably recorded.
  return WriteShardsManifest(fs, directory + "/" + kShardsName,
                             partition_);
}

Status ShardedKspDatabase::storage_backend_status() const {
  for (const std::unique_ptr<KspDatabase>& shard : shards_) {
    if (shard == nullptr) continue;
    KSP_RETURN_NOT_OK(shard->storage_backend_status());
  }
  return Status::OK();
}

bool IsShardedDirectory(const std::string& directory, FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  return fs->FileExists(directory + "/" + kShardsName);
}

KspQuery ShardedKspDatabase::MakeQuery(
    const Point& location, const std::vector<std::string>& keywords,
    uint32_t k) const {
  KspQuery query;
  query.location = location;
  query.keywords = kb_->LookupTerms(keywords);
  query.k = k;
  return query;
}

}  // namespace ksp
