#include "reach/reachability_index.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/io_util.h"

#include "reach/csr.h"
#include "reach/tarjan.h"

namespace ksp {

namespace {

/// Sorted-list intersection test (labels are sorted by hub rank).
bool Intersects(std::span<const uint32_t> a, std::span<const uint32_t> b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

ReachabilityIndex ReachabilityIndex::Build(const Graph& graph,
                                           const DocumentStore& docs,
                                           TermId num_terms,
                                           bool undirected_edges) {
  ReachabilityIndex index;
  const uint32_t n = graph.num_vertices();
  index.num_base_vertices_ = n;
  index.num_terms_ = num_terms;

  // 1. Augmented graph: base edges plus one virtual vertex per term.
  const uint32_t big_n = n + num_terms;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(graph.num_edges() + docs.TotalPostings());
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : graph.OutNeighbors(v)) {
      edges.emplace_back(v, w);
      if (undirected_edges) edges.emplace_back(w, v);
    }
    for (TermId t : docs.Terms(v)) edges.emplace_back(v, n + t);
  }
  Csr augmented = Csr::FromEdges(big_n, std::move(edges), /*dedup=*/false);

  // 2. SCC condensation.
  SccDecomposition scc = ComputeScc(augmented);
  index.component_of_ = scc.component_of;
  const uint32_t c = scc.num_components;
  Csr dag = CondenseDag(augmented, scc);
  Csr rdag = dag.Reversed();
  augmented = Csr();  // Release.

  // 3. Hub order: high-degree components first.
  std::vector<uint32_t> order(c);
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint64_t> degree(c);
  for (uint32_t comp = 0; comp < c; ++comp) {
    degree[comp] = (dag.offsets[comp + 1] - dag.offsets[comp]) +
                   (rdag.offsets[comp + 1] - rdag.offsets[comp]);
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return degree[a] > degree[b];
  });

  // 4. Pruned 2-hop labeling over the DAG.
  std::vector<std::vector<uint32_t>> lin(c);
  std::vector<std::vector<uint32_t>> lout(c);
  std::vector<uint32_t> queue;
  std::vector<uint32_t> epoch(c, 0xFFFFFFFFu);

  auto query_labels = [&](uint32_t from, uint32_t to) {
    return Intersects(std::span<const uint32_t>(lout[from]),
                      std::span<const uint32_t>(lin[to]));
  };

  for (uint32_t rank = 0; rank < c; ++rank) {
    const uint32_t h = order[rank];
    // Self labels first so later queries via h succeed.
    lin[h].push_back(rank);
    lout[h].push_back(rank);

    // Forward BFS: h reaches u  =>  rank(h) ∈ Lin[u].
    queue.clear();
    queue.push_back(h);
    epoch[h] = rank;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      uint32_t u = queue[qi];
      for (uint32_t w : dag.Neighbors(u)) {
        if (epoch[w] == rank) continue;
        epoch[w] = rank;
        if (query_labels(h, w)) continue;  // Covered by an earlier hub.
        lin[w].push_back(rank);
        queue.push_back(w);
      }
    }

    // Backward BFS: u reaches h  =>  rank(h) ∈ Lout[u].
    queue.clear();
    queue.push_back(h);
    // Reuse epoch with a distinct generation tag for the backward pass.
    std::vector<uint32_t>& bepoch = epoch;
    const uint32_t tag = rank | 0x80000000u;
    bepoch[h] = tag;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      uint32_t u = queue[qi];
      for (uint32_t w : rdag.Neighbors(u)) {
        if (bepoch[w] == tag) continue;
        bepoch[w] = tag;
        if (query_labels(w, h)) continue;
        lout[w].push_back(rank);
        queue.push_back(w);
      }
    }
  }

  // 5. Pack into CSR.
  index.in_offsets_.assign(c + 1, 0);
  index.out_offsets_.assign(c + 1, 0);
  for (uint32_t comp = 0; comp < c; ++comp) {
    index.in_offsets_[comp + 1] = index.in_offsets_[comp] + lin[comp].size();
    index.out_offsets_[comp + 1] =
        index.out_offsets_[comp] + lout[comp].size();
  }
  index.in_labels_.reserve(index.in_offsets_[c]);
  index.out_labels_.reserve(index.out_offsets_[c]);
  for (uint32_t comp = 0; comp < c; ++comp) {
    index.in_labels_.insert(index.in_labels_.end(), lin[comp].begin(),
                            lin[comp].end());
    index.out_labels_.insert(index.out_labels_.end(), lout[comp].begin(),
                             lout[comp].end());
  }
  return index;
}

bool ReachabilityIndex::QueryComponents(uint32_t cu, uint32_t cv) const {
  if (cu == cv) return true;
  return Intersects(OutLabels(cu), InLabels(cv));
}

bool ReachabilityIndex::Reaches(VertexId v, TermId term) const {
  if (term >= num_terms_) return false;
  const uint32_t term_vertex = num_base_vertices_ + term;
  return QueryComponents(component_of_[v], component_of_[term_vertex]);
}

bool ReachabilityIndex::ReachesVertex(VertexId u, VertexId v) const {
  return QueryComponents(component_of_[u], component_of_[v]);
}

namespace {
constexpr uint32_t kReachMagic = 0x4B535052u;  // "KSPR"
}  // namespace

namespace {
constexpr uint32_t kReachFormatVersion = 2;
}  // namespace

Status ReachabilityIndex::Save(const std::string& path, FileSystem* fs,
                               ArtifactInfo* info) const {
  if (fs == nullptr) fs = DefaultFileSystem();
  return WriteArtifactAtomically(
      fs, path, kReachMagic, kReachFormatVersion,
      [this](ChecksummedWriter* w) -> Status {
        std::string meta;
        AppendPod(&meta, num_base_vertices_);
        AppendPod(&meta, num_terms_);
        KSP_RETURN_NOT_OK(w->WriteSection(meta));
        // One section per CSR vector: each length prefix is validated
        // against its own section payload on load.
        std::string buf;
        for (const auto* vec32 :
             {&component_of_, &out_labels_, &in_labels_}) {
          buf.clear();
          AppendPodVector(&buf, *vec32);
          KSP_RETURN_NOT_OK(w->WriteSection(buf));
        }
        for (const auto* vec64 : {&out_offsets_, &in_offsets_}) {
          buf.clear();
          AppendPodVector(&buf, *vec64);
          KSP_RETURN_NOT_OK(w->WriteSection(buf));
        }
        return Status::OK();
      },
      info);
}

Status ReachabilityIndex::SaveLegacyForTesting(
    const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  Status st;
  auto write_all = [&]() -> Status {
    KSP_RETURN_NOT_OK(WritePod(f, kReachMagic));
    KSP_RETURN_NOT_OK(WritePod(f, num_base_vertices_));
    KSP_RETURN_NOT_OK(WritePod(f, num_terms_));
    KSP_RETURN_NOT_OK(WritePodVector(f, component_of_));
    KSP_RETURN_NOT_OK(WritePodVector(f, out_offsets_));
    KSP_RETURN_NOT_OK(WritePodVector(f, out_labels_));
    KSP_RETURN_NOT_OK(WritePodVector(f, in_offsets_));
    KSP_RETURN_NOT_OK(WritePodVector(f, in_labels_));
    KSP_RETURN_NOT_OK(WritePod(f, kReachMagic));
    return Status::OK();
  };
  st = write_all();
  if (std::fclose(f) != 0 && st.ok()) st = Status::IOError("close failed");
  return st;
}

Result<ReachabilityIndex> ReachabilityIndex::LoadLegacy(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  ReachabilityIndex index;
  auto read_all = [&]() -> Status {
    uint32_t magic = 0;
    KSP_RETURN_NOT_OK(ReadPod(f, &magic));
    if (magic != kReachMagic) {
      return Status::Corruption("bad reachability magic: " + path);
    }
    KSP_RETURN_NOT_OK(ReadPod(f, &index.num_base_vertices_));
    KSP_RETURN_NOT_OK(ReadPod(f, &index.num_terms_));
    KSP_RETURN_NOT_OK(ReadPodVector(f, &index.component_of_));
    KSP_RETURN_NOT_OK(ReadPodVector(f, &index.out_offsets_));
    KSP_RETURN_NOT_OK(ReadPodVector(f, &index.out_labels_));
    KSP_RETURN_NOT_OK(ReadPodVector(f, &index.in_offsets_));
    KSP_RETURN_NOT_OK(ReadPodVector(f, &index.in_labels_));
    KSP_RETURN_NOT_OK(ReadPod(f, &magic));
    if (magic != kReachMagic) {
      return Status::Corruption("bad reachability footer: " + path);
    }
    return Status::OK();
  };
  Status st = read_all();
  std::fclose(f);
  if (!st.ok()) return st;
  return index;
}

Result<ReachabilityIndex> ReachabilityIndex::Load(const std::string& path,
                                                  FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  auto checksummed = IsChecksummedFile(**file);
  if (!checksummed.ok()) return checksummed.status();
  if (!*checksummed) return LoadLegacy(path);

  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  KSP_RETURN_NOT_OK(reader.Open(kReachMagic, &version));
  if (version != kReachFormatVersion) {
    return CorruptionAt(path, 4, "unsupported reachability format version " +
                                     std::to_string(version));
  }
  ReachabilityIndex index;
  std::string meta;
  const uint64_t meta_offset = reader.offset();
  KSP_RETURN_NOT_OK(reader.ReadSection(&meta));
  size_t pos = 0;
  Status st = ParsePod(meta, &pos, &index.num_base_vertices_);
  if (st.ok()) st = ParsePod(meta, &pos, &index.num_terms_);
  if (!st.ok() || pos != meta.size()) {
    return CorruptionAt(path, meta_offset, "malformed meta section");
  }
  auto read_vec = [&](auto* vec) -> Status {
    std::string section;
    const uint64_t section_offset = reader.offset();
    KSP_RETURN_NOT_OK(reader.ReadSection(&section));
    size_t vpos = 0;
    Status vst = ParsePodVector(section, &vpos, vec);
    if (!vst.ok() || vpos != section.size()) {
      return CorruptionAt(path, section_offset, "malformed vector section");
    }
    return Status::OK();
  };
  KSP_RETURN_NOT_OK(read_vec(&index.component_of_));
  KSP_RETURN_NOT_OK(read_vec(&index.out_labels_));
  KSP_RETURN_NOT_OK(read_vec(&index.in_labels_));
  KSP_RETURN_NOT_OK(read_vec(&index.out_offsets_));
  KSP_RETURN_NOT_OK(read_vec(&index.in_offsets_));
  KSP_RETURN_NOT_OK(reader.ExpectEnd());
  return index;
}

uint64_t ReachabilityIndex::NumLabelEntries() const {
  return in_labels_.size() + out_labels_.size();
}

uint64_t ReachabilityIndex::MemoryUsageBytes() const {
  return component_of_.capacity() * sizeof(uint32_t) +
         (in_offsets_.capacity() + out_offsets_.capacity()) *
             sizeof(uint64_t) +
         (in_labels_.capacity() + out_labels_.capacity()) * sizeof(uint32_t);
}

}  // namespace ksp
