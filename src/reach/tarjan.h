#ifndef KSP_REACH_TARJAN_H_
#define KSP_REACH_TARJAN_H_

#include <cstdint>
#include <vector>

#include "reach/csr.h"

namespace ksp {

/// Result of strongly-connected-component decomposition.
struct SccDecomposition {
  /// Component id per vertex. Ids are assigned in *reverse topological*
  /// completion order by Tarjan, i.e., if u's component can reach v's
  /// component (u ≠ v), then component_of[u] > component_of[v].
  std::vector<uint32_t> component_of;
  uint32_t num_components = 0;
};

/// Iterative Tarjan SCC over a CSR graph (no recursion: safe on deep
/// chains, which RDF category hierarchies produce).
SccDecomposition ComputeScc(const Csr& graph);

/// Builds the condensed DAG: one vertex per SCC, deduplicated edges
/// between distinct components.
Csr CondenseDag(const Csr& graph, const SccDecomposition& scc);

}  // namespace ksp

#endif  // KSP_REACH_TARJAN_H_
