#include "reach/tarjan.h"

#include <algorithm>

namespace ksp {

SccDecomposition ComputeScc(const Csr& graph) {
  const uint32_t n = graph.num_vertices();
  constexpr uint32_t kUnvisited = 0xFFFFFFFFu;

  SccDecomposition out;
  out.component_of.assign(n, kUnvisited);

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;

  // Explicit DFS frame: vertex + position in its adjacency list.
  struct Frame {
    uint32_t vertex;
    uint64_t edge_pos;
  };
  std::vector<Frame> dfs;
  uint32_t next_index = 0;

  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back(Frame{root, graph.offsets[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      uint32_t v = frame.vertex;
      if (frame.edge_pos < graph.offsets[v + 1]) {
        uint32_t w = graph.targets[frame.edge_pos++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back(Frame{w, graph.offsets[w]});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      // v is finished.
      if (lowlink[v] == index[v]) {
        uint32_t comp = out.num_components++;
        while (true) {
          uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          out.component_of[w] = comp;
          if (w == v) break;
        }
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        uint32_t parent = dfs.back().vertex;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return out;
}

Csr CondenseDag(const Csr& graph, const SccDecomposition& scc) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  const uint32_t n = graph.num_vertices();
  for (uint32_t v = 0; v < n; ++v) {
    uint32_t cv = scc.component_of[v];
    for (uint32_t w : graph.Neighbors(v)) {
      uint32_t cw = scc.component_of[w];
      if (cv != cw) edges.emplace_back(cv, cw);
    }
  }
  return Csr::FromEdges(scc.num_components, std::move(edges), /*dedup=*/true);
}

}  // namespace ksp
