#ifndef KSP_REACH_CSR_H_
#define KSP_REACH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ksp {

/// Minimal CSR adjacency used internally by the reachability machinery
/// (augmented graphs, condensed DAGs). Vertex ids are dense uint32.
struct Csr {
  std::vector<uint64_t> offsets;  // size n+1
  std::vector<uint32_t> targets;

  uint32_t num_vertices() const {
    return static_cast<uint32_t>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  uint64_t num_edges() const { return targets.size(); }

  std::span<const uint32_t> Neighbors(uint32_t v) const {
    return {targets.data() + offsets[v], targets.data() + offsets[v + 1]};
  }

  /// Builds a CSR from an edge list (pairs may contain duplicates; they are
  /// kept unless `dedup`).
  static Csr FromEdges(uint32_t n,
                       std::vector<std::pair<uint32_t, uint32_t>> edges,
                       bool dedup);

  /// Edge-reversed copy.
  Csr Reversed() const;

  uint64_t MemoryUsageBytes() const {
    return offsets.capacity() * sizeof(uint64_t) +
           targets.capacity() * sizeof(uint32_t);
  }
};

}  // namespace ksp

#endif  // KSP_REACH_CSR_H_
