#include "reach/csr.h"

#include <algorithm>

namespace ksp {

Csr Csr::FromEdges(uint32_t n,
                   std::vector<std::pair<uint32_t, uint32_t>> edges,
                   bool dedup) {
  if (dedup) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  Csr csr;
  csr.offsets.assign(n + 1, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    ++csr.offsets[src + 1];
  }
  for (uint32_t v = 0; v < n; ++v) csr.offsets[v + 1] += csr.offsets[v];
  csr.targets.resize(edges.size());
  std::vector<uint64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const auto& [src, dst] : edges) {
    csr.targets[cursor[src]++] = dst;
  }
  return csr;
}

Csr Csr::Reversed() const {
  const uint32_t n = num_vertices();
  Csr rev;
  rev.offsets.assign(n + 1, 0);
  for (uint32_t t : targets) ++rev.offsets[t + 1];
  for (uint32_t v = 0; v < n; ++v) rev.offsets[v + 1] += rev.offsets[v];
  rev.targets.resize(targets.size());
  std::vector<uint64_t> cursor(rev.offsets.begin(), rev.offsets.end() - 1);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t t : Neighbors(v)) {
      rev.targets[cursor[t]++] = v;
    }
  }
  return rev;
}

}  // namespace ksp
