#ifndef KSP_REACH_REACHABILITY_INDEX_H_
#define KSP_REACH_REACHABILITY_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "rdf/graph.h"
#include "text/document_store.h"

namespace ksp {

class FileSystem;
struct ArtifactInfo;

/// Reachability oracle for Pruning Rule 1 (§4.1): answers whether a vertex
/// can reach *any* occurrence of a keyword by directed paths.
///
/// Construction follows the paper: a virtual vertex v_t is added for every
/// term t with an edge u -> v_t for every vertex u whose document contains
/// t; a single vertex-to-v_t reachability query then covers all of t's
/// postings. The oracle itself is built as in TF-Label's family: SCC
/// condensation to a DAG, then a pruned 2-hop (hub) labeling whose queries
/// are sorted-list intersections — microseconds per query.
class ReachabilityIndex {
 public:
  /// Builds the index over `graph` augmented with term vertices for all
  /// terms in [0, num_terms) of `docs`.
  static ReachabilityIndex Build(const Graph& graph,
                                 const DocumentStore& docs, TermId num_terms,
                                 bool undirected_edges = false);

  /// True iff some vertex whose document contains `term` is reachable from
  /// `v` (v itself counts).
  bool Reaches(VertexId v, TermId term) const;

  /// Plain vertex-to-vertex reachability (u == v is true).
  bool ReachesVertex(VertexId u, VertexId v) const;

  /// Persists the labeling (the expensive preprocessing artifact —
  /// Table 5 charges TF-Label construction in the tens of minutes).
  /// Save writes the checksummed v2 container atomically; Load verifies
  /// every section CRC and still reads v1 legacy files for one release.
  Status Save(const std::string& path, FileSystem* fs = nullptr,
              ArtifactInfo* info = nullptr) const;
  static Result<ReachabilityIndex> Load(const std::string& path,
                                        FileSystem* fs = nullptr);

  /// v1 writer kept only for legacy-read-window tests.
  Status SaveLegacyForTesting(const std::string& path) const;

  /// Total number of hub-label entries (index size metric).
  uint64_t NumLabelEntries() const;
  uint64_t MemoryUsageBytes() const;

  uint32_t num_base_vertices() const { return num_base_vertices_; }

 private:
  ReachabilityIndex() = default;

  static Result<ReachabilityIndex> LoadLegacy(const std::string& path);

  bool QueryComponents(uint32_t cu, uint32_t cv) const;

  std::span<const uint32_t> OutLabels(uint32_t comp) const {
    return {out_labels_.data() + out_offsets_[comp],
            out_labels_.data() + out_offsets_[comp + 1]};
  }
  std::span<const uint32_t> InLabels(uint32_t comp) const {
    return {in_labels_.data() + in_offsets_[comp],
            in_labels_.data() + in_offsets_[comp + 1]};
  }

  uint32_t num_base_vertices_ = 0;
  TermId num_terms_ = 0;
  /// Component id per augmented vertex (base vertices, then term vertices).
  std::vector<uint32_t> component_of_;
  /// 2-hop labels over DAG components, CSR-packed, sorted by hub rank.
  std::vector<uint64_t> out_offsets_;
  std::vector<uint32_t> out_labels_;
  std::vector<uint64_t> in_offsets_;
  std::vector<uint32_t> in_labels_;
};

}  // namespace ksp

#endif  // KSP_REACH_REACHABILITY_INDEX_H_
