#include "storage/buffer_pool.h"

#include "common/logging.h"

namespace ksp {

BufferPool::BufferPool(const PagedFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {
  KSP_CHECK(capacity_ >= 1) << "buffer pool needs at least one frame";
}

Result<std::string_view> BufferPool::Fetch(uint64_t page_id) {
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    ++hits_;
    // Move to MRU position; iterators (and Frame storage) stay valid.
    frames_.splice(frames_.begin(), frames_, it->second);
    return std::string_view(it->second->data);
  }

  ++misses_;
  if (frames_.size() >= capacity_) {
    // Evict LRU (back).
    index_.erase(frames_.back().page_id);
    frames_.pop_back();
    ++evictions_;
  }
  frames_.emplace_front(Frame{page_id, std::string()});
  Status st = file_->ReadPage(page_id, &frames_.front().data);
  if (!st.ok()) {
    frames_.pop_front();
    return st;
  }
  index_[page_id] = frames_.begin();
  return std::string_view(frames_.front().data);
}

void BufferPool::Clear() {
  frames_.clear();
  index_.clear();
}

}  // namespace ksp
