#ifndef KSP_STORAGE_SHARED_BUFFER_POOL_H_
#define KSP_STORAGE_SHARED_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/file.h"
#include "common/io_stats.h"
#include "common/result.h"
#include "common/status.h"

namespace ksp {

/// Byte-budgeted LRU page cache shared by every disk-resident index of a
/// KspDatabase (graph, transposed graph, paged R-tree, inverted index).
/// Thread-safe: one pool serves the intra-query pipeline's producer and
/// workers concurrently. Pages are keyed by (file_id, page_id); frames
/// are refcount-pinned while a PageRef is alive, and eviction walks the
/// LRU tail skipping pinned frames. A page larger than the whole budget
/// is still admitted (the pool transiently exceeds its budget rather
/// than failing the read) and becomes the first eviction candidate.
class SharedBufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t cached_pages = 0;
    uint64_t cached_bytes = 0;
    uint64_t pinned_pages = 0;
    uint64_t budget_bytes = 0;
  };

  /// `budget_bytes` is a soft cap on cached payload bytes (>= 1 page is
  /// always admitted). `page_size` must be >= 1.
  explicit SharedBufferPool(uint64_t budget_bytes,
                            uint32_t page_size = 4096);

  SharedBufferPool(const SharedBufferPool&) = delete;
  SharedBufferPool& operator=(const SharedBufferPool&) = delete;

  /// Registers a file for pooled access; the file must outlive the pool
  /// (or be dropped via DropFile first). Returns the id used as the page
  /// key's file component.
  uint32_t RegisterFile(const RandomAccessFile* file);

  /// Evicts every cached page of `file_id` (pinned pages too — callers
  /// must not hold PageRefs across a DropFile of the same file) and
  /// forgets the file. Used when an index is rebuilt in place.
  void DropFile(uint32_t file_id);

  class PageRef;

  /// Fetches one page, pinning its frame until `*out` is released. `io`
  /// (optional) accumulates hit/miss/eviction deltas and fetch wall time.
  /// Reading entirely past end-of-file is Corruption — page ids come
  /// from validated offset tables, so an out-of-range id means a
  /// corrupted table.
  Status Fetch(uint32_t file_id, uint64_t page_id, PageRef* out,
               PageIoCounters* io);

  /// Reads `length` bytes at `offset`, assembling spanning pages into
  /// `*out` (replacing its contents). Reads past end-of-file are
  /// Corruption.
  Status ReadRange(uint32_t file_id, uint64_t offset, uint64_t length,
                   std::string* out, PageIoCounters* io);

  /// Drops every unpinned cached page (simulates a cold cache).
  void Clear();

  Stats GetStats() const;

  uint32_t page_size() const { return page_size_; }
  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Frame {
    uint64_t key = 0;
    std::string data;
    uint32_t pins = 0;
  };

  static uint64_t KeyOf(uint32_t file_id, uint64_t page_id) {
    return (static_cast<uint64_t>(file_id) << 48) | page_id;
  }

  /// Evicts unpinned LRU frames until cached bytes fit the budget.
  /// Requires mu_ held.
  void EvictToBudgetLocked();
  void Unpin(Frame* frame);

  const uint64_t budget_bytes_;
  const uint32_t page_size_;

  mutable std::mutex mu_;
  std::vector<const RandomAccessFile*> files_;
  /// MRU at front; list keeps Frame addresses stable for PageRef pins.
  std::list<Frame> frames_;
  std::unordered_map<uint64_t, std::list<Frame>::iterator> index_;
  uint64_t cached_bytes_ = 0;
  uint64_t pinned_pages_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;

  friend class PageRef;
};

/// Movable pin handle over one cached page. The view stays valid (and
/// the frame un-evictable) until the ref is released or destroyed.
class SharedBufferPool::PageRef {
 public:
  PageRef() = default;
  ~PageRef() { Release(); }

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_) {
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
    }
    return *this;
  }

  std::string_view data() const {
    return frame_ ? std::string_view(frame_->data) : std::string_view();
  }
  bool valid() const { return frame_ != nullptr; }

  void Release() {
    if (pool_ != nullptr && frame_ != nullptr) pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = nullptr;
  }

 private:
  friend class SharedBufferPool;
  SharedBufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
};

}  // namespace ksp

#endif  // KSP_STORAGE_SHARED_BUFFER_POOL_H_
