#ifndef KSP_STORAGE_PAGED_FILE_H_
#define KSP_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ksp {

/// Fixed-size-page read-only file, the unit of IO for the disk-resident
/// graph (§3 footnote 1 / §8 of the paper). Pages are addressed by id;
/// the last page may be short.
class PagedFile {
 public:
  static constexpr uint32_t kDefaultPageSize = 4096;

  ~PagedFile();

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Opens an existing file for page reads.
  static Result<std::unique_ptr<PagedFile>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Reads page `page_id` into `buffer` (resized to the page's length,
  /// which is page_size except possibly for the last page).
  Status ReadPage(uint64_t page_id, std::string* buffer) const;

  uint32_t page_size() const { return page_size_; }
  uint64_t num_pages() const {
    return (file_size_ + page_size_ - 1) / page_size_;
  }
  uint64_t file_size() const { return file_size_; }

  /// Total ReadPage calls (the physical-IO counter).
  uint64_t reads() const { return reads_; }

 private:
  PagedFile() = default;

  std::FILE* file_ = nullptr;
  uint32_t page_size_ = kDefaultPageSize;
  uint64_t file_size_ = 0;
  mutable uint64_t reads_ = 0;
};

/// Sequentially writes a paged file.
class PagedFileWriter {
 public:
  static Result<std::unique_ptr<PagedFileWriter>> Create(
      const std::string& path);

  ~PagedFileWriter();

  PagedFileWriter(const PagedFileWriter&) = delete;
  PagedFileWriter& operator=(const PagedFileWriter&) = delete;

  /// Appends raw bytes (page boundaries are the reader's concern).
  Status Append(std::string_view data);

  /// Current byte offset (== bytes appended).
  uint64_t offset() const { return offset_; }

  Status Close();

 private:
  PagedFileWriter() = default;

  std::FILE* file_ = nullptr;
  uint64_t offset_ = 0;
};

}  // namespace ksp

#endif  // KSP_STORAGE_PAGED_FILE_H_
