#ifndef KSP_STORAGE_BUFFER_POOL_H_
#define KSP_STORAGE_BUFFER_POOL_H_

#include <list>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "storage/paged_file.h"

namespace ksp {

/// LRU page cache in front of a PagedFile. Single-threaded (one pool per
/// query thread, matching the engine's threading model). Returned page
/// views stay valid until the next Fetch() — callers copy what they keep.
class BufferPool {
 public:
  /// `capacity_pages` must be >= 1.
  BufferPool(const PagedFile* file, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a view of the page's bytes, reading it from disk on a miss
  /// (evicting the least recently used page when full).
  Result<std::string_view> Fetch(uint64_t page_id);

  /// Drops every cached page (simulates a cold cache).
  void Clear();

  /// Cumulative-counter snapshot, cheap to copy into reports.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t cached_pages = 0;
    uint64_t capacity_pages = 0;
  };
  Stats GetStats() const {
    return Stats{hits_, misses_, evictions_, frames_.size(), capacity_};
  }

  size_t capacity() const { return capacity_; }
  size_t cached_pages() const { return frames_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }

 private:
  struct Frame {
    uint64_t page_id;
    std::string data;
  };

  const PagedFile* file_;
  size_t capacity_;
  /// MRU at front. A list keeps Frame addresses stable across splices.
  std::list<Frame> frames_;
  std::unordered_map<uint64_t, std::list<Frame>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace ksp

#endif  // KSP_STORAGE_BUFFER_POOL_H_
