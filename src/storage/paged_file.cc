#include "storage/paged_file.h"

namespace ksp {

PagedFile::~PagedFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path,
                                                   uint32_t page_size) {
  if (page_size == 0) {
    return Status::InvalidArgument("page_size must be positive");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  auto file = std::unique_ptr<PagedFile>(new PagedFile());
  file->file_ = f;
  file->page_size_ = page_size;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed: " + path);
  }
  long size = std::ftell(f);
  if (size < 0) return Status::IOError("tell failed: " + path);
  file->file_size_ = static_cast<uint64_t>(size);
  return file;
}

Status PagedFile::ReadPage(uint64_t page_id, std::string* buffer) const {
  const uint64_t begin = page_id * page_size_;
  if (begin >= file_size_) {
    return Status::OutOfRange("page beyond end of file");
  }
  const uint64_t length =
      std::min<uint64_t>(page_size_, file_size_ - begin);
  buffer->resize(length);
  if (std::fseek(file_, static_cast<long>(begin), SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fread(buffer->data(), 1, length, file_) != length) {
    return Status::IOError("short page read");
  }
  ++reads_;
  return Status::OK();
}

Result<std::unique_ptr<PagedFileWriter>> PagedFileWriter::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create: " + path);
  auto writer = std::unique_ptr<PagedFileWriter>(new PagedFileWriter());
  writer->file_ = f;
  return writer;
}

PagedFileWriter::~PagedFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PagedFileWriter::Append(std::string_view data) {
  if (file_ == nullptr) return Status::InvalidArgument("writer closed");
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status::IOError("short write");
  }
  offset_ += data.size();
  return Status::OK();
}

Status PagedFileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  return rc == 0 ? Status::OK() : Status::IOError("close failed");
}

}  // namespace ksp
