#include "storage/disk_graph.h"

#include <functional>
#include <span>

#include "common/varint.h"

namespace ksp {

namespace {
constexpr uint32_t kMagic = 0x4B535047u;  // "KSPG"

/// Writes one adjacency file; `neighbors_of` selects the edge
/// direction (out-adjacency or the transpose). Neighbour lists must be
/// ascending (non-strict) for the delta encoding.
Status WriteAdjacencyFile(
    const Graph& graph, const std::string& path, uint32_t page_size,
    const std::function<std::span<const VertexId>(VertexId)>&
        neighbors_of) {
  KSP_ASSIGN_OR_RETURN(auto writer, PagedFileWriter::Create(path));

  const VertexId n = graph.num_vertices();
  std::string header;
  PutFixed32(&header, kMagic);
  PutFixed32(&header, page_size);
  PutFixed64(&header, n);
  PutFixed64(&header, graph.num_edges());
  KSP_RETURN_NOT_OK(writer->Append(header));

  // Encode all adjacency records first to learn their offsets.
  const uint64_t table_begin = header.size();
  const uint64_t data_begin = table_begin + (n + 1) * 8ULL;
  std::string table;
  table.reserve((n + 1) * 8ULL);
  std::string data;
  uint64_t cursor = data_begin;
  for (VertexId v = 0; v < n; ++v) {
    PutFixed64(&table, cursor);
    auto neighbors = neighbors_of(v);
    std::string record;
    PutVarint64(&record, neighbors.size());
    VertexId prev = 0;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      PutVarint64(&record, i == 0 ? neighbors[i] : neighbors[i] - prev);
      prev = neighbors[i];
    }
    cursor += record.size();
    data += record;
  }
  PutFixed64(&table, cursor);
  KSP_RETURN_NOT_OK(writer->Append(table));
  KSP_RETURN_NOT_OK(writer->Append(data));

  std::string footer;
  PutFixed32(&footer, kMagic);
  KSP_RETURN_NOT_OK(writer->Append(footer));
  return writer->Close();
}

}  // namespace

Status DiskGraph::Write(const Graph& graph, const std::string& path,
                        uint32_t page_size) {
  return WriteAdjacencyFile(
      graph, path, page_size,
      [&graph](VertexId v) { return graph.OutNeighbors(v); });
}

Status DiskGraph::WriteTranspose(const Graph& graph,
                                 const std::string& path,
                                 uint32_t page_size) {
  return WriteAdjacencyFile(
      graph, path, page_size,
      [&graph](VertexId v) { return graph.InNeighbors(v); });
}

Result<std::unique_ptr<DiskGraph>> DiskGraph::Open(const std::string& path,
                                                   size_t pool_pages,
                                                   uint32_t page_size) {
  KSP_ASSIGN_OR_RETURN(auto file, PagedFile::Open(path, page_size));
  auto graph = std::unique_ptr<DiskGraph>(new DiskGraph());
  graph->file_ = std::move(file);
  graph->pool_ =
      std::make_unique<BufferPool>(graph->file_.get(), pool_pages);

  // Header.
  std::string header;
  KSP_RETURN_NOT_OK(graph->ReadBytes(0, 24, &header));
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t stored_page_size = 0;
  uint64_t n = 0;
  KSP_RETURN_NOT_OK(GetFixed32(header, &pos, &magic));
  KSP_RETURN_NOT_OK(GetFixed32(header, &pos, &stored_page_size));
  KSP_RETURN_NOT_OK(GetFixed64(header, &pos, &n));
  KSP_RETURN_NOT_OK(GetFixed64(header, &pos, &graph->num_edges_));
  if (magic != kMagic) return Status::Corruption("bad graph magic: " + path);
  if (stored_page_size != page_size) {
    return Status::InvalidArgument("page size mismatch with file");
  }
  graph->num_vertices_ = static_cast<VertexId>(n);

  // Offset table (kept in memory, like the paper's vertex lookup table).
  std::string table;
  KSP_RETURN_NOT_OK(graph->ReadBytes(24, (n + 1) * 8ULL, &table));
  graph->offsets_.resize(n + 1);
  size_t tpos = 0;
  for (uint64_t v = 0; v <= n; ++v) {
    KSP_RETURN_NOT_OK(GetFixed64(table, &tpos, &graph->offsets_[v]));
  }
  graph->data_begin_ = 24 + (n + 1) * 8ULL;
  if (!graph->offsets_.empty() &&
      graph->offsets_.front() != graph->data_begin_) {
    return Status::Corruption("offset table inconsistent");
  }

  // Footer check.
  std::string footer;
  KSP_RETURN_NOT_OK(
      graph->ReadBytes(graph->file_->file_size() - 4, 4, &footer));
  size_t fpos = 0;
  uint32_t fmagic = 0;
  KSP_RETURN_NOT_OK(GetFixed32(footer, &fpos, &fmagic));
  if (fmagic != kMagic) {
    return Status::Corruption("bad graph footer: " + path);
  }

  // Decode degrees once (sequential pass through the pool).
  graph->degrees_.resize(n);
  std::string record;
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t begin = graph->offsets_[v];
    uint64_t length =
        std::min<uint64_t>(10, graph->offsets_[v + 1] - begin);
    KSP_RETURN_NOT_OK(graph->ReadBytes(begin, length, &record));
    size_t rpos = 0;
    uint64_t degree = 0;
    KSP_RETURN_NOT_OK(GetVarint64(record, &rpos, &degree));
    graph->degrees_[v] = static_cast<uint32_t>(degree);
  }
  return graph;
}

Status DiskGraph::ReadBytes(uint64_t begin, uint64_t length,
                            std::string* out) const {
  out->clear();
  out->reserve(length);
  const uint32_t page_size = file_->page_size();
  uint64_t remaining = length;
  uint64_t cursor = begin;
  while (remaining > 0) {
    uint64_t page_id = cursor / page_size;
    uint64_t page_offset = cursor % page_size;
    KSP_ASSIGN_OR_RETURN(std::string_view page, pool_->Fetch(page_id));
    if (page_offset >= page.size()) {
      return Status::Corruption("read past end of page");
    }
    uint64_t take =
        std::min<uint64_t>(remaining, page.size() - page_offset);
    out->append(page.substr(page_offset, take));
    cursor += take;
    remaining -= take;
  }
  return Status::OK();
}

uint32_t DiskGraph::OutDegree(VertexId v) const { return degrees_[v]; }

Status DiskGraph::OutNeighbors(VertexId v,
                               std::vector<VertexId>* out) const {
  std::string record;
  KSP_RETURN_NOT_OK(
      ReadBytes(RecordBegin(v), RecordEnd(v) - RecordBegin(v), &record));
  size_t pos = 0;
  uint64_t count = 0;
  KSP_RETURN_NOT_OK(GetVarint64(record, &pos, &count));
  uint64_t prev = 0;
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    KSP_RETURN_NOT_OK(GetVarint64(record, &pos, &delta));
    prev = (i == 0) ? delta : prev + delta;
    out->push_back(static_cast<VertexId>(prev));
  }
  return Status::OK();
}

Status DiskGraph::Bfs(
    VertexId root,
    std::vector<std::pair<VertexId, uint32_t>>* visited) const {
  std::vector<bool> seen(num_vertices_, false);
  visited->clear();
  visited->emplace_back(root, 0);
  seen[root] = true;
  std::vector<VertexId> neighbors;
  for (size_t qi = 0; qi < visited->size(); ++qi) {
    auto [v, dist] = (*visited)[qi];
    neighbors.clear();
    KSP_RETURN_NOT_OK(OutNeighbors(v, &neighbors));
    for (VertexId w : neighbors) {
      if (!seen[w]) {
        seen[w] = true;
        visited->emplace_back(w, dist + 1);
      }
    }
  }
  return Status::OK();
}

}  // namespace ksp
