#ifndef KSP_STORAGE_DISK_GRAPH_H_
#define KSP_STORAGE_DISK_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "rdf/graph.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace ksp {

/// Disk-resident adjacency store: the "disk-based graph representation
/// for larger-scale data" of §3 footnote 1. The adjacency region holds,
/// per vertex, a varint count followed by varint-delta-encoded neighbour
/// ids; an in-memory offset table gives each vertex's start byte; pages
/// flow through an LRU BufferPool so BFS over hot regions avoids IO.
///
/// File layout:
///   [magic u32][page_size u32][num_vertices u64][num_edges u64]
///   [offset table: num_vertices+1 x fixed64]
///   [adjacency region]
///   [magic u32]
class DiskGraph {
 public:
  static constexpr uint32_t kDefaultPoolPages = 256;

  /// Serializes the out-adjacency of `graph` to `path`.
  static Status Write(const Graph& graph, const std::string& path,
                      uint32_t page_size = PagedFile::kDefaultPageSize);

  /// Serializes the in-adjacency (transpose) of `graph` to `path`, in
  /// the same file format: record v holds InNeighbors(v). Backward
  /// expansion (TA) and undirected BFS read this file so the disk
  /// backend sees the exact neighbour order of the in-memory CSR.
  static Status WriteTranspose(
      const Graph& graph, const std::string& path,
      uint32_t page_size = PagedFile::kDefaultPageSize);

  /// Opens a graph file with an LRU pool of `pool_pages` pages.
  static Result<std::unique_ptr<DiskGraph>> Open(
      const std::string& path, size_t pool_pages = kDefaultPoolPages,
      uint32_t page_size = PagedFile::kDefaultPageSize);

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }

  /// Appends v's out-neighbours to `*out` (ascending order, as stored).
  Status OutNeighbors(VertexId v, std::vector<VertexId>* out) const;

  uint32_t OutDegree(VertexId v) const;

  /// Full BFS from `root` honoring the buffer pool; returns vertices in
  /// visiting order with distances. Exercises the disk path end-to-end.
  Status Bfs(VertexId root,
             std::vector<std::pair<VertexId, uint32_t>>* visited) const;

  BufferPool& buffer_pool() const { return *pool_; }
  const PagedFile& file() const { return *file_; }

 private:
  DiskGraph() = default;

  /// Byte range of v's adjacency record.
  uint64_t RecordBegin(VertexId v) const { return offsets_[v]; }
  uint64_t RecordEnd(VertexId v) const { return offsets_[v + 1]; }

  /// Reads `length` bytes starting at absolute byte `begin`, spanning
  /// pages through the pool.
  Status ReadBytes(uint64_t begin, uint64_t length, std::string* out) const;

  std::unique_ptr<PagedFile> file_;
  mutable std::unique_ptr<BufferPool> pool_;
  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t data_begin_ = 0;
  /// Absolute byte offsets of each vertex's record (size n+1).
  std::vector<uint64_t> offsets_;
  /// Degrees, decoded once at open (count varints are cheap to keep).
  std::vector<uint32_t> degrees_;
};

}  // namespace ksp

#endif  // KSP_STORAGE_DISK_GRAPH_H_
