#include "storage/shared_buffer_pool.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace ksp {

namespace {
/// Key marking a frame whose file was dropped while the frame was still
/// pinned; the frame stays alive (off the index) until its last unpin.
constexpr uint64_t kOrphanKey = ~0ULL;
}  // namespace

SharedBufferPool::SharedBufferPool(uint64_t budget_bytes,
                                   uint32_t page_size)
    : budget_bytes_(std::max<uint64_t>(budget_bytes, 1)),
      page_size_(page_size) {
  KSP_CHECK(page_size >= 1) << "page_size must be >= 1";
}

uint32_t SharedBufferPool::RegisterFile(const RandomAccessFile* file) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.push_back(file);
  return static_cast<uint32_t>(files_.size() - 1);
}

void SharedBufferPool::DropFile(uint32_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_id < files_.size()) files_[file_id] = nullptr;
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->key == kOrphanKey || (it->key >> 48) != file_id) {
      ++it;
      continue;
    }
    index_.erase(it->key);
    cached_bytes_ -= it->data.size();
    ++evictions_;
    if (it->pins > 0) {
      // Keep the node alive for outstanding PageRefs; Unpin() reclaims
      // it once the last pin drops.
      it->key = kOrphanKey;
      ++it;
    } else {
      it = frames_.erase(it);
    }
  }
}

Status SharedBufferPool::Fetch(uint32_t file_id, uint64_t page_id,
                               PageRef* out, PageIoCounters* io) {
  const auto start = std::chrono::steady_clock::now();
  out->Release();
  const uint64_t key = KeyOf(file_id, page_id);

  std::unique_lock<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    frames_.splice(frames_.begin(), frames_, it->second);
    Frame* frame = &*it->second;
    if (frame->pins++ == 0) ++pinned_pages_;
    ++hits_;
    if (io != nullptr) ++io->hits;
    out->pool_ = this;
    out->frame_ = frame;
    if (io != nullptr) {
      io->micros += std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    }
    return Status::OK();
  }

  if (file_id >= files_.size() || files_[file_id] == nullptr) {
    return Status::InvalidArgument("unknown buffer-pool file id");
  }
  const RandomAccessFile* file = files_[file_id];

  // Read outside the lock: concurrent fetchers of other pages proceed;
  // a racing fetch of the same page at worst reads it twice and the
  // second insert finds the frame already cached.
  lock.unlock();
  std::string data;
  Status read_status =
      file->Read(page_id * static_cast<uint64_t>(page_size_), page_size_,
                 &data);
  if (read_status.ok() && data.empty()) {
    read_status =
        Status::Corruption("page read past end of file: " + file->path());
  }
  if (!read_status.ok()) return read_status;

  lock.lock();
  const uint64_t evictions_before = evictions_;
  Frame* frame = nullptr;
  it = index_.find(key);
  if (it != index_.end()) {
    // Raced with another fetcher; use the cached frame.
    frames_.splice(frames_.begin(), frames_, it->second);
    frame = &*it->second;
    ++hits_;
    if (io != nullptr) ++io->hits;
  } else {
    frames_.push_front(Frame{key, std::move(data), 0});
    index_[key] = frames_.begin();
    frame = &frames_.front();
    cached_bytes_ += frame->data.size();
    ++misses_;
    if (io != nullptr) ++io->misses;
  }
  if (frame->pins++ == 0) ++pinned_pages_;
  EvictToBudgetLocked();
  if (io != nullptr) io->evictions += evictions_ - evictions_before;
  out->pool_ = this;
  out->frame_ = frame;
  if (io != nullptr) {
    io->micros += std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  }
  return Status::OK();
}

Status SharedBufferPool::ReadRange(uint32_t file_id, uint64_t offset,
                                   uint64_t length, std::string* out,
                                   PageIoCounters* io) {
  out->clear();
  out->reserve(length);
  uint64_t cursor = offset;
  uint64_t remaining = length;
  PageRef ref;
  while (remaining > 0) {
    const uint64_t page_id = cursor / page_size_;
    const uint64_t page_offset = cursor % page_size_;
    KSP_RETURN_NOT_OK(Fetch(file_id, page_id, &ref, io));
    std::string_view page = ref.data();
    if (page_offset >= page.size()) {
      return Status::Corruption("read past end of page");
    }
    const uint64_t take =
        std::min<uint64_t>(remaining, page.size() - page_offset);
    out->append(page.substr(page_offset, take));
    cursor += take;
    remaining -= take;
  }
  return Status::OK();
}

void SharedBufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->key != kOrphanKey && it->pins == 0) {
      index_.erase(it->key);
      cached_bytes_ -= it->data.size();
      ++evictions_;
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

SharedBufferPool::Stats SharedBufferPool::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.cached_pages = frames_.size();
  stats.cached_bytes = cached_bytes_;
  stats.pinned_pages = pinned_pages_;
  stats.budget_bytes = budget_bytes_;
  return stats;
}

void SharedBufferPool::EvictToBudgetLocked() {
  auto it = frames_.end();
  while (cached_bytes_ > budget_bytes_ && it != frames_.begin()) {
    --it;
    if (it->pins > 0 || it->key == kOrphanKey) continue;
    index_.erase(it->key);
    cached_bytes_ -= it->data.size();
    ++evictions_;
    it = frames_.erase(it);
  }
}

void SharedBufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  KSP_CHECK(frame->pins > 0) << "unbalanced buffer-pool unpin";
  if (--frame->pins == 0) {
    --pinned_pages_;
    if (frame->key == kOrphanKey) {
      for (auto it = frames_.begin(); it != frames_.end(); ++it) {
        if (&*it == frame) {
          frames_.erase(it);
          break;
        }
      }
    }
  }
}

}  // namespace ksp
