#include "core/explain.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "core/executor.h"
#include "rdf/knowledge_base.h"

namespace ksp {

namespace {

/// Compact fixed notation: EXPLAIN values are scores/distances where six
/// significant digits are plenty and "inf" must render readably.
std::string Num(double value) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// JSON variant: infinities become null (JSON has no Inf literal).
std::string JsonNum(double value) {
  if (std::isinf(value) || std::isnan(value)) return "null";
  return Num(value);
}

}  // namespace

const char* CandidateOutcomeName(CandidateOutcome outcome) {
  switch (outcome) {
    case CandidateOutcome::kInTopK:
      return "in_topk";
    case CandidateOutcome::kComputed:
      return "computed";
    case CandidateOutcome::kUnqualified:
      return "unqualified";
    case CandidateOutcome::kPrunedRule1:
      return "pruned_rule1";
    case CandidateOutcome::kPrunedRule2:
      return "pruned_rule2";
    case CandidateOutcome::kPrunedRule3:
      return "pruned_rule3";
    case CandidateOutcome::kPrunedRule4:
      return "pruned_rule4";
  }
  return "?";
}

std::string ExplainReport::ToText(const KnowledgeBase* kb) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "EXPLAIN %s k=%u location=(%.6g, %.6g) keywords=%zu\n",
                KspAlgorithmName(algorithm), query.k, query.location.x,
                query.location.y, query.keywords.size());
  out += line;
  std::snprintf(line, sizeof(line), "%5s  %-5s %-6s %10s %10s %10s %10s  %s\n",
                "order", "kind", "id", "spatial", "theta", "looseness",
                "score", "outcome");
  out += line;
  for (const ExplainCandidate& c : candidates) {
    std::snprintf(line, sizeof(line),
                  "%5u  %-5s %-6" PRIu64 " %10s %10s %10s %10s  %s\n",
                  c.order, c.is_node ? "node" : "place",
                  c.is_node ? static_cast<uint64_t>(c.node_id)
                            : static_cast<uint64_t>(c.place),
                  Num(c.spatial_distance).c_str(), Num(c.threshold).c_str(),
                  Num(c.looseness).c_str(),
                  c.outcome == CandidateOutcome::kInTopK ||
                          c.outcome == CandidateOutcome::kComputed
                      ? Num(c.score).c_str()
                      : "-",
                  CandidateOutcomeName(c.outcome));
    out += line;
  }
  out += "terminated: " + termination + "\n";
  if (!storage_backend.ok()) {
    out += "storage backend: " + storage_backend.ToString() + "\n";
  }
  std::snprintf(line, sizeof(line),
                "counters: tqsp=%" PRIu64 " rtree_nodes=%" PRIu64
                " reach=%" PRIu64 " pruned r1=%" PRIu64 " r2=%" PRIu64
                " r3=%" PRIu64 " r4=%" PRIu64 "\n",
                stats.tqsp_computations, stats.rtree_nodes_accessed,
                stats.reachability_queries, stats.pruned_unqualified,
                stats.pruned_dynamic_bound, stats.pruned_alpha_place,
                stats.pruned_alpha_node);
  out += line;
  out += "result:\n";
  for (size_t i = 0; i < result.entries.size(); ++i) {
    const KspResultEntry& entry = result.entries[i];
    std::snprintf(line, sizeof(line),
                  "  %zu. place %u%s%s L=%s S=%s f=%s\n", i + 1,
                  entry.place, kb != nullptr ? " " : "",
                  kb != nullptr
                      ? kb->VertexIri(kb->place_vertex(entry.place)).c_str()
                      : "",
                  Num(entry.looseness).c_str(),
                  Num(entry.spatial_distance).c_str(),
                  Num(entry.score).c_str());
    out += line;
  }
  return out;
}

std::string ExplainReport::ToJson() const {
  std::string out = "{\"algorithm\": \"";
  out += KspAlgorithmName(algorithm);
  out += "\", \"k\": " + std::to_string(query.k);
  out += ", \"location\": [" + Num(query.location.x) + ", " +
         Num(query.location.y) + "]";
  out += ", \"num_keywords\": " + std::to_string(query.keywords.size());
  out += ", \"candidates\": [";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const ExplainCandidate& c = candidates[i];
    if (i > 0) out += ", ";
    out += "{\"order\": " + std::to_string(c.order);
    out += ", \"kind\": \"";
    out += c.is_node ? "node" : "place";
    out += "\", \"id\": " +
           std::to_string(c.is_node ? static_cast<uint64_t>(c.node_id)
                                    : static_cast<uint64_t>(c.place));
    out += ", \"spatial\": " + JsonNum(c.spatial_distance);
    out += ", \"threshold\": " + JsonNum(c.threshold);
    out += ", \"score_bound\": " + JsonNum(c.score_bound);
    out += ", \"looseness\": " + JsonNum(c.looseness);
    out += ", \"score\": " + JsonNum(c.score);
    out += ", \"outcome\": \"";
    out += CandidateOutcomeName(c.outcome);
    out += "\"}";
  }
  out += "], \"termination\": \"" + termination + "\"";
  out += ", \"storage_backend\": \"" +
         JsonEscape(storage_backend.ok() ? "ok" : storage_backend.ToString()) +
         "\"";
  out += ", \"result\": [";
  for (size_t i = 0; i < result.entries.size(); ++i) {
    const KspResultEntry& entry = result.entries[i];
    if (i > 0) out += ", ";
    out += "{\"place\": " + std::to_string(entry.place);
    out += ", \"looseness\": " + JsonNum(entry.looseness);
    out += ", \"spatial\": " + JsonNum(entry.spatial_distance);
    out += ", \"score\": " + JsonNum(entry.score) + "}";
  }
  out += "]}";
  return out;
}

Result<ExplainReport> QueryExecutor::Explain(const KspQuery& query,
                                             KspAlgorithm algorithm) {
  if (algorithm != KspAlgorithm::kBsp && algorithm != KspAlgorithm::kSpp &&
      algorithm != KspAlgorithm::kSp) {
    return Status::Unimplemented(
        "EXPLAIN covers the place-at-a-time algorithms (BSP, SPP, SP); "
        "the TA baseline's merged streams have no per-candidate decision "
        "sequence");
  }
  ExplainReport report;
  report.algorithm = algorithm;
  report.query = query;
  report.termination = "exhausted";
  report.storage_backend = db_->storage_backend_status();
  if (!report.storage_backend.ok()) {
    // The query would be rejected by CheckPrepared; report the backend
    // error as the (only) finding instead of failing the EXPLAIN itself.
    report.termination = "storage_backend_error";
    return report;
  }

  // The report doubles as the collector: the Execute* loops append
  // candidate rows while explain_ is set.
  explain_ = &report;
  explain_order_ = 0;
  Result<KspResult> result = [&] {
    switch (algorithm) {
      case KspAlgorithm::kBsp:
        return ExecuteBsp(query, &report.stats);
      case KspAlgorithm::kSpp:
        return ExecuteSpp(query, &report.stats);
      default:
        return ExecuteSp(query, &report.stats);
    }
  }();
  explain_ = nullptr;
  if (!result.ok()) return result.status();
  report.result = std::move(*result);

  // Promote the candidates that made the final top-k.
  for (const KspResultEntry& entry : report.result.entries) {
    for (ExplainCandidate& c : report.candidates) {
      if (!c.is_node && c.place == entry.place &&
          c.outcome == CandidateOutcome::kComputed) {
        c.outcome = CandidateOutcome::kInTopK;
      }
    }
  }
  return report;
}

}  // namespace ksp
