#include "core/trace.h"

#include "common/logging.h"

namespace ksp {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kRtreeNn:
      return "rtree_nn";
    case TracePhase::kBfsExpand:
      return "bfs_expand";
    case TracePhase::kTqspCompute:
      return "tqsp_compute";
    case TracePhase::kRule1Prune:
      return "rule1_prune";
    case TracePhase::kRule2Prune:
      return "rule2_prune";
    case TracePhase::kDocFetch:
      return "doc_fetch";
    case TracePhase::kCacheLookup:
      return "cache_lookup";
    case TracePhase::kPageIo:
      return "page_io";
    case TracePhase::kShardDispatch:
      return "shard_dispatch";
  }
  return "?";
}

void QueryTrace::Clear() {
  spans_.clear();
  open_.clear();
  epoch_set_ = false;
  for (size_t i = 0; i < kNumTracePhases; ++i) {
    inclusive_us_[i] = 0;
    exclusive_us_[i] = 0;
    count_[i] = 0;
    items_[i] = 0;
  }
}

int64_t QueryTrace::NowUs() {
  const Clock::time_point now = Clock::now();
  if (!epoch_set_) {
    epoch_ = now;
    epoch_set_ = true;
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(now - epoch_)
      .count();
}

void QueryTrace::BeginSpan() {
  open_.push_back(OpenSpan{NowUs(), 0});
}

void QueryTrace::EndSpan(TracePhase phase, uint64_t items) {
  KSP_DCHECK(!open_.empty());
  const OpenSpan open = open_.back();
  open_.pop_back();
  const int64_t duration = NowUs() - open.start_us;
  const size_t p = static_cast<size_t>(phase);
  inclusive_us_[p] += duration;
  exclusive_us_[p] += duration - open.child_us;
  ++count_[p];
  items_[p] += items;
  if (!open_.empty()) open_.back().child_us += duration;
  if (record_spans_) {
    spans_.push_back(Span{phase, open.start_us, duration,
                          static_cast<uint32_t>(open_.size()), items});
  }
}

void QueryTrace::MergeAggregates(const QueryTrace& other) {
  for (size_t p = 0; p < kNumTracePhases; ++p) {
    inclusive_us_[p] += other.inclusive_us_[p];
    exclusive_us_[p] += other.exclusive_us_[p];
    count_[p] += other.count_[p];
    items_[p] += other.items_[p];
  }
}

void QueryTrace::AddChildTime(TracePhase phase, int64_t us,
                              uint64_t items) {
  if (us == 0 && items == 0) return;
  const size_t p = static_cast<size_t>(phase);
  inclusive_us_[p] += us;
  exclusive_us_[p] += us;
  ++count_[p];
  items_[p] += items;
  // Behave as a closed child of the innermost open span so its
  // exclusive time sheds the externally measured interval.
  if (!open_.empty()) open_.back().child_us += us;
  if (record_spans_) {
    // Synthesized after the fact: anchor at the current instant with the
    // measured duration (start within the enclosing span, not exact).
    spans_.push_back(Span{phase, NowUs(), us,
                          static_cast<uint32_t>(open_.size()), items});
  }
}

void QueryTrace::RecordEvent(TracePhase phase, uint64_t items) {
  const size_t p = static_cast<size_t>(phase);
  ++count_[p];
  items_[p] += items;
  if (record_spans_) {
    spans_.push_back(Span{phase, NowUs(), 0,
                          static_cast<uint32_t>(open_.size()), items});
  }
}

std::string QueryTrace::ToJson() const {
  std::string out = "{\"spans\": [";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    if (i > 0) out += ", ";
    out += "{\"phase\": \"";
    out += TracePhaseName(span.phase);
    out += "\", \"start_us\": " + std::to_string(span.start_us);
    out += ", \"duration_us\": " + std::to_string(span.duration_us);
    out += ", \"depth\": " + std::to_string(span.depth);
    out += ", \"items\": " + std::to_string(span.items) + "}";
  }
  out += "], \"phase_totals_us\": {";
  bool first = true;
  for (size_t p = 0; p < kNumTracePhases; ++p) {
    if (count_[p] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += TracePhaseName(static_cast<TracePhase>(p));
    out += "\": {\"inclusive_us\": " + std::to_string(inclusive_us_[p]);
    out += ", \"exclusive_us\": " + std::to_string(exclusive_us_[p]);
    out += ", \"count\": " + std::to_string(count_[p]);
    out += ", \"items\": " + std::to_string(items_[p]) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace ksp
