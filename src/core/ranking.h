#ifndef KSP_CORE_RANKING_H_
#define KSP_CORE_RANKING_H_

#include <limits>
#include <string>

namespace ksp {

/// Monotone aggregate ranking function f(L(T_p), S(q, p)) of Definition 3.
/// Two instances from the paper are provided:
///   Product:     f = L × S              (Equation 2, the default)
///   WeightedSum: f = β·L + (1-β)·S      (Equation 1)
/// All kSP algorithms are parameterized by this class; the termination and
/// pruning logic derives the required bounds from it instead of hardcoding
/// Equation 2:
///   - MinScoreGivenSpatialDistance(s): lower bound of f over places at
///     spatial distance ≥ s, using L ≥ 1 (BSP's termination, line 7).
///   - LoosenessThreshold(θ, s): the Lw of Definition 4 — the largest L
///     for which a place at distance s could still beat score θ.
class RankingFunction {
 public:
  /// f = L × S (parameterless; Equation 2).
  static RankingFunction Product() { return RankingFunction(true, 0.0); }

  /// f = β·L + (1-β)·S with β in (0, 1] (Equation 1).
  static RankingFunction WeightedSum(double beta) {
    return RankingFunction(false, beta);
  }

  double Score(double looseness, double spatial_distance) const {
    if (product_) return looseness * spatial_distance;
    return beta_ * looseness + (1.0 - beta_) * spatial_distance;
  }

  /// Lower bound of Score over all places with spatial distance ≥ s,
  /// given L(T_p) ≥ 1.
  double MinScoreGivenSpatialDistance(double s) const {
    if (product_) return s;  // L ≥ 1 so f = L·S ≥ S.
    return beta_ + (1.0 - beta_) * s;
  }

  /// Lw(T_p): a TQSP at spatial distance s with looseness ≥ Lw cannot
  /// score below θ. Returns +inf when every looseness beats θ (s = 0 under
  /// the product ranking).
  double LoosenessThreshold(double theta, double s) const {
    if (product_) {
      if (s <= 0.0) return std::numeric_limits<double>::infinity();
      return theta / s;
    }
    return (theta - (1.0 - beta_) * s) / beta_;
  }

  bool is_product() const { return product_; }
  double beta() const { return beta_; }

  std::string ToString() const {
    return product_ ? "L*S" : "beta*L+(1-beta)*S";
  }

 private:
  RankingFunction(bool product, double beta)
      : product_(product), beta_(beta) {}

  bool product_;
  double beta_;
};

}  // namespace ksp

#endif  // KSP_CORE_RANKING_H_
