#include "core/database.h"

#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace ksp {

KspDatabase::KspDatabase(const KnowledgeBase* kb, KspOptions options)
    : kb_(kb),
      options_(options),
      inverted_(options.inverted_index != nullptr
                    ? options.inverted_index
                    : &kb->inverted_index()) {
  KSP_CHECK(kb_ != nullptr);
}

void KspDatabase::BuildRTree() {
  Timer timer;
  timer.Start();
  const uint32_t num_places = kb_->num_places();
  if (options_.bulk_load_rtree) {
    std::vector<std::pair<Point, uint64_t>> points;
    points.reserve(num_places);
    for (PlaceId p = 0; p < num_places; ++p) {
      points.emplace_back(kb_->place_location(p), p);
    }
    rtree_ = std::make_shared<const RTree>(
        RTree::BulkLoadStr(std::move(points), options_.rtree_options));
  } else {
    RTree tree(options_.rtree_options);
    for (PlaceId p = 0; p < num_places; ++p) {
      tree.Insert(kb_->place_location(p), p);
    }
    rtree_ = std::make_shared<const RTree>(std::move(tree));
  }
  prep_times_.rtree_s = timer.ElapsedSeconds();
}

void KspDatabase::BuildReachabilityIndex() {
  Timer timer;
  timer.Start();
  reach_ = std::make_shared<const ReachabilityIndex>(
      ReachabilityIndex::Build(kb_->graph(), kb_->documents(),
                               kb_->num_terms(),
                               options_.undirected_edges));
  prep_times_.reachability_s = timer.ElapsedSeconds();
}

void KspDatabase::BuildAlphaIndex(uint32_t alpha) {
  BuildRTreeIfNeeded();
  Timer timer;
  timer.Start();
  alpha_ = std::make_shared<const AlphaIndex>(
      AlphaIndex::Build(*kb_, *rtree_, alpha, options_.undirected_edges));
  prep_times_.alpha_s = timer.ElapsedSeconds();
}

void KspDatabase::PrepareAll(uint32_t alpha) {
  BuildRTree();
  BuildReachabilityIndex();
  BuildAlphaIndex(alpha);
}

Status KspDatabase::SaveIndexes(const std::string& directory) const {
  if (rtree_ != nullptr) {
    KSP_RETURN_NOT_OK(rtree_->Save(directory + "/rtree.bin"));
  }
  if (reach_ != nullptr) {
    KSP_RETURN_NOT_OK(reach_->Save(directory + "/reach.bin"));
  }
  if (alpha_ != nullptr) {
    KSP_RETURN_NOT_OK(alpha_->Save(directory + "/alpha.bin"));
  }
  return Status::OK();
}

Status KspDatabase::LoadIndexes(const std::string& directory) {
  if (auto rtree = RTree::Load(directory + "/rtree.bin"); rtree.ok()) {
    if (rtree->size() != kb_->num_places()) {
      return Status::InvalidArgument(
          "saved R-tree does not match the KB's place count");
    }
    rtree_ = std::make_shared<const RTree>(std::move(*rtree));
  } else if (!rtree.status().IsIOError()) {
    return rtree.status();  // Corruption is an error; absence is not.
  }
  if (auto reach = ReachabilityIndex::Load(directory + "/reach.bin");
      reach.ok()) {
    if (reach->num_base_vertices() != kb_->num_vertices()) {
      return Status::InvalidArgument(
          "saved reachability index does not match the KB");
    }
    reach_ = std::make_shared<const ReachabilityIndex>(std::move(*reach));
  } else if (!reach.status().IsIOError()) {
    return reach.status();
  }
  if (auto alpha = AlphaIndex::Load(directory + "/alpha.bin"); alpha.ok()) {
    // The α entries are keyed by R-tree node ids: the index is only valid
    // together with the R-tree it was built against.
    if (rtree_ == nullptr) {
      return Status::InvalidArgument(
          "alpha.bin present without its matching rtree.bin");
    }
    if (alpha->num_places() != kb_->num_places() ||
        alpha->num_nodes() != rtree_->num_nodes()) {
      return Status::InvalidArgument(
          "saved alpha index does not match the KB / R-tree");
    }
    alpha_ = std::make_shared<const AlphaIndex>(std::move(*alpha));
  } else if (!alpha.status().IsIOError()) {
    return alpha.status();
  }
  return Status::OK();
}

KspQuery KspDatabase::MakeQuery(const Point& location,
                                const std::vector<std::string>& keywords,
                                uint32_t k) const {
  KspQuery query;
  query.location = location;
  query.keywords = kb_->LookupTerms(keywords);
  query.k = k;
  return query;
}

}  // namespace ksp
