#include "core/database.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/io_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "common/varint.h"
#include "storage/disk_graph.h"

namespace ksp {

namespace {

constexpr uint32_t kManifestMagic = 0x4B53504Du;  // "KSPM"
constexpr uint32_t kManifestVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

/// One saved artifact as recorded by the MANIFEST.
struct ManifestEntry {
  std::string name;      // Logical name: "rtree", "reach", "alpha".
  std::string filename;  // Generation-numbered file inside the directory.
  uint32_t format_version = 0;
  uint64_t size_bytes = 0;
  uint32_t crc32c = 0;
};

struct Manifest {
  uint64_t generation = 0;
  std::vector<ManifestEntry> entries;
};

std::string ArtifactFilename(const std::string& name, uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-%06llu.bin",
                static_cast<unsigned long long>(generation));
  return name + buf;
}

Status WriteManifest(FileSystem* fs, const std::string& path,
                     const Manifest& manifest) {
  return WriteArtifactAtomically(
      fs, path, kManifestMagic, kManifestVersion,
      [&manifest](ChecksummedWriter* w) {
        std::string body;
        PutVarint64(&body, manifest.generation);
        PutVarint64(&body, manifest.entries.size());
        for (const ManifestEntry& e : manifest.entries) {
          PutLengthPrefixed(&body, e.name);
          PutLengthPrefixed(&body, e.filename);
          PutFixed32(&body, e.format_version);
          PutFixed64(&body, e.size_bytes);
          PutFixed32(&body, e.crc32c);
        }
        return w->WriteSection(body);
      });
}

Result<Manifest> ReadManifest(FileSystem* fs, const std::string& path) {
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  KSP_RETURN_NOT_OK(reader.Open(kManifestMagic, &version));
  if (version != kManifestVersion) {
    return CorruptionAt(path, 4, "unsupported manifest version " +
                                     std::to_string(version));
  }
  std::string body;
  const uint64_t body_offset = reader.offset();
  KSP_RETURN_NOT_OK(reader.ReadSection(&body));
  KSP_RETURN_NOT_OK(reader.ExpectEnd());

  Manifest manifest;
  size_t pos = 0;
  auto parse = [&]() -> Status {
    KSP_RETURN_NOT_OK(GetVarint64(body, &pos, &manifest.generation));
    uint64_t num_entries = 0;
    KSP_RETURN_NOT_OK(GetVarint64(body, &pos, &num_entries));
    // Every entry needs several bytes; a corrupt count must not drive a
    // huge reserve.
    if (num_entries > body.size() - pos) {
      return Status::Corruption("entry count exceeds manifest size");
    }
    manifest.entries.resize(num_entries);
    for (ManifestEntry& e : manifest.entries) {
      KSP_RETURN_NOT_OK(GetLengthPrefixed(body, &pos, &e.name));
      KSP_RETURN_NOT_OK(GetLengthPrefixed(body, &pos, &e.filename));
      KSP_RETURN_NOT_OK(GetFixed32(body, &pos, &e.format_version));
      KSP_RETURN_NOT_OK(GetFixed64(body, &pos, &e.size_bytes));
      KSP_RETURN_NOT_OK(GetFixed32(body, &pos, &e.crc32c));
      // A filename with a path separator could escape the directory.
      if (e.filename.empty() ||
          e.filename.find('/') != std::string::npos) {
        return Status::Corruption("invalid artifact filename");
      }
    }
    if (pos != body.size()) {
      return Status::Corruption("trailing bytes in manifest");
    }
    return Status::OK();
  };
  Status st = parse();
  if (!st.ok()) return CorruptionAt(path, body_offset + pos, st.message());
  return manifest;
}

}  // namespace

KspDatabase::KspDatabase(const KnowledgeBase* kb, KspOptions options)
    : kb_(kb),
      options_(options),
      inverted_(options.inverted_index != nullptr
                    ? options.inverted_index
                    : &kb->inverted_index()),
      mem_graph_(&kb->graph()),
      mem_postings_(inverted_) {
  KSP_CHECK(kb_ != nullptr);
  if (!options_.place_subset.empty()) {
    // Canonicalize the shard tile: sorted + deduplicated + in-range, so
    // IndexedPlaceCount() and the R-tree insert loop can trust it.
    std::sort(options_.place_subset.begin(), options_.place_subset.end());
    options_.place_subset.erase(std::unique(options_.place_subset.begin(),
                                            options_.place_subset.end()),
                                options_.place_subset.end());
    while (!options_.place_subset.empty() &&
           options_.place_subset.back() >= kb_->num_places()) {
      options_.place_subset.pop_back();
    }
  }
  if (options_.cache_budget_bytes != 0) {
    cache_ =
        std::make_unique<SemanticQueryCache>(options_.cache_budget_bytes);
  }
  // Spill the KB-derived files (graph, postings) up front so their cost
  // lands in construction, not in the first query; the paged R-tree
  // follows each BuildRTree/LoadIndexes.
  RefreshDiskBackend();
}

KspDatabase::~KspDatabase() {
  std::string directory;
  bool remove = false;
  if (disk_ != nullptr) {
    directory = disk_->directory;
    remove = disk_->owns_directory;
  }
  // Accessors drop their pool registrations before the pool dies.
  disk_.reset();
  if (remove && !directory.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(directory, ec);
  }
}

void KspDatabase::RefreshSpatialAccessor() {
  if (rtree_ != nullptr) {
    mem_spatial_ = std::make_unique<MemorySpatialAccessor>(rtree_.get());
  } else {
    mem_spatial_.reset();
  }
}

void KspDatabase::RefreshDiskBackend() {
  if (options_.backend != StorageBackend::kDisk) return;
  disk_status_ = BuildDiskBackendState();
}

Status KspDatabase::BuildDiskBackendState() {
  if (disk_ == nullptr) {
    auto state = std::make_unique<DiskBackendState>(options_);
    if (options_.spill_directory.empty()) {
      std::string templ =
          (std::filesystem::temp_directory_path() / "ksp-spill-XXXXXX")
              .string();
      std::vector<char> buf(templ.begin(), templ.end());
      buf.push_back('\0');
      if (::mkdtemp(buf.data()) == nullptr) {
        return Status::IOError("cannot create spill directory: " + templ);
      }
      state->directory = buf.data();
      state->owns_directory = true;
    } else {
      state->directory = options_.spill_directory;
      std::error_code ec;
      std::filesystem::create_directories(state->directory, ec);
    }
    disk_ = std::move(state);
  }
  const std::string& dir = disk_->directory;
  const uint32_t page_size = options_.buffer_pool_page_size;

  // The adjacency files and postings describe the immutable KB: written
  // once per database.
  if (disk_->graph == nullptr) {
    const std::string out_path = dir + "/graph-out.bin";
    const std::string in_path = dir + "/graph-in.bin";
    KSP_RETURN_NOT_OK(DiskGraph::Write(kb_->graph(), out_path, page_size));
    KSP_RETURN_NOT_OK(
        DiskGraph::WriteTranspose(kb_->graph(), in_path, page_size));
    KSP_ASSIGN_OR_RETURN(
        disk_->graph,
        DiskGraphAccessor::Open(out_path, in_path, &disk_->pool));
  }
  // An externally supplied InvertedIndex (e.g. a caller-managed
  // DiskInvertedIndex) cannot be re-serialized generically; it keeps
  // serving through the memory accessor and does its own I/O.
  if (disk_->postings == nullptr && inverted_ == &kb_->inverted_index()) {
    const std::string path = dir + "/postings.bin";
    KSP_RETURN_NOT_OK(DiskInvertedIndex::Write(kb_->inverted_index(), path));
    KSP_ASSIGN_OR_RETURN(disk_->postings,
                         DiskPostingsAccessor::Open(path, &disk_->pool));
  }
  // Node ids are specific to one R-tree build: rewrite on every change.
  disk_->rtree.reset();
  if (rtree_ != nullptr) {
    const std::string path = dir + "/rtree.bin";
    KSP_RETURN_NOT_OK(PagedRTree::Write(*rtree_, path, page_size));
    KSP_ASSIGN_OR_RETURN(disk_->rtree,
                         PagedRTree::Open(path, &disk_->pool));
  }
  return Status::OK();
}

const GraphAccessor& KspDatabase::graph_accessor() const {
  if (options_.backend == StorageBackend::kDisk && disk_status_.ok() &&
      disk_ != nullptr && disk_->graph != nullptr) {
    return *disk_->graph;
  }
  return mem_graph_;
}

const SpatialAccessor* KspDatabase::spatial_accessor() const {
  if (options_.backend == StorageBackend::kDisk && disk_status_.ok() &&
      disk_ != nullptr && disk_->rtree != nullptr) {
    return disk_->rtree.get();
  }
  return mem_spatial_.get();
}

const PostingsAccessor& KspDatabase::postings_accessor() const {
  if (options_.backend == StorageBackend::kDisk && disk_status_.ok() &&
      disk_ != nullptr && disk_->postings != nullptr) {
    return *disk_->postings;
  }
  return mem_postings_;
}

void KspDatabase::BuildRTree() {
  InvalidateCache();
  index_generation_ = 0;  // In-process builds supersede any loaded generation.
  Timer timer;
  timer.Start();
  // With a place subset (shard tile, §12) only those places are indexed;
  // the loop shape is otherwise identical to the full build.
  const std::vector<PlaceId>& subset = options_.place_subset;
  const uint32_t num_places =
      subset.empty() ? kb_->num_places()
                     : static_cast<uint32_t>(subset.size());
  auto place_at = [&](uint32_t i) {
    return subset.empty() ? static_cast<PlaceId>(i) : subset[i];
  };
  if (options_.bulk_load_rtree) {
    std::vector<std::pair<Point, uint64_t>> points;
    points.reserve(num_places);
    for (uint32_t i = 0; i < num_places; ++i) {
      const PlaceId p = place_at(i);
      points.emplace_back(kb_->place_location(p), p);
    }
    rtree_ = std::make_shared<const RTree>(
        RTree::BulkLoadStr(std::move(points), options_.rtree_options));
  } else {
    RTree tree(options_.rtree_options);
    for (uint32_t i = 0; i < num_places; ++i) {
      const PlaceId p = place_at(i);
      tree.Insert(kb_->place_location(p), p);
    }
    rtree_ = std::make_shared<const RTree>(std::move(tree));
  }
  prep_times_.rtree_s = timer.ElapsedSeconds();
  RefreshSpatialAccessor();
  RefreshDiskBackend();
}

void KspDatabase::BuildReachabilityIndex() {
  InvalidateCache();
  Timer timer;
  timer.Start();
  reach_ = std::make_shared<const ReachabilityIndex>(
      ReachabilityIndex::Build(kb_->graph(), kb_->documents(),
                               kb_->num_terms(),
                               options_.undirected_edges));
  prep_times_.reachability_s = timer.ElapsedSeconds();
}

void KspDatabase::AdoptReachabilityIndex(
    std::shared_ptr<const ReachabilityIndex> reach) {
  KSP_CHECK(reach == nullptr ||
            reach->num_base_vertices() == kb_->num_vertices());
  InvalidateCache();
  reach_ = std::move(reach);
}

void KspDatabase::BuildAlphaIndex(uint32_t alpha) {
  BuildRTreeIfNeeded();
  InvalidateCache();
  Timer timer;
  timer.Start();
  alpha_ = std::make_shared<const AlphaIndex>(
      AlphaIndex::Build(*kb_, *rtree_, alpha, options_.undirected_edges));
  prep_times_.alpha_s = timer.ElapsedSeconds();
}

void KspDatabase::PrepareAll(uint32_t alpha) {
  BuildRTree();
  BuildReachabilityIndex();
  BuildAlphaIndex(alpha);
}

Status KspDatabase::SaveIndexes(const std::string& directory, FileSystem* fs,
                                uint64_t min_generation,
                                uint64_t* saved_generation) const {
  if (fs == nullptr) fs = DefaultFileSystem();
  // Best effort: if this fails, the first artifact write reports the real
  // error (clean IOError with the full path) instead of a silent no-op.
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  const std::string manifest_path = directory + "/" + kManifestName;

  // The next generation number comes from the live manifest. An existing
  // but unreadable manifest refuses the save: guessing a generation could
  // overwrite the files the unreadable manifest still points at.
  uint64_t generation = 1;
  std::vector<std::string> previous_files;
  if (fs->FileExists(manifest_path)) {
    auto previous = ReadManifest(fs, manifest_path);
    if (!previous.ok()) return previous.status();
    generation = previous->generation + 1;
    for (const ManifestEntry& e : previous->entries) {
      previous_files.push_back(e.filename);
    }
  }
  // A caller-imposed floor (sharded save alignment) can only move the
  // generation forward, never reuse a published number.
  if (generation < min_generation) generation = min_generation;

  Manifest manifest;
  manifest.generation = generation;
  auto save_one = [&](const char* name, auto&& save_fn) -> Status {
    ManifestEntry entry;
    entry.name = name;
    entry.filename = ArtifactFilename(name, generation);
    ArtifactInfo info;
    KSP_RETURN_NOT_OK(save_fn(directory + "/" + entry.filename, &info));
    entry.format_version = info.format_version;
    entry.size_bytes = info.size_bytes;
    entry.crc32c = info.crc32c;
    manifest.entries.push_back(std::move(entry));
    return Status::OK();
  };
  if (rtree_ != nullptr) {
    KSP_RETURN_NOT_OK(save_one("rtree", [&](const std::string& p,
                                            ArtifactInfo* info) {
      return rtree_->Save(p, fs, info);
    }));
  }
  if (reach_ != nullptr) {
    KSP_RETURN_NOT_OK(save_one("reach", [&](const std::string& p,
                                            ArtifactInfo* info) {
      return reach_->Save(p, fs, info);
    }));
  }
  if (alpha_ != nullptr) {
    KSP_RETURN_NOT_OK(save_one("alpha", [&](const std::string& p,
                                            ArtifactInfo* info) {
      return alpha_->Save(p, fs, info);
    }));
  }

  // Publish: until this rename lands, readers still see the previous
  // generation in full.
  KSP_RETURN_NOT_OK(WriteManifest(fs, manifest_path, manifest));

  // Garbage-collect the superseded generation (best effort — a leftover
  // file is harmless, the manifest no longer references it).
  for (const std::string& old_file : previous_files) {
    fs->RemoveFile(directory + "/" + old_file);
  }
  if (saved_generation != nullptr) *saved_generation = generation;
  return Status::OK();
}

Status KspDatabase::LoadIndexes(const std::string& directory,
                                FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  // Whatever happens next, the caches describe the OLD index generation:
  // drop them before anything is replaced (on failure the DB ends up
  // unprepared, so an empty cache is correct there too).
  InvalidateCache();
  // Any failure leaves the database fully unprepared: a half-loaded index
  // set could silently mix generations.
  auto fail = [this](Status st) {
    rtree_.reset();
    reach_.reset();
    alpha_.reset();
    index_generation_ = 0;
    RefreshSpatialAccessor();
    RefreshDiskBackend();
    return st;
  };

  const std::string manifest_path = directory + "/" + kManifestName;
  if (!fs->FileExists(manifest_path)) {
    return LoadLegacyLayout(directory, fs);
  }
  auto manifest = ReadManifest(fs, manifest_path);
  if (!manifest.ok()) return fail(manifest.status());

  // Verify every artifact against the manifest BEFORE loading any codec,
  // so a partially written or stale directory is rejected atomically.
  for (const ManifestEntry& e : manifest->entries) {
    const std::string path = directory + "/" + e.filename;
    if (!fs->FileExists(path)) {
      return fail(Status::IOError(
          "manifest references missing artifact: " + path));
    }
    ArtifactInfo info;
    Status st = ChecksumWholeFile(fs, path, &info);
    if (!st.ok()) return fail(st);
    if (info.size_bytes != e.size_bytes || info.crc32c != e.crc32c) {
      return fail(Status::Corruption(
          "artifact does not match its manifest entry (stale manifest?): " +
          path));
    }
  }

  rtree_.reset();
  reach_.reset();
  alpha_.reset();
  for (const ManifestEntry& e : manifest->entries) {
    const std::string path = directory + "/" + e.filename;
    if (e.name == "rtree") {
      auto rtree = RTree::Load(path, fs);
      if (!rtree.ok()) return fail(rtree.status());
      if (rtree->size() != IndexedPlaceCount()) {
        return fail(Status::InvalidArgument(
            "saved R-tree does not match the indexed place count"));
      }
      rtree_ = std::make_shared<const RTree>(std::move(*rtree));
    } else if (e.name == "reach") {
      auto reach = ReachabilityIndex::Load(path, fs);
      if (!reach.ok()) return fail(reach.status());
      if (reach->num_base_vertices() != kb_->num_vertices()) {
        return fail(Status::InvalidArgument(
            "saved reachability index does not match the KB"));
      }
      reach_ = std::make_shared<const ReachabilityIndex>(std::move(*reach));
    } else if (e.name == "alpha") {
      auto alpha = AlphaIndex::Load(path, fs);
      if (!alpha.ok()) return fail(alpha.status());
      // The α entries are keyed by R-tree node ids: the index is only
      // valid together with the R-tree it was built against.
      if (rtree_ == nullptr) {
        return fail(Status::InvalidArgument(
            "alpha index present without its matching R-tree"));
      }
      if (alpha->num_places() != kb_->num_places() ||
          alpha->num_nodes() != rtree_->num_nodes()) {
        return fail(Status::InvalidArgument(
            "saved alpha index does not match the KB / R-tree"));
      }
      alpha_ = std::make_shared<const AlphaIndex>(std::move(*alpha));
    } else {
      return fail(Status::Corruption(
          "manifest lists unknown artifact \"" + e.name + "\""));
    }
  }
  index_generation_ = manifest->generation;
  RefreshSpatialAccessor();
  RefreshDiskBackend();
  return Status::OK();
}

Status KspDatabase::LoadLegacyLayout(const std::string& directory,
                                     FileSystem* fs) {
  index_generation_ = 0;  // Pre-manifest layouts carry no generation.
  auto fail = [this](Status st) {
    rtree_.reset();
    reach_.reset();
    alpha_.reset();
    RefreshSpatialAccessor();
    RefreshDiskBackend();
    return st;
  };
  // Pre-manifest layout: fixed filenames, no cross-file verification.
  // Absent files leave the corresponding index unbuilt.
  if (fs->FileExists(directory + "/rtree.bin")) {
    auto rtree = RTree::Load(directory + "/rtree.bin", fs);
    if (!rtree.ok()) return fail(rtree.status());
    if (rtree->size() != IndexedPlaceCount()) {
      return fail(Status::InvalidArgument(
          "saved R-tree does not match the indexed place count"));
    }
    rtree_ = std::make_shared<const RTree>(std::move(*rtree));
  }
  if (fs->FileExists(directory + "/reach.bin")) {
    auto reach = ReachabilityIndex::Load(directory + "/reach.bin", fs);
    if (!reach.ok()) return fail(reach.status());
    if (reach->num_base_vertices() != kb_->num_vertices()) {
      return fail(Status::InvalidArgument(
          "saved reachability index does not match the KB"));
    }
    reach_ = std::make_shared<const ReachabilityIndex>(std::move(*reach));
  }
  if (fs->FileExists(directory + "/alpha.bin")) {
    auto alpha = AlphaIndex::Load(directory + "/alpha.bin", fs);
    if (!alpha.ok()) return fail(alpha.status());
    if (rtree_ == nullptr) {
      return fail(Status::InvalidArgument(
          "alpha.bin present without its matching rtree.bin"));
    }
    if (alpha->num_places() != kb_->num_places() ||
        alpha->num_nodes() != rtree_->num_nodes()) {
      return fail(Status::InvalidArgument(
          "saved alpha index does not match the KB / R-tree"));
    }
    alpha_ = std::make_shared<const AlphaIndex>(std::move(*alpha));
  }
  RefreshSpatialAccessor();
  RefreshDiskBackend();
  return Status::OK();
}

KspQuery KspDatabase::MakeQuery(const Point& location,
                                const std::vector<std::string>& keywords,
                                uint32_t k) const {
  KspQuery query;
  query.location = location;
  query.keywords = kb_->LookupTerms(keywords);
  query.k = k;
  return query;
}

}  // namespace ksp
