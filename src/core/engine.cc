#include "core/engine.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "common/timer.h"

namespace ksp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Ordering used by the top-k heap: ascending (score, place).
bool EntryBetter(const KspResultEntry& a, const KspResultEntry& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.place < b.place;
}
}  // namespace

std::vector<VertexId> SemanticPlaceTree::TreeVertices() const {
  std::vector<VertexId> vertices;
  vertices.push_back(root);
  for (const auto& match : matches) {
    vertices.insert(vertices.end(), match.path.begin(), match.path.end());
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  return vertices;
}

double TopKHeap::Threshold() const {
  if (k_ == 0) return -kInf;  // Nothing can enter a k = 0 result.
  return Full() ? entries_.front().score : kInf;
}

void TopKHeap::Add(KspResultEntry entry) {
  if (k_ == 0) return;
  auto worse = [](const KspResultEntry& a, const KspResultEntry& b) {
    return EntryBetter(a, b);  // max-heap on (score, place)
  };
  if (!Full()) {
    entries_.push_back(std::move(entry));
    std::push_heap(entries_.begin(), entries_.end(), worse);
    return;
  }
  if (EntryBetter(entry, entries_.front())) {
    std::pop_heap(entries_.begin(), entries_.end(), worse);
    entries_.back() = std::move(entry);
    std::push_heap(entries_.begin(), entries_.end(), worse);
  }
}

KspResult TopKHeap::Finish() && {
  KspResult result;
  result.entries = std::move(entries_);
  std::sort(result.entries.begin(), result.entries.end(), EntryBetter);
  return result;
}

KspEngine::KspEngine(const KnowledgeBase* kb, KspEngineOptions options)
    : kb_(kb),
      options_(options),
      inverted_(options.inverted_index != nullptr
                    ? options.inverted_index
                    : &kb->inverted_index()) {
  KSP_CHECK(kb_ != nullptr);
  visit_epoch_.assign(kb_->num_vertices(), 0);
  bfs_parent_.assign(kb_->num_vertices(), kInvalidVertex);
}

std::unique_ptr<KspEngine> KspEngine::Clone() const {
  auto clone = std::make_unique<KspEngine>(kb_, options_);
  clone->rtree_ = rtree_;
  clone->reach_ = reach_;
  clone->alpha_ = alpha_;
  clone->prep_times_ = prep_times_;
  return clone;
}

void KspEngine::BuildRTree() {
  Timer timer;
  timer.Start();
  const uint32_t num_places = kb_->num_places();
  if (options_.bulk_load_rtree) {
    std::vector<std::pair<Point, uint64_t>> points;
    points.reserve(num_places);
    for (PlaceId p = 0; p < num_places; ++p) {
      points.emplace_back(kb_->place_location(p), p);
    }
    rtree_ = std::make_shared<const RTree>(
        RTree::BulkLoadStr(std::move(points), options_.rtree_options));
  } else {
    RTree tree(options_.rtree_options);
    for (PlaceId p = 0; p < num_places; ++p) {
      tree.Insert(kb_->place_location(p), p);
    }
    rtree_ = std::make_shared<const RTree>(std::move(tree));
  }
  prep_times_.rtree_s = timer.ElapsedSeconds();
}

void KspEngine::EnsureRTree() {
  if (rtree_ == nullptr) BuildRTree();
}

void KspEngine::BuildReachabilityIndex() {
  Timer timer;
  timer.Start();
  reach_ = std::make_shared<const ReachabilityIndex>(
      ReachabilityIndex::Build(kb_->graph(), kb_->documents(),
                               kb_->num_terms(),
                               options_.undirected_edges));
  prep_times_.reachability_s = timer.ElapsedSeconds();
}

void KspEngine::BuildAlphaIndex(uint32_t alpha) {
  EnsureRTree();
  Timer timer;
  timer.Start();
  alpha_ = std::make_shared<const AlphaIndex>(
      AlphaIndex::Build(*kb_, *rtree_, alpha, options_.undirected_edges));
  prep_times_.alpha_s = timer.ElapsedSeconds();
}

Status KspEngine::SaveIndexes(const std::string& directory) const {
  if (rtree_ != nullptr) {
    KSP_RETURN_NOT_OK(rtree_->Save(directory + "/rtree.bin"));
  }
  if (reach_ != nullptr) {
    KSP_RETURN_NOT_OK(reach_->Save(directory + "/reach.bin"));
  }
  if (alpha_ != nullptr) {
    KSP_RETURN_NOT_OK(alpha_->Save(directory + "/alpha.bin"));
  }
  return Status::OK();
}

Status KspEngine::LoadIndexes(const std::string& directory) {
  if (auto rtree = RTree::Load(directory + "/rtree.bin"); rtree.ok()) {
    if (rtree->size() != kb_->num_places()) {
      return Status::InvalidArgument(
          "saved R-tree does not match the KB's place count");
    }
    rtree_ = std::make_shared<const RTree>(std::move(*rtree));
  } else if (!rtree.status().IsIOError()) {
    return rtree.status();  // Corruption is an error; absence is not.
  }
  if (auto reach = ReachabilityIndex::Load(directory + "/reach.bin");
      reach.ok()) {
    if (reach->num_base_vertices() != kb_->num_vertices()) {
      return Status::InvalidArgument(
          "saved reachability index does not match the KB");
    }
    reach_ = std::make_shared<const ReachabilityIndex>(std::move(*reach));
  } else if (!reach.status().IsIOError()) {
    return reach.status();
  }
  if (auto alpha = AlphaIndex::Load(directory + "/alpha.bin"); alpha.ok()) {
    // The α entries are keyed by R-tree node ids: the index is only valid
    // together with the R-tree it was built against.
    if (rtree_ == nullptr) {
      return Status::InvalidArgument(
          "alpha.bin present without its matching rtree.bin");
    }
    if (alpha->num_places() != kb_->num_places() ||
        alpha->num_nodes() != rtree_->num_nodes()) {
      return Status::InvalidArgument(
          "saved alpha index does not match the KB / R-tree");
    }
    alpha_ = std::make_shared<const AlphaIndex>(std::move(*alpha));
  } else if (!alpha.status().IsIOError()) {
    return alpha.status();
  }
  return Status::OK();
}

void KspEngine::PrepareAll(uint32_t alpha) {
  BuildRTree();
  BuildReachabilityIndex();
  BuildAlphaIndex(alpha);
}

KspQuery KspEngine::MakeQuery(const Point& location,
                              const std::vector<std::string>& keywords,
                              uint32_t k) const {
  KspQuery query;
  query.location = location;
  query.keywords = kb_->LookupTerms(keywords);
  query.k = k;
  return query;
}

Status KspEngine::PrepareContext(const KspQuery& query,
                                 QueryContext* ctx) const {
  ctx->query = &query;
  ctx->terms.clear();
  ctx->vertex_mask.clear();
  ctx->postings.clear();
  ctx->rarest_first.clear();
  ctx->answerable = true;

  // Deduplicate keywords, preserving query order.
  for (TermId t : query.keywords) {
    if (t == kInvalidTerm) {
      ctx->answerable = false;  // Unknown keyword: nothing can cover it.
      continue;
    }
    if (std::find(ctx->terms.begin(), ctx->terms.end(), t) ==
        ctx->terms.end()) {
      ctx->terms.push_back(t);
    }
  }
  if (ctx->terms.size() > 64) {
    return Status::InvalidArgument(
        "at most 64 distinct query keywords are supported");
  }
  const size_t m = ctx->terms.size();
  ctx->full_mask = (m == 64) ? ~uint64_t{0} : ((uint64_t{1} << m) - 1);

  // Load posting lists and build M_q.ψ (vertex -> covered-keyword mask).
  ctx->postings.resize(m);
  for (size_t i = 0; i < m; ++i) {
    KSP_RETURN_NOT_OK(inverted_->GetPostings(ctx->terms[i],
                                             &ctx->postings[i]));
    if (ctx->postings[i].empty()) ctx->answerable = false;
    for (VertexId v : ctx->postings[i]) {
      ctx->vertex_mask[v] |= uint64_t{1} << i;
    }
  }

  ctx->rarest_first.resize(m);
  for (size_t i = 0; i < m; ++i) ctx->rarest_first[i] = i;
  std::sort(ctx->rarest_first.begin(), ctx->rarest_first.end(),
            [&](uint32_t a, uint32_t b) {
              return ctx->postings[a].size() < ctx->postings[b].size();
            });
  return Status::OK();
}

double KspEngine::ComputeTqsp(VertexId root, const QueryContext& ctx,
                              double looseness_threshold,
                              bool use_dynamic_bound,
                              SemanticPlaceTree* tree, QueryStats* stats) {
  const uint32_t num_keywords =
      static_cast<uint32_t>(std::popcount(ctx.full_mask));
  uint64_t remaining = ctx.full_mask;
  double covered_sum = 0.0;

  struct Match {
    uint32_t keyword_index;
    VertexId vertex;
    uint32_t distance;
  };
  std::vector<Match> matches;
  matches.reserve(num_keywords);

  // Epoch-tagged BFS with parent tracking for path reconstruction.
  ++epoch_;
  const uint32_t epoch = epoch_;
  visit_epoch_[root] = epoch;
  bfs_parent_[root] = kInvalidVertex;

  // Queue of (vertex, distance); BFS pops in non-decreasing distance.
  std::vector<std::pair<VertexId, uint32_t>> queue;
  queue.emplace_back(root, 0);
  const Graph& graph = kb_->graph();

  bool pruned = false;
  for (size_t qi = 0; qi < queue.size() && remaining != 0; ++qi) {
    auto [v, dist] = queue[qi];
    if (stats != nullptr) ++stats->vertices_visited;

    if (use_dynamic_bound) {
      // Lemma 1: every undiscovered keyword lies at distance >= dist.
      double lower_bound =
          1.0 + covered_sum +
          static_cast<double>(dist) *
              static_cast<double>(std::popcount(remaining));
      if (lower_bound >= looseness_threshold) {
        pruned = true;  // Pruning Rule 2.
        break;
      }
    }

    uint64_t mask = ctx.MaskOf(v) & remaining;
    if (mask != 0) {
      covered_sum +=
          static_cast<double>(dist) *
          static_cast<double>(std::popcount(mask));
      uint64_t bits = mask;
      while (bits != 0) {
        uint32_t i = static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        matches.push_back(Match{i, v, dist});
      }
      remaining &= ~mask;
      if (remaining == 0) break;
    }

    for (VertexId w : graph.OutNeighbors(v)) {
      if (visit_epoch_[w] != epoch) {
        visit_epoch_[w] = epoch;
        bfs_parent_[w] = v;
        queue.emplace_back(w, dist + 1);
      }
    }
    if (options_.undirected_edges) {
      for (VertexId w : graph.InNeighbors(v)) {
        if (visit_epoch_[w] != epoch) {
          visit_epoch_[w] = epoch;
          bfs_parent_[w] = v;
          queue.emplace_back(w, dist + 1);
        }
      }
    }
  }

  if (pruned && stats != nullptr) ++stats->pruned_dynamic_bound;
  if (remaining != 0) return kInf;  // Pruned or unqualified.

  const double looseness = 1.0 + covered_sum;
  if (tree != nullptr) {
    tree->root = root;
    tree->looseness = looseness;
    tree->matches.clear();
    tree->matches.reserve(matches.size());
    for (const Match& m : matches) {
      SemanticPlaceTree::KeywordMatch km;
      km.term = ctx.terms[m.keyword_index];
      km.vertex = m.vertex;
      km.distance = m.distance;
      // Reconstruct the root-to-vertex path via BFS parents.
      std::vector<VertexId> reversed;
      for (VertexId v = m.vertex; v != kInvalidVertex; v = bfs_parent_[v]) {
        reversed.push_back(v);
        if (v == root) break;
      }
      km.path.assign(reversed.rbegin(), reversed.rend());
      tree->matches.push_back(std::move(km));
    }
  }
  return looseness;
}

bool KspEngine::IsUnqualifiedPlace(VertexId root, const QueryContext& ctx,
                                   QueryStats* stats) const {
  KSP_DCHECK(reach_ != nullptr);
  // Infrequent keywords are the most selective: test them first (§4.1).
  for (uint32_t i : ctx.rarest_first) {
    if (stats != nullptr) ++stats->reachability_queries;
    if (!reach_->Reaches(root, ctx.terms[i])) return true;
  }
  return false;
}

TiedSemanticPlace KspEngine::ComputeTqspAlternatives(PlaceId place,
                                                     const KspQuery& query) {
  TiedSemanticPlace out;
  out.place = place;
  out.root = kb_->place_vertex(place);
  QueryContext ctx;
  Status st = PrepareContext(query, &ctx);
  KSP_CHECK(st.ok()) << st.ToString();
  if (!ctx.answerable) return out;

  const size_t m = ctx.terms.size();
  // min_dist[i] = dg(p, t_i) once discovered.
  std::vector<uint32_t> min_dist(m, kUnreachable);
  std::vector<std::vector<VertexId>> alternatives(m);
  size_t found = 0;

  ++epoch_;
  const uint32_t epoch = epoch_;
  visit_epoch_[out.root] = epoch;
  std::vector<std::pair<VertexId, uint32_t>> queue;
  queue.emplace_back(out.root, 0);
  const Graph& graph = kb_->graph();

  for (size_t qi = 0; qi < queue.size(); ++qi) {
    auto [v, dist] = queue[qi];
    // Stop once all keywords are found and BFS has moved past the last
    // minimum distance (no further ties possible).
    if (found == m) {
      uint32_t max_min = 0;
      for (uint32_t d : min_dist) max_min = std::max(max_min, d);
      if (dist > max_min) break;
    }
    uint64_t mask = ctx.MaskOf(v);
    while (mask != 0) {
      uint32_t i = static_cast<uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      if (min_dist[i] == kUnreachable) {
        min_dist[i] = dist;
        ++found;
      }
      if (dist == min_dist[i]) alternatives[i].push_back(v);
    }
    for (VertexId w : graph.OutNeighbors(v)) {
      if (visit_epoch_[w] != epoch) {
        visit_epoch_[w] = epoch;
        queue.emplace_back(w, dist + 1);
      }
    }
    if (options_.undirected_edges) {
      for (VertexId w : graph.InNeighbors(v)) {
        if (visit_epoch_[w] != epoch) {
          visit_epoch_[w] = epoch;
          queue.emplace_back(w, dist + 1);
        }
      }
    }
  }

  if (found != m) return out;  // Unqualified.
  out.looseness = 1.0;
  out.keywords.resize(m);
  for (size_t i = 0; i < m; ++i) {
    out.looseness += min_dist[i];
    out.keywords[i].term = ctx.terms[i];
    out.keywords[i].distance = min_dist[i];
    out.keywords[i].vertices = std::move(alternatives[i]);
  }
  return out;
}

SemanticPlaceTree KspEngine::ComputeTqspForPlace(PlaceId place,
                                                 const KspQuery& query) {
  SemanticPlaceTree tree;
  tree.place = place;
  tree.root = kb_->place_vertex(place);
  QueryContext ctx;
  Status st = PrepareContext(query, &ctx);
  KSP_CHECK(st.ok()) << st.ToString();
  if (!ctx.answerable) return tree;
  ComputeTqsp(tree.root, ctx, kInf, /*use_dynamic_bound=*/false, &tree,
              nullptr);
  tree.place = place;
  return tree;
}

}  // namespace ksp
