#include "core/engine.h"

#include "common/logging.h"

namespace ksp {

KspEngine::KspEngine(const KnowledgeBase* kb, KspEngineOptions options)
    : db_(std::make_shared<KspDatabase>(kb, options)), exec_(db_.get()) {}

KspEngine::KspEngine(std::shared_ptr<KspDatabase> db)
    : db_(std::move(db)), exec_(db_.get()) {}

std::unique_ptr<KspEngine> KspEngine::Clone() const {
  return std::unique_ptr<KspEngine>(new KspEngine(db_));
}

Result<KspResult> KspEngine::ExecuteBsp(const KspQuery& query,
                                        QueryStats* stats) {
  db_->BuildRTreeIfNeeded();
  return exec_.ExecuteBsp(query, stats);
}

Result<KspResult> KspEngine::ExecuteSpp(const KspQuery& query,
                                        QueryStats* stats) {
  db_->BuildRTreeIfNeeded();
  return exec_.ExecuteSpp(query, stats);
}

Result<KspResult> KspEngine::ExecuteSp(const KspQuery& query,
                                       QueryStats* stats) {
  db_->BuildRTreeIfNeeded();
  return exec_.ExecuteSp(query, stats);
}

Result<KspResult> KspEngine::ExecuteTa(const KspQuery& query,
                                       QueryStats* stats) {
  db_->BuildRTreeIfNeeded();
  return exec_.ExecuteTa(query, stats);
}

Result<KspResult> KspEngine::ExecuteKeywordOnly(const KspQuery& query,
                                                QueryStats* stats) {
  db_->BuildRTreeIfNeeded();
  return exec_.ExecuteKeywordOnly(query, stats);
}

SemanticPlaceTree KspEngine::ComputeTqspForPlace(PlaceId place,
                                                 const KspQuery& query) {
  auto tree = exec_.ComputeTqspForPlace(place, query);
  KSP_CHECK(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

TiedSemanticPlace KspEngine::ComputeTqspAlternatives(PlaceId place,
                                                     const KspQuery& query) {
  auto tied = exec_.ComputeTqspAlternatives(place, query);
  KSP_CHECK(tied.ok()) << tied.status().ToString();
  return std::move(*tied);
}

}  // namespace ksp
