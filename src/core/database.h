#ifndef KSP_CORE_DATABASE_H_
#define KSP_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "alpha/alpha_index.h"
#include "common/result.h"
#include "common/types.h"
#include "core/accessors.h"
#include "core/query.h"
#include "core/ranking.h"
#include "core/semantic_cache.h"
#include "rdf/knowledge_base.h"
#include "reach/reachability_index.h"
#include "spatial/paged_rtree.h"
#include "spatial/rtree.h"
#include "storage/shared_buffer_pool.h"
#include "text/inverted_index.h"

namespace ksp {

/// Which physical representation the query algorithms read indexes
/// from. Both run the exact same algorithm code through the accessor
/// seams (GraphAccessor / SpatialAccessor / PostingsAccessor); results,
/// prune decisions, and committed counters are backend-invariant.
enum class StorageBackend {
  /// Everything memory-resident (CSR graph, RTree, memory postings).
  kMemory,
  /// Graph adjacency, R-tree nodes, and postings are disk pages pulled
  /// through one byte-budgeted SharedBufferPool; only offset tables
  /// stay in memory. For datasets much larger than RAM.
  kDisk,
};

/// BFS frontier representation of the TQSP construction. TEMPORARY A/B
/// knob for the raw-speed pass (DESIGN.md §13): kFlat is the
/// level-synchronous flat-array frontier with neighbor-span prefetch,
/// kLegacy the previous single growing (vertex, distance) queue. Pop
/// order, counters, prune decisions, and results are bit-identical
/// between the two; the knob exists only so bench_smoke.sh can assert
/// flat is not slower, and goes away once flat has baked in.
enum class BfsFrontier {
  kFlat,
  kLegacy,
};

/// Configuration shared by every query on one KspDatabase. The pruning
/// toggles exist for the ablation study; the shipped defaults reproduce
/// the paper's SP setup.
struct KspOptions {
  /// Ranking function f(L, S); Equation 2 (product) by default.
  RankingFunction ranking = RankingFunction::Product();

  /// Follow edges in both directions during TQSP construction and
  /// preprocessing — the paper's §8 future-work variant.
  bool undirected_edges = false;

  /// Pruning Rule 1 (requires BuildReachabilityIndex). Used by SPP and SP.
  bool use_unqualified_pruning = true;
  /// Pruning Rule 2 (dynamic looseness bound). Used by SPP and SP.
  bool use_dynamic_bound_pruning = true;
  /// Pruning Rules 3 and 4 (requires BuildAlphaIndex). Used by SP.
  bool use_alpha_pruning = true;

  /// Per-query wall-clock limit; the paper aborts BSP at 120 s. A run that
  /// hits the limit returns the best places found so far with
  /// stats.completed = false.
  double time_limit_ms = 120000.0;

  /// R-tree construction: STR bulk loading or one-by-one insertion (the
  /// paper inserts one-by-one "for better quality"; Table 5 notes bulk
  /// loading would drastically cut the cost).
  bool bulk_load_rtree = false;
  RTreeOptions rtree_options;

  /// Inverted index over vertex documents used to build M_q.ψ. Defaults to
  /// the KB's in-memory index; point it at a DiskInvertedIndex to mirror
  /// the paper's disk-resident setting. Must outlive the database.
  const InvertedIndex* inverted_index = nullptr;

  /// Byte budget of the cross-query semantic cache (DESIGN.md §9) shared
  /// by every executor of this database. 0 (the default) disables caching
  /// entirely — semantic_cache() is then nullptr and the query path is
  /// byte-identical to the pre-cache code; kCacheUnlimited never evicts.
  size_t cache_budget_bytes = 0;

  /// Storage backend the query algorithms read through (DESIGN.md §10).
  /// kDisk spills the graph, R-tree, and postings to paged files under
  /// `spill_directory` during preparation and serves queries from a
  /// SharedBufferPool of `buffer_pool_budget_bytes`. Reachability labels
  /// and the α-index stay memory-resident on both backends (they are
  /// small bitset-style summaries, not data-proportional pages).
  StorageBackend backend = StorageBackend::kMemory;
  /// Byte budget of the shared page pool (disk backend only).
  uint64_t buffer_pool_budget_bytes = 32ULL << 20;
  /// Page size of the spill files and pool (disk backend only).
  uint32_t buffer_pool_page_size = 4096;
  /// Directory for the disk backend's spill files. Empty (default)
  /// creates a private temp directory, removed when the database is
  /// destroyed; a caller-provided directory is left in place.
  std::string spill_directory;

  /// See BfsFrontier above. Flat is the default; legacy exists for the
  /// bench A/B only.
  BfsFrontier bfs_frontier = BfsFrontier::kFlat;

  /// Restricts the spatial indexes (R-tree, and hence the α-index built
  /// over it) to this set of places — the shard tile of DESIGN.md §12.
  /// Empty (the default) means every KB place. The list is canonicalized
  /// (sorted, deduplicated, out-of-range ids dropped) at construction.
  /// Queries then only ever see the subset's places; the graph, postings
  /// and reachability labels still cover the whole KB (semantics are
  /// per-vertex and unaffected by which places are indexed).
  std::vector<PlaceId> place_subset;
};

/// Wall-clock cost of each preprocessing step (Table 5).
struct PreprocessingTimes {
  double rtree_s = 0.0;
  double reachability_s = 0.0;
  double alpha_s = 0.0;
};

/// The shared, read-only side of the kSP system: one KnowledgeBase plus
/// every built index over it (R-tree, keyword-reachability labels,
/// α-radius word neighborhoods) and the options all queries use.
///
/// Lifecycle: construct, then prepare (Build* / PrepareAll / LoadIndexes),
/// then query through any number of QueryExecutors. Preparation mutates
/// the database and must happen-before (and never concurrently with)
/// query execution; once prepared, every accessor is const and the
/// database is safe to share across threads without synchronization —
/// executors never write to it. Queries on an unprepared database fail
/// with an error instead of building indexes implicitly.
class KspDatabase {
 public:
  explicit KspDatabase(const KnowledgeBase* kb)
      : KspDatabase(kb, KspOptions()) {}
  KspDatabase(const KnowledgeBase* kb, KspOptions options);
  ~KspDatabase();

  KspDatabase(const KspDatabase&) = delete;
  KspDatabase& operator=(const KspDatabase&) = delete;

  /// ---- Index preparation (individually timed; see Table 5) ----

  /// Builds the R-tree over all place vertices. Required by every
  /// query algorithm.
  void BuildRTree();

  /// Builds the R-tree only if absent (safe to call repeatedly).
  void BuildRTreeIfNeeded() {
    if (!has_rtree()) BuildRTree();
  }

  /// Builds the keyword-reachability oracle (Pruning Rule 1).
  void BuildReachabilityIndex();

  /// Shares an already-built reachability oracle instead of building one.
  /// The labels are keyed by KB vertex, not by place subset, so every
  /// shard of one KB can adopt the same index — built (or loaded) once —
  /// rather than paying the label construction K times. The index must
  /// have been built over this KB with the same undirected_edges setting.
  void AdoptReachabilityIndex(
      std::shared_ptr<const ReachabilityIndex> reach);

  /// The shared_ptr behind reachability_index(), for adoption by other
  /// databases over the same KB (nullptr when unbuilt).
  std::shared_ptr<const ReachabilityIndex> reachability_shared() const {
    return reach_;
  }

  /// Builds the α-radius word neighborhoods and their inverted file.
  /// Requires the R-tree (builds it first if absent).
  void BuildAlphaIndex(uint32_t alpha);

  /// Convenience: all of the above.
  void PrepareAll(uint32_t alpha);

  /// Persists every built index into `directory` under a new generation:
  /// each artifact is written atomically (temp file + fsync + rename) to a
  /// generation-numbered name (`rtree-000002.bin`, ...), then a MANIFEST
  /// recording every artifact's name, format version, byte size, and
  /// whole-file crc32c is published — also atomically — as the last step.
  /// A save interrupted at ANY point (crash, ENOSPC, I/O error) leaves the
  /// previous generation's MANIFEST and files untouched and loadable;
  /// only a completed save moves the directory forward, after which the
  /// superseded generation's files are garbage-collected best-effort.
  /// Unbuilt indexes are skipped (the manifest records what was saved).
  /// If a MANIFEST exists but cannot be read, the save is refused rather
  /// than risking the live generation. `fs` defaults to
  /// DefaultFileSystem().
  /// `min_generation` forces the new generation to be at least that
  /// number (still always > the directory's current generation) — the
  /// sharded save uses it to keep all shard directories on one aligned
  /// generation; `saved_generation`, when non-null, receives the
  /// generation the save published.
  Status SaveIndexes(const std::string& directory, FileSystem* fs = nullptr,
                     uint64_t min_generation = 0,
                     uint64_t* saved_generation = nullptr) const;

  /// Restores previously saved indexes, replacing any built ones. With a
  /// MANIFEST present, every listed artifact is verified against its
  /// recorded size and whole-file crc32c BEFORE any index is loaded: a
  /// missing artifact yields IOError, a size/checksum mismatch (stale or
  /// tampered file) yields Corruption. Directories without a MANIFEST
  /// fall back to the pre-manifest fixed names (rtree.bin, reach.bin,
  /// alpha.bin), where absent files simply leave the corresponding index
  /// unbuilt. An index that does not match the KB (or an alpha index
  /// without its R-tree) is rejected with InvalidArgument. On ANY
  /// failure the database is left fully unprepared — no index survives
  /// half-loaded — so subsequent queries fail with InvalidArgument
  /// instead of mixing index generations.
  Status LoadIndexes(const std::string& directory, FileSystem* fs = nullptr);

  /// ---- Read-only access (thread-safe once prepared) ----

  /// True once the R-tree exists — the minimum preparation every query
  /// algorithm requires.
  bool has_rtree() const { return rtree_ != nullptr; }
  /// Requires has_rtree().
  const RTree& rtree() const { return *rtree_; }
  const RTree* rtree_ptr() const { return rtree_.get(); }
  const ReachabilityIndex* reachability_index() const {
    return reach_.get();
  }
  const AlphaIndex* alpha_index() const { return alpha_.get(); }
  PreprocessingTimes preprocessing_times() const { return prep_times_; }
  const KnowledgeBase& kb() const { return *kb_; }
  const KspOptions& options() const { return options_; }
  /// Manifest generation of the last successful LoadIndexes, or 0 for
  /// indexes built in-process / loaded from a pre-manifest directory.
  /// The serving tier stamps this into responses so clients can tell
  /// which index generation answered across a hot swap.
  uint64_t index_generation() const { return index_generation_; }
  const InvertedIndex& inverted_index() const { return *inverted_; }

  /// ---- Storage-backend seams (DESIGN.md §10) ----
  ///
  /// Every query algorithm reads the graph, R-tree, and postings through
  /// these accessors. On kMemory they are zero-copy views of the
  /// in-memory indexes; on kDisk they resolve to the spill-file
  /// implementations once preparation has written them (falling back to
  /// the memory views if the disk backend failed to come up — queries
  /// are then rejected via storage_backend_status()).

  const GraphAccessor& graph_accessor() const;
  /// Nullptr until the R-tree is built/loaded (same condition as
  /// has_rtree()).
  const SpatialAccessor* spatial_accessor() const;
  const PostingsAccessor& postings_accessor() const;

  /// The page pool the disk backend reads through, or nullptr on the
  /// in-memory backend. Thread-safe; exposed for Stats() snapshots.
  SharedBufferPool* buffer_pool() const {
    return disk_ != nullptr ? &disk_->pool : nullptr;
  }

  /// OK when the configured backend can serve queries: always on
  /// kMemory; on kDisk, once preparation has spilled the indexes and
  /// opened the paged accessors. Executors surface this from
  /// CheckPrepared so a failed spill is a clean query error rather than
  /// a silent fallback to memory.
  Status storage_backend_status() const { return disk_status_; }

  /// The shared cross-query semantic cache, or nullptr when
  /// options().cache_budget_bytes == 0. Thread-safe; executors consult it
  /// on the query path and every index (re)build invalidates it.
  SemanticQueryCache* semantic_cache() const { return cache_.get(); }

  /// Resolves keyword strings against the KB vocabulary and builds a
  /// query. Unknown keywords map to kInvalidTerm (the query then has an
  /// empty result, matching Definition 1).
  KspQuery MakeQuery(const Point& location,
                     const std::vector<std::string>& keywords,
                     uint32_t k) const;

 private:
  /// Everything the disk backend owns. The pool is declared first so it
  /// is destroyed last: the accessors deregister their files from it in
  /// their destructors.
  struct DiskBackendState {
    explicit DiskBackendState(const KspOptions& options)
        : pool(options.buffer_pool_budget_bytes,
               options.buffer_pool_page_size) {}

    SharedBufferPool pool;
    /// Spill directory; owned (created + removed by the database) when
    /// KspOptions::spill_directory was empty.
    std::string directory;
    bool owns_directory = false;
    std::unique_ptr<DiskGraphAccessor> graph;
    std::unique_ptr<DiskPostingsAccessor> postings;
    std::unique_ptr<PagedRTree> rtree;
  };

  /// Pre-manifest fallback for LoadIndexes (fixed filenames, no
  /// cross-file verification).
  Status LoadLegacyLayout(const std::string& directory, FileSystem* fs);

  /// Number of places the spatial indexes cover: the place subset when
  /// one is configured, else every KB place.
  uint32_t IndexedPlaceCount() const {
    return options_.place_subset.empty()
               ? kb_->num_places()
               : static_cast<uint32_t>(options_.place_subset.size());
  }

  /// Rebinds mem_spatial_ to the current rtree_; call wherever rtree_
  /// is (re)assigned or dropped.
  void RefreshSpatialAccessor();

  /// On kDisk: spills any not-yet-spilled index to the backend
  /// directory, (re)opens the paged accessors, and records the outcome
  /// in disk_status_. The graph and postings are written once; the
  /// paged R-tree is rewritten whenever rtree_ changes (node ids are
  /// generation-specific). No-op on kMemory.
  void RefreshDiskBackend();
  Status BuildDiskBackendState();

  /// Drops every cached distance/result: index changes invalidate both
  /// cache layers (stale distances would silently corrupt looseness).
  void InvalidateCache() {
    if (cache_ != nullptr) cache_->Invalidate();
  }

  const KnowledgeBase* kb_;
  KspOptions options_;
  const InvertedIndex* inverted_;

  std::shared_ptr<const RTree> rtree_;
  std::shared_ptr<const ReachabilityIndex> reach_;
  std::shared_ptr<const AlphaIndex> alpha_;
  std::unique_ptr<SemanticQueryCache> cache_;
  PreprocessingTimes prep_times_;
  uint64_t index_generation_ = 0;

  /// Always-available zero-copy views of the in-memory indexes (the
  /// kMemory backend, and the fallback while kDisk is not ready).
  MemoryGraphAccessor mem_graph_;
  MemoryPostingsAccessor mem_postings_;
  std::unique_ptr<MemorySpatialAccessor> mem_spatial_;

  std::unique_ptr<DiskBackendState> disk_;
  /// Sticky result of the last RefreshDiskBackend(); OK on kMemory.
  Status disk_status_;
};

}  // namespace ksp

#endif  // KSP_CORE_DATABASE_H_
