#ifndef KSP_CORE_DATABASE_H_
#define KSP_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "alpha/alpha_index.h"
#include "common/result.h"
#include "common/types.h"
#include "core/query.h"
#include "core/ranking.h"
#include "core/semantic_cache.h"
#include "rdf/knowledge_base.h"
#include "reach/reachability_index.h"
#include "spatial/rtree.h"
#include "text/inverted_index.h"

namespace ksp {

/// Configuration shared by every query on one KspDatabase. The pruning
/// toggles exist for the ablation study; the shipped defaults reproduce
/// the paper's SP setup.
struct KspOptions {
  /// Ranking function f(L, S); Equation 2 (product) by default.
  RankingFunction ranking = RankingFunction::Product();

  /// Follow edges in both directions during TQSP construction and
  /// preprocessing — the paper's §8 future-work variant.
  bool undirected_edges = false;

  /// Pruning Rule 1 (requires BuildReachabilityIndex). Used by SPP and SP.
  bool use_unqualified_pruning = true;
  /// Pruning Rule 2 (dynamic looseness bound). Used by SPP and SP.
  bool use_dynamic_bound_pruning = true;
  /// Pruning Rules 3 and 4 (requires BuildAlphaIndex). Used by SP.
  bool use_alpha_pruning = true;

  /// Per-query wall-clock limit; the paper aborts BSP at 120 s. A run that
  /// hits the limit returns the best places found so far with
  /// stats.completed = false.
  double time_limit_ms = 120000.0;

  /// R-tree construction: STR bulk loading or one-by-one insertion (the
  /// paper inserts one-by-one "for better quality"; Table 5 notes bulk
  /// loading would drastically cut the cost).
  bool bulk_load_rtree = false;
  RTreeOptions rtree_options;

  /// Inverted index over vertex documents used to build M_q.ψ. Defaults to
  /// the KB's in-memory index; point it at a DiskInvertedIndex to mirror
  /// the paper's disk-resident setting. Must outlive the database.
  const InvertedIndex* inverted_index = nullptr;

  /// Byte budget of the cross-query semantic cache (DESIGN.md §9) shared
  /// by every executor of this database. 0 (the default) disables caching
  /// entirely — semantic_cache() is then nullptr and the query path is
  /// byte-identical to the pre-cache code; kCacheUnlimited never evicts.
  size_t cache_budget_bytes = 0;
};

/// Wall-clock cost of each preprocessing step (Table 5).
struct PreprocessingTimes {
  double rtree_s = 0.0;
  double reachability_s = 0.0;
  double alpha_s = 0.0;
};

/// The shared, read-only side of the kSP system: one KnowledgeBase plus
/// every built index over it (R-tree, keyword-reachability labels,
/// α-radius word neighborhoods) and the options all queries use.
///
/// Lifecycle: construct, then prepare (Build* / PrepareAll / LoadIndexes),
/// then query through any number of QueryExecutors. Preparation mutates
/// the database and must happen-before (and never concurrently with)
/// query execution; once prepared, every accessor is const and the
/// database is safe to share across threads without synchronization —
/// executors never write to it. Queries on an unprepared database fail
/// with an error instead of building indexes implicitly.
class KspDatabase {
 public:
  explicit KspDatabase(const KnowledgeBase* kb)
      : KspDatabase(kb, KspOptions()) {}
  KspDatabase(const KnowledgeBase* kb, KspOptions options);

  KspDatabase(const KspDatabase&) = delete;
  KspDatabase& operator=(const KspDatabase&) = delete;

  /// ---- Index preparation (individually timed; see Table 5) ----

  /// Builds the R-tree over all place vertices. Required by every
  /// query algorithm.
  void BuildRTree();

  /// Builds the R-tree only if absent (safe to call repeatedly).
  void BuildRTreeIfNeeded() {
    if (!has_rtree()) BuildRTree();
  }

  /// Builds the keyword-reachability oracle (Pruning Rule 1).
  void BuildReachabilityIndex();

  /// Builds the α-radius word neighborhoods and their inverted file.
  /// Requires the R-tree (builds it first if absent).
  void BuildAlphaIndex(uint32_t alpha);

  /// Convenience: all of the above.
  void PrepareAll(uint32_t alpha);

  /// Persists every built index into `directory` under a new generation:
  /// each artifact is written atomically (temp file + fsync + rename) to a
  /// generation-numbered name (`rtree-000002.bin`, ...), then a MANIFEST
  /// recording every artifact's name, format version, byte size, and
  /// whole-file crc32c is published — also atomically — as the last step.
  /// A save interrupted at ANY point (crash, ENOSPC, I/O error) leaves the
  /// previous generation's MANIFEST and files untouched and loadable;
  /// only a completed save moves the directory forward, after which the
  /// superseded generation's files are garbage-collected best-effort.
  /// Unbuilt indexes are skipped (the manifest records what was saved).
  /// If a MANIFEST exists but cannot be read, the save is refused rather
  /// than risking the live generation. `fs` defaults to
  /// DefaultFileSystem().
  Status SaveIndexes(const std::string& directory,
                     FileSystem* fs = nullptr) const;

  /// Restores previously saved indexes, replacing any built ones. With a
  /// MANIFEST present, every listed artifact is verified against its
  /// recorded size and whole-file crc32c BEFORE any index is loaded: a
  /// missing artifact yields IOError, a size/checksum mismatch (stale or
  /// tampered file) yields Corruption. Directories without a MANIFEST
  /// fall back to the pre-manifest fixed names (rtree.bin, reach.bin,
  /// alpha.bin), where absent files simply leave the corresponding index
  /// unbuilt. An index that does not match the KB (or an alpha index
  /// without its R-tree) is rejected with InvalidArgument. On ANY
  /// failure the database is left fully unprepared — no index survives
  /// half-loaded — so subsequent queries fail with InvalidArgument
  /// instead of mixing index generations.
  Status LoadIndexes(const std::string& directory, FileSystem* fs = nullptr);

  /// ---- Read-only access (thread-safe once prepared) ----

  /// True once the R-tree exists — the minimum preparation every query
  /// algorithm requires.
  bool has_rtree() const { return rtree_ != nullptr; }
  /// Requires has_rtree().
  const RTree& rtree() const { return *rtree_; }
  const RTree* rtree_ptr() const { return rtree_.get(); }
  const ReachabilityIndex* reachability_index() const {
    return reach_.get();
  }
  const AlphaIndex* alpha_index() const { return alpha_.get(); }
  PreprocessingTimes preprocessing_times() const { return prep_times_; }
  const KnowledgeBase& kb() const { return *kb_; }
  const KspOptions& options() const { return options_; }
  const InvertedIndex& inverted_index() const { return *inverted_; }

  /// The shared cross-query semantic cache, or nullptr when
  /// options().cache_budget_bytes == 0. Thread-safe; executors consult it
  /// on the query path and every index (re)build invalidates it.
  SemanticQueryCache* semantic_cache() const { return cache_.get(); }

  /// Resolves keyword strings against the KB vocabulary and builds a
  /// query. Unknown keywords map to kInvalidTerm (the query then has an
  /// empty result, matching Definition 1).
  KspQuery MakeQuery(const Point& location,
                     const std::vector<std::string>& keywords,
                     uint32_t k) const;

 private:
  /// Pre-manifest fallback for LoadIndexes (fixed filenames, no
  /// cross-file verification).
  Status LoadLegacyLayout(const std::string& directory, FileSystem* fs);

  /// Drops every cached distance/result: index changes invalidate both
  /// cache layers (stale distances would silently corrupt looseness).
  void InvalidateCache() {
    if (cache_ != nullptr) cache_->Invalidate();
  }

  const KnowledgeBase* kb_;
  KspOptions options_;
  const InvertedIndex* inverted_;

  std::shared_ptr<const RTree> rtree_;
  std::shared_ptr<const ReachabilityIndex> reach_;
  std::shared_ptr<const AlphaIndex> alpha_;
  std::unique_ptr<SemanticQueryCache> cache_;
  PreprocessingTimes prep_times_;
};

}  // namespace ksp

#endif  // KSP_CORE_DATABASE_H_
