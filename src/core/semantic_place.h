#ifndef KSP_CORE_SEMANTIC_PLACE_H_
#define KSP_CORE_SEMANTIC_PLACE_H_

#include <limits>
#include <vector>

#include "common/types.h"

namespace ksp {

/// The Tightest Qualified Semantic Place (TQSP) rooted at one place: per
/// query keyword, the nearest vertex containing it together with the
/// shortest root-to-vertex path (the union of these paths is the tree
/// ⟨p, (v1, v2, ...)⟩ of Definition 1).
struct SemanticPlaceTree {
  struct KeywordMatch {
    TermId term = kInvalidTerm;
    /// Vertex whose document covers the keyword.
    VertexId vertex = kInvalidVertex;
    /// dg(p, term) — hops from the root.
    uint32_t distance = 0;
    /// Shortest path root = path.front() .. path.back() = vertex.
    std::vector<VertexId> path;
  };

  PlaceId place = kInvalidPlace;
  VertexId root = kInvalidVertex;
  /// L(T_p) = 1 + Σ dg(p, t_i); +inf when no qualified tree exists.
  double looseness = std::numeric_limits<double>::infinity();
  std::vector<KeywordMatch> matches;

  bool IsQualified() const {
    return looseness != std::numeric_limits<double>::infinity();
  }

  /// Distinct vertices of the tree (root, keyword vertices, and the path
  /// vertices between them), sorted ascending.
  std::vector<VertexId> TreeVertices() const;
};

/// Footnote 2, option (2): for a place, *all* tied minimum-looseness
/// keyword matches. Every combination of one vertex per keyword yields a
/// distinct qualified semantic place with the same (minimal) looseness.
struct TiedSemanticPlace {
  struct KeywordAlternatives {
    TermId term = kInvalidTerm;
    /// dg(p, term) — shared by all alternatives.
    uint32_t distance = 0;
    /// Every vertex containing `term` at exactly `distance` hops.
    std::vector<VertexId> vertices;
  };

  PlaceId place = kInvalidPlace;
  VertexId root = kInvalidVertex;
  double looseness = std::numeric_limits<double>::infinity();
  std::vector<KeywordAlternatives> keywords;

  bool IsQualified() const {
    return looseness != std::numeric_limits<double>::infinity();
  }

  /// Number of distinct tied TQSPs (product of per-keyword alternatives).
  uint64_t NumDistinctTrees() const {
    if (!IsQualified()) return 0;
    uint64_t count = 1;
    for (const auto& kw : keywords) count *= kw.vertices.size();
    return count;
  }
};

/// One kSP result entry.
struct KspResultEntry {
  PlaceId place = kInvalidPlace;
  double score = 0.0;
  double looseness = 0.0;
  double spatial_distance = 0.0;
  SemanticPlaceTree tree;
};

/// Final kSP result: at most k entries in ascending score order.
struct KspResult {
  std::vector<KspResultEntry> entries;
};

}  // namespace ksp

#endif  // KSP_CORE_SEMANTIC_PLACE_H_
