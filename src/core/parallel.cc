#include "core/parallel.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace ksp {

const char* KspAlgorithmName(KspAlgorithm algorithm) {
  switch (algorithm) {
    case KspAlgorithm::kBsp:
      return "BSP";
    case KspAlgorithm::kSpp:
      return "SPP";
    case KspAlgorithm::kSp:
      return "SP";
    case KspAlgorithm::kTa:
      return "TA";
  }
  return "?";
}

Result<KspResult> ExecuteWith(KspEngine* engine, KspAlgorithm algorithm,
                              const KspQuery& query, QueryStats* stats) {
  switch (algorithm) {
    case KspAlgorithm::kBsp:
      return engine->ExecuteBsp(query, stats);
    case KspAlgorithm::kSpp:
      return engine->ExecuteSpp(query, stats);
    case KspAlgorithm::kSp:
      return engine->ExecuteSp(query, stats);
    case KspAlgorithm::kTa:
      return engine->ExecuteTa(query, stats);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<std::vector<KspResult>> RunQueryBatch(
    KspEngine* engine, const std::vector<KspQuery>& queries,
    const BatchRunOptions& options, QueryStats* total_stats) {
  std::vector<KspResult> results(queries.size());
  if (queries.empty()) return results;
  // Execute* builds the R-tree lazily, which would race across clones:
  // require preparation up front instead.
  engine->BuildRTreeIfNeeded();

  if (options.num_threads <= 1) {
    QueryStats sum;
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats stats;
      KSP_ASSIGN_OR_RETURN(results[i],
                           ExecuteWith(engine, options.algorithm,
                                       queries[i], &stats));
      sum.Accumulate(stats);
    }
    if (total_stats != nullptr) *total_stats = sum;
    return results;
  }

  std::atomic<size_t> next{0};
  std::mutex mu;
  Status first_error;
  QueryStats sum;

  auto worker = [&](KspEngine* worker_engine) {
    QueryStats local_sum;
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= queries.size()) break;
      QueryStats stats;
      auto result =
          ExecuteWith(worker_engine, options.algorithm, queries[i], &stats);
      if (!result.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = result.status();
        break;
      }
      results[i] = std::move(*result);
      local_sum.Accumulate(stats);
    }
    std::lock_guard<std::mutex> lock(mu);
    sum.Accumulate(local_sum);
  };

  std::vector<std::unique_ptr<KspEngine>> clones;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < options.num_threads; ++t) {
    clones.push_back(engine->Clone());
    threads.emplace_back(worker, clones.back().get());
  }
  for (auto& thread : threads) thread.join();

  if (!first_error.ok()) return first_error;
  if (total_stats != nullptr) *total_stats = sum;
  return results;
}

}  // namespace ksp
