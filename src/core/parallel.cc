#include "core/parallel.h"

#include <utility>

#include "common/timer.h"

namespace ksp {

const char* KspAlgorithmName(KspAlgorithm algorithm) {
  switch (algorithm) {
    case KspAlgorithm::kBsp:
      return "BSP";
    case KspAlgorithm::kSpp:
      return "SPP";
    case KspAlgorithm::kSp:
      return "SP";
    case KspAlgorithm::kTa:
      return "TA";
    case KspAlgorithm::kKeywordOnly:
      return "KW";
  }
  return "?";
}

Result<KspResult> ExecuteWith(QueryExecutor* executor,
                              KspAlgorithm algorithm, const KspQuery& query,
                              QueryStats* stats) {
  switch (algorithm) {
    case KspAlgorithm::kBsp:
      return executor->ExecuteBsp(query, stats);
    case KspAlgorithm::kSpp:
      return executor->ExecuteSpp(query, stats);
    case KspAlgorithm::kSp:
      return executor->ExecuteSp(query, stats);
    case KspAlgorithm::kTa:
      return executor->ExecuteTa(query, stats);
    case KspAlgorithm::kKeywordOnly:
      return executor->ExecuteKeywordOnly(query, stats);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<KspResult> ExecuteWith(QueryExecutor* executor,
                              KspAlgorithm algorithm, const KspQuery& query,
                              const QueryExecutionOptions& execution,
                              QueryStats* stats) {
  executor->set_intra_query_threads(execution.intra_query_threads);
  return ExecuteWith(executor, algorithm, query, stats);
}

QueryExecutorPool::QueryExecutorPool(const KspDatabase* db,
                                     size_t num_threads)
    : db_(db), workers_(num_threads == 0 ? 1 : num_threads) {
  for (Worker& worker : workers_) {
    worker.executor = std::make_unique<QueryExecutor>(db_);
    worker.registry = std::make_unique<MetricsRegistry>();
    worker.executor->set_metrics(worker.registry.get());
  }
  for (Worker& worker : workers_) {
    worker.thread = std::thread(&QueryExecutorPool::WorkerLoop, this,
                                &worker);
  }
}

QueryExecutorPool::~QueryExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (Worker& worker : workers_) worker.thread.join();
}

void QueryExecutorPool::WorkerLoop(Worker* worker) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }

    Timer wall;
    wall.Start();
    QueryStats local_sum;
    while (!failed_.load(std::memory_order_relaxed)) {
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries_->size()) break;
      QueryStats stats;
      auto result = ExecuteWith(worker->executor.get(), algorithm_,
                                (*queries_)[i], &stats);
      if (!result.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        if (first_error_.ok()) first_error_ = result.status();
        failed_.store(true, std::memory_order_relaxed);
        break;
      }
      (*results_)[i] = std::move(*result);
      local_sum.Accumulate(stats);
    }
    worker->sum = local_sum;
    worker->wall_ms = wall.ElapsedMillis();

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) work_done_.notify_all();
    }
  }
}

Result<std::vector<KspResult>> QueryExecutorPool::Run(
    const std::vector<KspQuery>& queries, KspAlgorithm algorithm,
    const QueryExecutionOptions& execution, BatchRunStats* stats) {
  for (Worker& worker : workers_) {
    worker.executor->set_intra_query_threads(execution.intra_query_threads);
  }
  return Run(queries, algorithm, stats);
}

Result<std::vector<KspResult>> QueryExecutorPool::Run(
    const std::vector<KspQuery>& queries, KspAlgorithm algorithm,
    BatchRunStats* stats) {
  std::vector<KspResult> results(queries.size());
  if (queries.empty()) {
    if (stats != nullptr) *stats = BatchRunStats{};
    return results;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    queries_ = &queries;
    results_ = &results;
    algorithm_ = algorithm;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = Status::OK();
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] { return active_workers_ == 0; });
    queries_ = nullptr;
    results_ = nullptr;
    if (!first_error_.ok()) return first_error_;
  }

  if (stats != nullptr) {
    *stats = BatchRunStats{};
    stats->worker_wall_ms.reserve(workers_.size());
    for (const Worker& worker : workers_) {
      stats->totals.Accumulate(worker.sum);
      stats->worker_wall_ms.push_back(worker.wall_ms);
      stats->metrics.MergeFrom(worker.registry->Snapshot());
    }
  }
  return results;
}

Result<std::vector<KspResult>> RunQueryBatch(
    const KspDatabase& db, const std::vector<KspQuery>& queries,
    const BatchRunOptions& options, BatchRunStats* stats) {
  if (!db.has_rtree()) {
    return Status::InvalidArgument(
        "RunQueryBatch requires a prepared database (BuildRTree / "
        "PrepareAll / LoadIndexes)");
  }
  std::vector<KspResult> results(queries.size());
  if (queries.empty()) {
    if (stats != nullptr) *stats = BatchRunStats{};
    return results;
  }

  if (options.num_threads <= 1) {
    Timer wall;
    wall.Start();
    MetricsRegistry registry;
    QueryExecutor executor(&db);
    executor.set_metrics(&registry);
    executor.set_intra_query_threads(options.execution.intra_query_threads);
    QueryStats sum;
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats query_stats;
      KSP_ASSIGN_OR_RETURN(results[i],
                           ExecuteWith(&executor, options.algorithm,
                                       queries[i], &query_stats));
      sum.Accumulate(query_stats);
    }
    if (stats != nullptr) {
      *stats = BatchRunStats{};
      stats->totals = sum;
      stats->worker_wall_ms.push_back(wall.ElapsedMillis());
      stats->metrics = registry.Snapshot();
    }
    return results;
  }

  QueryExecutorPool pool(&db, options.num_threads);
  return pool.Run(queries, options.algorithm, options.execution, stats);
}

}  // namespace ksp
