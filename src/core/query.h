#ifndef KSP_CORE_QUERY_H_
#define KSP_CORE_QUERY_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "spatial/geometry.h"

namespace ksp {

/// Which kSP algorithm evaluates a query (lives here rather than in
/// parallel.h so per-query APIs like EXPLAIN can name it without pulling
/// in the thread-pool machinery).
enum class KspAlgorithm { kBsp, kSpp, kSp, kTa, kKeywordOnly };

/// Short stable name: "BSP", "SPP", "SP", "TA", "KW".
const char* KspAlgorithmName(KspAlgorithm algorithm);

/// A top-k relevant Semantic Place query q = (q.λ, q.ψ, k) (Definition 3).
struct KspQuery {
  /// q.λ — the query location.
  Point location;
  /// q.ψ — the query keywords as TermIds of the target KB's vocabulary.
  /// A kInvalidTerm entry (keyword missing from the vocabulary) makes the
  /// query unanswerable: no qualified semantic place exists.
  std::vector<TermId> keywords;
  /// Number of requested semantic places.
  uint32_t k = 1;
};

}  // namespace ksp

#endif  // KSP_CORE_QUERY_H_
