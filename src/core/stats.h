#ifndef KSP_CORE_STATS_H_
#define KSP_CORE_STATS_H_

#include <cstdint>

#include "common/io_stats.h"

namespace ksp {

/// Per-query execution counters matching the metrics of §6: runtime split
/// into "semantic time" (TQSP construction) and "other time", the number
/// of TQSP computations, and the number of R-tree nodes accessed; plus
/// pruning-effectiveness counters for the ablation benches.
struct QueryStats {
  double total_ms = 0.0;
  /// Time inside TQSP construction (GetSemanticPlace / GetSemanticPlaceP).
  double semantic_ms = 0.0;
  double other_ms() const { return total_ms - semantic_ms; }

  uint64_t tqsp_computations = 0;
  uint64_t rtree_nodes_accessed = 0;
  /// BFS vertex pops across all TQSP constructions.
  uint64_t vertices_visited = 0;

  uint64_t reachability_queries = 0;
  /// Places discarded by Pruning Rule 1 (unqualified place pruning).
  uint64_t pruned_unqualified = 0;
  /// TQSP constructions aborted by Pruning Rule 2 (dynamic bound).
  uint64_t pruned_dynamic_bound = 0;
  /// Places discarded by Pruning Rule 3 (α place bound).
  uint64_t pruned_alpha_place = 0;
  /// R-tree subtrees discarded by Pruning Rule 4 (α node bound).
  uint64_t pruned_alpha_node = 0;
  /// TQSP constructions the intra-query pipeline ran speculatively that
  /// the ordered commit then discarded (candidates past the exact
  /// termination point): work the sequential algorithm never does.
  /// Always 0 on the sequential path; excluded from the determinism
  /// contract, which covers the committed counters above.
  uint64_t speculative_wasted_tqsp = 0;

  /// Semantic-cache activity (DESIGN.md §9). The dg counters are
  /// per-candidate: a hit means every keyword distance came from cache
  /// and the TQSP BFS was skipped entirely; a miss means the BFS ran
  /// while the cache was enabled. All five are 0 when the cache is off
  /// and, like speculative_wasted_tqsp, excluded from the sequential/
  /// parallel determinism contract (they measure work avoided, which
  /// depends on cache warmth).
  uint64_t dg_cache_hits = 0;
  uint64_t dg_cache_misses = 0;
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  /// Entries this query's inserts pushed out of the cache.
  uint64_t cache_evictions = 0;

  /// Buffer-pool activity of the disk backend (DESIGN.md §10): page
  /// fetches served from cache, fetches that read the file, and frames
  /// evicted to stay under the byte budget. All zero on the in-memory
  /// backend and, like the cache counters above, excluded from the
  /// backend-invariance/determinism contract — they depend on pool
  /// budget and warmth, not on the algorithm.
  uint64_t bufferpool_hits = 0;
  uint64_t bufferpool_misses = 0;
  uint64_t bufferpool_evictions = 0;

  /// Scatter-gather activity of the sharded executor (DESIGN.md §12):
  /// shards whose query actually ran versus shards skipped because the
  /// MBR-derived lower bound on f met the running global θ. Both zero on
  /// unsharded execution and, like the cache/buffer-pool counters,
  /// excluded from the determinism contract — the prune count depends on
  /// shard visit timing, only the merged top-k is pinned.
  uint64_t shards_visited = 0;
  uint64_t shards_pruned = 0;

  /// False when the run hit the configured time limit (the paper aborts
  /// BSP queries at 120 s).
  bool completed = true;

  /// Folds one storage cursor's page-I/O counters into the query's
  /// buffer-pool counters (the timing component goes to the `page_io`
  /// trace phase, not here).
  void AddPageIo(const PageIoCounters& io) {
    bufferpool_hits += io.hits;
    bufferpool_misses += io.misses;
    bufferpool_evictions += io.evictions;
  }

  void Accumulate(const QueryStats& other) {
    total_ms += other.total_ms;
    semantic_ms += other.semantic_ms;
    tqsp_computations += other.tqsp_computations;
    rtree_nodes_accessed += other.rtree_nodes_accessed;
    vertices_visited += other.vertices_visited;
    reachability_queries += other.reachability_queries;
    pruned_unqualified += other.pruned_unqualified;
    pruned_dynamic_bound += other.pruned_dynamic_bound;
    pruned_alpha_place += other.pruned_alpha_place;
    pruned_alpha_node += other.pruned_alpha_node;
    speculative_wasted_tqsp += other.speculative_wasted_tqsp;
    dg_cache_hits += other.dg_cache_hits;
    dg_cache_misses += other.dg_cache_misses;
    result_cache_hits += other.result_cache_hits;
    result_cache_misses += other.result_cache_misses;
    cache_evictions += other.cache_evictions;
    bufferpool_hits += other.bufferpool_hits;
    bufferpool_misses += other.bufferpool_misses;
    bufferpool_evictions += other.bufferpool_evictions;
    shards_visited += other.shards_visited;
    shards_pruned += other.shards_pruned;
    completed = completed && other.completed;
  }
};

}  // namespace ksp

#endif  // KSP_CORE_STATS_H_
