#ifndef KSP_CORE_VERTEX_MASK_TABLE_H_
#define KSP_CORE_VERTEX_MASK_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ksp {

/// Flat open-addressed map VertexId -> uint64_t keyword bitmask — the
/// M_q.ψ lookup of §3 on the BFS hot path (DESIGN.md §13). Linear
/// probing over two parallel arrays replaces the node-based hash map:
/// one probe is typically one cache line, and a miss (the overwhelmingly
/// common case — most visited vertices cover no keyword) terminates on
/// the first empty slot.
///
/// Write phase (PrepareContext) then read-only: Find is const and safe
/// to share across pipeline workers, like the rest of QueryContext.
class VertexMaskTable {
 public:
  VertexMaskTable() = default;

  /// Drops every entry; Find returns 0 for all keys until the next
  /// OrInsert. Keeps no storage.
  void Clear() {
    keys_.clear();
    masks_.clear();
    present_.clear();
    capacity_mask_ = 0;
    size_ = 0;
  }

  /// Clears and pre-sizes for `expected_keys` distinct keys (load factor
  /// <= 0.5, so inserts up to that count never rehash). When the key
  /// universe is known (`universe` > 0: keys are dense ids
  /// < `universe`), also builds a one-bit-per-key presence filter so
  /// the overwhelmingly common negative Find — most BFS pops cover no
  /// keyword — is answered by a single L1 load instead of a hash probe.
  void Reset(size_t expected_keys, size_t universe = 0) {
    size_t cap = 16;
    while (cap < expected_keys * 2) cap <<= 1;
    keys_.assign(cap, kInvalidVertex);
    masks_.assign(cap, 0);
    present_.assign(universe == 0 ? 0 : (universe + 63) / 64, 0);
    capacity_mask_ = cap - 1;
    size_ = 0;
  }

  /// ORs `bits` into v's mask, inserting v if absent. kInvalidVertex is
  /// the empty-slot sentinel and must never be a key (vertex ids are
  /// dense and < num_vertices, so it cannot appear in a posting list).
  void OrInsert(VertexId v, uint64_t bits) {
    if (keys_.empty() || (size_ + 1) * 2 > keys_.size()) Grow();
    const size_t slot = ProbeFor(v);
    if (keys_[slot] == kInvalidVertex) {
      keys_[slot] = v;
      ++size_;
    }
    masks_[slot] |= bits;
    if (!present_.empty()) present_[v >> 6] |= uint64_t{1} << (v & 63);
  }

  /// v's keyword mask, 0 if v covers no query keyword.
  uint64_t Find(VertexId v) const {
    if (!present_.empty()) {
      if ((present_[v >> 6] & (uint64_t{1} << (v & 63))) == 0) return 0;
    } else if (keys_.empty()) {
      return 0;
    }
    size_t slot = HashOf(v) & capacity_mask_;
    while (true) {
      const VertexId k = keys_[slot];
      if (k == v) return masks_[slot];
      if (k == kInvalidVertex) return 0;
      slot = (slot + 1) & capacity_mask_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return keys_.size(); }

 private:
  static size_t HashOf(VertexId v) {
    // Fibonacci multiplicative hash; the high product bits are the
    // well-mixed ones for a power-of-two table.
    return static_cast<size_t>(
        (uint64_t{v} * 0x9E3779B97F4A7C15ull) >> 32);
  }

  /// First slot holding v, or the empty slot where v belongs.
  size_t ProbeFor(VertexId v) const {
    size_t slot = HashOf(v) & capacity_mask_;
    while (keys_[slot] != kInvalidVertex && keys_[slot] != v) {
      slot = (slot + 1) & capacity_mask_;
    }
    return slot;
  }

  void Grow() {
    std::vector<VertexId> old_keys = std::move(keys_);
    std::vector<uint64_t> old_masks = std::move(masks_);
    const size_t cap = old_keys.empty() ? 16 : old_keys.size() * 2;
    keys_.assign(cap, kInvalidVertex);
    masks_.assign(cap, 0);
    capacity_mask_ = cap - 1;
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kInvalidVertex) {
        const size_t slot = ProbeFor(old_keys[i]);
        keys_[slot] = old_keys[i];
        masks_[slot] = old_masks[i];
        ++size_;
      }
    }
  }

  std::vector<VertexId> keys_;
  std::vector<uint64_t> masks_;
  /// One bit per universe key (empty when the universe was not given):
  /// bit v set iff v is in the table. For query-sized tables this is a
  /// few KB that stay L1-resident across the whole BFS.
  std::vector<uint64_t> present_;
  size_t capacity_mask_ = 0;  // keys_.size() - 1 when non-empty
  size_t size_ = 0;
};

}  // namespace ksp

#endif  // KSP_CORE_VERTEX_MASK_TABLE_H_
