#ifndef KSP_CORE_ACCESSORS_H_
#define KSP_CORE_ACCESSORS_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/io_stats.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "rdf/graph.h"
#include "storage/shared_buffer_pool.h"
#include "text/inverted_index.h"

namespace ksp {

/// Per-thread scratch for GraphAccessor expansions. Disk accessors
/// decode adjacency records into it and accumulate page-I/O counters;
/// the memory accessor returns CSR spans and leaves it untouched.
/// `status` is sticky: expansion loops stay branch-free and callers
/// check it once per BFS (an error also yields an empty span, so a BFS
/// terminates promptly after a failure).
struct GraphCursor {
  std::vector<VertexId> out_scratch;
  std::vector<VertexId> in_scratch;
  std::string buf;
  PageIoCounters io;
  Status status;

  void ResetIo() {
    io = PageIoCounters();
    status = Status::OK();
  }
};

/// Neighbor-expansion seam for every BFS in the engine. Implementations
/// must return neighbours in exactly the order of the in-memory CSR
/// (ascending, duplicates preserved) so BFS visit order — and with it
/// every prune decision, dynamic bound, and committed counter — is
/// backend-invariant.
class GraphAccessor {
 public:
  virtual ~GraphAccessor() = default;

  virtual VertexId num_vertices() const = 0;
  virtual uint64_t num_edges() const = 0;
  /// The span stays valid until the next Out/InNeighbors call on the
  /// same cursor (memory accessor: for the graph's lifetime).
  virtual std::span<const VertexId> OutNeighbors(VertexId v,
                                                 GraphCursor* c) const = 0;
  virtual std::span<const VertexId> InNeighbors(VertexId v,
                                                GraphCursor* c) const = 0;

  /// Hints that v's adjacency will be expanded a few pops from now (the
  /// flat BFS frontier's look-ahead). Default no-op: for the disk
  /// accessors a page fetch is not a cache-line hint. Never changes the
  /// cursor's observable state.
  virtual void Prefetch(VertexId v, GraphCursor* c) const {
    (void)v;
    (void)c;
  }

  /// The in-memory CSR when this accessor is a zero-copy view over one,
  /// else nullptr. Lets the BFS hot loop bypass two virtual calls per
  /// pop on the memory backend; the spans returned are the ones
  /// Out/InNeighbors would return, so visit order is unchanged.
  virtual const Graph* memory_graph() const { return nullptr; }
};

/// Zero-copy accessor over the in-memory CSR.
class MemoryGraphAccessor final : public GraphAccessor {
 public:
  explicit MemoryGraphAccessor(const Graph* graph) : graph_(graph) {}

  VertexId num_vertices() const override { return graph_->num_vertices(); }
  uint64_t num_edges() const override { return graph_->num_edges(); }
  std::span<const VertexId> OutNeighbors(VertexId v,
                                         GraphCursor*) const override {
    return graph_->OutNeighbors(v);
  }
  std::span<const VertexId> InNeighbors(VertexId v,
                                        GraphCursor*) const override {
    return graph_->InNeighbors(v);
  }
  void Prefetch(VertexId v, GraphCursor*) const override {
    graph_->PrefetchOut(v);
  }
  const Graph* memory_graph() const override { return graph_; }

 private:
  const Graph* graph_;
};

/// Adjacency expansion over two DiskGraph-format files (out-adjacency
/// and its transpose) through a shared buffer pool. Only the two offset
/// tables are memory-resident, mirroring the paper's disk-based graph
/// representation.
class DiskGraphAccessor final : public GraphAccessor {
 public:
  /// Opens both adjacency files and registers them with `pool` (which
  /// must outlive the accessor).
  static Result<std::unique_ptr<DiskGraphAccessor>> Open(
      const std::string& out_path, const std::string& in_path,
      SharedBufferPool* pool, FileSystem* fs = nullptr);

  ~DiskGraphAccessor() override;

  DiskGraphAccessor(const DiskGraphAccessor&) = delete;
  DiskGraphAccessor& operator=(const DiskGraphAccessor&) = delete;

  VertexId num_vertices() const override { return num_vertices_; }
  uint64_t num_edges() const override { return num_edges_; }
  std::span<const VertexId> OutNeighbors(VertexId v,
                                         GraphCursor* c) const override;
  std::span<const VertexId> InNeighbors(VertexId v,
                                        GraphCursor* c) const override;

 private:
  struct Direction {
    std::unique_ptr<RandomAccessFile> file;
    uint32_t file_id = 0;
    /// Absolute byte offsets of each vertex's record (size n+1).
    std::vector<uint64_t> offsets;
  };

  DiskGraphAccessor() = default;

  static Status OpenDirection(const std::string& path, FileSystem* fs,
                              SharedBufferPool* pool, Direction* dir,
                              VertexId* num_vertices, uint64_t* num_edges);
  std::span<const VertexId> Decode(const Direction& dir, VertexId v,
                                   std::vector<VertexId>* scratch,
                                   GraphCursor* c) const;

  SharedBufferPool* pool_ = nullptr;
  Direction out_;
  Direction in_;
  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
};

/// Keyword → sorted place-vertex posting list seam. `backing` is the
/// caller-owned buffer a disk implementation decodes into; `*view`
/// aliases either `*backing` or the memory index's own storage and
/// stays valid for the backing buffer's lifetime.
class PostingsAccessor {
 public:
  virtual ~PostingsAccessor() = default;

  virtual Status Fetch(TermId term, std::vector<VertexId>* backing,
                       std::span<const VertexId>* view,
                       PageIoCounters* io) const = 0;
};

/// Accessor over any InvertedIndex, zero-copy when the index offers
/// PostingsSpan (memory index) and copying via GetPostings otherwise.
class MemoryPostingsAccessor final : public PostingsAccessor {
 public:
  explicit MemoryPostingsAccessor(const InvertedIndex* index)
      : index_(index) {}

  Status Fetch(TermId term, std::vector<VertexId>* backing,
               std::span<const VertexId>* view,
               PageIoCounters* io) const override;

 private:
  const InvertedIndex* index_;
};

/// Posting decode through the shared buffer pool: the DiskInvertedIndex
/// validates the container and owns the offset table; this accessor
/// re-opens the file for pooled access so postings pages share the
/// database-wide byte budget with graph and R-tree pages.
class DiskPostingsAccessor final : public PostingsAccessor {
 public:
  static Result<std::unique_ptr<DiskPostingsAccessor>> Open(
      const std::string& path, SharedBufferPool* pool,
      FileSystem* fs = nullptr);

  ~DiskPostingsAccessor() override;

  DiskPostingsAccessor(const DiskPostingsAccessor&) = delete;
  DiskPostingsAccessor& operator=(const DiskPostingsAccessor&) = delete;

  Status Fetch(TermId term, std::vector<VertexId>* backing,
               std::span<const VertexId>* view,
               PageIoCounters* io) const override;

  const DiskInvertedIndex& index() const { return *index_; }

 private:
  DiskPostingsAccessor() = default;

  std::unique_ptr<DiskInvertedIndex> index_;
  std::unique_ptr<RandomAccessFile> file_;
  SharedBufferPool* pool_ = nullptr;
  uint32_t file_id_ = 0;
};

}  // namespace ksp

#endif  // KSP_CORE_ACCESSORS_H_
