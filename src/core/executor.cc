#include "core/executor.h"

#include <algorithm>
#include <bit>
#include <iterator>
#include <limits>

#include "common/logging.h"
#include "core/parallel_query.h"

namespace ksp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// (parent, vertex) fused in one u64 frontier entry of the flat BFS
/// driver: the discovering edge carries its parent with it, so the edge
/// scan never touches the bfs_parent_ array and the pop writes the
/// parent exactly once per vertex.
constexpr uint64_t Entry(VertexId parent, VertexId vertex) {
  return (static_cast<uint64_t>(parent) << 32) | vertex;
}
constexpr VertexId EntryVertex(uint64_t e) {
  return static_cast<VertexId>(e);
}
constexpr VertexId EntryParent(uint64_t e) {
  return static_cast<VertexId>(e >> 32);
}

/// Ordering used by the top-k heap: ascending (score, place).
bool EntryBetter(const KspResultEntry& a, const KspResultEntry& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.place < b.place;
}
}  // namespace

std::vector<VertexId> SemanticPlaceTree::TreeVertices() const {
  std::vector<VertexId> vertices;
  vertices.push_back(root);
  for (const auto& match : matches) {
    vertices.insert(vertices.end(), match.path.begin(), match.path.end());
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  return vertices;
}

double TopKHeap::Threshold() const {
  if (k_ == 0) return -kInf;  // Nothing can enter a k = 0 result.
  return Full() ? entries_.front().score : kInf;
}

void TopKHeap::Add(KspResultEntry entry) {
  if (k_ == 0) return;
  auto worse = [](const KspResultEntry& a, const KspResultEntry& b) {
    return EntryBetter(a, b);  // max-heap on (score, place)
  };
  if (!Full()) {
    entries_.push_back(std::move(entry));
    std::push_heap(entries_.begin(), entries_.end(), worse);
    return;
  }
  if (EntryBetter(entry, entries_.front())) {
    std::pop_heap(entries_.begin(), entries_.end(), worse);
    entries_.back() = std::move(entry);
    std::push_heap(entries_.begin(), entries_.end(), worse);
  }
}

bool TopKHeap::WouldAdd(double score, PlaceId place) const {
  if (k_ == 0) return false;
  if (!Full()) return true;
  KspResultEntry probe;
  probe.place = place;
  probe.score = score;
  return EntryBetter(probe, entries_.front());
}

KspResult TopKHeap::Finish() && {
  KspResult result;
  result.entries = std::move(entries_);
  std::sort(result.entries.begin(), result.entries.end(), EntryBetter);
  return result;
}

QueryExecutor::QueryExecutor(const KspDatabase* db) : db_(db) {
  KSP_CHECK(db_ != nullptr);
  visit_epoch_.assign(db_->kb().num_vertices(), 0);
  bfs_parent_.assign(db_->kb().num_vertices(), kInvalidVertex);
  // The internal trace only feeds per-phase totals; keeping the span list
  // would grow unbounded with candidate count on the metrics-only path.
  internal_trace_.set_record_spans(false);
}

// Out of line: ~unique_ptr<IntraQueryPipeline> needs the complete type.
QueryExecutor::~QueryExecutor() = default;

IntraQueryPipeline* QueryExecutor::EnsurePipeline() {
  if (pipeline_ == nullptr ||
      pipeline_->num_workers() != intra_query_threads_) {
    pipeline_ =
        std::make_unique<IntraQueryPipeline>(db_, intra_query_threads_);
  }
  return pipeline_.get();
}

void QueryExecutor::set_metrics(MetricsRegistry* registry) {
  metrics_ = MetricsHandles{};
  metrics_.registry = registry;
  if (registry == nullptr) return;
  metrics_.queries = registry->GetCounter("ksp_queries_total");
  metrics_.timeouts = registry->GetCounter("ksp_query_timeouts_total");
  metrics_.tqsp = registry->GetCounter("ksp_tqsp_computations_total");
  metrics_.rtree_nodes =
      registry->GetCounter("ksp_rtree_nodes_accessed_total");
  metrics_.bfs_vertices =
      registry->GetCounter("ksp_bfs_vertices_visited_total");
  metrics_.reach_queries =
      registry->GetCounter("ksp_reachability_queries_total");
  for (int rule = 0; rule < 4; ++rule) {
    metrics_.pruned_rule[rule] = registry->GetCounter(
        "ksp_pruned_rule" + std::to_string(rule + 1) + "_total");
  }
  metrics_.wasted_tqsp =
      registry->GetCounter("ksp_speculative_wasted_tqsp_total");
  metrics_.cache_hits = registry->GetCounter("ksp_cache_hits_total");
  metrics_.cache_misses = registry->GetCounter("ksp_cache_misses_total");
  metrics_.cache_evictions =
      registry->GetCounter("ksp_cache_evictions_total");
  metrics_.cache_bytes = registry->GetGauge("ksp_cache_bytes_total");
  metrics_.bufferpool_hits =
      registry->GetCounter("ksp_bufferpool_hits_total");
  metrics_.bufferpool_misses =
      registry->GetCounter("ksp_bufferpool_misses_total");
  metrics_.bufferpool_evictions =
      registry->GetCounter("ksp_bufferpool_evictions_total");
  metrics_.wall_us = registry->GetCounter("ksp_query_wall_us_total");
  metrics_.semantic_us =
      registry->GetCounter("ksp_query_semantic_us_total");
  metrics_.cancellations =
      registry->GetCounter("ksp_query_cancellations_total");
  for (size_t p = 0; p < kNumTracePhases; ++p) {
    metrics_.phase_us[p] = registry->GetCounter(
        std::string("ksp_phase_") +
        TracePhaseName(static_cast<TracePhase>(p)) + "_us_total");
  }
  metrics_.latency_ms = registry->GetHistogram(
      "ksp_query_latency_ms", Histogram::DefaultLatencyBucketsMs());
}

void QueryExecutor::RecordQueryMetrics(const QueryStats& stats) {
  if (metrics_.registry == nullptr) return;
  metrics_.queries->Increment();
  if (!stats.completed) metrics_.timeouts->Increment();
  metrics_.tqsp->Increment(stats.tqsp_computations);
  metrics_.rtree_nodes->Increment(stats.rtree_nodes_accessed);
  metrics_.bfs_vertices->Increment(stats.vertices_visited);
  metrics_.reach_queries->Increment(stats.reachability_queries);
  metrics_.pruned_rule[0]->Increment(stats.pruned_unqualified);
  metrics_.pruned_rule[1]->Increment(stats.pruned_dynamic_bound);
  metrics_.pruned_rule[2]->Increment(stats.pruned_alpha_place);
  metrics_.pruned_rule[3]->Increment(stats.pruned_alpha_node);
  metrics_.wasted_tqsp->Increment(stats.speculative_wasted_tqsp);
  metrics_.cache_hits->Increment(stats.dg_cache_hits +
                                 stats.result_cache_hits);
  metrics_.cache_misses->Increment(stats.dg_cache_misses +
                                   stats.result_cache_misses);
  metrics_.cache_evictions->Increment(stats.cache_evictions);
  metrics_.bufferpool_hits->Increment(stats.bufferpool_hits);
  metrics_.bufferpool_misses->Increment(stats.bufferpool_misses);
  metrics_.bufferpool_evictions->Increment(stats.bufferpool_evictions);
  if (const SemanticQueryCache* cache = db_->semantic_cache();
      cache != nullptr) {
    metrics_.cache_bytes->Set(static_cast<double>(cache->TotalBytes()));
  }
  metrics_.wall_us->Increment(
      static_cast<uint64_t>(stats.total_ms * 1e3));
  metrics_.semantic_us->Increment(
      static_cast<uint64_t>(stats.semantic_ms * 1e3));
  metrics_.latency_ms->Observe(stats.total_ms);
  if (const QueryTrace* trace = active_trace(); trace != nullptr) {
    for (size_t p = 0; p < kNumTracePhases; ++p) {
      metrics_.phase_us[p]->Increment(static_cast<uint64_t>(
          trace->PhaseExclusiveUs(static_cast<TracePhase>(p))));
    }
  }
}

Status QueryExecutor::FinishInterrupted(QueryStats* st) {
  st->completed = false;
  if (metrics_.cancellations != nullptr) metrics_.cancellations->Increment();
  RecordQueryMetrics(*st);
  return interrupt_status_;
}

Status QueryExecutor::CheckPrepared() const {
  if (!db_->has_rtree()) {
    return Status::InvalidArgument(
        "database is not prepared: call KspDatabase::BuildRTree() / "
        "PrepareAll() / LoadIndexes() before executing queries");
  }
  // A disk backend that failed to spill must reject queries rather than
  // silently serving from memory.
  return db_->storage_backend_status();
}

void QueryExecutor::FoldIo(const PageIoCounters& io, QueryStats* stats) {
  if (io.IsZero()) return;
  if (stats != nullptr) stats->AddPageIo(io);
  if (QueryTrace* trace = active_trace(); trace != nullptr) {
    trace->AddChildTime(TracePhase::kPageIo, io.micros, io.Fetches());
  }
}

void QueryExecutor::FoldIoDelta(const PageIoCounters& cumulative,
                                PageIoCounters* folded, QueryStats* stats) {
  PageIoCounters delta;
  delta.hits = cumulative.hits - folded->hits;
  delta.misses = cumulative.misses - folded->misses;
  delta.evictions = cumulative.evictions - folded->evictions;
  delta.micros = cumulative.micros - folded->micros;
  FoldIo(delta, stats);
  *folded = cumulative;
}

uint16_t QueryExecutor::BeginBfsEpoch() {
  if (++epoch_ == 0) {
    // uint16_t wraparound: every stored mark now collides with some future
    // epoch. Reset to a clean slate (0 is never handed out as an epoch).
    std::fill(visit_epoch_.begin(), visit_epoch_.end(), uint16_t{0});
    epoch_ = 1;
  }
  return epoch_;
}

Status QueryExecutor::PrepareContext(const KspQuery& query,
                                     QueryContext* ctx) const {
  ctx->query = &query;
  ctx->terms.clear();
  ctx->vertex_mask.Clear();
  ctx->postings.clear();
  ctx->owned_postings.clear();
  ctx->rarest_first.clear();
  ctx->answerable = true;
  ctx->io = PageIoCounters();

  // Deduplicate keywords, preserving query order.
  for (TermId t : query.keywords) {
    if (t == kInvalidTerm) {
      ctx->answerable = false;  // Unknown keyword: nothing can cover it.
      continue;
    }
    if (std::find(ctx->terms.begin(), ctx->terms.end(), t) ==
        ctx->terms.end()) {
      ctx->terms.push_back(t);
    }
  }
  if (ctx->terms.size() > 64) {
    return Status::InvalidArgument(
        "at most 64 distinct query keywords are supported");
  }
  const size_t m = ctx->terms.size();
  ctx->full_mask = (m == 64) ? ~uint64_t{0} : ((uint64_t{1} << m) - 1);

  // Load posting lists and build M_q.ψ (vertex -> covered-keyword mask).
  // The memory accessor hands out zero-copy views; disk accessors decode
  // into owned_postings (whose inner buffers stay put when the outer
  // vector grows) through the shared buffer pool.
  const PostingsAccessor& postings = db_->postings_accessor();
  ctx->postings.resize(m);
  size_t total_entries = 0;
  for (size_t i = 0; i < m; ++i) {
    ctx->owned_postings.emplace_back();
    std::span<const VertexId> view;
    KSP_RETURN_NOT_OK(postings.Fetch(ctx->terms[i],
                                     &ctx->owned_postings.back(), &view,
                                     &ctx->io));
    ctx->postings[i] = view;
    if (ctx->postings[i].empty()) ctx->answerable = false;
    total_entries += ctx->postings[i].size();
  }
  // Pre-size for the posting-entry total (an upper bound on distinct
  // vertices), so the fill below never rehashes. Vertex ids are the
  // dense universe, so the table also builds its presence filter and
  // the BFS answers the common no-keyword pop with one bit test.
  ctx->vertex_mask.Reset(total_entries, db_->kb().num_vertices());
  for (size_t i = 0; i < m; ++i) {
    for (VertexId v : ctx->postings[i]) {
      ctx->vertex_mask.OrInsert(v, uint64_t{1} << i);
    }
  }

  ctx->rarest_first.resize(m);
  for (size_t i = 0; i < m; ++i) ctx->rarest_first[i] = i;
  std::sort(ctx->rarest_first.begin(), ctx->rarest_first.end(),
            [&](uint32_t a, uint32_t b) {
              return ctx->postings[a].size() < ctx->postings[b].size();
            });
  return Status::OK();
}

double QueryExecutor::ComputeTqsp(VertexId root, const QueryContext& ctx,
                                  double looseness_threshold,
                                  bool use_dynamic_bound,
                                  SemanticPlaceTree* tree, QueryStats* stats,
                                  const TqspSpeculation* spec) {
  const uint32_t num_keywords =
      static_cast<uint32_t>(std::popcount(ctx.full_mask));
  uint64_t remaining = ctx.full_mask;
  double covered_sum = 0.0;

  struct Match {
    uint32_t keyword_index;
    VertexId vertex;
    uint32_t distance;
  };
  // Per-candidate scratch lives in the arena: after the first (largest)
  // candidate the whole TQSP construction does zero heap traffic.
  tqsp_arena_.Reset();
  ArenaVec<Match> matches(&tqsp_arena_);
  matches.reserve(num_keywords);

  // Epoch-tagged BFS with parent tracking for path reconstruction.
  const uint16_t epoch = BeginBfsEpoch();
  visit_epoch_[root] = epoch;
  bfs_parent_[root] = kInvalidVertex;

  const GraphAccessor& graph = db_->graph_accessor();
  const bool undirected = db_->options().undirected_edges;

  bool pruned = false;
  bool interrupted = false;
  // Pops accumulate in a register and fold into the stats once after the
  // loop — the committed vertices_visited is identical, without a
  // read-modify-write against the heap-resident stats on every pop.
  uint64_t pops = 0;

  // Per-pop body shared by both frontier drivers below; false means stop
  // (the flags and `remaining` say why). `qi` is the global pop index —
  // both drivers produce the identical pop sequence (FIFO within a BFS
  // level), so the cancellation cadence, stats counters, bound-log steps
  // and prune decisions are bit-identical across drivers.
  auto process_pop = [&](VertexId v, uint32_t dist, uint64_t qi) -> bool {
    // Cancellation poll every 64 pops: cheap enough to keep the BFS hot
    // loop tight, frequent enough that a deadline is enforced within one
    // phase-span granularity. An interrupted BFS proves nothing about
    // the unvisited remainder — see the cache-feed guard below.
    if ((qi & 0x3F) == 0 && CheckInterrupt()) {
      interrupted = true;
      return false;
    }
    ++pops;

    if (use_dynamic_bound) {
      if (spec != nullptr && spec->live_theta != nullptr) {
        // Speculative run: re-derive the Rule-2 threshold from the latest
        // committed θ. θ only decreases over the commit sequence, so the
        // threshold tightens monotonically and never drops below the exact
        // commit-time value — a speculative abort implies the sequential
        // run aborts too (the commit stage replays where).
        const double live = spec->ranking->LoosenessThreshold(
            spec->live_theta->load(std::memory_order_relaxed),
            spec->spatial_distance);
        if (live < looseness_threshold) looseness_threshold = live;
      }
      // Lemma 1: every undiscovered keyword lies at distance >= dist.
      double lower_bound =
          1.0 + covered_sum +
          static_cast<double>(dist) *
              static_cast<double>(std::popcount(remaining));
      if (spec != nullptr && spec->bound_log != nullptr) {
        std::vector<TqspBoundStep>& log = *spec->bound_log;
        if (log.empty() || lower_bound > log.back().bound) {
          log.push_back(TqspBoundStep{qi, lower_bound});
        }
      }
      if (lower_bound >= looseness_threshold) {
        pruned = true;  // Pruning Rule 2.
        return false;
      }
    }

    uint64_t mask = ctx.MaskOf(v) & remaining;
    if (mask != 0) {
      covered_sum +=
          static_cast<double>(dist) *
          static_cast<double>(std::popcount(mask));
      uint64_t bits = mask;
      while (bits != 0) {
        uint32_t i = static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        matches.push_back(Match{i, v, dist});
      }
      remaining &= ~mask;
      if (remaining == 0) return false;
    }
    return true;
  };

  if (db_->options().bfs_frontier == BfsFrontier::kLegacy) {
    // Legacy driver (the A/B baseline): one growing (vertex, distance)
    // queue popped by index.
    std::vector<std::pair<VertexId, uint32_t>> queue;
    queue.emplace_back(root, 0);
    for (size_t qi = 0; qi < queue.size() && remaining != 0; ++qi) {
      auto [v, dist] = queue[qi];
      if (!process_pop(v, dist, qi)) break;
      for (VertexId w : graph.OutNeighbors(v, &graph_cursor_)) {
        if (visit_epoch_[w] != epoch) {
          visit_epoch_[w] = epoch;
          bfs_parent_[w] = v;
          queue.emplace_back(w, dist + 1);
        }
      }
      if (undirected) {
        for (VertexId w : graph.InNeighbors(v, &graph_cursor_)) {
          if (visit_epoch_[w] != epoch) {
            visit_epoch_[w] = epoch;
            bfs_parent_[w] = v;
            queue.emplace_back(w, dist + 1);
          }
        }
      }
    }
  } else {
    // Flat driver: level-synchronous frontiers of bare vertex ids (the
    // level counter is the distance), with a neighbor-span prefetch a
    // few pops ahead in the current frontier. Capacity persists across
    // candidates in the executor scratch. On the memory backend the CSR
    // is read directly, skipping the per-pop virtual dispatch.
    //
    // Both buffers are sized to the vertex count up front: a vertex is
    // discovered at most once per epoch, so the raw `nxt[nxt_n] = ...`
    // writes below can never overflow, and the hot loop carries neither
    // push_back's capacity branch nor any reload of the vectors' members
    // (base pointers and sizes live in locals the stores cannot alias —
    // with member access the compiler must assume every push invalidates
    // frontier_.data()/size() and re-read them each edge).
    //
    // The edge scan is deliberately branchless. The classic
    //   if (epochs[w] != epoch) { mark; record parent; push }
    // stalls on one unpredictable branch per edge whose outcome depends
    // on a random L1-missing load — the mispredicts serialize what are
    // otherwise ~degree independent cache misses, and they bound the
    // whole TQSP construction (measured: the executor runs at the raw
    // BFS substrate's ns/pop, so only this pattern can be the limiter).
    // Instead every edge does an idempotent `epochs[w] = epoch` store
    // and a conditionally-advanced append `nxt_n += fresh`, so the loop
    // has no data-dependent control flow and the out-of-order window
    // overlaps the misses. The parent does not go to a second random
    // array touch per edge: frontier entries are (parent, vertex) fused
    // in a u64, and the pop writes bfs_parent_ once per vertex. The
    // first discoverer still wins — later edges to the same vertex see
    // fresh == false and never advance the cursor — so pop order,
    // parents, and every counter stay bit-identical to the legacy
    // driver.
    const Graph* csr = graph.memory_graph();
    const size_t total_vertices = visit_epoch_.size();
    if (frontier_.size() < total_vertices) {
      frontier_.resize(total_vertices);
      next_frontier_.resize(total_vertices);
    }
    uint64_t* cur = frontier_.data();
    uint64_t* nxt = next_frontier_.data();
    uint16_t* const epochs = visit_epoch_.data();
    VertexId* const parents = bfs_parent_.data();
    cur[0] = Entry(kInvalidVertex, root);
    size_t cur_n = 1;
    size_t nxt_n = 0;
    constexpr size_t kPrefetchAhead = 8;
    uint64_t qi = 0;
    uint32_t dist = 0;
    bool stop = remaining == 0;
    while (!stop && cur_n > 0) {
      for (size_t j = 0; j < cur_n; ++j, ++qi) {
        if (j + kPrefetchAhead < cur_n) {
          const VertexId ahead = EntryVertex(cur[j + kPrefetchAhead]);
          if (csr != nullptr) {
            csr->PrefetchOut(ahead);
          } else {
            graph.Prefetch(ahead, &graph_cursor_);
          }
        }
        const VertexId v = EntryVertex(cur[j]);
        parents[v] = EntryParent(cur[j]);
        if (!process_pop(v, dist, qi)) {
          stop = true;
          break;
        }
        const uint64_t tagged = Entry(v, 0);
        const std::span<const VertexId> out =
            csr != nullptr ? csr->OutNeighbors(v)
                           : graph.OutNeighbors(v, &graph_cursor_);
        for (VertexId w : out) {
          const bool fresh = epochs[w] != epoch;
          epochs[w] = epoch;
          nxt[nxt_n] = tagged | w;
          nxt_n += fresh;
        }
        if (undirected) {
          const std::span<const VertexId> in =
              csr != nullptr ? csr->InNeighbors(v)
                             : graph.InNeighbors(v, &graph_cursor_);
          for (VertexId w : in) {
            const bool fresh = epochs[w] != epoch;
            epochs[w] = epoch;
            nxt[nxt_n] = tagged | w;
            nxt_n += fresh;
          }
        }
      }
      std::swap(cur, nxt);
      cur_n = nxt_n;
      nxt_n = 0;
      ++dist;
    }
  }

  if (stats != nullptr) stats->vertices_visited += pops;
  if (pruned && stats != nullptr) ++stats->pruned_dynamic_bound;
  FoldCursorIo(&graph_cursor_.io, stats);

  // Feed the shared dg cache (DESIGN.md §9). Every recorded match is the
  // exact minimal distance — BFS pops in non-decreasing distance and a
  // keyword is recorded at its first covering pop — even when Rule 2 (or
  // a speculative live-θ abort, or a cancellation) stopped the search
  // afterwards. An un-pruned, un-interrupted exhaustion additionally
  // proves the uncovered keywords unreachable, which is cached as
  // kUnreachable (a negative answer); a cancelled BFS must NOT record
  // that negative — its frontier simply never got there. A page-read
  // failure truncated the expansion: nothing this run recorded is
  // trustworthy, and the query is about to fail anyway.
  if (SemanticQueryCache* cache = db_->semantic_cache();
      cache != nullptr && graph_cursor_.status.ok()) {
    size_t evicted = 0;
    for (const Match& m : matches) {
      evicted +=
          cache->InsertDistance(root, ctx.terms[m.keyword_index],
                                cache_epoch_,
                                static_cast<HopDistance>(m.distance));
    }
    if (!pruned && !interrupted && remaining != 0) {
      uint64_t bits = remaining;
      while (bits != 0) {
        const uint32_t i = static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        evicted += cache->InsertDistance(root, ctx.terms[i], cache_epoch_,
                                         kUnreachable);
      }
    }
    if (stats != nullptr) stats->cache_evictions += evicted;
  }

  if (remaining != 0) return kInf;  // Pruned or unqualified.

  const double looseness = 1.0 + covered_sum;
  if (tree != nullptr) {
    tree->root = root;
    tree->looseness = looseness;
    tree->matches.clear();
    tree->matches.reserve(matches.size());
    ArenaVec<VertexId> reversed(&tqsp_arena_);
    for (const Match& m : matches) {
      SemanticPlaceTree::KeywordMatch km;
      km.term = ctx.terms[m.keyword_index];
      km.vertex = m.vertex;
      km.distance = m.distance;
      // Reconstruct the root-to-vertex path via BFS parents.
      reversed.clear();
      for (VertexId v = m.vertex; v != kInvalidVertex; v = bfs_parent_[v]) {
        reversed.push_back(v);
        if (v == root) break;
      }
      km.path.assign(std::make_reverse_iterator(reversed.end()),
                     std::make_reverse_iterator(reversed.begin()));
      tree->matches.push_back(std::move(km));
    }
  }
  return looseness;
}

bool QueryExecutor::IsUnqualifiedPlace(VertexId root,
                                       const QueryContext& ctx,
                                       QueryStats* stats) const {
  const ReachabilityIndex* reach = db_->reachability_index();
  KSP_DCHECK(reach != nullptr);
  // Infrequent keywords are the most selective: test them first (§4.1).
  for (uint32_t i : ctx.rarest_first) {
    if (stats != nullptr) ++stats->reachability_queries;
    if (!reach->Reaches(root, ctx.terms[i])) return true;
  }
  return false;
}

QueryExecutor::CachedTqsp QueryExecutor::TryCachedTqsp(
    VertexId root, PlaceId place, const QueryContext& ctx,
    double looseness_threshold, bool use_rule2, const TopKHeap& heap,
    double spatial, double* looseness) const {
  SemanticQueryCache* cache = db_->semantic_cache();
  if (cache == nullptr) return CachedTqsp::kMiss;
  double l = 1.0;
  for (TermId t : ctx.terms) {
    HopDistance d = 0;
    if (!cache->LookupDistance(root, t, cache_epoch_, &d)) {
      return CachedTqsp::kMiss;
    }
    if (d == kUnreachable) {
      *looseness = kInf;
      return CachedTqsp::kUnqualified;
    }
    l += static_cast<double>(d);
  }
  *looseness = l;
  // Exactly the sequential Rule-2 outcome: the BFS aborts via the
  // dynamic bound iff L >= the threshold (see DESIGN.md §9 — at the pop
  // that would cover the last keyword, Lemma 1's bound equals L).
  if (use_rule2 && l >= looseness_threshold) {
    return CachedTqsp::kPrunedRule2;
  }
  if (heap.WouldAdd(db_->options().ranking.Score(l, spatial), place)) {
    // The entry would enter the top-k, which needs the materialized
    // tree — only the BFS can build it.
    return CachedTqsp::kMiss;
  }
  return CachedTqsp::kRejected;
}

Result<TiedSemanticPlace> QueryExecutor::ComputeTqspAlternatives(
    PlaceId place, const KspQuery& query) {
  TiedSemanticPlace out;
  out.place = place;
  out.root = db_->kb().place_vertex(place);
  KSP_RETURN_NOT_OK(db_->storage_backend_status());
  interrupt_status_ = Status::OK();
  graph_cursor_.ResetIo();
  QueryContext ctx;
  KSP_RETURN_NOT_OK(PrepareContext(query, &ctx));
  FoldIo(ctx.io, nullptr);
  if (!ctx.answerable) return out;

  const size_t m = ctx.terms.size();
  // min_dist[i] = dg(p, t_i) once discovered.
  std::vector<uint32_t> min_dist(m, kUnreachable);
  std::vector<std::vector<VertexId>> alternatives(m);
  size_t found = 0;

  const uint16_t epoch = BeginBfsEpoch();
  visit_epoch_[out.root] = epoch;
  std::vector<std::pair<VertexId, uint32_t>> queue;
  queue.emplace_back(out.root, 0);
  const GraphAccessor& graph = db_->graph_accessor();
  const bool undirected = db_->options().undirected_edges;

  for (size_t qi = 0; qi < queue.size(); ++qi) {
    if ((qi & 0x3F) == 0 && CheckInterrupt()) break;
    auto [v, dist] = queue[qi];
    // Stop once all keywords are found and BFS has moved past the last
    // minimum distance (no further ties possible).
    if (found == m) {
      uint32_t max_min = 0;
      for (uint32_t d : min_dist) max_min = std::max(max_min, d);
      if (dist > max_min) break;
    }
    uint64_t mask = ctx.MaskOf(v);
    while (mask != 0) {
      uint32_t i = static_cast<uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      if (min_dist[i] == kUnreachable) {
        min_dist[i] = dist;
        ++found;
      }
      if (dist == min_dist[i]) alternatives[i].push_back(v);
    }
    for (VertexId w : graph.OutNeighbors(v, &graph_cursor_)) {
      if (visit_epoch_[w] != epoch) {
        visit_epoch_[w] = epoch;
        queue.emplace_back(w, dist + 1);
      }
    }
    if (undirected) {
      for (VertexId w : graph.InNeighbors(v, &graph_cursor_)) {
        if (visit_epoch_[w] != epoch) {
          visit_epoch_[w] = epoch;
          queue.emplace_back(w, dist + 1);
        }
      }
    }
  }
  FoldCursorIo(&graph_cursor_.io, nullptr);
  KSP_RETURN_NOT_OK(graph_cursor_.status);
  KSP_RETURN_NOT_OK(interrupt_status_);

  if (found != m) return out;  // Unqualified.
  out.looseness = 1.0;
  out.keywords.resize(m);
  for (size_t i = 0; i < m; ++i) {
    out.looseness += min_dist[i];
    out.keywords[i].term = ctx.terms[i];
    out.keywords[i].distance = min_dist[i];
    out.keywords[i].vertices = std::move(alternatives[i]);
  }
  return out;
}

Result<SemanticPlaceTree> QueryExecutor::ComputeTqspForPlace(
    PlaceId place, const KspQuery& query) {
  SemanticPlaceTree tree;
  tree.place = place;
  tree.root = db_->kb().place_vertex(place);
  KSP_RETURN_NOT_OK(db_->storage_backend_status());
  interrupt_status_ = Status::OK();
  const SemanticQueryCache* cache = db_->semantic_cache();
  cache_epoch_ = cache != nullptr ? cache->epoch() : 0;
  graph_cursor_.ResetIo();
  QueryContext ctx;
  KSP_RETURN_NOT_OK(PrepareContext(query, &ctx));
  FoldIo(ctx.io, nullptr);
  if (!ctx.answerable) return tree;
  ComputeTqsp(tree.root, ctx, kInf, /*use_dynamic_bound=*/false, &tree,
              nullptr);
  KSP_RETURN_NOT_OK(graph_cursor_.status);
  KSP_RETURN_NOT_OK(interrupt_status_);
  tree.place = place;
  return tree;
}

}  // namespace ksp
