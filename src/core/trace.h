#ifndef KSP_CORE_TRACE_H_
#define KSP_CORE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace ksp {

/// Phases of a kSP query, mirroring where the paper's evaluation splits
/// runtime (Figs. 3-10). The taxonomy is part of the observability
/// contract — see DESIGN.md §7 before renaming or renumbering.
enum class TracePhase : uint8_t {
  kRtreeNn = 0,      // Incremental NN / α-bound R-tree traversal.
  kBfsExpand,        // TA's backward multi-source keyword BFS rounds.
  kTqspCompute,      // GetSemanticPlace(P): forward BFS TQSP construction.
  kRule1Prune,       // Reachability probes of Pruning Rule 1.
  kRule2Prune,       // Dynamic-bound aborts (zero-duration events).
  kDocFetch,         // Posting-list fetch + M_q.ψ construction.
  kCacheLookup,      // Semantic-cache probes (dg + result layers, §9).
  kPageIo,           // Buffer-pool page fetches (disk backend only).
  kShardDispatch,    // Scatter-gather shard visits (§12; sharded only).
};
inline constexpr size_t kNumTracePhases = 9;

/// Stable snake_case name ("rtree_nn", ...), used in metric names and
/// trace exports.
const char* TracePhaseName(TracePhase phase);

/// Per-query trace sink: timestamped phase spans (opened/closed by RAII
/// TraceSpan guards) plus per-phase aggregates. Spans may nest; the
/// aggregates keep both inclusive and exclusive (self, minus child spans)
/// time so that exclusive totals across phases partition the instrumented
/// wall time with no double counting.
///
/// A QueryTrace is single-threaded scratch, like the QueryExecutor that
/// writes to it. Passing a null QueryTrace* wherever one is accepted
/// disables tracing: a TraceSpan over nullptr reads no clock and writes
/// nothing (see NullTraceSpan for the compile-time-checkable variant).
class QueryTrace {
 public:
  struct Span {
    TracePhase phase;
    /// Offset from the trace epoch (first span since Clear()).
    int64_t start_us = 0;
    int64_t duration_us = 0;
    /// Nesting depth: 0 for top-level spans.
    uint32_t depth = 0;
    /// Span-specific item count (e.g. BFS pops inside tqsp_compute).
    uint64_t items = 0;
  };

  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// When false, spans are aggregated (totals/counts) but the per-span
  /// list is not kept — the mode for always-on production metrics where
  /// a query can open thousands of spans.
  void set_record_spans(bool record) { record_spans_ = record; }

  /// Drops all spans and aggregates; the next span restarts the epoch.
  void Clear();

  const std::vector<Span>& spans() const { return spans_; }
  /// True while any TraceSpan guard is open.
  bool HasOpenSpans() const { return !open_.empty(); }

  /// Total time inside `phase` spans, including nested child spans of
  /// other phases.
  int64_t PhaseInclusiveUs(TracePhase phase) const {
    return inclusive_us_[static_cast<size_t>(phase)];
  }
  /// Total time inside `phase` spans, excluding nested child spans —
  /// summing this over all phases never counts an instant twice.
  int64_t PhaseExclusiveUs(TracePhase phase) const {
    return exclusive_us_[static_cast<size_t>(phase)];
  }
  uint64_t PhaseCount(TracePhase phase) const {
    return count_[static_cast<size_t>(phase)];
  }
  uint64_t PhaseItems(TracePhase phase) const {
    return items_[static_cast<size_t>(phase)];
  }

  /// Records an instantaneous event (a zero-duration span), e.g. one
  /// Rule-2 abort.
  void RecordEvent(TracePhase phase, uint64_t items = 1);

  /// Credits `us` of externally measured wall time to `phase` as if a
  /// closed child span had run inside the innermost open span: the time
  /// counts as inclusive AND exclusive for `phase`, and is subtracted
  /// from the enclosing span's exclusive time, preserving the
  /// partition invariant of PhaseExclusiveUs. Used for page-I/O time
  /// measured by storage cursors (which cannot open spans themselves
  /// without a layering inversion). Call while the span that contained
  /// the I/O is still open. No-op when `us` and `items` are both 0.
  void AddChildTime(TracePhase phase, int64_t us, uint64_t items);

  /// Folds another trace's per-phase aggregates (inclusive/exclusive
  /// time, counts, items) into this one without touching the span list.
  /// Used by the intra-query pipeline to merge producer/worker traces —
  /// which ran on other threads — into the query's main trace; the merged
  /// exclusive totals then measure summed CPU work, which may exceed the
  /// query's wall time.
  void MergeAggregates(const QueryTrace& other);

  /// JSON: {"spans": [{"phase", "start_us", "duration_us", "depth",
  /// "items"}], "phase_totals_us": {...}} with spans in start order.
  std::string ToJson() const;

 private:
  friend class TraceSpan;

  using Clock = std::chrono::steady_clock;

  int64_t NowUs();

  /// Begin/End are called only by TraceSpan with a non-null trace.
  void BeginSpan();
  void EndSpan(TracePhase phase, uint64_t items);

  struct OpenSpan {
    int64_t start_us = 0;
    /// Inclusive time of already-closed direct children.
    int64_t child_us = 0;
  };

  bool record_spans_ = true;
  bool epoch_set_ = false;
  Clock::time_point epoch_{};
  std::vector<Span> spans_;
  std::vector<OpenSpan> open_;
  int64_t inclusive_us_[kNumTracePhases] = {};
  int64_t exclusive_us_[kNumTracePhases] = {};
  uint64_t count_[kNumTracePhases] = {};
  uint64_t items_[kNumTracePhases] = {};
};

/// RAII span guard: opens a phase span on construction, closes it on
/// destruction — including early `return Status` paths, which is the
/// point of the RAII shape. With trace == nullptr the constructor and
/// destructor read no clock and touch no memory beyond the two members,
/// so disabled tracing costs two register writes and a branch.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, TracePhase phase)
      : trace_(trace), phase_(phase) {
    if (trace_ != nullptr) trace_->BeginSpan();
  }
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->EndSpan(phase_, items_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an item count to the span (e.g. vertices popped).
  void AddItems(uint64_t n) { items_ += n; }

 private:
  QueryTrace* trace_;
  TracePhase phase_;
  uint64_t items_ = 0;
};

/// Compile-time null sink: code templated on the span type can
/// instantiate with NullTraceSpan and the optimizer erases every trace
/// operation — there is nothing to call. The static_asserts below make
/// "zero state, zero ops" checkable at compile time.
struct NullTraceSpan {
  constexpr NullTraceSpan(std::nullptr_t, TracePhase) {}
  constexpr void AddItems(uint64_t) {}
};
static_assert(sizeof(NullTraceSpan) == 1, "null sink must carry no state");
static_assert(std::is_trivially_destructible_v<NullTraceSpan>,
              "null sink must compile away");

}  // namespace ksp

#endif  // KSP_CORE_TRACE_H_
