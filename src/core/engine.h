#ifndef KSP_CORE_ENGINE_H_
#define KSP_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "alpha/alpha_index.h"
#include "common/result.h"
#include "common/types.h"
#include "core/query.h"
#include "core/ranking.h"
#include "core/semantic_place.h"
#include "core/stats.h"
#include "rdf/knowledge_base.h"
#include "reach/reachability_index.h"
#include "spatial/rtree.h"
#include "text/inverted_index.h"

namespace ksp {

/// Configuration of the kSP engine. The pruning toggles exist for the
/// ablation study; the shipped defaults reproduce the paper's SP setup.
struct KspEngineOptions {
  /// Ranking function f(L, S); Equation 2 (product) by default.
  RankingFunction ranking = RankingFunction::Product();

  /// Follow edges in both directions during TQSP construction and
  /// preprocessing — the paper's §8 future-work variant.
  bool undirected_edges = false;

  /// Pruning Rule 1 (requires BuildReachabilityIndex). Used by SPP and SP.
  bool use_unqualified_pruning = true;
  /// Pruning Rule 2 (dynamic looseness bound). Used by SPP and SP.
  bool use_dynamic_bound_pruning = true;
  /// Pruning Rules 3 and 4 (requires BuildAlphaIndex). Used by SP.
  bool use_alpha_pruning = true;

  /// Per-query wall-clock limit; the paper aborts BSP at 120 s. A run that
  /// hits the limit returns the best places found so far with
  /// stats.completed = false.
  double time_limit_ms = 120000.0;

  /// R-tree construction: STR bulk loading or one-by-one insertion (the
  /// paper inserts one-by-one "for better quality"; Table 5 notes bulk
  /// loading would drastically cut the cost).
  bool bulk_load_rtree = false;
  RTreeOptions rtree_options;

  /// Inverted index over vertex documents used to build M_q.ψ. Defaults to
  /// the KB's in-memory index; point it at a DiskInvertedIndex to mirror
  /// the paper's disk-resident setting. Must outlive the engine.
  const InvertedIndex* inverted_index = nullptr;
};

/// Wall-clock cost of each preprocessing step (Table 5).
struct PreprocessingTimes {
  double rtree_s = 0.0;
  double reachability_s = 0.0;
  double alpha_s = 0.0;
};

/// The kSP query engine: owns the spatial, reachability and α-radius
/// indexes over one KnowledgeBase and evaluates kSP queries with the
/// paper's three algorithms (BSP §3, SPP §4, SP §5) plus the TA baseline
/// (§6.2.6). Not thread-safe: per-query scratch state is reused.
class KspEngine {
 public:
  explicit KspEngine(const KnowledgeBase* kb)
      : KspEngine(kb, KspEngineOptions()) {}
  KspEngine(const KnowledgeBase* kb, KspEngineOptions options);

  KspEngine(const KspEngine&) = delete;
  KspEngine& operator=(const KspEngine&) = delete;

  /// Creates an engine over the same KB *sharing* the immutable indexes
  /// (R-tree, reachability labels, α-radius file) but with its own
  /// per-query scratch state. Clones are safe to use concurrently with
  /// this engine and with each other, as long as no further Build* call
  /// is made on any of them.
  std::unique_ptr<KspEngine> Clone() const;

  /// ---- Index preparation (individually timed; see Table 5) ----

  /// Builds the R-tree over all place vertices. Required by every
  /// algorithm; called lazily by Execute* if omitted.
  void BuildRTree();

  /// Builds the keyword-reachability oracle (Pruning Rule 1).
  void BuildReachabilityIndex();

  /// Builds the α-radius word neighborhoods and their inverted file.
  void BuildAlphaIndex(uint32_t alpha);

  /// Convenience: all of the above.
  void PrepareAll(uint32_t alpha);

  /// Builds the R-tree only if absent (safe to call repeatedly). Required
  /// before sharing indexes through Clone().
  void BuildRTreeIfNeeded() { EnsureRTree(); }

  /// Persists every built index into `directory` (rtree.bin, reach.bin,
  /// alpha.bin). Unbuilt indexes are skipped.
  Status SaveIndexes(const std::string& directory) const;

  /// Restores previously saved indexes, replacing any built ones. Files
  /// absent from `directory` leave the corresponding index unbuilt; a
  /// places-count mismatch with the KB is rejected.
  Status LoadIndexes(const std::string& directory);

  /// Requires BuildRTree() (or any Execute*, which builds it lazily).
  const RTree& rtree() const { return *rtree_; }
  const ReachabilityIndex* reachability_index() const {
    return reach_.get();
  }
  const AlphaIndex* alpha_index() const { return alpha_.get(); }
  PreprocessingTimes preprocessing_times() const { return prep_times_; }
  const KnowledgeBase& kb() const { return *kb_; }
  const KspEngineOptions& options() const { return options_; }

  /// Resolves keyword strings against the KB vocabulary and builds a
  /// query. Unknown keywords map to kInvalidTerm (the query then has an
  /// empty result, matching Definition 1).
  KspQuery MakeQuery(const Point& location,
                     const std::vector<std::string>& keywords,
                     uint32_t k) const;

  /// ---- Query algorithms ----

  /// Basic Semantic Place retrieval (Algorithm 1).
  Result<KspResult> ExecuteBsp(const KspQuery& query,
                               QueryStats* stats = nullptr);

  /// Semantic Place retrieval with Pruning Rules 1 and 2 (§4).
  Result<KspResult> ExecuteSpp(const KspQuery& query,
                               QueryStats* stats = nullptr);

  /// Semantic Place retrieval with α-radius bounds (Algorithm 4, §5).
  Result<KspResult> ExecuteSp(const KspQuery& query,
                              QueryStats* stats = nullptr);

  /// Threshold Algorithm baseline combining a looseness-ordered keyword
  /// stream with the spatial NN stream (§6.2.6).
  Result<KspResult> ExecuteTa(const KspQuery& query,
                              QueryStats* stats = nullptr);

  /// Location-free RDF keyword search ([43]/BLINKS restricted to place
  /// roots): the top-k places by looseness alone. query.location is
  /// ignored for ranking (entry.score == looseness); spatial distance is
  /// still reported per entry.
  Result<KspResult> ExecuteKeywordOnly(const KspQuery& query,
                                       QueryStats* stats = nullptr);

  /// Computes the TQSP of one place for a query (Algorithm 2), with the
  /// full tree (matched vertices and root paths) materialized.
  SemanticPlaceTree ComputeTqspForPlace(PlaceId place, const KspQuery& query);

  /// Footnote 2, option (2): like ComputeTqspForPlace but collecting, per
  /// keyword, *every* vertex at the minimum distance — i.e., the full set
  /// of tied minimum-looseness semantic places rooted at `place`.
  TiedSemanticPlace ComputeTqspAlternatives(PlaceId place,
                                            const KspQuery& query);

 private:
  friend class TaSearch;

  /// Per-query derived state: deduplicated keywords, their posting lists,
  /// and the vertex -> keyword-bitmask map M_q.ψ of §3.
  struct QueryContext {
    const KspQuery* query = nullptr;
    std::vector<TermId> terms;  // deduplicated, query order
    uint64_t full_mask = 0;
    bool answerable = true;
    std::unordered_map<VertexId, uint64_t> vertex_mask;  // M_q.ψ
    std::vector<std::vector<VertexId>> postings;  // aligned with terms
    std::vector<uint32_t> rarest_first;  // keyword idxs by posting length

    uint64_t MaskOf(VertexId v) const {
      auto it = vertex_mask.find(v);
      return it == vertex_mask.end() ? 0 : it->second;
    }
  };

  Status PrepareContext(const KspQuery& query, QueryContext* ctx) const;

  /// Shared loop of BSP and SPP: places in ascending spatial distance,
  /// optional Pruning Rules 1 and 2.
  Result<KspResult> ExecuteSpatialFirst(const KspQuery& query,
                                        QueryStats* stats, bool use_rule1,
                                        bool use_rule2);

  /// GetSemanticPlace / GetSemanticPlaceP: BFS TQSP construction. Returns
  /// L(T_p) or +inf (unqualified, or aborted by the dynamic bound when
  /// `looseness_threshold` < +inf and dynamic pruning is on). If `tree` is
  /// non-null, matches and root paths are materialized on success.
  double ComputeTqsp(VertexId root, const QueryContext& ctx,
                     double looseness_threshold, bool use_dynamic_bound,
                     SemanticPlaceTree* tree, QueryStats* stats);

  /// Pruning Rule 1: true if some query keyword is unreachable from root.
  bool IsUnqualifiedPlace(VertexId root, const QueryContext& ctx,
                          QueryStats* stats) const;

  void EnsureRTree();

  const KnowledgeBase* kb_;
  KspEngineOptions options_;
  const InvertedIndex* inverted_;

  std::shared_ptr<const RTree> rtree_;
  std::shared_ptr<const ReachabilityIndex> reach_;
  std::shared_ptr<const AlphaIndex> alpha_;
  PreprocessingTimes prep_times_;

  /// BFS scratch (epoch-tagged to avoid per-query clears).
  std::vector<uint32_t> visit_epoch_;
  std::vector<VertexId> bfs_parent_;
  uint32_t epoch_ = 0;
};

/// Bounded top-k accumulator ordered by (score, place) with the threshold
/// θ used by all algorithms' pruning rules.
class TopKHeap {
 public:
  explicit TopKHeap(uint32_t k) : k_(k) {}

  /// θ: score of the current k-th candidate; +inf while not full.
  double Threshold() const;

  /// Inserts if the entry beats the current k-th candidate.
  void Add(KspResultEntry entry);

  bool Full() const { return entries_.size() >= k_; }

  /// Entries in ascending (score, place) order.
  KspResult Finish() &&;

 private:
  uint32_t k_;
  /// Max-heap on (score, place): worst candidate at front.
  std::vector<KspResultEntry> entries_;
};

}  // namespace ksp

#endif  // KSP_CORE_ENGINE_H_
