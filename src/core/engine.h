#ifndef KSP_CORE_ENGINE_H_
#define KSP_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/query.h"
#include "core/semantic_place.h"
#include "core/stats.h"

namespace ksp {

/// DEPRECATED facade over the KspDatabase / QueryExecutor split, kept so
/// existing callers compile for one release. It bundles one database and
/// one executor behind the old monolithic API, including the legacy
/// lazy R-tree build on the query path. New code should hold a
/// KspDatabase (prepared up front) and construct QueryExecutors per
/// thread or per query; see DESIGN.md.
class KspEngine {
 public:
  explicit KspEngine(const KnowledgeBase* kb)
      : KspEngine(kb, KspEngineOptions()) {}
  KspEngine(const KnowledgeBase* kb, KspEngineOptions options);

  KspEngine(const KspEngine&) = delete;
  KspEngine& operator=(const KspEngine&) = delete;

  /// DEPRECATED: share the KspDatabase and construct one QueryExecutor
  /// per thread instead. Creates an engine whose executor runs against
  /// this engine's database (indexes shared, scratch private), safe to
  /// use concurrently with this engine as long as no further Build* call
  /// is made on either.
  std::unique_ptr<KspEngine> Clone() const;

  /// The database this facade wraps — the migration path off KspEngine.
  const KspDatabase& database() const { return *db_; }

  /// ---- Index preparation (forwarded to the database) ----

  void BuildRTree() { db_->BuildRTree(); }
  void BuildReachabilityIndex() { db_->BuildReachabilityIndex(); }
  void BuildAlphaIndex(uint32_t alpha) { db_->BuildAlphaIndex(alpha); }
  void PrepareAll(uint32_t alpha) { db_->PrepareAll(alpha); }
  void BuildRTreeIfNeeded() { db_->BuildRTreeIfNeeded(); }
  Status SaveIndexes(const std::string& directory) const {
    return db_->SaveIndexes(directory);
  }
  Status LoadIndexes(const std::string& directory) {
    return db_->LoadIndexes(directory);
  }

  /// Requires BuildRTree() (or any Execute*, which builds it lazily).
  const RTree& rtree() const { return db_->rtree(); }
  const ReachabilityIndex* reachability_index() const {
    return db_->reachability_index();
  }
  const AlphaIndex* alpha_index() const { return db_->alpha_index(); }
  PreprocessingTimes preprocessing_times() const {
    return db_->preprocessing_times();
  }
  const KnowledgeBase& kb() const { return db_->kb(); }
  const KspEngineOptions& options() const { return db_->options(); }

  KspQuery MakeQuery(const Point& location,
                     const std::vector<std::string>& keywords,
                     uint32_t k) const {
    return db_->MakeQuery(location, keywords, k);
  }

  /// ---- Query algorithms (legacy lazy R-tree build preserved) ----

  Result<KspResult> ExecuteBsp(const KspQuery& query,
                               QueryStats* stats = nullptr);
  Result<KspResult> ExecuteSpp(const KspQuery& query,
                               QueryStats* stats = nullptr);
  Result<KspResult> ExecuteSp(const KspQuery& query,
                              QueryStats* stats = nullptr);
  Result<KspResult> ExecuteTa(const KspQuery& query,
                              QueryStats* stats = nullptr);
  Result<KspResult> ExecuteKeywordOnly(const KspQuery& query,
                                       QueryStats* stats = nullptr);

  /// DEPRECATED: crashes on an invalid query (e.g. more than 64 distinct
  /// keywords); QueryExecutor::ComputeTqspForPlace returns Status instead.
  SemanticPlaceTree ComputeTqspForPlace(PlaceId place, const KspQuery& query);

  /// DEPRECATED: see ComputeTqspForPlace.
  TiedSemanticPlace ComputeTqspAlternatives(PlaceId place,
                                            const KspQuery& query);

 private:
  /// Clone(): wraps a fresh executor around an existing shared database.
  explicit KspEngine(std::shared_ptr<KspDatabase> db);

  std::shared_ptr<KspDatabase> db_;
  QueryExecutor exec_;
};

}  // namespace ksp

#endif  // KSP_CORE_ENGINE_H_
