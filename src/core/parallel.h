#ifndef KSP_CORE_PARALLEL_H_
#define KSP_CORE_PARALLEL_H_

#include <vector>

#include "common/result.h"
#include "core/engine.h"

namespace ksp {

/// Which kSP algorithm a batch run uses.
enum class KspAlgorithm { kBsp, kSpp, kSp, kTa };

const char* KspAlgorithmName(KspAlgorithm algorithm);

/// Dispatches one query on one engine.
Result<KspResult> ExecuteWith(KspEngine* engine, KspAlgorithm algorithm,
                              const KspQuery& query,
                              QueryStats* stats = nullptr);

struct BatchRunOptions {
  KspAlgorithm algorithm = KspAlgorithm::kSp;
  /// Worker threads; each gets an engine Clone() sharing the indexes.
  /// 1 executes inline on the given engine.
  size_t num_threads = 1;
};

/// Answers a batch of queries, optionally across threads. The engine's
/// indexes must already be built (PrepareAll). Results are positionally
/// aligned with `queries`; `total_stats`, if given, accumulates all
/// per-query counters. Fails fast on the first query error.
Result<std::vector<KspResult>> RunQueryBatch(
    KspEngine* engine, const std::vector<KspQuery>& queries,
    const BatchRunOptions& options, QueryStats* total_stats = nullptr);

}  // namespace ksp

#endif  // KSP_CORE_PARALLEL_H_
