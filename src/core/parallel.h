#ifndef KSP_CORE_PARALLEL_H_
#define KSP_CORE_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "core/database.h"
#include "core/executor.h"

namespace ksp {

/// Per-query execution knobs, orthogonal to the algorithm choice.
struct QueryExecutionOptions {
  /// Intra-query parallelism for BSP/SPP/SP (DESIGN.md §8): >= 2 runs
  /// the speculative producer/worker/ordered-commit pipeline with that
  /// many TQSP workers; results are bit-identical to sequential at every
  /// value. 1 (default) runs the untouched sequential path. TA and
  /// keyword-only ignore this.
  uint32_t intra_query_threads = 1;
};

/// Dispatches one query on one executor.
Result<KspResult> ExecuteWith(QueryExecutor* executor,
                              KspAlgorithm algorithm, const KspQuery& query,
                              QueryStats* stats = nullptr);

/// Like above, applying `execution` (e.g. intra-query threads) to the
/// executor for this and subsequent calls.
Result<KspResult> ExecuteWith(QueryExecutor* executor,
                              KspAlgorithm algorithm, const KspQuery& query,
                              const QueryExecutionOptions& execution,
                              QueryStats* stats = nullptr);

struct BatchRunOptions {
  KspAlgorithm algorithm = KspAlgorithm::kSp;
  /// Worker threads; each runs its own QueryExecutor against the shared
  /// database. 1 executes inline on the calling thread. Composes with
  /// execution.intra_query_threads (total threads ≈ product; prefer
  /// inter-query parallelism for throughput, intra-query for latency).
  size_t num_threads = 1;
  /// Per-query execution knobs applied to every executor in the batch.
  QueryExecutionOptions execution;
};

/// Per-batch aggregate instrumentation. Per-query counters are summed
/// worker-locally and merged once per batch, so accumulation never
/// contends across threads.
struct BatchRunStats {
  /// Sum of every query's QueryStats (QueryStats::Accumulate semantics).
  QueryStats totals;
  /// Wall-clock spent inside each worker's query loop, indexed by worker.
  /// Single-threaded runs report one entry. The spread between entries
  /// shows batch load imbalance.
  std::vector<double> worker_wall_ms;
  /// ksp_* query metrics merged across the pool's per-worker registries
  /// (DESIGN.md §7). Pool registries are cumulative over the pool's
  /// lifetime, so counters cover every batch run so far, not just this
  /// one; transient RunQueryBatch pools cover exactly one batch.
  MetricsSnapshot metrics;
};

/// A persistent pool of worker threads, each owning one QueryExecutor
/// over the same shared KspDatabase — the serving-path replacement for
/// the old clone-an-engine-per-thread pattern. Workers are started once
/// and reused across Run() calls; executor scratch (BFS epochs) stays
/// warm between batches.
///
/// The database must be prepared before Run() (Execute* errors
/// otherwise). Run() is not itself thread-safe: one batch at a time.
class QueryExecutorPool {
 public:
  QueryExecutorPool(const KspDatabase* db, size_t num_threads);
  ~QueryExecutorPool();

  QueryExecutorPool(const QueryExecutorPool&) = delete;
  QueryExecutorPool& operator=(const QueryExecutorPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Answers `queries` across the pool. Results are positionally aligned
  /// with `queries`; fails fast on the first query error (remaining
  /// queries are skipped). `stats`, if given, receives merged per-query
  /// totals and per-worker wall-clock.
  Result<std::vector<KspResult>> Run(const std::vector<KspQuery>& queries,
                                     KspAlgorithm algorithm,
                                     BatchRunStats* stats = nullptr);

  /// Like Run(), applying `execution` to every pool executor first.
  Result<std::vector<KspResult>> Run(const std::vector<KspQuery>& queries,
                                     KspAlgorithm algorithm,
                                     const QueryExecutionOptions& execution,
                                     BatchRunStats* stats = nullptr);

 private:
  struct Worker {
    std::thread thread;
    std::unique_ptr<QueryExecutor> executor;
    /// Worker-local registry (unique_ptr: MetricsRegistry is pinned, and
    /// Worker lives in a vector). Merged into BatchRunStats::metrics.
    std::unique_ptr<MetricsRegistry> registry;
    QueryStats sum;          // Merged into the batch total by Run().
    double wall_ms = 0.0;    // Time inside this worker's query loop.
  };

  void WorkerLoop(Worker* worker);

  const KspDatabase* db_;
  std::vector<Worker> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  /// Incremented per batch; workers run when their seen count lags.
  uint64_t generation_ = 0;
  size_t active_workers_ = 0;
  bool shutdown_ = false;

  /// Current batch (valid while active_workers_ > 0).
  const std::vector<KspQuery>* queries_ = nullptr;
  std::vector<KspResult>* results_ = nullptr;
  KspAlgorithm algorithm_ = KspAlgorithm::kSp;
  std::atomic<size_t> next_{0};
  std::atomic<bool> failed_{false};
  Status first_error_;
};

/// Answers a batch of queries against one shared prepared database,
/// optionally across threads (a transient QueryExecutorPool for
/// num_threads > 1; construct a pool directly to amortize thread startup
/// across batches). Results are positionally aligned with `queries`.
/// Fails fast on the first query error.
Result<std::vector<KspResult>> RunQueryBatch(
    const KspDatabase& db, const std::vector<KspQuery>& queries,
    const BatchRunOptions& options, BatchRunStats* stats = nullptr);

}  // namespace ksp

#endif  // KSP_CORE_PARALLEL_H_
