#include "core/parallel_query.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/timer.h"
#include "spatial/rtree.h"

namespace ksp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stream granularity of the spatial-first producer: one lock round-trip
/// and one NN-iterator mutex acquisition per batch.
constexpr size_t kProducerBatchSize = 32;

/// Mirror of the SP priority-queue item in sp.cc — the producer replays
/// the exact sequential pop order, so the key and tie layout must match.
struct AlphaQueueItem {
  double score_bound;
  double spatial_lb;
  bool is_node;
  uint64_t id;
};

struct AlphaQueueOrder {
  bool operator()(const AlphaQueueItem& a, const AlphaQueueItem& b) const {
    return a.score_bound > b.score_bound;  // Min-heap.
  }
};

/// Member-wise `cumulative - *snapshot`, advancing the snapshot — the
/// producer folds cumulative iterator/cursor counters incrementally so
/// each delta lands in the trace exactly once.
PageIoCounters TakeIoDelta(const PageIoCounters& cumulative,
                           PageIoCounters* snapshot) {
  PageIoCounters delta;
  delta.hits = cumulative.hits - snapshot->hits;
  delta.misses = cumulative.misses - snapshot->misses;
  delta.evictions = cumulative.evictions - snapshot->evictions;
  delta.micros = cumulative.micros - snapshot->micros;
  *snapshot = cumulative;
  return delta;
}

}  // namespace

IntraQueryPipeline::IntraQueryPipeline(const KspDatabase* db,
                                       uint32_t num_workers)
    : db_(db) {
  KSP_CHECK(db_ != nullptr);
  KSP_CHECK(num_workers >= 1);
  worker_execs_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    worker_execs_.push_back(std::make_unique<QueryExecutor>(db));
  }
  worker_traces_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    worker_traces_.push_back(std::make_unique<QueryTrace>());
    worker_traces_.back()->set_record_spans(false);
  }
  producer_trace_.set_record_spans(false);
  worker_semantic_s_.assign(num_workers, 0.0);
  ring_.resize(std::max<size_t>(64, 4 * static_cast<size_t>(num_workers)));
  threads_.reserve(num_workers + 1);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  threads_.emplace_back([this] { ProducerLoop(); });
}

IntraQueryPipeline::~IntraQueryPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void IntraQueryPipeline::ProducerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock,
             [&] { return shutdown_ || generation_ != seen_generation; });
    if (shutdown_) return;
    seen_generation = generation_;
    const Mode mode = mode_;
    lock.unlock();
    const Status status = mode == Mode::kSpatialFirst ? ProduceSpatialFirst()
                                                      : ProduceAlphaOrdered();
    lock.lock();
    producer_page_io_.Add(producer_cursor_.io);
    producer_cursor_.io = PageIoCounters();
    if (!status.ok() && run_status_.ok()) run_status_ = status;
    producer_done_ = true;
    --active_;
    cv_.notify_all();
  }
}

void IntraQueryPipeline::WorkerLoop(size_t worker_index) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock,
             [&] { return shutdown_ || generation_ != seen_generation; });
    if (shutdown_) return;
    seen_generation = generation_;
    for (;;) {
      Slot* claimed = nullptr;
      while (claim_cursor_ < produced_) {
        Slot& slot = ring_[claim_cursor_ % ring_.size()];
        ++claim_cursor_;
        if (slot.state == SlotState::kProduced) {
          slot.state = SlotState::kClaimed;
          claimed = &slot;
          break;
        }
      }
      if (claimed == nullptr) {
        // Cursor has caught up with production: either the run is over or
        // the producer is still streaming.
        if (stop_ || producer_done_) break;
        cv_.wait(lock);
        continue;
      }
      lock.unlock();
      ProcessCandidate(worker_index, claimed);
      lock.lock();
      claimed->state = SlotState::kDone;
      cv_.notify_all();  // The commit stage may be waiting on this slot.
    }
    --active_;
    cv_.notify_all();
  }
}

bool IntraQueryPipeline::EmitSlot(std::unique_lock<std::mutex>& lock,
                                  bool is_node, uint64_t id, double spatial,
                                  double score_bound, uint64_t rtree_nodes) {
  cv_.wait(lock,
           [&] { return stop_ || produced_ - committed_ < ring_.size(); });
  if (stop_) return false;
  Slot& slot = ring_[produced_ % ring_.size()];
  slot.seq = produced_;
  slot.is_node = is_node;
  slot.spatial = spatial;
  slot.score_bound = score_bound;
  slot.rtree_nodes = rtree_nodes;
  if (is_node) {
    slot.place = kInvalidPlace;
    slot.root = kInvalidVertex;
    slot.state = SlotState::kDone;  // Nothing for a worker to do.
  } else {
    slot.place = static_cast<PlaceId>(id);
    slot.root = db_->kb().place_vertex(slot.place);
    slot.state = SlotState::kProduced;
    slot.result = SpecResult();
  }
  ++produced_;
  cv_.notify_all();
  return true;
}

Status IntraQueryPipeline::ProduceSpatialFirst() {
  const KspOptions& options = db_->options();
  QueryTrace* ptrace = tracing_ ? &producer_trace_ : nullptr;
  BatchedNearestIterator iterator(db_->spatial_accessor(), query_->location);
  std::vector<BatchedNearestIterator::BatchItem> batch;
  batch.reserve(kProducerBatchSize);
  PageIoCounters io_snapshot;
  bool stop_stream = false;
  while (!stop_stream) {
    batch.clear();
    size_t fetched;
    {
      TraceSpan span(ptrace, TracePhase::kRtreeNn);
      fetched = iterator.NextBatch(kProducerBatchSize, &batch);
      span.AddItems(fetched);
      const PageIoCounters delta = TakeIoDelta(iterator.io(), &io_snapshot);
      if (ptrace != nullptr && !delta.IsZero()) {
        ptrace->AddChildTime(TracePhase::kPageIo, delta.micros,
                             delta.Fetches());
      }
      producer_cursor_.io.Add(delta);
    }
    if (fetched == 0) break;
    std::unique_lock<std::mutex> lock(mu_);
    for (const BatchedNearestIterator::BatchItem& bi : batch) {
      const double score_bound =
          options.ranking.MinScoreGivenSpatialDistance(bi.item.distance);
      if (!EmitSlot(lock, bi.item.is_node, bi.item.id, bi.item.distance,
                    score_bound, bi.nodes_accessed)) {
        return Status::OK();  // Run stopped (commit terminated/timed out).
      }
      // Sound early stop: θ only decreases, so if this item's bound
      // already meets the current θ it meets the (no larger) exact
      // commit-time θ too — the ordered commit terminates at or before
      // the item just emitted, and the rest of the stream is dead.
      if (score_bound >= theta_.load(std::memory_order_relaxed)) {
        stop_stream = true;
        break;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Exact "R-tree nodes accessed" for the stream-exhausted case (commit
  // uses per-item snapshots for every other termination).
  producer_rtree_nodes_ = iterator.nodes_accessed();
  return iterator.status();
}

Status IntraQueryPipeline::ProduceAlphaOrdered() {
  const KspOptions& options = db_->options();
  const SpatialAccessor& rtree = *db_->spatial_accessor();
  const AlphaIndex& alpha = *db_->alpha_index();
  const double alpha_plus_one = static_cast<double>(alpha.alpha() + 1);
  QueryTrace* ptrace = tracing_ ? &producer_trace_ : nullptr;
  // Snapshot of producer_cursor_.io already credited to ptrace — reads
  // fold their delta into the trace right where they happen, while the
  // cumulative counters ride in the cursor until the producer parks.
  PageIoCounters io_snapshot;
  auto fold_read_io = [&] {
    const PageIoCounters delta = TakeIoDelta(producer_cursor_.io,
                                             &io_snapshot);
    if (ptrace != nullptr && !delta.IsZero()) {
      ptrace->AddChildTime(TracePhase::kPageIo, delta.micros,
                           delta.Fetches());
    }
  };

  // Keep in sync with the sequential bound in sp.cc (Lemmas 2 and 4).
  auto alpha_looseness_bound = [&](uint32_t entry_id) {
    double bound = 1.0;
    for (TermId t : ctx_->terms) {
      auto d = alpha.EntryTermDistance(entry_id, t);
      bound += d.has_value() ? static_cast<double>(*d) : alpha_plus_one;
    }
    return bound;
  };

  std::priority_queue<AlphaQueueItem, std::vector<AlphaQueueItem>,
                      AlphaQueueOrder>
      pq;
  {
    const uint32_t root = rtree.root();
    Rect root_rect;
    const Status root_status =
        rtree.NodeRect(root, &producer_cursor_, &root_rect);
    fold_read_io();
    KSP_RETURN_NOT_OK(root_status);
    const double s_lb = MinDist(query_->location, root_rect);
    const double l_b = alpha_looseness_bound(alpha.NodeEntry(root));
    pq.push(AlphaQueueItem{options.ranking.Score(l_b, s_lb), s_lb,
                           /*is_node=*/true, root});
  }

  while (!pq.empty()) {
    AlphaQueueItem item = pq.top();
    pq.pop();

    if (!item.is_node) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!EmitSlot(lock, /*is_node=*/false, item.id, item.spatial_lb,
                    item.score_bound, 0)) {
        return Status::OK();
      }
      // Same sound early stop as the spatial producer.
      if (item.score_bound >= theta_.load(std::memory_order_relaxed)) {
        return Status::OK();
      }
      continue;
    }

    // Node pop: the termination test, the node-access count, and the
    // Rule-3/4 push gates below all need the *exact* θ. Barrier until
    // every emitted place has committed — θ is then final for this point
    // of the stream and, with no uncommitted places outstanding and none
    // emitted during expansion, cannot change until the next place.
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || committed_ == produced_; });
      if (stop_) return Status::OK();
      if (total_timer_->ElapsedMillis() > options.time_limit_ms) {
        producer_timeout_ = true;
        return Status::OK();
      }
      if (item.score_bound >= theta_.load(std::memory_order_relaxed)) {
        // Termination (Algorithm 4, line 9): node not counted.
        return Status::OK();
      }
      ++producer_rtree_nodes_;
    }
    const double theta = theta_.load(std::memory_order_relaxed);
    TraceSpan span(ptrace, TracePhase::kRtreeNn);
    SpatialNodeRef node;
    const Status node_status = rtree.ReadNode(
        static_cast<uint32_t>(item.id), &producer_cursor_, &node);
    fold_read_io();
    KSP_RETURN_NOT_OK(node_status);
    span.AddItems(node.entries.size());
    for (const RTree::Entry& e : node.entries) {
      const double s_lb = MinDist(query_->location, e.rect);
      const uint32_t entry_id =
          node.is_leaf ? alpha.PlaceEntry(static_cast<PlaceId>(e.id))
                       : alpha.NodeEntry(static_cast<uint32_t>(e.id));
      const double l_b = alpha_looseness_bound(entry_id);
      const double f_b = options.ranking.Score(l_b, s_lb);
      if (f_b >= theta) {
        if (node.is_leaf) {
          ++producer_pruned_rule3_;  // Pruning Rule 3.
        } else {
          ++producer_pruned_rule4_;  // Pruning Rule 4.
        }
        continue;
      }
      pq.push(AlphaQueueItem{f_b, s_lb, !node.is_leaf, e.id});
    }
  }
  return Status::OK();
}

void IntraQueryPipeline::ProcessCandidate(size_t worker_index, Slot* slot) {
  QueryExecutor* exec = worker_execs_[worker_index].get();
  QueryTrace* wtrace = tracing_ ? worker_traces_[worker_index].get() : nullptr;
  const KspOptions& options = db_->options();
  SpecResult& r = slot->result;
  QueryStats local;
  if (use_rule1_) {
    // Rule 1 is θ-independent, so the probe (and its rarest-first
    // short-circuit count) is already exact for committed candidates.
    TraceSpan span(wtrace, TracePhase::kRule1Prune);
    r.rule1_unqualified = exec->IsUnqualifiedPlace(slot->root, *ctx_, &local);
    r.reach_queries = local.reachability_queries;
    if (r.rule1_unqualified) return;
  }
  spec_tqsp_runs_.fetch_add(1, std::memory_order_relaxed);
  double looseness_threshold = kInf;
  TqspSpeculation spec;
  const TqspSpeculation* spec_ptr = nullptr;
  if (use_rule2_) {
    looseness_threshold = options.ranking.LoosenessThreshold(
        theta_.load(std::memory_order_relaxed), slot->spatial);
    spec.live_theta = &theta_;
    spec.ranking = &options.ranking;
    spec.spatial_distance = slot->spatial;
    spec.bound_log = &r.bound_log;
    spec_ptr = &spec;
  }
  r.tree.place = slot->place;
  {
    ScopedTimer semantic_timer(&worker_semantic_s_[worker_index]);
    TraceSpan span(wtrace, TracePhase::kTqspCompute);
    r.looseness =
        exec->ComputeTqsp(slot->root, *ctx_, looseness_threshold, use_rule2_,
                          &r.tree, &local, spec_ptr);
    span.AddItems(local.vertices_visited);
  }
  r.visits = local.vertices_visited;
  // Workers never consult the dg cache (the commit-time replay depends on
  // the BFS having run), but their ComputeTqsp calls do insert into it;
  // surface the evictions those inserts caused.
  if (local.cache_evictions != 0) {
    spec_cache_evictions_.fetch_add(local.cache_evictions,
                                    std::memory_order_relaxed);
  }
  // Disk backend: the worker's BFS page-I/O was folded into `local` by
  // ComputeTqsp; surface it run-wide (interleaving-dependent, like the
  // wasted-speculation count).
  if (local.bufferpool_hits != 0 || local.bufferpool_misses != 0 ||
      local.bufferpool_evictions != 0) {
    spec_bufferpool_hits_.fetch_add(local.bufferpool_hits,
                                    std::memory_order_relaxed);
    spec_bufferpool_misses_.fetch_add(local.bufferpool_misses,
                                      std::memory_order_relaxed);
    spec_bufferpool_evictions_.fetch_add(local.bufferpool_evictions,
                                         std::memory_order_relaxed);
  }
}

void IntraQueryPipeline::CommitCandidate(Slot* slot, TopKHeap* heap,
                                         QueryStats* st, QueryTrace* trace) {
  const KspOptions& options = db_->options();
  SpecResult& r = slot->result;
  st->reachability_queries += r.reach_queries;
  if (use_rule1_ && r.rule1_unqualified) {
    ++st->pruned_unqualified;  // Pruning Rule 1 (exact: θ-independent).
    return;
  }
  ++st->tqsp_computations;
  if (use_rule2_) {
    const double looseness_threshold =
        options.ranking.LoosenessThreshold(heap->Threshold(), slot->spatial);
    // Replay the monotone bound trajectory against the exact commit-time
    // threshold: the bound is constant between recorded steps, so the
    // first step with bound >= threshold is precisely the pop at which
    // the sequential BFS aborts (Pruning Rule 2). A speculative abort
    // always lands here — the worker's thresholds were all >= this one.
    auto step = std::lower_bound(
        r.bound_log.begin(), r.bound_log.end(), looseness_threshold,
        [](const TqspBoundStep& s, double t) { return s.bound < t; });
    if (step != r.bound_log.end()) {
      ++st->pruned_dynamic_bound;
      st->vertices_visited += step->pop_index + 1;  // Abort pop counted.
      if (trace != nullptr) trace->RecordEvent(TracePhase::kRule2Prune);
      return;
    }
  }
  // No replay hit: the worker necessarily ran the BFS to completion, so
  // its visit count and looseness are the sequential ones.
  st->vertices_visited += r.visits;
  if (r.looseness == kInf) return;  // Unqualified place.
  KspResultEntry entry;
  entry.place = slot->place;
  entry.looseness = r.looseness;
  entry.spatial_distance = slot->spatial;
  entry.score = options.ranking.Score(r.looseness, slot->spatial);
  entry.tree = std::move(r.tree);
  heap->Add(std::move(entry));
}

void IntraQueryPipeline::CommitLoop(std::unique_lock<std::mutex>& lock,
                                    const Timer& total_timer, TopKHeap* heap,
                                    QueryStats* st, QueryTrace* trace) {
  const KspOptions& options = db_->options();
  // Sole interruption authority of the run. A worker whose BFS was cut
  // short reports +inf looseness, which would commit as "unqualified" —
  // a wrong answer, not just a slow one. The token is sticky, so a trip
  // any worker observed before marking its slot kDone is visible here
  // (slot-done is published under mu_), and checking before every commit
  // keeps cut-short speculation out of the heap. A trip first observed
  // *after* the stream already committed to completion changes nothing:
  // the result is complete and is returned as such.
  auto interrupted = [&]() -> bool {
    if (run_cancel_ == nullptr) return false;
    Status s = run_cancel_->Check();
    if (!s.ok()) {
      if (run_status_.ok()) run_status_ = std::move(s);
      return true;
    }
    return false;
  };
  for (;;) {
    cv_.wait(lock, [&] { return committed_ < produced_ || producer_done_; });
    if (committed_ == produced_) {
      // Stream over: exhausted, or terminated/timed out producer-side
      // (SP node pops — exact behind the barrier).
      st->rtree_nodes_accessed = producer_rtree_nodes_;
      if (producer_timeout_) st->completed = false;
      if (interrupted()) st->completed = false;
      return;
    }
    Slot& slot = ring_[committed_ % ring_.size()];
    // Same per-item order as the sequential loops: timeout first, then
    // the ascending-bound termination test, then the candidate itself.
    if (total_timer.ElapsedMillis() > options.time_limit_ms) {
      st->completed = false;
      st->rtree_nodes_accessed = mode_ == Mode::kSpatialFirst
                                     ? slot.rtree_nodes
                                     : producer_rtree_nodes_;
      return;
    }
    if (interrupted()) {
      st->completed = false;
      st->rtree_nodes_accessed = mode_ == Mode::kSpatialFirst
                                     ? slot.rtree_nodes
                                     : producer_rtree_nodes_;
      return;
    }
    if (slot.score_bound >= heap->Threshold()) {
      st->rtree_nodes_accessed = mode_ == Mode::kSpatialFirst
                                     ? slot.rtree_nodes
                                     : producer_rtree_nodes_;
      return;
    }
    if (!slot.is_node) {
      cv_.wait(lock, [&] { return slot.state == SlotState::kDone; });
      if (interrupted()) {
        st->completed = false;
        st->rtree_nodes_accessed = mode_ == Mode::kSpatialFirst
                                       ? slot.rtree_nodes
                                       : producer_rtree_nodes_;
        return;
      }
      CommitCandidate(&slot, heap, st, trace);
      theta_.store(heap->Threshold(), std::memory_order_relaxed);
    }
    ++committed_;
    cv_.notify_all();
  }
}

Status IntraQueryPipeline::Run(Mode mode, const KspQuery& query,
                               const QueryExecutor::QueryContext& ctx,
                               bool use_rule1, bool use_rule2,
                               const Timer& total_timer, TopKHeap* heap,
                               QueryStats* stats, double* semantic_seconds,
                               QueryTrace* trace, CancellationToken* cancel,
                               uint64_t cache_epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  mode_ = mode;
  query_ = &query;
  ctx_ = &ctx;
  use_rule1_ = use_rule1;
  use_rule2_ = use_rule2;
  total_timer_ = &total_timer;
  run_cancel_ = cancel;
  tracing_ = trace != nullptr;
  produced_ = committed_ = claim_cursor_ = 0;
  producer_done_ = producer_timeout_ = stop_ = false;
  producer_rtree_nodes_ = producer_pruned_rule3_ = producer_pruned_rule4_ = 0;
  producer_cursor_.io = PageIoCounters();
  producer_page_io_ = PageIoCounters();
  run_status_ = Status::OK();
  theta_.store(heap->Threshold(), std::memory_order_relaxed);
  spec_tqsp_runs_.store(0, std::memory_order_relaxed);
  spec_cache_evictions_.store(0, std::memory_order_relaxed);
  spec_bufferpool_hits_.store(0, std::memory_order_relaxed);
  spec_bufferpool_misses_.store(0, std::memory_order_relaxed);
  spec_bufferpool_evictions_.store(0, std::memory_order_relaxed);
  producer_trace_.Clear();
  for (size_t i = 0; i < worker_traces_.size(); ++i) {
    worker_traces_[i]->Clear();
    worker_semantic_s_[i] = 0.0;
    // Workers fold their BFS page-I/O through their executor's active
    // trace; point it at the per-worker aggregate (or detach when the
    // run is untraced) and clear any sticky error from a prior run.
    worker_execs_[i]->set_trace(tracing_ ? worker_traces_[i].get() : nullptr);
    worker_execs_[i]->graph_cursor_.ResetIo();
    // Share the run's token so worker BFS loops stop early on a trip
    // (set_cancellation also clears the sticky interrupt of a prior run)
    // and pin the workers' dg-cache inserts to the driving executor's
    // epoch snapshot.
    worker_execs_[i]->set_cancellation(run_cancel_);
    worker_execs_[i]->cache_epoch_ = cache_epoch;
  }
  active_ = worker_execs_.size() + 1;
  ++generation_;
  cv_.notify_all();

  CommitLoop(lock, total_timer, heap, stats, trace);

  // Quiesce: in-flight speculation finishes, producer and workers park.
  stop_ = true;
  cv_.notify_all();
  cv_.wait(lock, [&] { return active_ == 0; });

  // Detach the caller-owned token before Run returns — it must not
  // dangle into the next run (which may carry no token at all).
  for (const auto& exec : worker_execs_) exec->set_cancellation(nullptr);
  run_cancel_ = nullptr;

  stats->pruned_alpha_place += producer_pruned_rule3_;
  stats->pruned_alpha_node += producer_pruned_rule4_;
  stats->speculative_wasted_tqsp +=
      spec_tqsp_runs_.load(std::memory_order_relaxed) -
      stats->tqsp_computations;
  stats->cache_evictions +=
      spec_cache_evictions_.load(std::memory_order_relaxed);
  stats->AddPageIo(producer_page_io_);
  stats->bufferpool_hits +=
      spec_bufferpool_hits_.load(std::memory_order_relaxed);
  stats->bufferpool_misses +=
      spec_bufferpool_misses_.load(std::memory_order_relaxed);
  stats->bufferpool_evictions +=
      spec_bufferpool_evictions_.load(std::memory_order_relaxed);
  for (double seconds : worker_semantic_s_) *semantic_seconds += seconds;
  for (const auto& exec : worker_execs_) {
    if (run_status_.ok() && !exec->graph_cursor_.status.ok()) {
      run_status_ = exec->graph_cursor_.status;
    }
  }
  if (trace != nullptr) {
    trace->MergeAggregates(producer_trace_);
    for (const auto& wt : worker_traces_) trace->MergeAggregates(*wt);
  }
  query_ = nullptr;
  ctx_ = nullptr;
  total_timer_ = nullptr;
  return run_status_;
}

Status IntraQueryPipeline::RunSpatialFirst(
    const KspQuery& query, const QueryExecutor::QueryContext& ctx,
    bool use_rule1, bool use_rule2, const Timer& total_timer, TopKHeap* heap,
    QueryStats* stats, double* semantic_seconds, QueryTrace* trace,
    CancellationToken* cancel, uint64_t cache_epoch) {
  return Run(Mode::kSpatialFirst, query, ctx, use_rule1, use_rule2,
             total_timer, heap, stats, semantic_seconds, trace, cancel,
             cache_epoch);
}

Status IntraQueryPipeline::RunAlphaOrdered(
    const KspQuery& query, const QueryExecutor::QueryContext& ctx,
    bool use_rule1, bool use_rule2, const Timer& total_timer, TopKHeap* heap,
    QueryStats* stats, double* semantic_seconds, QueryTrace* trace,
    CancellationToken* cancel, uint64_t cache_epoch) {
  return Run(Mode::kAlphaOrdered, query, ctx, use_rule1, use_rule2,
             total_timer, heap, stats, semantic_seconds, trace, cancel,
             cache_epoch);
}

}  // namespace ksp
