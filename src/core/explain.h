#ifndef KSP_CORE_EXPLAIN_H_
#define KSP_CORE_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/query.h"
#include "core/semantic_place.h"
#include "core/stats.h"

namespace ksp {

class KnowledgeBase;

/// What ultimately happened to one candidate the search looked at.
enum class CandidateOutcome : uint8_t {
  /// TQSP computed; the place is in the final top-k.
  kInTopK,
  /// TQSP computed and qualified, but beaten by k better places.
  kComputed,
  /// TQSP BFS exhausted the component without covering every keyword.
  kUnqualified,
  /// Pruning Rule 1: some keyword unreachable (reachability oracle).
  kPrunedRule1,
  /// Pruning Rule 2: TQSP construction aborted by the dynamic bound.
  kPrunedRule2,
  /// Pruning Rule 3: leaf entry's α score bound ≥ θ (place never visited).
  kPrunedRule3,
  /// Pruning Rule 4: node entry's α score bound ≥ θ (subtree discarded).
  kPrunedRule4,
};

/// Stable snake_case name ("in_topk", "pruned_rule1", ...).
const char* CandidateOutcomeName(CandidateOutcome outcome);

/// One row of an EXPLAIN report: a place (or, for Rule-4 prunes, an
/// R-tree subtree) the search considered, in visit order, with the state
/// of the search at the moment of the decision.
struct ExplainCandidate {
  /// 0-based position in the search's visit/decision sequence.
  uint32_t order = 0;
  /// True for R-tree node entries (only kPrunedRule4 rows).
  bool is_node = false;
  PlaceId place = kInvalidPlace;
  uint32_t node_id = 0;
  /// Exact spatial distance for places; MinDist lower bound for nodes.
  double spatial_distance = 0.0;
  /// θ (k-th best score) at decision time; +inf while the heap is short.
  double threshold = 0.0;
  /// SP: the α-bound f_B^α that ordered/pruned the entry; BSP/SPP: the
  /// ranking lower bound at the place's spatial distance.
  double score_bound = 0.0;
  /// L(T_p) when computed; the Lw cutoff passed to TQSP construction for
  /// kPrunedRule2; +inf for rule-1 prunes and unqualified places.
  double looseness = 0.0;
  /// Final f(L, S) for computed candidates.
  double score = 0.0;
  CandidateOutcome outcome = CandidateOutcome::kComputed;
};

/// Structured account of one query's evaluation: every candidate the
/// search touched and why it survived or died, the final result, and the
/// run's counters. Produced by QueryExecutor::Explain().
struct ExplainReport {
  KspAlgorithm algorithm = KspAlgorithm::kSp;
  KspQuery query;
  std::vector<ExplainCandidate> candidates;
  /// Why the search stopped: "threshold" (no remaining candidate can beat
  /// θ), "exhausted" (candidate stream drained), "timeout", "cancelled"
  /// (deadline/cancellation token tripped), "unanswerable" (a keyword has
  /// no postings / unknown keyword), or "storage_backend_error" (the
  /// configured backend cannot serve queries — see storage_backend).
  std::string termination;
  /// KspDatabase::storage_backend_status() at explain time. Non-OK means
  /// the query never ran: the report carries the error instead of rows.
  Status storage_backend = Status::OK();
  KspResult result;
  QueryStats stats;

  /// Human-readable table. With a KnowledgeBase, place ids resolve to
  /// their IRIs.
  std::string ToText(const KnowledgeBase* kb = nullptr) const;
  /// Machine-readable JSON with the same fields.
  std::string ToJson() const;
};

}  // namespace ksp

#endif  // KSP_CORE_EXPLAIN_H_
