#ifndef KSP_CORE_SEMANTIC_CACHE_H_
#define KSP_CORE_SEMANTIC_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "common/cache.h"
#include "common/types.h"
#include "core/query.h"
#include "core/ranking.h"
#include "core/semantic_place.h"

namespace ksp {

/// "No byte limit" sentinel for KspOptions::cache_budget_bytes.
inline constexpr size_t kCacheUnlimited =
    std::numeric_limits<size_t>::max();

/// Cross-query semantic cache shared by every QueryExecutor of one
/// KspDatabase (DESIGN.md §9). Two layers, both exact:
///
///   dg layer      per-(place root, keyword) minimum hop distance
///                 dg(p, t) — the quantity every TQSP BFS recomputes.
///                 kUnreachable is cached too (a negative answer), so a
///                 Rule-1-less algorithm can skip the exhaustive BFS that
///                 proves a keyword unreachable.
///   result layer  complete KspResults keyed by the normalized query
///                 (location, sorted keywords, k, algorithm path, pruning
///                 toggles, α, ranking). Only completed (non-timed-out)
///                 results are admitted.
///
/// Cached dg distances are exact minimal distances (recorded at first BFS
/// pop), so every decision replayed from them — looseness, Rule-2 prune,
/// top-k admittance — is bit-identical to the uncached run; see DESIGN.md
/// §9 for the argument. The budget is split 3:1 between the dg and result
/// layers. Thread-safe; Invalidate() drops all entries (index reload).
///
/// Invalidation is an epoch-tagged atomic transition. Every executor
/// snapshots epoch() once at query start, tags its inserts with that
/// snapshot, and passes it to every lookup; a lookup only hits when the
/// entry's recorded epoch equals the caller's snapshot. Invalidate()
/// bumps the epoch BEFORE clearing, so an insert racing the clear —
/// computed against the old indexes, landing after Clear() — carries the
/// old epoch and is invisible to every query that starts after
/// Invalidate() returns. There is no window in which a query can mix
/// generation-N cached distances with generation-N+1 indexes.
class SemanticQueryCache {
 public:
  explicit SemanticQueryCache(size_t budget_bytes);

  SemanticQueryCache(const SemanticQueryCache&) = delete;
  SemanticQueryCache& operator=(const SemanticQueryCache&) = delete;

  /// Current invalidation epoch. Executors snapshot this once per query
  /// and thread the snapshot through every Lookup*/Insert* below.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// ---- dg layer ----

  /// True (and `*distance` filled, possibly with kUnreachable) when
  /// dg(root, term) is cached under the caller's epoch snapshot. An
  /// entry from another epoch is a miss — never served across an
  /// invalidation boundary.
  bool LookupDistance(VertexId root, TermId term, uint64_t epoch,
                      HopDistance* distance) {
    DgEntry entry;
    if (!dg_.Lookup(DistanceKey(root, term), &entry) ||
        entry.epoch != epoch) {
      return false;
    }
    *distance = entry.distance;
    return true;
  }

  /// Caches dg(root, term) tagged with the inserting query's epoch
  /// snapshot; returns the number of entries evicted.
  size_t InsertDistance(VertexId root, TermId term, uint64_t epoch,
                        HopDistance distance) {
    return dg_.Insert(DistanceKey(root, term), DgEntry{epoch, distance},
                      kDistanceCharge);
  }

  /// ---- result layer ----

  /// Normalized result-cache key. `path_tag` distinguishes the candidate
  /// enumeration ('S' spatial-first for BSP/SPP, 'A' α-ordered for SP);
  /// `use_rule1`/`use_rule2` are the pruning toggles the run used and
  /// `alpha` the α-index radius (0 for spatial-first). Keywords are
  /// sorted and deduplicated, so keyword-permuted queries share a key —
  /// their top-k is identical (set semantics of Definition 3; only the
  /// enumeration order of tree matches could differ, and those come from
  /// one cached run).
  static std::string MakeResultKey(const KspQuery& query, char path_tag,
                                   bool use_rule1, bool use_rule2,
                                   uint32_t alpha,
                                   const RankingFunction& ranking);

  /// Epoch contract identical to LookupDistance.
  bool LookupResult(const std::string& key, uint64_t epoch,
                    KspResult* result) {
    ResultEntry entry;
    if (!results_.Lookup(key, &entry) || entry.epoch != epoch) {
      return false;
    }
    *result = std::move(entry.result);
    return true;
  }

  /// Caches a completed result tagged with the inserting query's epoch
  /// snapshot; returns the number of entries evicted.
  size_t InsertResult(const std::string& key, uint64_t epoch,
                      const KspResult& result) {
    return results_.Insert(key, ResultEntry{epoch, result},
                           key.size() + ApproxResultBytes(result));
  }

  /// ---- maintenance / introspection ----

  /// Drops every entry in both layers. Called whenever the database's
  /// indexes change (Build*, LoadIndexes); cumulative counters survive.
  /// The epoch bump happens first (see the class comment): a racing
  /// insert tagged with the old epoch that lands after the Clear() is
  /// dead on arrival for every post-invalidation query.
  void Invalidate() {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    dg_.Clear();
    results_.Clear();
  }

  using CacheStats = ShardedLruCache<uint64_t, uint64_t>::Stats;

  CacheStats dg_stats() const {
    const auto s = dg_.GetStats();
    return CacheStats{s.hits, s.misses, s.evictions, s.bytes, s.entries};
  }
  CacheStats result_stats() const {
    const auto s = results_.GetStats();
    return CacheStats{s.hits, s.misses, s.evictions, s.bytes, s.entries};
  }

  size_t TotalBytes() const { return dg_.bytes() + results_.bytes(); }
  size_t budget_bytes() const { return budget_; }

  /// Approximate heap charge of one cached result (entries, trees, match
  /// paths, minus small-vector slack we cannot see).
  static size_t ApproxResultBytes(const KspResult& result);

 private:
  /// Cached dg(root, term) plus the invalidation epoch it was computed
  /// under — a lookup from any other epoch treats it as absent.
  struct DgEntry {
    uint64_t epoch = 0;
    HopDistance distance = 0;
  };
  /// Cached full result plus its insertion epoch (same contract).
  struct ResultEntry {
    uint64_t epoch = 0;
    KspResult result;
  };

  static uint64_t DistanceKey(VertexId root, TermId term) {
    return (static_cast<uint64_t>(root) << 32) | term;
  }

  /// Accounting charge of one dg entry: 8-byte key + epoch + distance.
  static constexpr size_t kDistanceCharge =
      sizeof(uint64_t) + sizeof(uint64_t) + sizeof(HopDistance);

  size_t budget_;
  /// Starts at 1 so an executor's "no cache" epoch sentinel of 0 can
  /// never match a real entry.
  std::atomic<uint64_t> epoch_{1};
  ShardedLruCache<uint64_t, DgEntry> dg_;
  ShardedLruCache<std::string, ResultEntry> results_;
};

}  // namespace ksp

#endif  // KSP_CORE_SEMANTIC_CACHE_H_
