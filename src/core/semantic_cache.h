#ifndef KSP_CORE_SEMANTIC_CACHE_H_
#define KSP_CORE_SEMANTIC_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "common/cache.h"
#include "common/types.h"
#include "core/query.h"
#include "core/ranking.h"
#include "core/semantic_place.h"

namespace ksp {

/// "No byte limit" sentinel for KspOptions::cache_budget_bytes.
inline constexpr size_t kCacheUnlimited =
    std::numeric_limits<size_t>::max();

/// Cross-query semantic cache shared by every QueryExecutor of one
/// KspDatabase (DESIGN.md §9). Two layers, both exact:
///
///   dg layer      per-(place root, keyword) minimum hop distance
///                 dg(p, t) — the quantity every TQSP BFS recomputes.
///                 kUnreachable is cached too (a negative answer), so a
///                 Rule-1-less algorithm can skip the exhaustive BFS that
///                 proves a keyword unreachable.
///   result layer  complete KspResults keyed by the normalized query
///                 (location, sorted keywords, k, algorithm path, pruning
///                 toggles, α, ranking). Only completed (non-timed-out)
///                 results are admitted.
///
/// Cached dg distances are exact minimal distances (recorded at first BFS
/// pop), so every decision replayed from them — looseness, Rule-2 prune,
/// top-k admittance — is bit-identical to the uncached run; see DESIGN.md
/// §9 for the argument. The budget is split 3:1 between the dg and result
/// layers. Thread-safe; Invalidate() drops all entries (index reload).
class SemanticQueryCache {
 public:
  explicit SemanticQueryCache(size_t budget_bytes);

  SemanticQueryCache(const SemanticQueryCache&) = delete;
  SemanticQueryCache& operator=(const SemanticQueryCache&) = delete;

  /// ---- dg layer ----

  /// True (and `*distance` filled, possibly with kUnreachable) when
  /// dg(root, term) is cached.
  bool LookupDistance(VertexId root, TermId term, HopDistance* distance) {
    uint64_t packed = 0;
    return dg_.Lookup(DistanceKey(root, term), &packed) &&
           (*distance = static_cast<HopDistance>(packed), true);
  }

  /// Caches dg(root, term); returns the number of entries evicted.
  size_t InsertDistance(VertexId root, TermId term, HopDistance distance) {
    return dg_.Insert(DistanceKey(root, term), distance, kDistanceCharge);
  }

  /// ---- result layer ----

  /// Normalized result-cache key. `path_tag` distinguishes the candidate
  /// enumeration ('S' spatial-first for BSP/SPP, 'A' α-ordered for SP);
  /// `use_rule1`/`use_rule2` are the pruning toggles the run used and
  /// `alpha` the α-index radius (0 for spatial-first). Keywords are
  /// sorted and deduplicated, so keyword-permuted queries share a key —
  /// their top-k is identical (set semantics of Definition 3; only the
  /// enumeration order of tree matches could differ, and those come from
  /// one cached run).
  static std::string MakeResultKey(const KspQuery& query, char path_tag,
                                   bool use_rule1, bool use_rule2,
                                   uint32_t alpha,
                                   const RankingFunction& ranking);

  bool LookupResult(const std::string& key, KspResult* result) {
    return results_.Lookup(key, result);
  }

  /// Caches a completed result; returns the number of entries evicted.
  size_t InsertResult(const std::string& key, const KspResult& result) {
    return results_.Insert(key, result, key.size() + ApproxResultBytes(result));
  }

  /// ---- maintenance / introspection ----

  /// Drops every entry in both layers. Called whenever the database's
  /// indexes change (Build*, LoadIndexes); cumulative counters survive.
  void Invalidate() {
    dg_.Clear();
    results_.Clear();
  }

  using CacheStats = ShardedLruCache<uint64_t, uint64_t>::Stats;

  CacheStats dg_stats() const { return dg_.GetStats(); }
  CacheStats result_stats() const {
    const auto s = results_.GetStats();
    return CacheStats{s.hits, s.misses, s.evictions, s.bytes, s.entries};
  }

  size_t TotalBytes() const { return dg_.bytes() + results_.bytes(); }
  size_t budget_bytes() const { return budget_; }

  /// Approximate heap charge of one cached result (entries, trees, match
  /// paths, minus small-vector slack we cannot see).
  static size_t ApproxResultBytes(const KspResult& result);

 private:
  static uint64_t DistanceKey(VertexId root, TermId term) {
    return (static_cast<uint64_t>(root) << 32) | term;
  }

  /// Accounting charge of one dg entry: 8-byte key + 4-byte distance.
  static constexpr size_t kDistanceCharge =
      sizeof(uint64_t) + sizeof(HopDistance);

  size_t budget_;
  ShardedLruCache<uint64_t, uint64_t> dg_;
  ShardedLruCache<std::string, KspResult> results_;
};

}  // namespace ksp

#endif  // KSP_CORE_SEMANTIC_CACHE_H_
