#include "core/semantic_cache.h"

#include <algorithm>
#include <vector>

namespace ksp {

namespace {

/// Budget split: the dg layer carries the per-candidate win and its
/// entries are tiny, the result layer stores whole trees — 3:1 keeps a
/// small budget useful for both.
size_t DgBudget(size_t budget) {
  if (budget == kCacheUnlimited) return kCacheUnlimited;
  return budget - budget / 4;
}

size_t ResultBudget(size_t budget) {
  if (budget == kCacheUnlimited) return kCacheUnlimited;
  return budget / 4;
}

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(reinterpret_cast<const char*>(data), n);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

}  // namespace

SemanticQueryCache::SemanticQueryCache(size_t budget_bytes)
    : budget_(budget_bytes),
      dg_(DgBudget(budget_bytes), /*num_shards=*/16),
      results_(ResultBudget(budget_bytes), /*num_shards=*/8) {}

std::string SemanticQueryCache::MakeResultKey(
    const KspQuery& query, char path_tag, bool use_rule1, bool use_rule2,
    uint32_t alpha, const RankingFunction& ranking) {
  std::string key;
  key.reserve(32 + query.keywords.size() * sizeof(TermId));
  key.push_back(path_tag);
  key.push_back(use_rule1 ? 1 : 0);
  key.push_back(use_rule2 ? 1 : 0);
  key.push_back(ranking.is_product() ? 1 : 0);
  AppendValue(&key, alpha);
  AppendValue(&key, query.k);
  AppendValue(&key, ranking.beta());
  AppendValue(&key, query.location.x);
  AppendValue(&key, query.location.y);
  // Sorted + deduplicated keywords: kInvalidTerm (unanswerable marker)
  // sorts last and is kept — it changes the answer.
  std::vector<TermId> terms = query.keywords;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (TermId t : terms) AppendValue(&key, t);
  return key;
}

size_t SemanticQueryCache::ApproxResultBytes(const KspResult& result) {
  size_t bytes = sizeof(KspResult);
  for (const KspResultEntry& entry : result.entries) {
    bytes += sizeof(KspResultEntry);
    for (const auto& match : entry.tree.matches) {
      bytes += sizeof(match) + match.path.size() * sizeof(VertexId);
    }
  }
  return bytes;
}

}  // namespace ksp
