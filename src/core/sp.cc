// SP (Algorithm 4, §5): kSP evaluation ordered by α-radius ranking-score
// bounds. R-tree entries (nodes and places) are visited in ascending
// f_B^α order; Pruning Rules 3 and 4 discard entries whose bound cannot
// beat the current k-th candidate, and Rules 1 and 2 are applied to the
// surviving places exactly as in SPP.

#include <algorithm>
#include <limits>
#include <queue>

#include "common/timer.h"
#include "core/executor.h"

namespace ksp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Priority-queue item: an R-tree node or a place, keyed by the α-bound on
/// the ranking score (Lemmas 3 and 5).
struct AlphaQueueItem {
  double score_bound;
  double spatial_lb;
  bool is_node;
  uint64_t id;  // Node id or PlaceId.
};

struct AlphaQueueOrder {
  bool operator()(const AlphaQueueItem& a, const AlphaQueueItem& b) const {
    return a.score_bound > b.score_bound;  // Min-heap.
  }
};

}  // namespace

Result<KspResult> QueryExecutor::ExecuteSp(const KspQuery& query,
                                           QueryStats* stats) {
  KSP_RETURN_NOT_OK(CheckPrepared());
  const KspOptions& options = db_->options();
  if (options.use_alpha_pruning && db_->alpha_index() == nullptr) {
    return Status::InvalidArgument(
        "SP requires BuildAlphaIndex() when alpha pruning is enabled");
  }
  if (!options.use_alpha_pruning) {
    // Ablation: SP without α-bounds degenerates to SPP.
    return ExecuteSpp(query, stats);
  }
  if (options.use_unqualified_pruning &&
      db_->reachability_index() == nullptr) {
    return Status::InvalidArgument(
        "SP with unqualified-place pruning requires "
        "BuildReachabilityIndex()");
  }

  Timer total_timer;
  total_timer.Start();
  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  *st = QueryStats();

  QueryContext ctx;
  KSP_RETURN_NOT_OK(PrepareContext(query, &ctx));

  const RTree& rtree = db_->rtree();
  const AlphaIndex& alpha = *db_->alpha_index();
  const double alpha_plus_one = static_cast<double>(alpha.alpha() + 1);

  // L_B^α(entry) = 1 + Σ_i dg(entry, t_i), with α+1 for keywords outside
  // the entry's α-radius word neighborhood (Lemmas 2 and 4, including the
  // +1 normalization of Definition 2 — see DESIGN.md).
  auto alpha_looseness_bound = [&](uint32_t entry_id) {
    double bound = 1.0;
    for (TermId t : ctx.terms) {
      auto d = alpha.EntryTermDistance(entry_id, t);
      bound += d.has_value() ? static_cast<double>(*d) : alpha_plus_one;
    }
    return bound;
  };

  double semantic_seconds = 0.0;
  TopKHeap heap(query.k);

  if (ctx.answerable && !rtree.empty()) {
    std::priority_queue<AlphaQueueItem, std::vector<AlphaQueueItem>,
                        AlphaQueueOrder>
        pq;
    {
      const uint32_t root = rtree.root();
      const Rect root_rect = rtree.node(root).BoundingRect();
      const double s_lb = MinDist(query.location, root_rect);
      const double l_b = alpha_looseness_bound(alpha.NodeEntry(root));
      pq.push(AlphaQueueItem{options.ranking.Score(l_b, s_lb), s_lb,
                             /*is_node=*/true, root});
    }

    while (!pq.empty()) {
      if (total_timer.ElapsedMillis() > options.time_limit_ms) {
        st->completed = false;
        break;
      }
      AlphaQueueItem item = pq.top();
      pq.pop();
      const double theta = heap.Threshold();
      // Termination (Algorithm 4, line 9): bounds pop in ascending order.
      if (item.score_bound >= theta) break;

      if (!item.is_node) {
        const PlaceId place = static_cast<PlaceId>(item.id);
        const VertexId root = db_->kb().place_vertex(place);
        const double spatial = item.spatial_lb;  // Exact for places.

        if (options.use_unqualified_pruning &&
            IsUnqualifiedPlace(root, ctx, st)) {
          ++st->pruned_unqualified;  // Pruning Rule 1.
          continue;
        }
        const double looseness_threshold =
            options.use_dynamic_bound_pruning
                ? options.ranking.LoosenessThreshold(theta, spatial)
                : kInf;
        ++st->tqsp_computations;
        SemanticPlaceTree tree;
        tree.place = place;
        double looseness;
        {
          ScopedTimer semantic_timer(&semantic_seconds);
          looseness =
              ComputeTqsp(root, ctx, looseness_threshold,
                          options.use_dynamic_bound_pruning, &tree, st);
        }
        if (looseness == kInf) continue;

        KspResultEntry entry;
        entry.place = place;
        entry.looseness = looseness;
        entry.spatial_distance = spatial;
        entry.score = options.ranking.Score(looseness, spatial);
        entry.tree = std::move(tree);
        heap.Add(std::move(entry));
        continue;
      }

      // Internal/leaf node: expand children with their α-bounds
      // (Pruning Rules 3 and 4 gate the push).
      ++st->rtree_nodes_accessed;
      const RTree::Node& node = rtree.node(static_cast<uint32_t>(item.id));
      for (const RTree::Entry& e : node.entries) {
        const double s_lb = MinDist(query.location, e.rect);
        const uint32_t entry_id =
            node.is_leaf ? alpha.PlaceEntry(static_cast<PlaceId>(e.id))
                         : alpha.NodeEntry(static_cast<uint32_t>(e.id));
        const double l_b = alpha_looseness_bound(entry_id);
        const double f_b = options.ranking.Score(l_b, s_lb);
        if (f_b >= heap.Threshold()) {
          if (node.is_leaf) {
            ++st->pruned_alpha_place;  // Pruning Rule 3.
          } else {
            ++st->pruned_alpha_node;  // Pruning Rule 4.
          }
          continue;
        }
        pq.push(AlphaQueueItem{f_b, s_lb, !node.is_leaf, e.id});
      }
    }
  }

  st->semantic_ms = semantic_seconds * 1e3;
  st->total_ms = total_timer.ElapsedMillis();
  return std::move(heap).Finish();
}

}  // namespace ksp
