// SP (Algorithm 4, §5): kSP evaluation ordered by α-radius ranking-score
// bounds. R-tree entries (nodes and places) are visited in ascending
// f_B^α order; Pruning Rules 3 and 4 discard entries whose bound cannot
// beat the current k-th candidate, and Rules 1 and 2 are applied to the
// surviving places exactly as in SPP.

#include <algorithm>
#include <limits>
#include <queue>

#include "common/timer.h"
#include "core/executor.h"
#include "core/parallel_query.h"

namespace ksp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Priority-queue item: an R-tree node or a place, keyed by the α-bound on
/// the ranking score (Lemmas 3 and 5).
struct AlphaQueueItem {
  double score_bound;
  double spatial_lb;
  bool is_node;
  uint64_t id;  // Node id or PlaceId.
};

struct AlphaQueueOrder {
  bool operator()(const AlphaQueueItem& a, const AlphaQueueItem& b) const {
    return a.score_bound > b.score_bound;  // Min-heap.
  }
};

}  // namespace

Result<KspResult> QueryExecutor::ExecuteSp(const KspQuery& query,
                                           QueryStats* stats) {
  KSP_RETURN_NOT_OK(CheckPrepared());
  const KspOptions& options = db_->options();
  if (options.use_alpha_pruning && db_->alpha_index() == nullptr) {
    return Status::InvalidArgument(
        "SP requires BuildAlphaIndex() when alpha pruning is enabled");
  }
  if (!options.use_alpha_pruning) {
    // Ablation: SP without α-bounds degenerates to SPP.
    return ExecuteSpp(query, stats);
  }
  if (options.use_unqualified_pruning &&
      db_->reachability_index() == nullptr) {
    return Status::InvalidArgument(
        "SP with unqualified-place pruning requires "
        "BuildReachabilityIndex()");
  }

  Timer total_timer;
  total_timer.Start();
  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  *st = QueryStats();
  QueryTrace* trace = BeginQuery();
  graph_cursor_.ResetIo();

  // Full-query result cache (DESIGN.md §9); the α path gets its own key
  // tag + the α radius, since Rules 3/4 change nothing about the answer
  // but future-proofing the key against bound-dependent behavior is free.
  // As in bsp_spp.cc, the result layer is bypassed under a shared
  // scatter-gather θ (§12): the key has no θ component.
  SemanticQueryCache* cache = db_->semantic_cache();
  const bool result_layer_on =
      cache != nullptr && !explain_on() && shared_theta_ == nullptr;
  std::string result_key;
  if (result_layer_on) {
    result_key = SemanticQueryCache::MakeResultKey(
        query, /*path_tag=*/'A', options.use_unqualified_pruning,
        options.use_dynamic_bound_pruning, db_->alpha_index()->alpha(),
        options.ranking);
    KspResult cached;
    bool hit;
    {
      TraceSpan span(trace, TracePhase::kCacheLookup);
      hit = cache->LookupResult(result_key, cache_epoch_, &cached);
    }
    if (hit) {
      ++st->result_cache_hits;
      st->total_ms = total_timer.ElapsedMillis();
      RecordQueryMetrics(*st);
      return cached;
    }
    ++st->result_cache_misses;
  }

  QueryContext ctx;
  {
    TraceSpan span(trace, TracePhase::kDocFetch);
    KSP_RETURN_NOT_OK(PrepareContext(query, &ctx));
    FoldIo(ctx.io, st);
  }

  const SpatialAccessor& rtree = *db_->spatial_accessor();
  const AlphaIndex& alpha = *db_->alpha_index();
  const double alpha_plus_one = static_cast<double>(alpha.alpha() + 1);

  // L_B^α(entry) = 1 + Σ_i dg(entry, t_i), with α+1 for keywords outside
  // the entry's α-radius word neighborhood (Lemmas 2 and 4, including the
  // +1 normalization of Definition 2 — see DESIGN.md).
  auto alpha_looseness_bound = [&](uint32_t entry_id) {
    double bound = 1.0;
    for (TermId t : ctx.terms) {
      auto d = alpha.EntryTermDistance(entry_id, t);
      bound += d.has_value() ? static_cast<double>(*d) : alpha_plus_one;
    }
    return bound;
  };

  double semantic_seconds = 0.0;
  TopKHeap heap(query.k);

  if (ctx.answerable && !rtree.empty() && UsePipeline()) {
    // Same contract as the spatial-first pipeline call (bsp_spp.cc):
    // interruption flows into the shared epilogue, other errors return.
    const Status pipeline_status = EnsurePipeline()->RunAlphaOrdered(
        query, ctx, options.use_unqualified_pruning,
        options.use_dynamic_bound_pruning, total_timer, &heap, st,
        &semantic_seconds, trace, cancel_, cache_epoch_);
    if (!pipeline_status.ok()) {
      if (!pipeline_status.IsInterruption()) return pipeline_status;
      interrupt_status_ = pipeline_status;
    }
  } else if (ctx.answerable && !rtree.empty()) {
    ExplainTermination("exhausted");
    std::priority_queue<AlphaQueueItem, std::vector<AlphaQueueItem>,
                        AlphaQueueOrder>
        pq;
    {
      const uint32_t root = rtree.root();
      Rect root_rect;
      KSP_RETURN_NOT_OK(rtree.NodeRect(root, &spatial_cursor_, &root_rect));
      FoldCursorIo(&spatial_cursor_.io, st);
      const double s_lb = MinDist(query.location, root_rect);
      const double l_b = alpha_looseness_bound(alpha.NodeEntry(root));
      pq.push(AlphaQueueItem{options.ranking.Score(l_b, s_lb), s_lb,
                             /*is_node=*/true, root});
    }

    while (!pq.empty()) {
      if (total_timer.ElapsedMillis() > options.time_limit_ms) {
        st->completed = false;
        ExplainTermination("timeout");
        break;
      }
      if (CheckInterrupt()) {
        ExplainTermination("cancelled");
        break;
      }
      AlphaQueueItem item = pq.top();
      pq.pop();
      const double theta = EffectiveThreshold(heap);
      // Termination (Algorithm 4, line 9): bounds pop in ascending order.
      if (item.score_bound >= theta) {
        ExplainTermination("threshold");
        break;
      }

      if (!item.is_node) {
        const PlaceId place = static_cast<PlaceId>(item.id);
        const VertexId root = db_->kb().place_vertex(place);
        const double spatial = item.spatial_lb;  // Exact for places.

        ExplainCandidate row;
        row.place = place;
        row.spatial_distance = spatial;
        row.threshold = theta;
        row.score_bound = item.score_bound;

        if (options.use_unqualified_pruning) {
          bool unqualified;
          {
            TraceSpan span(trace, TracePhase::kRule1Prune);
            unqualified = IsUnqualifiedPlace(root, ctx, st);
          }
          if (unqualified) {
            ++st->pruned_unqualified;  // Pruning Rule 1.
            if (explain_on()) {
              row.looseness = kInf;
              row.outcome = CandidateOutcome::kPrunedRule1;
              ExplainCandidateRow(row);
            }
            continue;
          }
        }
        const double looseness_threshold =
            options.use_dynamic_bound_pruning
                ? options.ranking.LoosenessThreshold(theta, spatial)
                : kInf;

        // dg-cache fast path — identical contract to the spatial-first
        // loop (bsp_spp.cc): a full hit replays the exact decision.
        if (cache != nullptr && !explain_on()) {
          double cached_looseness = kInf;
          CachedTqsp outcome;
          {
            TraceSpan span(trace, TracePhase::kCacheLookup);
            outcome = TryCachedTqsp(root, place, ctx, looseness_threshold,
                                    options.use_dynamic_bound_pruning,
                                    heap, spatial, &cached_looseness);
          }
          if (outcome != CachedTqsp::kMiss) {
            ++st->dg_cache_hits;
            if (outcome == CachedTqsp::kPrunedRule2) {
              ++st->pruned_dynamic_bound;
              if (trace != nullptr) {
                trace->RecordEvent(TracePhase::kRule2Prune);
              }
            }
            continue;
          }
          ++st->dg_cache_misses;
        }

        ++st->tqsp_computations;
        const uint64_t rule2_before = st->pruned_dynamic_bound;
        const uint64_t visited_before = st->vertices_visited;
        SemanticPlaceTree tree;
        tree.place = place;
        double looseness;
        {
          ScopedTimer semantic_timer(&semantic_seconds);
          TraceSpan span(trace, TracePhase::kTqspCompute);
          looseness =
              ComputeTqsp(root, ctx, looseness_threshold,
                          options.use_dynamic_bound_pruning, &tree, st);
          span.AddItems(st->vertices_visited - visited_before);
        }
        KSP_RETURN_NOT_OK(graph_cursor_.status);
        if (!interrupt_status_.ok()) {
          // Interrupted mid-BFS: +inf proves nothing; unwind now.
          ExplainTermination("cancelled");
          break;
        }
        if (looseness == kInf) {
          const bool rule2 = st->pruned_dynamic_bound > rule2_before;
          if (rule2 && trace != nullptr) {
            trace->RecordEvent(TracePhase::kRule2Prune);
          }
          if (explain_on()) {
            row.looseness = rule2 ? looseness_threshold : kInf;
            row.outcome = rule2 ? CandidateOutcome::kPrunedRule2
                                : CandidateOutcome::kUnqualified;
            ExplainCandidateRow(row);
          }
          continue;
        }

        KspResultEntry entry;
        entry.place = place;
        entry.looseness = looseness;
        entry.spatial_distance = spatial;
        entry.score = options.ranking.Score(looseness, spatial);
        if (explain_on()) {
          row.looseness = looseness;
          row.score = entry.score;
          row.outcome = CandidateOutcome::kComputed;
          ExplainCandidateRow(row);
        }
        entry.tree = std::move(tree);
        heap.Add(std::move(entry));
        continue;
      }

      // Internal/leaf node: expand children with their α-bounds
      // (Pruning Rules 3 and 4 gate the push).
      TraceSpan span(trace, TracePhase::kRtreeNn);
      ++st->rtree_nodes_accessed;
      SpatialNodeRef node;
      KSP_RETURN_NOT_OK(
          rtree.ReadNode(static_cast<uint32_t>(item.id), &spatial_cursor_,
                         &node));
      FoldCursorIo(&spatial_cursor_.io, st);
      span.AddItems(node.entries.size());
      const double gate_theta = EffectiveThreshold(heap);
      for (const RTree::Entry& e : node.entries) {
        const double s_lb = MinDist(query.location, e.rect);
        const uint32_t entry_id =
            node.is_leaf ? alpha.PlaceEntry(static_cast<PlaceId>(e.id))
                         : alpha.NodeEntry(static_cast<uint32_t>(e.id));
        const double l_b = alpha_looseness_bound(entry_id);
        const double f_b = options.ranking.Score(l_b, s_lb);
        if (f_b >= gate_theta) {
          if (node.is_leaf) {
            ++st->pruned_alpha_place;  // Pruning Rule 3.
          } else {
            ++st->pruned_alpha_node;  // Pruning Rule 4.
          }
          if (explain_on()) {
            ExplainCandidate pruned_row;
            pruned_row.is_node = !node.is_leaf;
            if (node.is_leaf) {
              pruned_row.place = static_cast<PlaceId>(e.id);
            } else {
              pruned_row.node_id = static_cast<uint32_t>(e.id);
            }
            pruned_row.spatial_distance = s_lb;
            pruned_row.threshold = gate_theta;
            pruned_row.score_bound = f_b;
            pruned_row.looseness = l_b;
            pruned_row.outcome = node.is_leaf
                                     ? CandidateOutcome::kPrunedRule3
                                     : CandidateOutcome::kPrunedRule4;
            ExplainCandidateRow(pruned_row);
          }
          continue;
        }
        pq.push(AlphaQueueItem{f_b, s_lb, !node.is_leaf, e.id});
      }
    }
  } else if (!ctx.answerable) {
    ExplainTermination("unanswerable");
  }

  st->semantic_ms = semantic_seconds * 1e3;
  st->total_ms = total_timer.ElapsedMillis();
  if (!interrupt_status_.ok()) return FinishInterrupted(st);
  KspResult result = std::move(heap).Finish();
  if (result_layer_on && st->completed) {
    st->cache_evictions +=
        cache->InsertResult(result_key, cache_epoch_, result);
  }
  RecordQueryMetrics(*st);
  return result;
}

}  // namespace ksp
