#include "core/accessors.h"

#include <algorithm>

#include "common/io_util.h"
#include "common/simd_varint.h"
#include "common/varint.h"

namespace ksp {

namespace {
constexpr uint32_t kGraphMagic = 0x4B535047u;  // "KSPG" (DiskGraph format)
}  // namespace

Result<std::unique_ptr<DiskGraphAccessor>> DiskGraphAccessor::Open(
    const std::string& out_path, const std::string& in_path,
    SharedBufferPool* pool, FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  auto accessor =
      std::unique_ptr<DiskGraphAccessor>(new DiskGraphAccessor());
  accessor->pool_ = pool;
  VertexId out_n = 0;
  VertexId in_n = 0;
  uint64_t out_m = 0;
  uint64_t in_m = 0;
  KSP_RETURN_NOT_OK(OpenDirection(out_path, fs, pool, &accessor->out_,
                                  &out_n, &out_m));
  KSP_RETURN_NOT_OK(
      OpenDirection(in_path, fs, pool, &accessor->in_, &in_n, &in_m));
  if (out_n != in_n || out_m != in_m) {
    return Status::Corruption(
        "graph and transpose disagree on vertex/edge counts");
  }
  accessor->num_vertices_ = out_n;
  accessor->num_edges_ = out_m;
  return accessor;
}

DiskGraphAccessor::~DiskGraphAccessor() {
  if (pool_ == nullptr) return;
  if (out_.file != nullptr) pool_->DropFile(out_.file_id);
  if (in_.file != nullptr) pool_->DropFile(in_.file_id);
}

Status DiskGraphAccessor::OpenDirection(const std::string& path,
                                        FileSystem* fs,
                                        SharedBufferPool* pool,
                                        Direction* dir,
                                        VertexId* num_vertices,
                                        uint64_t* num_edges) {
  KSP_ASSIGN_OR_RETURN(dir->file, fs->NewRandomAccessFile(path));
  const uint64_t file_size = dir->file->Size();

  // Header: [magic u32][page_size u32][num_vertices u64][num_edges u64].
  std::string header;
  KSP_RETURN_NOT_OK(dir->file->Read(0, 24, &header));
  if (header.size() != 24) return CorruptionAt(path, 0, "short header");
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t page_size = 0;
  uint64_t n = 0;
  KSP_RETURN_NOT_OK(GetFixed32(header, &pos, &magic));
  KSP_RETURN_NOT_OK(GetFixed32(header, &pos, &page_size));
  KSP_RETURN_NOT_OK(GetFixed64(header, &pos, &n));
  KSP_RETURN_NOT_OK(GetFixed64(header, &pos, num_edges));
  if (magic != kGraphMagic) {
    return CorruptionAt(path, 0, "bad graph magic");
  }
  if (page_size != pool->page_size()) {
    return Status::InvalidArgument(
        "graph page size does not match the buffer pool");
  }
  const uint64_t table_bytes = (n + 1) * 8ULL;
  if (24 + table_bytes + 4 > file_size) {
    return CorruptionAt(path, 0, "vertex count exceeds file size");
  }

  // Offset table (memory-resident, like the paper's vertex lookup table).
  std::string table;
  KSP_RETURN_NOT_OK(dir->file->Read(24, table_bytes, &table));
  if (table.size() != table_bytes) {
    return IOErrorAt(path, 24, "cannot read offset table");
  }
  dir->offsets.resize(n + 1);
  size_t tpos = 0;
  const uint64_t data_begin = 24 + table_bytes;
  uint64_t prev = data_begin;
  for (uint64_t v = 0; v <= n; ++v) {
    KSP_RETURN_NOT_OK(GetFixed64(table, &tpos, &dir->offsets[v]));
    if (dir->offsets[v] < prev || dir->offsets[v] > file_size - 4) {
      return CorruptionAt(path, 24 + v * 8, "offset table inconsistent");
    }
    prev = dir->offsets[v];
  }
  if (dir->offsets.front() != data_begin) {
    return CorruptionAt(path, 24, "offset table inconsistent");
  }

  // Footer magic.
  std::string footer;
  KSP_RETURN_NOT_OK(dir->file->Read(file_size - 4, 4, &footer));
  size_t fpos = 0;
  uint32_t fmagic = 0;
  if (footer.size() != 4 ||
      !GetFixed32(footer, &fpos, &fmagic).ok() || fmagic != kGraphMagic) {
    return CorruptionAt(path, file_size - 4, "bad graph footer");
  }

  *num_vertices = static_cast<VertexId>(n);
  dir->file_id = pool->RegisterFile(dir->file.get());
  return Status::OK();
}

std::span<const VertexId> DiskGraphAccessor::Decode(
    const Direction& dir, VertexId v, std::vector<VertexId>* scratch,
    GraphCursor* c) const {
  scratch->clear();
  if (!c->status.ok()) return {};
  const uint64_t begin = dir.offsets[v];
  const uint64_t length = dir.offsets[v + 1] - begin;
  Status st =
      pool_->ReadRange(dir.file_id, begin, length, &c->buf, &c->io);
  if (st.ok()) {
    size_t pos = 0;
    uint64_t count = 0;
    st = GetVarint64(c->buf, &pos, &count);
    if (st.ok() && count > length - pos) {
      st = Status::Corruption("neighbour count exceeds record");
    }
    if (st.ok()) {
      scratch->reserve(count);
      st = DecodeVarintDeltas(c->buf, &pos, count, num_vertices_,
                              "neighbour id out of range", scratch);
    }
  }
  if (!st.ok()) {
    c->status = st;
    scratch->clear();
    return {};
  }
  return {scratch->data(), scratch->size()};
}

std::span<const VertexId> DiskGraphAccessor::OutNeighbors(
    VertexId v, GraphCursor* c) const {
  return Decode(out_, v, &c->out_scratch, c);
}

std::span<const VertexId> DiskGraphAccessor::InNeighbors(
    VertexId v, GraphCursor* c) const {
  return Decode(in_, v, &c->in_scratch, c);
}

Status MemoryPostingsAccessor::Fetch(TermId term,
                                     std::vector<VertexId>* backing,
                                     std::span<const VertexId>* view,
                                     PageIoCounters* io) const {
  (void)io;
  if (auto span = index_->PostingsSpan(term); span.has_value()) {
    *view = *span;
    return Status::OK();
  }
  backing->clear();
  KSP_RETURN_NOT_OK(index_->GetPostings(term, backing));
  *view = {backing->data(), backing->size()};
  return Status::OK();
}

Result<std::unique_ptr<DiskPostingsAccessor>> DiskPostingsAccessor::Open(
    const std::string& path, SharedBufferPool* pool, FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  // Open (and CRC-verify) through the regular codec first, then attach
  // a second handle for pooled page reads.
  KSP_ASSIGN_OR_RETURN(auto index, DiskInvertedIndex::Open(path, fs));
  auto accessor =
      std::unique_ptr<DiskPostingsAccessor>(new DiskPostingsAccessor());
  accessor->index_ = std::move(index);
  KSP_ASSIGN_OR_RETURN(accessor->file_, fs->NewRandomAccessFile(path));
  accessor->pool_ = pool;
  accessor->file_id_ = pool->RegisterFile(accessor->file_.get());
  return accessor;
}

DiskPostingsAccessor::~DiskPostingsAccessor() {
  if (pool_ != nullptr) pool_->DropFile(file_id_);
}

Status DiskPostingsAccessor::Fetch(TermId term,
                                   std::vector<VertexId>* backing,
                                   std::span<const VertexId>* view,
                                   PageIoCounters* io) const {
  backing->clear();
  *view = {};
  uint64_t begin = 0;
  uint64_t end = 0;
  KSP_RETURN_NOT_OK(index_->PostingRange(term, &begin, &end));
  if (end == begin) return Status::OK();

  std::string buf;
  KSP_RETURN_NOT_OK(pool_->ReadRange(
      file_id_, index_->blob_offset() + begin, end - begin, &buf, io));
  size_t pos = 0;
  uint64_t count = 0;
  KSP_RETURN_NOT_OK(GetVarint64(buf, &pos, &count));
  if (count > buf.size() - pos) {
    return Status::Corruption("posting count exceeds record");
  }
  backing->reserve(count);
  KSP_RETURN_NOT_OK(DecodeVarintDeltas(buf, &pos, count, kVarintNoLimit,
                                       nullptr, backing));
  *view = {backing->data(), backing->size()};
  return Status::OK();
}

}  // namespace ksp
