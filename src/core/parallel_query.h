#ifndef KSP_CORE_PARALLEL_QUERY_H_
#define KSP_CORE_PARALLEL_QUERY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/io_stats.h"
#include "common/status.h"
#include "core/executor.h"
#include "core/query.h"
#include "core/semantic_place.h"
#include "core/stats.h"
#include "core/trace.h"
#include "spatial/rtree.h"

namespace ksp {

class Timer;

/// Intra-query parallel execution of the spatial-first (BSP/SPP) and
/// α-bound-ordered (SP) loops — DESIGN.md §8.
///
/// Structure: one *producer* thread drains the candidate stream (the
/// incremental-NN stream for BSP/SPP; the exact α-bound priority queue
/// for SP) into a bounded ring; `num_workers` *workers* speculatively run
/// Rule 1 and TQSP construction on the queued places, each on its own
/// epoch-tagged QueryExecutor scratch; the *ordered-commit* stage (the
/// calling thread) applies results to the TopKHeap strictly in stream
/// order.
///
/// Exactness. θ (the k-th best committed score) is non-increasing over
/// the commit sequence, and LoosenessThreshold(θ, s) is monotone in θ,
/// so every threshold a worker derives from the shared atomic θ is >= the
/// exact commit-time threshold: speculation can only under-prune, never
/// over-prune. Each worker records its monotone dynamic-bound trajectory
/// (TqspBoundStep); the commit replays it against the exact commit-time
/// threshold to reconstruct the precise pop at which the sequential BFS
/// would have aborted — recovering bit-identical Rule-2 prune decisions
/// and visited-vertex counts. Termination, timeout and node accounting
/// replay per-item stream snapshots (BSP/SPP) or run producer-side
/// against exact θ behind an all-places-committed barrier (SP). The
/// final top-k, completion flag and every committed QueryStats counter
/// are therefore identical to the sequential path at every thread count;
/// only wall/CPU time fields and speculative_wasted_tqsp may differ.
///
/// Threads are created once and parked between runs on a generation
/// counter; Run* returns only after producer and workers have parked
/// again, so the borrowed query context never escapes a run.
class IntraQueryPipeline {
 public:
  IntraQueryPipeline(const KspDatabase* db, uint32_t num_workers);
  ~IntraQueryPipeline();

  IntraQueryPipeline(const IntraQueryPipeline&) = delete;
  IntraQueryPipeline& operator=(const IntraQueryPipeline&) = delete;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(worker_execs_.size());
  }

  /// BSP/SPP: replaces the sequential loop of ExecuteSpatialFirst.
  /// `heap` carries the (empty) top-k accumulator; `semantic_seconds`
  /// accrues summed worker TQSP time (may exceed wall time); `trace`, if
  /// non-null, receives producer/worker phase aggregates via
  /// MergeAggregates. Returns non-OK when a disk-backend read failed on
  /// the producer or any worker (results are then meaningless), or with
  /// kCancelled/kDeadlineExceeded when `cancel` (optional; shared with
  /// every worker for the run) tripped — the ordered commit is the sole
  /// authority on that verdict, so a completed commit never turns into
  /// an interruption retroactively. `cache_epoch` is the driving
  /// executor's semantic-cache epoch snapshot, copied onto the workers
  /// so speculative inserts stay in the query's cache generation.
  Status RunSpatialFirst(const KspQuery& query,
                         const QueryExecutor::QueryContext& ctx,
                         bool use_rule1, bool use_rule2,
                         const Timer& total_timer, TopKHeap* heap,
                         QueryStats* stats, double* semantic_seconds,
                         QueryTrace* trace, CancellationToken* cancel,
                         uint64_t cache_epoch);

  /// SP: replaces the sequential loop of ExecuteSp (α pruning on, R-tree
  /// non-empty). Node expansions — whose Rule-3/4 tests and termination
  /// check need the exact θ — run on the producer behind a barrier that
  /// waits for every emitted place to commit; place TQSPs (the dominant
  /// cost) overlap across workers.
  Status RunAlphaOrdered(const KspQuery& query,
                         const QueryExecutor::QueryContext& ctx,
                         bool use_rule1, bool use_rule2,
                         const Timer& total_timer, TopKHeap* heap,
                         QueryStats* stats, double* semantic_seconds,
                         QueryTrace* trace, CancellationToken* cancel,
                         uint64_t cache_epoch);

 private:
  enum class Mode { kSpatialFirst, kAlphaOrdered };
  enum class SlotState : uint8_t { kProduced, kClaimed, kDone };

  /// Worker output for one speculated place.
  struct SpecResult {
    double looseness = 0.0;   // +inf: unqualified or speculatively aborted
    bool rule1_unqualified = false;
    uint64_t visits = 0;          // worker's full BFS pop count
    uint64_t reach_queries = 0;   // Rule-1 probes (θ-independent, exact)
    std::vector<TqspBoundStep> bound_log;
    SemanticPlaceTree tree;
  };

  /// One candidate-stream item in the bounded ring.
  struct Slot {
    uint64_t seq = 0;
    bool is_node = false;
    PlaceId place = kInvalidPlace;
    VertexId root = kInvalidVertex;
    double spatial = 0.0;
    /// Stream-order termination key: MinScoreGivenSpatialDistance for the
    /// spatial-first stream, f_B^α for the α-ordered stream.
    double score_bound = 0.0;
    /// NN-iterator nodes-accessed snapshot right after this item popped
    /// (spatial-first mode only) — the exact value the sequential scan
    /// reports when it stops on this item.
    uint64_t rtree_nodes = 0;
    SlotState state = SlotState::kDone;
    SpecResult result;
  };

  /// Shared run protocol: installs the run state, wakes the fleet, runs
  /// the ordered commit on the calling thread, quiesces, and folds
  /// producer/worker side effects into `stats`/`semantic_seconds`/`trace`.
  Status Run(Mode mode, const KspQuery& query,
             const QueryExecutor::QueryContext& ctx, bool use_rule1,
             bool use_rule2, const Timer& total_timer, TopKHeap* heap,
             QueryStats* stats, double* semantic_seconds, QueryTrace* trace,
             CancellationToken* cancel, uint64_t cache_epoch);

  void ProducerLoop();
  void WorkerLoop(size_t worker_index);
  Status ProduceSpatialFirst();
  Status ProduceAlphaOrdered();
  /// Rule 1 + speculative TQSP for one claimed place (no lock held).
  void ProcessCandidate(size_t worker_index, Slot* slot);
  /// Runs one query's ordered-commit stage to termination (lock held).
  void CommitLoop(std::unique_lock<std::mutex>& lock,
                  const Timer& total_timer, TopKHeap* heap, QueryStats* st,
                  QueryTrace* trace);
  /// Applies one place's speculative result exactly (lock held): replays
  /// the bound trajectory against the commit-time threshold, folds exact
  /// counters into `st`, and admits the entry to the heap.
  void CommitCandidate(Slot* slot, TopKHeap* heap, QueryStats* st,
                       QueryTrace* trace);
  /// Fills the next ring slot (lock held). Returns false when the run was
  /// stopped while waiting for ring space.
  bool EmitSlot(std::unique_lock<std::mutex>& lock, bool is_node,
                uint64_t id, double spatial, double score_bound,
                uint64_t rtree_nodes);

  const KspDatabase* db_;
  std::vector<std::unique_ptr<QueryExecutor>> worker_execs_;
  std::vector<std::unique_ptr<QueryTrace>> worker_traces_;  // aggregate-only
  std::vector<double> worker_semantic_s_;
  QueryTrace producer_trace_;  // aggregate-only
  std::vector<std::thread> threads_;  // workers, then the producer

  /// One mutex + one condvar cover every pipeline state transition
  /// (production, claim, completion, commit advance, parking): candidates
  /// are millisecond-scale BFS units, so wake-up granularity is cheap
  /// relative to the work and the single-lock protocol stays auditable
  /// (and TSan-clean).
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  uint64_t generation_ = 0;
  size_t active_ = 0;  // producer + workers not yet parked this run

  // ---- Per-run state (installed under mu_ before the generation bump,
  // immutable or mu_-guarded while the run is live) ----
  Mode mode_ = Mode::kSpatialFirst;
  const KspQuery* query_ = nullptr;
  const QueryExecutor::QueryContext* ctx_ = nullptr;
  bool use_rule1_ = false;
  bool use_rule2_ = false;
  bool tracing_ = false;
  const Timer* total_timer_ = nullptr;
  /// Cancellation token of the current run (nullptr: none). Shared with
  /// every worker executor; the CommitLoop polls it and is the only
  /// stage allowed to fold a trip into run_status_ — workers and
  /// producer just stop early, so a query that commits to completion
  /// before the trip is observed still returns its complete result.
  CancellationToken* run_cancel_ = nullptr;
  std::vector<Slot> ring_;
  uint64_t produced_ = 0;
  uint64_t committed_ = 0;
  uint64_t claim_cursor_ = 0;
  bool producer_done_ = false;
  bool producer_timeout_ = false;
  bool stop_ = false;
  /// Exact "R-tree nodes accessed": final iterator count (spatial mode,
  /// stream exhausted) or the pre-termination node-pop count maintained
  /// behind the SP barrier.
  uint64_t producer_rtree_nodes_ = 0;
  uint64_t producer_pruned_rule3_ = 0;
  uint64_t producer_pruned_rule4_ = 0;
  /// Producer-side spatial reads go through this cursor; its accumulated
  /// page-I/O is flushed into producer_page_io_ (under mu_) when the
  /// producer parks, and folded into the run's QueryStats by Run().
  SpatialCursor producer_cursor_;
  PageIoCounters producer_page_io_;
  /// First disk-backend read error of the run (producer or worker,
  /// mu_-guarded). Run() returns it; on error the heap contents are
  /// discarded by the caller.
  Status run_status_;

  /// Latest committed θ. Workers/producer read it relaxed: any stale
  /// value is >= the exact commit-time θ (it only decreases), so every
  /// speculative decision derived from it is sound.
  std::atomic<double> theta_{0.0};
  /// TQSP constructions started by workers this run; minus the committed
  /// tqsp_computations this is the wasted speculation.
  std::atomic<uint64_t> spec_tqsp_runs_{0};
  /// Cache evictions triggered by worker dg-cache inserts this run.
  /// Like wasted speculation, interleaving-dependent — reported in
  /// QueryStats::cache_evictions but outside the determinism contract.
  std::atomic<uint64_t> spec_cache_evictions_{0};
  /// Buffer-pool counters accumulated by worker-side speculative BFS
  /// expansions (disk backend). Interleaving-dependent, like the two
  /// counters above — reported but outside the determinism contract.
  std::atomic<uint64_t> spec_bufferpool_hits_{0};
  std::atomic<uint64_t> spec_bufferpool_misses_{0};
  std::atomic<uint64_t> spec_bufferpool_evictions_{0};
};

}  // namespace ksp

#endif  // KSP_CORE_PARALLEL_QUERY_H_
