// BSP (Algorithm 1) and SPP (§4): spatial-first kSP evaluation. Both share
// one loop skeleton — SPP is BSP plus Pruning Rule 1 (unqualified place
// pruning via the reachability oracle) and Pruning Rule 2 (dynamic
// looseness bound inside TQSP construction).

#include <limits>

#include "common/timer.h"
#include "core/executor.h"

namespace ksp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<KspResult> QueryExecutor::ExecuteBsp(const KspQuery& query,
                                            QueryStats* stats) {
  return ExecuteSpatialFirst(query, stats, /*use_rule1=*/false,
                             /*use_rule2=*/false);
}

Result<KspResult> QueryExecutor::ExecuteSpp(const KspQuery& query,
                                            QueryStats* stats) {
  KSP_RETURN_NOT_OK(CheckPrepared());
  const KspOptions& options = db_->options();
  if (options.use_unqualified_pruning &&
      db_->reachability_index() == nullptr) {
    return Status::InvalidArgument(
        "SPP with unqualified-place pruning requires "
        "BuildReachabilityIndex()");
  }
  return ExecuteSpatialFirst(query, stats,
                             options.use_unqualified_pruning,
                             options.use_dynamic_bound_pruning);
}

Result<KspResult> QueryExecutor::ExecuteSpatialFirst(const KspQuery& query,
                                                     QueryStats* stats,
                                                     bool use_rule1,
                                                     bool use_rule2) {
  KSP_RETURN_NOT_OK(CheckPrepared());
  const KspOptions& options = db_->options();
  Timer total_timer;
  total_timer.Start();
  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  *st = QueryStats();

  QueryContext ctx;
  KSP_RETURN_NOT_OK(PrepareContext(query, &ctx));

  double semantic_seconds = 0.0;
  TopKHeap heap(query.k);
  if (ctx.answerable) {
    NearestIterator iterator(db_->rtree_ptr(), query.location);
    NearestIterator::Item item;
    while (iterator.Next(&item)) {
      if (total_timer.ElapsedMillis() > options.time_limit_ms) {
        st->completed = false;
        break;
      }
      const double theta = heap.Threshold();
      // Termination (Algorithm 1, line 7): entries arrive in ascending
      // spatial distance and f(L, S) >= MinScore(S) for L >= 1.
      if (options.ranking.MinScoreGivenSpatialDistance(item.distance) >=
          theta) {
        break;
      }
      if (item.is_node) continue;  // Children already enqueued.

      const PlaceId place = static_cast<PlaceId>(item.id);
      const VertexId root = db_->kb().place_vertex(place);
      const double spatial = item.distance;

      if (use_rule1 && IsUnqualifiedPlace(root, ctx, st)) {
        ++st->pruned_unqualified;  // Pruning Rule 1.
        continue;
      }

      const double looseness_threshold =
          use_rule2 ? options.ranking.LoosenessThreshold(theta, spatial)
                    : kInf;

      ++st->tqsp_computations;
      SemanticPlaceTree tree;
      tree.place = place;
      double looseness;
      {
        ScopedTimer semantic_timer(&semantic_seconds);
        looseness = ComputeTqsp(root, ctx, looseness_threshold, use_rule2,
                                &tree, st);
      }
      if (looseness == kInf) continue;  // Unqualified or Rule-2 pruned.

      KspResultEntry entry;
      entry.place = place;
      entry.looseness = looseness;
      entry.spatial_distance = spatial;
      entry.score = options.ranking.Score(looseness, spatial);
      entry.tree = std::move(tree);
      heap.Add(std::move(entry));
    }
    st->rtree_nodes_accessed = iterator.nodes_accessed();
  }

  st->semantic_ms = semantic_seconds * 1e3;
  st->total_ms = total_timer.ElapsedMillis();
  return std::move(heap).Finish();
}

}  // namespace ksp
